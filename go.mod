module github.com/wasp-stream/wasp

go 1.22
