package wasp_test

// One benchmark per table and figure of the paper's evaluation (§8). Each
// benchmark executes the corresponding experiment end-to-end on the
// emulated wide-area testbed at the paper's full durations and logs the
// regenerated rows/series. Run them with:
//
//	go test -bench=. -benchmem
//
// The benchmarks also report headline metrics (processed percentage,
// overheads) via b.ReportMetric so regressions are machine-checkable.

import (
	"sync"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/experiment"
)

const benchSeed = 1

func BenchmarkFig2BandwidthVariability(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.Fig2(42)
	}
	b.Log("\n" + out)
}

func BenchmarkFig7TopologyCDF(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.Fig7(benchSeed)
	}
	b.Log("\n" + out)
}

func BenchmarkTable2TechniqueComparison(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.Table2()
	}
	b.Log("\n" + out)
}

func BenchmarkTable3QueryDetails(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiment.Table3()
	}
	b.Log("\n" + out)
}

// fig8Runs caches the Figure 8/9 experiment within one bench invocation
// (both figures come from the same runs, as in the paper): the sync.Once
// executes the grid exactly once however many benchmarks — or b.N
// iterations — ask for it.
var (
	fig8Once  sync.Once
	fig8Cache []experiment.Fig8Run
	fig8Err   error
)

func fig8Runs(b *testing.B) []experiment.Fig8Run {
	b.Helper()
	fig8Once.Do(func() {
		fig8Cache, fig8Err = experiment.RunFig8(benchSeed, 0)
	})
	if fig8Err != nil {
		b.Fatal(fig8Err)
	}
	return fig8Cache
}

func BenchmarkFig8DelayUnderDynamics(b *testing.B) {
	var runs []experiment.Fig8Run
	for i := 0; i < b.N; i++ {
		runs = fig8Runs(b)
	}
	b.Log("\n" + experiment.FormatFig8(runs, 0))
	for _, r := range runs {
		if r.Query == "topk" && r.Policy == adapt.PolicyWASP {
			b.ReportMetric(r.Result.ProcessedPct, "wasp_processed_%")
		}
	}
}

func BenchmarkFig9ProcessingRatio(b *testing.B) {
	var runs []experiment.Fig8Run
	for i := 0; i < b.N; i++ {
		runs = fig8Runs(b)
	}
	b.Log("\n" + experiment.FormatFig9(runs, 0))
	for _, r := range runs {
		if r.Query == "topk" && r.Policy == adapt.PolicyDegrade {
			b.ReportMetric(r.Result.ProcessedPct, "degrade_processed_%")
		}
	}
}

func BenchmarkFig10TechniqueComparison(b *testing.B) {
	var runs []experiment.Fig10Run
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = experiment.RunFig10(benchSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiment.FormatFig10(runs, 0))
	for _, r := range runs {
		if r.Policy == adapt.PolicyScale {
			b.ReportMetric(experiment.Mean(r.Result.Samples), "scale_mean_delay_s")
		}
		if r.Policy == adapt.PolicyNone {
			b.ReportMetric(experiment.Mean(r.Result.Samples), "noadapt_mean_delay_s")
		}
	}
}

// fig11Runs caches the live-environment runs (Figures 11 and 12 share
// them), memoized the same way as fig8Runs.
var (
	fig11Once  sync.Once
	fig11Cache []experiment.Fig11Run
	fig11Err   error
)

func fig11Runs(b *testing.B) []experiment.Fig11Run {
	b.Helper()
	fig11Once.Do(func() {
		fig11Cache, fig11Err = experiment.RunFig11(benchSeed, 0)
	})
	if fig11Err != nil {
		b.Fatal(fig11Err)
	}
	return fig11Cache
}

func BenchmarkFig11LiveEnvironment(b *testing.B) {
	var runs []experiment.Fig11Run
	for i := 0; i < b.N; i++ {
		runs = fig11Runs(b)
	}
	b.Log("\n" + experiment.FormatFig11(runs, 0))
}

func BenchmarkFig12QualityTradeoff(b *testing.B) {
	var runs []experiment.Fig11Run
	for i := 0; i < b.N; i++ {
		runs = fig11Runs(b)
	}
	b.Log("\n" + experiment.FormatFig12(runs))
	for _, r := range runs {
		switch r.Policy {
		case adapt.PolicyWASP:
			b.ReportMetric(r.Result.ProcessedPct, "wasp_processed_%")
		case adapt.PolicyDegrade:
			b.ReportMetric(r.Result.ProcessedPct, "degrade_processed_%")
		}
	}
}

func BenchmarkFig13StateMigration(b *testing.B) {
	var runs []experiment.Fig13Run
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = experiment.RunFig13(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiment.FormatFig13(runs))
	for _, r := range runs {
		if r.Strategy == adapt.MigrateNetworkAware {
			b.ReportMetric(r.Overhead.Total().Seconds(), "wasp_overhead_s")
		}
		if r.Strategy == adapt.MigrateDistant {
			b.ReportMetric(r.Overhead.Total().Seconds(), "distant_overhead_s")
		}
	}
}

func BenchmarkFig14StatePartitioning(b *testing.B) {
	var runs []experiment.Fig14Run
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = experiment.RunFig14(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiment.FormatFig14(runs))
	for _, r := range runs {
		if r.StateMB == 512 {
			name := "default_512MB_overhead_s"
			if r.Partitioned {
				name = "partitioned_512MB_overhead_s"
			}
			b.ReportMetric(r.Overhead.Total().Seconds(), name)
		}
	}
}

// BenchmarkExtStragglerRecovery runs the straggler extension: a slow node
// under the Top-K query, WASP vs No Adapt.
func BenchmarkExtStragglerRecovery(b *testing.B) {
	var runs []experiment.StragglerRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = experiment.RunStraggler(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiment.FormatStraggler(runs))
}

// BenchmarkAblationAlpha sweeps the α bandwidth-headroom threshold (§4.1).
func BenchmarkAblationAlpha(b *testing.B) {
	var rows []experiment.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunAlphaAblation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiment.FormatAblation("Ablation: bandwidth headroom α", rows))
}

// BenchmarkAblationMonitorInterval sweeps the adaptation period (§8.2).
func BenchmarkAblationMonitorInterval(b *testing.B) {
	var rows []experiment.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunMonitorIntervalAblation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiment.FormatAblation("Ablation: monitoring interval", rows))
}

// BenchmarkEngineTick measures the raw flow-mode engine throughput (ticks
// per second of a deployed Top-K pipeline) — the substrate cost underlying
// every experiment above.
func BenchmarkEngineTick(b *testing.B) {
	res, err := experiment.Run(experiment.Scenario{
		Name:     "bench-engine",
		Seed:     benchSeed,
		Duration: time.Duration(b.N+1) * 250 * time.Millisecond,
		Adapt:    experiment.AdaptConfig(adapt.PolicyNone),
		Engine:   experiment.EngineConfig(adapt.PolicyNone),
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}
