// Package wasp is a from-scratch Go reproduction of "WASP: Wide-area
// Adaptive Stream Processing" (Jonathan, Chandra, Weissman — Middleware
// '20): a WAN-aware adaptation framework for geo-distributed stream
// processing that combines task re-assignment, operator scaling, and
// query re-planning, with network-aware state migration.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), with runnable binaries under cmd/ and runnable examples
// under examples/. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation; EXPERIMENTS.md records the
// paper-versus-measured comparison.
package wasp
