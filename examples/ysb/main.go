// YSB: run the Yahoo Streaming Benchmark Advertising Campaign query in
// record mode — filter ad views, join with the campaign table, count per
// campaign per 10-second window — over a synthetic 60-second YSB stream
// split across 4 sources, then verify the counts against an oracle and
// demonstrate a checkpoint/restore of the windowed state.
//
//	go run ./examples/ysb
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ysb:", err)
		os.Exit(1)
	}
}

func run() error {
	const sources = 4
	events := workload.GenerateYSB(workload.YSBConfig{
		Seed: 7, Rate: 5000, Duration: 60 * time.Second, Campaigns: 20,
	})
	fmt.Printf("generated %d ad events across %d campaigns\n", len(events), 20)

	rp := queries.BuildYSBRecord(sources, 10*time.Second)
	inputs := stream.Inputs{}
	for i, e := range workload.YSBStream(events) {
		src := rp.Sources[i%sources]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		return err
	}
	out := rp.Pipeline.SinkEvents(rp.Sink)

	// Aggregate per campaign across windows for a compact report.
	totals := make(map[string]int64)
	for _, e := range out {
		totals[e.Key] += e.Value.(int64)
	}
	keys := detutil.SortedKeys(totals)
	sort.SliceStable(keys, func(i, j int) bool { return totals[keys[i]] > totals[keys[j]] })

	fmt.Println("\ntop campaigns by counted views (all windows):")
	for i, k := range keys {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-4s %6d views\n", k, totals[k])
	}

	// Oracle check: the pipeline must count exactly the view events.
	var views int64
	for _, e := range events {
		if e.EventType == workload.AdView {
			views++
		}
	}
	var counted int64
	for _, v := range totals {
		counted += v
	}
	fmt.Printf("\noracle: %d view events, pipeline counted %d — match: %v\n",
		views, counted, views == counted)

	// Checkpoint/restore demo on the windowed counter (WASP's localized
	// checkpointing snapshots exactly this state).
	counter := stream.Count(10 * time.Second)
	counter.OnEvent(0, stream.Event{Time: 0, Key: "c1"}, func(stream.Event) {})
	counter.OnEvent(0, stream.Event{Time: 0, Key: "c1"}, func(stream.Event) {})
	snap, err := counter.SnapshotState()
	if err != nil {
		return err
	}
	restored := stream.Count(10 * time.Second)
	if err := restored.RestoreState(snap); err != nil {
		return err
	}
	fmt.Printf("checkpoint demo: snapshot %d bytes, restored live accumulators: %d\n",
		len(snap), restored.StateSize())
	return nil
}
