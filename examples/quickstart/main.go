// Quickstart: build and run a small record-mode streaming pipeline with
// WASP's stream engine — a filter, a keyed 10-second windowed count, and
// a sink — over synthetic events, entirely in-process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Assemble: source → filter(evens) → count per key per 10 s window → sink.
	p := stream.NewPipeline()
	src := p.AddSource("numbers")
	fil := p.AddNode("evens", &stream.Filter{
		Pred: func(e stream.Event) bool { return e.Value.(int)%2 == 0 },
	})
	cnt := p.AddNode("count10s", stream.Count(10*time.Second))
	sink := p.AddSink("out")
	p.MustConnect(src, fil, 0)
	p.MustConnect(fil, cnt, 0)
	p.MustConnect(cnt, sink, 0)

	// Synthesize 30 seconds of input: one event per 100 ms, keyed by
	// parity-of-hundreds, valued 0..299.
	var input []stream.Event
	for i := 0; i < 300; i++ {
		input = append(input, stream.Event{
			Time:  vclock.Time(i) * vclock.Time(100*time.Millisecond),
			Key:   fmt.Sprintf("k%d", i/100),
			Value: i,
		})
	}

	// Run with a 1-second watermark cadence; windows flush as event time
	// passes their end.
	if err := p.Run(stream.Inputs{src: input}, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		return err
	}

	fmt.Println("windowed even-number counts (key, window max event time, count):")
	for _, e := range p.SinkEvents(sink) {
		fmt.Printf("  %-3s @%6s  %d\n", e.Key, time.Duration(e.Time).Round(100*time.Millisecond), e.Value)
	}
	return nil
}
