// TopK: run the Top-K Popular Topics query in record mode over a
// synthetic geo-tagged Twitter trace — per country, the 5 most frequent
// topics in each 30-second window — exactly the paper's representative
// stateful query (Table 3), with the trace's spatial skew and Zipfian
// topic popularity.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topk:", err)
		os.Exit(1)
	}
}

func run() error {
	const sources = 8
	tweets := workload.GenerateTweets(workload.TwitterConfig{
		Seed: 11, Rate: 8000, Duration: 90 * time.Second, Topics: 200, Diurnal: true,
	})
	shares := workload.CountryShares(tweets)
	fmt.Printf("replaying %d geo-tagged tweets; country shares: us=%.0f%% jp=%.0f%% gb=%.0f%%\n",
		len(tweets), shares["us"]*100, shares["jp"]*100, shares["gb"]*100)

	rp := queries.BuildTopKRecord(sources, 5, 30*time.Second)
	inputs := stream.Inputs{}
	for i, e := range workload.TweetStream(tweets) {
		src := rp.Sources[i%sources]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		return err
	}

	// Group results per window for display.
	type winKey struct {
		end     time.Duration
		country string
	}
	results := make(map[winKey][]stream.TopicCount)
	for _, e := range rp.Pipeline.SinkEvents(rp.Sink) {
		end := time.Duration(e.Time).Truncate(30*time.Second) + 30*time.Second
		results[winKey{end: end, country: e.Key}] = e.Value.([]stream.TopicCount)
	}
	keys := detutil.SortedKeysFunc(results, func(a, b winKey) bool {
		if a.end != b.end {
			return a.end < b.end
		}
		return a.country < b.country
	})

	lastEnd := time.Duration(-1)
	shown := 0
	for _, k := range keys {
		if k.end != lastEnd {
			fmt.Printf("\n=== window ending %v ===\n", k.end)
			lastEnd = k.end
			shown = 0
		}
		if shown >= 4 { // a few countries per window keeps the output readable
			continue
		}
		shown++
		fmt.Printf("  %s:", k.country)
		for _, tc := range results[k] {
			fmt.Printf(" %s(%d)", tc.Topic, tc.Count)
		}
		fmt.Println()
	}
	return nil
}
