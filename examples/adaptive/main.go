// Adaptive: deploy the Top-K query on the emulated 16-site wide-area
// testbed, choke the WAN links mid-run, and watch WASP's adaptation
// controller diagnose the bottleneck and re-optimize the execution —
// re-assigning tasks, scaling operators, and scaling back down when the
// network recovers — while a No-Adapt twin suffers.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/experiment"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	const duration = 15 * time.Minute
	// Workload doubles in the second third; every WAN link halves in the
	// final third.
	workload := trace.Steps(duration/3, 1, 2, 1)
	bandwidth := trace.Steps(duration/3, 1, 1, 0.5)

	results := make(map[adapt.Policy]*experiment.Result)
	for _, policy := range []adapt.Policy{adapt.PolicyNone, adapt.PolicyWASP} {
		res, err := experiment.Run(experiment.Scenario{
			Name:      "adaptive-demo-" + policy.String(),
			Seed:      1,
			Duration:  duration,
			Query:     queries.TopKTopics,
			Engine:    experiment.EngineConfig(policy),
			Adapt:     experiment.AdaptConfig(policy),
			Workload:  workload,
			Bandwidth: bandwidth,
		})
		if err != nil {
			return err
		}
		results[policy] = res
	}

	wasp := results[adapt.PolicyWASP]
	fmt.Println("WASP adaptation log:")
	if n, err := wasp.Obs.WriteActionLog(os.Stdout); err != nil {
		return err
	} else if n == 0 {
		fmt.Println("  (no adaptations were needed)")
	}

	fmt.Println("\nhead-to-head (phase means):")
	header := []string{"metric", "phase 1", "phase 2 (2x load)", "phase 3 (0.5x WAN)"}
	var rows [][]string
	for _, policy := range []adapt.Policy{adapt.PolicyNone, adapt.PolicyWASP} {
		res := results[policy]
		delayRow := []string{policy.String() + " delay (s)"}
		ratioRow := []string{policy.String() + " ratio"}
		for i := 0; i < 3; i++ {
			from := time.Duration(i) * duration / 3
			to := from + duration/3
			delayRow = append(delayRow, experiment.Fmt(res.MeanDelayBetween(from, to)))
			ratioRow = append(ratioRow, experiment.Fmt(res.MeanRatioBetween(from, to)))
		}
		rows = append(rows, delayRow, ratioRow)
	}
	fmt.Print(experiment.Table(header, rows))

	fmt.Printf("\nprocessed events: no-adapt %.1f%%  wasp %.1f%% (both drop nothing; WASP just keeps up)\n",
		results[adapt.PolicyNone].ProcessedPct, wasp.ProcessedPct)
	return nil
}
