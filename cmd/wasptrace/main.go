// Command wasptrace is the post-mortem analyzer for WASP runs: it ingests
// the observability JSONL a run wrote (waspd -obs-out, or any
// obs.WriteJSONL output) and flight-recorder dumps (waspd -flight-dump,
// or the auto-dump a chaos-invariant failure produces) and renders what
// happened without re-running anything.
//
// Usage:
//
//	wasptrace timeline run.jsonl          ASCII gantt of rounds, actions,
//	                                      faults, aborts/retries, recoveries
//	wasptrace timeline wasp-flight.dump   per-column flight summary + sparklines
//	wasptrace latency run.jsonl           adaptation-latency breakdown by phase
//	wasptrace slo run.jsonl               goodput + recovery budget burn
//	wasptrace diff a.jsonl b.jsonl        field-level compare of two runs
//
// Flags after the subcommand:
//
//	timeline: -width N       gantt width in buckets (default 72)
//	slo:      -slo-ratio R   goodput-ratio floor per sample (default 0.95)
//	          -budget F      allowed violating-sample fraction (default 0.05)
//	          -slo-recovery D recovery-time budget (default 2m)
//
// Output is deterministic: the same inputs yield byte-identical reports,
// so two same-seed runs can be compared with cmp(1) — the CI smoke job
// does exactly that. diff exits 1 when the runs differ, 2 on usage or
// read errors.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "timeline":
		err = cmdTimeline(args)
	case "latency":
		err = cmdLatency(args)
	case "slo":
		err = cmdSLO(args)
	case "diff":
		err = cmdDiff(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "wasptrace: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		if de, ok := err.(diffError); ok {
			fmt.Fprintln(os.Stderr, "wasptrace:", de.Error())
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wasptrace:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wasptrace <timeline|latency|slo|diff> [flags] <file> [file2]
  timeline run.jsonl|flight.dump   render the run's gantt / flight summary
  latency  run.jsonl               adaptation-latency breakdown by phase
  slo      run.jsonl               goodput + recovery budget burn
  diff     a.jsonl b.jsonl         field-level compare (exit 1 on diff)`)
}

// diffError marks "the runs differ" so main can exit 1 instead of 2.
type diffError struct{ n int }

func (e diffError) Error() string { return fmt.Sprintf("runs differ in %d line(s)", e.n) }
