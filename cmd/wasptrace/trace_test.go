package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// fixtureJSONL writes a small but representative obs timeline — spans,
// actions, faults, adapt.latency, goodput samples, a recovery, and a
// violation — and returns its path.
func fixtureJSONL(t *testing.T) string {
	t.Helper()
	now := vclock.Time(0)
	o := obs.New(func() vclock.Time { return now })

	now = 40 * time.Second
	round := o.StartSpan("controller.round")
	o.Emit("goodput.sample", obs.F64("ratio", 0.99), obs.F64("generated", 1000), obs.F64("processed", 990))
	o.Emit("action", obs.String("kind", "scale-out"), obs.Int("op", 3), obs.String("detail", "p 1→2"))
	o.Emit("adapt.latency", obs.String("phase", "detect"), obs.String("kind", "scale-out"), obs.Int("op", 3), obs.Dur("dur", 8*time.Second))
	o.Emit("adapt.latency", obs.String("phase", "plan"), obs.String("kind", "scale-out"), obs.Int("op", 3), obs.Dur("dur", 0))
	round.Finish()

	now = 80 * time.Second
	o.Emit("fault.site_crash", obs.Int("site", 2))
	o.Emit("recovery.detected", obs.Int("site", 2))
	now = 100 * time.Second
	o.Emit("adapt.latency", obs.String("phase", "halt"), obs.String("kind", "reconfigure"), obs.Int("op", 3), obs.Dur("dur", 5*time.Second))
	o.Emit("adapt.latency", obs.String("phase", "transfer"), obs.String("kind", "reconfigure"), obs.Int("op", 3), obs.Dur("dur", 15*time.Second))
	o.Emit("goodput.sample", obs.F64("ratio", 0.90), obs.F64("generated", 1000), obs.F64("processed", 900))
	now = 130 * time.Second
	o.Emit("recovery.complete", obs.Int("op", 3), obs.Dur("recovery_time", 50*time.Second))
	o.Emit("adapt.latency", obs.String("phase", "resume"), obs.String("kind", "reconfigure"), obs.Int("op", 3), obs.Dur("dur", 30*time.Second))
	now = 160 * time.Second
	o.Emit("chaos.violation", obs.String("invariant", "conservation"), obs.String("detail", "residual 12.0"))

	// A degraded-control-plane episode: command in flight, one resend,
	// region quarantined on silence, then re-admitted with an epoch bump
	// that fences the stale retry.
	now = 180 * time.Second
	o.Emit("ctrl.command", obs.Int("cmd", 1), obs.String("op", "reassign"), obs.Int("target", 2), obs.Int("epoch", 1))
	now = 210 * time.Second
	o.Emit("ctrl.command_timeout", obs.Int("cmd", 1), obs.Int("attempt", 1))
	o.Emit("ctrl.command_retry", obs.Int("cmd", 1), obs.Int("attempt", 2))
	now = 250 * time.Second
	o.Emit("ctrl.quarantine", obs.Int("region", 1), obs.Dur("silence", 70*time.Second))
	now = 300 * time.Second
	o.Emit("ctrl.readmit", obs.Int("region", 1), obs.Int("epoch", 2))
	o.Emit("ctrl.command_fenced", obs.Int("cmd", 1), obs.Int("epoch", 1), obs.Int("current", 2))

	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fixtureFlight writes a real flight dump through obs.FlightRecorder so
// the parser is tested against the true format, not a hand-copy.
func fixtureFlight(t *testing.T) string {
	t.Helper()
	f := obs.NewFlightRecorder(8)
	backlog := f.Column("stage0.backlog")
	rate := f.Column("stage0.rate")
	for i := 0; i < 12; i++ { // wraps: 12 ticks into capacity 8
		f.BeginTick(time.Duration(i) * time.Second)
		backlog.Set(float64(i * 100))
		rate.Set(float64(1000 + i))
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flight.dump")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	out, rerr := io.ReadAll(r)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

func TestFlightSniffing(t *testing.T) {
	jf, ff := fixtureJSONL(t), fixtureFlight(t)
	if got, err := isFlightDump(jf); err != nil || got {
		t.Fatalf("isFlightDump(jsonl) = %v, %v; want false, nil", got, err)
	}
	if got, err := isFlightDump(ff); err != nil || !got {
		t.Fatalf("isFlightDump(flight) = %v, %v; want true, nil", got, err)
	}
}

func TestLoadFlightRoundTrip(t *testing.T) {
	hdr, rows, err := loadFlight(fixtureFlight(t))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Capacity != 8 || hdr.Rows != 12 {
		t.Fatalf("header = %+v; want capacity 8, rows 12", hdr)
	}
	if len(hdr.Columns) != 2 || hdr.Columns[0] != "stage0.backlog" {
		t.Fatalf("columns = %v", hdr.Columns)
	}
	if len(rows) != 8 {
		t.Fatalf("retained %d rows; want 8 (ring capacity)", len(rows))
	}
	// Oldest-first after the wrap: ticks 4..11.
	if rows[0].T != 4 || rows[7].T != 11 {
		t.Fatalf("row times %v..%v; want 4..11", rows[0].T, rows[7].T)
	}
	if rows[7].V[0] != 1100 {
		t.Fatalf("last backlog = %v; want 1100", rows[7].V[0])
	}
}

func TestTimelineJSONLDeterministicAndComplete(t *testing.T) {
	path := fixtureJSONL(t)
	run := func() string { return capture(t, func() error { return cmdTimeline([]string{"-width", "40", path}) }) }
	a, b := run(), run()
	if a != b {
		t.Fatalf("timeline output not deterministic:\n%s\n----\n%s", a, b)
	}
	for _, want := range []string{"rounds", "actions", "fault.site_crash", "chaos.violation", "recovery.detected", "kind=scale-out",
		"ctrl", "ctrl.quarantine", "ctrl.readmit", "ctrl.command_timeout", "ctrl.command_fenced", "Q quarantine"} {
		if !strings.Contains(a, want) {
			t.Errorf("timeline output missing %q:\n%s", want, a)
		}
	}
	// The ctrl lane itself must carry marks: 6 ctrl events land in it.
	for _, line := range strings.Split(a, "\n") {
		if strings.HasPrefix(line, "ctrl ") {
			if !strings.Contains(line, "Q") || !strings.Contains(line, "(6)") {
				t.Errorf("ctrl lane missing marks: %q", line)
			}
		}
	}
}

func TestTimelineFlightSummary(t *testing.T) {
	path := fixtureFlight(t)
	run := func() string { return capture(t, func() error { return cmdTimeline([]string{path}) }) }
	a, b := run(), run()
	if a != b {
		t.Fatalf("flight summary not deterministic:\n%s\n----\n%s", a, b)
	}
	for _, want := range []string{"capacity 8", "stage0.backlog", "stage0.rate", "trend"} {
		if !strings.Contains(a, want) {
			t.Errorf("flight summary missing %q:\n%s", want, a)
		}
	}
}

func TestLatencyReport(t *testing.T) {
	path := fixtureJSONL(t)
	out := capture(t, func() error { return cmdLatency([]string{path}) })
	for _, phase := range adaptPhases {
		if !strings.Contains(out, phase) {
			t.Errorf("latency report missing phase %q:\n%s", phase, out)
		}
	}
	// dur attrs are duration strings ("8s"); the parser must read them.
	if !strings.Contains(out, "8s") {
		t.Errorf("latency report lost the 8s detect sample:\n%s", out)
	}
	if !strings.Contains(out, "halt/reconfigure") {
		t.Errorf("latency report missing phase/kind breakdown:\n%s", out)
	}
}

func TestSLOReport(t *testing.T) {
	path := fixtureJSONL(t)
	out := capture(t, func() error { return cmdSLO([]string{path}) })
	// One of two samples is below 0.95 → 50% violating, over the 5% budget.
	for _, want := range []string{"samples       2", "violating     1", "VIOLATED", "recoveries    1", "chaos: 1 invariant violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("slo report missing %q:\n%s", want, out)
		}
	}
	// The 50s recovery fits the default 2m budget.
	if !strings.Contains(out, "over budget   0") {
		t.Errorf("recovery verdict wrong:\n%s", out)
	}
	// A tight recovery budget flips the verdict.
	out = capture(t, func() error { return cmdSLO([]string{"-slo-recovery", "10s", path}) })
	if !strings.Contains(out, "over budget   1") {
		t.Errorf("tight recovery budget not enforced:\n%s", out)
	}
}

func TestDiffExitSemantics(t *testing.T) {
	a := fixtureJSONL(t)
	same := capture(t, func() error { return cmdDiff([]string{a, a}) })
	if !strings.Contains(same, "identical") {
		t.Errorf("self-diff not identical:\n%s", same)
	}

	// A differing copy: flip one attribute value.
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(t.TempDir(), "b.jsonl")
	mutated := strings.Replace(string(data), `"ratio":0.9`, `"ratio":0.8`, 1)
	if mutated == string(data) {
		t.Fatal("fixture mutation did not apply")
	}
	if err := os.WriteFile(b, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	var diffErr error
	out := capture(t, func() error {
		diffErr = cmdDiff([]string{a, b})
		return nil
	})
	de, ok := diffErr.(diffError)
	if !ok {
		t.Fatalf("diff of differing files returned %v; want diffError", diffErr)
	}
	if de.n != 1 {
		t.Errorf("diffError.n = %d; want 1", de.n)
	}
	if !strings.Contains(out, "differs") {
		t.Errorf("diff output missing field detail:\n%s", out)
	}
}

func TestQuantileEdges(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(nil) = %v; want 0", got)
	}
	if got := quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("quantile(single, .99) = %v; want 7", got)
	}
	if got := quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("quantile interpolation = %v; want 5", got)
	}
	if got := quantile([]float64{1, 2, 3}, 1); got != 3 {
		t.Errorf("quantile(q=1) = %v; want 3", got)
	}
}

func TestSparkline(t *testing.T) {
	flat := sparkline([]float64{5, 5, 5, 5, 5, 5, 5, 5}, 5, 5, 8)
	if flat != "[        ]" {
		t.Errorf("flat sparkline = %q", flat)
	}
	ramp := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0, 7, 8)
	if ramp != "[ .:-=+*#]" {
		t.Errorf("ramp sparkline = %q", ramp)
	}
}

func TestFieldDiffFallbacks(t *testing.T) {
	// Non-JSON lines fall back to whole-line output.
	got := fieldDiff("not json", "also not")
	if len(got) != 2 || !strings.Contains(got[0], "not json") {
		t.Errorf("non-JSON fallback = %v", got)
	}
	// JSON lines report per-field changes with sorted keys.
	got = fieldDiff(`{"b":1,"a":"x"}`, `{"a":"y","b":1,"c":true}`)
	want := []string{"a: x != y", "c: only in b: true"}
	if len(got) != len(want) {
		t.Fatalf("fieldDiff = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fieldDiff[%d] = %q; want %q", i, got[i], want[i])
		}
	}
}
