package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
)

// maxDiffDetail caps how many differing lines get a field-level breakdown
// before the report switches to a bare count.
const maxDiffDetail = 20

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two input files, got %d", fs.NArg())
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	linesA, err := readLines(pathA)
	if err != nil {
		return err
	}
	linesB, err := readLines(pathB)
	if err != nil {
		return err
	}

	n := len(linesA)
	if len(linesB) > n {
		n = len(linesB)
	}
	var differing int
	for i := 0; i < n; i++ {
		var a, b string
		if i < len(linesA) {
			a = linesA[i]
		}
		if i < len(linesB) {
			b = linesB[i]
		}
		if a == b {
			continue
		}
		differing++
		if differing > maxDiffDetail {
			continue
		}
		switch {
		case a == "":
			fmt.Printf("line %d: only in %s:\n  %s\n", i+1, pathB, clip(b))
		case b == "":
			fmt.Printf("line %d: only in %s:\n  %s\n", i+1, pathA, clip(a))
		default:
			fmt.Printf("line %d: differs:\n", i+1)
			for _, d := range fieldDiff(a, b) {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if differing == 0 {
		fmt.Printf("identical: %d line(s)\n", len(linesA))
		return nil
	}
	if differing > maxDiffDetail {
		fmt.Printf("... and %d more differing line(s)\n", differing-maxDiffDetail)
	}
	return diffError{n: differing}
}

// readLines loads a file as trimmed lines, dropping trailing blanks so a
// missing final newline never counts as a difference.
func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		out = append(out, strings.TrimRight(sc.Text(), "\r"))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for len(out) > 0 && out[len(out)-1] == "" {
		out = out[:len(out)-1]
	}
	return out, nil
}

// fieldDiff compares two JSON lines field by field. Non-JSON lines fall
// back to printing both sides whole.
func fieldDiff(a, b string) []string {
	var objA, objB map[string]interface{}
	if json.Unmarshal([]byte(a), &objA) != nil || json.Unmarshal([]byte(b), &objB) != nil {
		return []string{"a: " + clip(a), "b: " + clip(b)}
	}
	keys := make(map[string]bool)
	for k := range objA { //waspvet:unordered keys are sorted below before use
		keys[k] = true
	}
	for k := range objB { //waspvet:unordered keys are sorted below before use
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys { //waspvet:unordered keys are sorted on the next line
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var out []string
	for _, k := range sorted {
		va, okA := objA[k]
		vb, okB := objB[k]
		switch {
		case !okA:
			out = append(out, fmt.Sprintf("%s: only in b: %s", k, clip(fmtVal(vb))))
		case !okB:
			out = append(out, fmt.Sprintf("%s: only in a: %s", k, clip(fmtVal(va))))
		case !reflect.DeepEqual(va, vb):
			out = append(out, fmt.Sprintf("%s: %s != %s", k, clip(fmtVal(va)), clip(fmtVal(vb))))
		}
	}
	if len(out) == 0 {
		// Same fields, different serialization (key order, whitespace).
		out = []string{"a: " + clip(a), "b: " + clip(b)}
	}
	return out
}

// clip bounds one value's printout so a huge span line stays readable.
func clip(s string) string {
	const max = 160
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}
