package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// entry is one JSONL timeline line (an event or a span) or one span-nested
// event. The obs package writes attrs in emission order; encoding/json
// gives them back as a map, so every renderer sorts keys before printing.
type entry struct {
	T      float64                `json:"t"`
	Type   string                 `json:"type"`
	ID     uint64                 `json:"id"`
	Parent uint64                 `json:"parent"`
	Name   string                 `json:"name"`
	End    *float64               `json:"end"`
	Attrs  map[string]interface{} `json:"attrs"`
	Events []entry                `json:"events"`
}

// str returns a string attribute ("" when absent or not a string).
func (e entry) str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// num returns a numeric attribute (0 when absent or non-numeric).
func (e entry) num(key string) float64 {
	f, _ := e.Attrs[key].(float64)
	return f
}

// flightMagic is the schema marker on the first line of a flight dump
// (obs.FlightSchema).
const flightMagic = `"flight":"wasp-flight/v1"`

// isFlightDump sniffs whether the file is a flight-recorder dump rather
// than an obs JSONL timeline.
func isFlightDump(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	line, err := r.ReadString('\n')
	if err != nil && line == "" {
		return false, nil
	}
	return strings.Contains(line, flightMagic), nil
}

// loadTimeline parses an obs JSONL file into its top-level entries.
func loadTimeline(path string) ([]entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// flatten returns every event of the timeline — top-level events plus
// span-nested ones — ordered by time (stable on the original order).
func flatten(entries []entry) []entry {
	var out []entry
	for _, e := range entries {
		switch e.Type {
		case "event":
			out = append(out, e)
		case "span":
			for _, ev := range e.Events {
				out = append(out, ev)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// endOf returns the latest timestamp in the timeline (span ends included).
func endOf(entries []entry) float64 {
	var end float64
	for _, e := range entries {
		if e.T > end {
			end = e.T
		}
		if e.End != nil && *e.End > end {
			end = *e.End
		}
		for _, ev := range e.Events {
			if ev.T > end {
				end = ev.T
			}
		}
	}
	return end
}

// flightHeader is the first line of a flight dump.
type flightHeader struct {
	Flight   string   `json:"flight"`
	Capacity int      `json:"capacity"`
	Rows     int      `json:"rows"`
	Columns  []string `json:"columns"`
}

// flightRow is one retained tick sample, oldest first in the dump.
type flightRow struct {
	T float64   `json:"t"`
	V []float64 `json:"v"`
}

// loadFlight parses a flight-recorder dump: the header line, then one
// row per retained tick.
func loadFlight(path string) (flightHeader, []flightRow, error) {
	var hdr flightHeader
	f, err := os.Open(path)
	if err != nil {
		return hdr, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return hdr, nil, fmt.Errorf("%s: empty flight dump", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("%s:1: %w", path, err)
	}
	if hdr.Flight == "" {
		return hdr, nil, fmt.Errorf("%s: not a flight dump (missing %s)", path, flightMagic)
	}
	var rows []flightRow
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r flightRow
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return hdr, nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	return hdr, rows, nil
}

// attrString renders an entry's attrs as a stable "k=v k=v" list.
func attrString(e entry, keys ...string) string {
	if len(keys) == 0 {
		keys = make([]string, 0, len(e.Attrs))
		for k := range e.Attrs { //waspvet:unordered keys are sorted on the next line
			keys = append(keys, k)
		}
		sort.Strings(keys)
	}
	var parts []string
	for _, k := range keys {
		v, ok := e.Attrs[k]
		if !ok {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", k, fmtVal(v)))
	}
	return strings.Join(parts, " ")
}

// fmtVal prints one attribute value compactly and deterministically.
func fmtVal(v interface{}) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return fmtFloat(x)
	case bool:
		return fmt.Sprintf("%v", x)
	case nil:
		return "null"
	default:
		b, err := json.Marshal(x)
		if err != nil {
			return fmt.Sprintf("%v", x)
		}
		return string(b)
	}
}

// fmtFloat trims trailing zeros: 12.50 → 12.5, 3.00 → 3.
func fmtFloat(f float64) string {
	s := fmt.Sprintf("%.2f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// table renders rows with aligned columns (same layout idiom as the
// experiment package's tables).
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s ", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	dashes := make([]string, len(header))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	writeRow(dashes)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
