package main

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// adaptPhases is the §6.2 adaptation-cycle order. Phases absent from the
// run are still listed (n=0) so two reports always align row-for-row.
var adaptPhases = []string{"detect", "plan", "halt", "transfer", "resume"}

func cmdLatency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("latency: want exactly one input file, got %d", fs.NArg())
	}
	entries, err := loadTimeline(fs.Arg(0))
	if err != nil {
		return err
	}
	samples := latencySamples(entries)
	total := 0
	for _, s := range samples {
		total += len(s)
	}
	fmt.Printf("adaptation latency: %d adapt.latency event(s)\n\n", total)
	if total == 0 {
		fmt.Println("no adaptation phases recorded (run had no controller actions)")
		return nil
	}

	var rows [][]string
	for _, phase := range adaptPhases {
		rows = append(rows, latencyRow(phase, samples[phase]))
	}
	// Any phase name outside the canonical cycle still shows up.
	var extra []string
	for phase := range samples { //waspvet:unordered names are sorted on the next line
		extra = append(extra, phase)
	}
	sort.Strings(extra)
	for _, phase := range extra {
		known := false
		for _, p := range adaptPhases {
			if p == phase {
				known = true
				break
			}
		}
		if !known {
			rows = append(rows, latencyRow(phase, samples[phase]))
		}
	}
	fmt.Print(table([]string{"phase", "n", "min", "p50", "p95", "p99", "max"}, rows))

	// Per-(phase, kind) breakdown separates reconfigure from replan and
	// recovery-driven cycles.
	kinds := latencyKindSamples(entries)
	if len(kinds) > 1 {
		var keys []string
		for k := range kinds { //waspvet:unordered keys are sorted on the next line
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var krows [][]string
		for _, phase := range adaptPhases {
			for _, k := range keys {
				if !strings.HasPrefix(k, phase+"/") {
					continue
				}
				r := latencyRow(k, kinds[k])
				krows = append(krows, r)
			}
		}
		if len(krows) > 0 {
			fmt.Println()
			fmt.Print(table([]string{"phase/kind", "n", "min", "p50", "p95", "p99", "max"}, krows))
		}
	}
	return nil
}

// latencySamples groups adapt.latency durations (seconds) by phase.
func latencySamples(entries []entry) map[string][]float64 {
	out := make(map[string][]float64)
	for _, ev := range flatten(entries) {
		if ev.Name != "adapt.latency" {
			continue
		}
		phase := ev.str("phase")
		if phase == "" {
			continue
		}
		out[phase] = append(out[phase], durSeconds(ev))
	}
	return out
}

// latencyKindSamples groups durations by "phase/kind".
func latencyKindSamples(entries []entry) map[string][]float64 {
	out := make(map[string][]float64)
	for _, ev := range flatten(entries) {
		if ev.Name != "adapt.latency" {
			continue
		}
		phase, kind := ev.str("phase"), ev.str("kind")
		if phase == "" || kind == "" {
			continue
		}
		out[phase+"/"+kind] = append(out[phase+"/"+kind], durSeconds(ev))
	}
	return out
}

// durSeconds reads the dur attr: obs writes time.Duration values as
// strings like "1m30s"; fall back to a numeric seconds attr.
func durSeconds(ev entry) float64 {
	if s := ev.str("dur"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d.Seconds()
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
	}
	return ev.num("dur")
}

func latencyRow(label string, samples []float64) []string {
	if len(samples) == 0 {
		return []string{label, "0", "-", "-", "-", "-", "-"}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return []string{
		label,
		fmt.Sprintf("%d", len(sorted)),
		fmtSeconds(sorted[0]),
		fmtSeconds(quantile(sorted, 0.50)),
		fmtSeconds(quantile(sorted, 0.95)),
		fmtSeconds(quantile(sorted, 0.99)),
		fmtSeconds(sorted[len(sorted)-1]),
	}
}

// quantile interpolates linearly over an already-sorted sample set.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}
