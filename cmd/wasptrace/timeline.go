package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
)

// lane is one row of the ASCII gantt: a label, the event names it tracks,
// and the mark it paints.
type lane struct {
	label string
	names map[string]byte // event name → mark
}

// timelineLanes maps the run's events onto gantt rows, most interesting
// last so faults and violations sit next to the time axis.
var timelineLanes = []lane{
	{"rounds", map[string]byte{"controller.round": '|'}},
	{"actions", map[string]byte{"action": 'A'}},
	{"adapt", map[string]byte{"adapt.abort": 'x', "adapt.retry": 'r', "adapt.rollback": 'R'}},
	{"recovery", map[string]byte{"recovery.detected": 'd', "recovery.complete": 'C', "recovery.degraded": 'g'}},
	{"ctrl", map[string]byte{
		"ctrl.command": 'c', "ctrl.command_acked": 'a', "ctrl.command_retry": 't',
		"ctrl.command_timeout": 'T', "ctrl.command_fenced": 'e', "ctrl.command_failed": 'X',
		"ctrl.quarantine": 'Q', "ctrl.readmit": 'q',
	}},
	{"faults", map[string]byte{
		"fault.site_crash": 'F', "fault.site_restore": 'h', "fault.link_down": 'F',
		"fault.link_restore": 'h', "fault.link_degrade": 'f', "fault.straggle": 'f',
		"fault.inject": 'F', "fault.heal": 'h', "engine.fail": 'F',
	}},
	{"violations", map[string]byte{"chaos.violation": '!'}},
}

// detailNames are the events worth a line each in the chronology under
// the gantt.
var detailNames = map[string]bool{
	"action": true, "adapt.abort": true, "adapt.retry": true, "adapt.rollback": true,
	"recovery.detected": true, "recovery.complete": true, "recovery.degraded": true,
	"fault.site_crash": true, "fault.site_restore": true, "fault.link_down": true,
	"fault.link_restore": true, "fault.link_degrade": true, "fault.straggle": true,
	"fault.inject": true, "fault.heal": true, "engine.fail": true,
	"chaos.violation": true, "engine.reconfigure_aborted": true, "engine.replan_aborted": true,
	"ctrl.quarantine": true, "ctrl.readmit": true, "ctrl.command_timeout": true,
	"ctrl.command_fenced": true, "ctrl.command_failed": true,
}

func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	width := fs.Int("width", 72, "gantt width in buckets")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("timeline: want exactly one input file, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	flight, err := isFlightDump(path)
	if err != nil {
		return err
	}
	if flight {
		return flightSummary(path, *width)
	}
	entries, err := loadTimeline(path)
	if err != nil {
		return err
	}
	return renderGantt(entries, *width)
}

// renderGantt paints the run's spans and events into per-lane buckets.
func renderGantt(entries []entry, width int) error {
	if width < 10 {
		width = 10
	}
	end := endOf(entries)
	if end <= 0 {
		fmt.Println("timeline: empty run (no timestamped entries)")
		return nil
	}
	// Spans count as events at their start for lane marking, so the
	// rounds lane (controller.round spans) fills in.
	events := flatten(entries)
	for _, e := range entries {
		if e.Type == "span" {
			events = append(events, e)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	bucket := func(t float64) int {
		i := int(t / end * float64(width))
		if i >= width {
			i = width - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}

	fmt.Printf("timeline: %s .. %s (%d buckets of %s)\n\n",
		fmtSeconds(0), fmtSeconds(end), width, fmtSeconds(end/float64(width)))

	labelW := 0
	for _, l := range timelineLanes {
		if len(l.label) > labelW {
			labelW = len(l.label)
		}
	}
	for _, l := range timelineLanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		n := 0
		for _, ev := range events {
			mark, ok := l.names[ev.Name]
			if !ok {
				continue
			}
			n++
			b := bucket(ev.T)
			// Later (more severe, by lane map construction) marks win; a
			// bucket already holding a mark keeps the first one except
			// that lowercase yields to uppercase.
			if row[b] == '.' || (row[b] >= 'a' && row[b] <= 'z' && mark >= 'A' && mark <= 'Z') {
				row[b] = mark
			}
		}
		fmt.Printf("%-*s  %s  (%d)\n", labelW, l.label, row, n)
	}
	fmt.Printf("%-*s  %s^\n", labelW, "", strings.Repeat(" ", width-1))
	fmt.Printf("%-*s  0%s%s\n\n", labelW, "", strings.Repeat(" ", width-len(fmtSeconds(end))), fmtSeconds(end))
	fmt.Println("marks: | round  A action  x abort  r retry  R rollback  d crash-detected")
	fmt.Println("       C recovery-complete  g degraded  F fault  f slow  h heal  ! violation")
	fmt.Println("       c command  a ack  t resend  T timeout  e fenced  X failed  Q quarantine  q readmit")

	// Chronology of the notable events.
	var rows [][]string
	for _, ev := range events {
		if !detailNames[ev.Name] {
			continue
		}
		rows = append(rows, []string{fmtSeconds(ev.T), ev.Name, attrString(ev)})
	}
	if len(rows) > 0 {
		fmt.Println()
		fmt.Print(table([]string{"t", "event", "detail"}, rows))
	} else {
		fmt.Println()
		fmt.Println("no actions, faults, or violations recorded")
	}
	return nil
}

// fmtSeconds renders a virtual timestamp compactly.
func fmtSeconds(s float64) string {
	return fmtFloat(s) + "s"
}

// flightSummary renders a flight dump: per-column min/mean/max/last plus
// an ASCII sparkline over the retained window.
func flightSummary(path string, width int) error {
	hdr, rows, err := loadFlight(path)
	if err != nil {
		return err
	}
	fmt.Printf("flight: %s — capacity %d, %d rows recorded, %d retained\n",
		path, hdr.Capacity, hdr.Rows, len(rows))
	if len(rows) == 0 {
		return nil
	}
	fmt.Printf("window: %s .. %s\n\n", fmtSeconds(rows[0].T), fmtSeconds(rows[len(rows)-1].T))

	var out [][]string
	for ci, col := range hdr.Columns {
		vals := make([]float64, len(rows))
		for ri, r := range rows {
			if ci < len(r.V) {
				vals[ri] = r.V[ci]
			}
		}
		mn, mx, sum := vals[0], vals[0], 0.0
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		out = append(out, []string{
			col, fmtFloat(mn), fmtFloat(sum / float64(len(vals))), fmtFloat(mx),
			fmtFloat(vals[len(vals)-1]), sparkline(vals, mn, mx, width/2),
		})
	}
	fmt.Print(table([]string{"column", "min", "mean", "max", "last", "trend"}, out))
	return nil
}

// sparkLevels are the intensity glyphs of a sparkline, low to high.
const sparkLevels = " .:-=+*#"

// sparkline compresses a series into w glyphs, scaled to [mn, mx].
func sparkline(vals []float64, mn, mx float64, w int) string {
	if w < 8 {
		w = 8
	}
	if len(vals) < w {
		w = len(vals)
	}
	out := make([]byte, w)
	span := mx - mn
	per := float64(len(vals)) / float64(w)
	for i := 0; i < w; i++ {
		lo, hi := int(float64(i)*per), int(float64(i+1)*per)
		if hi > len(vals) {
			hi = len(vals)
		}
		if lo >= hi {
			lo = hi - 1
		}
		var bucketMax float64
		for _, v := range vals[lo:hi] {
			if v > bucketMax {
				bucketMax = v
			}
		}
		if span <= 0 {
			out[i] = sparkLevels[0]
			continue
		}
		level := int((bucketMax - mn) / span * float64(len(sparkLevels)-1))
		if level < 0 {
			level = 0
		}
		if level >= len(sparkLevels) {
			level = len(sparkLevels) - 1
		}
		out[i] = sparkLevels[level]
	}
	return "[" + string(out) + "]"
}
