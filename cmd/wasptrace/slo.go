package main

import (
	"flag"
	"fmt"
	"time"
)

func cmdSLO(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ContinueOnError)
	ratioFloor := fs.Float64("slo-ratio", 0.95, "goodput-ratio floor per sample")
	budget := fs.Float64("budget", 0.05, "allowed fraction of samples below the floor")
	recoverySLO := fs.Duration("slo-recovery", 2*time.Minute, "recovery-time budget per failure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("slo: want exactly one input file, got %d", fs.NArg())
	}
	entries, err := loadTimeline(fs.Arg(0))
	if err != nil {
		return err
	}
	events := flatten(entries)

	// Goodput SLO: fraction of goodput.sample events whose ratio dipped
	// below the floor, measured against the error budget.
	var samples, violating int
	var worst float64 = 1
	var worstAt float64
	for _, ev := range events {
		if ev.Name != "goodput.sample" {
			continue
		}
		samples++
		r := ev.num("ratio")
		if r < *ratioFloor {
			violating++
		}
		if r < worst {
			worst, worstAt = r, ev.T
		}
	}
	fmt.Printf("goodput SLO: ratio >= %s in >= %s of samples\n", fmtFloat(*ratioFloor), fmtPct(1-*budget))
	if samples == 0 {
		fmt.Println("  no goodput.sample events (run predates sampling or obs was off)")
	} else {
		frac := float64(violating) / float64(samples)
		burn := 0.0
		if *budget > 0 {
			burn = frac / *budget
		}
		fmt.Printf("  samples       %d\n", samples)
		fmt.Printf("  violating     %d (%s of samples, floor %s)\n", violating, fmtPct(frac), fmtFloat(*ratioFloor))
		fmt.Printf("  budget burn   %s of the %s budget\n", fmtPct(burn), fmtPct(*budget))
		fmt.Printf("  worst sample  ratio %s at t=%s\n", fmtFloat(worst), fmtSeconds(worstAt))
		if frac > *budget {
			fmt.Println("  verdict       VIOLATED")
		} else {
			fmt.Println("  verdict       ok")
		}
	}

	// Recovery SLO: every recovery.complete must land within the budget of
	// its own downtime measurement (the event carries the downtime).
	fmt.Printf("\nrecovery SLO: complete within %s of the crash\n", recoverySLO)
	var recoveries, late int
	var worstDown float64
	var worstDownAt float64
	for _, ev := range events {
		if ev.Name != "recovery.complete" {
			continue
		}
		recoveries++
		down := recoveryDowntime(ev)
		if down > worstDown {
			worstDown, worstDownAt = down, ev.T
		}
		if down > recoverySLO.Seconds() {
			late++
		}
	}
	if recoveries == 0 {
		fmt.Println("  no recovery.complete events (no crashes, or none recovered)")
	} else {
		fmt.Printf("  recoveries    %d\n", recoveries)
		fmt.Printf("  over budget   %d\n", late)
		fmt.Printf("  worst         %s at t=%s (%s of budget)\n",
			fmtSeconds(worstDown), fmtSeconds(worstDownAt), fmtPct(worstDown/recoverySLO.Seconds()))
		if late > 0 {
			fmt.Println("  verdict       VIOLATED")
		} else {
			fmt.Println("  verdict       ok")
		}
	}

	// Chaos invariants piggyback on the report: any chaos.violation event
	// is an automatic SLO failure worth surfacing here.
	var violations int
	for _, ev := range events {
		if ev.Name == "chaos.violation" {
			violations++
		}
	}
	if violations > 0 {
		fmt.Printf("\nchaos: %d invariant violation(s) recorded — see `wasptrace timeline`\n", violations)
	}
	return nil
}

// recoveryDowntime extracts the downtime seconds from a recovery.complete
// event, whichever attr spelling the run used.
func recoveryDowntime(ev entry) float64 {
	for _, key := range []string{"recovery_time", "downtime", "dur"} {
		if s := ev.str(key); s != "" {
			if d, err := time.ParseDuration(s); err == nil {
				return d.Seconds()
			}
		}
		if f := ev.num(key); f > 0 {
			return f
		}
	}
	return 0
}

// fmtPct renders a fraction as a percentage: 0.0525 → "5.25%".
func fmtPct(f float64) string {
	return fmtFloat(f*100) + "%"
}
