// Command waspvet runs the determinism & concurrency lint suite
// (internal/analysis) over the module. v1 checks: wallclock, maprange,
// globalrand, locksafe, leakygo. v2 adds an interprocedural call graph
// (wallclock/globalrand become "transitively reaches" checks) plus
// genbump (//waspvet:guardedby cache-invalidation contracts), hotalloc
// (//waspvet:hotpath allocation audits) and floatorder (order-sensitive
// float reductions beyond maps). It exits 1 when any non-waived
// diagnostic is found, 2 on a load failure.
//
// Usage:
//
//	go run ./cmd/waspvet ./...          # whole module (the usual form)
//	go run ./cmd/waspvet internal/adapt # specific package dirs
//	go run ./cmd/waspvet -json ./...    # machine-readable, for CI
//	go run ./cmd/waspvet -sarif out.sarif ./...  # SARIF 2.1.0 artifact
//	go run ./cmd/waspvet -list          # describe the registered checks
//	go run ./cmd/waspvet -check maprange,wallclock ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/wasp-stream/wasp/internal/analysis"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("waspvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := fs.String("sarif", "", "also write diagnostics as SARIF 2.1.0 to this file (\"-\" for stdout)")
	list := fs.Bool("list", false, "list registered checks and exit")
	checks := fs.String("check", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*checks, ",") {
			a, ok := analysis.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "waspvet: unknown check %q\n", name)
				return 2
			}
			sel = append(sel, a)
		}
		analyzers = sel
	}

	pkgs, err := loadTargets(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "waspvet: %v\n", err)
		return 2
	}

	// Build every pass up front, then the module-wide call graph that the
	// interprocedural checks (transitive wallclock/globalrand, genbump,
	// hotalloc) consume.
	passes := make([]*analysis.Pass, len(pkgs))
	for i, pkg := range pkgs {
		passes[i] = pkg.Pass()
	}
	graph := analysis.BuildCallGraph(passes)
	for _, p := range passes {
		p.Graph = graph
	}

	cwd, _ := os.Getwd()
	var out []jsonDiag
	for i, pkg := range pkgs {
		for _, d := range analysis.Apply(passes[i], analyzers) {
			p := d.Position(pkg.Fset)
			file := p.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			out = append(out, jsonDiag{File: file, Line: p.Line, Col: p.Column, Check: d.Check, Message: d.Message})
		}
	}

	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, stdout, analyzers, out); err != nil {
			fmt.Fprintf(stderr, "waspvet: %v\n", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []jsonDiag{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "waspvet: %v\n", err)
			return 2
		}
	} else if *sarifOut != "-" {
		for _, d := range out {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Check, d.Message)
		}
	}
	if len(out) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "waspvet: %d diagnostic(s)\n", len(out))
		}
		return 1
	}
	return 0
}

// writeSARIF encodes the diagnostics as a SARIF 2.1.0 log to path
// ("-" = stdout).
func writeSARIF(path string, stdout *os.File, analyzers []*analysis.Analyzer, diags []jsonDiag) error {
	sd := make([]analysis.SARIFDiag, len(diags))
	for i, d := range diags {
		sd[i] = analysis.SARIFDiag{File: d.File, Line: d.Line, Col: d.Col, Check: d.Check, Message: d.Message}
	}
	log := analysis.SARIFReport(analyzers, sd)
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// loadTargets resolves command-line package arguments. "./..." (or no
// args) loads the whole module; anything else is a package directory.
func loadTargets(args []string) ([]*analysis.Package, error) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	wholeModule := len(args) == 0
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			wholeModule = true
			continue
		}
		dirs = append(dirs, strings.TrimSuffix(a, "/..."))
	}
	if wholeModule {
		return loader.LoadModule()
	}
	var out []*analysis.Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
