package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		give    string
		want    adapt.Policy
		wantErr bool
	}{
		{give: "wasp", want: adapt.PolicyWASP},
		{give: "WASP", want: adapt.PolicyWASP},
		{give: "none", want: adapt.PolicyNone},
		{give: "no-adapt", want: adapt.PolicyNone},
		{give: "degrade", want: adapt.PolicyDegrade},
		{give: "re-assign", want: adapt.PolicyReassign},
		{give: "scale", want: adapt.PolicyScale},
		{give: "replan", want: adapt.PolicyReplan},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parsePolicy(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parsePolicy(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parsePolicy(%q) = %v, %v", tt.give, got, err)
		}
	}
}

func TestParseFactors(t *testing.T) {
	tr, err := parseFactors("1, 2 ,0.5", 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{150 * time.Second, 2},
		{250 * time.Second, 0.5},
		{999 * time.Second, 0.5},
	}
	for _, tt := range tests {
		if got := tr.At(vclock.Time(tt.at)); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if _, err := parseFactors("1,x", time.Second); err == nil {
		t.Error("bad factor accepted")
	}
}

func TestParseFactorList(t *testing.T) {
	got, err := parseFactorList("-workload", "1, 2 ,0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseFactorList = %v, want %v", got, want)
		}
	}

	bad := []struct {
		give string
		want []string // substrings the error must carry
	}{
		{"1,x,2", []string{"-workload", `"x"`, "position 2"}},
		{"1,,2", []string{"-workload", "position 2"}},
		{"1,-2", []string{"-workload", `"-2"`, "position 2"}},
		{"NaN", []string{"-workload", "position 1"}},
		{"1,+Inf", []string{"-workload", "position 2"}},
	}
	for _, tt := range bad {
		_, err := parseFactorList("-workload", tt.give)
		if err == nil {
			t.Errorf("parseFactorList(%q) accepted", tt.give)
			continue
		}
		for _, sub := range tt.want {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("parseFactorList(%q) error %q missing %q", tt.give, err, sub)
			}
		}
	}
}

func shortOpts() options {
	return options{
		query:     "eoi",
		policy:    "wasp",
		duration:  2 * time.Minute,
		seed:      1,
		rate:      1000,
		workload:  "1,2",
		bandwidth: "1,1",
		failFor:   time.Minute,
		obsFormat: "jsonl",
	}
}

func TestRunShortScenario(t *testing.T) {
	if err := run(shortOpts()); err != nil {
		t.Fatalf("run: %v", err)
	}

	bad := shortOpts()
	bad.query = "nope"
	if err := run(bad); err == nil {
		t.Fatal("unknown query accepted")
	}

	bad = shortOpts()
	bad.policy = "nope"
	if err := run(bad); err == nil {
		t.Fatal("unknown policy accepted")
	}

	bad = shortOpts()
	bad.workload = "1,x"
	if err := run(bad); err == nil {
		t.Fatal("bad workload factors accepted")
	}

	bad = shortOpts()
	bad.obsFormat = "xml"
	if err := run(bad); err == nil {
		t.Fatal("bad obs format accepted")
	}
}

func TestRunWritesObsFile(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	opt := shortOpts()
	opt.obsOut = path
	if err := run(opt); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data := string(raw)
	if !strings.Contains(data, `"name":"controller.round"`) {
		t.Errorf("obs file missing controller rounds:\n%.500s", data)
	}
	if !strings.Contains(data, `"name":"diagnose"`) {
		t.Errorf("obs file missing diagnosis evidence:\n%.500s", data)
	}
}
