package main

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		give    string
		want    adapt.Policy
		wantErr bool
	}{
		{give: "wasp", want: adapt.PolicyWASP},
		{give: "WASP", want: adapt.PolicyWASP},
		{give: "none", want: adapt.PolicyNone},
		{give: "no-adapt", want: adapt.PolicyNone},
		{give: "degrade", want: adapt.PolicyDegrade},
		{give: "re-assign", want: adapt.PolicyReassign},
		{give: "scale", want: adapt.PolicyScale},
		{give: "replan", want: adapt.PolicyReplan},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parsePolicy(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parsePolicy(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil || got != tt.want {
			t.Errorf("parsePolicy(%q) = %v, %v", tt.give, got, err)
		}
	}
}

func TestParseFactors(t *testing.T) {
	tr, err := parseFactors("1, 2 ,0.5", 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1},
		{150 * time.Second, 2},
		{250 * time.Second, 0.5},
		{999 * time.Second, 0.5},
	}
	for _, tt := range tests {
		if got := tr.At(vclock.Time(tt.at)); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
	if _, err := parseFactors("1,x", time.Second); err == nil {
		t.Error("bad factor accepted")
	}
}

func TestRunShortScenario(t *testing.T) {
	err := run("eoi", "wasp", 2*time.Minute, 1, 1000, "1,2", "1,1", false, 0, time.Minute)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("nope", "wasp", time.Minute, 1, 1000, "1", "1", false, 0, 0); err == nil {
		t.Fatal("unknown query accepted")
	}
	if err := run("eoi", "nope", time.Minute, 1, 1000, "1", "1", false, 0, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
