// Command waspd runs one WASP wide-area deployment end to end: it builds
// the §8.2 testbed (8 edge + 8 data-center sites), plans and deploys one
// of the evaluation queries, drives scripted dynamics against it under a
// chosen adaptation policy, and prints the adaptation log plus the
// delay/ratio summary.
//
// Usage:
//
//	waspd -query topk -policy wasp -duration 25m \
//	      -workload 1,2,1,1,1 -bandwidth 1,1,1,0.5,1
//	waspd -query ysb -policy degrade -fail-at 9m -fail-for 1m
//	waspd -query topk -policy wasp -checkpoint-every 30s \
//	      -fault "crash@5m:site=3,for=2m; linkslow@8m:from=0,to=9,factor=0.5,for=1m"
//	waspd -query topk -policy wasp -obs-out run.jsonl
//	waspd -query topk -policy wasp -obs-out metrics.prom -obs-format prom
//	waspd -query topk -policy wasp -chaos-seed 3 -flight -obs-out run.jsonl
//	waspd -query topk -policy wasp -flight-dump flight.dump
//	waspd -query topk -policy wasp -v
//	waspd -query topk -policy wasp -scale-regions 50 -scale-edges 19
//
// -scale-regions/-scale-edges replace the testbed with a GenerateScale
// planet-scale topology (R regions × (1 hub + E edges) per region):
// sources move to region-fronting ingest sites whose rates derive from
// the simulated user population (-rate is ignored), and deployments above
// the hierarchical threshold plan through the two-level placement path.
//
// The -obs-out file captures the run's full observability record: the
// telemetry registry plus the decision-trace timeline (every controller
// round, the per-operator diagnosis evidence, the Figure-6 branch taken
// and the branches rejected, and the migrations/re-plans each decision
// started). -obs-format selects JSONL events (jsonl), a Prometheus text
// exposition dump (prom), or the human-readable decision audit (audit);
// "-" writes to stdout. -v prints the decision audit after the run.
//
// -flight records one row of per-stage/per-link engine state per
// simulation tick into a fixed-capacity ring; -flight-dump writes it to a
// file after the run (implying -flight), and a chaos-invariant failure
// with -flight on auto-dumps to wasp-flight.dump. Feed the dump and the
// JSONL record to wasptrace for post-mortem analysis.
//
// -fault injects partial failures from a semicolon-separated script (see
// the faults package for the DSL): site crash+restart, link
// blackout/degradation, and site-wide stragglers. -checkpoint-every
// enables periodic localized checkpointing with replication; on a site
// crash the controller re-places the dead tasks and restores their state
// from the freshest surviving replica, so at most one checkpoint interval
// of state is lost.
//
// -ctrl routes site telemetry and controller commands over the simulated
// WAN instead of the ideal in-process channel: reports age by link
// latency, the controller gates diagnosis on evidence staleness, silent
// regions are quarantined and epoch-fenced on re-admission. The flag is
// implied by any control-plane fault in -fault (ctrldown, telemloss,
// ctrldelay) and widens -chaos-seed schedules with those kinds.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/chaos"
	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/experiment"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// options carries every flag of one waspd invocation.
type options struct {
	query      string
	policy     string
	duration   time.Duration
	seed       int64
	rate       float64
	workload   string
	bandwidth  string
	live       bool
	failAt     time.Duration
	failFor    time.Duration
	faults     string
	ctrl       bool
	chaosSeed  int64
	ckptEvery  time.Duration
	obsOut     string
	obsFormat  string
	flight     bool
	flightDump string
	verbose    bool
	scaleReg   int
	scaleEdges int
}

// autoFlightDump is where a chaos-invariant failure dumps the flight
// recorder when -flight is on but no -flight-dump path was given.
const autoFlightDump = "wasp-flight.dump"

func main() {
	var opt options
	flag.StringVar(&opt.query, "query", "topk", "query: ysb | topk | eoi")
	flag.StringVar(&opt.policy, "policy", "wasp", "policy: none | degrade | reassign | scale | replan | wasp")
	flag.DurationVar(&opt.duration, "duration", 25*time.Minute, "virtual run duration")
	flag.Int64Var(&opt.seed, "seed", 1, "deterministic seed")
	flag.Float64Var(&opt.rate, "rate", 10000, "initial events/s per source")
	flag.StringVar(&opt.workload, "workload", "1", "comma-separated workload factors, one per equal phase")
	flag.StringVar(&opt.bandwidth, "bandwidth", "1", "comma-separated bandwidth factors, one per equal phase")
	flag.BoolVar(&opt.live, "live", false, "use live per-link/per-source variation traces instead of phases")
	flag.DurationVar(&opt.failAt, "fail-at", 0, "inject a full failure at this time (0 = none)")
	flag.DurationVar(&opt.failFor, "fail-for", time.Minute, "failure outage length")
	flag.StringVar(&opt.faults, "fault", "", "partial-fault script, e.g. \"crash@5m:site=3,for=2m; slow@8m:site=1,factor=0.5,for=1m\"")
	flag.BoolVar(&opt.ctrl, "ctrl", false, "route telemetry and controller commands over the simulated WAN control plane (auto-enabled by control-plane faults)")
	flag.Int64Var(&opt.chaosSeed, "chaos-seed", 0, "generate a randomized fault schedule from this seed and check run-end invariants (0 = off)")
	flag.DurationVar(&opt.ckptEvery, "checkpoint-every", 0, "checkpoint interval for crash recovery (0 = no checkpointing)")
	flag.StringVar(&opt.obsOut, "obs-out", "", "write the observability record to this file (\"-\" = stdout)")
	flag.StringVar(&opt.obsFormat, "obs-format", "jsonl", "observability output format: jsonl | prom | audit")
	flag.BoolVar(&opt.flight, "flight", false, "record per-tick engine state into a flight-recorder ring (auto-dumped on chaos invariant failure)")
	flag.StringVar(&opt.flightDump, "flight-dump", "", "write the flight recording to this file after the run (implies -flight)")
	flag.BoolVar(&opt.verbose, "v", false, "print the decision audit after the run")
	flag.IntVar(&opt.scaleReg, "scale-regions", 0, "deploy on a GenerateScale topology with this many regions instead of the §8.2 testbed (requires -scale-edges)")
	flag.IntVar(&opt.scaleEdges, "scale-edges", 0, "edge sites per region for -scale-regions")
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "waspd:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (adapt.Policy, error) {
	switch strings.ToLower(s) {
	case "none", "no-adapt":
		return adapt.PolicyNone, nil
	case "degrade":
		return adapt.PolicyDegrade, nil
	case "reassign", "re-assign":
		return adapt.PolicyReassign, nil
	case "scale":
		return adapt.PolicyScale, nil
	case "replan", "re-plan":
		return adapt.PolicyReplan, nil
	case "wasp":
		return adapt.PolicyWASP, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// parseFactorList validates one comma-separated factor list up front,
// naming the flag, the offending token and its 1-based position so a bad
// 25-minute invocation fails immediately instead of mid-run.
func parseFactorList(flagName, s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	factors := make([]float64, 0, len(parts))
	for i, p := range parts {
		tok := strings.TrimSpace(p)
		if tok == "" {
			return nil, fmt.Errorf("%s: empty factor at position %d in %q", flagName, i+1, s)
		}
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad factor %q at position %d", flagName, tok, i+1)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return nil, fmt.Errorf("%s: factor %q at position %d must be a finite non-negative number", flagName, tok, i+1)
		}
		factors = append(factors, f)
	}
	return factors, nil
}

// parseFactors converts a validated factor list into a step trace with the
// given phase length.
func parseFactors(s string, phase time.Duration) (*trace.Trace, error) {
	factors, err := parseFactorList("factor list", s)
	if err != nil {
		return nil, err
	}
	return trace.Steps(phase, factors...), nil
}

func run(opt options) error {
	policy, err := parsePolicy(opt.policy)
	if err != nil {
		return err
	}
	builder, err := experiment.QueryByName(opt.query)
	if err != nil {
		return err
	}
	switch opt.obsFormat {
	case "jsonl", "prom", "audit":
	default:
		return fmt.Errorf("unknown -obs-format %q (want jsonl, prom or audit)", opt.obsFormat)
	}
	// Validate both factor lists before anything runs (even in -live mode,
	// where they are unused: a typo should not pass silently).
	wFactors, err := parseFactorList("-workload", opt.workload)
	if err != nil {
		return err
	}
	bFactors, err := parseFactorList("-bandwidth", opt.bandwidth)
	if err != nil {
		return err
	}
	fs, err := faults.Parse(opt.faults)
	if err != nil {
		return fmt.Errorf("-fault: %w", err)
	}
	// Control-plane faults only make sense against an impaired control
	// plane, so a ctrldown/telemloss/ctrldelay script implies -ctrl.
	if faults.HasControlFaults(fs) {
		opt.ctrl = true
	}

	// One observer shared by the engine, the network simulator and the
	// controller: the run's metrics, decision spans and action log all
	// land here. The experiment runner binds it to the virtual clock; the
	// wall clock only feeds the controller-round latency histogram, so
	// the JSONL timeline stays deterministic for a fixed seed.
	o := obs.New(func() vclock.Time { return 0 })
	//waspvet:wallclock run-latency histogram only; never feeds the deterministic JSONL timeline
	wallStart := time.Now()
	//waspvet:wallclock measures real controller-round latency against wallStart above
	o.SetWallClock(func() time.Duration { return time.Since(wallStart) })

	sc := experiment.Scenario{
		Name:          fmt.Sprintf("%s/%s", opt.query, policy),
		Seed:          opt.seed,
		Duration:      opt.duration,
		Query:         builder,
		RatePerSource: opt.rate,
		Engine:        experiment.EngineConfig(policy),
		Adapt:         experiment.AdaptConfig(policy),
		Obs:           o,
	}
	if opt.scaleReg > 0 || opt.scaleEdges > 0 {
		if opt.scaleReg <= 0 || opt.scaleEdges <= 0 {
			return fmt.Errorf("-scale-regions and -scale-edges must both be positive (got %d, %d)", opt.scaleReg, opt.scaleEdges)
		}
		top, err := topology.GenerateScale(topology.DefaultScaleConfig(opt.seed, opt.scaleReg, opt.scaleEdges))
		if err != nil {
			return err
		}
		// Region-fronting ingest sites with user-population-derived rates;
		// above the hierarchical threshold the scheduler and controller
		// automatically take the two-level placement path.
		ingest, rate := experiment.IngestPlan(top)
		sc.Topology = top
		sc.SourceSites = ingest
		sc.RateForSite = func(s topology.SiteID) float64 { return rate[s] }
		fmt.Printf("waspd: planet-scale topology: %d sites (%d regions x %d edges), %d simulated users\n",
			top.N(), opt.scaleReg, opt.scaleEdges, top.TotalUsers())
	}
	if opt.live {
		sc.PerLinkBandwidth = true
		sc.PerSourceWorkload = true
	} else {
		phases := len(wFactors)
		if len(bFactors) > phases {
			phases = len(bFactors)
		}
		phase := opt.duration / time.Duration(phases)
		sc.Workload = trace.Steps(phase, wFactors...)
		sc.Bandwidth = trace.Steps(phase, bFactors...)
	}
	if opt.flightDump != "" {
		opt.flight = true
	}
	if opt.flight {
		sc.Flight = obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	}
	if opt.failAt > 0 {
		sc.FailAt, sc.FailFor = opt.failAt, opt.failFor
	}
	sc.Faults = fs
	sc.CheckpointEvery = opt.ckptEvery
	if opt.ctrl {
		// Defaults: telemetry every 10s over the simulated WAN, 45s
		// staleness gate, 60s silence before quarantine. The controller
		// site defaults to the scenario's sink.
		sc.Ctrl = &ctrlplane.Config{}
	}
	if opt.chaosSeed != 0 {
		sc.FaultsFor = func(_ *physical.Plan, top *topology.Topology) []faults.Fault {
			ccfg := chaos.Config{
				Sites:    top.N(),
				Duration: opt.duration,
			}
			if opt.ctrl {
				// Widen the fault mix with control-plane kinds; the
				// region count must match what the plane will use so
				// ctrldown targets resolve to real regions.
				ccfg.CtrlRegions = len(ctrlplane.Domains(top, ctrlplane.Config{}))
			}
			schedule := chaos.Generate(opt.chaosSeed, ccfg)
			fmt.Printf("chaos schedule (seed %d): %s\n", opt.chaosSeed, experiment.FaultScript(schedule))
			return schedule
		}
	}

	fmt.Printf("waspd: running %s under policy %s for %v (seed %d)\n", opt.query, policy, opt.duration, opt.seed)
	res, err := experiment.Run(sc)
	if err != nil {
		return err
	}

	fmt.Println("\nAdaptation log:")
	if n, err := res.Obs.WriteActionLog(os.Stdout); err != nil {
		return err
	} else if n == 0 {
		fmt.Println("  (no adaptations)")
	}

	fmt.Println("\nDelay over time (s):")
	var rows [][]string
	n := 6
	bucket := opt.duration / time.Duration(n)
	for i := 0; i < n; i++ {
		from := time.Duration(i) * bucket
		rows = append(rows, []string{
			fmt.Sprintf("[%d,%d)", int(from.Seconds()), int((from + bucket).Seconds())),
			experiment.Fmt(res.MeanDelayBetween(from, from+bucket)),
			experiment.Fmt(res.MeanRatioBetween(from, from+bucket)),
		})
	}
	fmt.Print(experiment.Table([]string{"interval", "avg delay", "ratio"}, rows))

	fmt.Printf("\nSummary: generated=%.0f delivered=%.0f dropped=%.0f processed=%.1f%%\n",
		res.Generated, res.Delivered, res.Dropped, res.ProcessedPct)
	if res.Lost > 0 {
		fmt.Printf("Crash loss: lost=%.0f restored=%.0f net=%.0f (source-equivalent events)\n",
			res.Lost, res.Restored, res.Lost-res.Restored)
	}
	fmt.Printf("Delay percentiles (s): p50=%s p95=%s p99=%s\n",
		experiment.Fmt(res.DelayPercentile(0.50)),
		experiment.Fmt(res.DelayPercentile(0.95)),
		experiment.Fmt(res.DelayPercentile(0.99)))

	// The chaos verdict is computed before the exports but returned last,
	// so a violated run still writes its observability record and — the
	// post-mortem contract — its flight dump.
	var chaosErr error
	if opt.chaosSeed != 0 {
		violations := chaos.Check(*res.Final, experiment.ChaosRecoveryBound)
		chaos.Report(res.Obs, violations)
		fmt.Println("\nChaos invariants:")
		if len(violations) == 0 {
			fmt.Println("  all invariants hold")
		} else {
			for _, v := range violations {
				fmt.Printf("  FAIL %s\n", v)
			}
			chaosErr = fmt.Errorf("chaos: %d invariant violation(s)", len(violations))
			if sc.Flight != nil && opt.flightDump == "" {
				opt.flightDump = autoFlightDump
				fmt.Printf("chaos: dumping flight recording to %s\n", opt.flightDump)
			}
		}
	}

	if opt.verbose {
		fmt.Println("\nDecision audit:")
		if err := res.Obs.WriteAudit(os.Stdout); err != nil {
			return err
		}
	}
	if opt.obsOut != "" {
		if err := writeObs(res.Obs, opt.obsOut, opt.obsFormat); err != nil {
			return err
		}
	}
	if opt.flightDump != "" {
		if err := writeFlight(sc.Flight, opt.flightDump); err != nil {
			return err
		}
	}
	return chaosErr
}

// writeFlight dumps the flight recording to a file ("-" = stdout).
func writeFlight(f *obs.FlightRecorder, path string) error {
	out := os.Stdout
	if path != "-" {
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		defer file.Close()
		out = file
	}
	w := bufio.NewWriter(out)
	if err := f.Dump(w); err != nil {
		return err
	}
	return w.Flush()
}

// writeObs exports the run's observability record in the chosen format.
func writeObs(o *obs.Observer, path, format string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	var err error
	switch format {
	case "jsonl":
		err = o.WriteJSONL(w)
	case "prom":
		err = o.WriteProm(w)
	case "audit":
		err = o.WriteAudit(w)
	default:
		return fmt.Errorf("unknown obs format %q", format)
	}
	if err != nil {
		return err
	}
	return w.Flush()
}
