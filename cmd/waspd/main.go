// Command waspd runs one WASP wide-area deployment end to end: it builds
// the §8.2 testbed (8 edge + 8 data-center sites), plans and deploys one
// of the evaluation queries, drives scripted dynamics against it under a
// chosen adaptation policy, and prints the adaptation log plus the
// delay/ratio summary.
//
// Usage:
//
//	waspd -query topk -policy wasp -duration 25m \
//	      -workload 1,2,1,1,1 -bandwidth 1,1,1,0.5,1
//	waspd -query ysb -policy degrade -fail-at 9m -fail-for 1m
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/experiment"
	"github.com/wasp-stream/wasp/internal/trace"
)

func main() {
	var (
		query     = flag.String("query", "topk", "query: ysb | topk | eoi")
		policy    = flag.String("policy", "wasp", "policy: none | degrade | reassign | scale | replan | wasp")
		duration  = flag.Duration("duration", 25*time.Minute, "virtual run duration")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		rate      = flag.Float64("rate", 10000, "initial events/s per source")
		workload  = flag.String("workload", "1", "comma-separated workload factors, one per equal phase")
		bandwidth = flag.String("bandwidth", "1", "comma-separated bandwidth factors, one per equal phase")
		live      = flag.Bool("live", false, "use live per-link/per-source variation traces instead of phases")
		failAt    = flag.Duration("fail-at", 0, "inject a full failure at this time (0 = none)")
		failFor   = flag.Duration("fail-for", time.Minute, "failure outage length")
	)
	flag.Parse()
	if err := run(*query, *policy, *duration, *seed, *rate, *workload, *bandwidth, *live, *failAt, *failFor); err != nil {
		fmt.Fprintln(os.Stderr, "waspd:", err)
		os.Exit(1)
	}
}

func parsePolicy(s string) (adapt.Policy, error) {
	switch strings.ToLower(s) {
	case "none", "no-adapt":
		return adapt.PolicyNone, nil
	case "degrade":
		return adapt.PolicyDegrade, nil
	case "reassign", "re-assign":
		return adapt.PolicyReassign, nil
	case "scale":
		return adapt.PolicyScale, nil
	case "replan", "re-plan":
		return adapt.PolicyReplan, nil
	case "wasp":
		return adapt.PolicyWASP, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseFactors(s string, phase time.Duration) (*trace.Trace, error) {
	parts := strings.Split(s, ",")
	factors := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad factor %q: %w", p, err)
		}
		factors = append(factors, f)
	}
	return trace.Steps(phase, factors...), nil
}

func run(query, policyName string, duration time.Duration, seed int64, rate float64,
	workload, bandwidth string, live bool, failAt, failFor time.Duration) error {

	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	builder, err := experiment.QueryByName(query)
	if err != nil {
		return err
	}

	sc := experiment.Scenario{
		Name:          fmt.Sprintf("%s/%s", query, policy),
		Seed:          seed,
		Duration:      duration,
		Query:         builder,
		RatePerSource: rate,
		Engine:        experiment.EngineConfig(policy),
		Adapt:         experiment.AdaptConfig(policy),
	}
	if live {
		sc.PerLinkBandwidth = true
		sc.PerSourceWorkload = true
	} else {
		phases := len(strings.Split(workload, ","))
		if b := len(strings.Split(bandwidth, ",")); b > phases {
			phases = b
		}
		phase := duration / time.Duration(phases)
		if sc.Workload, err = parseFactors(workload, phase); err != nil {
			return err
		}
		if sc.Bandwidth, err = parseFactors(bandwidth, phase); err != nil {
			return err
		}
	}
	if failAt > 0 {
		sc.FailAt, sc.FailFor = failAt, failFor
	}

	fmt.Printf("waspd: running %s under policy %s for %v (seed %d)\n", query, policy, duration, seed)
	res, err := experiment.Run(sc)
	if err != nil {
		return err
	}

	fmt.Println("\nAdaptation log:")
	if len(res.Actions) == 0 {
		fmt.Println("  (no adaptations)")
	}
	for _, a := range res.Actions {
		fmt.Printf("  t=%5ds %-10s op=%-3d %s\n",
			int(time.Duration(a.At).Seconds()), a.Kind, a.Op, a.Detail)
	}

	fmt.Println("\nDelay over time (s):")
	var rows [][]string
	n := 6
	bucket := duration / time.Duration(n)
	for i := 0; i < n; i++ {
		from := time.Duration(i) * bucket
		rows = append(rows, []string{
			fmt.Sprintf("[%d,%d)", int(from.Seconds()), int((from + bucket).Seconds())),
			experiment.Fmt(res.MeanDelayBetween(from, from+bucket)),
			experiment.Fmt(res.MeanRatioBetween(from, from+bucket)),
		})
	}
	fmt.Print(experiment.Table([]string{"interval", "avg delay", "ratio"}, rows))

	fmt.Printf("\nSummary: generated=%.0f delivered=%.0f dropped=%.0f processed=%.1f%%\n",
		res.Generated, res.Delivered, res.Dropped, res.ProcessedPct)
	fmt.Printf("Delay percentiles (s): p50=%s p95=%s p99=%s\n",
		experiment.Fmt(res.DelayPercentile(0.50)),
		experiment.Fmt(res.DelayPercentile(0.95)),
		experiment.Fmt(res.DelayPercentile(0.99)))
	return nil
}
