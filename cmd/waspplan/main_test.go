package main

import "testing"

func TestRunAllQueries(t *testing.T) {
	for _, q := range []string{"ysb", "topk", "eoi"} {
		if err := run(q, 1, 3, 20, 10000); err != nil {
			t.Errorf("run(%q): %v", q, err)
		}
	}
}

func TestRunUnknownQuery(t *testing.T) {
	if err := run("nope", 1, 3, 20, 10000); err == nil {
		t.Fatal("unknown query accepted")
	}
}
