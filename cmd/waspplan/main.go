// Command waspplan is an offline planning tool: it shows the joint
// logical/physical plan space for one of the evaluation queries on the
// emulated testbed — the candidate combine orders, their estimated
// delay-volume and WAN consumption, and the task placement of the chosen
// plan (the Query Planner + Scheduler view of §2.1/§4.3).
//
// Usage:
//
//	waspplan -query topk -seed 1 -top 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/wasp-stream/wasp/internal/experiment"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/topology"
)

func main() {
	var (
		query = flag.String("query", "topk", "query: ysb | topk | eoi")
		seed  = flag.Int64("seed", 1, "topology seed")
		top   = flag.Int("top", 5, "how many candidate plans to show")
		max   = flag.Int("max-variants", 40, "combine-order enumeration cap")
		rate  = flag.Float64("rate", 10000, "events/s per source")
	)
	flag.Parse()
	if err := run(*query, *seed, *top, *max, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "waspplan:", err)
		os.Exit(1)
	}
}

func run(query string, seed int64, top, maxVariants int, rate float64) error {
	builder, err := experiment.QueryByName(query)
	if err != nil {
		return err
	}
	topo := topology.Generate(topology.DefaultGenConfig(seed))
	q := builder(queries.Config{
		SourceSites:   topo.SitesOfKind(topology.Edge),
		SinkSite:      topo.SitesOfKind(topology.DataCenter)[0],
		RatePerSource: rate,
	})

	fmt.Printf("waspplan: query %s on the %d-site testbed (seed %d)\n", q.Name, topo.N(), seed)
	fmt.Printf("  sources: %d (at the edge sites)   stateful: %v   state: %s\n",
		len(q.SourceOps), q.Stateful, q.StateDesc)

	best, all, err := physical.PlanQuery(q.Graph, q.Spec, topo, physical.PlannerConfig{
		ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8, DefaultParallelism: 1},
		MaxVariants:    maxVariants,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%d schedulable plan candidates (of %d enumerated combine orders):\n",
		len(all), maxVariants)
	header := []string{"#", "combine order", "delay-volume", "WAN MB/s", "cost"}
	var rows [][]string
	for i, c := range all {
		if i >= top {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			c.Variant.Tree.String(),
			experiment.Fmt(c.DelayVolume),
			experiment.Fmt(c.WANBytesPerSec / 1e6),
			experiment.Fmt(c.Cost),
		})
	}
	fmt.Print(experiment.Table(header, rows))

	fmt.Printf("\nChosen plan %v — task placement:\n", best.Variant.Tree)
	g := best.Plan.Graph
	var prows [][]string
	for _, id := range g.OperatorIDs() {
		st := best.Plan.Stages[id]
		sites := ""
		for i, s := range st.Sites {
			if i > 0 {
				sites += " "
			}
			site := topo.Site(s)
			sites += fmt.Sprintf("%s(%d)", site.Name, s)
		}
		prows = append(prows, []string{
			fmt.Sprintf("op%d", id), st.Op.Name, st.Op.Kind.String(),
			fmt.Sprintf("%d", st.Parallelism()), sites,
		})
	}
	fmt.Print(experiment.Table([]string{"id", "operator", "kind", "p", "sites"}, prows))

	delayVol, wan, err := physical.EstimateCost(best.Plan, topo, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nEstimated cross-site traffic: %.2f MB/s; delay-volume %.3f; latency budget per hop <= %v\n",
		wan/1e6, delayVol, 300*time.Millisecond)
	return nil
}
