// Command waspbench regenerates the tables and figures of the WASP
// paper's evaluation (§8) on the emulated wide-area testbed.
//
// Usage:
//
//	waspbench -experiment all
//	waspbench -experiment fig8 -seed 3
//	waspbench -experiment fig11 -duration 30m
//	waspbench -experiment all -j 4 -bench-json BENCH.json
//
// Experiments: fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 tab2
// tab3, the extensions (adaptlat, straggler, ablation-alpha,
// ablation-monitor, ablation-constraints, chaos, ctrlchaos, scale), or
// "all". adaptlat
// sweeps the adaptation cycle's per-phase latency
// (detect/plan/halt/transfer/resume) across the three queries under the
// full WASP policy with a mid-run site crash. Figures 8/9 and 11/12 share
// underlying runs; requesting either member executes the runs once and
// prints the requested panels. "chaos" sweeps randomized fault schedules
// over 8 seeds starting at -seed and checks the run-end invariants; its
// output is byte-identical for the same seeds. "ctrlchaos" degrades the
// control plane instead of the data plane — a telemetry-loss × partition
// grid plus randomized mixed data+control schedules, judged by the
// extended invariant set; it never runs under "all" (every "all"
// experiment keeps the ideal controller). "scale" runs the planet-scale
// trajectory sweep — GenerateScale topologies from 16 to 1000 sites with
// millions of simulated users, hierarchical two-level placement, and a
// mid-run straggler — printing the deterministic trajectory table; its
// wall-clock measurements (warm placement-solve ms, ticks/sec per cell)
// ride the -bench-json metrics map only.
//
// -j sets the experiment worker-pool width (default GOMAXPROCS): the
// cells of each scenario grid run concurrently but results come back in
// submission order, so the output is byte-identical for any -j.
// -bench-json writes a machine-readable performance record — wall time,
// simulation ticks, ticks/sec, and bytes/allocs per tick for every
// experiment executed — for tracking the bench trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/experiment"
)

func main() {
	var (
		name      = flag.String("experiment", "all", "experiment id (fig2..fig14, tab2, tab3, straggler, ablation-*, scale, all)")
		seed      = flag.Int64("seed", 1, "deterministic seed for topology and traces")
		duration  = flag.Duration("duration", 0, "override run duration (0 = paper default)")
		workers   = flag.Int("j", 0, "experiment worker-pool width (0 = GOMAXPROCS / WASP_BENCH_PARALLEL)")
		benchPath = flag.String("bench-json", "", "write a machine-readable bench record to this file")
	)
	flag.Parse()
	if *workers > 0 {
		experiment.SetParallelism(*workers)
	}
	var rec *recorder
	if *benchPath != "" {
		rec = newRecorder(*seed, *duration)
	}
	if err := run(strings.ToLower(*name), *seed, *duration, rec); err != nil {
		fmt.Fprintln(os.Stderr, "waspbench:", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := rec.write(*benchPath); err != nil {
			fmt.Fprintln(os.Stderr, "waspbench:", err)
			os.Exit(1)
		}
		// Read the record straight back: a report that fails its own
		// row validation must never enter the bench trajectory.
		if _, err := loadBenchReport(*benchPath); err != nil {
			fmt.Fprintln(os.Stderr, "waspbench:", err)
			os.Exit(1)
		}
	}
}

// benchRecord is the per-experiment entry of the -bench-json report.
// Static (tickless) experiments — fig2/fig7/tab2/tab3 regenerate tables
// from closed-form models without running the engine — carry no tick
// metrics at all: the fields are omitted rather than emitted as zeros so
// downstream tooling can never mistake "no ticks" for "infinitely slow".
type benchRecord struct {
	Experiment    string  `json:"experiment"`
	WallSeconds   float64 `json:"wall_seconds"`
	Ticks         int64   `json:"ticks,omitempty"`
	TicksPerSec   float64 `json:"ticks_per_sec,omitempty"`
	BytesPerTick  float64 `json:"bytes_per_tick,omitempty"`
	AllocsPerTick float64 `json:"allocs_per_tick,omitempty"`
	// Metrics carries experiment-specific wall-clock measurements (e.g.
	// the scale sweep's per-cell placement-solve ms) stashed via
	// recorder.stash during the run.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// tickDriven reports whether the record measured an engine-driven
// experiment (one that advanced simulation ticks).
func (r benchRecord) tickDriven() bool { return r.Ticks > 0 }

// benchReport is the full -bench-json document. One file per commit forms
// the repository's bench trajectory.
type benchReport struct {
	Schema           string        `json:"schema"`
	GoVersion        string        `json:"go_version"`
	NumCPU           int           `json:"num_cpu"`
	Parallelism      int           `json:"parallelism"`
	Seed             int64         `json:"seed"`
	DurationOverride string        `json:"duration_override,omitempty"`
	Experiments      []benchRecord `json:"experiments"`
	TotalWallSeconds float64       `json:"total_wall_seconds"`
	TotalTicks       int64         `json:"total_ticks"`
}

// recorder accumulates per-experiment wall/tick/memory measurements. The
// wall clock never feeds the simulation — experiments run on the virtual
// clock — it only annotates the bench report.
type recorder struct {
	report benchReport
	// pending holds metrics stashed by the currently-measured experiment;
	// measure attaches them to the record it appends.
	pending map[string]float64
}

// stash files experiment-specific metrics with the record of the
// experiment currently under measure. A nil recorder discards them.
func (r *recorder) stash(m map[string]float64) {
	if r == nil || len(m) == 0 {
		return
	}
	if r.pending == nil {
		r.pending = make(map[string]float64, len(m))
	}
	for k, v := range m {
		r.pending[k] = v
	}
}

func newRecorder(seed int64, duration time.Duration) *recorder {
	r := &recorder{report: benchReport{
		Schema:      "wasp-bench/v1",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Parallelism: experiment.Parallelism(),
		Seed:        seed,
	}}
	if duration != 0 {
		r.report.DurationOverride = duration.String()
	}
	return r
}

// measure runs fn and appends its wall time, tick count, and per-tick
// allocation profile under the given experiment name. A nil recorder just
// runs fn (no -bench-json).
func (r *recorder) measure(name string, fn func() error) error {
	if r == nil {
		return fn()
	}
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	ticks0 := engine.TickCount()
	//waspvet:wallclock bench-report timing only; experiments run on the virtual clock
	start := time.Now()
	if err := fn(); err != nil {
		return err
	}
	//waspvet:wallclock bench-report timing only; experiments run on the virtual clock
	wall := time.Since(start).Seconds()
	ticks := engine.TickCount() - ticks0
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	rec := benchRecord{Experiment: name, WallSeconds: wall, Ticks: ticks, Metrics: r.pending}
	r.pending = nil
	if wall > 0 && ticks > 0 {
		rec.TicksPerSec = float64(ticks) / wall
	}
	if ticks > 0 {
		rec.BytesPerTick = float64(after.TotalAlloc-before.TotalAlloc) / float64(ticks)
		rec.AllocsPerTick = float64(after.Mallocs-before.Mallocs) / float64(ticks)
	}
	r.report.Experiments = append(r.report.Experiments, rec)
	r.report.TotalWallSeconds += wall
	r.report.TotalTicks += ticks
	return nil
}

func (r *recorder) write(path string) error {
	data, err := json.MarshalIndent(r.report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadBenchReport reads a -bench-json document back and validates its
// rows. A zero-tick row claiming per-tick metrics is corrupt (the old
// encoder emitted ticks_per_sec:0/allocs_per_tick:0 for static
// experiments, which poisoned trajectory comparisons); a tick-driven row
// missing them is equally rejected.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if report.Schema != "wasp-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, report.Schema)
	}
	for _, e := range report.Experiments {
		if e.tickDriven() {
			if e.TicksPerSec <= 0 || e.BytesPerTick <= 0 || e.AllocsPerTick <= 0 {
				return nil, fmt.Errorf("%s: tick-driven row %q missing per-tick metrics", path, e.Experiment)
			}
			continue
		}
		if e.TicksPerSec != 0 || e.BytesPerTick != 0 || e.AllocsPerTick != 0 {
			return nil, fmt.Errorf("%s: tickless row %q carries per-tick metrics", path, e.Experiment)
		}
	}
	for _, e := range report.Experiments {
		for k, v := range e.Metrics {
			if k == "" || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%s: row %q has invalid metric %q = %v", path, e.Experiment, k, v)
			}
		}
	}
	return &report, nil
}

func run(name string, seed int64, duration time.Duration, rec *recorder) error {
	wants := func(ids ...string) bool {
		if name == "all" {
			return true
		}
		for _, id := range ids {
			if name == id {
				return true
			}
		}
		return false
	}
	ran := false

	if wants("fig2") {
		if err := rec.measure("fig2", func() error {
			fmt.Println(experiment.Fig2(42))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig7") {
		if err := rec.measure("fig7", func() error {
			fmt.Println(experiment.Fig7(seed))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("tab2", "table2") {
		if err := rec.measure("tab2", func() error {
			fmt.Println(experiment.Table2())
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("tab3", "table3") {
		if err := rec.measure("tab3", func() error {
			fmt.Println(experiment.Table3())
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig8", "fig9") {
		if err := rec.measure("fig8", func() error {
			runs, err := experiment.RunFig8(seed, duration)
			if err != nil {
				return err
			}
			if wants("fig8") {
				fmt.Println(experiment.FormatFig8(runs, duration))
			}
			if wants("fig9") {
				fmt.Println(experiment.FormatFig9(runs, duration))
			}
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig10") {
		if err := rec.measure("fig10", func() error {
			runs, err := experiment.RunFig10(seed, duration)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFig10(runs, duration))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig11", "fig12") {
		if err := rec.measure("fig11", func() error {
			runs, err := experiment.RunFig11(seed, duration)
			if err != nil {
				return err
			}
			if wants("fig11") {
				fmt.Println(experiment.FormatFig11(runs, duration))
			}
			if wants("fig12") {
				fmt.Println(experiment.FormatFig12(runs))
			}
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig13") {
		if err := rec.measure("fig13", func() error {
			runs, err := experiment.RunFig13(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFig13(runs))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("fig14") {
		if err := rec.measure("fig14", func() error {
			runs, err := experiment.RunFig14(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatFig14(runs))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("adaptlat") {
		if err := rec.measure("adaptlat", func() error {
			runs, err := experiment.RunAdaptLat(seed, duration)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatAdaptLat(runs))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("straggler") {
		if err := rec.measure("straggler", func() error {
			runs, err := experiment.RunStraggler(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatStraggler(runs))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("ablation-alpha") {
		if err := rec.measure("ablation-alpha", func() error {
			rows, err := experiment.RunAlphaAblation(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatAblation("Ablation: bandwidth headroom α (§4.1)", rows))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("ablation-monitor") {
		if err := rec.measure("ablation-monitor", func() error {
			rows, err := experiment.RunMonitorIntervalAblation(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatAblation("Ablation: monitoring interval (§8.2)", rows))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("chaos") {
		if err := rec.measure("chaos", func() error {
			runs, err := experiment.RunChaos(seed, 8, duration)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatChaos(runs))
			for _, r := range runs {
				if len(r.Violations) > 0 {
					return fmt.Errorf("chaos: seed %d violated %d invariant(s)", r.Seed, len(r.Violations))
				}
			}
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	// ctrlchaos runs only when asked for by name: it is the one experiment
	// with a non-ideal control plane, and "all" must stay byte-identical
	// to the ideal-controller output it has always produced.
	if name == "ctrlchaos" {
		if err := rec.measure("ctrlchaos", func() error {
			res, err := experiment.RunCtrlChaos(seed, 8, duration)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatCtrlChaos(res))
			for _, c := range res.Cells {
				if len(c.Violations) > 0 {
					return fmt.Errorf("ctrlchaos: cell loss=%v part=%v violated %d invariant(s)", c.LossRate, c.PartitionFor, len(c.Violations))
				}
			}
			for _, r := range res.Runs {
				if len(r.Violations) > 0 {
					return fmt.Errorf("ctrlchaos: seed %d violated %d invariant(s)", r.Seed, len(r.Violations))
				}
			}
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("scale") {
		if err := rec.measure("scale", func() error {
			cells, err := experiment.RunScale(seed, duration, nil)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatScale(cells))
			rec.stash(experiment.ScaleMetrics(cells))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if wants("ablation-constraints") {
		if err := rec.measure("ablation-constraints", func() error {
			rows, err := experiment.RunConstraintAblation(seed)
			if err != nil {
				return err
			}
			fmt.Println(experiment.FormatAblation("Ablation: weighted vs conservative bandwidth constraints (actions = schedulable variants; mean delay column = plan cost)", rows))
			return nil
		}); err != nil {
			return err
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
