// Command waspbench regenerates the tables and figures of the WASP
// paper's evaluation (§8) on the emulated wide-area testbed.
//
// Usage:
//
//	waspbench -experiment all
//	waspbench -experiment fig8 -seed 3
//	waspbench -experiment fig11 -duration 30m
//
// Experiments: fig2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 tab2
// tab3, the extensions (straggler, ablation-alpha, ablation-monitor,
// ablation-constraints), or "all". Figures 8/9 and 11/12 share underlying
// runs; requesting either member executes the runs once and prints the
// requested panels.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/experiment"
)

func main() {
	var (
		name     = flag.String("experiment", "all", "experiment id (fig2..fig14, tab2, tab3, straggler, ablation-*, all)")
		seed     = flag.Int64("seed", 1, "deterministic seed for topology and traces")
		duration = flag.Duration("duration", 0, "override run duration (0 = paper default)")
	)
	flag.Parse()
	if err := run(strings.ToLower(*name), *seed, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "waspbench:", err)
		os.Exit(1)
	}
}

func run(name string, seed int64, duration time.Duration) error {
	wants := func(ids ...string) bool {
		if name == "all" {
			return true
		}
		for _, id := range ids {
			if name == id {
				return true
			}
		}
		return false
	}
	ran := false

	if wants("fig2") {
		fmt.Println(experiment.Fig2(42))
		ran = true
	}
	if wants("fig7") {
		fmt.Println(experiment.Fig7(seed))
		ran = true
	}
	if wants("tab2", "table2") {
		fmt.Println(experiment.Table2())
		ran = true
	}
	if wants("tab3", "table3") {
		fmt.Println(experiment.Table3())
		ran = true
	}
	if wants("fig8", "fig9") {
		runs, err := experiment.RunFig8(seed, duration)
		if err != nil {
			return err
		}
		if wants("fig8") {
			fmt.Println(experiment.FormatFig8(runs, duration))
		}
		if wants("fig9") {
			fmt.Println(experiment.FormatFig9(runs, duration))
		}
		ran = true
	}
	if wants("fig10") {
		runs, err := experiment.RunFig10(seed, duration)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatFig10(runs, duration))
		ran = true
	}
	if wants("fig11", "fig12") {
		runs, err := experiment.RunFig11(seed, duration)
		if err != nil {
			return err
		}
		if wants("fig11") {
			fmt.Println(experiment.FormatFig11(runs, duration))
		}
		if wants("fig12") {
			fmt.Println(experiment.FormatFig12(runs))
		}
		ran = true
	}
	if wants("fig13") {
		runs, err := experiment.RunFig13(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatFig13(runs))
		ran = true
	}
	if wants("fig14") {
		runs, err := experiment.RunFig14(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatFig14(runs))
		ran = true
	}
	if wants("straggler") {
		runs, err := experiment.RunStraggler(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatStraggler(runs))
		ran = true
	}
	if wants("ablation-alpha") {
		rows, err := experiment.RunAlphaAblation(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation: bandwidth headroom α (§4.1)", rows))
		ran = true
	}
	if wants("ablation-monitor") {
		rows, err := experiment.RunMonitorIntervalAblation(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation: monitoring interval (§8.2)", rows))
		ran = true
	}
	if wants("ablation-constraints") {
		rows, err := experiment.RunConstraintAblation(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiment.FormatAblation("Ablation: weighted vs conservative bandwidth constraints (actions = schedulable variants; mean delay column = plan cost)", rows))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
