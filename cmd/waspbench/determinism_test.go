package main

import (
	"bytes"
	"io"
	"os"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/experiment"
)

// captureRun executes run() with the experiment pool at the given width
// and returns everything it printed. Stdout is drained concurrently: the
// full -experiment all transcript is far larger than a pipe buffer.
func captureRun(t *testing.T, name string, workers int, duration time.Duration) string {
	t.Helper()
	old := experiment.Parallelism()
	defer experiment.SetParallelism(old)
	experiment.SetParallelism(workers)

	saved := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(&buf, r)
		done <- err
	}()
	runErr := run(name, 1, duration, nil)
	w.Close()
	os.Stdout = saved
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(%q, -j %d): %v", name, workers, runErr)
	}
	return buf.String()
}

// TestAllExperimentsByteIdenticalAcrossWorkers is the whole-suite
// extension of the PR 4 fig8/fig11 harness: `-experiment all` — every
// figure, table, extension, and the chaos sweep — must render
// byte-identically for the same seed no matter the worker-pool width.
// This is the regression net under the columnar tick core: any hidden
// map-order or scheduling nondeterminism in the flat hot path shows up
// here as a diff.
func TestAllExperimentsByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	// Paper-default durations: the chaos sweep's run-end invariants
	// (all sites healed, recovery complete) need the full windows.
	const duration = 0 * time.Second

	seq := captureRun(t, "all", 1, duration)
	par := captureRun(t, "all", 4, duration)
	if seq == "" {
		t.Fatal("-experiment all produced no output")
	}
	if seq != par {
		t.Errorf("-experiment all output differs between -j 1 and -j 4 (%d vs %d bytes)", len(seq), len(par))
	}

	// Same width, same seed → byte-identical replay.
	again := captureRun(t, "all", 4, duration)
	if par != again {
		t.Error("-experiment all output differs between two same-seed -j 4 runs")
	}
}
