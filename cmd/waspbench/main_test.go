package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunStaticExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "fig7", "tab2", "tab3", "table2"} {
		if err := run(id, 1, 0, nil); err != nil {
			t.Errorf("run(%q): %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 0, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunShortenedDynamicExperiment(t *testing.T) {
	if err := run("fig9", 1, 250*time.Second, nil); err != nil {
		t.Fatalf("run(fig9): %v", err)
	}
}

// TestBenchJSONRecord runs one shortened dynamic experiment under the
// recorder and checks the written report carries plausible measurements:
// simulation ticks were counted and per-tick costs are positive.
func TestBenchJSONRecord(t *testing.T) {
	rec := newRecorder(1, 250*time.Second)
	if err := run("fig10", 1, 250*time.Second, rec); err != nil {
		t.Fatalf("run(fig10): %v", err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rec.write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if report.Schema != "wasp-bench/v1" {
		t.Errorf("schema = %q, want wasp-bench/v1", report.Schema)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].Experiment != "fig10" {
		t.Fatalf("experiments = %+v, want one fig10 entry", report.Experiments)
	}
	e := report.Experiments[0]
	if e.Ticks <= 0 || e.WallSeconds <= 0 || e.TicksPerSec <= 0 {
		t.Errorf("implausible measurements: %+v", e)
	}
	if e.BytesPerTick <= 0 || e.AllocsPerTick <= 0 {
		t.Errorf("per-tick memory profile missing: %+v", e)
	}
	if report.TotalTicks != e.Ticks {
		t.Errorf("TotalTicks = %d, want %d", report.TotalTicks, e.Ticks)
	}
	if _, err := loadBenchReport(path); err != nil {
		t.Errorf("loadBenchReport rejected a valid tick-driven report: %v", err)
	}
}

// TestBenchJSONTicklessRows: static experiments never advance the engine,
// so their rows must omit every tick metric instead of recording zeros —
// a ticks_per_sec:0 row used to read as "infinitely slow" in trajectory
// comparisons.
func TestBenchJSONTicklessRows(t *testing.T) {
	rec := newRecorder(1, 0)
	for _, id := range []string{"fig2", "fig7", "tab2", "tab3"} {
		if err := run(id, 1, 0, rec); err != nil {
			t.Fatalf("run(%q): %v", id, err)
		}
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rec.write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ticks", "ticks_per_sec", "bytes_per_tick", "allocs_per_tick"} {
		if strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("tickless report contains %q:\n%s", key, data)
		}
	}
	report, err := loadBenchReport(path)
	if err != nil {
		t.Fatalf("loadBenchReport rejected a valid tickless report: %v", err)
	}
	if len(report.Experiments) != 4 {
		t.Fatalf("experiments = %d, want 4", len(report.Experiments))
	}
	for _, e := range report.Experiments {
		if e.tickDriven() {
			t.Errorf("static experiment %q recorded %d ticks", e.Experiment, e.Ticks)
		}
		if e.WallSeconds <= 0 {
			t.Errorf("experiment %q has no wall time: %+v", e.Experiment, e)
		}
	}
}

// TestLoadBenchReportRejectsCorruptRows pins the reader's validation: a
// zero-tick row claiming per-tick metrics (the pre-fix encoding) and a
// tick-driven row missing them are both rejected.
func TestLoadBenchReportRejectsCorruptRows(t *testing.T) {
	write := func(t *testing.T, rec benchRecord) string {
		t.Helper()
		r := newRecorder(1, 0)
		r.report.Experiments = append(r.report.Experiments, rec)
		path := filepath.Join(t.TempDir(), "bench.json")
		if err := r.write(path); err != nil {
			t.Fatal(err)
		}
		return path
	}

	zeroTick := write(t, benchRecord{Experiment: "tab2", WallSeconds: 0.1, TicksPerSec: 31337, AllocsPerTick: 4})
	if _, err := loadBenchReport(zeroTick); err == nil {
		t.Error("zero-tick row with per-tick metrics accepted")
	}

	gutted := write(t, benchRecord{Experiment: "fig10", WallSeconds: 0.1, Ticks: 6000})
	if _, err := loadBenchReport(gutted); err == nil {
		t.Error("tick-driven row without per-tick metrics accepted")
	}

	badSchema := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(badSchema, []byte(`{"schema":"wasp-bench/v0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBenchReport(badSchema); err == nil {
		t.Error("unknown schema accepted")
	}
}
