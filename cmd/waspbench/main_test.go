package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunStaticExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "fig7", "tab2", "tab3", "table2"} {
		if err := run(id, 1, 0, nil); err != nil {
			t.Errorf("run(%q): %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 0, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunShortenedDynamicExperiment(t *testing.T) {
	if err := run("fig9", 1, 250*time.Second, nil); err != nil {
		t.Fatalf("run(fig9): %v", err)
	}
}

// TestBenchJSONRecord runs one shortened dynamic experiment under the
// recorder and checks the written report carries plausible measurements:
// simulation ticks were counted and per-tick costs are positive.
func TestBenchJSONRecord(t *testing.T) {
	rec := newRecorder(1, 250*time.Second)
	if err := run("fig10", 1, 250*time.Second, rec); err != nil {
		t.Fatalf("run(fig10): %v", err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rec.write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if report.Schema != "wasp-bench/v1" {
		t.Errorf("schema = %q, want wasp-bench/v1", report.Schema)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].Experiment != "fig10" {
		t.Fatalf("experiments = %+v, want one fig10 entry", report.Experiments)
	}
	e := report.Experiments[0]
	if e.Ticks <= 0 || e.WallSeconds <= 0 || e.TicksPerSec <= 0 {
		t.Errorf("implausible measurements: %+v", e)
	}
	if e.BytesPerTick <= 0 || e.AllocsPerTick <= 0 {
		t.Errorf("per-tick memory profile missing: %+v", e)
	}
	if report.TotalTicks != e.Ticks {
		t.Errorf("TotalTicks = %d, want %d", report.TotalTicks, e.Ticks)
	}
}
