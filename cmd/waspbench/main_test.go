package main

import (
	"testing"
	"time"
)

func TestRunStaticExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "fig7", "tab2", "tab3", "table2"} {
		if err := run(id, 1, 0); err != nil {
			t.Errorf("run(%q): %v", id, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", 1, 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunShortenedDynamicExperiment(t *testing.T) {
	if err := run("fig9", 1, 250*time.Second); err != nil {
		t.Fatalf("run(fig9): %v", err)
	}
}
