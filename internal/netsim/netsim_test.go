package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// twoSite builds a minimal 2-site topology with a known 80 Mbps (=10 MB/s)
// link in each direction.
func twoSite(t *testing.T) *topology.Topology {
	t.Helper()
	sites := []topology.Site{
		{ID: 0, Name: "a", Kind: topology.DataCenter, Slots: 8},
		{ID: 1, Name: "b", Kind: topology.DataCenter, Slots: 8},
	}
	lat := [][]time.Duration{
		{time.Millisecond, 50 * time.Millisecond},
		{50 * time.Millisecond, time.Millisecond},
	}
	bw := [][]topology.Mbps{
		{10000, 80},
		{80, 10000},
	}
	top, err := topology.New(sites, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func step(n *Network, now vclock.Time) {
	n.Step(now, time.Second)
}

func TestCapacityStatic(t *testing.T) {
	n := New(twoSite(t))
	if got, want := n.Capacity(0, 1, 0), 10e6; got != want {
		t.Fatalf("Capacity = %v, want %v", got, want)
	}
	if got := n.CapacityMbps(0, 1, 0); got != 80 {
		t.Fatalf("CapacityMbps = %v, want 80", got)
	}
}

func TestGlobalFactorHalvesBandwidth(t *testing.T) {
	n := New(twoSite(t))
	n.SetGlobalFactor(trace.Steps(900*time.Second, 1, 0.5))
	if got := n.Capacity(0, 1, 0); got != 10e6 {
		t.Fatalf("pre-dynamics Capacity = %v, want 1e7", got)
	}
	if got := n.Capacity(0, 1, 900*time.Second); got != 5e6 {
		t.Fatalf("post-dynamics Capacity = %v, want 5e6", got)
	}
	// Intra-site fabric must not be modulated.
	if got := n.Capacity(0, 0, 900*time.Second); got != topology.Mbps(10000).BytesPerSec() {
		t.Fatalf("intra-site Capacity modulated: %v", got)
	}
}

func TestLinkFactorComposesWithGlobal(t *testing.T) {
	n := New(twoSite(t))
	n.SetGlobalFactor(trace.Constant(0.5))
	n.SetLinkFactor(0, 1, trace.Constant(0.5))
	if got := n.Capacity(0, 1, 0); got != 2.5e6 {
		t.Fatalf("composed Capacity = %v, want 2.5e6", got)
	}
	if got := n.Capacity(1, 0, 0); got != 5e6 {
		t.Fatalf("other-direction Capacity = %v, want 5e6", got)
	}
}

func TestSingleFlowGetsItsDemand(t *testing.T) {
	n := New(twoSite(t))
	f := n.AddFlow(0, 1)
	f.SetDemand(4e6)
	step(n, time.Second)
	if got := f.Allocated(); got != 4e6 {
		t.Fatalf("Allocated = %v, want 4e6", got)
	}
}

func TestFlowCappedAtCapacity(t *testing.T) {
	n := New(twoSite(t))
	f := n.AddFlow(0, 1)
	f.SetDemand(50e6)
	step(n, time.Second)
	if got := f.Allocated(); got != 10e6 {
		t.Fatalf("Allocated = %v, want capacity 1e7", got)
	}
}

func TestMaxMinFairness(t *testing.T) {
	n := New(twoSite(t))
	small := n.AddFlow(0, 1)
	big1 := n.AddFlow(0, 1)
	big2 := n.AddFlow(0, 1)
	small.SetDemand(1e6)
	big1.SetDemand(20e6)
	big2.SetDemand(20e6)
	step(n, time.Second)
	if got := small.Allocated(); got != 1e6 {
		t.Fatalf("small flow Allocated = %v, want its demand 1e6", got)
	}
	// Remaining 9 MB/s split equally between the two big flows.
	if got := big1.Allocated(); math.Abs(got-4.5e6) > 1 {
		t.Fatalf("big1 Allocated = %v, want 4.5e6", got)
	}
	if got := big2.Allocated(); math.Abs(got-4.5e6) > 1 {
		t.Fatalf("big2 Allocated = %v, want 4.5e6", got)
	}
}

func TestFlowsOnDistinctLinksDoNotContend(t *testing.T) {
	n := New(twoSite(t))
	fwd := n.AddFlow(0, 1)
	rev := n.AddFlow(1, 0)
	fwd.SetDemand(10e6)
	rev.SetDemand(10e6)
	step(n, time.Second)
	if fwd.Allocated() != 10e6 || rev.Allocated() != 10e6 {
		t.Fatalf("directional links contended: fwd=%v rev=%v", fwd.Allocated(), rev.Allocated())
	}
}

func TestRemoveFlowFreesBandwidth(t *testing.T) {
	n := New(twoSite(t))
	a := n.AddFlow(0, 1)
	b := n.AddFlow(0, 1)
	a.SetDemand(10e6)
	b.SetDemand(10e6)
	step(n, time.Second)
	if a.Allocated() != 5e6 {
		t.Fatalf("pre-remove Allocated = %v, want 5e6", a.Allocated())
	}
	n.RemoveFlow(b)
	n.RemoveFlow(b) // double remove is a no-op
	step(n, 2*time.Second)
	if a.Allocated() != 10e6 {
		t.Fatalf("post-remove Allocated = %v, want 1e7", a.Allocated())
	}
	if b.Allocated() != 0 {
		t.Fatalf("removed flow Allocated = %v, want 0", b.Allocated())
	}
}

func TestTransferCompletes(t *testing.T) {
	n := New(twoSite(t))
	// 30 MB over a 10 MB/s link: 3 seconds.
	tr := n.StartTransfer(0, 1, 30e6)
	var now vclock.Time
	for i := 0; i < 10 && !tr.Done(); i++ {
		now += vclock.Time(time.Second)
		step(n, now)
	}
	if !tr.Done() {
		t.Fatal("transfer did not complete")
	}
	if got, want := tr.DoneAt(), vclock.Time(3*time.Second); got != want {
		t.Fatalf("DoneAt = %v, want %v", got, want)
	}
	if tr.Remaining() != 0 {
		t.Fatalf("Remaining = %v, want 0", tr.Remaining())
	}
	if tr.Total() != 30e6 {
		t.Fatalf("Total = %v, want 3e7", tr.Total())
	}
}

func TestTransferContendsWithFlow(t *testing.T) {
	n := New(twoSite(t))
	f := n.AddFlow(0, 1)
	f.SetDemand(5e6)
	tr := n.StartTransfer(0, 1, 100e6)
	step(n, time.Second)
	if got := f.Allocated(); got != 5e6 {
		t.Fatalf("flow Allocated = %v, want 5e6 (its demand < fair share)", got)
	}
	if got := tr.Allocated(); got != 5e6 {
		t.Fatalf("transfer Allocated = %v, want the leftover 5e6", got)
	}
}

func TestZeroSizeTransferCompletesImmediately(t *testing.T) {
	n := New(twoSite(t))
	tr := n.StartTransfer(0, 1, 0)
	step(n, time.Second)
	if !tr.Done() {
		t.Fatal("zero-size transfer not done after one step")
	}
}

func TestEstimateTransferTime(t *testing.T) {
	n := New(twoSite(t))
	// 60 MB at 10 MB/s = 6 s.
	if got, want := n.EstimateTransferTime(0, 1, 60e6, 0), 6*time.Second; got != want {
		t.Fatalf("EstimateTransferTime = %v, want %v", got, want)
	}
	if got := n.EstimateTransferTime(0, 1, 0, 0); got != 0 {
		t.Fatalf("zero-byte estimate = %v, want 0", got)
	}
	n.SetGlobalFactor(trace.Constant(0.5))
	if got, want := n.EstimateTransferTime(0, 1, 60e6, 0), 12*time.Second; got != want {
		t.Fatalf("halved-bandwidth estimate = %v, want %v", got, want)
	}
}

func TestNegativeDemandTreatedAsZero(t *testing.T) {
	n := New(twoSite(t))
	f := n.AddFlow(0, 1)
	f.SetDemand(-5)
	if f.Demand() != 0 {
		t.Fatalf("Demand = %v, want 0", f.Demand())
	}
}

func TestStepNonPositivePanics(t *testing.T) {
	n := New(twoSite(t))
	defer func() {
		if recover() == nil {
			t.Fatal("Step(0) did not panic")
		}
	}()
	n.Step(0, 0)
}

func TestLatency(t *testing.T) {
	n := New(twoSite(t))
	if got := n.Latency(0, 1); got != 50*time.Millisecond {
		t.Fatalf("Latency = %v, want 50ms", got)
	}
}

// Property: max-min fair share never over-allocates, never exceeds any
// claimant's demand, and is work-conserving (if total demand >= capacity,
// the full capacity is granted).
func TestMaxMinFairShareProperties(t *testing.T) {
	n := New(twoSite(t))
	err := quick.Check(func(rawCap uint16, rawDemands []uint16) bool {
		capacity := float64(rawCap)
		cs := make([]claimant, len(rawDemands))
		total := 0.0
		for i, d := range rawDemands {
			cs[i] = claimant{demand: float64(d)}
			total += float64(d)
		}
		alloc := n.fairShareInto(capacity, cs)
		var granted float64
		for i, a := range alloc {
			if a < 0 || a > cs[i].demand+1e-9 {
				return false
			}
			granted += a
		}
		if granted > capacity+1e-6 {
			return false
		}
		if total >= capacity && len(cs) > 0 && granted < capacity-1e-6 {
			return false // not work-conserving
		}
		if total < capacity && math.Abs(granted-total) > 1e-6 {
			return false // under-demand must be fully satisfied
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
