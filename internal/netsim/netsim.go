// Package netsim emulates the wide-area network connecting WASP sites.
//
// Each directed site pair (s1→s2) is a logical WAN link with a base
// capacity from the topology, optionally modulated over virtual time by
// bandwidth-variation traces (global and/or per link). Stream flows and
// bulk state-migration transfers attached to a link share its capacity by
// max-min fairness. The allocation is incremental: each link's fair share
// is a pure function of (capacity, claimant demands, claimant order), so
// Step re-solves only the links where one of those inputs changed since
// the previous step — demand edits, claimant arrivals/departures, faults,
// trace-driven capacity movement — tracked sparsely so a step over an idle
// 10k-link mesh touches nothing. This reproduces the contention, bandwidth
// dynamics, and migration behaviour the paper's emulated testbed exhibits
// (§8.2) at a per-step cost proportional to change, not to network size.
package netsim

import (
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

type linkKey struct {
	from, to topology.SiteID
}

// linkState is the dense per-link record: its claimants in fair-share
// order (flows ascending by registration id, then transfers ascending by
// id — the tie-break order the allocation is deterministic under) and the
// dirty flag that schedules a re-solve.
type linkState struct {
	id  int
	key linkKey
	//waspvet:guardedby dirty,Network.activeDirty
	flows []*Flow
	//waspvet:guardedby dirty,Network.activeDirty
	transfers []*Transfer
	// dirty marks that an allocation input changed since the last solve;
	// the link sits in Network.dirtyIDs exactly when set.
	dirty bool
	// traced marks a per-link bandwidth trace: capacity can move between
	// steps without any event, so the link re-solves whenever it has
	// claimants.
	traced bool
}

//waspvet:hotpath
func (l *linkState) claimantCount() int { return len(l.flows) + len(l.transfers) }

// Flow is a persistent data stream between two sites. Its demand is set by
// the engine each step; Allocated reports the rate granted by the link's
// fair-share allocation at the most recent Step.
type Flow struct {
	id       int
	From, To topology.SiteID
	//waspvet:guardedby linkState.dirty
	demand    float64 // bytes/s requested
	allocated float64 // bytes/s granted at last Step
	removed   bool
	net       *Network
	link      *linkState
}

// SetDemand sets the flow's requested rate in bytes/s. Negative demand is
// treated as zero. Setting the demand the flow already has is free: the
// link is only re-solved when an allocation input actually changed.
//
//waspvet:hotpath
func (f *Flow) SetDemand(bytesPerSec float64) {
	bytesPerSec = math.Max(bytesPerSec, 0)
	if bytesPerSec == f.demand {
		return
	}
	f.demand = bytesPerSec
	if f.link != nil && !f.removed {
		f.net.markDirty(f.link)
	}
}

// Demand returns the currently requested rate in bytes/s.
//
//waspvet:hotpath
func (f *Flow) Demand() float64 { return f.demand }

// Allocated returns the rate in bytes/s granted at the last Step.
//
//waspvet:hotpath
func (f *Flow) Allocated() float64 { return f.allocated }

// Transfer is a bulk state-migration transfer. It consumes all bandwidth
// the fair-share allocation grants it until its payload is delivered.
type Transfer struct {
	id        int
	From, To  topology.SiteID
	total     float64 // bytes
	remaining float64 // bytes
	done      bool
	canceled  bool
	doneAt    vclock.Time
	allocated float64 // bytes/s granted at last Step
	link      *linkState
}

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.done }

// Canceled reports whether the transfer was canceled before completing.
func (t *Transfer) Canceled() bool { return t.canceled }

// DoneAt returns the virtual time the transfer completed (zero if not yet).
func (t *Transfer) DoneAt() vclock.Time { return t.doneAt }

// Remaining returns the bytes still to be delivered.
func (t *Transfer) Remaining() float64 { return t.remaining }

// Total returns the transfer's payload size in bytes.
func (t *Transfer) Total() float64 { return t.total }

// Allocated returns the rate in bytes/s granted at the last Step.
//
//waspvet:hotpath
func (t *Transfer) Allocated() float64 { return t.allocated }

// Network emulates all WAN links between the sites of a topology.
// Not safe for concurrent use; the simulation is single-threaded.
type Network struct {
	top *topology.Topology
	//waspvet:guardedby globalInit
	globalFactor *trace.Trace
	//waspvet:guardedby linkState.dirty
	linkFactors map[linkKey]*trace.Trace
	//waspvet:guardedby latencyGen,linkState.dirty
	linkFaults map[linkKey]float64
	flows      map[int]*Flow
	transfers  map[int]*Transfer
	nextID     int

	// Dense link registry. linkIdx is consulted only on cold paths
	// (flow/transfer attach, fault injection); the hot path works off the
	// dense slice and the sparse dirty list.
	links   []*linkState
	linkIdx map[linkKey]int
	// dirtyIDs lists the links whose allocation inputs changed since the
	// last Step (each appears once; linkState.dirty is the guard bit).
	dirtyIDs []int
	// transferList holds the in-flight transfers ascending by id — the
	// deterministic progression order — without re-sorting map keys.
	transferList []*Transfer
	// activeSorted caches the links with at least one claimant, sorted by
	// (from, to), for telemetry's deterministic float accumulation. Rebuilt
	// only when link membership changes.
	activeSorted []*linkState
	activeDirty  bool
	// globalLast detects global-factor trace movement: when the factor
	// value at a step differs from the previous step's, every link's
	// capacity changed and all active links re-solve.
	globalLast float64
	globalInit bool

	// latencyGen counts link-latency changes (fault set/clear); consumers
	// caching Latency() results re-sample when it moves.
	latencyGen uint64

	// Optional telemetry (nil = zero overhead). Instrument handles are
	// cached because Step runs every simulation tick.
	obs          *obs.Observer
	telWanBytes  *obs.Counter
	telBacklog   *obs.Counter
	telUtil      *obs.Histogram
	telFlows     *obs.Gauge
	telTransfers *obs.Gauge

	// sc is Step's retained scratch: claimant and fair-share work vectors
	// reused across Steps so the steady-state step is allocation-free.
	sc stepScratch
}

// stepScratch holds Step's reusable buffers.
type stepScratch struct {
	claimants []claimant
	alloc     []float64
	idx       []int
}

// New creates a Network over the given topology with no dynamics (factor 1
// everywhere).
func New(top *topology.Topology) *Network {
	return &Network{
		top:          top,
		globalFactor: trace.Constant(1),
		linkFactors:  make(map[linkKey]*trace.Trace),
		linkFaults:   make(map[linkKey]float64),
		flows:        make(map[int]*Flow),
		transfers:    make(map[int]*Transfer),
		linkIdx:      make(map[linkKey]int),
	}
}

// Topology returns the underlying topology.
func (n *Network) Topology() *topology.Topology { return n.top }

// link returns the dense link state for a site pair, creating it on first
// use (cold path: attach, fault, trace installation).
func (n *Network) link(from, to topology.SiteID) *linkState {
	k := linkKey{from, to}
	if i, ok := n.linkIdx[k]; ok {
		return n.links[i]
	}
	l := &linkState{id: len(n.links), key: k}
	n.linkIdx[k] = l.id
	n.links = append(n.links, l)
	return l
}

// markDirty schedules a link for re-solving at the next Step.
//
//waspvet:hotpath
func (n *Network) markDirty(l *linkState) {
	if l.dirty {
		return
	}
	l.dirty = true
	n.dirtyIDs = append(n.dirtyIDs, l.id)
}

// SetObserver wires WAN telemetry (bytes moved, queueing backlog, link
// utilization, active flow/transfer counts) to an observer. A nil
// observer (the default) keeps Step instrumentation-free.
func (n *Network) SetObserver(o *obs.Observer) {
	n.obs = o
	if o == nil {
		n.telWanBytes, n.telBacklog, n.telUtil, n.telFlows, n.telTransfers = nil, nil, nil, nil, nil
		return
	}
	r := o.Registry()
	r.Describe("wasp_wan_bytes_total", "Bytes granted to WAN flows and transfers.")
	r.Describe("wasp_wan_backlog_bytes_total", "Demanded-but-unallocated bytes (link queueing pressure).")
	r.Describe("wasp_link_utilization", "Per-link utilization (granted/capacity) sampled every step on links with traffic.")
	r.Describe("wasp_wan_flows", "Registered stream flows.")
	r.Describe("wasp_wan_transfers", "In-flight bulk state transfers.")
	n.telWanBytes = r.Counter("wasp_wan_bytes_total")
	n.telBacklog = r.Counter("wasp_wan_backlog_bytes_total")
	n.telUtil = r.Histogram("wasp_link_utilization", []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1})
	n.telFlows = r.Gauge("wasp_wan_flows")
	n.telTransfers = r.Gauge("wasp_wan_transfers")
}

// SetGlobalFactor installs a bandwidth factor trace applied to every
// inter-site link (intra-site fabric is not modulated). Used for scripted
// dynamics such as "halve the bandwidth of every link at t=900".
func (n *Network) SetGlobalFactor(tr *trace.Trace) {
	if tr == nil {
		tr = trace.Constant(1)
	}
	n.globalFactor = tr
	n.globalInit = false // force a full re-solve at the next Step
}

// SetLinkFactor installs a per-link factor trace for from→to, multiplied
// with the global factor.
func (n *Network) SetLinkFactor(from, to topology.SiteID, tr *trace.Trace) {
	n.linkFactors[linkKey{from, to}] = tr
	l := n.link(from, to)
	l.traced = tr != nil
	n.markDirty(l)
}

// SetLinkFault applies an injected fault factor to the from→to link,
// stacked multiplicatively on the trace-driven dynamics: 0 is a blackout
// (the link carries nothing until cleared), values in (0, 1) degrade it.
// Negative factors clamp to 0; a factor ≥ 1 clears the fault.
func (n *Network) SetLinkFault(from, to topology.SiteID, factor float64) {
	if factor >= 1 {
		n.ClearLinkFault(from, to)
		return
	}
	n.linkFaults[linkKey{from, to}] = math.Max(factor, 0)
	n.markDirty(n.link(from, to))
	n.latencyGen++
	if n.obs != nil {
		n.obs.Emit("fault.link",
			obs.Int("from", int(from)), obs.Int("to", int(to)),
			obs.F64("factor", math.Max(factor, 0)))
	}
}

// ClearLinkFault heals an injected link fault.
func (n *Network) ClearLinkFault(from, to topology.SiteID) {
	if _, ok := n.linkFaults[linkKey{from, to}]; !ok {
		return
	}
	delete(n.linkFaults, linkKey{from, to})
	n.markDirty(n.link(from, to))
	n.latencyGen++
	if n.obs != nil {
		n.obs.Emit("fault.link_healed",
			obs.Int("from", int(from)), obs.Int("to", int(to)))
	}
}

// Capacity returns the from→to link capacity at time now, in bytes/s,
// after applying dynamics factors.
//
//waspvet:hotpath
func (n *Network) Capacity(from, to topology.SiteID, now vclock.Time) float64 {
	base := n.top.BaseBandwidth(from, to).BytesPerSec()
	if from == to {
		return base // intra-site fabric is not subject to WAN dynamics
	}
	f := n.globalFactor.At(now)
	if lt, ok := n.linkFactors[linkKey{from, to}]; ok {
		f *= lt.At(now)
	}
	if ff, ok := n.linkFaults[linkKey{from, to}]; ok {
		f *= ff
	}
	return base * f
}

// Reachable reports whether the from→to path can carry any traffic at
// time now: a blackout fault (or a bandwidth trace pinned at zero) severs
// it. Control-plane messages ride the same links as data, so this is also
// the deliverability test for telemetry reports and commands.
func (n *Network) Reachable(from, to topology.SiteID, now vclock.Time) bool {
	return n.Capacity(from, to, now) > 0
}

// CapacityMbps returns Capacity converted to Mbps, for reporting.
func (n *Network) CapacityMbps(from, to topology.SiteID, now vclock.Time) topology.Mbps {
	return topology.Mbps(n.Capacity(from, to, now) * 8 / 1e6)
}

// Latency returns the one-way from→to latency. An injected link fault
// degrades propagation along with capacity: a factor f in (0,1) inflates
// the base latency by 1/f (congestion and retransmission on the degraded
// path), and healing restores the base value. A blackout (f == 0) keeps
// the base latency — capacity zero already stops all delivery, and an
// infinite latency would poison consumers that precompute delivery
// offsets for when the link heals.
//
//waspvet:hotpath
func (n *Network) Latency(from, to topology.SiteID) time.Duration {
	base := n.top.Latency(from, to)
	if ff, ok := n.linkFaults[linkKey{from, to}]; ok && ff > 0 && ff < 1 {
		return time.Duration(float64(base) / ff)
	}
	return base
}

// LatencyGen returns a counter that advances whenever a link's effective
// latency may have changed (fault injected or healed). Consumers caching
// Latency() results refresh when the value moves.
//
//waspvet:hotpath
func (n *Network) LatencyGen() uint64 { return n.latencyGen }

// AddFlow registers a persistent flow on the from→to link with zero
// initial demand.
func (n *Network) AddFlow(from, to topology.SiteID) *Flow {
	l := n.link(from, to)
	f := &Flow{id: n.nextID, From: from, To: to, net: n, link: l}
	n.nextID++
	n.flows[f.id] = f
	// Registration ids are monotonic, so appending keeps the claimant
	// list in ascending-id (fair-share tie-break) order.
	l.flows = append(l.flows, f)
	n.markDirty(l)
	n.activeDirty = true
	return f
}

// RemoveFlow detaches a flow from the network. Removing twice is a no-op.
func (n *Network) RemoveFlow(f *Flow) {
	if f == nil || f.removed {
		return
	}
	f.removed = true
	f.allocated = 0
	delete(n.flows, f.id)
	if l := f.link; l != nil {
		if i := slices.Index(l.flows, f); i >= 0 {
			l.flows = append(l.flows[:i], l.flows[i+1:]...)
		}
		n.markDirty(l)
		n.activeDirty = true
	}
}

// StartTransfer begins a bulk transfer of the given number of bytes on the
// from→to link. A non-positive size completes immediately at the next Step.
func (n *Network) StartTransfer(from, to topology.SiteID, bytes float64) *Transfer {
	l := n.link(from, to)
	t := &Transfer{
		id:        n.nextID,
		From:      from,
		To:        to,
		total:     math.Max(bytes, 0),
		remaining: math.Max(bytes, 0),
		link:      l,
	}
	n.nextID++
	n.transfers[t.id] = t
	l.transfers = append(l.transfers, t)
	n.transferList = append(n.transferList, t)
	n.markDirty(l)
	n.activeDirty = true
	return t
}

// CancelTransfer detaches an in-flight transfer from the network: it stops
// consuming bandwidth immediately and will never complete (Done stays
// false, Canceled becomes true). Canceling a completed or already-canceled
// transfer is a no-op. Used when a site crash or an aborted reconfiguration
// dooms the migration the transfer carries.
func (n *Network) CancelTransfer(t *Transfer) {
	if t == nil || t.done || t.canceled {
		return
	}
	t.canceled = true
	t.allocated = 0
	n.detachTransfer(t)
	if n.obs != nil {
		n.obs.Emit("transfer.canceled",
			obs.Int("from", int(t.From)), obs.Int("to", int(t.To)),
			obs.F64("remaining_bytes", t.remaining))
	}
}

// detachTransfer removes a transfer from the network's books (completion
// or cancellation): the id map, its link's claimant list, and the global
// progression list.
func (n *Network) detachTransfer(t *Transfer) {
	delete(n.transfers, t.id)
	if l := t.link; l != nil {
		if i := slices.Index(l.transfers, t); i >= 0 {
			l.transfers = append(l.transfers[:i], l.transfers[i+1:]...)
		}
		n.markDirty(l)
	}
	if i := slices.Index(n.transferList, t); i >= 0 {
		n.transferList = append(n.transferList[:i], n.transferList[i+1:]...)
	}
	n.activeDirty = true
}

// ActiveTransfers reports the number of in-flight bulk transfers still
// attached to the network (the orphan-transfer invariant checks it is zero
// at end of run).
func (n *Network) ActiveTransfers() int { return len(n.transfers) }

// EstimateTransferTime predicts how long a transfer of `bytes` over
// from→to would take at the link's current capacity, ignoring contention —
// exactly the |state|/B estimator the paper uses for t_adapt (§6.2).
func (n *Network) EstimateTransferTime(from, to topology.SiteID, bytes float64, now vclock.Time) time.Duration {
	if bytes <= 0 {
		return 0
	}
	c := n.Capacity(from, to, now)
	if c <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(bytes / c * float64(time.Second))
}

// claimant is one bandwidth consumer in a link's fair-share computation.
type claimant struct {
	demand   float64
	flow     *Flow
	transfer *Transfer
}

// Step advances the network by dt ending at virtual time `now`: it
// recomputes the max-min fair allocation (using the capacity at the
// *start* of the interval) of every link whose allocation inputs changed,
// and progresses transfers. Completed transfers are removed and stamped
// with their completion time.
//
// A link is re-solved when: a flow's demand changed (SetDemand compares),
// a claimant arrived or departed, a fault was set or cleared, the link
// carries a transfer (its demand falls as it progresses), it has a
// per-link bandwidth trace, or the global bandwidth factor moved (all
// active links). Skipping the rest is exact, not approximate: the
// allocation is a pure function of capacity, demands, and claimant order,
// so unchanged inputs reproduce the stored outputs bit-for-bit.
//
//waspvet:hotpath
func (n *Network) Step(now vclock.Time, dt time.Duration) {
	if dt <= 0 {
		//waspvet:hotalloc fatal-path formatting; the panic ends the run
		panic(fmt.Sprintf("netsim: non-positive step %v", dt))
	}
	start := now - vclock.Time(dt)
	dtSec := dt.Seconds()

	// Capacity-driven invalidation. The global factor applies to every
	// link; per-link traces can move a single link's capacity between any
	// two steps, so traced links with claimants always re-solve.
	g := n.globalFactor.At(start)
	if !n.globalInit || g != n.globalLast {
		n.globalInit = true
		n.globalLast = g
		for _, l := range n.links {
			if l.claimantCount() > 0 {
				n.markDirty(l)
			}
		}
	}
	for _, l := range n.links {
		if l.traced && l.claimantCount() > 0 {
			n.markDirty(l)
		}
	}
	// Transfers demand remaining/dt: the demand changes as they progress
	// (and whenever dt changes), so their links re-solve every step.
	for _, t := range n.transferList {
		n.markDirty(t.link)
	}

	for _, id := range n.dirtyIDs {
		n.solveLink(n.links[id], start, dtSec)
	}
	n.dirtyIDs = n.dirtyIDs[:0]

	if n.obs != nil {
		n.recordStepTelemetry(start, dtSec) //waspvet:hotalloc observer-gated; returns immediately when telemetry is off
	}

	// Progress transfers ascending by id (deterministic completion order).
	// Completed ones are detached in place.
	live := n.transferList[:0]
	for _, t := range n.transferList {
		moved := t.allocated * dtSec
		t.remaining -= moved
		// Completion epsilon is relative to the payload: float error
		// accumulated over many partial grants scales with the transfer
		// size, while a fresh (or stalled) transfer must never be deemed
		// complete by an absolute threshold it is already under.
		if t.remaining <= t.total*transferEps {
			t.remaining = 0
			t.done = true
			t.doneAt = now
			t.allocated = 0
			delete(n.transfers, t.id)
			if l := t.link; l != nil {
				if i := slices.Index(l.transfers, t); i >= 0 {
					l.transfers = append(l.transfers[:i], l.transfers[i+1:]...)
				}
				n.markDirty(l)
			}
			n.activeDirty = true
			continue
		}
		live = append(live, t)
	}
	n.transferList = live
}

// transferEps is the relative completion epsilon: a transfer is complete
// when its remaining bytes fall under total×transferEps. Relative, not
// absolute: multi-GB state migrations accumulate float error proportional
// to their size, while a tiny transfer must actually move its payload
// (an absolute 1e-6 cut-off would complete a sub-microbyte transfer that
// never received a single allocation grant).
const transferEps = 1e-9

// solveLink recomputes one link's fair-share allocation. Claimants are
// gathered flows-first then transfers, each ascending by registration id —
// the deterministic tie-break order.
//
//waspvet:hotpath
func (n *Network) solveLink(l *linkState, start vclock.Time, dtSec float64) {
	l.dirty = false
	if l.claimantCount() == 0 {
		return
	}
	cs := n.sc.claimants[:0]
	for _, f := range l.flows {
		cs = append(cs, claimant{demand: f.demand, flow: f})
	}
	for _, t := range l.transfers {
		// A transfer wants to finish within this step if it can.
		cs = append(cs, claimant{demand: t.remaining / dtSec, transfer: t})
	}
	n.sc.claimants = cs
	capacity := n.Capacity(l.key.from, l.key.to, start)
	alloc := n.fairShareInto(capacity, cs)
	for i, c := range cs {
		if c.flow != nil {
			c.flow.allocated = alloc[i]
		} else {
			c.transfer.allocated = alloc[i]
		}
	}
}

// activeLinks returns the links with at least one claimant, sorted by
// (from, to). The slice is cached and rebuilt only after membership
// changes; telemetry iterates it so float accumulation is replay-stable.
//
//waspvet:ordered sorted by (from, to) link key
func (n *Network) activeLinks() []*linkState {
	if n.activeDirty {
		n.activeDirty = false
		n.activeSorted = n.activeSorted[:0]
		for _, l := range n.links {
			if l.claimantCount() > 0 {
				n.activeSorted = append(n.activeSorted, l)
			}
		}
		slices.SortFunc(n.activeSorted, func(a, b *linkState) int {
			if a.key.from != b.key.from {
				return int(a.key.from) - int(b.key.from)
			}
			return int(a.key.to) - int(b.key.to)
		})
	}
	return n.activeSorted
}

// recordStepTelemetry folds one Step's allocations into the registry.
// Links are visited in sorted order so float accumulation is identical
// across same-seed runs (map order must not leak into exports).
func (n *Network) recordStepTelemetry(start vclock.Time, dtSec float64) {
	var granted, unmet float64
	for _, l := range n.activeLinks() {
		capacity := n.Capacity(l.key.from, l.key.to, start)
		var linkGranted float64
		for _, f := range l.flows {
			linkGranted += f.allocated
			if f.demand > f.allocated {
				unmet += (f.demand - f.allocated) * dtSec
			}
		}
		for _, t := range l.transfers {
			linkGranted += t.allocated
			if d := t.remaining / dtSec; d > t.allocated {
				unmet += (d - t.allocated) * dtSec
			}
		}
		granted += linkGranted * dtSec
		if capacity > 0 && linkGranted > 0 {
			n.telUtil.Observe(linkGranted / capacity)
		}
	}
	n.telWanBytes.Add(granted)
	n.telBacklog.Add(unmet)
	n.telFlows.Set(float64(len(n.flows)))
	n.telTransfers.Set(float64(len(n.transfers)))
}

// fairShareInto computes the max-min fair allocation of `capacity` among
// claimants with the given demands: claimants that demand less than the
// equal share keep their demand; the remainder is split among the rest,
// iteratively (progressive filling). The returned slice is the Network's
// retained scratch, valid until the next call. Ties in demand are broken
// by claimant position (ascending registration ID, since callers gather
// claimants in sorted-ID order), keeping the allocation deterministic.
//
//waspvet:hotpath
func (n *Network) fairShareInto(capacity float64, cs []claimant) []float64 {
	alloc := n.sc.alloc[:0]
	for range cs {
		alloc = append(alloc, 0)
	}
	n.sc.alloc = alloc
	if capacity <= 0 || len(cs) == 0 {
		return alloc
	}
	// Sort indices by demand ascending, position-stable.
	idx := n.sc.idx[:0]
	for i := range cs {
		idx = append(idx, i)
	}
	n.sc.idx = idx
	//waspvet:hotalloc non-escaping comparator; SortFunc does not retain it, so it stays on the stack
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case cs[a].demand < cs[b].demand:
			return -1
		case cs[a].demand > cs[b].demand:
			return 1
		default:
			return a - b
		}
	})

	remaining := capacity
	left := len(cs)
	for _, i := range idx {
		share := remaining / float64(left)
		grant := math.Min(cs[i].demand, share)
		alloc[i] = grant
		remaining -= grant
		left--
	}
	return alloc
}
