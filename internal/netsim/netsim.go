// Package netsim emulates the wide-area network connecting WASP sites.
//
// Each directed site pair (s1→s2) is a logical WAN link with a base
// capacity from the topology, optionally modulated over virtual time by
// bandwidth-variation traces (global and/or per link). Stream flows and
// bulk state-migration transfers attached to a link share its capacity by
// max-min fairness, recomputed every simulation step. This reproduces the
// contention, bandwidth dynamics, and migration behaviour the paper's
// emulated testbed exhibits (§8.2).
package netsim

import (
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

type linkKey struct {
	from, to topology.SiteID
}

// Flow is a persistent data stream between two sites. Its demand is set by
// the engine each step; Allocated reports the rate granted by the link's
// fair-share allocation at the most recent Step.
type Flow struct {
	id        int
	From, To  topology.SiteID
	demand    float64 // bytes/s requested
	allocated float64 // bytes/s granted at last Step
	removed   bool
}

// SetDemand sets the flow's requested rate in bytes/s. Negative demand is
// treated as zero.
func (f *Flow) SetDemand(bytesPerSec float64) {
	f.demand = math.Max(bytesPerSec, 0)
}

// Demand returns the currently requested rate in bytes/s.
func (f *Flow) Demand() float64 { return f.demand }

// Allocated returns the rate in bytes/s granted at the last Step.
func (f *Flow) Allocated() float64 { return f.allocated }

// Transfer is a bulk state-migration transfer. It consumes all bandwidth
// the fair-share allocation grants it until its payload is delivered.
type Transfer struct {
	id        int
	From, To  topology.SiteID
	total     float64 // bytes
	remaining float64 // bytes
	done      bool
	canceled  bool
	doneAt    vclock.Time
	allocated float64 // bytes/s granted at last Step
}

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.done }

// Canceled reports whether the transfer was canceled before completing.
func (t *Transfer) Canceled() bool { return t.canceled }

// DoneAt returns the virtual time the transfer completed (zero if not yet).
func (t *Transfer) DoneAt() vclock.Time { return t.doneAt }

// Remaining returns the bytes still to be delivered.
func (t *Transfer) Remaining() float64 { return t.remaining }

// Total returns the transfer's payload size in bytes.
func (t *Transfer) Total() float64 { return t.total }

// Allocated returns the rate in bytes/s granted at the last Step.
func (t *Transfer) Allocated() float64 { return t.allocated }

// Network emulates all WAN links between the sites of a topology.
// Not safe for concurrent use; the simulation is single-threaded.
type Network struct {
	top          *topology.Topology
	globalFactor *trace.Trace
	linkFactors  map[linkKey]*trace.Trace
	linkFaults   map[linkKey]float64
	flows        map[int]*Flow
	transfers    map[int]*Transfer
	nextID       int

	// Optional telemetry (nil = zero overhead). Instrument handles are
	// cached because Step runs every simulation tick.
	obs          *obs.Observer
	telWanBytes  *obs.Counter
	telBacklog   *obs.Counter
	telUtil      *obs.Histogram
	telFlows     *obs.Gauge
	telTransfers *obs.Gauge

	// sc is Step's retained scratch: the per-link claimant lists, sorted
	// ID/key slices, and fair-share work vectors are reused across Steps
	// so the steady-state step is allocation-free.
	sc stepScratch
}

// stepScratch holds Step's reusable buffers. byLink keeps its keys across
// Steps (each list is reset to length zero, not deleted); links whose
// traffic vanished contribute empty claimant lists, which every consumer
// skips, so stale keys cannot affect allocations or telemetry sums.
type stepScratch struct {
	byLink      map[linkKey][]claimant
	flowIDs     []int
	transferIDs []int
	linkKeys    []linkKey
	alloc       []float64
	idx         []int
}

// New creates a Network over the given topology with no dynamics (factor 1
// everywhere).
func New(top *topology.Topology) *Network {
	return &Network{
		top:          top,
		globalFactor: trace.Constant(1),
		linkFactors:  make(map[linkKey]*trace.Trace),
		linkFaults:   make(map[linkKey]float64),
		flows:        make(map[int]*Flow),
		transfers:    make(map[int]*Transfer),
	}
}

// Topology returns the underlying topology.
func (n *Network) Topology() *topology.Topology { return n.top }

// SetObserver wires WAN telemetry (bytes moved, queueing backlog, link
// utilization, active flow/transfer counts) to an observer. A nil
// observer (the default) keeps Step instrumentation-free.
func (n *Network) SetObserver(o *obs.Observer) {
	n.obs = o
	if o == nil {
		n.telWanBytes, n.telBacklog, n.telUtil, n.telFlows, n.telTransfers = nil, nil, nil, nil, nil
		return
	}
	r := o.Registry()
	r.Describe("wasp_wan_bytes_total", "Bytes granted to WAN flows and transfers.")
	r.Describe("wasp_wan_backlog_bytes_total", "Demanded-but-unallocated bytes (link queueing pressure).")
	r.Describe("wasp_link_utilization", "Per-link utilization (granted/capacity) sampled every step on links with traffic.")
	r.Describe("wasp_wan_flows", "Registered stream flows.")
	r.Describe("wasp_wan_transfers", "In-flight bulk state transfers.")
	n.telWanBytes = r.Counter("wasp_wan_bytes_total")
	n.telBacklog = r.Counter("wasp_wan_backlog_bytes_total")
	n.telUtil = r.Histogram("wasp_link_utilization", []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1})
	n.telFlows = r.Gauge("wasp_wan_flows")
	n.telTransfers = r.Gauge("wasp_wan_transfers")
}

// SetGlobalFactor installs a bandwidth factor trace applied to every
// inter-site link (intra-site fabric is not modulated). Used for scripted
// dynamics such as "halve the bandwidth of every link at t=900".
func (n *Network) SetGlobalFactor(tr *trace.Trace) {
	if tr == nil {
		tr = trace.Constant(1)
	}
	n.globalFactor = tr
}

// SetLinkFactor installs a per-link factor trace for from→to, multiplied
// with the global factor.
func (n *Network) SetLinkFactor(from, to topology.SiteID, tr *trace.Trace) {
	n.linkFactors[linkKey{from, to}] = tr
}

// SetLinkFault applies an injected fault factor to the from→to link,
// stacked multiplicatively on the trace-driven dynamics: 0 is a blackout
// (the link carries nothing until cleared), values in (0, 1) degrade it.
// Negative factors clamp to 0; a factor ≥ 1 clears the fault.
func (n *Network) SetLinkFault(from, to topology.SiteID, factor float64) {
	if factor >= 1 {
		n.ClearLinkFault(from, to)
		return
	}
	n.linkFaults[linkKey{from, to}] = math.Max(factor, 0)
	if n.obs != nil {
		n.obs.Emit("fault.link",
			obs.Int("from", int(from)), obs.Int("to", int(to)),
			obs.F64("factor", math.Max(factor, 0)))
	}
}

// ClearLinkFault heals an injected link fault.
func (n *Network) ClearLinkFault(from, to topology.SiteID) {
	if _, ok := n.linkFaults[linkKey{from, to}]; !ok {
		return
	}
	delete(n.linkFaults, linkKey{from, to})
	if n.obs != nil {
		n.obs.Emit("fault.link_healed",
			obs.Int("from", int(from)), obs.Int("to", int(to)))
	}
}

// Capacity returns the from→to link capacity at time now, in bytes/s,
// after applying dynamics factors.
func (n *Network) Capacity(from, to topology.SiteID, now vclock.Time) float64 {
	base := n.top.BaseBandwidth(from, to).BytesPerSec()
	if from == to {
		return base // intra-site fabric is not subject to WAN dynamics
	}
	f := n.globalFactor.At(now)
	if lt, ok := n.linkFactors[linkKey{from, to}]; ok {
		f *= lt.At(now)
	}
	if ff, ok := n.linkFaults[linkKey{from, to}]; ok {
		f *= ff
	}
	return base * f
}

// CapacityMbps returns Capacity converted to Mbps, for reporting.
func (n *Network) CapacityMbps(from, to topology.SiteID, now vclock.Time) topology.Mbps {
	return topology.Mbps(n.Capacity(from, to, now) * 8 / 1e6)
}

// Latency returns the one-way from→to latency.
func (n *Network) Latency(from, to topology.SiteID) time.Duration {
	return n.top.Latency(from, to)
}

// AddFlow registers a persistent flow on the from→to link with zero
// initial demand.
func (n *Network) AddFlow(from, to topology.SiteID) *Flow {
	f := &Flow{id: n.nextID, From: from, To: to}
	n.nextID++
	n.flows[f.id] = f
	return f
}

// RemoveFlow detaches a flow from the network. Removing twice is a no-op.
func (n *Network) RemoveFlow(f *Flow) {
	if f == nil || f.removed {
		return
	}
	f.removed = true
	f.allocated = 0
	delete(n.flows, f.id)
}

// StartTransfer begins a bulk transfer of the given number of bytes on the
// from→to link. A non-positive size completes immediately at the next Step.
func (n *Network) StartTransfer(from, to topology.SiteID, bytes float64) *Transfer {
	t := &Transfer{
		id:        n.nextID,
		From:      from,
		To:        to,
		total:     math.Max(bytes, 0),
		remaining: math.Max(bytes, 0),
	}
	n.nextID++
	n.transfers[t.id] = t
	return t
}

// CancelTransfer detaches an in-flight transfer from the network: it stops
// consuming bandwidth immediately and will never complete (Done stays
// false, Canceled becomes true). Canceling a completed or already-canceled
// transfer is a no-op. Used when a site crash or an aborted reconfiguration
// dooms the migration the transfer carries.
func (n *Network) CancelTransfer(t *Transfer) {
	if t == nil || t.done || t.canceled {
		return
	}
	t.canceled = true
	t.allocated = 0
	delete(n.transfers, t.id)
	if n.obs != nil {
		n.obs.Emit("transfer.canceled",
			obs.Int("from", int(t.From)), obs.Int("to", int(t.To)),
			obs.F64("remaining_bytes", t.remaining))
	}
}

// ActiveTransfers reports the number of in-flight bulk transfers still
// attached to the network (the orphan-transfer invariant checks it is zero
// at end of run).
func (n *Network) ActiveTransfers() int { return len(n.transfers) }

// EstimateTransferTime predicts how long a transfer of `bytes` over
// from→to would take at the link's current capacity, ignoring contention —
// exactly the |state|/B estimator the paper uses for t_adapt (§6.2).
func (n *Network) EstimateTransferTime(from, to topology.SiteID, bytes float64, now vclock.Time) time.Duration {
	if bytes <= 0 {
		return 0
	}
	c := n.Capacity(from, to, now)
	if c <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(bytes / c * float64(time.Second))
}

// claimant is one bandwidth consumer in a link's fair-share computation.
type claimant struct {
	demand   float64
	flow     *Flow
	transfer *Transfer
}

// Step advances the network by dt ending at virtual time `now`: it
// recomputes every link's max-min fair allocation over its flows and
// transfers (using the capacity at the *start* of the interval) and
// progresses transfers. Completed transfers are removed and stamped with
// their completion time.
func (n *Network) Step(now vclock.Time, dt time.Duration) {
	if dt <= 0 {
		panic(fmt.Sprintf("netsim: non-positive step %v", dt))
	}
	start := now - vclock.Time(dt)
	dtSec := dt.Seconds()

	// Claimants are gathered in ascending-ID order so that fair-share
	// tie-breaking (and therefore the whole simulation) is deterministic.
	// All per-step slices come from the retained scratch (see stepScratch).
	if n.sc.byLink == nil {
		n.sc.byLink = make(map[linkKey][]claimant)
	}
	byLink := n.sc.byLink
	for k := range byLink {
		byLink[k] = byLink[k][:0] // per-key reset; no cross-key effect
	}
	n.sc.flowIDs = detutil.SortedKeysInto(n.flows, n.sc.flowIDs[:0])
	for _, id := range n.sc.flowIDs {
		f := n.flows[id]
		byLink[linkKey{f.From, f.To}] = append(byLink[linkKey{f.From, f.To}], claimant{demand: f.demand, flow: f})
	}
	n.sc.transferIDs = detutil.SortedKeysInto(n.transfers, n.sc.transferIDs[:0])
	transferIDs := n.sc.transferIDs
	for _, id := range transferIDs {
		t := n.transfers[id]
		// A transfer wants to finish within this step if it can.
		byLink[linkKey{t.From, t.To}] = append(byLink[linkKey{t.From, t.To}],
			claimant{demand: t.remaining / dtSec, transfer: t})
	}

	for key, cs := range byLink {
		if len(cs) == 0 {
			continue // stale scratch entry: the link has no traffic this step
		}
		capacity := n.Capacity(key.from, key.to, start)
		alloc := n.fairShareInto(capacity, cs)
		for i, c := range cs {
			if c.flow != nil {
				c.flow.allocated = alloc[i]
			} else {
				c.transfer.allocated = alloc[i]
			}
		}
	}
	if n.obs != nil {
		n.recordStepTelemetry(byLink, start, dtSec)
	}

	for _, id := range transferIDs {
		t := n.transfers[id]
		moved := t.allocated * dtSec
		t.remaining -= moved
		if t.remaining <= 1e-6 {
			t.remaining = 0
			t.done = true
			t.doneAt = now
			t.allocated = 0
			delete(n.transfers, id)
		}
	}
}

// recordStepTelemetry folds one Step's allocations into the registry.
// Links are visited in sorted order so float accumulation is identical
// across same-seed runs (map order must not leak into exports).
func (n *Network) recordStepTelemetry(byLink map[linkKey][]claimant, start vclock.Time, dtSec float64) {
	n.sc.linkKeys = detutil.SortedKeysFuncInto(byLink, n.sc.linkKeys[:0], func(a, b linkKey) bool {
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	keys := n.sc.linkKeys
	var granted, unmet float64
	for _, k := range keys {
		capacity := n.Capacity(k.from, k.to, start)
		var linkGranted float64
		for _, c := range byLink[k] {
			var a float64
			if c.flow != nil {
				a = c.flow.allocated
			} else {
				a = c.transfer.allocated
			}
			linkGranted += a
			if c.demand > a {
				unmet += (c.demand - a) * dtSec
			}
		}
		granted += linkGranted * dtSec
		if capacity > 0 && linkGranted > 0 {
			n.telUtil.Observe(linkGranted / capacity)
		}
	}
	n.telWanBytes.Add(granted)
	n.telBacklog.Add(unmet)
	n.telFlows.Set(float64(len(n.flows)))
	n.telTransfers.Set(float64(len(n.transfers)))
}

// fairShareInto computes the max-min fair allocation of `capacity` among
// claimants with the given demands: claimants that demand less than the
// equal share keep their demand; the remainder is split among the rest,
// iteratively (progressive filling). The returned slice is the Network's
// retained scratch, valid until the next call. Ties in demand are broken
// by claimant position (ascending registration ID, since callers gather
// claimants in sorted-ID order), keeping the allocation deterministic.
func (n *Network) fairShareInto(capacity float64, cs []claimant) []float64 {
	alloc := n.sc.alloc[:0]
	for range cs {
		alloc = append(alloc, 0)
	}
	n.sc.alloc = alloc
	if capacity <= 0 || len(cs) == 0 {
		return alloc
	}
	// Sort indices by demand ascending, position-stable.
	idx := n.sc.idx[:0]
	for i := range cs {
		idx = append(idx, i)
	}
	n.sc.idx = idx
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case cs[a].demand < cs[b].demand:
			return -1
		case cs[a].demand > cs[b].demand:
			return 1
		default:
			return a - b
		}
	})

	remaining := capacity
	left := len(cs)
	for _, i := range idx {
		share := remaining / float64(left)
		grant := math.Min(cs[i].demand, share)
		alloc[i] = grant
		remaining -= grant
		left--
	}
	return alloc
}
