package netsim

// Benchmarks for the per-tick network substrate: Step's fair-share
// recomputation across every loaded link, and the max-min progressive
// filling kernel itself. TestStepAllocsCeiling pins the steady-state
// allocation budget so buffer-reuse regressions fail the suite.

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// maxMinFairShare is the allocating convenience form of fairShareInto,
// kept for the kernel's unit and property tests. A zero Network suffices:
// the kernel only touches the scratch buffers.
func maxMinFairShare(capacity float64, cs []claimant) []float64 {
	var n Network
	return append([]float64(nil), n.fairShareInto(capacity, cs)...)
}

// benchNet loads the generated testbed with a realistic flow mix: every
// edge site streams to the data center (the aggregation pattern the §8
// queries induce) plus edge-to-edge shuffle flows, and one long-lived bulk
// transfer kept unfinishable so the transfer path stays exercised on every
// Step.
func benchNet(tb testing.TB) *Network {
	tb.Helper()
	top := topology.Generate(topology.DefaultGenConfig(1))
	n := New(top)
	dc := top.SitesOfKind(topology.DataCenter)[0]
	edges := top.SitesOfKind(topology.Edge)
	for i, s := range edges {
		f := n.AddFlow(s, dc)
		f.SetDemand(float64(1+i) * 1e5)
		g := n.AddFlow(s, edges[(i+1)%len(edges)])
		g.SetDemand(float64(1+i) * 4e4)
	}
	n.StartTransfer(edges[0], dc, 1e15)
	return n
}

// BenchmarkNetStep measures one 250 ms network step over the loaded
// testbed.
func BenchmarkNetStep(b *testing.B) {
	n := benchNet(b)
	const dt = 250 * time.Millisecond
	now := vclock.Time(dt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(now, dt)
		now += vclock.Time(dt)
	}
}

// BenchmarkMaxMinFairShare measures the progressive-filling kernel on a
// 12-claimant link with mixed demands (some under, some over the equal
// share), the shape contended WAN links take in the §8 experiments.
func BenchmarkMaxMinFairShare(b *testing.B) {
	n := New(topology.Generate(topology.DefaultGenConfig(1)))
	cs := make([]claimant, 12)
	for i := range cs {
		cs[i] = claimant{demand: float64((i*7)%12+1) * 2e5}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := n.fairShareInto(2e6, cs)
		if len(out) != len(cs) {
			b.Fatal("bad allocation length")
		}
	}
}

// TestStepAllocsCeiling locks in Step's steady-state allocation budget:
// after the first call warms the reusable claimant/allocation buffers, a
// step over the loaded testbed must not allocate.
func TestStepAllocsCeiling(t *testing.T) {
	n := benchNet(t)
	const dt = 250 * time.Millisecond
	now := vclock.Time(dt)
	n.Step(now, dt) // warm the scratch buffers
	avg := testing.AllocsPerRun(500, func() {
		now += vclock.Time(dt)
		n.Step(now, dt)
	})
	// Seed code allocated ~90 objects per Step (claimant map + sorted key
	// slices + per-link allocation vectors). The buffer-reuse path is
	// allocation-free at steady state; 2 leaves slack for map-internal
	// growth on other platforms.
	if avg > 2 {
		t.Errorf("netsim.Step allocates %.1f objects/op at steady state, want <= 2", avg)
	}
}

// tenKLinkNet loads a 101-site testbed with one flow per ordered site
// pair — 10,100 live links, the scale the incremental allocator is
// specified against.
func tenKLinkNet(tb testing.TB) (*Network, []*Flow) {
	tb.Helper()
	cfg := topology.DefaultGenConfig(1)
	cfg.EdgeSites = 93 // 93 edge + 8 DC = 101 sites = 10,100 ordered pairs
	top := topology.Generate(cfg)
	n := New(top)
	sites := top.N()
	flows := make([]*Flow, 0, sites*(sites-1))
	for from := 0; from < sites; from++ {
		for to := 0; to < sites; to++ {
			if from == to {
				continue
			}
			f := n.AddFlow(topology.SiteID(from), topology.SiteID(to))
			f.SetDemand(float64((from*131+to*17)%97+1) * 1e4)
			flows = append(flows, f)
		}
	}
	return n, flows
}

// TestStepAllocsCeiling10kLinks pins the incremental allocator's contract
// at scale: with 10k loaded links and stable demands a step re-solves no
// link and allocates nothing, and perturbing one flow's demand per step
// re-solves exactly that link — still inside the ≤8 budget, because the
// dirty list and claimant scratch are reused.
func TestStepAllocsCeiling10kLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-link grid in -short mode")
	}
	n, flows := tenKLinkNet(t)
	const dt = 250 * time.Millisecond
	now := vclock.Time(dt)
	n.Step(now, dt) // warm: first step solves every link once

	avg := testing.AllocsPerRun(50, func() {
		now += vclock.Time(dt)
		n.Step(now, dt)
	})
	if avg > 0 {
		t.Errorf("quiescent 10k-link Step allocates %.1f objects/op, want 0", avg)
	}

	i := 0
	avg = testing.AllocsPerRun(50, func() {
		f := flows[i%len(flows)]
		f.SetDemand(f.Demand() + 1)
		i++
		now += vclock.Time(dt)
		n.Step(now, dt)
	})
	if avg > 8 {
		t.Errorf("perturbed 10k-link Step allocates %.1f objects/op, want <= 8", avg)
	}
}

// BenchmarkNetStep10kLinks measures the quiescent sweep at scale: the
// cost of deciding "nothing changed" across 10k live links.
func BenchmarkNetStep10kLinks(b *testing.B) {
	n, _ := tenKLinkNet(b)
	const dt = 250 * time.Millisecond
	now := vclock.Time(dt)
	n.Step(now, dt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += vclock.Time(dt)
		n.Step(now, dt)
	}
}

// TestFairShareMatchesSorted cross-checks the buffer-reuse kernel against
// a straightforward reference implementation on adversarial demand
// patterns, including ties and zero demands.
func TestFairShareMatchesSorted(t *testing.T) {
	n := New(topology.Generate(topology.DefaultGenConfig(1)))
	cases := [][]float64{
		{},
		{5},
		{0, 0, 0},
		{10, 10, 10, 10},
		{1, 100},
		{3, 1, 2, 1, 3, 2},
		{7, 7, 1, 9, 0, 4, 7},
	}
	for _, demands := range cases {
		cs := make([]claimant, len(demands))
		for i, d := range demands {
			cs[i] = claimant{demand: d}
		}
		const capacity = 12.0
		got := append([]float64(nil), n.fairShareInto(capacity, cs)...)
		want := referenceFairShare(capacity, demands)
		if len(got) != len(want) {
			t.Fatalf("demands %v: length %d, want %d", demands, len(got), len(want))
		}
		for i := range got {
			if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("demands %v claimant %d: got %.6f, want %.6f", demands, i, got[i], want[i])
			}
		}
	}
}

// referenceFairShare is textbook progressive filling: repeatedly grant
// every unsatisfied claimant min(demand, equal share of the remainder)
// until nothing changes.
func referenceFairShare(capacity float64, demands []float64) []float64 {
	alloc := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return alloc
	}
	satisfied := make([]bool, len(demands))
	remaining := capacity
	for {
		open := 0
		for i := range demands {
			if !satisfied[i] {
				open++
			}
		}
		if open == 0 || remaining <= 0 {
			return alloc
		}
		share := remaining / float64(open)
		progressed := false
		for i := range demands {
			if satisfied[i] {
				continue
			}
			if demands[i] <= share {
				alloc[i] = demands[i]
				remaining -= demands[i]
				satisfied[i] = true
				progressed = true
			}
		}
		if !progressed {
			for i := range demands {
				if !satisfied[i] {
					alloc[i] = share
					satisfied[i] = true
				}
			}
			return alloc
		}
	}
}
