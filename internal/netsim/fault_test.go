package netsim

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestLinkFaultBlackoutAndDegrade(t *testing.T) {
	n := New(twoSite(t))
	f := n.AddFlow(0, 1)

	n.SetLinkFault(0, 1, 0) // blackout
	if got := n.Capacity(0, 1, 0); got != 0 {
		t.Fatalf("blacked-out capacity = %v", got)
	}
	f.SetDemand(1e6)
	step(n, vclock.Time(time.Second))
	if f.Allocated() != 0 {
		t.Fatalf("flow allocated %v over a blacked-out link", f.Allocated())
	}
	// The reverse direction is unaffected.
	if got := n.Capacity(1, 0, 0); got != 10e6 {
		t.Fatalf("reverse capacity = %v, want 1e7", got)
	}

	n.SetLinkFault(0, 1, 0.25) // degradation
	if got := n.Capacity(0, 1, 0); got != 2.5e6 {
		t.Fatalf("degraded capacity = %v, want 2.5e6", got)
	}
	n.ClearLinkFault(0, 1)
	if got := n.Capacity(0, 1, 0); got != 10e6 {
		t.Fatalf("healed capacity = %v, want 1e7", got)
	}
	// Clearing twice and clearing an unfaulted link are no-ops.
	n.ClearLinkFault(0, 1)
	n.ClearLinkFault(1, 0)
}

func TestLinkFaultStacksWithDynamicsAndClamps(t *testing.T) {
	n := New(twoSite(t))
	n.SetGlobalFactor(trace.Constant(0.5))
	n.SetLinkFault(0, 1, 0.5)
	if got := n.Capacity(0, 1, 0); got != 2.5e6 {
		t.Fatalf("stacked capacity = %v, want 2.5e6", got)
	}
	n.SetLinkFault(0, 1, -3) // clamps to blackout
	if got := n.Capacity(0, 1, 0); got != 0 {
		t.Fatalf("negative-factor capacity = %v, want 0", got)
	}
	n.SetLinkFault(0, 1, 1.5) // ≥ 1 clears
	if got := n.Capacity(0, 1, 0); got != 5e6 {
		t.Fatalf("cleared-by-factor capacity = %v, want 5e6", got)
	}
}

func TestMaxMinFairShareZeroCapacity(t *testing.T) {
	cs := []claimant{{demand: 10}, {demand: 20}}
	for _, c := range maxMinFairShare(0, cs) {
		if c != 0 {
			t.Fatalf("allocation on a zero-capacity link: %v", c)
		}
	}
	for _, c := range maxMinFairShare(-5, cs) {
		if c != 0 {
			t.Fatalf("allocation on a negative-capacity link: %v", c)
		}
	}
	if got := maxMinFairShare(100, nil); len(got) != 0 {
		t.Fatalf("allocations for no claimants: %v", got)
	}
}

func TestMaxMinFairShareZeroDemandClaimants(t *testing.T) {
	// Idle claimants must get nothing and their headroom must flow to the
	// busy ones.
	cs := []claimant{{demand: 0}, {demand: 90}, {demand: 0}}
	alloc := maxMinFairShare(60, cs)
	if alloc[0] != 0 || alloc[2] != 0 {
		t.Fatalf("idle claimants allocated: %v", alloc)
	}
	if alloc[1] != 60 {
		t.Fatalf("busy claimant got %v of 60", alloc[1])
	}
}

func TestMaxMinFairShareDemandTies(t *testing.T) {
	// Equal demands above the fair share split the capacity exactly
	// evenly, independent of claimant order.
	cs := []claimant{{demand: 50}, {demand: 50}, {demand: 50}}
	alloc := maxMinFairShare(90, cs)
	for i, a := range alloc {
		if math.Abs(a-30) > 1e-9 {
			t.Fatalf("alloc[%d] = %v, want 30", i, a)
		}
	}
	// A tie at exactly the equal share is fully satisfied.
	cs = []claimant{{demand: 30}, {demand: 30}, {demand: 30}}
	alloc = maxMinFairShare(90, cs)
	for i, a := range alloc {
		if a != 30 {
			t.Fatalf("alloc[%d] = %v, want 30", i, a)
		}
	}
	// Mixed: the small claimant keeps its demand; the tied big ones split
	// the rest evenly.
	cs = []claimant{{demand: 10}, {demand: 100}, {demand: 100}}
	alloc = maxMinFairShare(90, cs)
	if alloc[0] != 10 || math.Abs(alloc[1]-40) > 1e-9 || math.Abs(alloc[2]-40) > 1e-9 {
		t.Fatalf("alloc = %v, want [10 40 40]", alloc)
	}
}

// TestTransferEpsilonBoundary pins the completion rule: a transfer is done
// when remaining ≤ 1e-6 bytes. 2^-20 (≈9.54e-7) and 2^-19 (≈1.91e-6) are
// exactly representable residues on either side of the boundary — the
// link moves exactly capacity bytes per 1 s step, so total = cap + 2^-20
// lands at remaining = 2^-20 after one step with no rounding.
func TestTransferEpsilonBoundary(t *testing.T) {
	n := New(twoSite(t)) // 0→1 capacity 1e7 B/s
	below := n.StartTransfer(0, 1, 1e7+math.Ldexp(1, -20))
	step(n, vclock.Time(time.Second))
	if !below.Done() {
		t.Fatalf("transfer with sub-epsilon residue %v not completed", below.Remaining())
	}
	if below.Remaining() != 0 {
		t.Fatalf("completed transfer Remaining = %v, want 0", below.Remaining())
	}
	if below.DoneAt() != vclock.Time(time.Second) {
		t.Fatalf("DoneAt = %v, want 1s", below.DoneAt())
	}

	n2 := New(twoSite(t))
	above := n2.StartTransfer(0, 1, 1e7+math.Ldexp(1, -19))
	step(n2, vclock.Time(time.Second))
	if above.Done() {
		t.Fatal("transfer with super-epsilon residue completed early")
	}
	if got, want := above.Remaining(), math.Ldexp(1, -19); got != want {
		t.Fatalf("Remaining = %v, want exactly %v", got, want)
	}
	step(n2, vclock.Time(2*time.Second))
	if !above.Done() {
		t.Fatal("residue transfer never completed")
	}
	if above.DoneAt() != vclock.Time(2*time.Second) {
		t.Fatalf("DoneAt = %v, want 2s", above.DoneAt())
	}
}
