package netsim

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestLinkFaultBlackoutAndDegrade(t *testing.T) {
	n := New(twoSite(t))
	f := n.AddFlow(0, 1)

	n.SetLinkFault(0, 1, 0) // blackout
	if got := n.Capacity(0, 1, 0); got != 0 {
		t.Fatalf("blacked-out capacity = %v", got)
	}
	f.SetDemand(1e6)
	step(n, vclock.Time(time.Second))
	if f.Allocated() != 0 {
		t.Fatalf("flow allocated %v over a blacked-out link", f.Allocated())
	}
	// The reverse direction is unaffected.
	if got := n.Capacity(1, 0, 0); got != 10e6 {
		t.Fatalf("reverse capacity = %v, want 1e7", got)
	}

	n.SetLinkFault(0, 1, 0.25) // degradation
	if got := n.Capacity(0, 1, 0); got != 2.5e6 {
		t.Fatalf("degraded capacity = %v, want 2.5e6", got)
	}
	n.ClearLinkFault(0, 1)
	if got := n.Capacity(0, 1, 0); got != 10e6 {
		t.Fatalf("healed capacity = %v, want 1e7", got)
	}
	// Clearing twice and clearing an unfaulted link are no-ops.
	n.ClearLinkFault(0, 1)
	n.ClearLinkFault(1, 0)
}

func TestLinkFaultInflatesLatency(t *testing.T) {
	n := New(twoSite(t))
	base := n.Latency(0, 1)

	n.SetLinkFault(0, 1, 0.25)
	if got := n.Latency(0, 1); got != time.Duration(float64(base)/0.25) {
		t.Fatalf("degraded latency = %v, want %v", got, time.Duration(float64(base)/0.25))
	}
	// The reverse direction is unaffected.
	if got := n.Latency(1, 0); got != base {
		t.Fatalf("reverse latency = %v, want %v", got, base)
	}
	// A blackout keeps the base latency: capacity 0 already stops
	// delivery, and consumers precompute delivery offsets for the heal.
	n.SetLinkFault(0, 1, 0)
	if got := n.Latency(0, 1); got != base {
		t.Fatalf("blackout latency = %v, want base %v", got, base)
	}
	n.ClearLinkFault(0, 1)
	if got := n.Latency(0, 1); got != base {
		t.Fatalf("healed latency = %v, want %v", got, base)
	}
}

func TestLinkFaultStacksWithDynamicsAndClamps(t *testing.T) {
	n := New(twoSite(t))
	n.SetGlobalFactor(trace.Constant(0.5))
	n.SetLinkFault(0, 1, 0.5)
	if got := n.Capacity(0, 1, 0); got != 2.5e6 {
		t.Fatalf("stacked capacity = %v, want 2.5e6", got)
	}
	n.SetLinkFault(0, 1, -3) // clamps to blackout
	if got := n.Capacity(0, 1, 0); got != 0 {
		t.Fatalf("negative-factor capacity = %v, want 0", got)
	}
	n.SetLinkFault(0, 1, 1.5) // ≥ 1 clears
	if got := n.Capacity(0, 1, 0); got != 5e6 {
		t.Fatalf("cleared-by-factor capacity = %v, want 5e6", got)
	}
}

func TestMaxMinFairShareZeroCapacity(t *testing.T) {
	cs := []claimant{{demand: 10}, {demand: 20}}
	for _, c := range maxMinFairShare(0, cs) {
		if c != 0 {
			t.Fatalf("allocation on a zero-capacity link: %v", c)
		}
	}
	for _, c := range maxMinFairShare(-5, cs) {
		if c != 0 {
			t.Fatalf("allocation on a negative-capacity link: %v", c)
		}
	}
	if got := maxMinFairShare(100, nil); len(got) != 0 {
		t.Fatalf("allocations for no claimants: %v", got)
	}
}

func TestMaxMinFairShareZeroDemandClaimants(t *testing.T) {
	// Idle claimants must get nothing and their headroom must flow to the
	// busy ones.
	cs := []claimant{{demand: 0}, {demand: 90}, {demand: 0}}
	alloc := maxMinFairShare(60, cs)
	if alloc[0] != 0 || alloc[2] != 0 {
		t.Fatalf("idle claimants allocated: %v", alloc)
	}
	if alloc[1] != 60 {
		t.Fatalf("busy claimant got %v of 60", alloc[1])
	}
}

func TestMaxMinFairShareDemandTies(t *testing.T) {
	// Equal demands above the fair share split the capacity exactly
	// evenly, independent of claimant order.
	cs := []claimant{{demand: 50}, {demand: 50}, {demand: 50}}
	alloc := maxMinFairShare(90, cs)
	for i, a := range alloc {
		if math.Abs(a-30) > 1e-9 {
			t.Fatalf("alloc[%d] = %v, want 30", i, a)
		}
	}
	// A tie at exactly the equal share is fully satisfied.
	cs = []claimant{{demand: 30}, {demand: 30}, {demand: 30}}
	alloc = maxMinFairShare(90, cs)
	for i, a := range alloc {
		if a != 30 {
			t.Fatalf("alloc[%d] = %v, want 30", i, a)
		}
	}
	// Mixed: the small claimant keeps its demand; the tied big ones split
	// the rest evenly.
	cs = []claimant{{demand: 10}, {demand: 100}, {demand: 100}}
	alloc = maxMinFairShare(90, cs)
	if alloc[0] != 10 || math.Abs(alloc[1]-40) > 1e-9 || math.Abs(alloc[2]-40) > 1e-9 {
		t.Fatalf("alloc = %v, want [10 40 40]", alloc)
	}
}

// TestTransferEpsilonBoundary pins the completion rule: a transfer is done
// when remaining ≤ total×1e-9 — relative to the payload, not an absolute
// byte count. For a total of ~1e7 bytes the threshold is ~1e-2; 2^-7
// (0.0078125) and 2^-6 (0.015625) are exactly representable residues on
// either side — the link moves exactly capacity bytes per 1 s step, so
// total = cap + 2^-7 lands at remaining = 2^-7 with no rounding.
func TestTransferEpsilonBoundary(t *testing.T) {
	n := New(twoSite(t)) // 0→1 capacity 1e7 B/s
	below := n.StartTransfer(0, 1, 1e7+math.Ldexp(1, -7))
	step(n, vclock.Time(time.Second))
	if !below.Done() {
		t.Fatalf("transfer with sub-epsilon residue %v not completed", below.Remaining())
	}
	if below.Remaining() != 0 {
		t.Fatalf("completed transfer Remaining = %v, want 0", below.Remaining())
	}
	if below.DoneAt() != vclock.Time(time.Second) {
		t.Fatalf("DoneAt = %v, want 1s", below.DoneAt())
	}

	n2 := New(twoSite(t))
	above := n2.StartTransfer(0, 1, 1e7+math.Ldexp(1, -6))
	step(n2, vclock.Time(time.Second))
	if above.Done() {
		t.Fatal("transfer with super-epsilon residue completed early")
	}
	if got, want := above.Remaining(), math.Ldexp(1, -6); got != want {
		t.Fatalf("Remaining = %v, want exactly %v", got, want)
	}
	step(n2, vclock.Time(2*time.Second))
	if !above.Done() {
		t.Fatal("residue transfer never completed")
	}
	if above.DoneAt() != vclock.Time(2*time.Second) {
		t.Fatalf("DoneAt = %v, want 2s", above.DoneAt())
	}
}

// TestTransferEpsilonTiny: a transfer smaller than the old absolute 1e-6
// epsilon must still actually move its payload — under an absolute cut-off
// it would be "complete" without a single allocation grant. With the
// relative rule it completes only once the link delivers the bytes.
func TestTransferEpsilonTiny(t *testing.T) {
	n := New(twoSite(t))
	tiny := n.StartTransfer(0, 1, 1e-8) // below the old absolute epsilon
	// Blackout: no bandwidth, so nothing can move.
	n.SetLinkFault(0, 1, 0)
	step(n, vclock.Time(time.Second))
	if tiny.Done() {
		t.Fatal("tiny transfer completed over a blacked-out link without moving")
	}
	n.ClearLinkFault(0, 1)
	step(n, vclock.Time(2*time.Second))
	if !tiny.Done() {
		t.Fatalf("tiny transfer not completed after link healed (remaining %v)", tiny.Remaining())
	}
}

// TestTransferEpsilonHuge: a multi-GB transfer accumulates float error
// proportional to its size; the relative epsilon absorbs a residue the old
// absolute 1e-6 would leave spinning. A 1e15-byte transfer with a residue
// of 1e5 (« total×1e-9 = 1e6, » 1e-6) completes on the step that leaves
// that residue.
func TestTransferEpsilonHuge(t *testing.T) {
	top := twoSite(t)
	n := New(top)
	// Capacity 1e7 B/s; run one 1e8-second step so one grant moves 1e15.
	huge := n.StartTransfer(0, 1, 1e15+1e5)
	step2 := func(now vclock.Time, dt time.Duration) { n.Step(now, dt) }
	step2(vclock.Time(1e8*float64(time.Second)), time.Duration(1e8*float64(time.Second)))
	if !huge.Done() {
		t.Fatalf("huge transfer with residue 1e5 « total×1e-9 not completed (remaining %v)", huge.Remaining())
	}
	if huge.Remaining() != 0 {
		t.Fatalf("completed transfer Remaining = %v, want 0", huge.Remaining())
	}
}

// TestTransferZeroRateStall: a transfer on a blacked-out link receives
// zero allocation every step and must neither complete nor lose bytes, no
// matter how many steps pass.
func TestTransferZeroRateStall(t *testing.T) {
	n := New(twoSite(t))
	n.SetLinkFault(0, 1, 0)
	tr := n.StartTransfer(0, 1, 5e6)
	for i := 1; i <= 10; i++ {
		step(n, vclock.Time(time.Duration(i)*time.Second))
	}
	if tr.Done() {
		t.Fatal("stalled transfer completed with zero allocation")
	}
	if tr.Remaining() != 5e6 {
		t.Fatalf("stalled transfer lost bytes: remaining %v, want 5e6", tr.Remaining())
	}
	n.ClearLinkFault(0, 1)
	step(n, vclock.Time(11*time.Second))
	if tr.Remaining() >= 5e6 {
		t.Fatalf("healed transfer made no progress: remaining %v", tr.Remaining())
	}
}
