// Package ctrlplane simulates WASP's control plane as a first-class WAN
// tenant: per-site telemetry reports and controller commands travel the
// same netsim links as data flows, so they arrive late, arrive out of
// order, or never arrive at all. The controller side merges whatever
// reports made it through (keeping the last report per site with an age),
// quarantines a region once every one of its sites has gone silent past a
// partition threshold, and re-admits the region — bumping its epoch so
// zombie commands issued against the old view are fenced — when reports
// resume.
//
// With no Plane constructed (every pre-existing entry point), the
// controller keeps its ideal instantaneous-snapshot path and behavior is
// byte-identical to before this package existed.
package ctrlplane

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Sampler provides per-site telemetry reports. Implemented by
// *engine.Engine (SampleSites); a fake suffices for tests.
type Sampler interface {
	SampleSites() []metrics.SiteReport
}

// Network is the slice of netsim the control plane rides on: propagation
// delay and reachability. Implemented by *netsim.Network.
type Network interface {
	Latency(from, to topology.SiteID) time.Duration
	Reachable(from, to topology.SiteID, now vclock.Time) bool
}

// Config parameterizes the impaired control plane. The zero value of each
// field selects the documented default; a Plane is only ever constructed
// when impairment is wanted (ideal mode is the absence of a Plane).
type Config struct {
	// ControllerSite hosts the controller; reports flow site→controller
	// and commands controller→site over netsim links. The controller's
	// own site reports locally (never dropped, intra-site latency).
	ControllerSite topology.SiteID
	// ReportEvery is the local-monitor report period (default 10s).
	ReportEvery time.Duration
	// MaxStaleness bounds the evidence age diagnosis may act on: ops
	// whose sites are staler get a stale-telemetry reject instead of an
	// action, and stale sites are masked out of placement (default 45s).
	MaxStaleness time.Duration
	// PartitionAfter is the silence threshold after which a region whose
	// sites have ALL gone quiet is quarantined (default 60s).
	PartitionAfter time.Duration
	// CommandTimeout is how long the supervisor waits for a command ack
	// before re-sending (default 30s).
	CommandTimeout time.Duration
	// CommandRetries is how many re-sends a command gets before the
	// supervisor aborts it (default 3).
	CommandRetries int
	// Regions overrides the quarantine-domain count when the topology
	// carries no region labels (default ⌈√N⌉, via ClusterRegions).
	Regions int
	// Seed drives the telemetry-loss coin flips (deterministic per run).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ReportEvery <= 0 {
		c.ReportEvery = 10 * time.Second
	}
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 45 * time.Second
	}
	if c.PartitionAfter <= 0 {
		c.PartitionAfter = 60 * time.Second
	}
	if c.CommandTimeout <= 0 {
		c.CommandTimeout = 30 * time.Second
	}
	if c.CommandRetries <= 0 {
		c.CommandRetries = 3
	}
	return c
}

// Plane is one job's simulated control plane: a report ticker on the
// telemetry side, an epoch-fenced command channel on the actuation side,
// and the controller-visible state (merged snapshot, per-site ages,
// quarantine set) in between. All scheduling rides the virtual clock, so
// every run is deterministic per seed.
type Plane struct {
	cfg     Config
	sampler Sampler
	net     Network
	top     *topology.Topology
	sched   *vclock.Scheduler
	obs     *obs.Observer
	rng     *rand.Rand

	// Quarantine domains: topology regions when labeled, deterministic
	// latency clusters otherwise.
	regions  [][]topology.SiteID
	regionOf []int

	// Fault state (set by the injector through the ctrldown / telemloss /
	// ctrldelay kinds).
	ctrlDown   []bool
	lossRate   float64
	extraDelay time.Duration

	merger        *metrics.ReportMerger
	quarantined   []bool
	quarantinedAt []vclock.Time
	epoch         []int

	cmds        []*Command
	pendingByOp map[plan.OpID]*Command

	ticker       *vclock.Event
	wrongActions int
}

// Domains returns the quarantine domains a plane with this config would
// use: the topology's labeled regions when present, deterministic latency
// clusters otherwise. Exported so fault schedules (the ctrlchaos sweep, a
// -fault script author) can aim a ctrldown at a specific region without
// re-deriving the clustering.
func Domains(top *topology.Topology, cfg Config) [][]topology.SiteID {
	if top.NumRegions() > 0 {
		return top.RegionSites()
	}
	k := cfg.Regions
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(top.N()))))
	}
	return topology.ClusterRegions(top, k)
}

// New builds a plane over the run's topology, network and scheduler. The
// observer may be nil (events and counters become no-ops).
func New(cfg Config, sampler Sampler, net Network, top *topology.Topology, sched *vclock.Scheduler, o *obs.Observer) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:         cfg,
		sampler:     sampler,
		net:         net,
		top:         top,
		sched:       sched,
		obs:         o,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		merger:      metrics.NewReportMerger(),
		pendingByOp: make(map[plan.OpID]*Command),
	}
	p.regions = Domains(top, cfg)
	p.regionOf = make([]int, top.N())
	for i := range p.regionOf {
		p.regionOf[i] = -1
	}
	for r, sites := range p.regions {
		for _, s := range sites {
			p.regionOf[int(s)] = r
		}
	}
	n := len(p.regions)
	p.ctrlDown = make([]bool, n)
	p.quarantined = make([]bool, n)
	p.quarantinedAt = make([]vclock.Time, n)
	p.epoch = make([]int, n)
	p.describeMetrics()
	return p
}

func (p *Plane) describeMetrics() {
	if p.obs == nil {
		return
	}
	r := p.obs.Registry()
	r.Describe("wasp_ctrl_reports_total", "Site telemetry reports delivered to the controller.")
	r.Describe("wasp_ctrl_report_drops_total", "Site telemetry reports lost in the control plane, by reason.")
	r.Describe("wasp_ctrl_commands_total", "Controller commands issued over the control plane.")
	r.Describe("wasp_ctrl_command_retries_total", "Command re-sends after ack timeout.")
	r.Describe("wasp_ctrl_quarantines_total", "Region quarantine entries.")
}

// Start arms the report ticker. Reports begin at now+ReportEvery.
func (p *Plane) Start() {
	if p.ticker != nil {
		return
	}
	p.ticker = p.sched.Every(p.cfg.ReportEvery, p.reportRound)
}

// Stop cancels the report ticker.
func (p *Plane) Stop() {
	if p.ticker != nil {
		p.ticker.Cancel()
		p.ticker = nil
	}
}

// Config returns the effective (defaulted) configuration.
func (p *Plane) Config() Config { return p.cfg }

// NumRegions returns the number of quarantine domains.
func (p *Plane) NumRegions() int { return len(p.regions) }

// RegionOfSite returns the quarantine domain of a site (-1 if none).
func (p *Plane) RegionOfSite(s topology.SiteID) int {
	if int(s) < 0 || int(s) >= len(p.regionOf) {
		return -1
	}
	return p.regionOf[int(s)]
}

// RegionSites returns the sites of one quarantine domain.
func (p *Plane) RegionSites(r int) []topology.SiteID { return p.regions[r] }

// SetRegionPartition injects or heals a ctrldown fault: while down, the
// region's telemetry cannot reach the controller and the controller's
// commands cannot reach the region.
func (p *Plane) SetRegionPartition(region int, down bool) {
	if region < 0 || region >= len(p.ctrlDown) {
		return
	}
	p.ctrlDown[region] = down
}

// SetLossRate injects or heals a telemloss fault: each report flips an
// independent deterministic coin and is lost with probability rate.
func (p *Plane) SetLossRate(rate float64) { p.lossRate = rate }

// SetExtraDelay injects or heals a ctrldelay fault: added to every
// control-plane message in both directions.
func (p *Plane) SetExtraDelay(d time.Duration) { p.extraDelay = d }

// reportRound generates one report per site and launches each across the
// WAN. Sites are visited in ascending order, so the loss RNG consumes a
// deterministic draw sequence. Every site heartbeats, not just the ones
// hosting tasks: the sampler only covers sites with deployed operators,
// and an idle site that never reported would look permanently silent —
// its region would be quarantined at the first threshold crossing and
// never re-admitted (and masked out of placement forever).
func (p *Plane) reportRound(now vclock.Time) {
	ctrl := p.cfg.ControllerSite
	sampled := p.sampler.SampleSites()
	bySite := make(map[topology.SiteID]metrics.SiteReport, len(sampled))
	for _, rep := range sampled {
		bySite[rep.Site] = rep
	}
	for s := 0; s < p.top.N(); s++ {
		rep, ok := bySite[topology.SiteID(s)]
		if !ok {
			rep = metrics.SiteReport{Site: topology.SiteID(s), At: now} // idle-site heartbeat
		}
		site := rep.Site
		if site != ctrl {
			if r := p.regionOf[int(site)]; r >= 0 && p.ctrlDown[r] {
				p.dropReport("partition")
				continue
			}
			if !p.net.Reachable(site, ctrl, now) {
				p.dropReport("blackout")
				continue
			}
			if p.lossRate > 0 && p.rng.Float64() < p.lossRate {
				p.dropReport("loss")
				continue
			}
		}
		delay := p.net.Latency(site, ctrl)
		if site != ctrl {
			delay += p.extraDelay
		}
		p.sched.At(now+delay, func(vclock.Time) { p.deliverReport(rep) })
	}
}

func (p *Plane) dropReport(reason string) {
	if p.obs == nil {
		return
	}
	p.obs.Registry().Counter("wasp_ctrl_report_drops_total", "reason", reason).Add(1)
}

// deliverReport absorbs one report controller-side. The first report out
// of a quarantined region re-admits the whole region.
func (p *Plane) deliverReport(rep metrics.SiteReport) {
	p.merger.Absorb(rep)
	if p.obs != nil {
		p.obs.Registry().Counter("wasp_ctrl_reports_total").Add(1)
	}
	if r := p.regionOf[int(rep.Site)]; r >= 0 && p.quarantined[r] {
		p.readmit(r, rep.Site)
	}
}

func (p *Plane) readmit(r int, site topology.SiteID) {
	now := p.sched.Now()
	p.quarantined[r] = false
	p.epoch[r]++
	if p.obs != nil {
		p.obs.Emit("ctrl.readmit",
			obs.Int("region", r),
			obs.Int("site", int(site)),
			obs.Int("epoch", p.epoch[r]),
			obs.Dur("quarantined_for", time.Duration(now-p.quarantinedAt[r])))
	}
}

// UpdateQuarantine re-evaluates every region's silence at the start of a
// monitoring round: a region whose sites have ALL been quiet longer than
// PartitionAfter enters quarantine. Re-admission happens on report
// arrival (deliverReport), not here.
func (p *Plane) UpdateQuarantine(now vclock.Time) {
	if now <= vclock.Time(p.cfg.PartitionAfter) {
		return // nobody has had time to report yet
	}
	for r, sites := range p.regions {
		if p.quarantined[r] {
			continue
		}
		allStale := len(sites) > 0
		for _, s := range sites {
			if p.ageOf(s, now) <= p.cfg.PartitionAfter {
				allStale = false
				break
			}
		}
		if !allStale {
			continue
		}
		p.quarantined[r] = true
		p.quarantinedAt[r] = now
		if p.obs != nil {
			p.obs.Registry().Counter("wasp_ctrl_quarantines_total").Add(1)
			p.obs.Emit("ctrl.quarantine",
				obs.Int("region", r),
				obs.Int("sites", len(sites)),
				obs.Int("epoch", p.epoch[r]))
		}
	}
}

// ageOf is the site's evidence age; a site that never reported is as old
// as the run itself.
func (p *Plane) ageOf(s topology.SiteID, now vclock.Time) time.Duration {
	age, ok := p.merger.Age(s, now)
	if !ok {
		return time.Duration(now)
	}
	return age
}

// Age exposes a site's evidence age (ok=false: never reported).
func (p *Plane) Age(s topology.SiteID, now vclock.Time) (time.Duration, bool) {
	return p.merger.Age(s, now)
}

// StalestOf returns the worst evidence age across a set of sites.
func (p *Plane) StalestOf(sites []topology.SiteID, now vclock.Time) time.Duration {
	var worst time.Duration
	for _, s := range sites {
		if a := p.ageOf(s, now); a > worst {
			worst = a
		}
	}
	return worst
}

// Snapshot merges the freshest report per site into one monitoring-round
// snapshot — the controller's (partial, delayed) view of the job.
func (p *Plane) Snapshot(now vclock.Time) *metrics.Snapshot {
	return p.merger.Snapshot(now)
}

// SiteQuarantined reports whether a site's region is quarantined.
func (p *Plane) SiteQuarantined(s topology.SiteID) bool {
	r := p.RegionOfSite(s)
	return r >= 0 && p.quarantined[r]
}

// QuarantinedRegionOf returns the first quarantined region among the
// given sites (ok=false when none is quarantined).
func (p *Plane) QuarantinedRegionOf(sites []topology.SiteID) (int, bool) {
	for _, s := range sites {
		if r := p.RegionOfSite(s); r >= 0 && p.quarantined[r] {
			return r, true
		}
	}
	return 0, false
}

// QuarantinedRegions lists currently quarantined regions, ascending.
func (p *Plane) QuarantinedRegions() []int {
	var out []int
	for r, q := range p.quarantined {
		if q {
			out = append(out, r)
		}
	}
	return out
}

// Epoch returns a region's current epoch (bumped on every re-admission).
func (p *Plane) Epoch(r int) int { return p.epoch[r] }

// MaskUnreachable zeroes the free-slot count of every site the controller
// must not place work on: sites in quarantined regions, and sites whose
// evidence is older than MaxStaleness (a site you have not heard from is
// not a migration target). The controller's own site is exempt.
func (p *Plane) MaskUnreachable(free []int, now vclock.Time) {
	for i := range free {
		s := topology.SiteID(i)
		if s == p.cfg.ControllerSite {
			continue
		}
		if p.SiteQuarantined(s) || p.ageOf(s, now) > p.cfg.MaxStaleness {
			free[i] = 0
		}
	}
}

// WrongActions counts commands issued while their target region had an
// active control partition — the "controller acted on a region it could
// not actually see" metric the ctrlchaos sweep reports.
func (p *Plane) WrongActions() int { return p.wrongActions }

// String summarizes the plane for debugging.
func (p *Plane) String() string {
	return fmt.Sprintf("ctrlplane{regions=%d report=%v stale=%v partition=%v}",
		len(p.regions), p.cfg.ReportEvery, p.cfg.MaxStaleness, p.cfg.PartitionAfter)
}
