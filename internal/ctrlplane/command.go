package ctrlplane

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Command is one controller actuation in flight over the control plane.
// Commands are epoch-numbered against the target region (so a command
// issued against a pre-quarantine view is fenced after re-admission),
// idempotent (a re-sent command that already applied only re-acks), and
// ack-tracked (the supervisor re-sends on timeout, then aborts).
type Command struct {
	ID     int
	Op     plan.OpID
	Kind   string
	Target topology.SiteID
	Sites  []topology.SiteID
	Epoch  int

	apply    func() error
	issuedAt vclock.Time
	sentAt   vclock.Time
	attempts int
	applied  bool
	acked    bool
	done     bool
}

// Aborted describes a command the supervisor gave up on: Applied tells
// the controller whether the actuation actually ran (ack lost) or never
// reached the site (command lost), which decides retry vs rollback.
type Aborted struct {
	Op      plan.OpID
	Kind    string
	Applied bool
}

// SendCommand issues one epoch-numbered command whose apply closure runs
// when (if) the command reaches its target site. The target is the
// command's coordination site: the first (lowest) site of the new
// placement. At most one command may be in flight per operator.
func (p *Plane) SendCommand(op plan.OpID, kind string, sites []topology.SiteID, apply func() error) error {
	if c, ok := p.pendingByOp[op]; ok && !c.done {
		return fmt.Errorf("ctrlplane: command %d still in flight for op %d", c.ID, op)
	}
	if len(sites) == 0 {
		return fmt.Errorf("ctrlplane: command for op %d has no target sites", op)
	}
	target := sites[0]
	for _, s := range sites[1:] {
		if s < target {
			target = s
		}
	}
	now := p.sched.Now()
	cmd := &Command{
		ID:       len(p.cmds),
		Op:       op,
		Kind:     kind,
		Target:   target,
		Sites:    append([]topology.SiteID(nil), sites...),
		Epoch:    p.epochOfSite(target),
		apply:    apply,
		issuedAt: now,
	}
	p.cmds = append(p.cmds, cmd)
	p.pendingByOp[op] = cmd
	for _, s := range cmd.Sites {
		if r := p.RegionOfSite(s); r >= 0 && p.ctrlDown[r] {
			p.wrongActions++
			break
		}
	}
	if p.obs != nil {
		p.obs.Registry().Counter("wasp_ctrl_commands_total").Add(1)
		p.obs.Emit("ctrl.command",
			obs.Int("cmd", cmd.ID),
			obs.Int("op", int(op)),
			obs.String("kind", kind),
			obs.Int("target", int(target)),
			obs.String("sites", fmt.Sprint(cmd.Sites)),
			obs.Int("epoch", cmd.Epoch))
	}
	p.send(cmd, now)
	return nil
}

func (p *Plane) epochOfSite(s topology.SiteID) int {
	if r := p.RegionOfSite(s); r >= 0 {
		return p.epoch[r]
	}
	return 0
}

// send launches (or re-launches) a command toward its target.
func (p *Plane) send(cmd *Command, now vclock.Time) {
	cmd.sentAt = now
	delay := p.net.Latency(p.cfg.ControllerSite, cmd.Target)
	if cmd.Target != p.cfg.ControllerSite {
		delay += p.extraDelay
	}
	p.sched.At(now+delay, func(at vclock.Time) { p.deliverCommand(cmd, at) })
}

// blocked reports whether a control-plane message toward (or from) a site
// is lost at delivery time: the site's region has an active control
// partition, or the data path itself is blacked out.
func (p *Plane) blocked(site topology.SiteID, from, to topology.SiteID, now vclock.Time) bool {
	if site == p.cfg.ControllerSite {
		return false
	}
	if r := p.RegionOfSite(site); r >= 0 && p.ctrlDown[r] {
		return true
	}
	return !p.net.Reachable(from, to, now)
}

// deliverCommand is the site-side arrival: fence against the region's
// current epoch, apply once, ack back. A command lost on a blocked path
// simply never arrives — the supervisor's ack timeout covers it.
func (p *Plane) deliverCommand(cmd *Command, now vclock.Time) {
	if cmd.done {
		return
	}
	if p.blocked(cmd.Target, p.cfg.ControllerSite, cmd.Target, now) {
		return
	}
	if cmd.Epoch != p.epochOfSite(cmd.Target) {
		if p.obs != nil {
			p.obs.Emit("ctrl.command_fenced",
				obs.Int("cmd", cmd.ID),
				obs.Int("op", int(cmd.Op)),
				obs.Int("epoch", cmd.Epoch),
				obs.Int("current_epoch", p.epochOfSite(cmd.Target)))
		}
		p.resolve(cmd)
		return
	}
	if !cmd.applied {
		cmd.applied = true
		if err := cmd.apply(); err != nil {
			if p.obs != nil {
				p.obs.Emit("ctrl.command_failed",
					obs.Int("cmd", cmd.ID),
					obs.Int("op", int(cmd.Op)),
					obs.String("err", err.Error()))
			}
			p.resolve(cmd)
			return
		}
	}
	delay := p.net.Latency(cmd.Target, p.cfg.ControllerSite)
	if cmd.Target != p.cfg.ControllerSite {
		delay += p.extraDelay
	}
	p.sched.At(now+delay, func(at vclock.Time) { p.deliverAck(cmd, at) })
}

// deliverAck is the controller-side ack arrival. An ack lost on the way
// back leaves the command pending; the supervisor re-sends and the
// idempotent arrival path re-acks without re-applying.
func (p *Plane) deliverAck(cmd *Command, now vclock.Time) {
	if cmd.done || cmd.acked {
		return
	}
	if p.blocked(cmd.Target, cmd.Target, p.cfg.ControllerSite, now) {
		return
	}
	cmd.acked = true
	if p.obs != nil {
		p.obs.Emit("ctrl.command_acked",
			obs.Int("cmd", cmd.ID),
			obs.Int("op", int(cmd.Op)),
			obs.Dur("rtt", time.Duration(now-cmd.issuedAt)))
	}
	p.resolve(cmd)
}

func (p *Plane) resolve(cmd *Command) {
	cmd.done = true
	if c, ok := p.pendingByOp[cmd.Op]; ok && c == cmd {
		delete(p.pendingByOp, cmd.Op)
	}
}

// Supervise re-sends every command whose ack is overdue and aborts those
// past the retry budget, returning the aborted set for the controller's
// retry/rollback ledger. Commands are visited in issue order.
func (p *Plane) Supervise(now vclock.Time) []Aborted {
	var aborted []Aborted
	for _, cmd := range p.cmds {
		if cmd.done || cmd.acked {
			continue
		}
		if time.Duration(now-cmd.sentAt) < p.cfg.CommandTimeout {
			continue
		}
		cmd.attempts++
		if cmd.attempts > p.cfg.CommandRetries {
			if p.obs != nil {
				p.obs.Emit("ctrl.command_timeout",
					obs.Int("cmd", cmd.ID),
					obs.Int("op", int(cmd.Op)),
					obs.Int("attempts", cmd.attempts),
					obs.Bool("applied", cmd.applied))
			}
			p.resolve(cmd)
			aborted = append(aborted, Aborted{Op: cmd.Op, Kind: cmd.Kind, Applied: cmd.applied})
			continue
		}
		if p.obs != nil {
			p.obs.Registry().Counter("wasp_ctrl_command_retries_total").Add(1)
			p.obs.Emit("ctrl.command_retry",
				obs.Int("cmd", cmd.ID),
				obs.Int("op", int(cmd.Op)),
				obs.Int("attempt", cmd.attempts))
		}
		p.send(cmd, now)
	}
	return aborted
}

// CommandInFlight reports whether an un-resolved command exists for op:
// the controller must not stack a second actuation on it.
func (p *Plane) CommandInFlight(op plan.OpID) bool {
	c, ok := p.pendingByOp[op]
	return ok && !c.done
}

// UnackedCommands counts commands still awaiting an ack (aborted ones are
// resolved). The chaos invariant "no un-acked command at run end" checks
// this is zero after the supervisor has drained.
func (p *Plane) UnackedCommands() int {
	n := 0
	for _, cmd := range p.cmds {
		if !cmd.done && !cmd.acked {
			n++
		}
	}
	return n
}
