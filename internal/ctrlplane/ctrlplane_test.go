package ctrlplane

import (
	"errors"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// fakeSampler returns whatever the test staged; the plane heartbeats the
// remaining sites itself.
type fakeSampler struct{ reports []metrics.SiteReport }

func (f *fakeSampler) SampleSites() []metrics.SiteReport { return f.reports }

// fakeNet is a uniform-latency network with per-pair reachability holes.
type fakeNet struct {
	lat  time.Duration
	down map[[2]topology.SiteID]bool
}

func (f *fakeNet) Latency(from, to topology.SiteID) time.Duration {
	if from == to {
		return time.Millisecond
	}
	return f.lat
}

func (f *fakeNet) Reachable(from, to topology.SiteID, _ vclock.Time) bool {
	return !f.down[[2]topology.SiteID{from, to}]
}

// rig builds a 4-site, 2-region topology (region 0 = {0,1} with the
// controller on site 0; region 1 = {2,3}) with a 2s-latency WAN.
func rig(t *testing.T, cfg Config) (*Plane, *fakeSampler, *fakeNet, *vclock.Scheduler) {
	t.Helper()
	const n = 4
	sites := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sites[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: 4}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			bw[i][j] = 1000
			if i != j {
				lat[i][j] = 2 * time.Second
			}
		}
	}
	top, err := topology.NewRegioned(sites, lat, bw, []topology.RegionID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := vclock.NewScheduler(&vclock.Clock{})
	smp := &fakeSampler{}
	net := &fakeNet{lat: 2 * time.Second, down: map[[2]topology.SiteID]bool{}}
	o := obs.New(sched.Now)
	p := New(cfg, smp, net, top, sched, o)
	return p, smp, net, sched
}

// Reports ride the WAN: a report generated at t carries its generation
// stamp, arrives one link latency later, and ages from t, not arrival.
func TestReportsAgeFromGeneration(t *testing.T) {
	p, smp, _, sched := rig(t, Config{ReportEvery: 10 * time.Second})
	smp.reports = []metrics.SiteReport{} // all sites idle → pure heartbeats
	p.Start()
	if err := sched.RunUntil(11 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Round fired at t=10s; remote site 3's heartbeat is still in flight
	// (arrives 12s), the controller's own site already landed (1ms).
	if _, ok := p.Age(3, sched.Now()); ok {
		t.Fatal("remote heartbeat arrived before one WAN latency elapsed")
	}
	if err := sched.RunUntil(13 * time.Second); err != nil {
		t.Fatal(err)
	}
	age, ok := p.Age(3, sched.Now())
	if !ok || age != 3*time.Second {
		t.Fatalf("Age(3) = %v, %v; want 3s (generated at 10s, now 13s), true", age, ok)
	}
}

// A region whose every site goes silent past PartitionAfter is
// quarantined; the first report back out re-admits it and bumps its
// epoch.
func TestQuarantineAndReadmitBumpsEpoch(t *testing.T) {
	p, _, net, sched := rig(t, Config{ReportEvery: 10 * time.Second, PartitionAfter: 30 * time.Second})
	p.Start()

	// Cut region 1 (sites 2, 3) off from the controller at t=20s.
	sched.At(20*time.Second, func(vclock.Time) { p.SetRegionPartition(1, true) })
	if err := sched.RunUntil(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	p.UpdateQuarantine(sched.Now())
	if !p.SiteQuarantined(2) || !p.SiteQuarantined(3) {
		t.Fatalf("region 1 not quarantined after %v of silence", sched.Now()-20*time.Second)
	}
	if p.SiteQuarantined(0) || p.SiteQuarantined(1) {
		t.Fatal("region 0 quarantined despite reporting")
	}
	if got := p.QuarantinedRegions(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("QuarantinedRegions() = %v; want [1]", got)
	}
	if p.Epoch(1) != 0 {
		t.Fatalf("epoch bumped on quarantine entry; want bump on re-admission only")
	}

	// Heal; the next report round re-admits the region.
	p.SetRegionPartition(1, false)
	_ = net
	if err := sched.RunUntil(115 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.SiteQuarantined(2) {
		t.Fatal("region 1 still quarantined after reports resumed")
	}
	if p.Epoch(1) != 1 {
		t.Fatalf("Epoch(1) = %d after re-admission; want 1", p.Epoch(1))
	}
}

// A command issued against a pre-re-admission view must be fenced at
// delivery: its epoch no longer matches the region's, so the apply
// closure never runs.
func TestEpochFencing(t *testing.T) {
	p, _, _, sched := rig(t, Config{ReportEvery: 10 * time.Second, PartitionAfter: 30 * time.Second})
	p.Start()

	sched.At(20*time.Second, func(vclock.Time) { p.SetRegionPartition(1, true) })
	if err := sched.RunUntil(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	p.UpdateQuarantine(sched.Now())

	// Issue a command into the quarantined region (epoch 0 snapshot). Its
	// first delivery (t≈102s) dies on the still-active partition; the
	// heal at t=105s lets reports resume, so the region re-admits (epoch
	// 1) before the supervisor's re-send can land — which must then fence.
	applied := false
	if err := p.SendCommand(plan.OpID(1), "reassign", []topology.SiteID{2}, func() error {
		applied = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sched.At(105*time.Second, func(vclock.Time) { p.SetRegionPartition(1, false) })
	if err := sched.RunUntil(200 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.Epoch(1) != 1 {
		t.Fatalf("Epoch(1) = %d; want 1 after re-admission", p.Epoch(1))
	}
	for i := 0; i < 8; i++ { // drain the supervisor's retry schedule
		p.Supervise(sched.Now())
		if err := sched.RunUntil(sched.Now() + 40*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if applied {
		t.Fatal("epoch-fenced command still applied")
	}
	if p.CommandInFlight(plan.OpID(1)) {
		t.Fatal("fenced command still counted in flight")
	}
	if n := p.UnackedCommands(); n != 0 {
		t.Fatalf("UnackedCommands() = %d; want 0 (fenced commands resolve)", n)
	}
}

// An ack lost on the return path leaves the command pending; the
// supervisor re-sends and the idempotent delivery path re-acks without
// running apply a second time.
func TestRetryIsIdempotent(t *testing.T) {
	p, _, net, sched := rig(t, Config{CommandTimeout: 10 * time.Second})
	applies := 0

	// Site 2 → controller is down (acks lost), controller → site 2 fine.
	net.down[[2]topology.SiteID{2, 0}] = true
	if err := p.SendCommand(plan.OpID(7), "scale-out", []topology.SiteID{2, 3}, func() error {
		applies++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if applies != 1 {
		t.Fatalf("apply ran %d times before retry; want 1", applies)
	}
	if p.UnackedCommands() != 1 {
		t.Fatal("command acked despite the return path being down")
	}

	// Heal the return path; one supervised re-send must re-ack without
	// re-applying.
	net.down[[2]topology.SiteID{2, 0}] = false
	p.Supervise(sched.Now())
	if err := sched.RunUntil(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if applies != 1 {
		t.Fatalf("apply ran %d times; re-delivery must be idempotent", applies)
	}
	if p.UnackedCommands() != 0 {
		t.Fatal("command still unacked after the path healed and a re-send")
	}
	if p.CommandInFlight(plan.OpID(7)) {
		t.Fatal("acked command still in flight")
	}
}

// A command whose target stays unreachable is re-sent CommandRetries
// times and then aborted, with Applied=false telling the controller the
// actuation never ran.
func TestAbortAfterRetryBudget(t *testing.T) {
	p, _, _, sched := rig(t, Config{CommandTimeout: 10 * time.Second, CommandRetries: 2})
	p.SetRegionPartition(1, true)

	if err := p.SendCommand(plan.OpID(3), "replan", []topology.SiteID{3}, func() error {
		t.Fatal("apply ran inside a partitioned region")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.WrongActions() != 1 {
		t.Fatalf("WrongActions() = %d; want 1 (command aimed into an active partition)", p.WrongActions())
	}
	// A second command on the same op must be refused while one pends.
	if err := p.SendCommand(plan.OpID(3), "replan", []topology.SiteID{3}, func() error { return nil }); err == nil {
		t.Fatal("second in-flight command for the same op accepted")
	}

	var aborted []Aborted
	for i := 0; i < 5; i++ {
		if err := sched.RunUntil(sched.Now() + 12*time.Second); err != nil {
			t.Fatal(err)
		}
		aborted = append(aborted, p.Supervise(sched.Now())...)
	}
	if len(aborted) != 1 {
		t.Fatalf("aborted = %+v; want exactly one abort", aborted)
	}
	if aborted[0].Op != plan.OpID(3) || aborted[0].Applied {
		t.Fatalf("aborted = %+v; want op 3 with Applied=false", aborted[0])
	}
	if p.UnackedCommands() != 0 {
		t.Fatal("aborted command still counted as unacked")
	}
}

// An apply error resolves the command (reported, not retried forever).
func TestApplyErrorResolves(t *testing.T) {
	p, _, _, sched := rig(t, Config{})
	if err := p.SendCommand(plan.OpID(5), "reassign", []topology.SiteID{1}, func() error {
		return errors.New("no slots")
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.CommandInFlight(plan.OpID(5)) || p.UnackedCommands() != 0 {
		t.Fatal("failed command not resolved")
	}
}

// MaskUnreachable zeroes quarantined and stale sites out of the free-slot
// vector but never the controller's own site.
func TestMaskUnreachable(t *testing.T) {
	p, _, _, sched := rig(t, Config{ReportEvery: 10 * time.Second, MaxStaleness: 20 * time.Second, PartitionAfter: 30 * time.Second})
	p.Start()
	sched.At(15*time.Second, func(vclock.Time) { p.SetRegionPartition(1, true) })
	if err := sched.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	p.UpdateQuarantine(sched.Now())

	free := []int{4, 4, 4, 4}
	p.MaskUnreachable(free, sched.Now())
	// Site 0 (controller) and 1 keep reporting; 2 and 3 are silent past
	// both the staleness bound and the quarantine threshold.
	if free[0] != 4 || free[1] != 4 {
		t.Fatalf("free = %v; reporting sites were masked", free)
	}
	if free[2] != 0 || free[3] != 0 {
		t.Fatalf("free = %v; quarantined sites not masked", free)
	}
}
