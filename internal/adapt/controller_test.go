package adapt

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// testbed is a deployed pipeline + controller over a 4-site topology.
type testbed struct {
	top   *topology.Topology
	net   *netsim.Network
	sched *vclock.Scheduler
	eng   *engine.Engine
	ctl   *Controller
	ids   []plan.OpID // src, map, sink
}

// fourSites: 8 slots each, 160 Mbps (20 MB/s) links, 40 ms latency.
func fourSites(t *testing.T) *topology.Topology {
	t.Helper()
	const n = 4
	sitesArr := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sitesArr[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: 8}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 100000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 160
			lat[i][j] = 40 * time.Millisecond
		}
	}
	top, err := topology.New(sitesArr, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// newTestbed deploys src(site0, rate, 100B) → map(stateful, cost) →
// sink(site3) with the map at site 1, plus a controller.
func newTestbed(t *testing.T, ecfg engine.Config, acfg Config, rate, cost, stateBytes float64) *testbed {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: rate,
	})
	mp := g.AddOperator(plan.Operator{
		Name: "map", Kind: plan.KindMap, Splittable: true, Stateful: stateBytes > 0,
		Selectivity: 1, OutEventBytes: 100, CostPerEvent: cost, StateBytes: stateBytes,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 3})
	g.MustConnect(src, mp)
	g.MustConnect(mp, snk)

	top := fourSites(t)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := engine.New(ecfg, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[mp].Sites = []topology.SiteID{1}
	pp.Stages[snk].Sites = []topology.SiteID{3}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ctl := NewController(acfg, eng, top, net, sched, nil)
	ctl.Start()
	return &testbed{top: top, net: net, sched: sched, eng: eng, ctl: ctl, ids: []plan.OpID{src, mp, snk}}
}

func (tb *testbed) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := tb.sched.RunUntil(vclock.Time(until)); err != nil {
		t.Fatal(err)
	}
}

func kinds(actions []Action) []ActionKind {
	out := make([]ActionKind, len(actions))
	for i, a := range actions {
		out[i] = a.Kind
	}
	return out
}

func hasKind(actions []Action, k ActionKind) bool {
	for _, a := range actions {
		if a.Kind == k {
			return true
		}
	}
	return false
}

func TestWASPScalesUpComputeBottleneck(t *testing.T) {
	// Map capacity per task = 25000/5 = 5000 ev/s against 9000 ev/s.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 9000, 5, 0)
	tb.run(t, 400*time.Second)
	actions := tb.ctl.Actions()
	if !hasKind(actions, ActionScaleUp) {
		t.Fatalf("no scale-up; actions = %v", kinds(actions))
	}
	if got := tb.eng.Parallelism(tb.ids[1]); got < 2 {
		t.Fatalf("map parallelism = %d, want >= 2", got)
	}
	// After stabilizing, the map keeps up with the stream. Sample at a
	// time not aligned with the controller's 40 s rounds.
	tb.eng.Sample()
	tb.run(t, 510*time.Second)
	snap := tb.eng.Sample()
	if got := snap.Ops[tb.ids[1]].ProcessingRate; math.Abs(got-9000) > 900 {
		t.Fatalf("post-scale processing rate = %v, want ~9000", got)
	}
}

func TestWASPScaleUpPrefersLocalSlots(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 9000, 5, 0)
	tb.run(t, 200*time.Second)
	st := tb.eng.Plan().Stages[tb.ids[1]]
	for _, s := range st.Sites {
		if s != 1 {
			t.Fatalf("scale-up placed a task at site %d; free local slots existed at site 1 (%v)", s, st.Sites)
		}
	}
}

func TestWASPReassignsNetworkBottleneck(t *testing.T) {
	// 10000 ev/s × 100 B = 1 MB/s. Choke 0→1 to 4 Mbps (0.5 MB/s) from
	// t=0: the map at site 1 is network-constrained; sites 2 (or 0)
	// offer good paths.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 10000, 1, 8e6)
	tb.net.SetLinkFactor(0, 1, trace.Constant(4.0/160.0))
	tb.run(t, 500*time.Second)
	actions := tb.ctl.Actions()
	if !hasKind(actions, ActionReassign) {
		t.Fatalf("no re-assignment; actions = %v", kinds(actions))
	}
	newSites := tb.eng.Plan().Stages[tb.ids[1]].Sites
	for _, s := range newSites {
		if s == 1 {
			t.Fatalf("map still at constrained site 1: %v", newSites)
		}
	}
	// Recovered throughput. Sample at a time not aligned with the
	// controller's own 40 s monitoring rounds (which reset counters).
	tb.eng.Sample()
	tb.run(t, 610*time.Second)
	snap := tb.eng.Sample()
	if got := snap.Ops[tb.ids[1]].ProcessingRate; math.Abs(got-10000) > 1000 {
		t.Fatalf("post-reassign processing rate = %v, want ~10000", got)
	}
}

func TestNoAdaptTakesNoAction(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyNone}, 10000, 1, 0)
	tb.net.SetLinkFactor(0, 1, trace.Constant(4.0/160.0))
	tb.run(t, 400*time.Second)
	if n := len(tb.ctl.Actions()); n != 0 {
		t.Fatalf("No-Adapt performed %d actions", n)
	}
}

func TestScaleOutWhenEveryLinkConstrained(t *testing.T) {
	// Halve every link so no single link fits the 4 MB/s stream
	// (40000 ev/s × 100 B); links are 160→... we choke all links from 0
	// to 30 Mbps (3.75 MB/s, α→3 MB/s): one link cannot carry 4 MB/s but
	// two links can split it.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 40000, 1, 8e6)
	for to := 1; to < 4; to++ {
		tb.net.SetLinkFactor(0, topology.SiteID(to), trace.Constant(30.0/160.0))
	}
	tb.run(t, 600*time.Second)
	actions := tb.ctl.Actions()
	if !hasKind(actions, ActionScaleOut) {
		t.Fatalf("no scale-out; actions = %v", kinds(actions))
	}
	if got := tb.eng.Parallelism(tb.ids[1]); got < 2 {
		t.Fatalf("map parallelism = %d, want >= 2", got)
	}
	distinct := tb.eng.Plan().Stages[tb.ids[1]].DistinctSites()
	if len(distinct) < 2 {
		t.Fatalf("scale-out did not spread across sites: %v", distinct)
	}
}

func TestScaleDownAfterLoadDrops(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 9000, 5, 0)
	// High load for 400 s (forces scale-up), then 10% load.
	tb.eng.SetWorkloadFactor(trace.Steps(400*time.Second, 1, 0.1))
	tb.run(t, 400*time.Second)
	if got := tb.eng.Parallelism(tb.ids[1]); got < 2 {
		t.Fatalf("setup failed: map parallelism = %d, want >= 2", got)
	}
	tb.run(t, 900*time.Second)
	if !hasKind(tb.ctl.Actions(), ActionScaleDown) {
		t.Fatalf("no scale-down; actions = %v", kinds(tb.ctl.Actions()))
	}
	if got := tb.eng.Parallelism(tb.ids[1]); got != 1 {
		t.Fatalf("map parallelism = %d, want 1 after scale-down", got)
	}
}

func TestMigrationStrategiesOrdering(t *testing.T) {
	// Build a controller only to exercise buildMigrations: map at site 1
	// moving to site 2; make 1→2 slow and 1→3 fast. Network-aware picks
	// the fast destination when offered both, Distant picks the slow one.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 1000, 1, 60e6)
	tb.net.SetLinkFactor(1, 2, trace.Constant(0.1)) // 16 Mbps = 2 MB/s
	// 1→3 stays 160 Mbps = 20 MB/s.

	aware := tb.ctl
	aware.cfg.Migration = MigrateNetworkAware
	migsAware, bottleneckAware := aware.buildMigrations(tb.ids[1], sites(2, 3), MigrateNetworkAware)
	if len(migsAware) != 2 {
		t.Fatalf("aware migrations = %v", migsAware)
	}
	_, bottleneckDistant := aware.buildMigrations(tb.ids[1], sites(2, 3), MigrateDistant)
	if !(bottleneckAware <= bottleneckDistant) {
		t.Fatalf("network-aware bottleneck %v > distant %v", bottleneckAware, bottleneckDistant)
	}
	migsNone, b := aware.buildMigrations(tb.ids[1], sites(2, 3), MigrateNone)
	if len(migsNone) != 0 || b != 0 {
		t.Fatalf("MigrateNone produced %v", migsNone)
	}
}

func TestBuildMigrationsScaleOutPartitionsState(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 1000, 1, 90e6)
	// Scale out 1 → {1,2,3}: two new tasks each pull |state|/3 = 30 MB.
	migs, _ := tb.ctl.buildMigrations(tb.ids[1], sites(1, 2, 3), MigrateNetworkAware)
	if len(migs) != 2 {
		t.Fatalf("migrations = %v, want 2", migs)
	}
	for _, m := range migs {
		if m.Bytes != 30e6 {
			t.Fatalf("partition size = %v, want 3e7", m.Bytes)
		}
		if m.FromSite != 1 {
			t.Fatalf("donor = %v, want the old site 1", m.FromSite)
		}
	}
}

func TestDiagnoseThroughController(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyNone}, 10000, 1, 0)
	tb.run(t, 100*time.Second)
	// Policy none still samples; healthy pipeline → no action and sane
	// rate factor.
	if got := len(tb.ctl.Actions()); got != 0 {
		t.Fatalf("actions = %d", got)
	}
}

func TestForcePartitionConvertsCostlyReassign(t *testing.T) {
	// PolicyReassign with ForcePartition (the §8.7.2 "Partitioned" mode):
	// when the chosen re-assignment's migration would exceed t_max, the
	// controller must scale out and partition the state instead.
	acfg := Config{
		Policy:         PolicyReassign,
		ForcePartition: true,
		TMax:           5 * time.Second,
	}
	tb := newTestbed(t, engine.Config{}, acfg, 10000, 1, 400e6)
	// Choke the inbound link so the map at site 1 is network-constrained;
	// every candidate destination is reachable but migrating 400 MB over
	// any single 20 MB/s link takes 20 s > t_max.
	tb.net.SetLinkFactor(0, 1, trace.Constant(4.0/160.0))
	tb.run(t, 400*time.Second)
	actions := tb.ctl.Actions()
	if !hasKind(actions, ActionScaleOut) {
		t.Fatalf("ForcePartition did not scale out; actions = %v", kinds(actions))
	}
}

func TestScaleDownRemovesNonColocatedTaskFirst(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 2000, 1, 0)
	tb.run(t, 10*time.Second)
	// Manually over-provision the map across sites 1 (co-located with
	// nothing) and 0 (co-located with the upstream source).
	if err := tb.eng.Reconfigure(tb.ids[1], sites(0, 1), nil, nil); err != nil {
		t.Fatal(err)
	}
	tb.run(t, 400*time.Second)
	if !hasKind(tb.ctl.Actions(), ActionScaleDown) {
		t.Fatalf("no scale-down; actions = %v", kinds(tb.ctl.Actions()))
	}
	st := tb.eng.Plan().Stages[tb.ids[1]]
	if len(st.Sites) != 1 || st.Sites[0] != 0 {
		t.Fatalf("scale-down kept %v; want the co-located task at site 0", st.Sites)
	}
}

func TestDiagnoseSendHeavySkipsUpstreamOp(t *testing.T) {
	// A chain whose outbound link is dead shows a heavy send queue; the
	// controller must not label it compute-constrained (scaling it up
	// would not help) — the downstream op carries the diagnosis.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyNone}, 10000, 1, 0)
	tb.net.SetLinkFactor(1, 3, trace.Constant(0.01)) // map -> sink starves
	tb.run(t, 200*time.Second)
	snap := tb.eng.Sample()
	in, _, err := metricsEstimate(tb, snap)
	if err != nil {
		t.Fatal(err)
	}
	cond := tb.ctl.diagnose(tb.ids[1], snap, in)
	if cond == metrics.ComputeConstrained {
		t.Fatalf("send-blocked map misdiagnosed as compute-constrained (sendQ=%v)",
			snap.Ops[tb.ids[1]].SendQueueLen)
	}
}

func metricsEstimate(tb *testbed, snap *metrics.Snapshot) (map[plan.OpID]float64, map[plan.OpID]float64, error) {
	in, out, err := metrics.EstimateActual(tb.eng.Plan().Graph, snap)
	return in, out, err
}
