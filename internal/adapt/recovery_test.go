package adapt

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// recoveryBed deploys src(site0) → agg(10 s window, stateful, site1) →
// sink(site3) over four sites with the given slot count, plus a WASP
// controller with an attached recovery manager checkpointing every
// interval.
func recoveryBed(t *testing.T, slots int, interval time.Duration) (*testbed, *RecoveryManager) {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 5000,
	})
	agg := g.AddOperator(plan.Operator{
		Name: "agg", Kind: plan.KindAggregate, Splittable: true, Stateful: true,
		Selectivity: 0.01, OutEventBytes: 200, CostPerEvent: 1,
		Window: 10 * time.Second, StateBytes: 8e6,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 3})
	g.MustConnect(src, agg)
	g.MustConnect(agg, snk)

	const n = 4
	sitesArr := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sitesArr[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: slots}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 100000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 160
			lat[i][j] = 40 * time.Millisecond
		}
	}
	top, err := topology.New(sitesArr, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := engine.New(engine.Config{}, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[agg].Sites = []topology.SiteID{1}
	pp.Stages[snk].Sites = []topology.SiteID{3}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ctl := NewController(Config{Policy: PolicyWASP}, eng, top, net, sched, nil)
	rm := NewRecoveryManager("q", interval, eng, top, sched, nil)
	ctl.AttachRecovery(rm)
	rm.Start()
	ctl.Start()
	return &testbed{top: top, net: net, sched: sched, eng: eng, ctl: ctl, ids: []plan.OpID{src, agg, snk}}, rm
}

func crashAt(tb *testbed, at time.Duration, site topology.SiteID) {
	tb.sched.At(vclock.Time(at), func(vclock.Time) {
		tb.eng.CrashSite(site)
		tb.ctl.OnSiteCrash(site)
	})
}

func TestRecoveryReplacesCrashedSiteAndRestoresState(t *testing.T) {
	tb, rm := recoveryBed(t, 8, 30*time.Second)
	agg := tb.ids[1]
	crashAt(tb, 100*time.Second, 1)
	tb.run(t, 150*time.Second)

	if !hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("no recover action; actions = %v", kinds(tb.ctl.Actions()))
	}
	for _, s := range tb.eng.Plan().Stages[agg].Sites {
		if s == 1 {
			t.Fatalf("aggregate still placed at the dead site: %v", tb.eng.Plan().Stages[agg].Sites)
		}
	}
	lost, restored := tb.eng.Lost()
	if lost <= 0 {
		t.Fatal("crash of a stateful site recorded no loss")
	}
	if restored <= 0 {
		t.Fatal("recovery restored no state")
	}
	if restored > lost+1e-9 {
		t.Fatalf("restored %v exceeds lost %v", restored, lost)
	}
	// Checkpoints at epochs 30/60/90 s exist, with the replica on a
	// surviving site (the restore source).
	if len(rm.Store().Refs()) == 0 {
		t.Fatal("no checkpoints were written")
	}
	ref, _, ok := rm.Latest(agg, 1, []topology.SiteID{1})
	if !ok || ref.Site == 1 {
		t.Fatalf("no surviving checkpoint replica: %+v ok=%v", ref, ok)
	}

	// The pipeline flows again after recovery.
	_, d1, _ := tb.eng.Totals()
	tb.run(t, 300*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatalf("pipeline did not resume after recovery: delivered %v -> %v", d1, d2)
	}
}

func TestRecoveryDegradesWithoutPlacementThenResumesOnRestart(t *testing.T) {
	// One slot per site, all occupied — and the only idle site (2) crashes
	// too. No replacement can be placed anywhere: the ladder must bottom
	// out at degradation, not act.
	tb, _ := recoveryBed(t, 1, 30*time.Second)
	agg := tb.ids[1]
	tb.sched.At(vclock.Time(100*time.Second), func(vclock.Time) {
		tb.eng.CrashSite(2)
		tb.eng.CrashSite(1)
		tb.ctl.OnSiteCrash(2)
		tb.ctl.OnSiteCrash(1)
	})
	tb.run(t, 200*time.Second)
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("recovered with zero free slots; actions = %v", kinds(tb.ctl.Actions()))
	}
	if got := tb.eng.Plan().Stages[agg].Sites; len(got) != 1 || got[0] != 1 {
		t.Fatalf("degraded stage was re-placed: %v", got)
	}

	// Site restart ends the degradation: tasks resume (empty) in place.
	_, d1, _ := tb.eng.Totals()
	tb.eng.RestoreSite(1)
	tb.eng.RestoreSite(2)
	tb.run(t, 400*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatalf("pipeline did not resume after site restart: delivered %v -> %v", d1, d2)
	}
}

func TestRecoveryLeavesPinnedSinkDegraded(t *testing.T) {
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	snk := tb.ids[2]
	crashAt(tb, 100*time.Second, 3)
	tb.run(t, 250*time.Second)
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("pinned sink was re-placed; actions = %v", kinds(tb.ctl.Actions()))
	}
	if got := tb.eng.Plan().Stages[snk].Sites; len(got) != 1 || got[0] != 3 {
		t.Fatalf("pinned sink moved: %v", got)
	}
	_, d1, _ := tb.eng.Totals()
	tb.eng.RestoreSite(3)
	tb.run(t, 400*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatal("sink did not resume after its site restarted")
	}
}

func TestRecoveryWithoutCheckpointsStillReplaces(t *testing.T) {
	// No recovery manager attached: the controller still re-places dead
	// tasks (restart-empty recovery), it just has no state to restore.
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	tb.ctl.AttachRecovery(nil)
	agg := tb.ids[1]
	crashAt(tb, 100*time.Second, 1)
	tb.run(t, 200*time.Second)
	if !hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("no recover action; actions = %v", kinds(tb.ctl.Actions()))
	}
	for _, s := range tb.eng.Plan().Stages[agg].Sites {
		if s == 1 {
			t.Fatalf("aggregate still at the dead site: %v", tb.eng.Plan().Stages[agg].Sites)
		}
	}
	_, restored := tb.eng.Lost()
	if restored != 0 {
		t.Fatalf("restored %v state without any checkpoints", restored)
	}
}
