package adapt

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// recoveryBed deploys src(site0) → agg(10 s window, stateful, site1) →
// sink(site3) over four sites with the given slot count, plus a WASP
// controller with an attached recovery manager checkpointing every
// interval.
func recoveryBed(t *testing.T, slots int, interval time.Duration) (*testbed, *RecoveryManager) {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 5000,
	})
	agg := g.AddOperator(plan.Operator{
		Name: "agg", Kind: plan.KindAggregate, Splittable: true, Stateful: true,
		Selectivity: 0.01, OutEventBytes: 200, CostPerEvent: 1,
		Window: 10 * time.Second, StateBytes: 8e6,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 3})
	g.MustConnect(src, agg)
	g.MustConnect(agg, snk)

	const n = 4
	sitesArr := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sitesArr[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: slots}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 100000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 160
			lat[i][j] = 40 * time.Millisecond
		}
	}
	top, err := topology.New(sitesArr, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := engine.New(engine.Config{}, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[agg].Sites = []topology.SiteID{1}
	pp.Stages[snk].Sites = []topology.SiteID{3}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ctl := NewController(Config{Policy: PolicyWASP}, eng, top, net, sched, nil)
	rm := NewRecoveryManager("q", interval, eng, top, sched, nil)
	ctl.AttachRecovery(rm)
	rm.Start()
	ctl.Start()
	return &testbed{top: top, net: net, sched: sched, eng: eng, ctl: ctl, ids: []plan.OpID{src, agg, snk}}, rm
}

func crashAt(tb *testbed, at time.Duration, site topology.SiteID) {
	tb.sched.At(vclock.Time(at), func(vclock.Time) {
		tb.eng.CrashSite(site)
		tb.ctl.OnSiteCrash(site)
	})
}

func TestRecoveryReplacesCrashedSiteAndRestoresState(t *testing.T) {
	tb, rm := recoveryBed(t, 8, 30*time.Second)
	agg := tb.ids[1]
	crashAt(tb, 100*time.Second, 1)
	tb.run(t, 150*time.Second)

	if !hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("no recover action; actions = %v", kinds(tb.ctl.Actions()))
	}
	for _, s := range tb.eng.Plan().Stages[agg].Sites {
		if s == 1 {
			t.Fatalf("aggregate still placed at the dead site: %v", tb.eng.Plan().Stages[agg].Sites)
		}
	}
	lost, restored := tb.eng.Lost()
	if lost <= 0 {
		t.Fatal("crash of a stateful site recorded no loss")
	}
	if restored <= 0 {
		t.Fatal("recovery restored no state")
	}
	if restored > lost+1e-9 {
		t.Fatalf("restored %v exceeds lost %v", restored, lost)
	}
	// Checkpoints at epochs 30/60/90 s exist, with the replica on a
	// surviving site (the restore source).
	if len(rm.Store().Refs()) == 0 {
		t.Fatal("no checkpoints were written")
	}
	ref, _, ok := rm.Latest(agg, 1, []topology.SiteID{1})
	if !ok || ref.Site == 1 {
		t.Fatalf("no surviving checkpoint replica: %+v ok=%v", ref, ok)
	}

	// The pipeline flows again after recovery.
	_, d1, _ := tb.eng.Totals()
	tb.run(t, 300*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatalf("pipeline did not resume after recovery: delivered %v -> %v", d1, d2)
	}
}

func TestRecoveryDegradesWithoutPlacementThenResumesOnRestart(t *testing.T) {
	// One slot per site, all occupied — and the only idle site (2) crashes
	// too. No replacement can be placed anywhere: the ladder must bottom
	// out at degradation, not act.
	tb, _ := recoveryBed(t, 1, 30*time.Second)
	agg := tb.ids[1]
	tb.sched.At(vclock.Time(100*time.Second), func(vclock.Time) {
		tb.eng.CrashSite(2)
		tb.eng.CrashSite(1)
		tb.ctl.OnSiteCrash(2)
		tb.ctl.OnSiteCrash(1)
	})
	tb.run(t, 200*time.Second)
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("recovered with zero free slots; actions = %v", kinds(tb.ctl.Actions()))
	}
	if got := tb.eng.Plan().Stages[agg].Sites; len(got) != 1 || got[0] != 1 {
		t.Fatalf("degraded stage was re-placed: %v", got)
	}

	// Site restart ends the degradation: tasks resume (empty) in place.
	_, d1, _ := tb.eng.Totals()
	tb.eng.RestoreSite(1)
	tb.eng.RestoreSite(2)
	tb.run(t, 400*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatalf("pipeline did not resume after site restart: delivered %v -> %v", d1, d2)
	}
}

func TestRecoveryLeavesPinnedSinkDegraded(t *testing.T) {
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	snk := tb.ids[2]
	crashAt(tb, 100*time.Second, 3)
	tb.run(t, 250*time.Second)
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("pinned sink was re-placed; actions = %v", kinds(tb.ctl.Actions()))
	}
	if got := tb.eng.Plan().Stages[snk].Sites; len(got) != 1 || got[0] != 3 {
		t.Fatalf("pinned sink moved: %v", got)
	}
	_, d1, _ := tb.eng.Totals()
	tb.eng.RestoreSite(3)
	tb.run(t, 400*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatal("sink did not resume after its site restarted")
	}
}

func TestRecoveryWithoutCheckpointsStillReplaces(t *testing.T) {
	// No recovery manager attached: the controller still re-places dead
	// tasks (restart-empty recovery), it just has no state to restore.
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	tb.ctl.AttachRecovery(nil)
	agg := tb.ids[1]
	crashAt(tb, 100*time.Second, 1)
	tb.run(t, 200*time.Second)
	if !hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("no recover action; actions = %v", kinds(tb.ctl.Actions()))
	}
	for _, s := range tb.eng.Plan().Stages[agg].Sites {
		if s == 1 {
			t.Fatalf("aggregate still at the dead site: %v", tb.eng.Plan().Stages[agg].Sites)
		}
	}
	_, restored := tb.eng.Lost()
	if restored != 0 {
		t.Fatalf("restored %v state without any checkpoints", restored)
	}
}

// A crash inside a quarantined region must defer down the ladder — the
// controller can neither command the region's survivors nor trust its
// view of it — and then recover normally once the region is re-admitted.
func TestRecoveryDefersInQuarantinedRegionThenProceeds(t *testing.T) {
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	agg := tb.ids[1]

	// Impaired control plane over the same rig: one quarantine domain per
	// site (Regions: 4), controller co-located with the sink on site 3.
	plane := ctrlplane.New(ctrlplane.Config{
		ControllerSite: 3,
		Regions:        4,
		ReportEvery:    10 * time.Second,
		PartitionAfter: 30 * time.Second,
	}, tb.eng, tb.net, tb.top, tb.sched, tb.ctl.Observer())
	tb.ctl.AttachControlPlane(plane)
	plane.Start()
	region := plane.RegionOfSite(1)

	// t=100s: region of site 1 loses its control link. Quarantined once
	// its silence passes 30s (the t=160s monitoring round).
	tb.sched.At(100*time.Second, func(vclock.Time) { plane.SetRegionPartition(region, true) })
	// t=200s: site 1 crashes inside the quarantined region.
	crashAt(tb, 200*time.Second, 1)
	tb.run(t, 240*time.Second)

	if !plane.SiteQuarantined(1) {
		t.Fatal("region of site 1 not quarantined before the crash")
	}
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("recovered into a quarantined region; actions = %v", kinds(tb.ctl.Actions()))
	}
	deferred := tb.ctl.Observer().Events("recovery.degraded")
	if len(deferred) == 0 {
		t.Fatal("no recovery.degraded event for the deferred crash")
	}
	if rung := deferred[0].Get("rung").Str(); rung != "quarantine-deferred" {
		t.Fatalf("degrade rung = %q; want quarantine-deferred", rung)
	}
	if reason := deferred[0].Get("reason").Str(); !strings.Contains(reason, "quarantined") {
		t.Fatalf("degrade reason %q does not name the quarantine", reason)
	}

	// t=250s: the control link heals; heartbeats resume, the region is
	// re-admitted, and the Round backstop re-enters the ladder.
	tb.sched.At(250*time.Second, func(vclock.Time) { plane.SetRegionPartition(region, false) })
	tb.run(t, 400*time.Second)

	if len(tb.ctl.Observer().Events("ctrl.readmit")) == 0 {
		t.Fatal("no ctrl.readmit event after the control link healed")
	}
	if got := plane.QuarantinedRegions(); len(got) != 0 {
		t.Fatalf("regions still quarantined at end: %v", got)
	}
	if !hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("no recovery after re-admission; actions = %v", kinds(tb.ctl.Actions()))
	}
	for _, s := range tb.eng.Plan().Stages[agg].Sites {
		if s == 1 {
			t.Fatalf("aggregate still at the dead site: %v", tb.eng.Plan().Stages[agg].Sites)
		}
	}
	if n := plane.UnackedCommands(); n != 0 {
		t.Fatalf("UnackedCommands() = %d at end; want 0", n)
	}
}
