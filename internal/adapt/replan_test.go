package adapt

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// combineQuery builds a 4-source windowed-aggregation query with a
// re-orderable combine group on the 4-site test topology.
func combineQuery(t *testing.T) (*plan.Graph, *plan.CombineSpec) {
	t.Helper()
	g := plan.NewGraph()
	var inputs []plan.OpID
	rates := []float64{8000, 6000, 4000, 2000}
	for i, r := range rates {
		src := g.AddOperator(plan.Operator{
			Name: "src", Kind: plan.KindSource, PinnedSite: topology.SiteID(i),
			Selectivity: 1, OutEventBytes: 100, SourceRate: r,
		})
		inputs = append(inputs, src)
	}
	sink := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 0})
	spec := &plan.CombineSpec{
		Inputs: inputs,
		Output: sink,
		Template: plan.Operator{
			Name: "agg", Kind: plan.KindAggregate, Stateful: true, Splittable: true,
			Selectivity: 0.05, OutEventBytes: 80, CostPerEvent: 1,
			StateBytes: 8e6, Window: 10 * time.Second,
		},
	}
	return g, spec
}

// replanBed deploys the WORST schedulable candidate of the combine query
// so that a re-plan has a strictly better variant available.
func replanBed(t *testing.T, policy Policy) (*testbed, *ReplanSpec, *physical.Candidate) {
	t.Helper()
	top := fourSites(t)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	g, spec := combineQuery(t)

	cfg := physical.PlannerConfig{
		ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8, DefaultParallelism: 1},
	}
	best, all, err := physical.PlanQuery(g, spec, top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatal("need at least two candidates")
	}
	worst := all[len(all)-1]

	eng := engine.New(engine.Config{}, top, net, sched)
	if err := eng.Deploy(worst.Plan); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	rs := &ReplanSpec{Base: g, Spec: spec, Current: worst.Variant}
	ctl := NewController(Config{Policy: policy}, eng, top, net, sched, rs)
	ctl.Start()
	tb := &testbed{top: top, net: net, sched: sched, eng: eng, ctl: ctl}
	_ = best
	return tb, rs, &worst
}

func TestTryReplanSwitchesToBetterVariant(t *testing.T) {
	tb, rs, worst := replanBed(t, PolicyReplan)
	tb.run(t, 30*time.Second)
	tb.ctl.lastRateFactor = 1

	if !tb.ctl.tryReplan(0, "test") {
		t.Fatal("tryReplan refused to switch off the worst candidate")
	}
	if !hasKind(tb.ctl.Actions(), ActionReplan) {
		t.Fatal("no re-plan action recorded")
	}
	if !tb.eng.Replanning() {
		t.Fatal("engine not draining for the plan switch")
	}
	tb.run(t, 120*time.Second)
	if tb.eng.Replanning() {
		t.Fatal("plan switch never completed")
	}
	// The controller's current variant was updated and differs from the
	// original worst one.
	if sameTree(rs.Current, worst.Variant) {
		t.Fatal("current variant not updated after re-plan")
	}
	// Conservation across the switch: keep running and verify events
	// keep flowing at the full rate.
	tb.eng.Sample()
	tb.run(t, 250*time.Second)
	gen, proc, _ := tb.eng.Goodput()
	if proc < gen*0.95 {
		t.Fatalf("post-replan goodput %.0f of %.0f", proc, gen)
	}
}

func TestTryReplanNoOpWhenAlreadyBest(t *testing.T) {
	tb, rs, _ := replanBed(t, PolicyReplan)
	tb.run(t, 30*time.Second)
	tb.ctl.lastRateFactor = 1
	// Switch once to the best plan...
	if !tb.ctl.tryReplan(0, "first") {
		t.Fatal("first re-plan refused")
	}
	tb.run(t, 150*time.Second)
	// ...then a second attempt must be a no-op (already running the best
	// schedulable variant).
	if tb.ctl.tryReplan(0, "second") {
		t.Fatalf("re-planned away from the best variant %v", rs.Current.Tree)
	}
}

func TestCarryMapCoversBaseAndCommonCombines(t *testing.T) {
	g, spec := combineQuery(t)
	cur, err := spec.Expand(g, plan.BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	// Same structure with swapped siblings: all combine LeafSets match.
	next, err := spec.Expand(g, plan.BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	c := &Controller{}
	carry := c.carryMap(cur, next)
	// 4 sources + 1 sink + 3 matching combines = 8 entries.
	if len(carry) != 8 {
		t.Fatalf("carry entries = %d, want 8 (%v)", len(carry), carry)
	}
	// Base ops map to themselves.
	for _, id := range g.OperatorIDs() {
		if carry[id] != id {
			t.Fatalf("base op %d mapped to %d", id, carry[id])
		}
	}

	// The left-deep tree shares the {0,1} combine and the root with the
	// balanced tree: 5 base ops + 2 common combines carry over.
	other, err := spec.Expand(g, plan.LeftDeepTree([]int{0, 1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	carry = c.carryMap(cur, other)
	if len(carry) != 7 {
		t.Fatalf("carry entries = %d, want 7 (%v)", len(carry), carry)
	}
}

func TestSameTree(t *testing.T) {
	g, spec := combineQuery(t)
	a, _ := spec.Expand(g, plan.BalancedTree(4))
	b, _ := spec.Expand(g, plan.BalancedTree(4))
	ld, _ := spec.Expand(g, plan.LeftDeepTree([]int{0, 1, 2, 3}))
	if !sameTree(a, b) {
		t.Fatal("identical structures judged different")
	}
	if sameTree(a, ld) {
		t.Fatal("different structures judged same")
	}
}

func TestPolicyWASPReplansUnsplittableOperator(t *testing.T) {
	// A network-bound operator that cannot be split must route to
	// re-planning under the full policy (Fig 6). Build the combine bed
	// with an unsplittable template and verify act() chooses re-plan.
	tb, rs, _ := replanBed(t, PolicyWASP)
	// Mark every deployed combine node unsplittable.
	for _, id := range tb.eng.Plan().Graph.OperatorIDs() {
		op := tb.eng.Plan().Graph.Operator(id)
		if op.Kind == plan.KindAggregate {
			op.Splittable = false
		}
	}
	rs.Spec.Template.Splittable = false
	tb.run(t, 30*time.Second)
	tb.ctl.lastRateFactor = 1

	combineID := tb.eng.Plan().Graph.Sinks()[0]
	ups := tb.eng.Plan().Graph.Upstream(combineID)
	acted := tb.ctl.act(tb.sched.Now(), ups[0], metrics.NetworkConstrained, nil, map[plan.OpID]float64{})
	if !acted {
		t.Fatal("unsplittable network-bound op: no action")
	}
	if !hasKind(tb.ctl.Actions(), ActionReplan) {
		t.Fatalf("expected re-plan, got %v", kinds(tb.ctl.Actions()))
	}
}

func TestLongTermBackgroundReplan(t *testing.T) {
	// Deploy the worst variant with a healthy execution: the reactive
	// loop never fires, but the long-term background re-evaluation must
	// still switch to a better plan (§6.2, long-term dynamics).
	top := fourSites(t)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	g, spec := combineQuery(t)
	_, all, err := physical.PlanQuery(g, spec, top, physical.PlannerConfig{
		ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8, DefaultParallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	worst := all[len(all)-1]
	eng := engine.New(engine.Config{}, top, net, sched)
	if err := eng.Deploy(worst.Plan); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	ctl := NewController(Config{Policy: PolicyWASP, LongTermReplanEvery: 5 * time.Minute},
		eng, top, net, sched,
		&ReplanSpec{Base: g, Spec: spec, Current: worst.Variant})
	ctl.Start()
	if err := sched.RunUntil(vclock.Time(12 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !hasKind(ctl.Actions(), ActionReplan) {
		t.Fatalf("background re-plan never fired; actions = %v", kinds(ctl.Actions()))
	}
	ctl.Stop()
}
