package adapt

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/obs"
)

// phaseDurations collects adapt.latency events by phase from an observer.
func phaseDurations(o *obs.Observer) map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for _, ev := range o.Events("adapt.latency") {
		var phase string
		var dur time.Duration
		for _, kv := range ev.Attrs {
			switch kv.Key {
			case "phase":
				phase = kv.Val.Str()
			case "dur":
				dur = kv.Val.Duration()
			}
		}
		out[phase] = append(out[phase], dur)
	}
	return out
}

// TestAdaptLatencyPhases drives a compute bottleneck through a scale-up
// and checks the full detect→plan→halt→transfer→resume cycle lands in
// the adapt.latency event stream and the per-phase histogram.
func TestAdaptLatencyPhases(t *testing.T) {
	// Stateful map so the scale-up migrates state (non-trivial halt and
	// transfer phases). Engine and controller share one observer, as the
	// experiment runner wires them, so engine-emitted halt/transfer land
	// beside the controller's detect/plan/resume.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 9000, 5, 40e6)
	tb.eng.SetObserver(tb.ctl.Observer())
	tb.run(t, 600*time.Second)
	if !hasKind(tb.ctl.Actions(), ActionScaleUp) {
		t.Fatalf("no scale-up happened; actions = %v", kinds(tb.ctl.Actions()))
	}

	phases := phaseDurations(tb.ctl.Observer())
	for _, want := range []string{"detect", "plan", "halt", "transfer", "resume"} {
		if len(phases[want]) == 0 {
			t.Errorf("no adapt.latency events for phase %q (got %v)", want, phases)
		}
	}
	// Plan is instantaneous on the virtual clock by construction.
	for _, d := range phases["plan"] {
		if d != 0 {
			t.Errorf("plan phase = %v, want 0 (virtual clock)", d)
		}
	}
	// Detect is bounded below by nothing but above by a few monitoring
	// intervals; it must be non-negative and finite.
	for _, d := range phases["detect"] {
		if d < 0 {
			t.Errorf("negative detect phase %v", d)
		}
	}
	// Resume closes at a later monitoring round, so it is > 0.
	for _, d := range phases["resume"] {
		if d <= 0 {
			t.Errorf("resume phase = %v, want > 0", d)
		}
	}

	h := tb.ctl.Observer().Registry().Histogram("wasp_adapt_latency_seconds", engine.AdaptLatencyBuckets, "phase", "detect")
	if h.Count() == 0 {
		t.Error("detect-phase histogram is empty")
	}
	if q := h.Quantile(0.5); q < 0 {
		t.Errorf("detect p50 = %v", q)
	}
}
