package adapt

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/matching"
	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// bandwidthNow returns the current from→to capacity in bytes/s.
func (c *Controller) bandwidthNow(from, to topology.SiteID) float64 {
	return c.net.Capacity(from, to, c.sched.Now())
}

// scheduleConfig builds the physical-layer config with live bandwidth and
// the measured workload factor.
func (c *Controller) scheduleConfig(rateFactor float64) physical.ScheduleConfig {
	return physical.ScheduleConfig{
		Alpha:              c.cfg.Alpha,
		DefaultParallelism: 1,
		RateFactor:         rateFactor,
		Bandwidth:          c.bandwidthNow,
		Workspace:          &c.ws,
		HierarchicalSites:  c.cfg.HierarchicalSites,
	}
}

// measuredRateFactor estimates the current workload as a multiple of the
// modelled source rates.
func (c *Controller) measuredRateFactor(snap *metrics.Snapshot) float64 {
	g := c.eng.Plan().Graph
	var measured, model float64
	for _, id := range g.Sources() {
		measured += snap.Ops[id].SourceRate
		model += g.Operator(id).SourceRate
	}
	if model <= 0 || measured <= 0 {
		return 1
	}
	return measured / model
}

// freeSlotsPlusOwn returns free slots per site counting the operator's own
// tasks as available (they may be re-placed).
func (c *Controller) freeSlotsPlusOwn(id plan.OpID) []int {
	free := c.freeSlots()
	for _, site := range c.eng.Plan().Stages[id].Sites {
		free[site]++
	}
	return free
}

// previewReassign solves the re-assignment program for a stage and
// estimates the migration overhead t_adapt = max |state|/B (§6.2),
// without executing anything.
func (c *Controller) previewReassign(id plan.OpID) (feasible bool, overhead vclock.Time) {
	pl, err := physical.ReassignStage(c.eng.Plan(), id, c.top, c.scheduleConfig(c.lastRateFactor), c.freeSlotsPlusOwn(id))
	if err != nil {
		return false, 0
	}
	newSites := placementSites(pl)
	_, bottleneck := c.buildMigrations(id, newSites, MigrateNetworkAware)
	return true, bottleneck
}

// tryReassign executes a task re-assignment if the program finds a
// placement different from the current one.
func (c *Controller) tryReassign(id plan.OpID) bool {
	pl, err := physical.ReassignStage(c.eng.Plan(), id, c.top, c.scheduleConfig(c.lastRateFactor), c.freeSlotsPlusOwn(id))
	if err != nil {
		c.reject("re-assign", "no placement found: "+err.Error())
		return false
	}
	newSites := placementSites(pl)
	if sameSites(newSites, c.eng.Plan().Stages[id].Sites) {
		c.reject("re-assign", "solver kept the current placement")
		return false
	}
	if c.reversalGuarded(id, newSites) {
		c.reject("reversal-guard",
			fmt.Sprintf("would undo a placement younger than %d rounds", c.cfg.ReversalGuardRounds),
			obs.Int("op", int(id)))
		return false
	}
	migs, bottleneck := c.buildMigrations(id, newSites, c.cfg.Migration)
	if err := c.reconfigure(id, newSites, migs, nil); err != nil {
		c.reject("re-assign", "engine: "+err.Error())
		return false
	}
	c.record(ActionReassign, id, fmt.Sprintf("to %v, est transition %v", newSites, bottleneck))
	return true
}

// scaleForCompute scales UP a compute-bound operator: p′ = ⌈λ̂I/λP·p⌉
// (sized to also drain accumulated backlog within the drain target),
// preferring free slots at the operator's current sites.
func (c *Controller) scaleForCompute(id plan.OpID, snap *metrics.Snapshot, expectedIn map[plan.OpID]float64) bool {
	s := snap.Ops[id]
	p := c.eng.Parallelism(id)
	perTask := c.capacityOf(id, 1)

	want := expectedIn[id]
	if s.InputQueueLen > 0 && c.cfg.DrainTargetSec > 0 {
		want += s.InputQueueLen / c.cfg.DrainTargetSec
	}
	pPrime := metrics.ScaleFactor(want, s.ProcessingRate, p)
	if needed := int(math.Ceil(want / perTask)); needed > pPrime {
		pPrime = needed
	}
	if pPrime > c.cfg.PMax {
		pPrime = c.cfg.PMax
	}
	if pPrime <= p {
		// Already at the cap (p′ > p_max): re-planning is the remaining
		// lever (Fig 6) — but only the full WASP policy may switch plans.
		c.reject("scale-up", fmt.Sprintf("p′ %d ≤ p %d (p_max %d)", pPrime, p, c.cfg.PMax),
			obs.Int("p_prime", pPrime), obs.Int("p", p), obs.Int("p_max", c.cfg.PMax))
		if c.cfg.Policy == PolicyWASP {
			return c.tryReplan(id, "compute-bound at p_max")
		}
		return false
	}
	if !c.eng.Plan().Graph.Operator(id).Splittable {
		c.reject("scale-up", "operator cannot be split")
		if c.cfg.Policy == PolicyWASP {
			return c.tryReplan(id, "compute-bound unsplittable operator")
		}
		return false
	}
	newSites, ok := c.placeScaleUp(id, pPrime)
	if !ok {
		c.reject("scale-up", fmt.Sprintf("no placement for p′ %d", pPrime),
			obs.Int("p_prime", pPrime))
		return false
	}
	migs, bottleneck := c.buildMigrations(id, newSites, c.cfg.Migration)
	if err := c.reconfigure(id, newSites, migs, nil); err != nil {
		c.reject("scale-up", "engine: "+err.Error())
		return false
	}
	c.record(ActionScaleUp, id, fmt.Sprintf("p %d→%d at %v, est transition %v", p, pPrime, newSites, bottleneck))
	return true
}

// placeScaleUp chooses sites for a scale-up to pPrime tasks: keep every
// existing task, fill free slots at current sites first (§6.2: local
// first), then place the remainder with the placement program.
func (c *Controller) placeScaleUp(id plan.OpID, pPrime int) ([]topology.SiteID, bool) {
	st := c.eng.Plan().Stages[id]
	newSites := append([]topology.SiteID(nil), st.Sites...)
	need := pPrime - len(newSites)
	free := c.freeSlots()

	for _, site := range st.DistinctSites() {
		for need > 0 && free[site] > 0 {
			newSites = append(newSites, site)
			free[site]--
			need--
		}
	}
	if need == 0 {
		sortSites(newSites)
		return newSites, true
	}
	// Place the remainder anywhere feasible, sized by the share of the
	// stream the new tasks will carry.
	pl, err := c.solveAdditional(id, need, pPrime, free)
	if err != nil {
		return nil, false
	}
	newSites = append(newSites, placementSites(pl)...)
	sortSites(newSites)
	return newSites, true
}

// solveAdditional places `need` extra tasks of a stage that will end at
// total parallelism pPrime, using the stage's upstream/downstream
// endpoints and each new task's 1/pPrime share of the streams.
func (c *Controller) solveAdditional(id plan.OpID, need, pPrime int, free []int) (*placement.Placement, error) {
	p := c.eng.Plan()
	g := p.Graph
	_, _, outBytes, err := g.ExpectedRates(c.lastRateFactor)
	if err != nil {
		return nil, err
	}
	var ups []placement.Endpoint
	var inBytes float64
	for _, u := range g.Upstream(id) {
		share := outBytes[u]
		inBytes += share
		for _, ep := range p.Stages[u].Endpoints() {
			ups = append(ups, placement.Endpoint{Site: ep.Site, Weight: ep.Weight * share})
		}
	}
	if inBytes > 0 {
		for i := range ups {
			ups[i].Weight /= inBytes
		}
	}
	var downs []placement.Endpoint
	consumers := g.Downstream(id)
	for _, d := range consumers {
		for _, ep := range p.Stages[d].Endpoints() {
			downs = append(downs, placement.Endpoint{Site: ep.Site, Weight: ep.Weight / float64(len(consumers))})
		}
	}
	share := float64(need) / float64(pPrime)
	pr := &placement.Problem{
		Sites:             c.top.N(),
		Parallelism:       need,
		AvailableSlots:    free,
		Upstream:          ups,
		Downstream:        downs,
		InputBytesPerSec:  inBytes * share,
		OutputBytesPerSec: outBytes[id] * float64(max(len(consumers), 1)) * share,
		Alpha:             c.cfg.Alpha,
		Latency:           c.top.Latency,
		Bandwidth:         c.bandwidthNow,
		Pinned:            plan.NoSite,
	}
	// Same dispatch as the scheduler: exact below the hierarchical
	// threshold, two-level above it.
	return c.ws.SolvePlacement(pr, c.top, c.cfg.HierarchicalSites)
}

// scaleForNetwork scales OUT a network-bound operator: find the smallest
// p′ ∈ (p, p_max] at which additional tasks on other sites can absorb the
// stream, distributing it across more links (§4.2). Existing tasks are
// kept in place (they continue processing while the new tasks receive
// their state partitions); only if no additive placement exists does the
// whole stage get re-placed at the higher parallelism.
func (c *Controller) scaleForNetwork(id plan.OpID, expectedIn map[plan.OpID]float64) bool {
	p := c.eng.Parallelism(id)
	if !c.eng.Plan().Graph.Operator(id).Splittable {
		c.reject("scale-out", "operator cannot be split")
		return false
	}
	cur := c.eng.Plan().Stages[id].Sites
	free := c.freeSlots()
	for pPrime := p + 1; pPrime <= c.cfg.PMax; pPrime++ {
		// Additive: keep the current tasks, place the extra ones.
		if pl, err := c.solveAdditional(id, pPrime-p, pPrime, free); err == nil {
			newSites := append(append([]topology.SiteID(nil), cur...), placementSites(pl)...)
			sortSites(newSites)
			migs, bottleneck := c.buildMigrations(id, newSites, c.cfg.Migration)
			if err := c.reconfigure(id, newSites, migs, nil); err != nil {
				c.reject("scale-out", "engine: "+err.Error())
				return false
			}
			c.record(ActionScaleOut, id, fmt.Sprintf("p %d→%d at %v, est transition %v", p, pPrime, newSites, bottleneck))
			return true
		}
	}
	// No additive placement: re-place the whole stage at higher
	// parallelism (may migrate existing tasks).
	freeOwn := c.freeSlotsPlusOwn(id)
	for pPrime := p + 1; pPrime <= c.cfg.PMax; pPrime++ {
		pl, err := c.reassignAt(id, pPrime, freeOwn)
		if err != nil {
			continue
		}
		newSites := placementSites(pl)
		migs, bottleneck := c.buildMigrations(id, newSites, c.cfg.Migration)
		if err := c.reconfigure(id, newSites, migs, nil); err != nil {
			c.reject("scale-out", "engine: "+err.Error())
			return false
		}
		c.record(ActionScaleOut, id, fmt.Sprintf("p %d→%d at %v, est transition %v", p, pPrime, newSites, bottleneck))
		return true
	}
	c.reject("scale-out", fmt.Sprintf("no feasible placement for any p′ ≤ p_max %d (p′ > p_max or no slots)", c.cfg.PMax),
		obs.Int("p", p), obs.Int("p_max", c.cfg.PMax))
	return false
}

// scaleToPartition converts an over-expensive migration into a scale-out
// that partitions the state across links (§8.7.2): find the smallest
// p′ ≤ p_max whose estimated bottleneck transfer fits within t_max.
func (c *Controller) scaleToPartition(id plan.OpID) bool {
	p := c.eng.Parallelism(id)
	free := c.freeSlotsPlusOwn(id)
	for pPrime := p + 1; pPrime <= c.cfg.PMax; pPrime++ {
		pl, err := c.reassignAt(id, pPrime, free)
		if err != nil {
			continue
		}
		newSites := placementSites(pl)
		migs, bottleneck := c.buildMigrations(id, newSites, c.cfg.Migration)
		if bottleneck > vclock.Time(c.cfg.TMax) && pPrime < c.cfg.PMax {
			continue
		}
		if err := c.reconfigure(id, newSites, migs, nil); err != nil {
			c.reject("scale-out", "engine: "+err.Error())
			return false
		}
		c.record(ActionScaleOut, id, fmt.Sprintf("partitioned state: p %d→%d at %v, est transition %v", p, pPrime, newSites, bottleneck))
		return true
	}
	c.reject("scale-out", fmt.Sprintf("no state-partitioning placement within t_max %v up to p_max %d", c.cfg.TMax, c.cfg.PMax))
	return false
}

// reassignAt solves the both-sided placement program for the stage at an
// explicit parallelism.
func (c *Controller) reassignAt(id plan.OpID, parallelism int, free []int) (*placement.Placement, error) {
	pp := c.eng.Plan()
	// Temporarily treat the stage as having the target parallelism by
	// constructing the problem through ReassignStage on a shallow clone.
	clone := pp.Clone()
	clone.Stages[id].Sites = make([]topology.SiteID, parallelism)
	for i := range clone.Stages[id].Sites {
		// Placeholder sites; ReassignStage only reads the length.
		clone.Stages[id].Sites[i] = pp.Stages[id].Sites[0]
	}
	return physical.ReassignStage(clone, id, c.top, c.scheduleConfig(c.lastRateFactor), free)
}

// maybeScaleDown reclaims over-provisioned resources: one task per round,
// only after two quiet rounds, only when the remaining tasks can absorb
// the stream with headroom (§4.2).
func (c *Controller) maybeScaleDown(now vclock.Time, snap *metrics.Snapshot, expectedIn map[plan.OpID]float64) {
	if c.cfg.Policy != PolicyScale && c.cfg.Policy != PolicyWASP {
		return
	}
	if c.quietRounds < 2 {
		return
	}
	g := c.eng.Plan().Graph
	order, err := g.TopoOrder()
	if err != nil {
		return
	}
	for _, id := range order {
		op := g.Operator(id)
		if op.Kind == plan.KindSource || op.Kind == plan.KindSink {
			continue
		}
		p := c.eng.Parallelism(id)
		if p <= 1 {
			continue
		}
		s := snap.Ops[id]
		capacityMinusOne := c.capacityOf(id, p-1)
		if expectedIn[id] >= c.cfg.ScaleDownUtil*capacityMinusOne {
			continue
		}
		if s.InputQueueLen > c.capacityOf(id, p)*1.0 {
			continue // still draining
		}
		if _, _, held := c.heldDown(id, now); held {
			continue // backing off or cooling down; reclaim next round
		}
		if _, _, gated := c.ctrlGated(id, now); gated {
			continue // no reclaiming on stale or quarantined evidence
		}
		newSites, ok := c.chooseScaleDown(id)
		if !ok {
			continue
		}
		migs, _ := c.buildMigrations(id, newSites, c.cfg.Migration)
		c.beginDecision(id, "over-provisioned",
			obs.F64("lambda_in_hat", expectedIn[id]), obs.Int("p", p))
		if err := c.reconfigure(id, newSites, migs, nil); err != nil {
			c.reject("scale-down", "engine: "+err.Error())
			c.endDecision(false)
			continue
		}
		c.record(ActionScaleDown, id, fmt.Sprintf("p %d→%d at %v", p, p-1, newSites))
		c.endDecision(true)
		return
	}
}

// chooseScaleDown removes the task least co-located with the stage's
// neighbours (§4.2: prioritize scaling down tasks that are not co-located
// with upstream/downstream tasks), verifying the survivors remain within
// the bandwidth bounds.
func (c *Controller) chooseScaleDown(id plan.OpID) ([]topology.SiteID, bool) {
	pp := c.eng.Plan()
	st := pp.Stages[id]
	g := pp.Graph

	neighbour := make(map[topology.SiteID]bool)
	for _, u := range g.Upstream(id) {
		for _, site := range pp.Stages[u].DistinctSites() {
			neighbour[site] = true
		}
	}
	for _, d := range g.Downstream(id) {
		for _, site := range pp.Stages[d].DistinctSites() {
			neighbour[site] = true
		}
	}

	// Candidate removal sites: non-co-located first, then largest groups.
	distinct := st.DistinctSites()
	sort.Slice(distinct, func(i, j int) bool {
		ni, nj := neighbour[distinct[i]], neighbour[distinct[j]]
		if ni != nj {
			return !ni // non-co-located first
		}
		return countSiteTasks(st.Sites, distinct[i]) > countSiteTasks(st.Sites, distinct[j])
	})

	for _, victim := range distinct {
		newSites := removeOneTask(st.Sites, victim)
		if c.survivorsFeasible(id, newSites) {
			return newSites, true
		}
	}
	return nil, false
}

// survivorsFeasible checks that a reduced placement still satisfies the
// per-site bandwidth bounds at the current workload.
func (c *Controller) survivorsFeasible(id plan.OpID, sites []topology.SiteID) bool {
	free := c.freeSlotsPlusOwn(id)
	pl, err := c.reassignAtSites(id, sites, free)
	if err != nil {
		return false
	}
	_ = pl
	return true
}

// reassignAtSites verifies the given explicit placement is within bounds
// by solving at that parallelism and checking per-site capacity.
func (c *Controller) reassignAtSites(id plan.OpID, sites []topology.SiteID, free []int) (*placement.Placement, error) {
	clone := c.eng.Plan().Clone()
	clone.Stages[id].Sites = append([]topology.SiteID(nil), sites...)
	pl, err := physical.ReassignStage(clone, id, c.top, c.scheduleConfig(c.lastRateFactor), free)
	if err != nil {
		return nil, err
	}
	return pl, nil
}

// buildMigrations computes the state transfers implied by moving the
// stage from its current placement to newSites, plus the estimated
// bottleneck transfer time at current link capacities. Each task holds
// |state|/p′ after the move (balanced keyed state, §6.2); the
// removed→added mapping follows the configured strategy (§5, §8.7.1).
func (c *Controller) buildMigrations(id plan.OpID, newSites []topology.SiteID, strategy MigrationStrategy) ([]engine.Migration, vclock.Time) {
	st := c.eng.Plan().Stages[id]
	totalState := st.Op.StateBytes
	if totalState <= 0 || strategy == MigrateNone {
		return nil, 0
	}
	oldSites := st.Sites
	removed, added := placementDiff(oldSites, newSites)
	if len(added) == 0 {
		return nil, 0
	}
	bytesPerTask := totalState / float64(len(newSites))

	var migs []engine.Migration
	switch {
	case len(removed) >= len(added):
		migs = c.mapMigrations(removed, added, bytesPerTask, strategy, true)
	default:
		// Scale-out: moved tasks map one-to-one; extra tasks pull their
		// partition from the best (or worst, per strategy) old site.
		migs = c.mapMigrations(removed, added[:len(removed)], bytesPerTask, strategy, true)
		donors := uniqueSites(oldSites)
		for _, dst := range added[len(removed):] {
			src, ok := c.pickDonor(donors, dst, strategy)
			if !ok {
				continue
			}
			migs = append(migs, engine.Migration{FromSite: src, ToSite: dst, Bytes: bytesPerTask})
		}
	}

	var bottleneck vclock.Time
	for _, m := range migs {
		t := c.net.EstimateTransferTime(m.FromSite, m.ToSite, m.Bytes, c.sched.Now())
		if vclock.Time(t) > bottleneck {
			bottleneck = vclock.Time(t)
		}
	}
	return migs, bottleneck
}

// mapMigrations maps removed task sites to added task sites under the
// strategy. When trim is true and |removed| > |added|, the surplus removed
// tasks merge into the nearest surviving site.
func (c *Controller) mapMigrations(removed, added []topology.SiteID, bytes float64, strategy MigrationStrategy, trim bool) []engine.Migration {
	var migs []engine.Migration
	n := min(len(removed), len(added))
	if n > 0 {
		paired := c.pairSites(removed[:n], added[:n], bytes, strategy)
		migs = append(migs, paired...)
	}
	if trim && len(removed) > len(added) {
		// Scale-down: surplus removed tasks merge into survivors.
		survivors := uniqueSites(c.surviving(removed, added))
		for _, src := range removed[len(added):] {
			dst, ok := c.pickReceiver(survivors, src, strategy)
			if !ok {
				continue
			}
			migs = append(migs, engine.Migration{FromSite: src, ToSite: dst, Bytes: bytes})
		}
	}
	return migs
}

// surviving returns the sites of the stage's new placement (used as merge
// targets during scale-down).
func (c *Controller) surviving(removed, added []topology.SiteID) []topology.SiteID {
	// Receivers are the sites that remain/appear; derive from the
	// current stage placement minus removed plus added. For merge
	// purposes any current site not fully removed qualifies; fall back
	// to added sites.
	if len(added) > 0 {
		return added
	}
	// All current distinct sites are candidates: the engine keeps the
	// non-removed tasks in place.
	var out []topology.SiteID
	for s := 0; s < c.top.N(); s++ {
		out = append(out, topology.SiteID(s))
	}
	return out
}

// pairSites assigns each removed site to one added site per strategy.
func (c *Controller) pairSites(removed, added []topology.SiteID, bytes float64, strategy MigrationStrategy) []engine.Migration {
	now := c.sched.Now()
	cost := make([][]float64, len(removed))
	for i, src := range removed {
		cost[i] = make([]float64, len(added))
		for j, dst := range added {
			cost[i][j] = c.net.EstimateTransferTime(src, dst, bytes, now).Seconds()
		}
	}
	assign := make([]int, len(removed))
	switch strategy {
	case MigrateNetworkAware:
		a, _, err := matching.MinMax(cost)
		if err != nil {
			for i := range assign {
				assign[i] = i
			}
		} else {
			assign = a
		}
	case MigrateDistant:
		// Greedy worst-link bijection.
		used := make([]bool, len(added))
		for i := range removed {
			worst, worstCost := -1, -1.0
			for j := range added {
				if used[j] {
					continue
				}
				if cost[i][j] > worstCost {
					worst, worstCost = j, cost[i][j]
				}
			}
			assign[i] = worst
			used[worst] = true
		}
	default: // MigrateRandom: arbitrary (placement-order) pairing
		for i := range assign {
			assign[i] = i
		}
	}
	migs := make([]engine.Migration, 0, len(removed))
	for i, j := range assign {
		if j < 0 {
			continue
		}
		migs = append(migs, engine.Migration{FromSite: removed[i], ToSite: added[j], Bytes: bytes})
	}
	return migs
}

// pickDonor selects the source site for a new task's state partition.
func (c *Controller) pickDonor(donors []topology.SiteID, dst topology.SiteID, strategy MigrationStrategy) (topology.SiteID, bool) {
	return c.pickByBandwidth(donors, func(s topology.SiteID) float64 {
		return c.bandwidthNow(s, dst)
	}, strategy)
}

// pickReceiver selects the destination for a merged (scaled-down) state
// partition.
func (c *Controller) pickReceiver(receivers []topology.SiteID, src topology.SiteID, strategy MigrationStrategy) (topology.SiteID, bool) {
	return c.pickByBandwidth(receivers, func(s topology.SiteID) float64 {
		return c.bandwidthNow(src, s)
	}, strategy)
}

func (c *Controller) pickByBandwidth(sites []topology.SiteID, bw func(topology.SiteID) float64, strategy MigrationStrategy) (topology.SiteID, bool) {
	if len(sites) == 0 {
		return 0, false
	}
	switch strategy {
	case MigrateNetworkAware:
		best := sites[0]
		for _, s := range sites[1:] {
			if bw(s) > bw(best) {
				best = s
			}
		}
		return best, true
	case MigrateDistant:
		worst := sites[0]
		for _, s := range sites[1:] {
			if bw(s) < bw(worst) {
				worst = s
			}
		}
		return worst, true
	default:
		return sites[0], true
	}
}

// placementSites converts a solved placement into an ascending site list.
func placementSites(pl *placement.Placement) []topology.SiteID {
	var sites []topology.SiteID
	for s, n := range pl.TasksPerSite {
		for i := 0; i < n; i++ {
			sites = append(sites, topology.SiteID(s))
		}
	}
	return sites
}

// placementDiff returns the per-task removed and added site lists between
// two placements (multiset difference).
func placementDiff(oldSites, newSites []topology.SiteID) (removed, added []topology.SiteID) {
	counts := make(map[topology.SiteID]int)
	for _, s := range oldSites {
		counts[s]++
	}
	for _, s := range newSites {
		counts[s]--
	}
	for _, s := range detutil.SortedKeys(counts) {
		for i := 0; i < counts[s]; i++ {
			removed = append(removed, s)
		}
		for i := 0; i < -counts[s]; i++ {
			added = append(added, s)
		}
	}
	return removed, added
}

func sameSites(a, b []topology.SiteID) bool {
	r, ad := placementDiff(a, b)
	return len(r) == 0 && len(ad) == 0
}

func uniqueSites(sites []topology.SiteID) []topology.SiteID {
	seen := make(map[topology.SiteID]bool)
	var out []topology.SiteID
	for _, s := range sites {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sortSites(out)
	return out
}

func sortSites(sites []topology.SiteID) {
	slices.Sort(sites)
}

func countSiteTasks(sites []topology.SiteID, s topology.SiteID) int {
	n := 0
	for _, x := range sites {
		if x == s {
			n++
		}
	}
	return n
}

func removeOneTask(sites []topology.SiteID, victim topology.SiteID) []topology.SiteID {
	out := make([]topology.SiteID, 0, len(sites)-1)
	removed := false
	for _, s := range sites {
		if !removed && s == victim {
			removed = true
			continue
		}
		out = append(out, s)
	}
	return out
}
