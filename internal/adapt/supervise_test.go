package adapt

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// eventWith returns the events with the given name whose key attribute
// stringifies to want.
func eventWith(o *obs.Observer, name, key, want string) []obs.Event {
	var out []obs.Event
	for _, ev := range o.Events(name) {
		if ev.Get(key).Str() == want {
			out = append(out, ev)
		}
	}
	return out
}

func TestDoomedReconfigurationAbortsAndStageResumes(t *testing.T) {
	// The acceptance scenario: a migration's destination site crashes
	// mid-transfer. Supervision must abort the doomed reconfiguration,
	// resume the stage on its old placement, and leave no orphan transfer
	// and no suspended stage behind.
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 1000, 1, 60e6)
	tb.run(t, 50*time.Second)

	// Move the stateful map 1→2: 60 MB over 20 MB/s ≈ 3 s mid-flight.
	if err := tb.ctl.reconfigure(tb.ids[1], sites(2),
		[]engine.Migration{{FromSite: 1, ToSite: 2, Bytes: 60e6}}, nil); err != nil {
		t.Fatal(err)
	}
	tb.run(t, 51*time.Second) // mid-transfer
	if !tb.eng.Reconfiguring(tb.ids[1]) {
		t.Fatal("setup: migration already finished")
	}
	tb.eng.CrashSite(2)
	tb.ctl.OnSiteCrash(2)
	if got := tb.net.ActiveTransfers(); got != 0 {
		t.Fatalf("ActiveTransfers = %d after destination crash, want 0", got)
	}

	// The next monitoring round's supervision pass aborts the doomed
	// reconfiguration; the first abort retries immediately.
	tb.run(t, 100*time.Second)
	if tb.eng.Reconfiguring(tb.ids[1]) {
		t.Fatal("doomed reconfiguration never aborted")
	}
	aborts := eventWith(tb.ctl.Observer(), "adapt.abort", "verdict", "doomed")
	if len(aborts) == 0 {
		t.Fatalf("no doomed abort recorded; aborts = %v", tb.ctl.Observer().Events("adapt.abort"))
	}
	if reason := aborts[0].Get("reason").Str(); reason == "" {
		t.Fatal("abort recorded without a reason")
	}
	if len(tb.ctl.Observer().Events("adapt.retry")) == 0 {
		t.Fatal("first abort did not schedule a retry")
	}
	if got := tb.eng.SuspendedOps(); len(got) != 0 {
		t.Fatalf("SuspendedOps = %v after abort, want none", got)
	}
	if got := tb.eng.Plan().Stages[tb.ids[1]].Sites[0]; got != 1 {
		t.Fatalf("map at site %v after abort, want the old placement 1", got)
	}

	// The stage keeps processing on the restored placement.
	_, d1, _ := tb.eng.Totals()
	tb.run(t, 200*time.Second)
	_, d2, _ := tb.eng.Totals()
	if d2 <= d1 {
		t.Fatal("stage did not resume after the abort")
	}
}

func TestStalledReplanAborts(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP, StallAfter: 50 * time.Second}, 1000, 1, 0)
	tb.run(t, 20*time.Second)

	// Black out the map→sink link, then immediately start a drain that can
	// never finish: the in-flight backlog has no path out. (Starting the
	// re-plan before the first monitoring round matters — diagnosis pauses
	// during a re-plan, but an earlier round would re-assign the map off
	// the dead link and let the drain complete.)
	tb.net.SetLinkFault(1, 3, 0)
	carry := map[plan.OpID]plan.OpID{tb.ids[0]: tb.ids[0], tb.ids[2]: tb.ids[2]}
	if err := tb.eng.BeginReplan(tb.eng.Plan().Clone(), carry, nil); err != nil {
		t.Fatal(err)
	}
	tb.run(t, 200*time.Second)
	if tb.eng.Replanning() {
		t.Fatal("stalled re-plan never aborted")
	}
	aborts := eventWith(tb.ctl.Observer(), "adapt.abort", "what", "re-plan")
	if len(aborts) != 1 {
		t.Fatalf("re-plan aborts = %d, want 1", len(aborts))
	}
	if got := tb.eng.SuspendedOps(); len(got) != 0 {
		t.Fatalf("SuspendedOps = %v after re-plan abort, want none", got)
	}
}

func TestRetryBackoffEscalatesToRollback(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 1000, 1, 0)
	mp := tb.ids[1]
	o := tb.ctl.Observer()
	now := vclock.Time(100 * time.Second)

	// Defaults: RetryBudget 3, RetryBackoff 20 s. First abort retries
	// immediately, later ones back off exponentially, the fourth rolls back.
	tb.ctl.noteAborted(mp, "doomed", "test", now)
	if _, _, held := tb.ctl.heldDown(mp, now); held {
		t.Fatal("first abort must retry immediately")
	}
	tb.ctl.noteAborted(mp, "doomed", "test", now)
	branch, reason, held := tb.ctl.heldDown(mp, now)
	if !held || branch != "retry-backoff" {
		t.Fatalf("second abort heldDown = (%q, %q, %v), want retry-backoff", branch, reason, held)
	}
	if _, _, held := tb.ctl.heldDown(mp, now+vclock.Time(19*time.Second)); !held {
		t.Fatal("backoff cleared before the base period")
	}
	if _, _, held := tb.ctl.heldDown(mp, now+vclock.Time(20*time.Second)); held {
		t.Fatal("second abort backed off longer than RetryBackoff")
	}
	tb.ctl.noteAborted(mp, "stalled", "test", now)
	if _, _, held := tb.ctl.heldDown(mp, now+vclock.Time(39*time.Second)); !held {
		t.Fatal("third abort did not double the backoff")
	}
	if len(o.Events("adapt.rollback")) != 0 {
		t.Fatal("rollback before the budget was exhausted")
	}
	tb.ctl.noteAborted(mp, "doomed", "test", now) // 4th: budget 3 exhausted
	rbs := o.Events("adapt.rollback")
	if len(rbs) != 1 {
		t.Fatalf("rollbacks = %d, want 1", len(rbs))
	}
	if got := rbs[0].Get("hold_off").Duration(); got != 80*time.Second {
		t.Fatalf("rollback hold-off = %v, want 80s (one more doubling)", got)
	}

	// A completed action clears the ledger.
	tb.ctl.noteCompleted(mp, sites(1), now)
	if rs, _ := tb.ctl.retryHeld(mp, now+1); rs {
		t.Fatal("completed action did not clear the retry ledger")
	}
}

func TestCooldownHoldsAfterCompletedAction(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 1000, 1, 0)
	mp := tb.ids[1]
	done := vclock.Time(200 * time.Second)
	tb.ctl.noteCompleted(mp, sites(1), done)

	// Default ActionCooldown 10 s.
	branch, _, held := tb.ctl.heldDown(mp, done+vclock.Time(5*time.Second))
	if !held || branch != "cooldown" {
		t.Fatalf("heldDown inside cooldown = (%q, %v), want cooldown", branch, held)
	}
	if _, _, held := tb.ctl.heldDown(mp, done+vclock.Time(10*time.Second)); held {
		t.Fatal("cooldown persisted past its expiry")
	}
	// Other operators are unaffected.
	if _, _, held := tb.ctl.heldDown(tb.ids[0], done+1); held {
		t.Fatal("cooldown leaked to another operator")
	}
}

func TestReversalGuardRefusesFreshUndo(t *testing.T) {
	tb := newTestbed(t, engine.Config{}, Config{Policy: PolicyWASP}, 1000, 1, 0)
	mp := tb.ids[1]
	tb.ctl.roundCount = 10
	tb.ctl.noteCompleted(mp, sites(1), vclock.Time(100*time.Second)) // moved 1→current

	// Undoing back to the pre-action placement is the flap signature.
	if !tb.ctl.reversalGuarded(mp, sites(1)) {
		t.Fatal("fresh reversal not guarded")
	}
	// A different target is not a reversal.
	if tb.ctl.reversalGuarded(mp, sites(2)) {
		t.Fatal("non-reversal guarded")
	}
	// The guard ages out after ReversalGuardRounds (default 3) rounds.
	tb.ctl.roundCount += tb.ctl.cfg.ReversalGuardRounds
	if tb.ctl.reversalGuarded(mp, sites(1)) {
		t.Fatal("reversal guard never aged out")
	}
	// Operators with no completed action are never guarded.
	if tb.ctl.reversalGuarded(tb.ids[0], sites(1)) {
		t.Fatal("guard applied without a prior action")
	}
}

// ladderEvents asserts exactly one recovery.degraded event with the wanted
// rung and returns the run's reject reasons for the extra per-rung checks.
func ladderEvents(t *testing.T, o *obs.Observer, rung string) []string {
	t.Helper()
	degs := o.Events("recovery.degraded")
	matched := 0
	for _, ev := range degs {
		if ev.Get("rung").Str() == rung {
			matched++
			if ev.Get("reason").Str() == "" {
				t.Errorf("rung %q degraded without a reason", rung)
			}
		}
	}
	if matched == 0 {
		t.Fatalf("no recovery.degraded event with rung %q; got %v", rung, degs)
	}
	var reasons []string
	for _, ev := range o.Events("reject") {
		reasons = append(reasons, ev.Get("reason").Str())
	}
	return reasons
}

func TestLadderRungPinned(t *testing.T) {
	// The pinned sink's site dies: the ladder must stop at the "pinned"
	// rung — only a site restart heals a pinned stage.
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	crashAt(tb, 100*time.Second, 3)
	tb.run(t, 200*time.Second)
	reasons := ladderEvents(t, tb.ctl.Observer(), "pinned")
	found := false
	for _, r := range reasons {
		if strings.Contains(r, "pinned to the failed site") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no pinned reject reason; rejects = %v", reasons)
	}
	if got := tb.eng.Plan().Stages[tb.ids[2]].Sites; len(got) != 1 || got[0] != 3 {
		t.Fatalf("pinned sink moved to %v", got)
	}
}

func TestLadderRungUpstreamDown(t *testing.T) {
	// Both the source's and the aggregate's sites die. The source is
	// pinned; the aggregate could be re-placed, but its entire upstream is
	// dead — re-placing it buys nothing, so it waits at "upstream-down".
	tb, _ := recoveryBed(t, 8, 30*time.Second)
	tb.sched.At(vclock.Time(100*time.Second), func(vclock.Time) {
		tb.eng.CrashSite(0)
		tb.eng.CrashSite(1)
		tb.ctl.OnSiteCrash(0)
		tb.ctl.OnSiteCrash(1)
	})
	tb.run(t, 200*time.Second)
	reasons := ladderEvents(t, tb.ctl.Observer(), "upstream-down")
	found := false
	for _, r := range reasons {
		if strings.Contains(r, "all upstream tasks on failed sites") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no upstream-down reject reason; rejects = %v", reasons)
	}
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("recovered a stage with no live upstream; actions = %v", kinds(tb.ctl.Actions()))
	}
}

func TestLadderRungNoPlacement(t *testing.T) {
	// One slot per site, all occupied, and the only idle site dies with the
	// aggregate's: nothing survives and nothing can be placed.
	tb, _ := recoveryBed(t, 1, 30*time.Second)
	tb.sched.At(vclock.Time(100*time.Second), func(vclock.Time) {
		tb.eng.CrashSite(2)
		tb.eng.CrashSite(1)
		tb.ctl.OnSiteCrash(2)
		tb.ctl.OnSiteCrash(1)
	})
	tb.run(t, 200*time.Second)
	reasons := ladderEvents(t, tb.ctl.Observer(), "no-placement")
	found := false
	for _, r := range reasons {
		if strings.Contains(r, "no surviving tasks and no feasible placement") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no no-placement reject reason; rejects = %v", reasons)
	}
	if hasKind(tb.ctl.Actions(), ActionRecover) {
		t.Fatalf("recovered with zero free slots; actions = %v", kinds(tb.ctl.Actions()))
	}
}
