// Package adapt implements WASP's adaptation framework — the paper's core
// contribution. A Controller periodically gathers runtime metrics from the
// flow-mode engine (the Global Metric Monitor), diagnoses unhealthy or
// wasteful executions, and applies the appropriate adaptation action
// following the §6.2 decision policy (Figure 6):
//
//   - compute-bound operators scale UP (preferring slots at their current
//     sites) with p′ = ⌈λ̂I/λP·p⌉;
//   - network-bound stateless executions re-plan the whole pipeline;
//   - network-bound stateful executions first try task re-assignment
//     (the Eq. 1–5 program over both upstream and downstream
//     deployments); if no placement exists or the estimated migration
//     overhead exceeds t_max, they scale OUT across sites (partitioning
//     state); if p′ would exceed p_max, or the operator cannot be split,
//     they re-plan;
//   - over-provisioned operators scale DOWN one task per round;
//   - state migrations are network-aware: the (S−S′)→(S′−S) mapping
//     minimizes the slowest transfer (§5).
package adapt

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Policy selects which adaptation repertoire the controller may use — the
// comparison arms of §8.4–8.6.
type Policy int

// Policies.
const (
	// PolicyNone never adapts (the "No Adapt" baseline).
	PolicyNone Policy = iota + 1
	// PolicyDegrade never re-optimizes; the engine drops late events
	// (configure engine.Config.DropLate).
	PolicyDegrade
	// PolicyReassign only re-assigns tasks at fixed parallelism.
	PolicyReassign
	// PolicyScale re-assigns first and scales when re-assignment finds
	// no placement (the §8.5 "Scale" arm).
	PolicyScale
	// PolicyReplan only re-evaluates the logical+physical plan at fixed
	// parallelism.
	PolicyReplan
	// PolicyWASP is the full Figure 6 decision policy.
	PolicyWASP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "no-adapt"
	case PolicyDegrade:
		return "degrade"
	case PolicyReassign:
		return "re-assign"
	case PolicyScale:
		return "scale"
	case PolicyReplan:
		return "re-plan"
	case PolicyWASP:
		return "wasp"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// MigrationStrategy selects how migrating tasks are mapped to destination
// sites (the §8.7.1 comparison).
type MigrationStrategy int

// Migration strategies.
const (
	// MigrateNetworkAware solves the minmax bottleneck assignment (§5).
	MigrateNetworkAware MigrationStrategy = iota + 1
	// MigrateRandom assigns destinations in arbitrary (placement) order,
	// ignoring bandwidth.
	MigrateRandom
	// MigrateDistant deliberately picks the slowest links (worst case).
	MigrateDistant
	// MigrateNone skips state transfer entirely (accuracy loss; the "No
	// Migrate" baseline).
	MigrateNone
)

// ActionKind labels a performed adaptation.
type ActionKind int

// Action kinds.
const (
	ActionReassign ActionKind = iota + 1
	ActionScaleUp
	ActionScaleOut
	ActionScaleDown
	ActionReplan
	ActionRecover
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActionReassign:
		return "re-assign"
	case ActionScaleUp:
		return "scale-up"
	case ActionScaleOut:
		return "scale-out"
	case ActionScaleDown:
		return "scale-down"
	case ActionReplan:
		return "re-plan"
	case ActionRecover:
		return "recover"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one adaptation the controller performed.
type Action struct {
	At     vclock.Time
	Kind   ActionKind
	Op     plan.OpID
	Detail string
}

// ReplanSpec gives the controller what it needs to re-plan a query: the
// (logically optimized) base graph, the re-orderable combine group, and
// the currently deployed variant.
type ReplanSpec struct {
	Base    *plan.Graph
	Spec    *plan.CombineSpec
	Current *plan.Variant
	// MaxVariants caps the combine-order search space the re-plan
	// session enumerates (physical.NewSession); 0 means
	// physical.DefaultMaxVariants. Planet-scale runs bound it so a
	// re-plan round stays cheap next to the placement work it feeds.
	MaxVariants int
}

// Config parameterises the controller. Zero fields take the paper's
// defaults (§8.2).
type Config struct {
	Policy Policy
	// Alpha is the bandwidth utilization threshold (default 0.8).
	Alpha float64
	// MonitorInterval is the adaptation period (default 40 s).
	MonitorInterval time.Duration
	// Tolerance is the relative slack for health checks (default 0.05).
	Tolerance float64
	// PMax caps per-operator parallelism (default 3).
	PMax int
	// TMax is the migration-overhead threshold t_max: re-assignments
	// whose estimated transition exceeds it scale out and partition
	// state instead (default 30 s).
	TMax time.Duration
	// SlotRate mirrors the engine's per-slot capacity for sizing
	// decisions (default 25000).
	SlotRate float64
	// ScaleDownUtil triggers scale-down when expected input would still
	// fit in (p−1) tasks at this utilization (default 0.5).
	ScaleDownUtil float64
	// QueueAlarmSec treats an operator as compute-bound when its input
	// backlog exceeds this many seconds of processing (default 8 s).
	QueueAlarmSec float64
	// DrainTargetSec sizes post-backlog scale-ups so queues drain within
	// this horizon (default 60 s).
	DrainTargetSec float64
	// Migration selects the state-migration mapping strategy (default
	// network-aware).
	Migration MigrationStrategy
	// ForcePartition, with TMax, enables the §8.7.2 "Partitioned" mode:
	// re-assignments exceeding TMax are converted into scale-outs that
	// partition the state. The full WASP policy always does this;
	// ForcePartition extends it to PolicyReassign for ablations.
	ForcePartition bool
	// LongTermReplanEvery, when > 0, periodically re-evaluates the query
	// plan in the background even while the execution is healthy — the
	// §6.2 treatment of long-term, predictable dynamics (e.g. the daily
	// workload shift). Zero disables it.
	LongTermReplanEvery time.Duration
	// StallAfter is the no-progress deadline for in-flight adaptations: a
	// reconfiguration whose transfers moved no bytes — or a re-plan whose
	// drain shrank no backlog — for this long is aborted and retried
	// (default 90 s).
	StallAfter time.Duration
	// RetryBudget caps abort→retry cycles per operator. Once exhausted the
	// controller rolls back: the stage keeps its old placement and the
	// operator is left alone for an extended backoff (default 3).
	RetryBudget int
	// RetryBackoff is the base delay before re-attempting an action after
	// an abort, doubling with each failed attempt (default 20 s). The
	// first abort retries immediately — backoff starts at the second.
	RetryBackoff time.Duration
	// ActionCooldown is the anti-flap hold-down: after an action on an
	// operator completes, no further adaptation touches it until the
	// cooldown passes (default 10 s).
	ActionCooldown time.Duration
	// ReversalGuardRounds refuses a re-assignment that would restore an
	// operator's previous placement while the current one is younger than
	// this many monitoring rounds — oscillating conditions otherwise flap
	// state back and forth over the WAN (default 3).
	ReversalGuardRounds int
	// HierarchicalSites is passed through to the physical scheduler: the
	// topology size at which the controller's placement programs switch
	// to the hierarchical two-level planner. 0 selects
	// placement.DefaultHierarchicalThreshold; negative forces the exact
	// solver at every size.
	HierarchicalSites int
}

func (c Config) withDefaults() Config {
	if c.Policy == 0 {
		c.Policy = PolicyWASP
	}
	if c.Alpha == 0 {
		c.Alpha = 0.8
	}
	if c.MonitorInterval == 0 {
		c.MonitorInterval = 40 * time.Second
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.05
	}
	if c.PMax == 0 {
		c.PMax = 3
	}
	if c.TMax == 0 {
		c.TMax = 30 * time.Second
	}
	if c.SlotRate == 0 {
		c.SlotRate = 25000
	}
	if c.ScaleDownUtil == 0 {
		c.ScaleDownUtil = 0.5
	}
	if c.QueueAlarmSec == 0 {
		c.QueueAlarmSec = 8
	}
	if c.DrainTargetSec == 0 {
		c.DrainTargetSec = 60
	}
	if c.Migration == 0 {
		c.Migration = MigrateNetworkAware
	}
	if c.StallAfter == 0 {
		c.StallAfter = 90 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 20 * time.Second
	}
	if c.ActionCooldown == 0 {
		c.ActionCooldown = 10 * time.Second
	}
	if c.ReversalGuardRounds == 0 {
		c.ReversalGuardRounds = 3
	}
	return c
}

// Controller is WASP's Reconfiguration Manager + Global Metric Monitor.
type Controller struct {
	cfg    Config
	eng    *engine.Engine
	top    *topology.Topology
	net    *netsim.Network
	sched  *vclock.Scheduler
	replan *ReplanSpec

	// ws holds the controller's placement scratch (plus the hierarchical
	// planner's region cache) reused across every monitoring round.
	ws physical.Workspace

	// planSession caches the re-plan search space (variant graphs and plan
	// skeletons) across rounds; built lazily on the first tryReplan.
	planSession *physical.Session

	ticker         *vclock.Event
	longTerm       *vclock.Event
	actions        []Action
	lastActionAt   vclock.Time
	quietRounds    int
	lastRateFactor float64

	recovery  *RecoveryManager
	crashedAt map[topology.SiteID]vclock.Time
	degraded  map[plan.OpID]bool

	// Fault-tolerant adaptation state (supervise.go): monitoring rounds
	// seen, per-operator anti-flap bookkeeping stamped when an action
	// completes (cooldown expiry, the placement it replaced and the round
	// it landed), and the per-operator retry ledger for aborted actions.
	roundCount int
	cooldown   map[plan.OpID]vclock.Time
	prevSites  map[plan.OpID][]topology.SiteID
	placedAt   map[plan.OpID]int
	retries    map[plan.OpID]*retryState

	// Adaptation-latency phase windows (latency.go): when each operator's
	// current unhealthy streak began (detect phase start), and when a
	// completed action started waiting for its first healthy diagnosis
	// (resume phase start).
	detectAt    map[plan.OpID]vclock.Time
	awaitResume map[plan.OpID]vclock.Time

	// plane, when non-nil, routes telemetry and commands over the
	// simulated WAN control plane (ctrl.go). Nil keeps the ideal model.
	plane *ctrlplane.Plane

	obs      *obs.Observer
	decision *obs.Span
}

// NewController wires a controller to a deployed engine. replan may be nil
// for queries without a re-orderable combine group (re-planning then falls
// back to re-assignment).
func NewController(cfg Config, eng *engine.Engine, top *topology.Topology, net *netsim.Network, sched *vclock.Scheduler, replan *ReplanSpec) *Controller {
	c := &Controller{
		cfg:    cfg.withDefaults(),
		eng:    eng,
		top:    top,
		net:    net,
		sched:  sched,
		replan: replan,
	}
	c.SetObserver(obs.New(sched.Now))
	return c
}

// Start begins periodic monitoring (and, if configured, the long-term
// background re-planning loop).
func (c *Controller) Start() {
	if c.ticker != nil {
		return
	}
	c.ticker = c.sched.Every(c.cfg.MonitorInterval, c.Round)
	if c.cfg.LongTermReplanEvery > 0 {
		c.longTerm = c.sched.Every(c.cfg.LongTermReplanEvery, c.LongTermRound)
	}
}

// Stop halts monitoring.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Cancel()
		c.ticker = nil
	}
	if c.longTerm != nil {
		c.longTerm.Cancel()
		c.longTerm = nil
	}
}

// LongTermRound re-evaluates the query plan against the current workload
// and bandwidth in the background, independent of health diagnosis (§6.2:
// long-term dynamics follow predictable patterns and are handled by
// periodic re-planning rather than reactive adaptation). A switch only
// happens when a strictly better schedulable variant exists.
func (c *Controller) LongTermRound(now vclock.Time) {
	if c.cfg.Policy != PolicyWASP && c.cfg.Policy != PolicyReplan {
		return
	}
	sp := c.obs.StartSpan("controller.longterm", obs.String("policy", c.cfg.Policy.String()))
	defer sp.Finish()
	if c.eng.Replanning() || c.eng.Failed() {
		sp.Event("skip", obs.String("reason", c.settleReason()))
		return
	}
	g := c.eng.Plan().Graph
	for _, id := range g.OperatorIDs() {
		if c.eng.Reconfiguring(id) {
			sp.Event("skip", obs.String("reason", "reconfiguration in flight"), obs.Int("op", int(id)))
			return
		}
		if c.commandInFlight(id) {
			sp.Event("skip", obs.String("reason", "command in flight"), obs.Int("op", int(id)))
			return
		}
	}
	c.tryReplan(g.OperatorIDs()[0], "long-term background re-evaluation")
}

// settleReason names why a round defers to in-flight work.
func (c *Controller) settleReason() string {
	if c.eng.Failed() {
		return "failure outage in progress"
	}
	return "plan switch in progress"
}

// Actions returns the adaptations performed so far.
func (c *Controller) Actions() []Action {
	out := make([]Action, len(c.actions))
	copy(out, c.actions)
	return out
}

func (c *Controller) record(kind ActionKind, op plan.OpID, detail string) {
	now := c.sched.Now()
	c.actions = append(c.actions, Action{At: now, Kind: kind, Op: op, Detail: detail})
	c.lastActionAt = now
	c.quietRounds = 0
	c.obs.Emit("action", obs.String("kind", kind.String()), obs.I64("op", int64(op)), obs.String("detail", detail))
	c.obs.Registry().Counter("wasp_controller_actions_total", "kind", kind.String()).Inc()
	c.notePhasesForAction(kind, op, now)
}

// Round runs one monitoring + adaptation round (normally driven by the
// internal ticker; exported for tests and manual stepping).
func (c *Controller) Round(now vclock.Time) {
	snap := c.sampleSnapshot(now)
	if c.cfg.Policy == PolicyNone || c.cfg.Policy == PolicyDegrade {
		return
	}
	c.roundCount++
	round := c.obs.StartSpan("controller.round", obs.String("policy", c.cfg.Policy.String()))
	c.obs.Registry().Counter("wasp_controller_rounds_total").Inc()
	// Supervise in-flight adaptations first: a doomed or stalled
	// reconfiguration must be aborted before recovery or diagnosis can
	// touch its stage (both skip reconfiguring operators).
	c.superviseInFlight(now)
	// Failure recovery next: dead tasks outrank slow ones. This is also
	// the backstop detector — degraded stages retry here every round.
	c.RecoverDownSites()
	wall := c.obs.Wall()
	var wallStart time.Duration
	if wall != nil {
		wallStart = wall()
	}
	defer func() {
		if wall != nil {
			c.obs.Registry().Histogram("wasp_controller_round_seconds", roundLatencyBuckets).
				Observe((wall() - wallStart).Seconds())
		}
		round.Finish()
	}()
	// Let in-flight adaptations and failure outages settle first.
	if c.eng.Replanning() || c.eng.Failed() {
		round.Event("skip", obs.String("reason", c.settleReason()))
		return
	}
	g := c.eng.Plan().Graph
	for _, id := range g.OperatorIDs() {
		if c.eng.Reconfiguring(id) {
			round.Event("skip", obs.String("reason", "reconfiguration in flight"), obs.Int("op", int(id)))
			return
		}
		if c.commandInFlight(id) {
			round.Event("skip", obs.String("reason", "command in flight"), obs.Int("op", int(id)))
			return
		}
	}

	expectedIn, _, err := metrics.EstimateActual(g, snap)
	if err != nil {
		round.Event("skip", obs.String("reason", "workload estimate failed: "+err.Error()))
		return
	}
	c.lastRateFactor = c.measuredRateFactor(snap)
	round.SetAttrs(obs.F64("rate_factor", c.lastRateFactor))

	if c.adaptBottleneck(now, snap, expectedIn) {
		return
	}
	c.quietRounds++
	c.maybeScaleDown(now, snap, expectedIn)
}

// adaptBottleneck finds the first unhealthy operator in topological order
// and applies the policy's action. It reports whether an action was taken.
func (c *Controller) adaptBottleneck(now vclock.Time, snap *metrics.Snapshot, expectedIn map[plan.OpID]float64) bool {
	g := c.eng.Plan().Graph
	order, err := g.TopoOrder()
	if err != nil {
		return false
	}
	for _, id := range order {
		op := g.Operator(id)
		if op.Kind == plan.KindSource || op.Kind == plan.KindSink {
			continue
		}
		cond := c.diagnose(id, snap, expectedIn)
		c.emitDiagnosis(id, cond, snap.Ops[id], expectedIn[id])
		if cond == metrics.Healthy {
			c.noteHealthy(id, now)
			continue
		}
		c.noteDetect(id, now)
		if branch, reason, held := c.heldDown(id, now); held {
			c.reject(branch, reason, obs.Int("op", int(id)))
			continue
		}
		if branch, reason, gated := c.ctrlGated(id, now); gated {
			c.rejectGated(id, branch, reason)
			continue
		}
		return c.act(now, id, cond, snap, expectedIn)
	}
	return false
}

// diagnose classifies an operator's condition using the actual-workload
// estimate (§3.3) and queue locations: a large input backlog means the
// operator itself cannot keep up (compute); depressed arrivals with small
// input queues mean the links upstream are the constraint (network). An
// operator whose *send* queues are backed up is not itself the bottleneck
// — the constrained link manifests at its downstream consumer, which this
// round flags as network-constrained instead.
func (c *Controller) diagnose(id plan.OpID, snap *metrics.Snapshot, expectedIn map[plan.OpID]float64) metrics.Condition {
	s := snap.Ops[id]
	capacity := c.capacityOf(id, s.Tasks)
	sendHeavy := s.SendQueueLen > 2*maxFloat(s.OutputRate, 1)
	if !sendHeavy && s.InputQueueLen > capacity*c.cfg.QueueAlarmSec {
		return metrics.ComputeConstrained
	}
	want := expectedIn[id]
	if s.ProcessingRate >= want*(1-c.cfg.Tolerance) {
		return metrics.Healthy
	}
	if sendHeavy {
		// Throttled by a constrained outbound link: the downstream
		// operator carries the network-constrained diagnosis.
		return metrics.Healthy
	}
	if s.InputQueueLen > capacity*1.0 { // >1 s of backlog and falling behind
		return metrics.ComputeConstrained
	}
	return metrics.NetworkConstrained
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// capacityOf returns an operator's aggregate processing capacity in
// events/s at the given parallelism.
func (c *Controller) capacityOf(id plan.OpID, tasks int) float64 {
	op := c.eng.Plan().Graph.Operator(id)
	cost := op.CostPerEvent
	if cost <= 0 {
		cost = 1
	}
	return float64(tasks) * c.cfg.SlotRate / cost
}

// act opens the decision span for one bottleneck operator and dispatches
// the policy decision (Fig 6). Everything the policy does — actions taken,
// branches rejected, the migrations and plan switches started — nests
// under this span in the audit trail.
func (c *Controller) act(now vclock.Time, id plan.OpID, cond metrics.Condition, snap *metrics.Snapshot, expectedIn map[plan.OpID]float64) bool {
	op := c.eng.Plan().Graph.Operator(id)
	c.beginDecision(id, cond.String(),
		obs.Bool("stateful", op.Stateful),
		obs.Bool("splittable", op.Splittable),
		obs.F64("lambda_in_hat", expectedIn[id]))
	taken := c.dispatch(now, id, cond, op, snap, expectedIn)
	c.endDecision(taken)
	return taken
}

// dispatch runs the policy's decision tree for one bottleneck operator.
func (c *Controller) dispatch(now vclock.Time, id plan.OpID, cond metrics.Condition, op *plan.Operator, snap *metrics.Snapshot, expectedIn map[plan.OpID]float64) bool {
	switch c.cfg.Policy {
	case PolicyReassign:
		// Re-assignment only, still subject to the §6.2 overhead check:
		// a placement whose state migration would exceed t_max is not an
		// acceptable solution. With ForcePartition (the §8.7.2
		// "Partitioned" mode) an over-budget migration converts into a
		// scale-out that partitions the state; otherwise this arm simply
		// does not adapt — the paper's t=600 behaviour.
		feasible, overhead := c.previewReassign(id)
		if !feasible {
			c.reject("re-assign", "no placement found at current parallelism")
			return false
		}
		if overhead > vclock.Time(c.cfg.TMax) {
			if c.cfg.ForcePartition {
				return c.scaleToPartition(id)
			}
			c.rejectOverhead(overhead)
			return false
		}
		return c.tryReassign(id)
	case PolicyReplan:
		return c.tryReplan(id, "bottleneck "+cond.String())
	case PolicyScale:
		// §8.5's Scale arm: re-assign first, but fall back to operator
		// scaling when no placement exists at the current parallelism or
		// the migration overhead exceeds t_max (§6.2).
		if cond == metrics.ComputeConstrained {
			return c.scaleForCompute(id, snap, expectedIn)
		}
		feasible, overhead := c.previewReassign(id)
		if feasible && overhead <= vclock.Time(c.cfg.TMax) {
			if c.tryReassign(id) {
				return true
			}
		}
		if c.scaleForNetwork(id, expectedIn) {
			return true
		}
		return c.tryReassign(id)
	case PolicyWASP:
		// Figure 6.
		if cond == metrics.ComputeConstrained {
			return c.scaleForCompute(id, snap, expectedIn)
		}
		// Network-constrained.
		if !op.Stateful {
			if c.tryReplan(id, "network-bound stateless pipeline") {
				return true
			}
			// No alternative plan: fall through to physical adaptation.
		}
		if !op.Splittable {
			c.reject("scale-out", "operator cannot be split")
			return c.tryReplan(id, "operator cannot be split")
		}
		feasible, overhead := c.previewReassign(id)
		if feasible && overhead <= vclock.Time(c.cfg.TMax) {
			return c.tryReassign(id)
		}
		if feasible && overhead > vclock.Time(c.cfg.TMax) {
			// Migration too expensive: scale out to partition state; if
			// the parallelism cap blocks that, re-plan (Fig 6). Executing
			// the over-budget migration is never an option — suspending
			// the stage longer than t_max costs more than it fixes.
			c.rejectOverhead(overhead)
			if c.scaleForNetwork(id, expectedIn) {
				return true
			}
			return c.tryReplan(id, "migration over t_max and p at p_max")
		}
		// No placement at the current parallelism: scale out, and
		// re-plan if even that fails (p′ > p_max or no slots).
		c.reject("re-assign", "no placement found at current parallelism")
		if c.scaleForNetwork(id, expectedIn) {
			return true
		}
		return c.tryReplan(id, "scale-out infeasible")
	default:
		return false
	}
}

// rejectOverhead records the §6.2 t_max rejection of a re-assignment.
func (c *Controller) rejectOverhead(overhead vclock.Time) {
	c.reject("re-assign",
		fmt.Sprintf("migration overhead %v > t_max %v", time.Duration(overhead), c.cfg.TMax),
		obs.Dur("overhead", time.Duration(overhead)),
		obs.Dur("t_max", c.cfg.TMax))
}
