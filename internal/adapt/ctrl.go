package adapt

import (
	"fmt"

	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Control-plane integration: with no plane attached (every pre-existing
// entry point) the controller keeps its ideal model — instantaneous
// global snapshots and same-tick actuation — and behaves byte-identically
// to before the control plane existed. With a plane attached, telemetry
// arrives merged/late/partial, actions travel as epoch-fenced commands,
// and diagnosis refuses to act on evidence it cannot trust: stale inputs
// and quarantined regions become reject branches instead of actions.

// AttachControlPlane switches the controller from the ideal
// instantaneous telemetry/actuation model to the impaired one. Must be
// called before Start; the plane's report ticker is managed by the
// caller (experiment runner), not the controller.
func (c *Controller) AttachControlPlane(p *ctrlplane.Plane) { c.plane = p }

// ControlPlane returns the attached plane (nil in ideal mode).
func (c *Controller) ControlPlane() *ctrlplane.Plane { return c.plane }

// sampleSnapshot produces the round's monitoring snapshot. Ideal mode
// samples the engine directly (resetting the per-group counters exactly
// as before); impaired mode re-evaluates quarantine and merges whatever
// site reports survived the WAN.
func (c *Controller) sampleSnapshot(now vclock.Time) *metrics.Snapshot {
	if c.plane == nil {
		return c.eng.Sample()
	}
	c.plane.UpdateQuarantine(now)
	return c.plane.Snapshot(now)
}

// commandInFlight reports whether an actuation command for the operator
// is still traveling the control plane (sent, not yet acked or aborted).
func (c *Controller) commandInFlight(id plan.OpID) bool {
	return c.plane != nil && c.plane.CommandInFlight(id)
}

// superviseCommands re-sends overdue commands and folds the ones the
// plane gave up on into the controller's abort/retry ledger — the same
// ledger engine-side aborts use, so backoff and rollback semantics are
// shared.
func (c *Controller) superviseCommands(now vclock.Time) {
	if c.plane == nil {
		return
	}
	for _, ab := range c.plane.Supervise(now) {
		reason := "command lost in the control plane before reaching its target"
		if ab.Applied {
			reason = "command applied but its ack never returned"
		}
		c.noteAborted(ab.Op, "command-timeout", reason, now)
	}
}

// ctrlGated reports whether control-plane visibility forbids acting on
// the operator this round: its region is quarantined, or the evidence
// about any of its sites is older than the staleness bound. Both are
// recorded as obs reject branches so the decision trail shows *why* the
// controller sat on its hands.
func (c *Controller) ctrlGated(id plan.OpID, now vclock.Time) (branch, reason string, gated bool) {
	if c.plane == nil {
		return "", "", false
	}
	sites := uniqueSites(c.eng.Plan().Stages[id].Sites)
	if r, q := c.plane.QuarantinedRegionOf(sites); q {
		return "quarantine",
			fmt.Sprintf("region %d quarantined: no adaptation on its operators until re-admission", r), true
	}
	bound := c.plane.Config().MaxStaleness
	if age := c.plane.StalestOf(sites, now); age > bound {
		return "stale-telemetry",
			fmt.Sprintf("stalest site evidence is %v old, over the %v staleness bound", age, bound), true
	}
	return "", "", false
}

// freeSlots is the placement view of free capacity: the engine's count
// with every site the control plane cannot vouch for (quarantined region
// or evidence past the staleness bound) masked to zero — a site you have
// not heard from is not a migration target.
func (c *Controller) freeSlots() []int {
	free := c.eng.FreeSlots()
	if c.plane != nil {
		c.plane.MaskUnreachable(free, c.sched.Now())
	}
	return free
}

// rejectGated records a ctrlGated verdict against the current decision.
func (c *Controller) rejectGated(id plan.OpID, branch, reason string) {
	c.reject(branch, reason, obs.Int("op", int(id)))
}
