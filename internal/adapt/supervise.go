package adapt

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Fault-tolerant adaptation runtime: reconfigurations are fallible
// operations, not fire-and-forget. Every round the controller surveys the
// in-flight ones, aborts those that are doomed (an endpoint site crashed,
// the carrying link blacked out) or stalled (no transfer progress for
// StallAfter), and retries with exponential backoff under a per-operator
// budget. An exhausted budget rolls back: the stage keeps the placement
// the abort restored, and the operator is left alone for an extended
// backoff. Completed actions stamp an anti-flap cooldown and a reversal
// guard so oscillating conditions cannot thrash state over the WAN.

// retryState is the per-operator ledger of aborted adaptation attempts.
type retryState struct {
	attempts  int         // aborts since the last completed action
	nextTryAt vclock.Time // no adaptation on this operator before this
}

// superviseInFlight aborts doomed and stalled in-flight adaptations and
// advances their retry ledgers. Runs at the top of every Round, before
// recovery and diagnosis (both of which skip reconfiguring operators and
// would otherwise wait on a transfer that can never finish).
func (c *Controller) superviseInFlight(now vclock.Time) {
	// Command-channel supervision first: a command the plane just gave up
	// on frees its operator for this round's recovery or diagnosis pass.
	c.superviseCommands(now)
	stall := vclock.Time(c.cfg.StallAfter)
	for _, st := range c.eng.ReconfigStatuses(stall) {
		if !st.Doomed && !st.Stalled {
			continue
		}
		verdict := "doomed"
		if st.Stalled {
			verdict = "stalled"
		}
		if err := c.eng.AbortReconfigure(st.Op); err != nil {
			continue // finalized between the survey and the abort
		}
		c.noteAborted(st.Op, verdict, st.Reason, now)
	}
	if c.eng.Replanning() && c.eng.ReplanStalled(stall) {
		if err := c.eng.AbortReplan(); err == nil {
			c.obs.Emit("adapt.abort",
				obs.String("what", "re-plan"),
				obs.String("verdict", "stalled"),
				obs.String("reason", fmt.Sprintf("drain made no progress for %v", c.cfg.StallAfter)))
			c.obs.Registry().Counter("wasp_adapt_aborts_total", "what", "re-plan").Inc()
		}
	}
}

// noteAborted records one aborted reconfiguration against the operator's
// retry budget. The first abort retries immediately (the next recovery or
// diagnosis pass may act at once — typically re-targeting around the
// failure); later ones wait RetryBackoff·2^(attempt−2). Past the budget
// the controller rolls back for an extended backoff of one more doubling.
func (c *Controller) noteAborted(id plan.OpID, verdict, reason string, now vclock.Time) {
	if c.retries == nil {
		c.retries = make(map[plan.OpID]*retryState)
	}
	rs := c.retries[id]
	if rs == nil {
		rs = &retryState{}
		c.retries[id] = rs
	}
	rs.attempts++
	c.obs.Emit("adapt.abort",
		obs.String("what", "reconfiguration"),
		obs.Int("op", int(id)),
		obs.String("verdict", verdict),
		obs.String("reason", reason),
		obs.Int("attempt", rs.attempts))
	c.obs.Registry().Counter("wasp_adapt_aborts_total", "what", "reconfiguration").Inc()
	if rs.attempts > c.cfg.RetryBudget {
		rs.nextTryAt = now + c.backoffAfter(rs.attempts)
		c.obs.Emit("adapt.rollback",
			obs.Int("op", int(id)),
			obs.Int("attempts", rs.attempts),
			obs.Dur("hold_off", time.Duration(rs.nextTryAt-now)))
		c.obs.Registry().Counter("wasp_adapt_rollbacks_total").Inc()
		return
	}
	if rs.attempts > 1 {
		rs.nextTryAt = now + c.backoffAfter(rs.attempts)
	}
	c.obs.Emit("adapt.retry",
		obs.Int("op", int(id)),
		obs.Int("attempt", rs.attempts),
		obs.Dur("next_try_in", time.Duration(rs.nextTryAt-now)))
}

// backoffAfter returns the exponential retry delay following the given
// attempt count: RetryBackoff·2^(attempts−2), so the second abort waits
// one base period and each further abort doubles it.
func (c *Controller) backoffAfter(attempts int) vclock.Time {
	d := vclock.Time(c.cfg.RetryBackoff)
	for i := 2; i < attempts; i++ {
		d *= 2
	}
	return d
}

// heldDown reports whether hysteresis forbids adapting the operator now:
// either its retry ledger is backing off after aborts, or a recently
// completed action's cooldown has not passed. Crash recovery is exempt
// from the cooldown (dead tasks outrank anti-flap) but still honours the
// retry backoff via retryHeld.
func (c *Controller) heldDown(id plan.OpID, now vclock.Time) (branch, reason string, held bool) {
	if rs, until := c.retryHeld(id, now); rs {
		return "retry-backoff", fmt.Sprintf("backing off until %v after aborted attempts", time.Duration(until)), true
	}
	if until, ok := c.cooldown[id]; ok && now < until {
		return "cooldown", fmt.Sprintf("action cooldown until %v", time.Duration(until)), true
	}
	return "", "", false
}

// retryHeld reports whether the operator's retry ledger is in backoff.
func (c *Controller) retryHeld(id plan.OpID, now vclock.Time) (bool, vclock.Time) {
	if rs := c.retries[id]; rs != nil && now < rs.nextTryAt {
		return true, rs.nextTryAt
	}
	return false, 0
}

// reconfigure routes every controller-initiated placement change through
// the engine while stamping the hysteresis bookkeeping at completion:
// the cooldown expiry, the placement the action replaced (for the
// reversal guard), the round it landed, and a cleared retry ledger.
func (c *Controller) reconfigure(id plan.OpID, newSites []topology.SiteID, migs []engine.Migration, onDone func(now vclock.Time)) error {
	oldSites := append([]topology.SiteID(nil), c.eng.Plan().Stages[id].Sites...)
	wrapped := func(doneAt vclock.Time) {
		c.noteCompleted(id, oldSites, doneAt)
		if onDone != nil {
			onDone(doneAt)
		}
	}
	if c.plane == nil {
		return c.eng.Reconfigure(id, newSites, migs, wrapped)
	}
	// Impaired mode: the actuation is a command that must reach the new
	// placement's coordination site before the engine acts. SendCommand
	// returning nil only means "launched" — application happens at
	// delivery (if ever), and the ack timeout path feeds noteAborted.
	return c.plane.SendCommand(id, "reconfigure", uniqueSites(newSites), func() error {
		return c.eng.Reconfigure(id, newSites, migs, wrapped)
	})
}

// noteCompleted stamps the anti-flap state for one finished action.
func (c *Controller) noteCompleted(id plan.OpID, oldSites []topology.SiteID, doneAt vclock.Time) {
	if c.cooldown == nil {
		c.cooldown = make(map[plan.OpID]vclock.Time)
		c.prevSites = make(map[plan.OpID][]topology.SiteID)
		c.placedAt = make(map[plan.OpID]int)
	}
	c.cooldown[id] = doneAt + vclock.Time(c.cfg.ActionCooldown)
	c.prevSites[id] = oldSites
	c.placedAt[id] = c.roundCount
	delete(c.retries, id)
	// Open the resume-phase window: it closes at the first monitoring round
	// that diagnoses the operator healthy again (latency.go).
	if c.awaitResume == nil {
		c.awaitResume = make(map[plan.OpID]vclock.Time)
	}
	c.awaitResume[id] = doneAt
}

// reversalGuarded reports whether moving the operator to newSites would
// undo its most recent completed action while the resulting placement is
// younger than ReversalGuardRounds monitoring rounds — the flap signature
// (A→B under pressure, B→A the moment pressure lifts, repeat).
func (c *Controller) reversalGuarded(id plan.OpID, newSites []topology.SiteID) bool {
	prev, ok := c.prevSites[id]
	if !ok || !sameSites(newSites, prev) {
		return false
	}
	return c.roundCount-c.placedAt[id] < c.cfg.ReversalGuardRounds
}
