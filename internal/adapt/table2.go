package adapt

// TechniqueProfile is one row of the paper's Table 2: the qualitative
// comparison between adaptation techniques.
type TechniqueProfile struct {
	Technique        string
	Adaptation       string
	Applicability    string
	Granularity      string
	Overhead         string
	QualityReduction string
}

// Table2 returns the qualitative comparison between adaptation techniques
// for streaming analytics queries, exactly as the paper's Table 2 states
// it. The overhead column excludes cross-site state migration; query
// re-planning reduces quality only if state is incompatible with (or
// ignored by) the new plan.
func Table2() []TechniqueProfile {
	return []TechniqueProfile{
		{
			Technique:        "Task Re-Assignment",
			Adaptation:       "Task deployment",
			Applicability:    "General",
			Granularity:      "Stage",
			Overhead:         "Low",
			QualityReduction: "No",
		},
		{
			Technique:        "Operator Scaling",
			Adaptation:       "Operator parallelism",
			Applicability:    "General",
			Granularity:      "Stage",
			Overhead:         "Low",
			QualityReduction: "No",
		},
		{
			Technique:        "Query Re-Planning",
			Adaptation:       "Query execution plan",
			Applicability:    "Query-specific",
			Granularity:      "Query",
			Overhead:         "High",
			QualityReduction: "No*",
		},
		{
			Technique:        "Data Degradation",
			Adaptation:       "Degradation policy",
			Applicability:    "Query-specific",
			Granularity:      "Policy-dependent",
			Overhead:         "Low",
			QualityReduction: "Yes",
		},
	}
}
