package adapt

import (
	"testing"

	"github.com/wasp-stream/wasp/internal/topology"
)

func sites(ids ...int) []topology.SiteID {
	out := make([]topology.SiteID, len(ids))
	for i, id := range ids {
		out[i] = topology.SiteID(id)
	}
	return out
}

func TestPlacementDiff(t *testing.T) {
	tests := []struct {
		name             string
		oldS, newS       []topology.SiteID
		wantRem, wantAdd []topology.SiteID
	}{
		{
			name: "paper example S to S'",
			oldS: sites(1, 2, 3, 4), newS: sites(3, 4, 5, 6),
			wantRem: sites(1, 2), wantAdd: sites(5, 6),
		},
		{
			name: "identical",
			oldS: sites(1, 2), newS: sites(2, 1),
			wantRem: nil, wantAdd: nil,
		},
		{
			name: "scale out",
			oldS: sites(1), newS: sites(1, 2, 2),
			wantRem: nil, wantAdd: sites(2, 2),
		},
		{
			name: "scale down",
			oldS: sites(1, 2, 2), newS: sites(1, 2),
			wantRem: sites(2), wantAdd: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rem, add := placementDiff(tt.oldS, tt.newS)
			if !equalSites(rem, tt.wantRem) || !equalSites(add, tt.wantAdd) {
				t.Fatalf("placementDiff = (%v, %v), want (%v, %v)", rem, add, tt.wantRem, tt.wantAdd)
			}
		})
	}
}

func equalSites(a, b []topology.SiteID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSameSites(t *testing.T) {
	if !sameSites(sites(1, 2, 2), sites(2, 1, 2)) {
		t.Fatal("permuted placements not equal")
	}
	if sameSites(sites(1, 2), sites(1, 2, 2)) {
		t.Fatal("different multiplicities judged equal")
	}
}

func TestUniqueSites(t *testing.T) {
	got := uniqueSites(sites(3, 1, 3, 2, 1))
	if !equalSites(got, sites(1, 2, 3)) {
		t.Fatalf("uniqueSites = %v", got)
	}
}

func TestRemoveOneTask(t *testing.T) {
	got := removeOneTask(sites(1, 2, 2, 3), 2)
	if !equalSites(got, sites(1, 2, 3)) {
		t.Fatalf("removeOneTask = %v", got)
	}
}

func TestPolicyAndActionStrings(t *testing.T) {
	if PolicyWASP.String() != "wasp" || PolicyNone.String() != "no-adapt" ||
		PolicyDegrade.String() != "degrade" || PolicyReassign.String() != "re-assign" ||
		PolicyScale.String() != "scale" || PolicyReplan.String() != "re-plan" {
		t.Fatal("Policy.String mismatch")
	}
	if ActionReassign.String() != "re-assign" || ActionScaleUp.String() != "scale-up" ||
		ActionScaleOut.String() != "scale-out" || ActionScaleDown.String() != "scale-down" ||
		ActionReplan.String() != "re-plan" {
		t.Fatal("ActionKind.String mismatch")
	}
	if got := Policy(42).String(); got != "Policy(42)" {
		t.Fatalf("unknown Policy String = %q", got)
	}
	if got := ActionKind(42).String(); got != "ActionKind(42)" {
		t.Fatalf("unknown ActionKind String = %q", got)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("Table2 rows = %d, want 4", len(rows))
	}
	if rows[0].Technique != "Task Re-Assignment" || rows[0].QualityReduction != "No" {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[2].Overhead != "High" || rows[2].Granularity != "Query" {
		t.Fatalf("re-planning row = %+v", rows[2])
	}
	if rows[3].QualityReduction != "Yes" {
		t.Fatalf("degradation row = %+v", rows[3])
	}
}
