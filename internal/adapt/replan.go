package adapt

import (
	"fmt"
	"slices"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// tryReplan re-evaluates the logical + physical plan jointly (§4.3). For
// executions with stateful combine operators, only variants containing
// common sub-plans over the stateful operators are admissible; the state
// (and queued backlog) of surviving operators carries over. It reports
// whether a plan switch was initiated.
func (c *Controller) tryReplan(id plan.OpID, reason string) bool {
	if c.replan == nil || c.replan.Spec == nil || c.replan.Current == nil {
		c.reject("re-plan", "no re-plan spec (no re-orderable combine group)")
		return false
	}
	statefulTemplate := c.replan.Spec.Template.Stateful
	// Tumbling-window combine state can switch plans at window
	// boundaries (§4.3); the engine's drain-then-switch realizes the
	// boundary, so windowed stateful templates do not restrict
	// admissibility.
	requireAdmissible := statefulTemplate && c.replan.Spec.Template.Window == 0

	if c.planSession == nil {
		s, err := physical.NewSession(c.replan.Base, c.replan.Spec, c.replan.MaxVariants)
		if err != nil {
			c.reject("re-plan", "planner: "+err.Error())
			return false
		}
		c.planSession = s
	}
	var admit func(v *plan.Variant) bool
	if requireAdmissible {
		cur := c.replan.Current
		admit = func(v *plan.Variant) bool { return v.AdmissibleFrom(cur) }
	}
	cfg := physical.PlannerConfig{ScheduleConfig: c.scheduleConfig(c.lastRateFactor)}
	best, _, err := c.planSession.Plan(c.top, cfg, admit)
	if err != nil {
		c.reject("re-plan", "planner: "+err.Error())
		return false
	}
	if sameTree(best.Variant, c.replan.Current) {
		c.reject("re-plan", "already running the best plan")
		return false
	}

	carry := c.carryMap(c.replan.Current, best.Variant)
	newVariant := best.Variant
	// The session owns best.Plan and will re-Schedule it next round; the
	// engine needs a stable copy to deploy and mutate.
	if err := c.eng.BeginReplan(best.Plan.Clone(), carry, func(doneAt vclock.Time) {
		c.replan.Current = newVariant
		// Stamp the anti-flap cooldown on the operator that triggered the
		// switch so the next round does not immediately re-adapt it.
		c.noteCompleted(id, nil, doneAt)
	}); err != nil {
		c.reject("re-plan", "engine: "+err.Error())
		return false
	}
	c.record(ActionReplan, id, fmt.Sprintf("%s: switch to %v", reason, best.Variant.Tree))
	return true
}

// carryMap maps old operator IDs to new ones for every operator whose
// backlog and state must survive a plan switch: all base-graph operators
// (identical IDs in every variant, since Expand clones the base) and the
// combine nodes whose LeafSets appear in both variants.
func (c *Controller) carryMap(cur, next *plan.Variant) map[plan.OpID]plan.OpID {
	carry := make(map[plan.OpID]plan.OpID)
	// Base operators: same IDs across variants.
	curCombine := make(map[plan.OpID]bool, len(cur.CombineNodes))
	for opID := range cur.CombineNodes {
		curCombine[opID] = true
	}
	for _, opID := range cur.Graph.OperatorIDs() {
		if curCombine[opID] {
			continue
		}
		if next.Graph.Operator(opID) != nil {
			carry[opID] = opID
		}
	}
	// Combine nodes: match by LeafSet.
	bySet := make(map[plan.LeafSet]plan.OpID, len(next.CombineNodes))
	for opID, set := range next.CombineNodes {
		bySet[set] = opID
	}
	for opID, set := range cur.CombineNodes {
		if newID, ok := bySet[set]; ok {
			carry[opID] = newID
		}
	}
	return carry
}

// sameTree reports whether two variants have identical combine structure
// (the set of internal LeafSets determines an unordered tree uniquely).
func sameTree(a, b *plan.Variant) bool {
	if len(a.CombineNodes) != len(b.CombineNodes) {
		return false
	}
	as := leafSets(a)
	bs := leafSets(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func leafSets(v *plan.Variant) []plan.LeafSet {
	out := make([]plan.LeafSet, 0, len(v.CombineNodes))
	for _, id := range detutil.SortedKeys(v.CombineNodes) {
		out = append(out, v.CombineNodes[id])
	}
	slices.Sort(out)
	return out
}
