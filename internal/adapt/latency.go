package adapt

import (
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Adaptation-latency phase instrumentation. Every controller action is
// decomposed into the paper's detect→plan→halt→transfer→resume cycle and
// each phase's virtual-clock duration lands in the per-phase
// wasp_adapt_latency_seconds histogram plus an adapt.latency timeline
// event (the same series the engine feeds halt/transfer into from
// finalizeReconfig/progressReplan):
//
//   - detect: first unhealthy diagnosis of the operator (or the crash
//     instant, for recovery) → the action being recorded. Monitoring is
//     periodic, so this is dominated by the MonitorInterval phase of the
//     §6.2 loop.
//   - plan: always 0 by construction — the controller's decision runs
//     between engine ticks, so planning is instantaneous on the virtual
//     clock. Emitted anyway so the phase series exists and post-mortem
//     tooling shows the full cycle honestly rather than omitting it.
//   - halt/transfer: emitted by the engine at reconfiguration/re-plan
//     completion (see engine.finalizeReconfig).
//   - resume: action completion → the first monitoring round that
//     diagnoses the operator healthy again.

// emitPhase records one phase duration for an operator's adaptation.
func (c *Controller) emitPhase(phase, kind string, op plan.OpID, d vclock.Time) {
	if d < 0 {
		d = 0
	}
	c.obs.Emit("adapt.latency",
		obs.String("phase", phase),
		obs.String("kind", kind),
		obs.Int("op", int(op)),
		obs.Dur("dur", time.Duration(d)))
	c.obs.Registry().Histogram("wasp_adapt_latency_seconds", engine.AdaptLatencyBuckets, "phase", phase).
		Observe(d.Seconds())
}

// noteDetect stamps the start of an operator's detect phase, keeping the
// earliest stamp across consecutive unhealthy rounds (and letting
// recovery back-date it to the crash instant).
func (c *Controller) noteDetect(id plan.OpID, at vclock.Time) {
	if c.detectAt == nil {
		c.detectAt = make(map[plan.OpID]vclock.Time)
	}
	if prev, ok := c.detectAt[id]; !ok || at < prev {
		c.detectAt[id] = at
	}
}

// noteHealthy resolves an operator's open phase windows on a healthy
// diagnosis: a pending resume window closes (the operator is confirmed
// back at speed), and any stale detect stamp clears — the condition
// passed without an action, so no cycle to attribute it to.
func (c *Controller) noteHealthy(id plan.OpID, now vclock.Time) {
	if doneAt, ok := c.awaitResume[id]; ok {
		c.emitPhase("resume", "reconfigure", id, now-doneAt)
		delete(c.awaitResume, id)
	}
	delete(c.detectAt, id)
}

// notePhasesForAction emits the detect and plan phases for an action
// being recorded: detect spans the first unhealthy diagnosis (or crash)
// to now; plan is instantaneous on the virtual clock.
func (c *Controller) notePhasesForAction(kind ActionKind, op plan.OpID, now vclock.Time) {
	if t, ok := c.detectAt[op]; ok {
		c.emitPhase("detect", kind.String(), op, now-t)
		delete(c.detectAt, op)
	}
	c.emitPhase("plan", kind.String(), op, 0)
}
