package adapt

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/state"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// RecoveryManager runs WASP's checkpoint side of failure handling (§5,
// §8.6): it periodically snapshots every stateful task group through the
// engine into a state.Store, replicating each snapshot to one independent
// site so the loss of the task's own site never loses the checkpoint too.
// The controller consumes the store during recovery via LatestExcluding.
type RecoveryManager struct {
	job      string
	interval time.Duration
	eng      *engine.Engine
	top      *topology.Topology
	sched    *vclock.Scheduler
	store    *state.Store
	coord    *state.Coordinator
	obs      *obs.Observer

	ticker     *vclock.Event
	registered map[string]state.Target
}

// NewRecoveryManager wires checkpointing for one deployed engine. store may
// be nil (a fresh in-memory store is created). interval is the checkpoint
// period — the bound on state loss after a site crash.
func NewRecoveryManager(job string, interval time.Duration, eng *engine.Engine, top *topology.Topology, sched *vclock.Scheduler, store *state.Store) *RecoveryManager {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if store == nil {
		store = state.NewStore()
	}
	rm := &RecoveryManager{
		job:        job,
		interval:   interval,
		eng:        eng,
		top:        top,
		sched:      sched,
		store:      store,
		registered: make(map[string]state.Target),
	}
	rm.coord = state.NewManualCoordinator(store, rm.onCheckpointError)
	return rm
}

// SetObserver routes checkpoint/recovery events to a shared observer.
func (rm *RecoveryManager) SetObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	rm.obs = o
	r := o.Registry()
	r.Describe("wasp_checkpoints_total", "Checkpoint rounds completed.")
	r.Describe("wasp_recoveries_total", "Site-failure recoveries completed.")
}

// Store exposes the checkpoint store (for inspection and tests).
func (rm *RecoveryManager) Store() *state.Store { return rm.store }

// Interval returns the checkpoint period.
func (rm *RecoveryManager) Interval() time.Duration { return rm.interval }

// Start begins periodic checkpoint rounds on the virtual clock.
func (rm *RecoveryManager) Start() {
	if rm.ticker != nil {
		return
	}
	rm.ticker = rm.sched.Every(rm.interval, func(now vclock.Time) { rm.CheckpointRound(now) })
}

// Stop halts checkpointing.
func (rm *RecoveryManager) Stop() {
	if rm.ticker != nil {
		rm.ticker.Cancel()
		rm.ticker = nil
	}
}

// CheckpointRound re-registers targets against the current placement (tasks
// move between rounds) and snapshots them all.
func (rm *RecoveryManager) CheckpointRound(now vclock.Time) {
	rm.refreshTargets()
	rm.coord.Checkpoint()
	if rm.obs != nil {
		rm.obs.Emit("checkpoint.round",
			obs.I64("epoch", rm.coord.Epoch()),
			obs.Int("targets", rm.coord.Targets()))
		rm.obs.Registry().Counter("wasp_checkpoints_total").Inc()
	}
}

func (rm *RecoveryManager) onCheckpointError(err error) {
	if rm.obs != nil {
		rm.obs.Emit("checkpoint.error", obs.String("error", err.Error()))
	}
}

// opName keys checkpoints by logical operator; OpIDs are stable for the
// lifetime of a deployed graph.
func opName(id plan.OpID) string { return fmt.Sprintf("op%d", int(id)) }

// stateful reports whether an operator carries recoverable state worth
// checkpointing (window accumulators).
func stateful(op *plan.Operator) bool {
	return op.Stateful || op.Window > 0
}

// refreshTargets syncs the coordinator's target set with the engine's
// current task groups: one target per (stateful op, live site), task keyed
// by site so per-group snapshots stay addressable after moves.
func (rm *RecoveryManager) refreshTargets() {
	desired := make(map[string]state.Target)
	pp := rm.eng.Plan()
	order, err := pp.Graph.TopoOrder()
	if err != nil {
		return
	}
	for _, id := range order {
		op := pp.Graph.Operator(id)
		if !stateful(op) {
			continue
		}
		id := id
		for _, site := range pp.Stages[id].DistinctSites() {
			if rm.eng.SiteDown(site) {
				continue
			}
			site := site
			t := state.Target{
				Job:      rm.job,
				Operator: opName(id),
				Task:     int(site),
				Site:     site,
				Replicas: []topology.SiteID{rm.replicaFor(site)},
				Snapshot: func() ([]byte, error) { return rm.eng.SnapshotGroup(id, site) },
			}
			desired[fmt.Sprintf("%s/%d", t.Operator, t.Task)] = t
		}
	}
	for _, key := range detutil.SortedKeys(rm.registered) {
		if _, ok := desired[key]; !ok {
			t := rm.registered[key]
			rm.coord.Unregister(t.Job, t.Operator, t.Task)
			delete(rm.registered, key)
		}
	}
	for _, key := range detutil.SortedKeys(desired) {
		rm.coord.Register(desired[key])
		rm.registered[key] = desired[key]
	}
}

// replicaFor picks the deterministic replica site for a primary: the
// lowest-ID data-center site that is not the primary, falling back to the
// lowest-ID other site (single-DC topologies).
func (rm *RecoveryManager) replicaFor(primary topology.SiteID) topology.SiteID {
	for _, s := range rm.top.SitesOfKind(topology.DataCenter) {
		if s != primary {
			return s
		}
	}
	for i := 0; i < rm.top.N(); i++ {
		if topology.SiteID(i) != primary {
			return topology.SiteID(i)
		}
	}
	return primary
}

// Latest finds the freshest checkpoint for one task group that is NOT
// stored on any excluded (down) site.
func (rm *RecoveryManager) Latest(id plan.OpID, task int, excluded []topology.SiteID) (state.Ref, []byte, bool) {
	return rm.store.LatestExcluding(rm.job, opName(id), task, excluded...)
}

// AttachRecovery gives the controller a checkpoint source for site-failure
// recovery. The controller then implements faults.Recoverer: on a detected
// site crash it re-places dead tasks excluding down sites, restores their
// state from the freshest surviving checkpoint, and degrades only when no
// placement exists. The manager adopts the controller's observer.
func (c *Controller) AttachRecovery(rm *RecoveryManager) {
	c.recovery = rm
	if rm != nil {
		rm.SetObserver(c.obs)
	}
}

// OnSiteCrash implements faults.Recoverer: immediate failure detection.
// The engine has already torn the site down; this starts recovery.
func (c *Controller) OnSiteCrash(site topology.SiteID) {
	now := c.sched.Now()
	if c.crashedAt == nil {
		c.crashedAt = make(map[topology.SiteID]vclock.Time)
	}
	c.crashedAt[site] = now
	c.obs.Emit("recovery.detected", obs.Int("site", int(site)))
	c.RecoverDownSites()
}

// RecoverDownSites walks every stage with tasks on a down site and runs the
// recovery ladder for it. Also called from Round as a backstop, so stages
// that found no placement at crash time (degraded) retry once slots free
// up, and crashes detected without an injector wire-up still recover.
func (c *Controller) RecoverDownSites() {
	down := c.eng.DownSites()
	if len(down) == 0 {
		c.degraded = nil
		return
	}
	if c.cfg.Policy == PolicyNone || c.cfg.Policy == PolicyDegrade {
		return // these arms never re-place; the engine drops/stalls
	}
	downSet := make(map[topology.SiteID]bool, len(down))
	for _, s := range down {
		downSet[s] = true
	}
	pp := c.eng.Plan()
	order, err := pp.Graph.TopoOrder()
	if err != nil {
		return
	}
	for _, id := range order {
		hit := 0
		for _, s := range pp.Stages[id].Sites {
			if downSet[s] {
				hit++
			}
		}
		if hit == 0 {
			delete(c.degraded, id)
			continue
		}
		if c.eng.Reconfiguring(id) {
			continue // recovery (or another adaptation) already in flight
		}
		if c.commandInFlight(id) {
			continue // an actuation command is still traveling the control plane
		}
		if held, until := c.retryHeld(id, c.sched.Now()); held {
			// Aborted recovery attempts back off exponentially; the Round
			// backstop re-enters here once the ledger clears. Cooldown does
			// not apply — dead tasks outrank anti-flap.
			c.reject("retry-backoff",
				fmt.Sprintf("recovery backing off until %v after aborted attempts", time.Duration(until)),
				obs.Int("op", int(id)))
			continue
		}
		c.recoverStage(id, hit, down, downSet)
	}
}

// recoverStage runs the Figure-6-shaped recovery ladder for one stage with
// dead tasks: re-place the lost tasks on live sites (full replacement
// first, then fewer), shrink to the survivors if no placement exists, and
// degrade only when nothing survives and nothing can be placed. Restored
// state comes from the freshest checkpoint not stored on a down site, and
// its transfer to the new site is paid through the network simulator.
func (c *Controller) recoverStage(id plan.OpID, lost int, down []topology.SiteID, downSet map[topology.SiteID]bool) bool {
	pp := c.eng.Plan()
	st := pp.Stages[id]
	op := pp.Graph.Operator(id)

	var survivors, deadSites []topology.SiteID
	for _, s := range st.Sites {
		if downSet[s] {
			deadSites = append(deadSites, s)
		} else {
			survivors = append(survivors, s)
		}
	}

	c.beginDecision(id, "site-failure",
		obs.Int("lost_tasks", lost),
		obs.String("down_sites", fmt.Sprint(down)),
		obs.Int("survivors", len(survivors)))

	if op.PinnedSite != plan.NoSite || op.Kind == plan.KindSource || op.Kind == plan.KindSink {
		c.degradeStage(id, "pinned", "pinned to the failed site; only a site restart heals it")
		c.endDecision(false)
		return false
	}

	// A stage whose entire upstream sits on down sites has no input to
	// process; re-placing it cannot help (ingest stages typically cannot
	// leave their source's site anyway). It heals when the site restarts.
	if ups := pp.Graph.Upstream(id); len(ups) > 0 {
		allDead := true
		for _, u := range ups {
			for _, s := range pp.Stages[u].Sites {
				if !downSet[s] {
					allDead = false
				}
			}
		}
		if allDead {
			c.degradeStage(id, "upstream-down", "all upstream tasks on failed sites; no input until restart")
			c.endDecision(false)
			return false
		}
	}

	// A crash inside a quarantined region cannot be recovered yet: the
	// controller can neither command the survivors there nor trust its
	// picture of the region. Defer — the Round backstop re-enters this
	// ladder every round and proceeds once the region is re-admitted.
	if c.plane != nil {
		if r, q := c.plane.QuarantinedRegionOf(uniqueSites(st.Sites)); q {
			c.degradeStage(id, "quarantine-deferred",
				fmt.Sprintf("region %d quarantined; recovery deferred until re-admission", r))
			c.endDecision(false)
			return false
		}
	}

	// Rung 1: replace the lost tasks on live sites — all of them if slots
	// allow, otherwise as many as fit. FreeSlots already reports zero for
	// down sites, so the placement program cannot pick them.
	if c.lastRateFactor == 0 {
		c.lastRateFactor = 1 // crash before the first monitoring round
	}
	var newSites []topology.SiteID
	placed := 0
	for k := lost; k >= 1; k-- {
		pl, err := c.solveAdditional(id, k, len(survivors)+k, c.freeSlots())
		if err != nil {
			c.reject("re-assign", fmt.Sprintf("no placement for %d replacement tasks: %v", k, err))
			continue
		}
		newSites = append(append([]topology.SiteID(nil), survivors...), placementSites(pl)...)
		placed = k
		break
	}
	// Rung 2: no replacement placeable — run on the survivors alone.
	if placed == 0 {
		if len(survivors) == 0 {
			// Rung 3: nothing survives and nothing can be placed. Degrade
			// until a site returns or slots free up (retried every Round).
			c.degradeStage(id, "no-placement", "no surviving tasks and no feasible placement")
			c.endDecision(false)
			return false
		}
		c.reject("scale-out", "no slots for replacement tasks; shrinking to survivors")
		newSites = append([]topology.SiteID(nil), survivors...)
	}
	sortSites(newSites)

	// State: freshest checkpoint per dead group, never from a down site.
	// The restore bytes cross the WAN as a tracked transfer, so recovery
	// time includes the state-transfer cost.
	var migs []engine.Migration
	var blobs [][]byte
	var restoreFrom []state.Ref
	if c.recovery != nil && stateful(op) {
		perTask := st.Op.StateBytes / float64(max(len(newSites), 1))
		for _, ds := range uniqueSites(deadSites) {
			ref, data, ok := c.recovery.Latest(id, int(ds), down)
			if !ok {
				c.obs.Emit("recovery.no_checkpoint",
					obs.Int("op", int(id)), obs.Int("dead_site", int(ds)))
				continue
			}
			blobs = append(blobs, data)
			restoreFrom = append(restoreFrom, ref)
			dst, ok := c.pickReceiver(uniqueSites(newSites), ref.Site, c.cfg.Migration)
			if !ok {
				continue
			}
			bytes := perTask
			if bytes <= 0 {
				bytes = float64(len(data))
			}
			migs = append(migs, engine.Migration{FromSite: ref.Site, ToSite: dst, Bytes: bytes})
		}
	}

	crashAt := c.sched.Now()
	for _, ds := range uniqueSites(deadSites) {
		if at, ok := c.crashedAt[ds]; ok && at < crashAt {
			crashAt = at
		}
	}
	// For recovery the detect phase starts at the crash, not at the first
	// unhealthy diagnosis — failure detection is part of recovery latency.
	c.noteDetect(id, crashAt)
	onDone := func(doneAt vclock.Time) {
		restored := 0.0
		for _, b := range blobs {
			if err := c.eng.RestoreOperatorState(id, b); err != nil {
				c.obs.Emit("recovery.restore_error",
					obs.Int("op", int(id)), obs.String("error", err.Error()))
				continue
			}
			restored++
		}
		c.obs.Emit("recovery.complete",
			obs.Int("op", int(id)),
			obs.Int("tasks_replaced", placed),
			obs.Int("checkpoints_restored", int(restored)),
			obs.Dur("recovery_time", time.Duration(doneAt-crashAt)))
		c.obs.Registry().Counter("wasp_recoveries_total").Inc()
	}
	if err := c.reconfigure(id, newSites, migs, onDone); err != nil {
		c.reject("re-assign", "engine: "+err.Error())
		c.endDecision(false)
		return false
	}
	delete(c.degraded, id)
	detail := fmt.Sprintf("lost %d task(s) at %v; new placement %v, %d checkpoint(s) from %v",
		lost, uniqueSites(deadSites), newSites, len(blobs), refSites(restoreFrom))
	c.record(ActionRecover, id, detail)
	c.endDecision(true)
	return true
}

// degradeStage records (once per outage) that a stage runs degraded: its
// dead tasks stay dead until the ladder finds a placement or the site
// restarts. rung classifies why: "pinned" (task cannot move),
// "upstream-down" (nothing to process), or "no-placement" (genuinely no
// feasible placement for live work).
func (c *Controller) degradeStage(id plan.OpID, rung, reason string) {
	c.reject("re-assign", reason)
	if c.degraded[id] {
		return
	}
	if c.degraded == nil {
		c.degraded = make(map[plan.OpID]bool)
	}
	c.degraded[id] = true
	c.obs.Emit("recovery.degraded",
		obs.Int("op", int(id)), obs.String("rung", rung), obs.String("reason", reason))
}

func refSites(refs []state.Ref) []topology.SiteID {
	out := make([]topology.SiteID, 0, len(refs))
	for _, r := range refs {
		out = append(out, r.Site)
	}
	return out
}
