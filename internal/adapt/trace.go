package adapt

import (
	"github.com/wasp-stream/wasp/internal/metrics"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
)

// roundLatencyBuckets cover the wall-clock cost of one controller round,
// from microseconds (no bottleneck, small plan) up to a second.
var roundLatencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}

// SetObserver replaces the controller's observer. NewController installs a
// default one so Actions and the decision audit always exist; callers that
// share one observer across engine, network and controller (the experiment
// runner, waspd) override it before Start.
func (c *Controller) SetObserver(o *obs.Observer) {
	if o == nil {
		return
	}
	c.obs = o
	c.describeMetrics()
}

// Observer returns the controller's observer (never nil when the
// controller was built with NewController).
func (c *Controller) Observer() *obs.Observer { return c.obs }

func (c *Controller) describeMetrics() {
	r := c.obs.Registry()
	r.Describe("wasp_controller_rounds_total", "Monitoring/adaptation rounds executed.")
	r.Describe("wasp_controller_actions_total", "Adaptation actions performed, by kind.")
	r.Describe("wasp_controller_rejects_total", "Figure-6 branches considered and rejected, by branch.")
	r.Describe("wasp_controller_round_seconds", "Wall-clock latency of one controller round (requires SetWallClock).")
	r.Describe("wasp_adapt_aborts_total", "In-flight adaptations aborted (doomed or stalled), by kind.")
	r.Describe("wasp_adapt_rollbacks_total", "Operators rolled back after exhausting the retry budget.")
	r.Describe("wasp_adapt_latency_seconds", "Virtual-clock duration of one adaptation phase (detect/plan/halt/transfer/resume), by phase.")
}

// beginDecision opens the decision span for one bottleneck operator. All
// action and reject events until endDecision nest under it, as do the
// engine's reconfigure/replan spans started from within.
func (c *Controller) beginDecision(id plan.OpID, cond string, attrs ...obs.KV) {
	kvs := append([]obs.KV{obs.Int("op", int(id)), obs.String("cond", cond)}, attrs...)
	c.decision = c.obs.StartSpan("decision", kvs...)
}

// endDecision closes the current decision span, recording whether any
// branch of the policy produced an action.
func (c *Controller) endDecision(acted bool) {
	c.decision.SetAttrs(obs.Bool("acted", acted))
	c.decision.Finish()
	c.decision = nil
}

// reject records one considered-and-rejected Figure-6 branch with the
// reason it was not taken — the "why not" half of the decision audit.
func (c *Controller) reject(branch, reason string, attrs ...obs.KV) {
	c.obs.Registry().Counter("wasp_controller_rejects_total", "branch", branch).Inc()
	if c.decision != nil {
		c.decision.Reject(branch, reason, attrs...)
		return
	}
	// No decision span open (e.g. the long-term re-plan loop): the event
	// attaches to whichever span is active, or the top level.
	kvs := append([]obs.KV{obs.String("branch", branch), obs.String("reason", reason)}, attrs...)
	c.obs.Emit("reject", kvs...)
}

// emitDiagnosis records the snapshot evidence behind one operator's §3.3
// verdict: the actual-workload estimate λ̂I, the measured processing and
// arrival rates, selectivity, and queue locations.
func (c *Controller) emitDiagnosis(id plan.OpID, cond metrics.Condition, s metrics.OperatorSample, lambdaInHat float64) {
	sigma := 0.0
	if s.ProcessingRate > 0 {
		sigma = s.OutputRate / s.ProcessingRate
	}
	c.obs.Emit("diagnose",
		obs.Int("op", int(id)),
		obs.String("cond", cond.String()),
		obs.F64("lambda_in_hat", lambdaInHat),
		obs.F64("lambda_p", s.ProcessingRate),
		obs.F64("lambda_i", s.ArrivalRate),
		obs.F64("sigma", sigma),
		obs.F64("input_queue", s.InputQueueLen),
		obs.F64("send_queue", s.SendQueueLen),
		obs.Int("tasks", s.Tasks),
		obs.Bool("backpressure", s.Backpressure),
	)
}
