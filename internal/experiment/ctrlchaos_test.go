package experiment

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestRunCtrlChaosHoldsInvariants(t *testing.T) {
	res, err := RunCtrlChaos(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(res.Cells))
	}
	for _, c := range res.Cells {
		for _, v := range c.Violations {
			t.Errorf("loss=%v part=%v: %s", c.LossRate, c.PartitionFor, v)
		}
		if c.ProcessedPct <= 0 {
			t.Errorf("loss=%v part=%v processed nothing", c.LossRate, c.PartitionFor)
		}
		// Long partitions must exceed PartitionAfter and round-trip the
		// quarantine ladder: enter it and get re-admitted after heal.
		if c.PartitionFor >= 120*time.Second {
			if c.QuarantineLat <= 0 {
				t.Errorf("loss=%v part=%v: region %d never quarantined", c.LossRate, c.PartitionFor, c.Region)
			}
			if c.ReadmitLat <= 0 {
				t.Errorf("loss=%v part=%v: region %d never re-admitted", c.LossRate, c.PartitionFor, c.Region)
			}
		}
	}
	for _, r := range res.Runs {
		for _, v := range r.Violations {
			t.Errorf("seed %d under %q: %s", r.Seed, FaultScript(r.Faults), v)
		}
	}
}

func TestRunCtrlChaosByteIdentical(t *testing.T) {
	a, err := RunCtrlChaos(5, 3, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtrlChaos(5, 3, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := FormatCtrlChaos(a), FormatCtrlChaos(b); fa != fb {
		t.Fatalf("same seeds rendered differently:\n%s\nvs\n%s", fa, fb)
	}
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	c, err := RunCtrlChaos(5, 3, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if FormatCtrlChaos(a) != FormatCtrlChaos(c) {
		t.Fatal("ctrlchaos output depends on worker-pool width")
	}
}

// TestCtrlPartitionAcceptance is the headline robustness scenario: 50%
// telemetry loss plus a 120 s control partition of one region. The
// staleness gate and quarantine must keep the controller from issuing a
// single command into the dark region for the whole partition, the
// region must be quarantined and re-admitted, and goodput must degrade
// gracefully rather than collapse.
func TestCtrlPartitionAcceptance(t *testing.T) {
	const partFor = 120 * time.Second
	region := -1
	var regionSites []topology.SiteID
	res, err := Run(Scenario{
		Name:            "ctrl-partition-acceptance",
		Seed:            1,
		Duration:        900 * time.Second,
		Engine:          EngineConfig(adapt.PolicyWASP),
		Adapt:           AdaptConfig(adapt.PolicyWASP),
		CheckpointEvery: 30 * time.Second,
		// A staleness bound under the report gap the partition opens
		// before the first impaired monitoring round (~30 s at the 40 s
		// round grid) closes the act-on-dead-evidence window entirely.
		Ctrl: &ctrlplane.Config{MaxStaleness: 25 * time.Second},
		FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
			region = victimRegion(top)
			regionSites = ctrlplane.Domains(top, ctrlplane.Config{})[region]
			return []faults.Fault{
				{Kind: faults.TelemLoss, At: 60 * time.Second, For: 600 * time.Second, Rate: 0.5},
				{Kind: faults.CtrlDown, At: ctrlPartitionAt, For: partFor, Region: region},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	onset := vclock.Time(ctrlPartitionAt)
	heal := onset + vclock.Time(partFor)

	if n := CtrlCommandsInRegion(res.Obs, regionSites, onset, heal); n != 0 {
		t.Errorf("%d command(s) issued into partitioned region %d during the partition, want 0", n, region)
	}
	quarantined := false
	for _, ev := range res.Obs.Events("ctrl.quarantine") {
		if int(ev.Get("region").Int64()) == region && ev.At > onset && ev.At <= heal {
			quarantined = true
		}
	}
	if !quarantined {
		t.Errorf("region %d was never quarantined during the partition", region)
	}
	readmitted := false
	for _, ev := range res.Obs.Events("ctrl.readmit") {
		if int(ev.Get("region").Int64()) == region && ev.At >= heal {
			readmitted = true
		}
	}
	if !readmitted {
		t.Errorf("region %d was never re-admitted after heal", region)
	}
	if len(res.Final.QuarantinedRegions) != 0 {
		t.Errorf("regions %v still quarantined at end of run", res.Final.QuarantinedRegions)
	}
	if res.Final.UnackedCommands != 0 {
		t.Errorf("%d command(s) unacked at end of run", res.Final.UnackedCommands)
	}
	// Graceful degradation, not collapse: the regression bound is set
	// from the observed value with headroom (the deterministic run gives
	// the same number every time; a real regression moves it by tens of
	// points, not fractions).
	if res.ProcessedPct < 80 {
		t.Errorf("ProcessedPct = %.1f, want >= 80 (goodput collapsed under control-plane degradation)", res.ProcessedPct)
	}
}
