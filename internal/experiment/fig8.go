package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/trace"
)

// ExperimentSlotRate is the per-slot capacity used by the §8 experiments:
// high enough that one task sustains the base per-source rate with
// headroom, so the scripted bottlenecks are network-bound as in the paper.
const ExperimentSlotRate = 100000

// EngineConfig returns the experiment engine configuration for a policy
// (Degrade enables late-event dropping with the 10 s SLO).
func EngineConfig(policy adapt.Policy) engine.Config {
	return engine.Config{
		SlotRate: ExperimentSlotRate,
		DropLate: policy == adapt.PolicyDegrade,
		SLO:      10 * time.Second,
	}
}

// AdaptConfig returns the experiment controller configuration for a
// policy, using the paper's §8.2 parameters (α=0.8, 40 s monitoring,
// p_max=3).
func AdaptConfig(policy adapt.Policy) adapt.Config {
	return adapt.Config{Policy: policy, SlotRate: ExperimentSlotRate}
}

// QueryByName returns a query builder for "ysb", "topk", or "eoi".
func QueryByName(name string) (QueryBuilder, error) {
	switch name {
	case "ysb":
		return queries.YSBCampaign, nil
	case "topk":
		return queries.TopKTopics, nil
	case "eoi":
		return queries.EventsOfInterest, nil
	default:
		return nil, fmt.Errorf("experiment: unknown query %q (want ysb|topk|eoi)", name)
	}
}

// Fig8Run is one (query, policy) cell of Figures 8 and 9.
type Fig8Run struct {
	Query  string
	Policy adapt.Policy
	Result *Result
}

// RunFig8 executes the §8.4 experiment: all three queries under the
// scripted workload (2× during the second fifth of the run) and bandwidth
// (halved during the fourth fifth) dynamics, for No Adapt, Degrade, and
// the re-optimization policy (full WASP). duration 0 means the paper's
// 1500 s.
func RunFig8(seed int64, duration time.Duration) ([]Fig8Run, error) {
	if duration == 0 {
		duration = 1500 * time.Second
	}
	phase := duration / 5
	policies := []adapt.Policy{adapt.PolicyNone, adapt.PolicyDegrade, adapt.PolicyWASP}
	type cell struct {
		qname   string
		builder QueryBuilder
		policy  adapt.Policy
	}
	var cells []cell
	for _, qname := range []string{"ysb", "topk", "eoi"} {
		builder, err := QueryByName(qname)
		if err != nil {
			return nil, err
		}
		for _, policy := range policies {
			cells = append(cells, cell{qname: qname, builder: builder, policy: policy})
		}
	}
	jobs := make([]func() (Fig8Run, error), len(cells))
	for i, c := range cells {
		jobs[i] = func() (Fig8Run, error) {
			res, err := Run(Scenario{
				Name:      fmt.Sprintf("fig8-%s-%s", c.qname, c.policy),
				Seed:      seed,
				Duration:  duration,
				Query:     c.builder,
				Engine:    EngineConfig(c.policy),
				Adapt:     AdaptConfig(c.policy),
				Workload:  trace.Steps(phase, 1, 2, 1, 1, 1),
				Bandwidth: trace.Steps(phase, 1, 1, 1, 0.5, 1),
			})
			if err != nil {
				return Fig8Run{}, fmt.Errorf("%s/%s: %w", c.qname, c.policy, err)
			}
			return Fig8Run{Query: c.qname, Policy: c.policy, Result: res}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// phaseBounds returns the five phase windows of a fig8/fig10-style run.
func phaseBounds(duration time.Duration) [][2]time.Duration {
	phase := duration / 5
	out := make([][2]time.Duration, 5)
	for i := range out {
		out[i] = [2]time.Duration{time.Duration(i) * phase, time.Duration(i+1) * phase}
	}
	return out
}

// FormatFig8 renders the average-delay-over-time comparison (Figure 8):
// one block per query, phases as columns, policies as rows.
func FormatFig8(runs []Fig8Run, duration time.Duration) string {
	if duration == 0 {
		duration = 1500 * time.Second
	}
	return formatPhased(runs, duration,
		"Figure 8: average execution delay (s) under workload (phase 2: 2x) and bandwidth (phase 4: 0.5x) dynamics",
		func(r *Result, from, to time.Duration) float64 { return r.MeanDelayBetween(from, to) })
}

// FormatFig9 renders the processing-ratio comparison (Figure 9).
func FormatFig9(runs []Fig8Run, duration time.Duration) string {
	if duration == 0 {
		duration = 1500 * time.Second
	}
	return formatPhased(runs, duration,
		"Figure 9: processing ratio under workload (phase 2: 2x) and bandwidth (phase 4: 0.5x) dynamics",
		func(r *Result, from, to time.Duration) float64 { return r.MeanRatioBetween(from, to) })
}

func formatPhased(runs []Fig8Run, duration time.Duration, title string, metric func(*Result, time.Duration, time.Duration) float64) string {
	phases := phaseBounds(duration)
	header := []string{"query", "policy"}
	for _, p := range phases {
		header = append(header, fmt.Sprintf("[%ds,%ds)", int(p[0].Seconds()), int(p[1].Seconds())))
	}
	header = append(header, "actions")
	var rows [][]string
	for _, run := range runs {
		row := []string{run.Query, run.Policy.String()}
		for _, p := range phases {
			row = append(row, Fmt(metric(run.Result, p[0], p[1])))
		}
		row = append(row, summarizeActions(run.Result.Actions))
		rows = append(rows, row)
	}
	return title + "\n" + Table(header, rows)
}

func summarizeActions(actions []adapt.Action) string {
	if len(actions) == 0 {
		return "-"
	}
	counts := make(map[adapt.ActionKind]int)
	order := []adapt.ActionKind{adapt.ActionReassign, adapt.ActionScaleUp, adapt.ActionScaleOut, adapt.ActionScaleDown, adapt.ActionReplan}
	for _, a := range actions {
		counts[a.Kind]++
	}
	var parts []string
	for _, k := range order {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", k, counts[k]))
		}
	}
	return strings.Join(parts, " ")
}
