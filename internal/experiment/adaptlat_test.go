package experiment

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestExactQuantile(t *testing.T) {
	if got := exactQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	s := []float64{4, 1, 3, 2}
	if got := exactQuantile(s, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := exactQuantile(s, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := exactQuantile(s, 0.5); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("q0.5 = %v, want 2.5", got)
	}
}

// runAdaptLatScenario is one short same-seed scenario with a shared
// observer and a crash, shaped like RunAdaptLat's cells but sized for the
// test suite.
func runAdaptLatScenario(t *testing.T) *obs.Observer {
	t.Helper()
	o := obs.New(func() vclock.Time { return 0 })
	duration := 500 * time.Second
	phase := duration / 5
	_, err := Run(Scenario{
		Name:            "adaptlat-test",
		Seed:            1,
		Duration:        duration,
		Engine:          EngineConfig(adapt.PolicyWASP),
		Adapt:           AdaptConfig(adapt.PolicyWASP),
		Workload:        trace.Steps(phase, 1, 2, 1, 1, 1),
		Bandwidth:       trace.Steps(phase, 1, 1, 1, 0.5, 1),
		CheckpointEvery: 30 * time.Second,
		FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
			return []faults.Fault{{
				Kind: faults.SiteCrash, At: 2 * phase, For: phase,
				Site: crashTargetSite(pp),
			}}
		},
		Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestAdaptLatencyJSONLDeterministic locks in the new series' acceptance
// property: two same-seed runs emit byte-identical adapt.latency JSONL
// lines, the lines carry the full phase cycle, and the exported
// wasp_adapt_latency_seconds histogram is non-empty.
func TestAdaptLatencyJSONLDeterministic(t *testing.T) {
	extract := func(o *obs.Observer) string {
		var b strings.Builder
		if err := o.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		var lines []string
		for _, ln := range strings.Split(b.String(), "\n") {
			if strings.Contains(ln, `"adapt.latency"`) || strings.Contains(ln, `"wasp_adapt_latency_seconds"`) {
				lines = append(lines, ln)
			}
		}
		return strings.Join(lines, "\n")
	}
	a := extract(runAdaptLatScenario(t))
	b := extract(runAdaptLatScenario(t))
	if a == "" {
		t.Fatal("no adapt.latency output in JSONL")
	}
	if a != b {
		t.Fatal("same-seed runs produced different adapt.latency JSONL")
	}
	for _, phase := range []string{"detect", "plan", "halt", "transfer"} {
		if !strings.Contains(a, `"phase":"`+phase+`"`) {
			t.Errorf("adapt.latency JSONL missing phase %q", phase)
		}
	}
}

// TestAdaptLatHistogramQuantiles checks the bucketed quantile readout the
// waspbench table consumes.
func TestAdaptLatHistogramQuantiles(t *testing.T) {
	o := runAdaptLatScenario(t)
	sawAny := false
	for _, phase := range AdaptPhases {
		p50, p95, p99, n := AdaptLatHistogramQuantiles(o, phase)
		if n == 0 {
			continue
		}
		sawAny = true
		if math.IsNaN(p50) || math.IsNaN(p95) || math.IsNaN(p99) {
			t.Errorf("phase %s: NaN quantiles with %d observations", phase, n)
		}
		if p50 > p99+1e-9 {
			t.Errorf("phase %s: p50 %v > p99 %v", phase, p50, p99)
		}
	}
	if !sawAny {
		t.Fatal("no phase accumulated any observations")
	}
}
