package experiment

import (
	"strings"
	"testing"

	"github.com/wasp-stream/wasp/internal/adapt"
)

func TestStragglerExtension(t *testing.T) {
	runs, err := RunStraggler(1)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[adapt.Policy]StragglerRun)
	for _, r := range runs {
		byPolicy[r.Policy] = r
	}
	noAdapt := byPolicy[adapt.PolicyNone]
	wasp := byPolicy[adapt.PolicyWASP]
	if len(wasp.Result.Actions) == 0 {
		t.Fatal("WASP took no action against the straggler")
	}
	if !(wasp.During < noAdapt.During) {
		t.Fatalf("WASP delay during straggle %.1f not below no-adapt %.1f", wasp.During, noAdapt.During)
	}
	out := FormatStraggler(runs)
	if !strings.Contains(out, "straggler") {
		t.Fatal("format malformed")
	}
}

func TestAlphaAblation(t *testing.T) {
	rows, err := RunAlphaAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatAblation("alpha sweep", rows)
	if !strings.Contains(out, "α=0.80") {
		t.Fatalf("format malformed:\n%s", out)
	}
}

func TestMonitorIntervalAblation(t *testing.T) {
	rows, err := RunMonitorIntervalAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestConstraintAblation(t *testing.T) {
	rows, err := RunConstraintAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The conservative (literal) constraints admit at most as many
	// schedulable variants as the weighted reading.
	if rows[1].Actions > rows[0].Actions {
		t.Fatalf("conservative admitted %d > weighted %d variants", rows[1].Actions, rows[0].Actions)
	}
}
