package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Fig11Run is one policy arm of the §8.6 live-environment experiment.
type Fig11Run struct {
	Policy adapt.Policy
	Result *Result
}

// RunFig11 executes the §8.6 live experiment on the Top-K query: per-link
// bandwidth variation traces (0.51–2.36×), independent per-source workload
// traces (0.8–2.4×), and a full resource revocation at t=0.3·duration for
// duration/30 (the paper's 540 s failure with a 60 s outage in an 1800 s
// run), comparing No Adapt, Degrade, and full WASP. duration 0 means
// 1800 s.
func RunFig11(seed int64, duration time.Duration) ([]Fig11Run, error) {
	if duration == 0 {
		duration = 1800 * time.Second
	}
	policies := []adapt.Policy{adapt.PolicyNone, adapt.PolicyDegrade, adapt.PolicyWASP}
	jobs := make([]func() (Fig11Run, error), len(policies))
	for i, policy := range policies {
		jobs[i] = func() (Fig11Run, error) {
			res, err := Run(Scenario{
				Name:              fmt.Sprintf("fig11-%s", policy),
				Seed:              seed,
				Duration:          duration,
				Query:             queries.TopKTopics,
				Engine:            EngineConfig(policy),
				Adapt:             AdaptConfig(policy),
				PerSourceWorkload: true,
				PerLinkBandwidth:  true,
				FailAt:            duration * 3 / 10,
				FailFor:           duration / 30,
			})
			if err != nil {
				return Fig11Run{}, fmt.Errorf("fig11 %s: %w", policy, err)
			}
			return Fig11Run{Policy: policy, Result: res}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatFig11 renders Figure 11(b) and 11(c): average delay over time and
// parallelism changes, with the failure window marked.
func FormatFig11(runs []Fig11Run, duration time.Duration) string {
	if duration == 0 {
		duration = 1800 * time.Second
	}
	failAt := duration * 3 / 10
	failEnd := failAt + duration/30
	buckets := 9
	width := duration / time.Duration(buckets)

	out := fmt.Sprintf("Figure 11: live environment (failure at t=%ds for %ds)\n",
		int(failAt.Seconds()), int((duration / 30).Seconds()))
	out += "\nFigure 11(b): average delay (s) over time\n"
	header := []string{"policy"}
	for i := 0; i < buckets; i++ {
		from := time.Duration(i) * width
		mark := ""
		if from < failEnd && from+width > failAt {
			mark = "*"
		}
		header = append(header, fmt.Sprintf("[%d,%d)%s", int(from.Seconds()), int((from+width).Seconds()), mark))
	}
	var rows [][]string
	for _, run := range runs {
		row := []string{run.Policy.String()}
		for i := 0; i < buckets; i++ {
			from := time.Duration(i) * width
			row = append(row, Fmt(run.Result.MeanDelayBetween(from, from+width)))
		}
		rows = append(rows, row)
	}
	out += Table(header, rows)

	out += "\nFigure 11(c): additional tasks over time\n"
	rows = nil
	for _, run := range runs {
		row := []string{run.Policy.String()}
		for i := 0; i < buckets; i++ {
			at := time.Duration(i+1)*width - 1
			row = append(row, Fmt(SeriesValueAt(run.Result.Parallelism, vclock.Time(at), 0)))
		}
		rows = append(rows, row)
	}
	out += Table(header, rows)

	out += "\nAdaptation log (WASP arm):\n"
	var log strings.Builder
	for _, run := range runs {
		if run.Policy != adapt.PolicyWASP {
			continue
		}
		run.Result.Obs.WriteActionLog(&log)
	}
	out += log.String()
	return out
}

// FormatFig12 renders the quality/delay trade-off (Figure 12): percentage
// of processed events and the delay distribution per policy.
func FormatFig12(runs []Fig11Run) string {
	out := "Figure 12(a): average processed events (%)\n"
	var rows [][]string
	for _, run := range runs {
		rows = append(rows, []string{run.Policy.String(), Fmt(run.Result.ProcessedPct)})
	}
	out += Table([]string{"policy", "processed %"}, rows)

	out += "\nFigure 12(b): delay distribution (s)\n"
	rows = nil
	for _, run := range runs {
		rows = append(rows, []string{
			run.Policy.String(),
			Fmt(run.Result.DelayPercentile(0.25)),
			Fmt(run.Result.DelayPercentile(0.50)),
			Fmt(run.Result.DelayPercentile(0.75)),
			Fmt(run.Result.DelayPercentile(0.95)),
			Fmt(run.Result.DelayPercentile(0.99)),
		})
	}
	out += Table([]string{"policy", "p25", "p50", "p75", "p95", "p99"}, rows)
	return out
}
