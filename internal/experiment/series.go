// Package experiment is the evaluation harness: it assembles the paper's
// testbed (topology, WAN emulator, engine, adaptation controller), drives
// the scripted or trace-driven dynamics of §8, collects the delay /
// processing-ratio / parallelism series, and renders every table and
// figure of the evaluation as text.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// TimePoint is one sample of a time series.
type TimePoint struct {
	T vclock.Time
	V float64
}

// WeightedDelay is one sink-delivery delay observation carrying an event
// count (flow-mode cohorts are fractional event bundles).
type WeightedDelay struct {
	At     vclock.Time
	Delay  float64 // seconds
	Weight float64 // events
}

// Percentile returns the weighted p-quantile (p ∈ [0,1]) of the delay
// samples. It returns NaN for an empty set.
func Percentile(samples []WeightedDelay, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sorted := make([]WeightedDelay, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Delay < sorted[j].Delay })
	var total float64
	for _, s := range sorted {
		total += s.Weight
	}
	target := p * total
	var cum float64
	for _, s := range sorted {
		cum += s.Weight
		if cum >= target {
			return s.Delay
		}
	}
	return sorted[len(sorted)-1].Delay
}

// Mean returns the weighted mean delay, or NaN for an empty set.
func Mean(samples []WeightedDelay) float64 {
	var sum, w float64
	for _, s := range samples {
		sum += s.Delay * s.Weight
		w += s.Weight
	}
	if w == 0 {
		return math.NaN()
	}
	return sum / w
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	X float64 // delay (seconds)
	F float64 // cumulative fraction
}

// CDF computes the weighted empirical CDF sampled at `points` evenly
// spaced quantiles (plus the max).
func CDF(samples []WeightedDelay, points int) []CDFPoint {
	if len(samples) == 0 || points < 2 {
		return nil
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		f := float64(i) / float64(points)
		out = append(out, CDFPoint{X: Percentile(samples, f), F: f})
	}
	return out
}

// Window filters samples to [from, to).
func Window(samples []WeightedDelay, from, to vclock.Time) []WeightedDelay {
	var out []WeightedDelay
	for _, s := range samples {
		if s.At >= from && s.At < to {
			out = append(out, s)
		}
	}
	return out
}

// Bucketize averages samples into fixed-width time buckets (weighted),
// producing the "average delay over time" series of the figures. Buckets
// with no deliveries are omitted.
func Bucketize(samples []WeightedDelay, width vclock.Time) []TimePoint {
	if width <= 0 || len(samples) == 0 {
		return nil
	}
	type acc struct{ sum, w float64 }
	buckets := make(map[vclock.Time]*acc)
	for _, s := range samples {
		b := (s.At / width) * width
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
		}
		a.sum += s.Delay * s.Weight
		a.w += s.Weight
	}
	keys := detutil.SortedKeys(buckets)
	out := make([]TimePoint, 0, len(keys))
	for _, k := range keys {
		a := buckets[k]
		out = append(out, TimePoint{T: k, V: a.sum / a.w})
	}
	return out
}

// SeriesValueAt returns the last series value at or before t (or def).
func SeriesValueAt(series []TimePoint, t vclock.Time, def float64) float64 {
	v := def
	for _, p := range series {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Table renders rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Fmt formats a float compactly for tables.
func Fmt(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.4f", v)
	case math.Abs(v) < 10:
		return fmt.Sprintf("%.2f", v)
	case math.Abs(v) < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
