package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/chaos"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
)

// ChaosRun is one seed of the chaos sweep: a randomized fault schedule
// thrown at the full WASP policy with checkpointing, judged by the
// invariant checker.
type ChaosRun struct {
	Seed         int64
	Faults       []faults.Fault
	Actions      int
	Aborts       int
	Recoveries   int
	ProcessedPct float64
	MaxRecovery  time.Duration
	Violations   []chaos.Violation
}

// ChaosRecoveryBound is the recovery-time invariant for chaos runs:
// generous enough to absorb retry backoff after compound failures, tight
// enough to catch a recovery that only "completed" because the run ended.
const ChaosRecoveryBound = 600 * time.Second

// chaosDuration leaves the final quarter of the run fault-free (the
// generator heals everything by 3/4) so a correct runtime ends settled.
const chaosDuration = 900 * time.Second

// RunChaos sweeps seeds [baseSeed, baseSeed+n): each run generates a
// randomized fault schedule against its own sampled topology, executes
// the full WASP policy with 30 s checkpointing under it, and checks the
// end-of-run invariants. The sweep runs on the experiment pool; results
// come back in seed order regardless of parallelism.
func RunChaos(baseSeed int64, n int, duration time.Duration) ([]ChaosRun, error) {
	if n <= 0 {
		n = 8
	}
	if duration == 0 {
		duration = chaosDuration
	}
	jobs := make([]func() (ChaosRun, error), n)
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		jobs[i] = func() (ChaosRun, error) {
			var schedule []faults.Fault
			res, err := Run(Scenario{
				Name:            fmt.Sprintf("chaos-seed-%d", seed),
				Seed:            seed,
				Duration:        duration,
				Engine:          EngineConfig(adapt.PolicyWASP),
				Adapt:           AdaptConfig(adapt.PolicyWASP),
				CheckpointEvery: 30 * time.Second,
				FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
					schedule = chaos.Generate(seed, chaos.Config{
						Sites:    top.N(),
						Duration: duration,
					})
					return schedule
				},
			})
			if err != nil {
				return ChaosRun{}, err
			}
			run := ChaosRun{
				Seed:         seed,
				Faults:       schedule,
				Actions:      len(res.Actions),
				Aborts:       len(res.Obs.Events("adapt.abort")),
				Recoveries:   len(res.Obs.Events("recovery.complete")),
				ProcessedPct: res.ProcessedPct,
				MaxRecovery:  res.Final.MaxRecovery,
				Violations:   chaos.Check(*res.Final, ChaosRecoveryBound),
			}
			return run, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatChaos renders the chaos sweep: one row per seed plus, for any
// seed with violations, the broken invariants underneath. The output is
// byte-identical across runs of the same seeds (CI compares two runs).
func FormatChaos(runs []ChaosRun) string {
	var b strings.Builder
	b.WriteString("Chaos sweep: randomized fault schedules vs the fault-tolerant adaptation runtime\n")
	var rows [][]string
	violated := 0
	for _, r := range runs {
		verdict := "ok"
		if len(r.Violations) > 0 {
			verdict = fmt.Sprintf("%d violation(s)", len(r.Violations))
			violated++
		}
		maxRec := "-"
		if r.MaxRecovery > 0 {
			maxRec = r.MaxRecovery.Round(100 * time.Millisecond).String()
		}
		rows = append(rows, []string{
			fmt.Sprint(r.Seed), fmt.Sprint(len(r.Faults)),
			fmt.Sprint(r.Actions), fmt.Sprint(r.Aborts), fmt.Sprint(r.Recoveries),
			Fmt(r.ProcessedPct), maxRec, verdict,
		})
	}
	b.WriteString(Table(
		[]string{"seed", "faults", "actions", "aborts", "recoveries", "processed %", "max recovery", "invariants"},
		rows))
	for _, r := range runs {
		if len(r.Violations) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nseed %d schedule: %s\n", r.Seed, FaultScript(r.Faults))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  FAIL %s\n", v)
		}
	}
	if violated == 0 {
		fmt.Fprintf(&b, "\nall %d seeds passed every invariant\n", len(runs))
	}
	return b.String()
}

// FaultScript renders a schedule back into the -fault DSL.
func FaultScript(fs []faults.Fault) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}
