package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
)

// The scale trajectory sweep: end-to-end runs on GenerateScale topologies
// from the testbed's size up to 1000 sites, millions of simulated users
// aggregated into region-fronting ingest sites, under the full WASP
// policy with a mid-run site slowdown to force adaptation. Each cell also
// micro-benchmarks the warm hierarchical placement solve at its topology
// size — the wall-clock number the CI budget (and the README performance
// table) tracks.
//
// Everything printed by FormatScale is virtual-clock deterministic:
// byte-identical for the same seed whatever the worker count. Wall-clock
// measurements (ticks/sec, ms per placement solve) never reach stdout;
// they ride the -bench-json metrics map.

// UserEventRate is each simulated user's contribution to its region's
// ingest stream, in events/s — a planetary population of casual clients
// rather than the testbed's 8 dense feeds.
const UserEventRate = 0.01

// ScaleShape is one cell of the scale sweep.
type ScaleShape struct {
	Regions, Edges int
	// PMax caps per-operator parallelism for the adaptation controller.
	PMax int
}

// DefaultScaleShapes spans 16 → 1000 sites with a parallelism sweep at
// each size the oracle regime covers, and the planet-scale headline cell.
var DefaultScaleShapes = []ScaleShape{
	{4, 3, 1}, {4, 3, 4},
	{8, 7, 1}, {8, 7, 4},
	{16, 15, 1}, {16, 15, 4},
	{50, 19, 4},
}

// ScaleCell is one completed cell of the sweep. SolveMillis and
// TicksPerSec are wall-clock (machine-dependent) and excluded from
// FormatScale's deterministic output.
type ScaleCell struct {
	Regions, Edges, Sites, PMax int
	// Users is the topology's total simulated user population.
	Users int
	// InitialTasks / FinalTasks bracket the deployment size.
	InitialTasks, FinalTasks int
	// Ticks is the engine's simulation tick count.
	Ticks int64
	// Actions is the number of adaptation actions taken.
	Actions int
	// ProcessedPct is the share of generated events fully processed.
	ProcessedPct float64
	// AdaptP50 is the median end-to-end adaptation latency in virtual
	// seconds: one cycle's detect→plan→halt→transfer→resume total.
	AdaptP50 float64
	// SolveMillis is the mean wall time of one warm hierarchical
	// placement solve at this topology size (bench JSON only).
	SolveMillis float64
	// TicksPerSec is the cell's wall-clock simulation rate (bench JSON
	// only).
	TicksPerSec float64
}

// RunScale executes the sweep. duration 0 means 500 s per cell; nil
// shapes means DefaultScaleShapes.
func RunScale(seed int64, duration time.Duration, shapes []ScaleShape) ([]ScaleCell, error) {
	if duration == 0 {
		duration = 500 * time.Second
	}
	if shapes == nil {
		shapes = DefaultScaleShapes
	}
	jobs := make([]func() (ScaleCell, error), len(shapes))
	for i, sh := range shapes {
		jobs[i] = func() (ScaleCell, error) {
			return runScaleCell(seed, duration, sh)
		}
	}
	return runJobs(Parallelism(), jobs)
}

// IngestPlan aggregates the topology's user population into at most 8
// region-fronting ingest sites (plan enumeration is exponential in the
// source count): each region's first edge site fronts it, regions beyond
// the ingest budget fold into the fronting sites round-robin.
func IngestPlan(top *topology.Topology) (sites []topology.SiteID, rate map[topology.SiteID]float64) {
	regionSites := top.RegionSites()
	k := min(8, len(regionSites))
	rate = make(map[topology.SiteID]float64, k)
	for i := 0; i < k; i++ {
		// regionSites[i][0] is the region's hub; edges follow.
		sites = append(sites, regionSites[i][1])
	}
	for r, members := range regionSites {
		users := 0
		for _, s := range members {
			users += top.Site(s).Users
		}
		rate[sites[r%k]] += float64(users) * UserEventRate
	}
	return sites, rate
}

func runScaleCell(seed int64, duration time.Duration, sh ScaleShape) (ScaleCell, error) {
	top, err := topology.GenerateScale(topology.DefaultScaleConfig(seed, sh.Regions, sh.Edges))
	if err != nil {
		return ScaleCell{}, err
	}
	ingest, rate := IngestPlan(top)

	acfg := AdaptConfig(adapt.PolicyWASP)
	acfg.PMax = sh.PMax
	o := obs.New(nil)
	sc := Scenario{
		Name:              fmt.Sprintf("scale-%dx%d-p%d", sh.Regions, sh.Edges, sh.PMax),
		Seed:              seed,
		Duration:          duration,
		Topology:          top,
		SourceSites:       ingest,
		RateForSite:       func(s topology.SiteID) float64 { return rate[s] },
		Engine:            EngineConfig(adapt.PolicyWASP),
		Adapt:             acfg,
		MaxVariants:       12,
		ReplanMaxVariants: 12,
		// A ×2 workload surge in the back 2/5 of the run plus a mid-run
		// slowdown of the hottest unpinned stage's host force the
		// controller through detect → plan → transfer at every scale.
		Workload: trace.Steps(duration/5, 1, 1, 1, 2, 2),
		FaultsFor: func(pp *physical.Plan, t *topology.Topology) []faults.Fault {
			return []faults.Fault{{
				Kind: faults.SiteSlow, At: 2 * duration / 5, For: duration / 5,
				Site: crashTargetSite(pp), Factor: slowFactorFor(pp),
			}}
		},
		Obs: o,
	}

	//waspvet:wallclock bench-report timing only; the run advances on the virtual clock
	start := time.Now()
	res, err := Run(sc)
	if err != nil {
		return ScaleCell{}, fmt.Errorf("scale %dx%d p%d: %w", sh.Regions, sh.Edges, sh.PMax, err)
	}
	//waspvet:wallclock bench-report timing only; the run advances on the virtual clock
	wall := time.Since(start).Seconds()

	cell := ScaleCell{
		Regions: sh.Regions, Edges: sh.Edges, Sites: top.N(), PMax: sh.PMax,
		Users:        top.TotalUsers(),
		InitialTasks: res.InitialTasks,
		FinalTasks:   res.InitialTasks + int(res.Parallelism[len(res.Parallelism)-1].V),
		Ticks:        res.Ticks,
		Actions:      len(res.Actions),
		ProcessedPct: res.ProcessedPct,
		AdaptP50:     exactQuantile(cycleSeconds(o), 0.50),
		SolveMillis:  measureSolve(top, ingest, rate),
	}
	if wall > 0 && res.Ticks > 0 {
		cell.TicksPerSec = float64(res.Ticks) / wall
	}
	return cell, nil
}

// cycleSeconds sums each adaptation cycle's phase durations into one
// end-to-end latency sample. Every cycle emits one adapt.latency event
// per phase in order, so the i-th sample of each phase belongs to the
// i-th cycle.
func cycleSeconds(o *obs.Observer) []float64 {
	ps := phaseSeconds(o)
	n := -1
	for _, phase := range AdaptPhases {
		if n < 0 || len(ps[phase]) < n {
			n = len(ps[phase])
		}
	}
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, phase := range AdaptPhases {
		for i := 0; i < n; i++ {
			out[i] += ps[phase][i]
		}
	}
	return out
}

// slowFactorFor sizes the straggler's capacity fraction to the victim
// stage's actual load, so the slowdown overwhelms it at every sweep
// scale: user-derived ingest rates span two orders of magnitude between
// the 16-site and 1000-site cells, and a fixed factor that cripples one
// is a no-op for the other. The slowed capacity lands at half the
// victim's expected input.
func slowFactorFor(pp *physical.Plan) float64 {
	bestID, inRate := hottestMovable(pp)
	if bestID < 0 {
		return 0.25
	}
	cost := pp.Graph.Operator(bestID).CostPerEvent
	if cost <= 0 {
		cost = 1
	}
	f := 0.5 * inRate * cost / ExperimentSlotRate
	return min(max(f, 0.001), 0.9)
}

// measureSolve micro-benchmarks the warm hierarchical placement solve on
// a representative stage program at this topology size: the aggregated
// ingest streams flowing to the first hub. Wall-clock by design — the
// result feeds only the bench JSON, never stdout.
func measureSolve(top *topology.Topology, ingest []topology.SiteID, rate map[topology.SiteID]float64) float64 {
	m := top.N()
	slots := make([]int, m)
	for s := 0; s < m; s++ {
		slots[s] = top.Slots(topology.SiteID(s))
	}
	var ups []placement.Endpoint
	var inBytes float64
	for _, s := range ingest {
		bytes := rate[s] * 240
		inBytes += bytes
		ups = append(ups, placement.Endpoint{Site: s, Weight: bytes})
	}
	for i := range ups {
		ups[i].Weight /= inBytes
	}
	pr := &placement.Problem{
		Sites:             m,
		Parallelism:       min(64, top.TotalSlots()),
		AvailableSlots:    slots,
		Upstream:          ups,
		Downstream:        []placement.Endpoint{{Site: 0, Weight: 1}},
		InputBytesPerSec:  inBytes,
		OutputBytesPerSec: inBytes * 0.02,
		Alpha:             0.8,
		Latency:           top.Latency,
		Bandwidth: func(from, to topology.SiteID) float64 {
			return top.BaseBandwidth(from, to).BytesPerSec()
		},
		Pinned: -1,
	}
	regions := top.RegionSites()
	hs := &placement.HierScratch{}
	if _, err := pr.SolveHierarchicalInto(regions, hs); err != nil {
		return -1 // infeasible fixture: surfaced as a negative metric
	}
	const iters = 100
	//waspvet:wallclock bench-report timing only; measures the solver, not the simulation
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := pr.SolveHierarchicalInto(regions, hs); err != nil {
			return -1
		}
	}
	//waspvet:wallclock bench-report timing only; measures the solver, not the simulation
	return time.Since(start).Seconds() * 1000 / iters
}

// FormatScale renders the deterministic columns of the sweep — identical
// bytes for the same seed regardless of worker count or machine speed.
func FormatScale(cells []ScaleCell) string {
	out := "Scale trajectory: hierarchical planning on GenerateScale topologies (WASP policy, mid-run site slowdown)\n"
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Sites),
			fmt.Sprintf("%dx%d", c.Regions, c.Edges),
			fmt.Sprintf("%d", c.PMax),
			fmt.Sprintf("%d", c.Users),
			fmt.Sprintf("%d→%d", c.InitialTasks, c.FinalTasks),
			fmt.Sprintf("%d", c.Ticks),
			fmt.Sprintf("%d", c.Actions),
			Fmt(c.AdaptP50),
			Fmt(c.ProcessedPct),
		})
	}
	return out + Table([]string{"sites", "shape", "p_max", "users", "tasks", "ticks", "actions", "adapt_p50_s", "processed_pct"}, rows)
}

// ScaleMetrics flattens the sweep's wall-clock measurements for the
// -bench-json metrics map, keyed by cell.
func ScaleMetrics(cells []ScaleCell) map[string]float64 {
	out := make(map[string]float64, 2*len(cells))
	for _, c := range cells {
		key := fmt.Sprintf("sites%d_p%d", c.Sites, c.PMax)
		out[key+".solve_ms"] = c.SolveMillis
		out[key+".ticks_per_sec"] = c.TicksPerSec
	}
	return out
}
