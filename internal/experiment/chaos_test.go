package experiment

import (
	"testing"
	"time"
)

func TestRunChaosSweepHoldsInvariants(t *testing.T) {
	runs, err := RunChaos(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs))
	}
	for _, r := range runs {
		if len(r.Faults) == 0 {
			t.Errorf("seed %d: empty fault schedule", r.Seed)
		}
		if len(r.Violations) > 0 {
			t.Errorf("seed %d violated invariants under schedule %q:", r.Seed, FaultScript(r.Faults))
			for _, v := range r.Violations {
				t.Errorf("  %s", v)
			}
		}
		if r.ProcessedPct <= 0 {
			t.Errorf("seed %d processed nothing", r.Seed)
		}
	}
}

func TestRunChaosOutputByteIdentical(t *testing.T) {
	a, err := RunChaos(5, 3, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(5, 3, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := FormatChaos(a), FormatChaos(b); fa != fb {
		t.Fatalf("same seeds rendered differently:\n%s\nvs\n%s", fa, fb)
	}
	// Parallelism must not reorder or alter results either.
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	c, err := RunChaos(5, 3, 600*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if FormatChaos(a) != FormatChaos(c) {
		t.Fatal("chaos output depends on worker-pool width")
	}
}
