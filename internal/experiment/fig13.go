package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Fig13Run is one migration-strategy arm of §8.7.1.
type Fig13Run struct {
	Strategy adapt.MigrationStrategy
	Overhead Overhead
	// Peak95 is the 95th-percentile delay during the adaptation window.
	Peak95 float64
	// Samples for the delay-over-time panel.
	Samples []WeightedDelay
}

// strategyName names a migration strategy for reports.
func strategyName(s adapt.MigrationStrategy) string {
	switch s {
	case adapt.MigrateNone:
		return "No Migrate"
	case adapt.MigrateNetworkAware:
		return "WASP"
	case adapt.MigrateRandom:
		return "Random"
	case adapt.MigrateDistant:
		return "Distant"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// RunFig13 executes the §8.7.1 network-aware state-migration experiment:
// a stateful stage with 60 MB of state is migrated off its site at
// t=180 s; the destination is chosen by each strategy (No Migrate skips
// the transfer — losing state accuracy; WASP picks the highest-bandwidth
// feasible destination; Random ignores bandwidth; Distant picks the
// slowest feasible link). Every destination can sustain the stream, so
// all arms eventually stabilize.
func RunFig13(seed int64) ([]Fig13Run, error) {
	const (
		stateBytes = 60e6
		adaptAt    = 180 * time.Second
		runFor     = 500 * time.Second
		threshold  = 3.0 // seconds: stabilization delay bound
	)
	strategies := []adapt.MigrationStrategy{
		adapt.MigrateNone, adapt.MigrateNetworkAware, adapt.MigrateRandom, adapt.MigrateDistant,
	}
	jobs := make([]func() (Fig13Run, error), len(strategies))
	for i, strat := range strategies {
		jobs[i] = func() (Fig13Run, error) {
			b, err := newMigBench(seed, stateBytes)
			if err != nil {
				return Fig13Run{}, err
			}
			if err := b.runUntil(adaptAt); err != nil {
				return Fig13Run{}, err
			}
			dests := b.candidateDests(b.sched.Now())
			if len(dests) == 0 {
				return Fig13Run{}, fmt.Errorf("fig13: no feasible destination")
			}
			dest := pickDest(dests, strat)
			bytes := stateBytes
			if strat == adapt.MigrateNone {
				bytes = 0
			}
			doneAt, err := b.moveStage([]topology.SiteID{dest}, bytes)
			if err != nil {
				return Fig13Run{}, err
			}
			if err := b.runUntil(runFor); err != nil {
				return Fig13Run{}, err
			}
			overhead := measureOverhead(b.samples, vclock.Time(adaptAt), *doneAt, threshold)
			window := Window(b.samples, vclock.Time(adaptAt), vclock.Time(runFor))
			return Fig13Run{
				Strategy: strat,
				Overhead: overhead,
				Peak95:   Percentile(window, 0.95),
				Samples:  b.samples,
			}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// pickDest selects the destination per strategy from candidates sorted by
// descending migration bandwidth.
func pickDest(dests []topology.SiteID, strat adapt.MigrationStrategy) topology.SiteID {
	switch strat {
	case adapt.MigrateDistant:
		return dests[len(dests)-1]
	case adapt.MigrateRandom:
		return dests[len(dests)/2] // bandwidth-agnostic deterministic pick
	default: // WASP network-aware and No Migrate (destination then moot)
		return dests[0]
	}
}

// FormatFig13 renders the delay-over-time and overhead-breakdown panels.
func FormatFig13(runs []Fig13Run) string {
	out := "Figure 13: network-aware state migration (60 MB state, adaptation at t=180 s)\n"
	out += "\nFigure 13(a): delay over time (s)\n"
	buckets := []time.Duration{120 * time.Second, 180 * time.Second, 240 * time.Second, 300 * time.Second, 360 * time.Second, 420 * time.Second, 480 * time.Second}
	header := []string{"strategy"}
	for i := 0; i+1 < len(buckets); i++ {
		header = append(header, fmt.Sprintf("[%d,%d)", int(buckets[i].Seconds()), int(buckets[i+1].Seconds())))
	}
	var rows [][]string
	for _, run := range runs {
		row := []string{strategyName(run.Strategy)}
		for i := 0; i+1 < len(buckets); i++ {
			row = append(row, Fmt(Mean(Window(run.Samples, vclock.Time(buckets[i]), vclock.Time(buckets[i+1])))))
		}
		rows = append(rows, row)
	}
	out += Table(header, rows)

	out += "\nFigure 13(b): adaptation overhead breakdown (s)\n"
	rows = nil
	for _, run := range runs {
		rows = append(rows, []string{
			strategyName(run.Strategy),
			Fmt(run.Overhead.Transition.Seconds()),
			Fmt(run.Overhead.Stabilize.Seconds()),
			Fmt(run.Overhead.Total().Seconds()),
			Fmt(run.Peak95),
		})
	}
	out += Table([]string{"strategy", "transition", "stabilize", "total", "p95 delay"}, rows)
	out += "No Migrate redirects streams without moving state (accuracy loss).\n"
	return out
}
