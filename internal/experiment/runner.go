package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/chaos"
	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// QueryBuilder constructs one of the evaluation queries.
type QueryBuilder func(queries.Config) *queries.Query

// Scenario describes one experiment run: a query on the §8.2 testbed with
// scripted or trace-driven dynamics under one adaptation policy.
type Scenario struct {
	Name string
	// Seed drives the topology sample and all stochastic traces.
	Seed int64
	// Duration is the virtual run length.
	Duration time.Duration
	// Query builds the workload (default TopKTopics, the paper's
	// representative query).
	Query QueryBuilder
	// RatePerSource is the initial per-source rate (default 10000 ev/s).
	RatePerSource float64
	// Topology, when non-nil, replaces the default §8.2 testbed sample —
	// the planet-scale experiments run on topology.GenerateScale output.
	Topology *topology.Topology
	// SourceSites overrides the query's ingest sites (default: every
	// Edge site). Planet-scale runs front a bounded ingest set because
	// plan enumeration is exponential in the source count.
	SourceSites []topology.SiteID
	// RateForSite, when non-nil, supplies each ingest site's initial
	// source rate instead of the flat RatePerSource (e.g. derived from
	// simulated user populations).
	RateForSite func(topology.SiteID) float64
	// ReplanMaxVariants caps the controller's re-plan search space; 0
	// keeps physical.DefaultMaxVariants.
	ReplanMaxVariants int

	// Engine and Adapt configure the runtime and the controller.
	Engine engine.Config
	Adapt  adapt.Config

	// Workload scales all source rates over time.
	Workload *trace.Trace
	// PerSourceWorkload, when true, additionally applies an independent
	// live variation trace to every source (§8.6).
	PerSourceWorkload bool
	// Bandwidth scales all WAN links over time.
	Bandwidth *trace.Trace
	// PerLinkBandwidth, when true, applies an independent live variation
	// trace to every directed link (§8.6).
	PerLinkBandwidth bool

	// FailAt/FailFor inject a full resource revocation (§8.6). Zero
	// FailFor disables.
	FailAt  time.Duration
	FailFor time.Duration

	// Faults injects partial failures — site crash+restart, link
	// blackout/degradation, site-wide stragglers — at scripted times.
	Faults []faults.Fault
	// FaultsFor computes additional faults once the initial plan is known,
	// e.g. to crash whichever site hosts the stateful aggregate.
	FaultsFor func(*physical.Plan, *topology.Topology) []faults.Fault
	// CheckpointEvery enables localized checkpointing with replication at
	// this period, plus checkpoint-driven recovery on site crashes. Zero
	// disables: crashed tasks restart empty and their state is lost.
	CheckpointEvery time.Duration

	// Ctrl, when non-nil, routes the controller's telemetry and commands
	// over the simulated WAN control plane (ctrlplane) instead of the
	// ideal instantaneous model. Nil — the default for every existing
	// entry point — keeps runs byte-identical to the ideal controller.
	Ctrl *ctrlplane.Config

	// SampleEvery sets the series bucket width (default 20 s).
	SampleEvery time.Duration
	// MaxVariants caps the combine-order enumeration (default 40).
	MaxVariants int
	// StateBytes, when > 0, overrides the stateful combine template's
	// state size (the §8.7 experiments control it directly).
	StateBytes float64

	// Obs, when non-nil, is shared by the engine, the network and the
	// controller: every telemetry series, decision span and adaptation
	// action of the run lands in it. Nil still records the controller's
	// action log in a run-private observer (see Result.Obs).
	Obs *obs.Observer

	// Flight, when non-nil, is attached to the engine: every simulation
	// tick appends one row of per-stage/per-link state to the ring for
	// post-mortem dumps (wasptrace).
	Flight *obs.FlightRecorder
}

func (s Scenario) withDefaults() Scenario {
	if s.Query == nil {
		s.Query = queries.TopKTopics
	}
	if s.RatePerSource == 0 {
		s.RatePerSource = 10000
	}
	if s.SampleEvery == 0 {
		s.SampleEvery = 20 * time.Second
	}
	if s.MaxVariants == 0 {
		s.MaxVariants = 40
	}
	if s.Duration == 0 {
		s.Duration = 1500 * time.Second
	}
	return s
}

// Result carries everything a figure needs from one run.
type Result struct {
	Name string
	// Delay is the bucket-averaged sink delay over time (seconds).
	Delay []TimePoint
	// Ratio is the processing ratio over time (§8.3).
	Ratio []TimePoint
	// Parallelism is the total extra tasks over time, relative to the
	// initial deployment.
	Parallelism []TimePoint
	// Samples holds every sink delivery for CDFs and percentiles.
	Samples []WeightedDelay
	// Cumulative event accounting.
	Generated, Delivered, Dropped float64
	// ProcessedPct is the percentage of generated events fully processed
	// past ingest by the end of the run (Fig 12a).
	ProcessedPct float64
	// Lost/Restored account crash-lost source-equivalent events and the
	// share clawed back from checkpoints.
	Lost, Restored float64
	// Actions is the adaptation log.
	Actions []adapt.Action
	// Obs is the run's observer (the scenario's, or the controller's
	// run-private default) — the decision audit and action log behind
	// Actions.
	Obs *obs.Observer
	// InitialTasks is the task count of the initial deployment.
	InitialTasks int
	// Ticks is the number of simulation ticks the engine executed — the
	// scale sweep's throughput denominator.
	Ticks int64
	// Final is the end-of-run invariant state — the conservation balance,
	// suspended stages, pending adaptations, orphan transfers, and down
	// sites the chaos checker judges.
	Final *chaos.RunStats
}

// Run executes one scenario and collects its result.
func Run(s Scenario) (*Result, error) {
	sc := s.withDefaults()

	top := sc.Topology
	if top == nil {
		top = topology.Generate(topology.DefaultGenConfig(sc.Seed))
	}
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	if sc.Obs != nil {
		sc.Obs.Bind(sched.Now)
		net.SetObserver(sc.Obs)
	}

	if sc.Bandwidth != nil {
		net.SetGlobalFactor(sc.Bandwidth)
	}
	if sc.PerLinkBandwidth {
		pair := int64(0)
		for from := 0; from < top.N(); from++ {
			for to := 0; to < top.N(); to++ {
				if from == to {
					continue
				}
				pair++
				net.SetLinkFactor(topology.SiteID(from), topology.SiteID(to),
					trace.LiveBandwidthFactor(sc.Seed*1000+pair, sc.Duration))
			}
		}
	}

	srcSites := sc.SourceSites
	if srcSites == nil {
		srcSites = top.SitesOfKind(topology.Edge)
	}
	qcfg := queries.Config{
		SourceSites:   srcSites,
		SinkSite:      top.SitesOfKind(topology.DataCenter)[0],
		RatePerSource: sc.RatePerSource,
		RateForSite:   sc.RateForSite,
	}
	q := sc.Query(qcfg)
	if sc.StateBytes > 0 {
		q.Spec.Template.StateBytes = sc.StateBytes
	}

	plannerCfg := physical.PlannerConfig{
		ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8, DefaultParallelism: 1},
		MaxVariants:    sc.MaxVariants,
	}
	best, _, err := physical.PlanQuery(q.Graph, q.Spec, top, plannerCfg)
	if err != nil {
		return nil, fmt.Errorf("plan %s: %w", q.Name, err)
	}

	eng := engine.New(sc.Engine, top, net, sched)
	if sc.Obs != nil {
		eng.SetObserver(sc.Obs)
	}
	if sc.Flight != nil {
		eng.SetFlightRecorder(sc.Flight)
	}
	if err := eng.Deploy(best.Plan); err != nil {
		return nil, fmt.Errorf("deploy %s: %w", q.Name, err)
	}

	if sc.Workload != nil {
		eng.SetWorkloadFactor(sc.Workload)
	}
	if sc.PerSourceWorkload {
		for i, op := range q.SourceOps {
			eng.SetSourceFactor(op, trace.LiveWorkloadFactor(sc.Seed*100+int64(i), sc.Duration))
		}
	}

	ctl := adapt.NewController(sc.Adapt, eng, top, net, sched,
		&adapt.ReplanSpec{Base: q.Graph, Spec: q.Spec, Current: best.Variant, MaxVariants: sc.ReplanMaxVariants})
	if sc.Obs != nil {
		ctl.SetObserver(sc.Obs)
	}

	var plane *ctrlplane.Plane
	if sc.Ctrl != nil {
		ccfg := *sc.Ctrl
		if ccfg.ControllerSite == 0 {
			ccfg.ControllerSite = qcfg.SinkSite // co-locate with the sink DC
		}
		if ccfg.Seed == 0 {
			ccfg.Seed = sc.Seed
		}
		plane = ctrlplane.New(ccfg, eng, net, top, sched, ctl.Observer())
		ctl.AttachControlPlane(plane)
		plane.Start()
		defer plane.Stop()
	}

	if sc.FailFor > 0 {
		sched.At(vclock.Time(sc.FailAt), func(vclock.Time) {
			eng.Fail(vclock.Time(sc.FailFor))
		})
	}

	if sc.CheckpointEvery > 0 {
		rm := adapt.NewRecoveryManager(q.Name, sc.CheckpointEvery, eng, top, sched, nil)
		ctl.AttachRecovery(rm)
		rm.Start()
		defer rm.Stop()
	}
	fs := append([]faults.Fault(nil), sc.Faults...)
	if sc.FaultsFor != nil {
		fs = append(fs, sc.FaultsFor(best.Plan, top)...)
	}
	if len(fs) > 0 {
		inj := faults.NewInjector(eng, net, ctl.Observer())
		inj.SetRecoverer(ctl)
		if plane != nil {
			inj.SetControlPlane(plane)
		}
		if err := inj.Schedule(sched, fs); err != nil {
			return nil, fmt.Errorf("faults %s: %w", q.Name, err)
		}
	}

	res := &Result{Name: sc.Name, InitialTasks: best.Plan.TotalTasks()}
	var lastGen, lastProcessed float64

	collect := func(now vclock.Time) {
		for _, d := range eng.TakeDeliveries() {
			res.Samples = append(res.Samples, WeightedDelay{
				At: d.At, Delay: d.Delay.Seconds(), Weight: d.Count,
			})
		}
		gen, processed, _ := eng.Goodput()
		dg, dp := gen-lastGen, processed-lastProcessed
		lastGen, lastProcessed = gen, processed
		ratio := 1.0
		if dg > 0 {
			ratio = dp / dg
		}
		res.Ratio = append(res.Ratio, TimePoint{T: now, V: ratio})
		if sc.Obs != nil {
			// Periodic goodput samples feed wasptrace's SLO budget math.
			sc.Obs.Emit("goodput.sample",
				obs.F64("ratio", ratio),
				obs.F64("generated", gen),
				obs.F64("processed", processed))
		}
		res.Parallelism = append(res.Parallelism, TimePoint{
			T: now, V: float64(eng.Plan().TotalTasks() - res.InitialTasks),
		})
	}
	sampler := sched.Every(sc.SampleEvery, collect)

	eng.Start()
	ctl.Start()
	if err := sched.RunUntil(vclock.Time(sc.Duration)); err != nil {
		return nil, err
	}
	sampler.Cancel()
	ctl.Stop()
	eng.Stop()
	collect(sched.Now())

	res.Delay = Bucketize(res.Samples, vclock.Time(sc.SampleEvery))
	res.Generated, res.Delivered, res.Dropped = eng.Totals()
	_, processed, _ := eng.Goodput()
	if res.Generated > 0 {
		res.ProcessedPct = 100 * processed / res.Generated
	} else {
		res.ProcessedPct = 100
	}
	res.Lost, res.Restored = eng.Lost()
	res.Ticks = eng.Ticks()
	res.Actions = ctl.Actions()
	res.Obs = ctl.Observer()
	res.Final = finalState(eng, net, res.Obs)
	if plane != nil {
		res.Final.QuarantinedRegions = plane.QuarantinedRegions()
		res.Final.UnackedCommands = plane.UnackedCommands()
		res.Final.WrongActions = plane.WrongActions()
	}
	return res, nil
}

// finalState captures the end-of-run invariant state for chaos checking.
func finalState(eng *engine.Engine, net *netsim.Network, o *obs.Observer) *chaos.RunStats {
	st := &chaos.RunStats{
		Conservation:     eng.Conservation(),
		SuspendedOps:     eng.SuspendedOps(),
		PendingReconfigs: eng.PendingReconfigs(),
		Replanning:       eng.Replanning(),
		ActiveTransfers:  net.ActiveTransfers(),
		DownSites:        eng.DownSites(),
	}
	for _, ev := range o.Events("recovery.complete") {
		if d := ev.Get("recovery_time").Duration(); d > st.MaxRecovery {
			st.MaxRecovery = d
		}
	}
	return st
}

// MeanDelayBetween averages the run's delay samples within [from, to).
func (r *Result) MeanDelayBetween(from, to time.Duration) float64 {
	return Mean(Window(r.Samples, vclock.Time(from), vclock.Time(to)))
}

// DelayPercentile returns the p-quantile of all delay samples.
func (r *Result) DelayPercentile(p float64) float64 {
	return Percentile(r.Samples, p)
}

// MeanRatioBetween averages the processing-ratio series within [from, to).
func (r *Result) MeanRatioBetween(from, to time.Duration) float64 {
	var sum float64
	n := 0
	for _, p := range r.Ratio {
		if p.T >= vclock.Time(from) && p.T < vclock.Time(to) {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
