package experiment

import (
	"math"
	"sort"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// migBench is the controlled single-stage testbed of §8.7: one source at
// an edge site feeding a stateful aggregation co-located with it, sinking
// at a data center. The experiments force a migration of the stateful
// stage at a fixed time and measure the transition (suspension) and
// stabilization overheads under different migration strategies.
type migBench struct {
	top   *topology.Topology
	net   *netsim.Network
	sched *vclock.Scheduler
	eng   *engine.Engine

	srcOp, stageOp, sinkOp plan.OpID
	srcSite                topology.SiteID
	sinkSite               topology.SiteID

	samples []WeightedDelay
}

// newMigBench builds the testbed with the given operator state size.
func newMigBench(seed int64, stateBytes float64) (*migBench, error) {
	top := topology.Generate(topology.DefaultGenConfig(seed))
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)

	srcSite := top.SitesOfKind(topology.Edge)[0]
	sinkSite := top.SitesOfKind(topology.DataCenter)[0]

	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: srcSite,
		Selectivity: 1, OutEventBytes: 50, SourceRate: 5000,
	})
	stage := g.AddOperator(plan.Operator{
		Name: "agg", Kind: plan.KindAggregate, Stateful: true, Splittable: true,
		Selectivity: 0.05, OutEventBytes: 50, CostPerEvent: 1,
		StateBytes: stateBytes, Window: 10 * time.Second,
	})
	sink := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: sinkSite})
	g.MustConnect(src, stage)
	g.MustConnect(stage, sink)

	pp, err := physical.FromLogical(g)
	if err != nil {
		return nil, err
	}
	pp.Stages[src].Sites = []topology.SiteID{srcSite}
	pp.Stages[stage].Sites = []topology.SiteID{srcSite} // state accumulates at the edge
	pp.Stages[sink].Sites = []topology.SiteID{sinkSite}

	eng := engine.New(engine.Config{SlotRate: ExperimentSlotRate}, top, net, sched)
	if err := eng.Deploy(pp); err != nil {
		return nil, err
	}
	eng.Start()
	return &migBench{
		top: top, net: net, sched: sched, eng: eng,
		srcOp: src, stageOp: stage, sinkOp: sink,
		srcSite: srcSite, sinkSite: sinkSite,
	}, nil
}

// runUntil advances the bench, harvesting delay samples.
func (b *migBench) runUntil(t time.Duration) error {
	if err := b.sched.RunUntil(vclock.Time(t)); err != nil {
		return err
	}
	for _, d := range b.eng.TakeDeliveries() {
		b.samples = append(b.samples, WeightedDelay{At: d.At, Delay: d.Delay.Seconds(), Weight: d.Count})
	}
	return nil
}

// candidateDests lists sites (other than the stage's current one) that can
// host the stage: a free slot, enough inbound bandwidth for the stream,
// and enough outbound bandwidth toward the sink — so the execution
// eventually stabilizes regardless of strategy (§8.7.1). Results are
// sorted by descending migration bandwidth from the current site.
func (b *migBench) candidateDests(now vclock.Time) []topology.SiteID {
	const streamBytes = 5000 * 50 // events/s × bytes
	free := b.eng.FreeSlots()
	cur := b.eng.Plan().Stages[b.stageOp].Sites[0]
	var out []topology.SiteID
	for s := 0; s < b.top.N(); s++ {
		site := topology.SiteID(s)
		if site == cur || free[site] < 1 {
			continue
		}
		if b.net.Capacity(b.srcSite, site, now) < streamBytes*1.25 {
			continue
		}
		if b.net.Capacity(site, b.sinkSite, now) < streamBytes*0.05*1.25 {
			continue
		}
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool {
		return b.net.Capacity(cur, out[i], now) > b.net.Capacity(cur, out[j], now)
	})
	return out
}

// moveStage reconfigures the stage onto dests, transferring
// bytesPerTransfer from the current site to every destination, and
// returns a pointer that will hold the completion time.
func (b *migBench) moveStage(dests []topology.SiteID, bytesPerTransfer float64) (*vclock.Time, error) {
	cur := b.eng.Plan().Stages[b.stageOp].Sites[0]
	var migs []engine.Migration
	for _, d := range dests {
		if bytesPerTransfer > 0 {
			migs = append(migs, engine.Migration{FromSite: cur, ToSite: d, Bytes: bytesPerTransfer})
		}
	}
	doneAt := new(vclock.Time)
	err := b.eng.Reconfigure(b.stageOp, dests, migs, func(now vclock.Time) { *doneAt = now })
	if err != nil {
		return nil, err
	}
	return doneAt, nil
}

// Overhead is the §8.7 overhead breakdown of one migration.
type Overhead struct {
	// Transition is the suspension time: migration start to the slowest
	// transfer completing.
	Transition time.Duration
	// Stabilize is the time after the transition until sink delay
	// returned below the stabilization threshold.
	Stabilize time.Duration
}

// Total returns transition + stabilization.
func (o Overhead) Total() time.Duration { return o.Transition + o.Stabilize }

// measureOverhead computes the breakdown given the adaptation start, the
// transfer completion, and the delay samples: stabilization ends at the
// first delivery after the transition whose delay is back under
// `threshold` seconds.
func measureOverhead(samples []WeightedDelay, startAt, doneAt vclock.Time, threshold float64) Overhead {
	o := Overhead{Transition: time.Duration(doneAt - startAt)}
	stabilizedAt := vclock.Time(math.MaxInt64)
	for _, s := range samples {
		if s.At > doneAt && s.Delay <= threshold {
			stabilizedAt = s.At
			break
		}
	}
	if stabilizedAt == vclock.Time(math.MaxInt64) {
		if len(samples) > 0 {
			stabilizedAt = samples[len(samples)-1].At
		} else {
			stabilizedAt = doneAt
		}
	}
	if stabilizedAt > doneAt {
		o.Stabilize = time.Duration(stabilizedAt - doneAt)
	}
	return o
}
