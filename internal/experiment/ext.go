package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Extension experiments beyond the paper's figures: the straggler dynamic
// the introduction motivates (§1), and ablations of the design parameters
// DESIGN.md calls out (the α bandwidth headroom of §4.1, the monitoring
// interval of §8.2, and the literal-vs-weighted reading of the bandwidth
// constraints).

// StragglerRun is one policy arm of the straggler-recovery extension.
type StragglerRun struct {
	Policy adapt.Policy
	Result *Result
	// StraggleWindow mean delay (during the slowdown) and post-recovery
	// mean delay.
	During, After float64
}

// RunStraggler injects a slow node under the Top-K query: at t=200 s the
// busiest combine's site degrades to 25% capacity for 400 s. WASP
// diagnoses the compute bottleneck (§3.2) and scales the operator; the
// No-Adapt arm rides it out.
func RunStraggler(seed int64) ([]StragglerRun, error) {
	const (
		duration    = 900 * time.Second
		straggleAt  = 200 * time.Second
		straggleEnd = 600 * time.Second
		slowFactor  = 0.25
	)
	policies := []adapt.Policy{adapt.PolicyNone, adapt.PolicyWASP}
	jobs := make([]func() (StragglerRun, error), len(policies))
	for i, policy := range policies {
		jobs[i] = func() (StragglerRun, error) {
			top := topology.Generate(topology.DefaultGenConfig(seed))
			net := netsim.New(top)
			sched := vclock.NewScheduler(nil)
			qcfg := queries.Config{
				SourceSites: top.SitesOfKind(topology.Edge),
				SinkSite:    top.SitesOfKind(topology.DataCenter)[0],
			}
			q := queries.TopKTopics(qcfg)
			best, _, err := physical.PlanQuery(q.Graph, q.Spec, top, physical.PlannerConfig{
				ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8, DefaultParallelism: 1},
				MaxVariants:    40,
			})
			if err != nil {
				return StragglerRun{}, err
			}
			eng := engine.New(EngineConfig(policy), top, net, sched)
			if err := eng.Deploy(best.Plan); err != nil {
				return StragglerRun{}, err
			}
			ctl := adapt.NewController(AdaptConfig(policy), eng, top, net, sched,
				&adapt.ReplanSpec{Base: q.Graph, Spec: q.Spec, Current: best.Variant})

			// Straggle the busiest operator: the combine with the highest
			// expected input rate (a leaf combine consuming two raw branches).
			inRate, _, _, err := best.Plan.Graph.ExpectedRates(1)
			if err != nil {
				return StragglerRun{}, err
			}
			rootID := best.Plan.Graph.Upstream(q.SinkOp)[0]
			for _, id := range best.Plan.Graph.OperatorIDs() {
				op := best.Plan.Graph.Operator(id)
				if op.Kind == plan.KindSource || op.Kind == plan.KindSink {
					continue
				}
				if inRate[id] > inRate[rootID] {
					rootID = id
				}
			}
			site := best.Plan.Stages[rootID].Sites[0]
			sched.At(vclock.Time(straggleAt), func(vclock.Time) {
				eng.InjectStraggler(rootID, site, slowFactor)
			})
			sched.At(vclock.Time(straggleEnd), func(vclock.Time) {
				eng.InjectStraggler(rootID, site, 1)
			})

			var samples []WeightedDelay
			collector := sched.Every(20*time.Second, func(vclock.Time) {
				for _, d := range eng.TakeDeliveries() {
					samples = append(samples, WeightedDelay{At: d.At, Delay: d.Delay.Seconds(), Weight: d.Count})
				}
			})
			eng.Start()
			ctl.Start()
			if err := sched.RunUntil(vclock.Time(duration)); err != nil {
				return StragglerRun{}, err
			}
			collector.Cancel()
			for _, d := range eng.TakeDeliveries() {
				samples = append(samples, WeightedDelay{At: d.At, Delay: d.Delay.Seconds(), Weight: d.Count})
			}

			gen, proc, _ := eng.Goodput()
			pct := 100.0
			if gen > 0 {
				pct = 100 * proc / gen
			}
			return StragglerRun{
				Policy: policy,
				Result: &Result{
					Name:         fmt.Sprintf("straggler-%s", policy),
					Samples:      samples,
					ProcessedPct: pct,
					Actions:      ctl.Actions(),
					Obs:          ctl.Observer(),
				},
				During: Mean(Window(samples, vclock.Time(straggleAt+100*time.Second), vclock.Time(straggleEnd))),
				After:  Mean(Window(samples, vclock.Time(straggleEnd+100*time.Second), vclock.Time(duration))),
			}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatStraggler renders the straggler extension results.
func FormatStraggler(runs []StragglerRun) string {
	out := "Extension: straggler recovery (root combine at 25% capacity during t=[200,600))\n"
	var rows [][]string
	for _, r := range runs {
		rows = append(rows, []string{
			r.Policy.String(),
			Fmt(r.During),
			Fmt(r.After),
			Fmt(r.Result.ProcessedPct),
			summarizeActions(r.Result.Actions),
		})
	}
	return out + Table([]string{"policy", "delay during (s)", "delay after (s)", "processed %", "actions"}, rows)
}

// AblationRow is one configuration of a design-parameter sweep.
type AblationRow struct {
	Label     string
	MeanDelay float64
	P95Delay  float64
	Actions   int
	Processed float64
}

// RunAlphaAblation sweeps the bandwidth-utilization threshold α (§4.1):
// setting it too high magnifies mis-estimation; too low over-constrains
// placements. The workload is the fig8 Top-K scenario.
func RunAlphaAblation(seed int64) ([]AblationRow, error) {
	alphas := []float64{0.5, 0.65, 0.8, 0.9, 0.95}
	jobs := make([]func() (AblationRow, error), len(alphas))
	for i, alpha := range alphas {
		jobs[i] = func() (AblationRow, error) {
			acfg := AdaptConfig(adapt.PolicyWASP)
			acfg.Alpha = alpha
			res, err := Run(Scenario{
				Name:      fmt.Sprintf("alpha-%.2f", alpha),
				Seed:      seed,
				Duration:  1000 * time.Second,
				Query:     queries.TopKTopics,
				Engine:    EngineConfig(adapt.PolicyWASP),
				Adapt:     acfg,
				Workload:  trace.Steps(200*time.Second, 1, 2, 1, 1, 1),
				Bandwidth: trace.Steps(200*time.Second, 1, 1, 1, 0.5, 1),
			})
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Label:     fmt.Sprintf("α=%.2f", alpha),
				MeanDelay: Mean(res.Samples),
				P95Delay:  res.DelayPercentile(0.95),
				Actions:   len(res.Actions),
				Processed: res.ProcessedPct,
			}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// RunMonitorIntervalAblation sweeps the monitoring interval (§8.2 sets
// 40 s "to allow any adapted query to stabilize"): shorter reacts faster
// but risks thrashing; longer leaves bottlenecks unattended.
func RunMonitorIntervalAblation(seed int64) ([]AblationRow, error) {
	intervals := []time.Duration{10 * time.Second, 20 * time.Second, 40 * time.Second, 80 * time.Second, 160 * time.Second}
	jobs := make([]func() (AblationRow, error), len(intervals))
	for i, interval := range intervals {
		jobs[i] = func() (AblationRow, error) {
			acfg := AdaptConfig(adapt.PolicyWASP)
			acfg.MonitorInterval = interval
			res, err := Run(Scenario{
				Name:      fmt.Sprintf("monitor-%v", interval),
				Seed:      seed,
				Duration:  1000 * time.Second,
				Query:     queries.TopKTopics,
				Engine:    EngineConfig(adapt.PolicyWASP),
				Adapt:     acfg,
				Workload:  trace.Steps(200*time.Second, 1, 2, 1, 1, 1),
				Bandwidth: trace.Steps(200*time.Second, 1, 1, 1, 0.5, 1),
			})
			if err != nil {
				return AblationRow{}, err
			}
			return AblationRow{
				Label:     interval.String(),
				MeanDelay: Mean(res.Samples),
				P95Delay:  res.DelayPercentile(0.95),
				Actions:   len(res.Actions),
				Processed: res.ProcessedPct,
			}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// RunConstraintAblation compares the weighted per-endpoint reading of the
// placement bandwidth constraints (this repo's default) against the
// paper's literal conservative form, via initial-plan feasibility and
// cost on the Top-K query.
func RunConstraintAblation(seed int64) ([]AblationRow, error) {
	arms := []bool{false, true}
	jobs := make([]func() (AblationRow, error), len(arms))
	for i, conservative := range arms {
		jobs[i] = func() (AblationRow, error) {
			// Regenerate the (deterministic) topology per arm so concurrent
			// jobs share nothing.
			top := topology.Generate(topology.DefaultGenConfig(seed))
			qcfg := queries.Config{
				SourceSites: top.SitesOfKind(topology.Edge),
				SinkSite:    top.SitesOfKind(topology.DataCenter)[0],
			}
			q := queries.TopKTopics(qcfg)
			_, all, err := physical.PlanQuery(q.Graph, q.Spec, top, physical.PlannerConfig{
				ScheduleConfig: physical.ScheduleConfig{
					Alpha: 0.8, DefaultParallelism: 1, Conservative: conservative,
				},
				MaxVariants: 40,
			})
			label := "weighted"
			if conservative {
				label = "conservative"
			}
			row := AblationRow{Label: label}
			if err == nil {
				row.Actions = len(all) // schedulable variants
				row.MeanDelay = all[0].Cost
			}
			return row, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatAblation renders a sweep as a table.
func FormatAblation(title string, rows []AblationRow) string {
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Label, Fmt(r.MeanDelay), Fmt(r.P95Delay),
			fmt.Sprintf("%d", r.Actions), Fmt(r.Processed),
		})
	}
	return title + "\n" + Table([]string{"config", "mean delay (s)", "p95 (s)", "actions", "processed %"}, table)
}
