package experiment

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/trace"
)

// The figure tests run shortened versions of the §8 experiments (the
// benchmarks and waspbench run the full durations) and assert the
// qualitative findings the paper reports.

func TestRunnerBasics(t *testing.T) {
	res, err := Run(Scenario{
		Name:     "basic",
		Seed:     3,
		Duration: 300 * time.Second,
		Query:    queries.EventsOfInterest,
		Engine:   EngineConfig(adapt.PolicyNone),
		Adapt:    AdaptConfig(adapt.PolicyNone),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated <= 0 || len(res.Samples) == 0 {
		t.Fatalf("no activity: %+v", res)
	}
	if res.ProcessedPct < 95 {
		t.Fatalf("healthy run processed only %.1f%%", res.ProcessedPct)
	}
	if len(res.Ratio) == 0 || len(res.Parallelism) == 0 || len(res.Delay) == 0 {
		t.Fatal("missing series")
	}
	if res.InitialTasks <= 0 {
		t.Fatal("no initial tasks")
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() *Result {
		res, err := Run(Scenario{
			Name:     "det",
			Seed:     7,
			Duration: 200 * time.Second,
			Query:    queries.TopKTopics,
			Engine:   EngineConfig(adapt.PolicyWASP),
			Adapt:    AdaptConfig(adapt.PolicyWASP),
			Workload: trace.Steps(100*time.Second, 1, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Generated != b.Generated || a.Delivered != b.Delivered || a.ProcessedPct != b.ProcessedPct {
		t.Fatalf("replays differ: %+v vs %+v", a, b)
	}
	if len(a.Actions) != len(b.Actions) {
		t.Fatalf("action logs differ: %d vs %d", len(a.Actions), len(b.Actions))
	}
}

func TestFig8Shapes(t *testing.T) {
	const duration = 750 * time.Second
	runs, err := RunFig8(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 9 {
		t.Fatalf("runs = %d, want 3 queries x 3 policies", len(runs))
	}
	byKey := make(map[string]*Result)
	for _, r := range runs {
		byKey[r.Query+"/"+r.Policy.String()] = r.Result
	}
	for _, q := range []string{"ysb", "topk", "eoi"} {
		noAdapt := byKey[q+"/no-adapt"]
		degrade := byKey[q+"/degrade"]
		wasp := byKey[q+"/wasp"]
		// No Adapt and WASP never drop; Degrade drops under the 2x phase.
		if noAdapt.Dropped != 0 || wasp.Dropped != 0 {
			t.Fatalf("%s: re-opt/no-adapt dropped events", q)
		}
		if degrade.Dropped <= 0 {
			t.Fatalf("%s: degrade dropped nothing", q)
		}
		// WASP preserves quality: processed fraction at least Degrade's.
		if wasp.ProcessedPct < degrade.ProcessedPct-0.5 {
			t.Fatalf("%s: wasp processed %.1f%% < degrade %.1f%%",
				q, wasp.ProcessedPct, degrade.ProcessedPct)
		}
		if len(noAdapt.Actions) != 0 {
			t.Fatalf("%s: no-adapt acted", q)
		}
	}
	// The representative Top-K query: WASP adapts and keeps the overload
	// phase ratio above No Adapt's.
	phase := duration / 5
	noAdapt := byKey["topk/no-adapt"]
	wasp := byKey["topk/wasp"]
	if len(wasp.Actions) == 0 {
		t.Fatal("topk: wasp took no actions")
	}
	rNo := noAdapt.MeanRatioBetween(phase, 2*phase)
	rWASP := wasp.MeanRatioBetween(phase, 2*phase)
	if rNo >= 0.995 {
		t.Fatalf("topk: overload phase did not constrain no-adapt (ratio %.3f)", rNo)
	}
	if rWASP <= rNo {
		t.Fatalf("topk: wasp ratio %.3f not above no-adapt %.3f", rWASP, rNo)
	}
	// Formatting runs without error and mentions every policy.
	out := FormatFig8(runs, duration) + FormatFig9(runs, duration)
	for _, needle := range []string{"no-adapt", "degrade", "wasp", "ysb", "topk", "eoi"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("formatted output missing %q", needle)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	const duration = 750 * time.Second
	runs, err := RunFig10(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d", len(runs))
	}
	byPolicy := make(map[adapt.Policy]*Result)
	for _, r := range runs {
		byPolicy[r.Policy] = r.Result
	}
	// Only Scale changes parallelism (Fig 10c).
	for _, p := range []adapt.Policy{adapt.PolicyNone, adapt.PolicyReassign, adapt.PolicyReplan} {
		for _, pt := range byPolicy[p].Parallelism {
			if pt.V != 0 {
				t.Fatalf("%v changed parallelism", p)
			}
		}
	}
	scaled := false
	for _, pt := range byPolicy[adapt.PolicyScale].Parallelism {
		if pt.V > 0 {
			scaled = true
		}
	}
	if !scaled {
		t.Fatal("scale arm never scaled")
	}
	out := FormatFig10(runs, duration)
	if !strings.Contains(out, "Figure 10(a)") || !strings.Contains(out, "re-plan") {
		t.Fatalf("fig10 format malformed")
	}
}

func TestFig11AndFig12Shapes(t *testing.T) {
	const duration = 600 * time.Second
	runs, err := RunFig11(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[adapt.Policy]*Result)
	for _, r := range runs {
		byPolicy[r.Policy] = r.Result
	}
	wasp := byPolicy[adapt.PolicyWASP]
	degrade := byPolicy[adapt.PolicyDegrade]
	if wasp.Dropped != 0 {
		t.Fatal("wasp dropped events in the live run")
	}
	if degrade.Dropped <= 0 {
		t.Fatal("degrade dropped nothing in the live run")
	}
	if wasp.ProcessedPct <= degrade.ProcessedPct {
		t.Fatalf("wasp processed %.1f%% <= degrade %.1f%%", wasp.ProcessedPct, degrade.ProcessedPct)
	}
	out := FormatFig11(runs, duration) + FormatFig12(runs)
	if !strings.Contains(out, "failure") || !strings.Contains(out, "processed %") {
		t.Fatal("fig11/12 format malformed")
	}
}

func TestFig13Shapes(t *testing.T) {
	runs, err := RunFig13(1)
	if err != nil {
		t.Fatal(err)
	}
	byStrat := make(map[adapt.MigrationStrategy]Fig13Run)
	for _, r := range runs {
		byStrat[r.Strategy] = r
	}
	noMig := byStrat[adapt.MigrateNone].Overhead.Total()
	waspO := byStrat[adapt.MigrateNetworkAware].Overhead.Total()
	random := byStrat[adapt.MigrateRandom].Overhead.Total()
	distant := byStrat[adapt.MigrateDistant].Overhead.Total()
	// Paper §8.7.1: No Migrate ~0 transition; network-aware migration
	// beats the WAN-agnostic mappings.
	if noMig > 5*time.Second {
		t.Fatalf("No Migrate overhead %v too large", noMig)
	}
	if !(waspO < random && waspO < distant) {
		t.Fatalf("network-aware %v not below random %v / distant %v", waspO, random, distant)
	}
	if !(random <= distant) {
		t.Fatalf("random %v above distant %v", random, distant)
	}
	out := FormatFig13(runs)
	if !strings.Contains(out, "No Migrate") || !strings.Contains(out, "transition") {
		t.Fatal("fig13 format malformed")
	}
}

func TestFig14Shapes(t *testing.T) {
	runs, err := RunFig14(1)
	if err != nil {
		t.Fatal(err)
	}
	get := func(part bool, size int) Fig14Run {
		for _, r := range runs {
			if r.Partitioned == part && r.StateMB == size {
				return r
			}
		}
		t.Fatalf("missing run part=%v size=%d", part, size)
		return Fig14Run{}
	}
	// Overheads grow with state size for Default.
	if !(get(false, 512).Overhead.Total() > get(false, 64).Overhead.Total()) {
		t.Fatal("default overhead does not grow with state size")
	}
	// Partitioning pays off for large state (paper: 256 MB and 512 MB).
	for _, size := range []int{256, 512} {
		d, p := get(false, size), get(true, size)
		if !(p.Overhead.Total() < d.Overhead.Total()) {
			t.Fatalf("%dMB: partitioned overhead %v not below default %v",
				size, p.Overhead.Total(), d.Overhead.Total())
		}
		if !(p.Delay95 < d.Delay95) {
			t.Fatalf("%dMB: partitioned p95 %.1f not below default %.1f", size, p.Delay95, d.Delay95)
		}
		if p.Parts < 2 {
			t.Fatalf("%dMB: partitioned used %d parts", size, p.Parts)
		}
	}
	// Zero state: both modes are cheap.
	if get(false, 0).Overhead.Total() > 5*time.Second {
		t.Fatal("zero-state migration not cheap")
	}
	out := FormatFig14(runs)
	if !strings.Contains(out, "Partitioned") || !strings.Contains(out, "512MB") {
		t.Fatal("fig14 format malformed")
	}
}
