package experiment

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// runObserved executes one fixed WASP scenario with a shared observer and
// returns its JSONL record. The workload doubles mid-run so the controller
// has something to adapt to.
func runObserved(t *testing.T) string {
	t.Helper()
	o := obs.New(func() vclock.Time { return 0 })
	duration := 400 * time.Second
	phase := duration / 4
	sc := Scenario{
		Name:      "obs-det",
		Seed:      1,
		Duration:  duration,
		Engine:    EngineConfig(adapt.PolicyWASP),
		Adapt:     AdaptConfig(adapt.PolicyWASP),
		Workload:  trace.Steps(phase, 1, 2, 1, 1),
		Bandwidth: trace.Steps(phase, 1, 1, 0.5, 1),
		Obs:       o,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Actions) == 0 {
		t.Fatal("scenario produced no adaptations; cannot exercise decision tracing")
	}
	var b strings.Builder
	if err := res.Obs.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunObsDeterministic checks the headline acceptance property: two
// same-seed runs produce byte-identical JSONL timelines, and every
// adaptation action is recorded inside a decision span that carries the
// diagnosis evidence and sits under a controller round.
func TestRunObsDeterministic(t *testing.T) {
	a := runObserved(t)
	b := runObserved(t)
	if a != b {
		t.Fatal("same-seed runs produced different JSONL records")
	}

	actions, decisions, rounds, diagnoses := 0, 0, 0, 0
	for _, ln := range strings.Split(strings.TrimSuffix(a, "\n"), "\n") {
		switch {
		case strings.Contains(ln, `"name":"controller.round"`):
			rounds++
			if strings.Contains(ln, `"name":"diagnose"`) {
				diagnoses++
				if !strings.Contains(ln, `"lambda_in_hat"`) || !strings.Contains(ln, `"lambda_p"`) {
					t.Errorf("diagnose event missing evidence: %s", ln)
				}
			}
		case strings.Contains(ln, `"name":"decision"`):
			decisions++
			if strings.Contains(ln, `"parent":0,`) {
				t.Errorf("decision span has no parent round: %s", ln)
			}
		}
		// Action events must only ever appear nested inside a span —
		// never as bare top-level events.
		if strings.Contains(ln, `"name":"action"`) {
			actions++
			if !strings.Contains(ln, `"type":"span"`) {
				t.Errorf("action event not nested in a span: %s", ln)
			}
			if !strings.Contains(ln, `"name":"decision"`) {
				t.Errorf("action event outside a decision span: %s", ln)
			}
		}
		// Migrations started by a decision parent under it.
		if strings.Contains(ln, `"name":"engine.reconfigure"`) && strings.Contains(ln, `"parent":0,`) {
			t.Errorf("reconfigure span has no parent decision: %s", ln)
		}
	}
	if rounds == 0 || decisions == 0 || actions == 0 || diagnoses == 0 {
		t.Fatalf("timeline incomplete: rounds=%d decisions=%d actions=%d diagnoses=%d",
			rounds, decisions, actions, diagnoses)
	}
}
