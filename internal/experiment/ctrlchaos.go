package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/chaos"
	"github.com/wasp-stream/wasp/internal/ctrlplane"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// The ctrlchaos sweep degrades the control plane instead of the data
// plane: a grid of telemetry-loss rates crossed with control-partition
// durations measures how goodput, wrong actions (commands issued into a
// partitioned region) and quarantine/re-admission latency respond, and a
// randomized seed sweep throws mixed data+control fault schedules at the
// full policy and checks the run-end invariants — including the two
// control-plane ones (no region left quarantined after heal, no command
// left un-acked).

// ctrlPartitionAt places the control partition off the controller's 40 s
// monitoring grid, so the first impaired round sees evidence of a
// deterministic age rather than racing the fault application.
const ctrlPartitionAt = 210 * time.Second

// CtrlChaosCell is one grid point of the ctrlchaos sweep.
type CtrlChaosCell struct {
	// LossRate is the telemetry loss probability (0 disables the fault).
	LossRate float64
	// PartitionFor is the ctrldown duration over the victim region.
	PartitionFor time.Duration
	// Region is the partitioned quarantine domain.
	Region int
	// ProcessedPct is end-of-run goodput.
	ProcessedPct float64
	// Actions and WrongActions count completed adaptations and commands
	// issued at sites inside the partitioned region while it was down.
	Actions      int
	WrongActions int
	// QuarantineLat is partition onset → quarantine entry; ReadmitLat is
	// partition heal → re-admission (0 = the event never happened).
	QuarantineLat time.Duration
	ReadmitLat    time.Duration
	// Violations are the broken run-end invariants (empty = clean).
	Violations []chaos.Violation
}

// CtrlChaosResult bundles the deterministic grid with the randomized
// invariant sweep.
type CtrlChaosResult struct {
	Cells []CtrlChaosCell
	Runs  []ChaosRun
}

// RunCtrlChaos executes the control-plane degradation study. The grid
// uses one fixed seed (baseSeed) so cells differ only in the injected
// impairment; the invariant sweep uses seeds [baseSeed, baseSeed+n) with
// chaos schedules widened to include the control fault kinds. Both parts
// run on the experiment pool and return in submission order regardless of
// parallelism.
func RunCtrlChaos(baseSeed int64, n int, duration time.Duration) (CtrlChaosResult, error) {
	if n <= 0 {
		n = 8
	}
	if duration == 0 {
		duration = chaosDuration
	}
	losses := []float64{0, 0.25, 0.5}
	parts := []time.Duration{60 * time.Second, 120 * time.Second, 180 * time.Second}
	var jobs []func() (CtrlChaosCell, error)
	for _, loss := range losses {
		for _, part := range parts {
			loss, part := loss, part
			jobs = append(jobs, func() (CtrlChaosCell, error) {
				return runCtrlCell(baseSeed, duration, loss, part)
			})
		}
	}
	cells, err := runJobs(Parallelism(), jobs)
	if err != nil {
		return CtrlChaosResult{}, err
	}
	runs, err := runCtrlSeeds(baseSeed, n, duration)
	if err != nil {
		return CtrlChaosResult{}, err
	}
	return CtrlChaosResult{Cells: cells, Runs: runs}, nil
}

// runCtrlCell executes one grid point: a fixed telemloss+ctrldown script
// against the full WASP policy over an impaired control plane.
func runCtrlCell(seed int64, duration time.Duration, loss float64, part time.Duration) (CtrlChaosCell, error) {
	region := -1
	res, err := Run(Scenario{
		Name:            fmt.Sprintf("ctrlchaos-loss%d-part%ds", int(loss*100), int(part.Seconds())),
		Seed:            seed,
		Duration:        duration,
		Engine:          EngineConfig(adapt.PolicyWASP),
		Adapt:           AdaptConfig(adapt.PolicyWASP),
		CheckpointEvery: 30 * time.Second,
		Ctrl:            &ctrlplane.Config{},
		FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
			region = victimRegion(top)
			fs := []faults.Fault{{
				Kind: faults.CtrlDown, At: ctrlPartitionAt, For: part, Region: region,
			}}
			if loss > 0 {
				fs = append(fs, faults.Fault{
					Kind: faults.TelemLoss, At: 60 * time.Second, For: 600 * time.Second, Rate: loss,
				})
			}
			return fs
		},
	})
	if err != nil {
		return CtrlChaosCell{}, err
	}
	cell := CtrlChaosCell{
		LossRate:     loss,
		PartitionFor: part,
		Region:       region,
		ProcessedPct: res.ProcessedPct,
		Actions:      len(res.Actions),
		WrongActions: res.Final.WrongActions,
		Violations:   chaos.Check(*res.Final, ChaosRecoveryBound),
	}
	onset := vclock.Time(ctrlPartitionAt)
	heal := onset + vclock.Time(part)
	for _, ev := range res.Obs.Events("ctrl.quarantine") {
		if int(ev.Get("region").Int64()) == region && ev.At >= onset {
			cell.QuarantineLat = time.Duration(ev.At - onset)
			break
		}
	}
	for _, ev := range res.Obs.Events("ctrl.readmit") {
		if int(ev.Get("region").Int64()) == region && ev.At >= heal {
			cell.ReadmitLat = time.Duration(ev.At - heal)
			break
		}
	}
	return cell, nil
}

// victimRegion picks the partition target: the first quarantine domain
// that does not host the controller (which co-locates with the sink DC),
// so the controller itself stays up while the region goes dark.
func victimRegion(top *topology.Topology) int {
	ctrl := top.SitesOfKind(topology.DataCenter)[0]
	for r, sites := range ctrlplane.Domains(top, ctrlplane.Config{}) {
		hosts := false
		for _, s := range sites {
			if s == ctrl {
				hosts = true
				break
			}
		}
		if !hosts {
			return r
		}
	}
	return 0
}

// runCtrlSeeds is the randomized half: chaos schedules widened with the
// control fault kinds, judged by the full invariant set.
func runCtrlSeeds(baseSeed int64, n int, duration time.Duration) ([]ChaosRun, error) {
	jobs := make([]func() (ChaosRun, error), n)
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(i)
		jobs[i] = func() (ChaosRun, error) {
			var schedule []faults.Fault
			res, err := Run(Scenario{
				Name:            fmt.Sprintf("ctrlchaos-seed-%d", seed),
				Seed:            seed,
				Duration:        duration,
				Engine:          EngineConfig(adapt.PolicyWASP),
				Adapt:           AdaptConfig(adapt.PolicyWASP),
				CheckpointEvery: 30 * time.Second,
				Ctrl:            &ctrlplane.Config{},
				FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
					schedule = chaos.Generate(seed, chaos.Config{
						Sites:       top.N(),
						Duration:    duration,
						CtrlRegions: len(ctrlplane.Domains(top, ctrlplane.Config{})),
					})
					return schedule
				},
			})
			if err != nil {
				return ChaosRun{}, err
			}
			return ChaosRun{
				Seed:         seed,
				Faults:       schedule,
				Actions:      len(res.Actions),
				Aborts:       len(res.Obs.Events("adapt.abort")),
				Recoveries:   len(res.Obs.Events("recovery.complete")),
				ProcessedPct: res.ProcessedPct,
				MaxRecovery:  res.Final.MaxRecovery,
				Violations:   chaos.Check(*res.Final, ChaosRecoveryBound),
			}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// CtrlCommandsInRegion counts ctrl.command events issued in (from, to]
// whose target sites intersect the region's site set — the "actions
// aimed at a dark region" the staleness gate and quarantine exist to
// prevent. Exported for the acceptance test and wasptrace.
func CtrlCommandsInRegion(o *obs.Observer, region []topology.SiteID, from, to vclock.Time) int {
	inRegion := make(map[int]bool, len(region))
	for _, s := range region {
		inRegion[int(s)] = true
	}
	count := 0
	for _, ev := range o.Events("ctrl.command") {
		if ev.At <= from || ev.At > to {
			continue
		}
		// The sites attr is fmt.Sprint of a []SiteID: "[3 7 12]".
		for _, part := range strings.Fields(strings.Trim(ev.Get("sites").Str(), "[]")) {
			var s int
			if _, err := fmt.Sscanf(part, "%d", &s); err == nil && inRegion[s] {
				count++
				break
			}
		}
	}
	return count
}

// FormatCtrlChaos renders the study byte-deterministically: the grid
// first, then the randomized invariant sweep in chaos-sweep format.
func FormatCtrlChaos(r CtrlChaosResult) string {
	var b strings.Builder
	b.WriteString("Control-plane chaos: telemetry loss x region partition vs the staleness-aware controller\n")
	var rows [][]string
	violated := 0
	for _, c := range r.Cells {
		verdict := "ok"
		if len(c.Violations) > 0 {
			verdict = fmt.Sprintf("%d violation(s)", len(c.Violations))
			violated++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d%%", int(c.LossRate*100)),
			c.PartitionFor.String(),
			fmt.Sprint(c.Region),
			Fmt(c.ProcessedPct),
			fmt.Sprint(c.Actions),
			fmt.Sprint(c.WrongActions),
			latOrDash(c.QuarantineLat),
			latOrDash(c.ReadmitLat),
			verdict,
		})
	}
	b.WriteString(Table(
		[]string{"telem loss", "partition", "region", "processed %", "actions", "wrong", "quarantine lat", "readmit lat", "invariants"},
		rows))
	for _, c := range r.Cells {
		for _, v := range c.Violations {
			fmt.Fprintf(&b, "  FAIL loss=%d%% part=%s %s\n", int(c.LossRate*100), c.PartitionFor, v)
		}
	}
	if violated == 0 {
		fmt.Fprintf(&b, "\nall %d grid cells passed every invariant\n", len(r.Cells))
	}
	b.WriteString("\nRandomized mixed data+control fault schedules:\n")
	b.WriteString(FormatChaos(r.Runs))
	return b.String()
}

func latOrDash(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(100 * time.Millisecond).String()
}
