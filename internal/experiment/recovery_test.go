package experiment

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestRunRecoverySweep(t *testing.T) {
	runs, err := RunRecovery(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5 {
		t.Fatalf("runs = %d", len(runs))
	}
	byInterval := make(map[time.Duration]RecoveryRun)
	for _, r := range runs {
		byInterval[r.CheckpointEvery] = r
		if !r.Recovered {
			t.Errorf("ckpt=%v: site crash was not recovered by re-assignment", r.CheckpointEvery)
		}
		if r.Degraded {
			t.Errorf("ckpt=%v: degradation engaged although placements existed", r.CheckpointEvery)
		}
		if r.Lost <= 0 {
			t.Errorf("ckpt=%v: crash recorded no loss", r.CheckpointEvery)
		}
		if r.NetLost < -1e-9 {
			t.Errorf("ckpt=%v: restored more than was lost (net %v)", r.CheckpointEvery, r.NetLost)
		}
	}
	// The no-checkpoint arm restores nothing; checkpointed arms claw state
	// back, so their net loss is strictly smaller.
	none := byInterval[0]
	if none.Restored != 0 {
		t.Fatalf("no-checkpoint arm restored %v", none.Restored)
	}
	ck10 := byInterval[10*time.Second]
	if ck10.Restored <= 0 {
		t.Fatalf("10s-checkpoint arm restored nothing (lost %v)", ck10.Lost)
	}
	if ck10.NetLost >= none.NetLost {
		t.Fatalf("checkpointing did not reduce loss: net %v (ckpt 10s) vs %v (none)",
			ck10.NetLost, none.NetLost)
	}
	// Every checkpointed arm bounds its loss below the restart-empty arm
	// (the state-loss bound: at most one interval of state evaporates).
	for iv, r := range byInterval {
		if iv == 0 {
			continue
		}
		if r.NetLost > none.NetLost+1e-9 {
			t.Errorf("ckpt=%v lost more than the no-checkpoint arm: %v vs %v",
				iv, r.NetLost, none.NetLost)
		}
	}
	if FormatRecovery(runs) == "" {
		t.Fatal("empty report")
	}
}

// runFaulted executes one fixed scenario with injected faults (site crash
// with restart, a link blackout, a site straggler) plus checkpoint-driven
// recovery, under a shared observer, and returns its JSONL record.
func runFaulted(t *testing.T) (string, *Result) {
	t.Helper()
	o := obs.New(func() vclock.Time { return 0 })
	sc := Scenario{
		Name:            "fault-det",
		Seed:            5,
		Duration:        700 * time.Second,
		Engine:          EngineConfig(adapt.PolicyWASP),
		Adapt:           AdaptConfig(adapt.PolicyWASP),
		CheckpointEvery: 30 * time.Second,
		Faults: []faults.Fault{
			{Kind: faults.LinkSlow, At: 100 * time.Second, For: 150 * time.Second, From: 0, To: 1, Factor: 0.5},
			{Kind: faults.SiteSlow, At: 150 * time.Second, For: 100 * time.Second, Site: 2, Factor: 0.5},
		},
		FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
			return []faults.Fault{{
				Kind: faults.SiteCrash, At: 300 * time.Second, For: 200 * time.Second,
				Site: crashTargetSite(pp),
			}}
		},
		Obs: o,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Obs.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), res
}

// TestFaultInjectionObsDeterministic is the acceptance check for the fault
// path: two same-seed runs with injected faults and checkpoint-driven
// recovery export byte-identical JSONL, and the timeline records the
// faults, the checkpoints, and the recovery.
func TestFaultInjectionObsDeterministic(t *testing.T) {
	a, res := runFaulted(t)
	b, _ := runFaulted(t)
	if a != b {
		t.Fatal("same-seed fault runs produced different JSONL records")
	}
	for _, want := range []string{
		`"name":"fault.inject"`,
		`"name":"fault.heal"`,
		`"name":"fault.site_crash"`,
		`"name":"fault.site_restore"`,
		`"name":"fault.link"`,
		`"name":"checkpoint.round"`,
		`"name":"recovery.complete"`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("timeline missing %s", want)
		}
	}
	recovered := false
	for _, act := range res.Actions {
		if act.Kind == adapt.ActionRecover {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no recover action under injected site crash")
	}
	if res.Restored <= 0 {
		t.Fatal("checkpointed run restored no state")
	}
}
