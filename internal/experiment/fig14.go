package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Fig14Run is one (state size, mode) cell of §8.7.2.
type Fig14Run struct {
	StateMB     int
	Partitioned bool
	Overhead    Overhead
	Delay95     float64
	Parts       int // destinations used (1 for Default)
}

// RunFig14 executes the §8.7.2 state-partitioning experiment: the stage's
// state size is varied over {0, 32, 64, 128, 256, 512} MB and migrated at
// t=180 s either to the single best destination (Default) or — whenever
// the estimated transition exceeds the 30 s threshold — scaled out across
// enough destinations that each partition's transfer fits the threshold
// (Partitioned), transferring |state|/p′ per link in parallel.
func RunFig14(seed int64) ([]Fig14Run, error) {
	const (
		adaptAt   = 180 * time.Second
		runFor    = 900 * time.Second
		threshold = 3.0
		tMax      = 30 * time.Second
		maxParts  = 4
	)
	sizes := []int{0, 32, 64, 128, 256, 512}
	type cell struct {
		partitioned bool
		sizeMB      int
	}
	var cells []cell
	for _, partitioned := range []bool{false, true} {
		for _, sizeMB := range sizes {
			cells = append(cells, cell{partitioned: partitioned, sizeMB: sizeMB})
		}
	}
	jobs := make([]func() (Fig14Run, error), len(cells))
	for i, c := range cells {
		jobs[i] = func() (Fig14Run, error) {
			partitioned, sizeMB := c.partitioned, c.sizeMB
			b, err := newMigBench(seed, float64(sizeMB)*1e6)
			if err != nil {
				return Fig14Run{}, err
			}
			if err := b.runUntil(adaptAt); err != nil {
				return Fig14Run{}, err
			}
			now := b.sched.Now()
			dests := b.candidateDests(now)
			if len(dests) == 0 {
				return Fig14Run{}, fmt.Errorf("fig14: no feasible destination")
			}
			cur := b.eng.Plan().Stages[b.stageOp].Sites[0]

			parts := 1
			if partitioned && sizeMB > 0 {
				// Grow the partition count until each partition's transfer
				// over its own link fits within t_max (or we run out of
				// destinations / hit the parallelism cap).
				for parts < maxParts && parts < len(dests) {
					worst := time.Duration(0)
					per := float64(sizeMB) * 1e6 / float64(parts)
					for _, d := range dests[:parts] {
						t := b.net.EstimateTransferTime(cur, d, per, now)
						if t > worst {
							worst = t
						}
					}
					if worst <= tMax {
						break
					}
					parts++
				}
			}
			chosen := append([]topology.SiteID(nil), dests[:parts]...)
			doneAt, err := b.moveStage(chosen, float64(sizeMB)*1e6/float64(parts))
			if err != nil {
				return Fig14Run{}, err
			}
			if err := b.runUntil(runFor); err != nil {
				return Fig14Run{}, err
			}
			done := *doneAt
			if done == 0 {
				done = vclock.Time(adaptAt) // zero-byte move completes next tick
			}
			overhead := measureOverhead(b.samples, vclock.Time(adaptAt), done, threshold)
			window := Window(b.samples, vclock.Time(adaptAt), vclock.Time(runFor))
			return Fig14Run{
				StateMB:     sizeMB,
				Partitioned: partitioned,
				Overhead:    overhead,
				Delay95:     Percentile(window, 0.95),
				Parts:       parts,
			}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatFig14 renders the 95th-percentile delay and overhead breakdown
// versus state size for Default and Partitioned migration.
func FormatFig14(runs []Fig14Run) string {
	out := "Figure 14: mitigating overhead through operator scaling and state partitioning (t_max = 30 s)\n"
	out += "\nFigure 14(a): 95th-percentile delay (s) vs state size\n"
	header := []string{"mode", "0MB", "32MB", "64MB", "128MB", "256MB", "512MB"}
	row := func(part bool, f func(Fig14Run) string) []string {
		name := "Default"
		if part {
			name = "Partitioned"
		}
		out := []string{name}
		for _, size := range []int{0, 32, 64, 128, 256, 512} {
			for _, r := range runs {
				if r.Partitioned == part && r.StateMB == size {
					out = append(out, f(r))
				}
			}
		}
		return out
	}
	var rows [][]string
	rows = append(rows, row(false, func(r Fig14Run) string { return Fmt(r.Delay95) }))
	rows = append(rows, row(true, func(r Fig14Run) string { return Fmt(r.Delay95) }))
	out += Table(header, rows)

	out += "\nFigure 14(b): adaptation overhead (s), transition+stabilize\n"
	rows = nil
	rows = append(rows, row(false, func(r Fig14Run) string {
		return fmt.Sprintf("%s+%s", Fmt(r.Overhead.Transition.Seconds()), Fmt(r.Overhead.Stabilize.Seconds()))
	}))
	rows = append(rows, row(true, func(r Fig14Run) string {
		return fmt.Sprintf("%s+%s", Fmt(r.Overhead.Transition.Seconds()), Fmt(r.Overhead.Stabilize.Seconds()))
	}))
	out += Table(header, rows)

	out += "\nPartition counts used (Partitioned): "
	for _, size := range []int{0, 32, 64, 128, 256, 512} {
		for _, r := range runs {
			if r.Partitioned && r.StateMB == size {
				out += fmt.Sprintf("%dMB:%d ", size, r.Parts)
			}
		}
	}
	out += "\n"
	return out
}
