package experiment

import (
	"fmt"
	"sort"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
)

// AdaptPhases is the canonical order of the adaptation cycle's phases in
// every report: the §6.2 loop as instrumented by the adapt and engine
// layers (adapt.latency events, wasp_adapt_latency_seconds).
var AdaptPhases = []string{"detect", "plan", "halt", "transfer", "resume"}

// AdaptLatRun is one query's arm of the adaptation-latency experiment:
// the full WASP policy under the fig8 dynamics plus a mid-run site crash,
// with every phase duration captured in the run's observer.
type AdaptLatRun struct {
	Query  string
	Result *Result
	// Durations holds the raw per-phase virtual durations (seconds), in
	// emission order, pulled from the run's adapt.latency events.
	Durations map[string][]float64
}

// RunAdaptLat measures the adaptation cycle's per-phase latency for all
// three queries under the full WASP policy: the fig8 scripted workload
// (2x) and bandwidth (0.5x) shifts trigger re-optimization actions, and a
// site crash at 2/5 of the run (healing at 3/5) drives the recovery
// ladder, so detect, plan, halt, transfer, and resume all accumulate
// observations. duration 0 means the paper's 1500 s.
func RunAdaptLat(seed int64, duration time.Duration) ([]AdaptLatRun, error) {
	if duration == 0 {
		duration = 1500 * time.Second
	}
	phase := duration / 5
	qnames := []string{"ysb", "topk", "eoi"}
	jobs := make([]func() (AdaptLatRun, error), len(qnames))
	for i, qname := range qnames {
		jobs[i] = func() (AdaptLatRun, error) {
			builder, err := QueryByName(qname)
			if err != nil {
				return AdaptLatRun{}, err
			}
			o := obs.New(nil)
			res, err := Run(Scenario{
				Name:            fmt.Sprintf("adaptlat-%s", qname),
				Seed:            seed,
				Duration:        duration,
				Query:           builder,
				Engine:          EngineConfig(adapt.PolicyWASP),
				Adapt:           AdaptConfig(adapt.PolicyWASP),
				Workload:        trace.Steps(phase, 1, 2, 1, 1, 1),
				Bandwidth:       trace.Steps(phase, 1, 1, 1, 0.5, 1),
				CheckpointEvery: 30 * time.Second,
				FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
					return []faults.Fault{{
						Kind: faults.SiteCrash, At: 2 * phase, For: phase,
						Site: crashTargetSite(pp),
					}}
				},
				Obs: o,
			})
			if err != nil {
				return AdaptLatRun{}, fmt.Errorf("adaptlat %s: %w", qname, err)
			}
			return AdaptLatRun{Query: qname, Result: res, Durations: phaseSeconds(o)}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// phaseSeconds extracts every adapt.latency event's duration, grouped by
// phase, in emission order.
func phaseSeconds(o *obs.Observer) map[string][]float64 {
	out := make(map[string][]float64)
	for _, ev := range o.Events("adapt.latency") {
		phase := ev.Get("phase").Str()
		if phase == "" {
			continue
		}
		out[phase] = append(out[phase], ev.Get("dur").Duration().Seconds())
	}
	return out
}

// exactQuantile returns the q-quantile of raw samples (nearest-rank with
// linear interpolation), NaN-free: zero samples yield 0.
func exactQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + (s[lo+1]-s[lo])*frac
}

// FormatAdaptLat renders the per-phase latency breakdown: one row per
// (query, phase) from the run's histogram series, plus an "all" block
// aggregating the raw durations across queries with exact quantiles.
func FormatAdaptLat(runs []AdaptLatRun) string {
	out := "Adaptation latency by phase (virtual seconds): WASP policy under fig8 dynamics + site crash at 2/5 duration\n"
	var rows [][]string
	pooled := make(map[string][]float64)
	for _, run := range runs {
		for _, phase := range AdaptPhases {
			ds := run.Durations[phase]
			pooled[phase] = append(pooled[phase], ds...)
			rows = append(rows, []string{
				run.Query, phase, fmt.Sprintf("%d", len(ds)),
				Fmt(exactQuantile(ds, 0.50)),
				Fmt(exactQuantile(ds, 0.95)),
				Fmt(exactQuantile(ds, 0.99)),
			})
		}
	}
	for _, phase := range AdaptPhases {
		ds := pooled[phase]
		rows = append(rows, []string{
			"all", phase, fmt.Sprintf("%d", len(ds)),
			Fmt(exactQuantile(ds, 0.50)),
			Fmt(exactQuantile(ds, 0.95)),
			Fmt(exactQuantile(ds, 0.99)),
		})
	}
	return out + Table([]string{"query", "phase", "n", "p50", "p95", "p99"}, rows)
}

// AdaptLatHistogramQuantiles reads the p50/p95/p99 of one phase from a
// run's wasp_adapt_latency_seconds series — the bucketed estimate the
// JSONL/Prom exports carry, as opposed to FormatAdaptLat's exact raw
// quantiles.
func AdaptLatHistogramQuantiles(o *obs.Observer, phase string) (p50, p95, p99 float64, count uint64) {
	h := o.Registry().Histogram("wasp_adapt_latency_seconds", engine.AdaptLatencyBuckets, "phase", phase)
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count()
}
