package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// RecoveryRun is one arm of the failure-recovery experiment (§8.6-style):
// a site crash under one checkpoint interval.
type RecoveryRun struct {
	CheckpointEvery time.Duration // 0 = no checkpointing (restart empty)
	// Recovered reports whether the controller re-placed the dead tasks.
	Recovered bool
	// RecoveryTime is crash→stage-resumed (including state transfer).
	RecoveryTime time.Duration
	// Lost/Restored/NetLost account source-equivalent events wiped by the
	// crash and the share clawed back from the surviving checkpoint
	// replica. NetLost = Lost − Restored is bounded by (roughly) one
	// checkpoint interval of aggregate arrivals plus in-flight queues.
	Lost, Restored, NetLost float64
	ProcessedPct            float64
	// Degraded reports whether any movable stage bottomed out at the
	// degradation rung (no feasible placement) at any point. Pinned
	// sources/sinks on the crashed site always ride out the outage and are
	// not counted.
	Degraded bool
	Actions  int
}

// movableDegraded reports whether any "recovery.degraded" event hit the
// genuine no-placement rung. Pinned stages and stages whose whole upstream
// died with the site can only heal by restart and are not counted.
func movableDegraded(res *Result) bool {
	for _, ev := range res.Obs.Events("recovery.degraded") {
		if ev.Get("rung").Str() == "no-placement" {
			return true
		}
	}
	return false
}

// hottestMovable returns the busiest movable (non-pinned, non-terminal)
// operator and its expected input rate; OpID -1 when every operator is
// pinned or terminal.
func hottestMovable(pp *physical.Plan) (plan.OpID, float64) {
	inRate, _, _, err := pp.Graph.ExpectedRates(1)
	if err != nil {
		return -1, 0
	}
	bestID := plan.OpID(-1)
	for _, id := range pp.Graph.OperatorIDs() {
		op := pp.Graph.Operator(id)
		if op.Kind == plan.KindSource || op.Kind == plan.KindSink || op.PinnedSite != plan.NoSite {
			continue
		}
		if bestID < 0 || inRate[id] > inRate[bestID] {
			bestID = id
		}
	}
	if bestID < 0 {
		return -1, 0
	}
	return bestID, inRate[bestID]
}

// crashTargetSite picks the site hosting the busiest movable (non-pinned)
// operator — the most damaging single-site crash that recovery can
// actually repair.
func crashTargetSite(pp *physical.Plan) topology.SiteID {
	bestID, _ := hottestMovable(pp)
	if bestID < 0 {
		return 0
	}
	return pp.Stages[bestID].Sites[0]
}

// RunRecovery sweeps the checkpoint interval under a fixed site crash: at
// t=300 s the site hosting the busiest combine crashes (restarting at
// t=600 s). The controller re-places the dead tasks on surviving sites and
// restores their state from the freshest checkpoint replica not stored on
// the crashed site; the no-checkpoint arm restarts empty. Source-event
// loss should grow with the checkpoint interval — the state-loss bound —
// while recovery time stays roughly flat (placement + state transfer).
func RunRecovery(seed int64) ([]RecoveryRun, error) {
	const (
		duration = 900 * time.Second
		crashAt  = 300 * time.Second
		outage   = 300 * time.Second
	)
	intervals := []time.Duration{0, 10 * time.Second, 30 * time.Second, 60 * time.Second, 120 * time.Second}
	jobs := make([]func() (RecoveryRun, error), len(intervals))
	for i, interval := range intervals {
		jobs[i] = func() (RecoveryRun, error) {
			res, err := Run(Scenario{
				Name:            fmt.Sprintf("recovery-ckpt-%v", interval),
				Seed:            seed,
				Duration:        duration,
				Engine:          EngineConfig(adapt.PolicyWASP),
				Adapt:           AdaptConfig(adapt.PolicyWASP),
				CheckpointEvery: interval,
				FaultsFor: func(pp *physical.Plan, top *topology.Topology) []faults.Fault {
					return []faults.Fault{{
						Kind: faults.SiteCrash, At: crashAt, For: outage,
						Site: crashTargetSite(pp),
					}}
				},
			})
			if err != nil {
				return RecoveryRun{}, err
			}
			run := RecoveryRun{
				CheckpointEvery: interval,
				Lost:            res.Lost,
				Restored:        res.Restored,
				NetLost:         res.Lost - res.Restored,
				ProcessedPct:    res.ProcessedPct,
				Degraded:        movableDegraded(res),
				Actions:         len(res.Actions),
			}
			for _, a := range res.Actions {
				if a.Kind == adapt.ActionRecover {
					run.Recovered = true
				}
			}
			for _, ev := range res.Obs.Events("recovery.complete") {
				if rt := ev.Get("recovery_time").Duration(); rt > run.RecoveryTime {
					run.RecoveryTime = rt
				}
			}
			return run, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatRecovery renders the failure-recovery sweep.
func FormatRecovery(runs []RecoveryRun) string {
	out := "Failure recovery (§8.6-style): site crash at t=300s, restart at t=600s, checkpoint-interval sweep\n"
	var rows [][]string
	for _, r := range runs {
		ck := "none"
		if r.CheckpointEvery > 0 {
			ck = r.CheckpointEvery.String()
		}
		recovered := "no"
		if r.Recovered {
			recovered = fmt.Sprintf("yes (%v)", r.RecoveryTime.Round(100*time.Millisecond))
		}
		degraded := "no"
		if r.Degraded {
			degraded = "yes"
		}
		rows = append(rows, []string{
			ck, recovered,
			Fmt(r.Lost), Fmt(r.Restored), Fmt(r.NetLost),
			Fmt(r.ProcessedPct), degraded,
		})
	}
	return out + Table(
		[]string{"checkpoint", "recovered (time)", "lost ev", "restored ev", "net lost ev", "processed %", "degraded"},
		rows)
}
