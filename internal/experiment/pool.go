package experiment

// Parallel experiment execution. Every cell of a scenario grid builds its
// own topology, network, virtual clock, engine, and observer, so the §8
// sweeps are embarrassingly parallel: runJobs fans the cells out over a
// bounded worker pool and hands the results back in submission order,
// which keeps the rendered tables — and the obs JSONL each run carries —
// byte-identical to a sequential execution of the same seed.

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// poolWorkers is the process-wide worker-pool width. It defaults to
// GOMAXPROCS and can be overridden by the WASP_BENCH_PARALLEL environment
// variable (for `go test -bench` runs) or SetParallelism (the waspbench
// -j flag).
var poolWorkers atomic.Int64

func init() {
	w := int64(runtime.GOMAXPROCS(0))
	if s := os.Getenv("WASP_BENCH_PARALLEL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			w = int64(v)
		}
	}
	poolWorkers.Store(w)
}

// Parallelism reports the current experiment worker-pool width.
func Parallelism() int { return int(poolWorkers.Load()) }

// SetParallelism sets the worker-pool width for subsequent scenario grids.
// Values below 1 are clamped to 1 (sequential).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	poolWorkers.Store(int64(n))
}

// runJobs executes the jobs on up to workers goroutines and returns their
// results in submission order. Each job must be self-contained (no shared
// mutable state); the simulation inside is deterministic, so the returned
// slice is identical whatever the worker count.
//
// On failure the pool stops dispatching, lets in-flight jobs finish, and
// returns the error of the lowest-indexed failed job. Dispatch order makes
// that deterministic too: jobs are claimed in index order, so every job
// below the first failure has already started and runs to completion —
// the minimal error index cannot depend on scheduling.
func runJobs[T any](workers int, jobs []func() (T, error)) ([]T, error) {
	results := make([]T, len(jobs))
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			r, err := job()
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, len(jobs))
	var next atomic.Int64
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				r, err := jobs[i]()
				if err != nil {
					errs[i] = err
					stopOnce.Do(func() { close(stop) })
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
