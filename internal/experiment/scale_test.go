package experiment

import (
	"strings"
	"testing"
	"time"
)

// scaleTestShapes keeps the determinism test fast: the two smallest sweep
// cells plus a mid-size regioned cell.
var scaleTestShapes = []ScaleShape{{4, 3, 1}, {4, 3, 4}, {8, 7, 4}}

// TestRunScaleDeterministic runs the sweep twice at different worker-pool
// widths: FormatScale — everything the CLI prints — must be byte-identical.
// Wall-clock fields (SolveMillis, TicksPerSec) are deliberately outside
// the deterministic surface.
func TestRunScaleDeterministic(t *testing.T) {
	a, err := RunScale(3, 200*time.Second, scaleTestShapes)
	if err != nil {
		t.Fatal(err)
	}
	old := Parallelism()
	SetParallelism(1)
	defer SetParallelism(old)
	b, err := RunScale(3, 200*time.Second, scaleTestShapes)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := FormatScale(a), FormatScale(b); fa != fb {
		t.Fatalf("scale sweep output depends on worker-pool width:\n%s\nvs\n%s", fa, fb)
	}
}

// TestRunScaleAdapts checks the sweep's dynamics actually exercise the
// controller: the workload surge plus the load-scaled site slowdown must
// trigger at least one adaptation action in a p_max > 1 cell, and the run
// must stay healthy (every cell fully processes its events).
func TestRunScaleAdapts(t *testing.T) {
	cells, err := RunScale(1, 0, []ScaleShape{{4, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.Sites != 16 {
		t.Fatalf("cell has %d sites, want 16", c.Sites)
	}
	if c.Actions == 0 {
		t.Fatal("scale cell took no adaptation actions: the injected dynamics are inert")
	}
	if c.AdaptP50 <= 0 {
		t.Fatalf("AdaptP50 = %v, want > 0", c.AdaptP50)
	}
	if c.ProcessedPct < 99 {
		t.Fatalf("ProcessedPct = %v, want >= 99", c.ProcessedPct)
	}
	if c.Users < 10000 {
		t.Fatalf("Users = %d, want a simulated population", c.Users)
	}
	out := FormatScale(cells)
	for _, col := range []string{"sites", "adapt_p50_s", "processed_pct"} {
		if !strings.Contains(out, col) {
			t.Fatalf("FormatScale output missing column %q:\n%s", col, out)
		}
	}
	m := ScaleMetrics(cells)
	if v, ok := m["sites16_p4.solve_ms"]; !ok || v <= 0 {
		t.Fatalf("ScaleMetrics solve_ms = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := m["sites16_p4.ticks_per_sec"]; !ok || v <= 0 {
		t.Fatalf("ScaleMetrics ticks_per_sec = %v (ok=%v), want > 0", v, ok)
	}
}
