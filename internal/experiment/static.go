package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
)

// Static artifacts: Figure 2, Figure 7, Table 2, Table 3. These do not
// require running the engine; they regenerate the measurement-derived
// inputs of the evaluation.

// Fig2 regenerates the one-day WAN bandwidth variability measurement
// (Oregon→Ohio, 30-minute buckets) and its summary statistics.
func Fig2(seed int64) string {
	tr := trace.Fig2Bandwidth(seed)
	st := tr.Summarize()
	var rows [][]string
	// 30-minute buckets over 24 h, as the figure's x-axis.
	pts := tr.Points()
	for i := 0; i < len(pts); i += 6 { // 6 × 5-minute samples per bucket
		var sum float64
		n := 0
		for j := i; j < i+6 && j < len(pts); j++ {
			sum += pts[j].V
			n++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i/6),
			Fmt(sum / float64(n)),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 2: WAN bandwidth variability, Oregon→Ohio (1 day, 30-min buckets)\n")
	b.WriteString(Table([]string{"bucket", "Mbps"}, rows))
	fmt.Fprintf(&b, "mean=%.1f Mbps  min=%.1f  max=%.1f  max deviation from mean=%.0f%% (paper: 25%%-93%%)\n",
		st.Mean, st.Min, st.Max, st.MaxDeviation*100)
	return b.String()
}

// Fig7 regenerates the inter-site bandwidth and latency CDFs of the
// testbed, split into data-center pairs and edge pairs.
func Fig7(seed int64) string {
	top := topology.Generate(topology.DefaultGenConfig(seed))
	var b strings.Builder
	b.WriteString("Figure 7: inter-site network distributions (testbed)\n")
	for _, class := range []struct {
		name string
		c    topology.PairClass
	}{
		{"data-center pairs", topology.DataCenterPair},
		{"edge pairs", topology.EdgePair},
	} {
		bws, lats := top.LinkValues(class.c)
		var rows [][]string
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			bi := int(q*float64(len(bws))) - 1
			if bi < 0 {
				bi = 0
			}
			rows = append(rows, []string{
				fmt.Sprintf("p%02.0f", q*100),
				Fmt(float64(bws[bi])),
				fmt.Sprintf("%.0f", float64(lats[bi])/float64(time.Millisecond)),
			})
		}
		fmt.Fprintf(&b, "\n%s (%d links)\n", class.name, len(bws))
		b.WriteString(Table([]string{"quantile", "bandwidth Mbps", "latency ms"}, rows))
	}
	return b.String()
}

// Table2 renders the qualitative adaptation-technique comparison.
func Table2() string {
	var rows [][]string
	for _, r := range adapt.Table2() {
		rows = append(rows, []string{
			r.Technique, r.Adaptation, r.Applicability, r.Granularity, r.Overhead, r.QualityReduction,
		})
	}
	return "Table 2: qualitative comparison between adaptation techniques\n" +
		Table([]string{"Technique", "Adaptation", "Applicability", "Granularity", "Overhead*", "Quality reduction"}, rows) +
		"*Excluding the cross-site state migration overhead.\n"
}

// Table3 renders the query details table.
func Table3() string {
	var rows [][]string
	for _, r := range queries.Table3() {
		rows = append(rows, []string{r.Application, r.State, r.Operators, r.Dataset})
	}
	return "Table 3: location-based query details\n" +
		Table([]string{"Application", "State", "Operators", "Dataset"}, rows)
}
