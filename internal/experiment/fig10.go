package experiment

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/adapt"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Fig10Run is one policy arm of the §8.5 technique comparison.
type Fig10Run struct {
	Policy adapt.Policy
	Result *Result
}

// RunFig10 executes the §8.5 experiment on the Top-K query: workload
// factors {1,2,2,1,1} and bandwidth factors {1,1,0.5,0.5,1} across five
// equal phases, comparing No Adapt, Re-assign only, Scale (re-assign then
// scale), and Re-plan only. duration 0 means the paper's 1500 s.
func RunFig10(seed int64, duration time.Duration) ([]Fig10Run, error) {
	if duration == 0 {
		duration = 1500 * time.Second
	}
	phase := duration / 5
	policies := []adapt.Policy{
		adapt.PolicyNone, adapt.PolicyReassign, adapt.PolicyScale, adapt.PolicyReplan,
	}
	jobs := make([]func() (Fig10Run, error), len(policies))
	for i, policy := range policies {
		jobs[i] = func() (Fig10Run, error) {
			res, err := Run(Scenario{
				Name:      fmt.Sprintf("fig10-%s", policy),
				Seed:      seed,
				Duration:  duration,
				Query:     queries.TopKTopics,
				Engine:    EngineConfig(policy),
				Adapt:     AdaptConfig(policy),
				Workload:  trace.Steps(phase, 1, 2, 2, 1, 1),
				Bandwidth: trace.Steps(phase, 1, 1, 0.5, 0.5, 1),
			})
			if err != nil {
				return Fig10Run{}, fmt.Errorf("fig10 %s: %w", policy, err)
			}
			return Fig10Run{Policy: policy, Result: res}, nil
		}
	}
	return runJobs(Parallelism(), jobs)
}

// FormatFig10 renders the three panels of Figure 10: the delay CDF, the
// average delay per phase, and the parallelism changes over time.
func FormatFig10(runs []Fig10Run, duration time.Duration) string {
	if duration == 0 {
		duration = 1500 * time.Second
	}
	out := "Figure 10(a): delay distribution (s) per policy\n"
	header := []string{"policy", "p50", "p75", "p90", "p93", "p99", "mean"}
	var rows [][]string
	for _, run := range runs {
		rows = append(rows, []string{
			run.Policy.String(),
			Fmt(run.Result.DelayPercentile(0.50)),
			Fmt(run.Result.DelayPercentile(0.75)),
			Fmt(run.Result.DelayPercentile(0.90)),
			Fmt(run.Result.DelayPercentile(0.93)),
			Fmt(run.Result.DelayPercentile(0.99)),
			Fmt(Mean(run.Result.Samples)),
		})
	}
	out += Table(header, rows)

	out += "\nFigure 10(b): average delay (s) per phase (workload x{1,2,2,1,1}, bandwidth x{1,1,0.5,0.5,1})\n"
	phases := phaseBounds(duration)
	header = []string{"policy"}
	for _, p := range phases {
		header = append(header, fmt.Sprintf("[%ds,%ds)", int(p[0].Seconds()), int(p[1].Seconds())))
	}
	header = append(header, "actions")
	rows = nil
	for _, run := range runs {
		row := []string{run.Policy.String()}
		for _, p := range phases {
			row = append(row, Fmt(run.Result.MeanDelayBetween(p[0], p[1])))
		}
		row = append(row, summarizeActions(run.Result.Actions))
		rows = append(rows, row)
	}
	out += Table(header, rows)

	out += "\nFigure 10(c): additional tasks over time (relative to initial deployment)\n"
	header = []string{"policy"}
	for _, p := range phases {
		header = append(header, fmt.Sprintf("t=%ds", int(p[1].Seconds())-1))
	}
	rows = nil
	for _, run := range runs {
		row := []string{run.Policy.String()}
		for _, p := range phases {
			v := SeriesValueAt(run.Result.Parallelism, vclock.Time(p[1])-1, 0)
			row = append(row, Fmt(v))
		}
		rows = append(rows, row)
	}
	out += Table(header, rows)
	return out
}
