package experiment

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunJobsSubmissionOrder checks results come back indexed by
// submission order whatever the worker count.
func TestRunJobsSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		jobs := make([]func() (int, error), 33)
		for i := range jobs {
			jobs[i] = func() (int, error) { return i * i, nil }
		}
		got, err := runJobs(workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunJobsFirstErrorDeterministic checks that when several jobs fail,
// the reported error is always the lowest-indexed one: every job below the
// first failure is dispatched before it, so the minimal error index cannot
// depend on goroutine scheduling.
func TestRunJobsFirstErrorDeterministic(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			jobs := make([]func() (int, error), 16)
			for i := range jobs {
				jobs[i] = func() (int, error) {
					switch i {
					case 3:
						return 0, errLow
					case 5:
						return 0, errHigh
					default:
						return i, nil
					}
				}
			}
			_, err := runJobs(workers, jobs)
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=%d trial=%d: err = %v, want %v", workers, trial, err, errLow)
			}
		}
	}
}

// waitGoroutines polls (with Gosched, not the wall clock) until the live
// goroutine count drops to at most n.
func waitGoroutines(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if runtime.NumGoroutine() <= n {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutine count stuck at %d, want <= %d", runtime.NumGoroutine(), n)
}

// TestRunJobsCancellation checks the pool stops dispatching after the
// first error and reaps every worker. Choreography on two workers:
// job 0 errors once job 1 is in flight; the erroring worker exits
// (observed via the goroutine count, which orders the stop signal before
// anything that follows); only then is job 1 released, so the surviving
// worker must see the closed stop channel and never claim jobs 2..63.
func TestRunJobsCancellation(t *testing.T) {
	boom := errors.New("boom")
	job1Running := make(chan struct{})
	gate := make(chan struct{})
	var ranTail atomic.Int64

	g0 := runtime.NumGoroutine()
	jobs := make([]func() (int, error), 64)
	jobs[0] = func() (int, error) {
		<-job1Running
		return 0, boom
	}
	jobs[1] = func() (int, error) {
		close(job1Running)
		<-gate
		return 1, nil
	}
	for i := 2; i < len(jobs); i++ {
		jobs[i] = func() (int, error) {
			ranTail.Add(1)
			return i, nil
		}
	}

	done := make(chan error, 1)
	go func() {
		_, err := runJobs(2, jobs)
		done <- err
	}()

	<-job1Running
	// runJobs added the wrapper goroutine plus two workers. The erroring
	// worker closes the stop channel and then exits, so once the count is
	// back to g0+2 the cancellation signal is already visible.
	waitGoroutines(t, g0+2)
	close(gate)

	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ranTail.Load(); n != 0 {
		t.Errorf("%d jobs past the failure still ran, want 0", n)
	}
	waitGoroutines(t, g0) // every pool goroutine reaped
}

// TestParallelismClamp checks the knob's floor.
func TestParallelismClamp(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(-3)
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism after SetParallelism(-3) = %d, want 1", got)
	}
	SetParallelism(6)
	if got := Parallelism(); got != 6 {
		t.Fatalf("Parallelism = %d, want 6", got)
	}
}

// TestFig8ParallelByteIdentical runs the Figure 8 grid sequentially and on
// four workers and requires byte-identical rendered output — the
// determinism contract the parallel harness must keep.
func TestFig8ParallelByteIdentical(t *testing.T) {
	const duration = 50 * time.Second
	old := Parallelism()
	defer SetParallelism(old)

	SetParallelism(1)
	seq, err := RunFig8(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := RunFig8(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := FormatFig8(seq, duration), FormatFig8(par, duration); a != b {
		t.Errorf("fig8 output differs between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if a, b := FormatFig9(seq, duration), FormatFig9(par, duration); a != b {
		t.Errorf("fig9 output differs between -j 1 and -j 4")
	}
}

// TestFig11ParallelByteIdentical does the same for the live-environment
// experiment; FormatFig11 embeds the WASP arm's observability action log,
// so this also proves the obs JSONL stream is replay-stable under the
// pool.
func TestFig11ParallelByteIdentical(t *testing.T) {
	const duration = 60 * time.Second
	old := Parallelism()
	defer SetParallelism(old)

	SetParallelism(1)
	seq, err := RunFig11(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := RunFig11(1, duration)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := FormatFig11(seq, duration), FormatFig11(par, duration); a != b {
		t.Errorf("fig11 output differs between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

// TestRunJobsEmpty covers the zero-job edge.
func TestRunJobsEmpty(t *testing.T) {
	got, err := runJobs[int](4, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("runJobs(4, nil) = %v, %v", got, err)
	}
}
