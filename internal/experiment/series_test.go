package experiment

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func wd(at time.Duration, delay, weight float64) WeightedDelay {
	return WeightedDelay{At: vclock.Time(at), Delay: delay, Weight: weight}
}

func TestPercentile(t *testing.T) {
	samples := []WeightedDelay{
		wd(0, 1, 1), wd(0, 2, 1), wd(0, 3, 1), wd(0, 4, 1),
	}
	if got := Percentile(samples, 0.5); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := Percentile(samples, 1.0); got != 4 {
		t.Fatalf("p100 = %v, want 4", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile not NaN")
	}
	// Weighting: a heavy low sample dominates the median.
	weighted := []WeightedDelay{wd(0, 1, 10), wd(0, 100, 1)}
	if got := Percentile(weighted, 0.5); got != 1 {
		t.Fatalf("weighted p50 = %v, want 1", got)
	}
}

func TestMeanAndWindow(t *testing.T) {
	samples := []WeightedDelay{wd(time.Second, 2, 1), wd(3*time.Second, 4, 3)}
	if got := Mean(samples); got != 3.5 {
		t.Fatalf("Mean = %v, want 3.5", got)
	}
	w := Window(samples, vclock.Time(2*time.Second), vclock.Time(4*time.Second))
	if len(w) != 1 || w[0].Delay != 4 {
		t.Fatalf("Window = %v", w)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty Mean not NaN")
	}
}

func TestCDF(t *testing.T) {
	samples := []WeightedDelay{wd(0, 1, 1), wd(0, 2, 1), wd(0, 3, 1), wd(0, 4, 1)}
	cdf := CDF(samples, 4)
	if len(cdf) != 4 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	if cdf[3].X != 4 || cdf[3].F != 1 {
		t.Fatalf("CDF tail = %+v", cdf[3])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X {
			t.Fatal("CDF not monotone")
		}
	}
	if CDF(nil, 4) != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestBucketize(t *testing.T) {
	samples := []WeightedDelay{
		wd(time.Second, 2, 1),
		wd(2*time.Second, 4, 1),
		wd(11*time.Second, 10, 2),
	}
	series := Bucketize(samples, vclock.Time(10*time.Second))
	if len(series) != 2 {
		t.Fatalf("series = %v", series)
	}
	if series[0].V != 3 {
		t.Fatalf("bucket 0 = %v, want 3", series[0].V)
	}
	if series[1].T != vclock.Time(10*time.Second) || series[1].V != 10 {
		t.Fatalf("bucket 1 = %+v", series[1])
	}
}

func TestSeriesValueAt(t *testing.T) {
	series := []TimePoint{
		{T: vclock.Time(10 * time.Second), V: 1},
		{T: vclock.Time(20 * time.Second), V: 2},
	}
	if got := SeriesValueAt(series, vclock.Time(5*time.Second), -1); got != -1 {
		t.Fatalf("before first = %v", got)
	}
	if got := SeriesValueAt(series, vclock.Time(15*time.Second), -1); got != 1 {
		t.Fatalf("mid = %v", got)
	}
	if got := SeriesValueAt(series, vclock.Time(25*time.Second), -1); got != 2 {
		t.Fatalf("after = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"x", "y"}, {"long", "z"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestFmt(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "-"},
		{0.003, "0.0030"},
		{1.234, "1.23"},
		{42.3456, "42.3"},
		{12345, "12345"},
		{0, "0.00"},
	}
	for _, tt := range tests {
		if got := Fmt(tt.v); got != tt.want {
			t.Fatalf("Fmt(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestStaticArtifacts(t *testing.T) {
	fig2 := Fig2(42)
	if !strings.Contains(fig2, "Figure 2") || !strings.Contains(fig2, "max deviation") {
		t.Fatalf("Fig2 output malformed:\n%s", fig2)
	}
	fig7 := Fig7(1)
	if !strings.Contains(fig7, "data-center pairs (56 links)") ||
		!strings.Contains(fig7, "edge pairs (184 links)") {
		t.Fatalf("Fig7 output malformed:\n%s", fig7)
	}
	t2 := Table2()
	if !strings.Contains(t2, "Task Re-Assignment") || !strings.Contains(t2, "Degradation") {
		t.Fatalf("Table2 malformed:\n%s", t2)
	}
	t3 := Table3()
	if !strings.Contains(t3, "Top-K Topics") || !strings.Contains(t3, "~100 MB") {
		t.Fatalf("Table3 malformed:\n%s", t3)
	}
}
