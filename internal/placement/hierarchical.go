// Hierarchical two-level placement for planet-scale topologies.
//
// The exact solver in placement.go fills sites in global cost order after
// computing a bandwidth bound for every site — O(m·E) linkBound
// evaluations plus an m-site sort per stage, per plan variant, per
// controller round. At hundreds to thousands of sites that dominates
// re-planning. Following Benoit et al. (Resource Allocation Strategies
// for In-Network Stream Processing), SolveHierarchical plans at two
// levels: a coarse level scores each region by its cheapest member's
// per-task cost (plus an aggregate-slots infeasibility check), and a
// refinement level lazily merges the regions in that order — computing
// full-fidelity per-site bandwidth bounds and a cost-sorted member list
// only when a region's cheapest member becomes globally competitive.
// Because a region's coarse cost lower-bounds all of its members, the
// merge reproduces the flat solver's exact (cost, site) fill order:
// SolveHierarchical returns the flat optimum and is feasible exactly
// when Solve is, while touching bandwidth bounds for only the regions
// the plan actually reaches. The ≤16-site oracle cross-validation test
// pins both guarantees.
package placement

import (
	"errors"
	"fmt"
	"slices"

	"github.com/wasp-stream/wasp/internal/topology"
)

// DefaultHierarchicalThreshold is the site count above which the physical
// planner and the adaptation controller switch from the exact solver to
// the hierarchical one. Below it the exact solve is already cheap and
// stays the oracle.
const DefaultHierarchicalThreshold = 64

// ErrBadRegions is returned when the region partition does not cover each
// problem site exactly once.
var ErrBadRegions = errors.New("placement: region partition does not cover sites")

// regionCost pairs a region index with its representative per-task cost.
type regionCost struct {
	region int
	cost   float64
}

// openSeg is one opened region in the level-2 merge: its cost-sorted
// feasible members live in HierScratch.order[pos:end].
type openSeg struct {
	region   int
	pos, end int
}

// HierScratch holds reusable buffers for SolveHierarchicalInto. The zero
// value is ready to use; a single HierScratch must not be shared across
// concurrent solves. The region lookup table is cached across solves and
// rebuilt only when the regions slice identity (or shape) changes, so the
// caller must not mutate a regions partition while reusing it.
type HierScratch struct {
	// regionsID/regionsLen key the cached partition lookup below.
	regionsID  *[]topology.SiteID
	regionsLen int
	nSites     int
	//waspvet:guardedby regionsID
	siteRegion []int32

	regOrder []regionCost // region fill order (ascending min member cost)
	cost     []float64    // per-site objective coefficient
	bound    []int        // per-site true bound (computed lazily)
	seen     []bool       // bound[s] valid for this solve
	order    []siteCost   // member / remainder ordering buffer
	opened   []openSeg    // level-2 merge state over opened regions
	tasks    []int
	place    Placement
	flat     Scratch // pinned-stage and fallback exact solves
}

// compareSiteCost orders sites by ascending per-task cost, site ID as the
// deterministic tiebreak.
//
//waspvet:hotpath
func compareSiteCost(a, b siteCost) int {
	if a.cost != b.cost {
		if a.cost < b.cost {
			return -1
		}
		return 1
	}
	return int(a.site) - int(b.site)
}

// compareRegionCost orders regions by ascending representative cost,
// region index as the deterministic tiebreak.
//
//waspvet:hotpath
func compareRegionCost(a, b regionCost) int {
	if a.cost != b.cost {
		if a.cost < b.cost {
			return -1
		}
		return 1
	}
	return a.region - b.region
}

// SolveHierarchical solves pr with the two-level planner over the given
// region partition (e.g. topology.RegionSites or topology.ClusterRegions
// output). Allocates fresh scratch; hot callers use SolveHierarchicalInto.
func SolveHierarchical(pr *Problem, regions [][]topology.SiteID) (*Placement, error) {
	return pr.SolveHierarchicalInto(regions, &HierScratch{})
}

// rebuildRegions validates the partition and rebuilds the site→region
// lookup. Cold path: runs once per (regions, problem-size) pair.
func (hs *HierScratch) rebuildRegions(regions [][]topology.SiteID, sites int) error {
	if len(regions) == 0 {
		return fmt.Errorf("%w: empty partition", ErrBadRegions)
	}
	if cap(hs.siteRegion) < sites {
		hs.siteRegion = make([]int32, sites)
	} else {
		hs.siteRegion = hs.siteRegion[:sites]
	}
	for i := range hs.siteRegion {
		hs.siteRegion[i] = -1
	}
	covered := 0
	for r, members := range regions {
		if len(members) == 0 {
			return fmt.Errorf("%w: region %d empty", ErrBadRegions, r)
		}
		for _, s := range members {
			if s < 0 || int(s) >= sites {
				return fmt.Errorf("%w: region %d references site %d of %d", ErrBadRegions, r, s, sites)
			}
			if hs.siteRegion[s] != -1 {
				return fmt.Errorf("%w: site %d in regions %d and %d", ErrBadRegions, s, hs.siteRegion[s], r)
			}
			hs.siteRegion[s] = int32(r)
			covered++
		}
	}
	if covered != sites {
		return fmt.Errorf("%w: %d of %d sites covered", ErrBadRegions, covered, sites)
	}
	hs.regionsID = &regions[0]
	hs.regionsLen = len(regions)
	hs.nSites = sites
	return nil
}

// SolveHierarchicalInto is SolveHierarchical with caller-owned scratch.
// The returned Placement aliases the scratch's buffers and is valid only
// until the next solve with the same scratch. Like SolveInto, warm
// re-solves are allocation-free; the adapt controller re-plans big
// topologies through this path every monitoring round.
//
//waspvet:hotpath
func (pr *Problem) SolveHierarchicalInto(regions [][]topology.SiteID, hs *HierScratch) (*Placement, error) {
	if err := pr.validate(); err != nil { //waspvet:hotalloc O(1) field checks; the error path ends the solve
		return nil, err
	}
	if len(regions) == 0 || hs.regionsID != &regions[0] || hs.regionsLen != len(regions) || hs.nSites != pr.Sites {
		if err := hs.rebuildRegions(regions, pr.Sites); err != nil { //waspvet:hotalloc cold branch: partition lookup rebuilt once per topology change
			return nil, err
		}
	}
	if pr.Pinned >= 0 {
		// Pinned stages (sources, sinks) admit a single site; the exact
		// solver handles them in O(m) without touching bandwidth bounds.
		return pr.SolveInto(&hs.flat) //waspvet:hotalloc cold path: pinned stages bypass the two-level machinery
	}
	p := float64(pr.Parallelism)
	R := len(regions)

	// Level 1 — coarse region model. Aggregate each region's slot
	// capacity (an exact upper bound, used for the early infeasibility
	// exit) and its objective coefficient: the cheapest member's
	// per-task cost. Member costs are computed once here and reused
	// verbatim by the refinement level, so the coarse pass adds no
	// latency lookups over a flat solve while skipping its per-site
	// bandwidth bounds and global sort.
	if cap(hs.regOrder) < R {
		hs.regOrder = slices.Grow(hs.regOrder[:0], R) //waspvet:hotalloc cold branch: sized once per region count
	}
	if cap(hs.cost) < pr.Sites {
		hs.cost = make([]float64, pr.Sites) //waspvet:hotalloc cold branch: sized once per site count
	}
	cost := hs.cost[:pr.Sites]
	regOrder := hs.regOrder[:0]
	totalSlots := 0
	for r := 0; r < R; r++ {
		minCost := 0.0
		for i, s := range regions[r] {
			totalSlots += pr.AvailableSlots[s]
			c := pr.CostPerTask(s)
			cost[s] = c
			if i == 0 || c < minCost {
				minCost = c
			}
		}
		regOrder = append(regOrder, regionCost{region: r, cost: minCost})
	}
	hs.regOrder = regOrder
	if totalSlots < pr.Parallelism {
		return nil, fmt.Errorf("%w: %d slots for %d tasks", ErrInfeasible, totalSlots, pr.Parallelism) //waspvet:hotalloc error path ends the solve
	}
	slices.SortFunc(regOrder, compareRegionCost)

	// Level 2 — refine inside opened regions with full fidelity: true
	// per-site bounds (every endpoint, full parallelism for the shares)
	// and true per-site costs, exactly as the flat solver would compute
	// them, restricted to the region's members.
	if cap(hs.tasks) < pr.Sites {
		hs.tasks = make([]int, pr.Sites) //waspvet:hotalloc cold branch: sized once per site count
		hs.bound = make([]int, pr.Sites) //waspvet:hotalloc cold branch: sized once per site count
		hs.seen = make([]bool, pr.Sites) //waspvet:hotalloc cold branch: sized once per site count
	}
	tasks := hs.tasks[:pr.Sites]
	bound := hs.bound[:pr.Sites]
	seen := hs.seen[:pr.Sites]
	for i := range tasks {
		tasks[i] = 0
		seen[i] = false
	}
	hs.place = Placement{TasksPerSite: tasks}
	result := &hs.place
	remaining := pr.Parallelism

	// Level 2 merge loop: regions open lazily in coarse-cost order, and
	// every task is placed at the globally cheapest feasible head among
	// the opened regions' cost-sorted members. A region is opened exactly
	// when its cheapest member could tie or beat every opened head (its
	// min cost is a lower bound on all its members), so the fill order
	// reproduces the flat solver's global (cost, site) order — and
	// per-site bandwidth bounds are only ever computed for opened
	// regions.
	order := hs.order[:0]
	opened := hs.opened[:0]
	next := 0 // next regOrder entry to open
	for remaining > 0 {
		// Cheapest head among opened regions, skipping exhausted ones.
		best := -1
		for k := range opened {
			seg := &opened[k]
			for seg.pos < seg.end && tasks[order[seg.pos].site] >= bound[order[seg.pos].site] {
				seg.pos++
			}
			if seg.pos == seg.end {
				continue
			}
			if best == -1 || compareSiteCost(order[seg.pos], order[opened[best].pos]) < 0 {
				best = k
			}
		}
		// Open every region whose cheapest member ties or beats the
		// current best head (ties included so site-ID tiebreaks match
		// the flat order).
		if next < len(regOrder) && (best == -1 || regOrder[next].cost <= order[opened[best].pos].cost) {
			rc := regOrder[next]
			next++
			start := len(order)
			for _, s := range regions[rc.region] {
				b := pr.siteBound(s, p)
				bound[s] = b
				seen[s] = true
				if b > 0 {
					order = append(order, siteCost{site: s, cost: cost[s]})
				}
			}
			hs.order = order
			slices.SortFunc(order[start:], compareSiteCost)
			opened = append(opened, openSeg{region: rc.region, pos: start, end: len(order)})
			hs.opened = opened
			continue
		}
		if best == -1 {
			break // every region opened and exhausted
		}
		seg := &opened[best]
		cand := order[seg.pos]
		n := min(remaining, bound[cand.site]-tasks[cand.site])
		tasks[cand.site] += n
		result.Cost += float64(n) * cand.cost
		remaining -= n
		seg.pos++
	}

	if remaining > 0 {
		// Remainder safety pass: by construction the merge drains every
		// region before giving up, so reaching here means the instance is
		// infeasible for the flat solver too. Re-deriving that verdict
		// from residual bounds keeps the feasibility guarantee self-
		// evident and robust to future changes in the merge.
		order := hs.order[:0]
		for s := 0; s < pr.Sites; s++ {
			site := topology.SiteID(s)
			if !seen[s] {
				bound[s] = pr.siteBound(site, p)
				seen[s] = true
			}
			if bound[s]-tasks[s] > 0 {
				order = append(order, siteCost{site: site, cost: cost[s]})
			}
		}
		hs.order = order
		slices.SortFunc(order, compareSiteCost)
		for _, cand := range order {
			if remaining == 0 {
				break
			}
			n := min(remaining, bound[cand.site]-tasks[cand.site])
			if n <= 0 {
				continue
			}
			tasks[cand.site] += n
			result.Cost += float64(n) * cand.cost
			remaining -= n
		}
		if remaining > 0 {
			return nil, fmt.Errorf("%w: %d of %d tasks unplaced", ErrInfeasible, remaining, pr.Parallelism) //waspvet:hotalloc error path ends the solve
		}
	}
	return result, nil
}
