package placement

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/wasp-stream/wasp/internal/topology"
)

// scaleProblem builds a randomized placement instance over a generated
// scale topology: seeded endpoint sets, rates and parallelism so the
// cross-validation sweep covers feasible, tight and infeasible regimes.
func scaleProblem(top *topology.Topology, rng *rand.Rand) *Problem {
	m := top.N()
	slots := make([]int, m)
	for s := 0; s < m; s++ {
		slots[s] = top.Slots(topology.SiteID(s))
	}
	endpoints := func() []Endpoint {
		n := 1 + rng.Intn(3)
		eps := make([]Endpoint, n)
		for i := range eps {
			eps[i] = Endpoint{Site: topology.SiteID(rng.Intn(m)), Weight: 1 / float64(n)}
		}
		return eps
	}
	return &Problem{
		Sites:             m,
		Parallelism:       1 + rng.Intn(top.TotalSlots()),
		AvailableSlots:    slots,
		Upstream:          endpoints(),
		Downstream:        endpoints(),
		InputBytesPerSec:  float64(1+rng.Intn(100)) * 1e5,
		OutputBytesPerSec: float64(1+rng.Intn(100)) * 1e5,
		Alpha:             0.8,
		Latency:           top.Latency,
		Bandwidth: func(from, to topology.SiteID) float64 {
			return top.BaseBandwidth(from, to).BytesPerSec()
		},
		Pinned: -1,
	}
}

// checkAgainstOracle cross-validates one instance: feasibility must match
// the exact solver, feasible hierarchical placements must respect every
// true per-site bound and deploy fully, and the objective must stay
// within the ISSUE's 10% gap of the exact optimum. The lazy merge in
// fact reproduces the flat fill order for any valid partition, so the
// observed gap is zero; the 10% assertion is the contract being pinned.
func checkAgainstOracle(t *testing.T, label string, pr *Problem, regions [][]topology.SiteID) {
	t.Helper()
	exact, exactErr := Solve(pr)
	hier, hierErr := SolveHierarchical(pr, regions)
	if (exactErr == nil) != (hierErr == nil) {
		t.Fatalf("%s: feasibility diverges: exact err %v, hierarchical err %v", label, exactErr, hierErr)
	}
	if exactErr != nil {
		if !errors.Is(hierErr, ErrInfeasible) {
			t.Fatalf("%s: want ErrInfeasible, got %v", label, hierErr)
		}
		return
	}
	if got := hier.Total(); got != pr.Parallelism {
		t.Fatalf("%s: hierarchical placed %d of %d tasks", label, got, pr.Parallelism)
	}
	ub, err := pr.UpperBounds()
	if err != nil {
		t.Fatal(err)
	}
	cost := 0.0
	for s, n := range hier.TasksPerSite {
		if n < 0 || n > ub[s] {
			t.Fatalf("%s: site %d holds %d tasks, bound %d", label, s, n, ub[s])
		}
		cost += float64(n) * pr.CostPerTask(topology.SiteID(s))
	}
	if diff := cost - hier.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("%s: reported cost %v, recomputed %v", label, hier.Cost, cost)
	}
	if hier.Cost > exact.Cost*1.10+1e-12 {
		t.Fatalf("%s: hierarchical cost %v exceeds 10%% gap over exact %v", label, hier.Cost, exact.Cost)
	}
}

// TestSolveHierarchicalOracleSweep is the ≤16-site cross-validation
// sweep: on every instance the hierarchical solver must match the exact
// oracle's feasibility and stay within the 10% optimality gap, both on
// region-structured scale topologies and on the unregioned §8.2 testbed
// partitioned by ClusterRegions.
func TestSolveHierarchicalOracleSweep(t *testing.T) {
	shapes := []struct{ regions, edges int }{
		{2, 1}, {2, 2}, {3, 1}, {2, 3}, {3, 2}, {3, 3}, {4, 2}, {5, 2}, {4, 3},
	}
	instances := 0
	for seed := int64(0); seed < 16; seed++ {
		for _, sh := range shapes {
			top, err := topology.GenerateScale(topology.DefaultScaleConfig(seed, sh.regions, sh.edges))
			if err != nil {
				t.Fatal(err)
			}
			if top.N() > 16 {
				t.Fatalf("shape %+v has %d sites, sweep is the ≤16-site oracle regime", sh, top.N())
			}
			rng := rand.New(rand.NewSource(seed*1000 + int64(sh.regions*100+sh.edges)))
			for trial := 0; trial < 4; trial++ {
				pr := scaleProblem(top, rng)
				checkAgainstOracle(t, "scale", pr, top.RegionSites())
				instances++
			}
		}
	}
	// Unregioned testbed topologies partitioned by latency clustering:
	// every k, from the degenerate single region to singleton regions,
	// must preserve feasibility parity, bound validity and the gap.
	for seed := int64(0); seed < 8; seed++ {
		top := topology.Generate(topology.DefaultGenConfig(seed))
		rng := rand.New(rand.NewSource(seed + 9000))
		for _, k := range []int{1, 2, 4, 8, 16} {
			regions := topology.ClusterRegions(top, k)
			pr := scaleProblem(top, rng)
			checkAgainstOracle(t, "clustered", pr, regions)
			instances++
		}
	}
	if instances < 400 {
		t.Fatalf("sweep covered %d instances, want >= 400", instances)
	}
}

func TestSolveHierarchicalPinned(t *testing.T) {
	top, err := topology.GenerateScale(topology.DefaultScaleConfig(3, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pr := scaleProblem(top, rng)
	pr.Parallelism = 2
	pr.InputBytesPerSec = 1e3
	pr.OutputBytesPerSec = 1e3
	pr.Pinned = 4 // r1-hub: 16 slots
	exact, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := SolveHierarchical(pr, top.RegionSites())
	if err != nil {
		t.Fatal(err)
	}
	if hier.TasksPerSite[4] != 2 || hier.Cost != exact.Cost {
		t.Fatalf("pinned placement %v (cost %v), want all tasks on site 4 at exact cost %v", hier, hier.Cost, exact.Cost)
	}
}

func TestSolveHierarchicalBadRegions(t *testing.T) {
	pr := baseProblem(4, 2)
	cases := []struct {
		name    string
		regions [][]topology.SiteID
	}{
		{"empty partition", nil},
		{"empty region", [][]topology.SiteID{{0, 1}, {}, {2, 3}}},
		{"out of range", [][]topology.SiteID{{0, 1}, {2, 7}}},
		{"duplicate site", [][]topology.SiteID{{0, 1}, {1, 2, 3}}},
		{"missing site", [][]topology.SiteID{{0, 1}, {2}}},
	}
	for _, tc := range cases {
		if _, err := SolveHierarchical(pr, tc.regions); !errors.Is(err, ErrBadRegions) {
			t.Errorf("%s: err = %v, want ErrBadRegions", tc.name, err)
		}
	}
	// A valid partition on the same scratch afterwards must still work.
	hs := &HierScratch{}
	if _, err := pr.SolveHierarchicalInto([][]topology.SiteID{{0, 1}, {1, 2, 3}}, hs); !errors.Is(err, ErrBadRegions) {
		t.Fatalf("bad partition accepted: %v", err)
	}
	if _, err := pr.SolveHierarchicalInto([][]topology.SiteID{{0, 1}, {2, 3}}, hs); err != nil {
		t.Fatalf("valid partition after bad one rejected: %v", err)
	}
}

// thousandSiteInstance is the shared 1000-site fixture for the warm-solve
// alloc ceiling and BenchmarkHierarchicalSolve1kSites.
func thousandSiteInstance(tb testing.TB) (*Problem, [][]topology.SiteID) {
	tb.Helper()
	top, err := topology.GenerateScale(topology.DefaultScaleConfig(7, 50, 19))
	if err != nil {
		tb.Fatal(err)
	}
	if top.N() != 1000 {
		tb.Fatalf("fixture has %d sites, want 1000", top.N())
	}
	rng := rand.New(rand.NewSource(7))
	pr := scaleProblem(top, rng)
	pr.Parallelism = 64
	return pr, top.RegionSites()
}

func TestHierarchicalWarmSolveAllocs(t *testing.T) {
	pr, regions := thousandSiteInstance(t)
	hs := &HierScratch{}
	if _, err := pr.SolveHierarchicalInto(regions, hs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := pr.SolveHierarchicalInto(regions, hs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm hierarchical re-solve allocates %.1f times, want 0", allocs)
	}
}

func BenchmarkHierarchicalSolve1kSites(b *testing.B) {
	pr, regions := thousandSiteInstance(b)
	hs := &HierScratch{}
	if _, err := pr.SolveHierarchicalInto(regions, hs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.SolveHierarchicalInto(regions, hs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSolve1kSites(b *testing.B) {
	// The flat oracle at the same size, for the DESIGN/README comparison.
	pr, _ := thousandSiteInstance(b)
	sc := &Scratch{}
	if _, err := pr.SolveInto(sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.SolveInto(sc); err != nil {
			b.Fatal(err)
		}
	}
}
