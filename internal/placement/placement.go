// Package placement solves WASP's WAN-aware task-placement problem
// (§4.1, Equations 1–5): choose how many tasks p[s] of a stage to run at
// each site so as to minimize the network delay to/from the stage's
// upstream and downstream deployments,
//
//	min Σ_s p[s]·(ℓ_su + ℓ_ds)                    (1)
//
// subject to inbound and outbound bandwidth headroom on every WAN link
// ((p[s]/p)·λ̂ < α·B, constraints 2–3), per-site slot capacity (4), and
// full deployment Σ p[s] = p (5).
//
// Because every bandwidth constraint involves a single variable p[s], the
// integer program is separable: each site has an independent upper bound
// and the linear objective is minimized exactly by filling sites in
// ascending cost order. Solve is therefore exact; the test suite verifies
// it against an exhaustive reference on randomized instances.
package placement

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
)

// ErrInfeasible is returned when no placement satisfies the constraints —
// e.g. too few slots, or every bandwidth-feasible site is exhausted. The
// caller (WASP's adaptation policy) reacts by scaling or re-planning.
var ErrInfeasible = errors.New("placement: no feasible placement")

// Endpoint is one site of the stage's upstream (or downstream) deployment
// together with the fraction of the stage's input (or output) stream that
// flows over it.
type Endpoint struct {
	Site   topology.SiteID
	Weight float64
}

// Problem is one placement instance for a single stage.
type Problem struct {
	// Sites is the number of sites m.
	Sites int
	// Parallelism is the number of tasks p to place.
	Parallelism int
	// AvailableSlots is A[s] per site. Slots currently held by the tasks
	// being re-placed should be counted as available.
	AvailableSlots []int
	// Upstream and Downstream describe where the stage's input comes
	// from and where its output goes. Weights should sum to 1 per side;
	// an empty side imposes no constraints or cost.
	Upstream   []Endpoint
	Downstream []Endpoint
	// InputBytesPerSec and OutputBytesPerSec are the stage's expected
	// total stream rates λ̂I and λ̂O, in bytes/s (actual workload, §3.3).
	InputBytesPerSec  float64
	OutputBytesPerSec float64
	// Alpha is the bandwidth utilization threshold α ∈ (0,1), paper
	// default 0.8.
	Alpha float64
	// Latency returns the one-way delay between sites; Bandwidth returns
	// the currently available link capacity in bytes/s.
	Latency   func(from, to topology.SiteID) time.Duration
	Bandwidth func(from, to topology.SiteID) float64
	// Conservative selects the literal reading of constraints (2)–(3):
	// each link must carry the site's whole input/output share, i.e.
	// (p[s]/p)·λ̂ < α·B for every upstream/downstream link. When false
	// (default), each link carries only its endpoint's weighted share:
	// (p[s]/p)·w_u·λ̂ < α·B.
	Conservative bool
	// Pinned, when >= 0, forces all tasks onto one site (pinned
	// operators such as sources and sinks).
	Pinned topology.SiteID
}

// Placement is a solved assignment.
type Placement struct {
	// TasksPerSite is p[s] for every site.
	TasksPerSite []int
	// Cost is the objective value: Σ_s p[s]·(weighted up/down latency),
	// in seconds.
	Cost float64
}

// Sites returns the IDs of sites hosting at least one task, ascending.
func (p *Placement) Sites() []topology.SiteID {
	var out []topology.SiteID
	for s, n := range p.TasksPerSite {
		if n > 0 {
			out = append(out, topology.SiteID(s))
		}
	}
	return out
}

// Total returns the number of placed tasks.
func (p *Placement) Total() int {
	total := 0
	for _, n := range p.TasksPerSite {
		total += n
	}
	return total
}

// String renders the non-empty sites, e.g. "{2:1 5:3}".
func (p *Placement) String() string {
	s := "{"
	first := true
	for site, n := range p.TasksPerSite {
		if n == 0 {
			continue
		}
		if !first {
			s += " "
		}
		first = false
		s += fmt.Sprintf("%d:%d", site, n)
	}
	return s + "}"
}

func (pr *Problem) validate() error {
	if pr.Sites <= 0 {
		return errors.New("placement: no sites")
	}
	if pr.Parallelism < 1 {
		return errors.New("placement: parallelism must be >= 1")
	}
	if len(pr.AvailableSlots) != pr.Sites {
		return fmt.Errorf("placement: slots for %d sites, want %d", len(pr.AvailableSlots), pr.Sites)
	}
	if pr.Alpha <= 0 || pr.Alpha >= 1 {
		return fmt.Errorf("placement: alpha %v outside (0,1)", pr.Alpha)
	}
	if pr.Latency == nil || pr.Bandwidth == nil {
		return errors.New("placement: nil latency/bandwidth functions")
	}
	return nil
}

// UpperBounds computes the per-site maximum task count implied by the slot
// and bandwidth constraints. Exported for the adaptation policy, which
// uses the bounds to size scale-out decisions.
func (pr *Problem) UpperBounds() ([]int, error) {
	return pr.upperBoundsInto(nil)
}

// upperBoundsInto is UpperBounds writing into buf when it has capacity.
func (pr *Problem) upperBoundsInto(buf []int) ([]int, error) {
	if err := pr.validate(); err != nil {
		return nil, err
	}
	p := float64(pr.Parallelism)
	ub := buf[:0]
	if cap(ub) < pr.Sites {
		ub = make([]int, pr.Sites)
	} else {
		ub = ub[:pr.Sites]
	}
	for s := 0; s < pr.Sites; s++ {
		ub[s] = pr.siteBound(topology.SiteID(s), p)
	}
	return ub, nil
}

// siteBound is the per-site upper bound implied by the slot and bandwidth
// constraints, evaluated with parallelism p for the bandwidth shares. It
// is the shared kernel of the flat and hierarchical solvers.
//
//waspvet:hotpath
func (pr *Problem) siteBound(site topology.SiteID, p float64) int {
	if pr.Pinned >= 0 && site != pr.Pinned {
		return 0
	}
	bound := pr.AvailableSlots[site]
	// Inbound constraints (2): for each upstream endpoint u ≠ s.
	for _, u := range pr.Upstream {
		if u.Site == site {
			continue
		}
		rate := pr.InputBytesPerSec
		if !pr.Conservative {
			rate *= u.Weight
		}
		bound = min(bound, linkBound(rate, pr.Alpha*pr.Bandwidth(u.Site, site), p)) //waspvet:hotalloc Bandwidth is a func field; callers install non-escaping hooks
	}
	// Outbound constraints (3): for each downstream endpoint d ≠ s.
	for _, d := range pr.Downstream {
		if d.Site == site {
			continue
		}
		rate := pr.OutputBytesPerSec
		if !pr.Conservative {
			rate *= d.Weight
		}
		bound = min(bound, linkBound(rate, pr.Alpha*pr.Bandwidth(site, d.Site), p)) //waspvet:hotalloc Bandwidth is a func field; callers install non-escaping hooks
	}
	return max(bound, 0)
}

// linkBound returns the largest integer x satisfying (x/p)·rate < capacity
// (strict, per the paper), or p when the constraint never binds.
//
//waspvet:hotpath
func linkBound(rate, capacity, p float64) int {
	if rate <= 0 {
		return int(p)
	}
	if capacity <= 0 {
		return 0
	}
	bound := p * capacity / rate
	if bound >= 1e15 {
		// Effectively unconstrained: the relative epsilon below is
		// meaningless past 2^53, and planet-scale instances pair
		// near-zero rates with fat intra-site links, driving `bound`
		// past 2^63 where the float→int conversion is
		// implementation-defined. 1e15 still dominates any slot count it
		// is min-ed against, and sums safely in MaxFeasibleParallelism.
		return int(1e15)
	}
	// Largest integer strictly below `bound`: floor for fractional bounds,
	// bound-1 for integral ones (the constraint is a strict inequality).
	// The epsilon is relative (cf. the PR 7 transfer-epsilon fix): an
	// absolute 1e-9 vanishes below the float64 ulp once bounds reach ~1e7,
	// so exactly-integral huge bounds would misround to x instead of x-1.
	return int(math.Ceil(bound-bound*1e-9)) - 1
}

// CostPerTask returns the objective coefficient for placing one task at
// site s: the weighted upstream + downstream latency, in seconds.
//
//waspvet:hotpath
func (pr *Problem) CostPerTask(s topology.SiteID) float64 {
	var c float64
	for _, u := range pr.Upstream {
		c += u.Weight * pr.Latency(u.Site, s).Seconds() //waspvet:hotalloc Latency is a func field; callers install non-escaping hooks
	}
	for _, d := range pr.Downstream {
		c += d.Weight * pr.Latency(s, d.Site).Seconds() //waspvet:hotalloc Latency is a func field; callers install non-escaping hooks
	}
	return c
}

// siteCost pairs a site with its per-task objective coefficient.
type siteCost struct {
	site topology.SiteID
	cost float64
}

// Scratch holds reusable buffers for SolveInto. The zero value is ready to
// use; a single Scratch must not be shared across concurrent solves.
type Scratch struct {
	ub    []int
	order []siteCost
	tasks []int
	place Placement
}

// Solve returns an exact optimal placement, or ErrInfeasible.
func Solve(pr *Problem) (*Placement, error) {
	return pr.SolveInto(&Scratch{})
}

// SolveInto is Solve with caller-owned scratch. The returned Placement
// aliases the scratch's buffers and is valid only until the next SolveInto
// with the same scratch; callers that retain it must copy. The adaptation
// controller solves ~10^3 placement programs per round, so the hot path
// reuses one scratch across all of them.
func (pr *Problem) SolveInto(sc *Scratch) (*Placement, error) {
	ub, err := pr.upperBoundsInto(sc.ub)
	if err != nil {
		return nil, err
	}
	sc.ub = ub

	order := sc.order[:0]
	for s := 0; s < pr.Sites; s++ {
		order = append(order, siteCost{site: topology.SiteID(s), cost: pr.CostPerTask(topology.SiteID(s))})
	}
	sc.order = order
	slices.SortFunc(order, func(a, b siteCost) int {
		if a.cost != b.cost {
			return cmp.Compare(a.cost, b.cost)
		}
		return cmp.Compare(a.site, b.site)
	})

	tasks := sc.tasks[:0]
	if cap(tasks) < pr.Sites {
		tasks = make([]int, pr.Sites)
	} else {
		tasks = tasks[:pr.Sites]
		for i := range tasks {
			tasks[i] = 0
		}
	}
	sc.tasks = tasks
	sc.place = Placement{TasksPerSite: tasks}
	result := &sc.place
	remaining := pr.Parallelism
	for _, cand := range order {
		if remaining == 0 {
			break
		}
		n := min(remaining, ub[cand.site])
		if n <= 0 {
			continue
		}
		result.TasksPerSite[cand.site] = n
		result.Cost += float64(n) * cand.cost
		remaining -= n
	}
	if remaining > 0 {
		return nil, fmt.Errorf("%w: %d of %d tasks unplaced", ErrInfeasible, remaining, pr.Parallelism)
	}
	return result, nil
}

// MaxFeasibleParallelism returns the largest total task count the
// constraints admit (Σ_s ub[s] evaluated with the given parallelism used
// for the bandwidth shares). The adaptation policy uses it to size
// scale-outs.
func (pr *Problem) MaxFeasibleParallelism() (int, error) {
	ub, err := pr.UpperBounds()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, b := range ub {
		total += b
	}
	return total, nil
}
