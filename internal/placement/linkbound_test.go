package placement

import "testing"

// linkBound must return the largest integer x with (x/p)·rate < capacity
// (strict). The epsilon that shields float noise used to be an absolute
// 1e-9, which vanishes below the float64 ulp at planet-scale magnitudes;
// these tests pin the relative-epsilon replacement at small, boundary,
// tiny and huge scales. Powers of two keep every intermediate exact.
func TestLinkBoundSmall(t *testing.T) {
	cases := []struct {
		name              string
		rate, capacity, p float64
		want              int
	}{
		{"integral bound", 1, 2, 4, 7},              // bound 8, strict -> 7
		{"fractional bound", 3, 2, 4, 2},            // bound 8/3 -> 2
		{"bound exactly 1", 1, 0.25, 4, 0},          // bound 1, strict -> 0
		{"bound below 1", 1, 0.125, 4, 0},           // bound 0.5 -> 0
		{"zero rate unbinding", 0, 2, 4, 4},         // never binds -> p
		{"zero capacity", 1, 0, 4, 0},               // link down -> 0
		{"negative capacity", 1, -2, 4, 0},          // degraded link -> 0
		{"tiny magnitudes", 0x1p-40, 0x1p-38, 2, 7}, // bound 8 at 2^-38 scale
	}
	for _, tc := range cases {
		if got := linkBound(tc.rate, tc.capacity, tc.p); got != tc.want {
			t.Errorf("%s: linkBound(%v, %v, %v) = %d, want %d", tc.name, tc.rate, tc.capacity, tc.p, got, tc.want)
		}
	}
}

func TestLinkBoundHugeScaleStrictness(t *testing.T) {
	// bound = 2^33 exactly. The old absolute epsilon (1e-9 < half an ulp
	// at this magnitude) rounded away, returning x = 2^33 — violating the
	// strict inequality. The relative epsilon must stay strictly below
	// while conceding at most a ~1e-9 relative margin.
	const bound = float64(1 << 33)
	x := linkBound(1, bound, 1)
	if float64(x) >= bound {
		t.Fatalf("linkBound = %d violates strict (x/p)·rate < capacity at bound 2^33", x)
	}
	if x < (1<<33)-32 {
		t.Fatalf("linkBound = %d over-conservative, want within 32 of 2^33", x)
	}
}

func TestLinkBoundOverflowGuard(t *testing.T) {
	// bound = p·capacity/rate = 4·2^30/2^-40 = 2^72, past 2^63 where the
	// float→int conversion is implementation-defined (negative on amd64
	// before the guard). Must clamp to the large positive sentinel.
	got := linkBound(0x1p-40, 0x1p30, 4)
	if got != int(1e15) {
		t.Fatalf("linkBound(2^-40, 2^30, 4) = %d, want clamp to 1e15", got)
	}
	// Sentinel must still dominate any real slot count and sum safely.
	if got <= 0 {
		t.Fatalf("overflow guard returned non-positive bound %d", got)
	}
}

func TestUpperBoundsUseHugeLinkSentinel(t *testing.T) {
	// A near-zero rate over a fat link must leave the slot constraint in
	// charge (the pre-guard code could exclude the site entirely via a
	// negative bound).
	pr := baseProblem(2, 3)
	pr.InputBytesPerSec = 1e-12
	pr.OutputBytesPerSec = 1e-12
	ub, err := pr.UpperBounds()
	if err != nil {
		t.Fatal(err)
	}
	for s, b := range ub {
		if b != pr.AvailableSlots[s] {
			t.Fatalf("ub[%d] = %d, want slot bound %d", s, b, pr.AvailableSlots[s])
		}
	}
}
