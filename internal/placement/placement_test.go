package placement

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
)

// grid builds a Problem over `m` sites with uniform latency/bandwidth
// matrices supplied as closures over the given tables.
func grid(m int, lat [][]time.Duration, bw [][]float64) (latFn func(a, b topology.SiteID) time.Duration, bwFn func(a, b topology.SiteID) float64) {
	latFn = func(a, b topology.SiteID) time.Duration { return lat[a][b] }
	bwFn = func(a, b topology.SiteID) float64 { return bw[a][b] }
	return latFn, bwFn
}

func uniformMatrices(m int, l time.Duration, b float64) ([][]time.Duration, [][]float64) {
	lat := make([][]time.Duration, m)
	bw := make([][]float64, m)
	for i := range lat {
		lat[i] = make([]time.Duration, m)
		bw[i] = make([]float64, m)
		for j := range lat[i] {
			if i == j {
				lat[i][j] = 0
				bw[i][j] = 1e12
				continue
			}
			lat[i][j] = l
			bw[i][j] = b
		}
	}
	return lat, bw
}

func baseProblem(m, p int) *Problem {
	lat, bw := uniformMatrices(m, 50*time.Millisecond, 10e6)
	latFn, bwFn := grid(m, lat, bw)
	slots := make([]int, m)
	for i := range slots {
		slots[i] = 4
	}
	return &Problem{
		Sites:             m,
		Parallelism:       p,
		AvailableSlots:    slots,
		Upstream:          []Endpoint{{Site: 0, Weight: 1}},
		Downstream:        []Endpoint{{Site: 1, Weight: 1}},
		InputBytesPerSec:  1e6,
		OutputBytesPerSec: 1e6,
		Alpha:             0.8,
		Latency:           latFn,
		Bandwidth:         bwFn,
		Pinned:            -1,
	}
}

func TestSolvePrefersColocation(t *testing.T) {
	// With uniform inter-site latency, sites 0 (upstream) and 1
	// (downstream) have cost 50ms each; everything else costs 100ms.
	pr := baseProblem(4, 2)
	pl, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if pl.TasksPerSite[0]+pl.TasksPerSite[1] != 2 {
		t.Fatalf("placement %v does not co-locate with endpoints", pl)
	}
	if pl.Total() != 2 {
		t.Fatalf("Total = %d, want 2", pl.Total())
	}
}

func TestSolveRespectsSlotCapacity(t *testing.T) {
	pr := baseProblem(3, 6)
	pr.AvailableSlots = []int{1, 2, 8}
	pl, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	for s, n := range pl.TasksPerSite {
		if n > pr.AvailableSlots[s] {
			t.Fatalf("site %d over capacity: %d > %d", s, n, pr.AvailableSlots[s])
		}
	}
	if pl.Total() != 6 {
		t.Fatalf("Total = %d, want 6", pl.Total())
	}
}

func TestSolveInfeasibleSlots(t *testing.T) {
	pr := baseProblem(2, 10)
	pr.AvailableSlots = []int{2, 2}
	_, err := Solve(pr)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBandwidthConstraintLimitsShare(t *testing.T) {
	// Input 8 MB/s from site 0; link 0->2 has only 1 MB/s capacity, so at
	// α=0.8 a task share above 0.8/8 = 10% of p=4 (i.e. >0.4 tasks → 0
	// tasks... bound = p·αB/λ = 4·0.8e6/8e6 = 0.4 → 0 tasks) fits at
	// site 2. Sites 0 and 1 have 100 MB/s links and fit everything.
	m := 3
	lat, bw := uniformMatrices(m, 50*time.Millisecond, 100e6)
	bw[0][2] = 1e6
	latFn, bwFn := grid(m, lat, bw)
	pr := &Problem{
		Sites:             m,
		Parallelism:       4,
		AvailableSlots:    []int{1, 2, 8},
		Upstream:          []Endpoint{{Site: 0, Weight: 1}},
		Downstream:        []Endpoint{{Site: 1, Weight: 1}},
		InputBytesPerSec:  8e6,
		OutputBytesPerSec: 1e5,
		Alpha:             0.8,
		Latency:           latFn,
		Bandwidth:         bwFn,
		Pinned:            -1,
	}
	ub, err := pr.UpperBounds()
	if err != nil {
		t.Fatal(err)
	}
	if ub[2] != 0 {
		t.Fatalf("ub[2] = %d, want 0 (bandwidth-bound)", ub[2])
	}
	// Only 1+2 slots remain elsewhere: infeasible for p=4.
	if _, err := Solve(pr); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Raising the link capacity restores feasibility.
	bw[0][2] = 100e6
	pl, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Total() != 4 {
		t.Fatalf("Total = %d, want 4", pl.Total())
	}
}

func TestStrictInequalityOnBound(t *testing.T) {
	// bound = p·αB/λ exactly 2.0 → at most 1 task (strict <).
	if got := linkBound(4e6, 0.8*10e6, 1); got != 1 {
		// p=1: bound = 1*8e6/4e6 = 2.0 → largest int < 2.0 is 1.
		t.Fatalf("linkBound = %d, want 1", got)
	}
	if got := linkBound(3e6, 0.8*10e6, 1); got != 2 {
		// bound = 8/3 = 2.67 → 2.
		t.Fatalf("linkBound = %d, want 2", got)
	}
	if got := linkBound(0, 8e6, 5); got != 5 {
		t.Fatalf("zero-rate linkBound = %d, want p", got)
	}
	if got := linkBound(1e6, 0, 5); got != 0 {
		t.Fatalf("zero-capacity linkBound = %d, want 0", got)
	}
}

func TestPinnedPlacement(t *testing.T) {
	pr := baseProblem(4, 2)
	pr.Pinned = 3
	pl, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if pl.TasksPerSite[3] != 2 || pl.Total() != 2 {
		t.Fatalf("pinned placement = %v", pl)
	}
	pr.Pinned = 2
	pr.AvailableSlots[2] = 1
	if _, err := Solve(pr); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible for over-pinned site", err)
	}
}

func TestConservativeModeTighter(t *testing.T) {
	// Two upstream endpoints each carrying half the input. In weighted
	// mode each link carries w·λ̂ = 0.5λ̂; in conservative mode each link
	// must fit the whole λ̂ share.
	m := 3
	lat, bw := uniformMatrices(m, 10*time.Millisecond, 2e6)
	latFn, bwFn := grid(m, lat, bw)
	pr := &Problem{
		Sites:          m,
		Parallelism:    2,
		AvailableSlots: []int{0, 0, 8},
		Upstream: []Endpoint{
			{Site: 0, Weight: 0.5},
			{Site: 1, Weight: 0.5},
		},
		InputBytesPerSec: 3e6,
		Alpha:            0.8,
		Latency:          latFn,
		Bandwidth:        bwFn,
		Pinned:           -1,
	}
	ubW, err := pr.UpperBounds()
	if err != nil {
		t.Fatal(err)
	}
	pr.Conservative = true
	ubC, err := pr.UpperBounds()
	if err != nil {
		t.Fatal(err)
	}
	if !(ubC[2] < ubW[2]) {
		t.Fatalf("conservative ub %d not tighter than weighted ub %d", ubC[2], ubW[2])
	}
}

func TestCostPerTask(t *testing.T) {
	pr := baseProblem(4, 1)
	// Site 0: upstream co-located (0ms) + 50ms to downstream = 0.05.
	if got := pr.CostPerTask(0); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("CostPerTask(0) = %v, want 0.05", got)
	}
	// Site 2: 50ms from upstream + 50ms to downstream = 0.1.
	if got := pr.CostPerTask(2); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("CostPerTask(2) = %v, want 0.1", got)
	}
}

func TestValidation(t *testing.T) {
	pr := baseProblem(2, 1)
	pr.Alpha = 1.5
	if _, err := Solve(pr); err == nil {
		t.Fatal("alpha out of range accepted")
	}
	pr = baseProblem(2, 0)
	if _, err := Solve(pr); err == nil {
		t.Fatal("zero parallelism accepted")
	}
	pr = baseProblem(2, 1)
	pr.AvailableSlots = []int{1}
	if _, err := Solve(pr); err == nil {
		t.Fatal("mismatched slots accepted")
	}
}

func TestMaxFeasibleParallelism(t *testing.T) {
	pr := baseProblem(3, 2)
	pr.AvailableSlots = []int{1, 2, 3}
	got, err := pr.MaxFeasibleParallelism()
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("MaxFeasibleParallelism = %d, want 6", got)
	}
}

// bruteForce exhaustively minimizes Σ c_s x_s subject to Σ x_s = p and
// 0 ≤ x_s ≤ ub_s, confirming the greedy solution is exactly optimal.
func bruteForce(pr *Problem, ub []int) (float64, bool) {
	best := math.Inf(1)
	found := false
	m := pr.Sites
	var rec func(s, remaining int, cost float64)
	rec = func(s, remaining int, cost float64) {
		if cost >= best {
			return
		}
		if s == m {
			if remaining == 0 {
				best = cost
				found = true
			}
			return
		}
		c := pr.CostPerTask(topology.SiteID(s))
		for n := 0; n <= min(ub[s], remaining); n++ {
			rec(s+1, remaining-n, cost+float64(n)*c)
		}
	}
	rec(0, pr.Parallelism, 0)
	return best, found
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		m := 2 + rng.Intn(4)
		p := 1 + rng.Intn(6)
		lat := make([][]time.Duration, m)
		bw := make([][]float64, m)
		for i := range lat {
			lat[i] = make([]time.Duration, m)
			bw[i] = make([]float64, m)
			for j := range lat[i] {
				if i == j {
					bw[i][j] = 1e12
					continue
				}
				lat[i][j] = time.Duration(1+rng.Intn(200)) * time.Millisecond
				bw[i][j] = float64(1+rng.Intn(20)) * 1e6
			}
		}
		latFn, bwFn := grid(m, lat, bw)
		slots := make([]int, m)
		for i := range slots {
			slots[i] = rng.Intn(5)
		}
		ups := []Endpoint{{Site: topology.SiteID(rng.Intn(m)), Weight: 1}}
		downs := []Endpoint{{Site: topology.SiteID(rng.Intn(m)), Weight: 1}}
		pr := &Problem{
			Sites:             m,
			Parallelism:       p,
			AvailableSlots:    slots,
			Upstream:          ups,
			Downstream:        downs,
			InputBytesPerSec:  float64(rng.Intn(30)) * 1e6,
			OutputBytesPerSec: float64(rng.Intn(30)) * 1e6,
			Alpha:             0.8,
			Latency:           latFn,
			Bandwidth:         bwFn,
			Pinned:            -1,
		}
		ub, err := pr.UpperBounds()
		if err != nil {
			t.Fatal(err)
		}
		want, feasible := bruteForce(pr, ub)
		pl, err := Solve(pr)
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: err = %v, want ErrInfeasible", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
		if math.Abs(pl.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: cost = %v, want %v (pl %v)", trial, pl.Cost, want, pl)
		}
	}
}

func TestPlacementHelpers(t *testing.T) {
	pl := &Placement{TasksPerSite: []int{0, 2, 0, 1}}
	sites := pl.Sites()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 3 {
		t.Fatalf("Sites = %v", sites)
	}
	if pl.Total() != 3 {
		t.Fatalf("Total = %d", pl.Total())
	}
	if got := pl.String(); got != "{1:2 3:1}" {
		t.Fatalf("String = %q", got)
	}
}
