package faults

import (
	"strings"
	"testing"
	"time"
)

func TestValidateScheduleRejectsOverlaps(t *testing.T) {
	cases := []struct {
		name string
		fs   []Fault
	}{
		{"same-site-crash-windows", []Fault{
			{Kind: SiteCrash, At: 10 * time.Second, For: 60 * time.Second, Site: 1},
			{Kind: SiteCrash, At: 30 * time.Second, For: 10 * time.Second, Site: 1},
		}},
		{"crash-vs-slow-same-site", []Fault{
			{Kind: SiteCrash, At: 10 * time.Second, For: 60 * time.Second, Site: 2},
			{Kind: SiteSlow, At: 40 * time.Second, For: 60 * time.Second, Site: 2, Factor: 0.5},
		}},
		{"same-link", []Fault{
			{Kind: LinkDown, At: 10 * time.Second, For: 30 * time.Second, From: 0, To: 1},
			{Kind: LinkSlow, At: 20 * time.Second, For: 30 * time.Second, From: 0, To: 1, Factor: 0.5},
		}},
		{"permanent-never-closes", []Fault{
			{Kind: LinkDown, At: 10 * time.Second, From: 0, To: 1}, // For=0: permanent
			{Kind: LinkDown, At: time.Hour, For: time.Second, From: 0, To: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateSchedule(tc.fs); err == nil {
				t.Fatalf("overlapping schedule %v accepted", tc.fs)
			}
		})
	}
}

func TestValidateScheduleErrorAnnotatesPositions(t *testing.T) {
	fs := []Fault{
		{Kind: SiteSlow, At: 10 * time.Second, For: 30 * time.Second, Site: 0, Factor: 0.5},
		{Kind: SiteCrash, At: 20 * time.Second, For: 30 * time.Second, Site: 1},
		{Kind: SiteCrash, At: 40 * time.Second, For: 5 * time.Second, Site: 1},
	}
	err := ValidateSchedule(fs)
	if err == nil {
		t.Fatal("overlap not rejected")
	}
	// 1-based positions: the third fault collides with the second.
	for _, want := range []string{"fault 3", "fault 2", "site 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestValidateScheduleAcceptsNonOverlapping(t *testing.T) {
	ok := [][]Fault{
		// Same site, back-to-back windows: [10,40) then [40,70).
		{
			{Kind: SiteCrash, At: 10 * time.Second, For: 30 * time.Second, Site: 1},
			{Kind: SiteSlow, At: 40 * time.Second, For: 30 * time.Second, Site: 1, Factor: 0.5},
		},
		// Concurrent faults on different sites.
		{
			{Kind: SiteCrash, At: 10 * time.Second, For: 30 * time.Second, Site: 1},
			{Kind: SiteCrash, At: 10 * time.Second, For: 30 * time.Second, Site: 2},
		},
		// Opposite directions of one physical link are distinct targets.
		{
			{Kind: LinkDown, At: 10 * time.Second, For: 30 * time.Second, From: 0, To: 1},
			{Kind: LinkDown, At: 10 * time.Second, For: 30 * time.Second, From: 1, To: 0},
		},
		// A site fault never conflicts with a link fault, even at the
		// site's own endpoint.
		{
			{Kind: SiteCrash, At: 10 * time.Second, For: 30 * time.Second, Site: 1},
			{Kind: LinkSlow, At: 10 * time.Second, For: 30 * time.Second, From: 1, To: 2, Factor: 0.5},
		},
		nil,
	}
	for _, fs := range ok {
		if err := ValidateSchedule(fs); err != nil {
			t.Errorf("valid schedule %v rejected: %v", fs, err)
		}
	}
}

func TestParseRejectsOverlappingScript(t *testing.T) {
	_, err := Parse("crash@10s:site=1,for=60s; slow@30s:site=1,factor=0.5,for=10s")
	if err == nil {
		t.Fatal("Parse accepted a script with overlapping faults")
	}
	if !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("error %q does not explain the overlap", err)
	}
	if _, err := Parse("crash@10s:site=1,for=20s; slow@30s:site=1,factor=0.5,for=10s"); err != nil {
		t.Fatalf("Parse rejected a back-to-back script: %v", err)
	}
}
