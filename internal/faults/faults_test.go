package faults

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestParseScript(t *testing.T) {
	fs, err := Parse("crash@300s:site=3,for=120s; linkdown@100s:from=1,to=3,for=60s;slow@200s:site=2,factor=0.25 ; linkslow@50s:from=0,to=2,factor=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: SiteCrash, At: 300 * time.Second, For: 120 * time.Second, Site: 3},
		{Kind: LinkDown, At: 100 * time.Second, For: 60 * time.Second, From: 1, To: 3},
		{Kind: SiteSlow, At: 200 * time.Second, Site: 2, Factor: 0.25},
		{Kind: LinkSlow, At: 50 * time.Second, From: 0, To: 2, Factor: 0.5},
	}
	if len(fs) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(fs), len(want))
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, fs[i], want[i])
		}
	}
}

func TestParseRoundTripsThroughString(t *testing.T) {
	in := []Fault{
		{Kind: SiteCrash, At: 5 * time.Minute, For: 2 * time.Minute, Site: 7},
		{Kind: SiteSlow, At: 10 * time.Second, Site: 1, Factor: 0.125},
		{Kind: LinkDown, At: 0, From: 2, To: 4},
		{Kind: LinkSlow, At: time.Hour, For: time.Minute, From: 4, To: 2, Factor: 0.75},
	}
	var specs []string
	for _, f := range in {
		specs = append(specs, f.String())
	}
	out, err := Parse(strings.Join(specs, ";"))
	if err != nil {
		t.Fatalf("reparse of %q: %v", strings.Join(specs, ";"), err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("round trip %q -> %+v, want %+v", specs[i], out[i], in[i])
		}
	}
}

func TestParseRejectsBadScripts(t *testing.T) {
	bad := []string{
		"crash:site=3",                      // no @time
		"melt@10s:site=1",                   // unknown kind
		"crash@abc:site=1",                  // bad time
		"crash@10s",                         // missing site
		"crash@10s:sight=1",                 // unknown key
		"crash@10s:site=x",                  // bad site
		"crash@10s:site=1,site=2",           // duplicate key
		"crash@10s:site=1,for=-5s",          // negative duration
		"slow@10s:site=1",                   // missing factor
		"slow@10s:site=1,factor=1.5",        // factor out of range
		"linkdown@10s:from=1",               // missing to
		"linkdown@10s:from=1,to=1",          // self link
		"linkslow@10s:from=1,to=2",          // missing factor
		"linkslow@10s:from=1,to=2,factor=0", // factor out of range
		"crash@10s:site",                    // not key=value
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
	// Empty and all-whitespace scripts are valid no-ops.
	for _, s := range []string{"", " ; ;"} {
		fs, err := Parse(s)
		if err != nil || len(fs) != 0 {
			t.Errorf("Parse(%q) = %v, %v; want empty", s, fs, err)
		}
	}
}

// A for=0s or negative window is a script mistake, not a permanent
// fault: it must be rejected, and the error must carry the 1-based
// script position of the offending fault so multi-fault scripts are
// debuggable.
func TestParseRejectsNonPositiveWindows(t *testing.T) {
	cases := []struct {
		script   string
		position string // "fault N" fragment the error must name
	}{
		{"crash@10s:site=1,for=0s", "fault 1"},
		{"crash@10s:site=1,for=-5s", "fault 1"},
		{"crash@10s:site=1,for=30s; slow@20s:site=2,factor=0.5,for=0s", "fault 2"},
		{"crash@10s:site=1,for=30s; linkdown@20s:from=0,to=1,for=40s; ctrldown@30s:region=1,for=-1ms", "fault 3"},
	}
	for _, c := range cases {
		_, err := Parse(c.script)
		if err == nil {
			t.Errorf("Parse(%q) accepted a non-positive for= window", c.script)
			continue
		}
		if !strings.Contains(err.Error(), c.position) {
			t.Errorf("Parse(%q) error %q does not name %s", c.script, err, c.position)
		}
		if !strings.Contains(err.Error(), "must be positive") {
			t.Errorf("Parse(%q) error %q does not explain the constraint", c.script, err)
		}
	}
}

// deployRig builds src(site0) → map(site1) → sink(site1) over three
// 80 Mbps sites, all on the virtual clock.
func deployRig(t *testing.T) (*engine.Engine, *netsim.Network, *vclock.Scheduler) {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 1000,
	})
	mp := g.AddOperator(plan.Operator{
		Name: "map", Kind: plan.KindMap, Splittable: true,
		Selectivity: 1, OutEventBytes: 100, CostPerEvent: 1,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 1})
	g.MustConnect(src, mp)
	g.MustConnect(mp, snk)

	const n = 3
	sites := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sites[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: 8}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 100000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 80
			lat[i][j] = 40 * time.Millisecond
		}
	}
	top, err := topology.New(sites, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := engine.New(engine.Config{}, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[mp].Sites = []topology.SiteID{1}
	pp.Stages[snk].Sites = []topology.SiteID{1}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	return eng, net, sched
}

type recordingRecoverer struct {
	crashes []topology.SiteID
}

func (r *recordingRecoverer) OnSiteCrash(s topology.SiteID) { r.crashes = append(r.crashes, s) }

func TestInjectorAppliesAndHealsFaults(t *testing.T) {
	eng, net, sched := deployRig(t)
	inj := NewInjector(eng, net, nil)
	rec := &recordingRecoverer{}
	inj.SetRecoverer(rec)

	script := "crash@10s:site=1,for=20s; linkslow@5s:from=0,to=1,factor=0.5,for=10s; slow@5s:site=2,factor=0.5,for=10s"
	fs, err := Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Schedule(sched, fs); err != nil {
		t.Fatal(err)
	}

	if err := sched.RunUntil(vclock.Time(12 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !eng.SiteDown(1) {
		t.Fatal("site 1 not down at t=12s")
	}
	if len(rec.crashes) != 1 || rec.crashes[0] != 1 {
		t.Fatalf("recoverer saw crashes %v, want [1]", rec.crashes)
	}
	if got := net.Capacity(0, 1, sched.Now()); got != 5e6 {
		t.Fatalf("degraded 0→1 capacity = %v, want 5e6", got)
	}

	if err := sched.RunUntil(vclock.Time(16 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := net.Capacity(0, 1, sched.Now()); got != 10e6 {
		t.Fatalf("healed 0→1 capacity = %v, want 1e7", got)
	}
	if !eng.SiteDown(1) {
		t.Fatal("site 1 healed early")
	}

	if err := sched.RunUntil(vclock.Time(40 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if eng.SiteDown(1) {
		t.Fatal("site 1 still down after its restart at t=30s")
	}
	if len(rec.crashes) != 1 {
		t.Fatalf("restart re-notified the recoverer: %v", rec.crashes)
	}
}

func TestScheduleRejectsInvalidFault(t *testing.T) {
	eng, net, sched := deployRig(t)
	inj := NewInjector(eng, net, nil)
	err := inj.Schedule(sched, []Fault{{Kind: SiteSlow, At: time.Second, Site: 1, Factor: 2}})
	if err == nil {
		t.Fatal("invalid fault scheduled")
	}
}

func TestScheduleRejectsSitesOutsideTopology(t *testing.T) {
	eng, net, sched := deployRig(t)
	inj := NewInjector(eng, net, nil)
	for _, f := range []Fault{
		{Kind: SiteCrash, At: time.Second, Site: 99},
		{Kind: SiteSlow, At: time.Second, Site: -1, Factor: 0.5},
		{Kind: LinkDown, At: time.Second, From: 0, To: 3},
		{Kind: LinkSlow, At: time.Second, From: 7, To: 0, Factor: 0.5},
	} {
		if err := inj.Schedule(sched, []Fault{f}); err == nil {
			t.Errorf("%s: out-of-topology site scheduled", f)
		}
	}
}
