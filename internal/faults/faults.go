// Package faults models partial failures of the wide-area deployment
// (§8.6): site crashes with restart, WAN link blackouts and degradations,
// and site-wide stragglers. A Fault is a declarative description; the
// Injector schedules faults on the virtual clock, applies them to the
// engine and the network simulator, and notifies a Recoverer (the adapt
// controller) so checkpoint-driven recovery can begin. The package also
// parses the waspd -fault flag DSL, e.g.
//
//	crash@300s:site=3,for=120s
//	slow@200s:site=2,factor=0.25,for=400s
//	linkdown@100s:from=1,to=3,for=60s
//	linkslow@100s:from=1,to=3,factor=0.5
//	ctrldown@200s:region=1,for=120s
//	telemloss@100s:rate=0.5,for=300s
//	ctrldelay@100s:delay=2s,for=300s
//
// The ctrl* kinds impair the simulated control plane (telemetry reports
// and controller commands) rather than the data plane, and require a run
// with the control plane enabled.
//
// Multiple faults are separated by semicolons. "for" schedules the heal
// (site restart, link repair, straggler recovery); without it the fault
// is permanent.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Kind enumerates the fault types.
type Kind int

const (
	// SiteCrash kills a site: every task group on it is lost and must be
	// recovered from checkpoints elsewhere. "for" restarts the site
	// (empty) after the outage.
	SiteCrash Kind = iota
	// SiteSlow degrades a site's compute capacity to Factor — a
	// straggler affecting every task group on the site.
	SiteSlow
	// LinkDown blacks out the directed From→To WAN link.
	LinkDown
	// LinkSlow degrades the directed From→To WAN link to Factor of its
	// trace-driven capacity.
	LinkSlow
	// CtrlDown partitions one control-plane region from the controller:
	// its telemetry reports and the controller's commands toward it are
	// lost for the window. Requires a control plane (SetControlPlane).
	CtrlDown
	// TelemLoss drops each telemetry report independently with
	// probability Rate for the window. Requires a control plane.
	TelemLoss
	// CtrlDelay adds Delay to every control-plane message in both
	// directions for the window. Requires a control plane.
	CtrlDelay
)

func (k Kind) String() string {
	switch k {
	case SiteCrash:
		return "crash"
	case SiteSlow:
		return "slow"
	case LinkDown:
		return "linkdown"
	case LinkSlow:
		return "linkslow"
	case CtrlDown:
		return "ctrldown"
	case TelemLoss:
		return "telemloss"
	case CtrlDelay:
		return "ctrldelay"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled failure.
type Fault struct {
	Kind Kind
	// At is when the fault strikes (virtual time).
	At time.Duration
	// For, when positive, heals the fault after this long: site restart,
	// link repair, straggler recovery. Zero means permanent.
	For time.Duration
	// Site is the victim of SiteCrash/SiteSlow.
	Site topology.SiteID
	// From/To name the directed link of LinkDown/LinkSlow.
	From, To topology.SiteID
	// Factor is the capacity fraction for SiteSlow/LinkSlow (0 < f < 1).
	Factor float64
	// Region is the control-plane region CtrlDown partitions.
	Region int
	// Rate is the TelemLoss report drop probability (0 < r ≤ 1).
	Rate float64
	// Delay is the CtrlDelay per-message added latency (> 0).
	Delay time.Duration
}

// String renders the fault in the DSL syntax it parses from.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s:", f.Kind, f.At)
	switch f.Kind {
	case SiteCrash:
		fmt.Fprintf(&b, "site=%d", int(f.Site))
	case SiteSlow:
		fmt.Fprintf(&b, "site=%d,factor=%g", int(f.Site), f.Factor)
	case LinkDown:
		fmt.Fprintf(&b, "from=%d,to=%d", int(f.From), int(f.To))
	case LinkSlow:
		fmt.Fprintf(&b, "from=%d,to=%d,factor=%g", int(f.From), int(f.To), f.Factor)
	case CtrlDown:
		fmt.Fprintf(&b, "region=%d", f.Region)
	case TelemLoss:
		fmt.Fprintf(&b, "rate=%g", f.Rate)
	case CtrlDelay:
		fmt.Fprintf(&b, "delay=%s", f.Delay)
	}
	if f.For > 0 {
		fmt.Fprintf(&b, ",for=%s", f.For)
	}
	return b.String()
}

// Validate checks the fault's parameters.
func (f Fault) Validate() error {
	if f.At < 0 {
		return fmt.Errorf("faults: %s: negative injection time", f.Kind)
	}
	if f.For < 0 {
		return fmt.Errorf("faults: %s: negative duration", f.Kind)
	}
	switch f.Kind {
	case SiteCrash:
	case SiteSlow:
		if f.Factor <= 0 || f.Factor >= 1 {
			return fmt.Errorf("faults: slow factor %g not in (0,1)", f.Factor)
		}
	case LinkDown:
		if f.From == f.To {
			return fmt.Errorf("faults: linkdown from=to=%d", int(f.From))
		}
	case LinkSlow:
		if f.From == f.To {
			return fmt.Errorf("faults: linkslow from=to=%d", int(f.From))
		}
		if f.Factor <= 0 || f.Factor >= 1 {
			return fmt.Errorf("faults: linkslow factor %g not in (0,1)", f.Factor)
		}
	case CtrlDown:
		if f.Region < 0 {
			return fmt.Errorf("faults: ctrldown region %d negative", f.Region)
		}
	case TelemLoss:
		if f.Rate <= 0 || f.Rate > 1 {
			return fmt.Errorf("faults: telemloss rate %g not in (0,1]", f.Rate)
		}
	case CtrlDelay:
		if f.Delay <= 0 {
			return fmt.Errorf("faults: ctrldelay delay %s not positive", f.Delay)
		}
	default:
		return fmt.Errorf("faults: unknown kind %d", int(f.Kind))
	}
	return nil
}

// sites lists every site the fault references, for topology range checks.
func (f Fault) sites() []topology.SiteID {
	switch f.Kind {
	case SiteCrash, SiteSlow:
		return []topology.SiteID{f.Site}
	case LinkDown, LinkSlow:
		return []topology.SiteID{f.From, f.To}
	}
	return nil
}

// target identifies what a fault acts on, for overlap detection: site
// faults key by the victim site, link faults by the directed link. Site
// and link faults never conflict with each other (a crash of a link's
// endpoint composes fine with the link fault).
func (f Fault) target() string {
	switch f.Kind {
	case SiteCrash, SiteSlow:
		return fmt.Sprintf("site %d", int(f.Site))
	case LinkDown, LinkSlow:
		return fmt.Sprintf("link %d→%d", int(f.From), int(f.To))
	case CtrlDown:
		return fmt.Sprintf("ctrl region %d", f.Region)
	case TelemLoss:
		return "telemetry"
	case CtrlDelay:
		return "ctrl delay"
	}
	return ""
}

// overlaps reports whether two active windows [At, At+For) intersect.
// For == 0 means permanent: the window never closes.
func overlaps(a, b Fault) bool {
	aEnd, bEnd := a.At+a.For, b.At+b.For
	if a.For == 0 {
		aEnd = 1<<63 - 1
	}
	if b.For == 0 {
		bEnd = 1<<63 - 1
	}
	return a.At < bEnd && b.At < aEnd
}

// ValidateSchedule rejects schedules with two faults active on the same
// site or the same directed link at the same time: the heal of the first
// would silently undo the second (SetSiteStraggler and SetLinkFault hold
// one value per target), making the script's meaning order-dependent.
// Positions are 1-based script positions, matching Parse's error style.
func ValidateSchedule(fs []Fault) error {
	for i := 1; i < len(fs); i++ {
		for j := 0; j < i; j++ {
			if fs[i].target() != fs[j].target() || !overlaps(fs[i], fs[j]) {
				continue
			}
			return fmt.Errorf("fault %d %q overlaps fault %d %q on %s",
				i+1, fs[i].String(), j+1, fs[j].String(), fs[i].target())
		}
	}
	return nil
}

// HasControlFaults reports whether any fault in the schedule acts on the
// control plane — such schedules need a Plane wired up before Schedule.
func HasControlFaults(fs []Fault) bool {
	for _, f := range fs {
		if f.Kind.isCtrl() {
			return true
		}
	}
	return false
}

// Recoverer reacts to detected failures — the adapt controller implements
// it to run checkpoint-driven recovery.
type Recoverer interface {
	// OnSiteCrash is invoked when a site crash is detected. The engine
	// has already torn the site down; the recoverer's job is to re-place
	// the dead tasks and restore their state.
	OnSiteCrash(site topology.SiteID)
}

// ControlPlane is the injector's hook into the simulated control plane
// (implemented by *ctrlplane.Plane). Without one, ctrl fault kinds are
// rejected at Schedule time.
type ControlPlane interface {
	NumRegions() int
	SetRegionPartition(region int, down bool)
	SetLossRate(rate float64)
	SetExtraDelay(d time.Duration)
}

// Injector applies scheduled faults to a deployment.
type Injector struct {
	eng  *engine.Engine
	net  *netsim.Network
	rec  Recoverer
	ctrl ControlPlane
	obs  *obs.Observer
}

// NewInjector creates an injector for one engine/network pair. The
// observer may be nil.
func NewInjector(eng *engine.Engine, net *netsim.Network, o *obs.Observer) *Injector {
	return &Injector{eng: eng, net: net, obs: o}
}

// SetRecoverer wires failure detection to a recoverer. Without one,
// crashes strike but nothing heals the placement (the no-recovery
// baseline).
func (in *Injector) SetRecoverer(r Recoverer) { in.rec = r }

// SetControlPlane wires ctrl fault kinds to an impaired control plane.
func (in *Injector) SetControlPlane(p ControlPlane) { in.ctrl = p }

// isCtrl reports whether the kind acts on the control plane.
func (k Kind) isCtrl() bool { return k == CtrlDown || k == TelemLoss || k == CtrlDelay }

// Schedule validates the fault script and arms every fault (and its heal)
// on the scheduler. Faults are armed in a deterministic order: by
// injection time, then by script position.
func (in *Injector) Schedule(sched *vclock.Scheduler, fs []Fault) error {
	n := in.net.Topology().N()
	for _, f := range fs {
		if err := f.Validate(); err != nil {
			return err
		}
		for _, s := range f.sites() {
			if int(s) < 0 || int(s) >= n {
				return fmt.Errorf("faults: %s: site %d outside the topology [0,%d)", f.Kind, int(s), n)
			}
		}
		if f.Kind.isCtrl() {
			if in.ctrl == nil {
				return fmt.Errorf("faults: %s requires an impaired control plane (enable it with -ctrl)", f.Kind)
			}
			if f.Kind == CtrlDown && f.Region >= in.ctrl.NumRegions() {
				return fmt.Errorf("faults: ctrldown region %d outside [0,%d)", f.Region, in.ctrl.NumRegions())
			}
		}
	}
	ordered := make([]Fault, len(fs))
	copy(ordered, fs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for _, f := range ordered {
		f := f
		sched.At(vclock.Time(f.At), func(now vclock.Time) { in.apply(f, now) })
		if f.For > 0 {
			sched.At(vclock.Time(f.At+f.For), func(now vclock.Time) { in.heal(f, now) })
		}
	}
	return nil
}

// apply strikes one fault.
func (in *Injector) apply(f Fault, now vclock.Time) {
	if in.obs != nil {
		in.obs.Emit("fault.inject",
			obs.String("kind", f.Kind.String()),
			obs.String("spec", f.String()))
	}
	switch f.Kind {
	case SiteCrash:
		in.eng.CrashSite(f.Site)
		if in.rec != nil {
			in.rec.OnSiteCrash(f.Site)
		}
	case SiteSlow:
		in.eng.SetSiteStraggler(f.Site, f.Factor)
	case LinkDown:
		in.net.SetLinkFault(f.From, f.To, 0)
	case LinkSlow:
		in.net.SetLinkFault(f.From, f.To, f.Factor)
	case CtrlDown:
		in.ctrl.SetRegionPartition(f.Region, true)
	case TelemLoss:
		in.ctrl.SetLossRate(f.Rate)
	case CtrlDelay:
		in.ctrl.SetExtraDelay(f.Delay)
	}
}

// heal reverses one fault at the end of its For window.
func (in *Injector) heal(f Fault, now vclock.Time) {
	if in.obs != nil {
		in.obs.Emit("fault.heal",
			obs.String("kind", f.Kind.String()),
			obs.String("spec", f.String()))
	}
	switch f.Kind {
	case SiteCrash:
		in.eng.RestoreSite(f.Site)
	case SiteSlow:
		in.eng.SetSiteStraggler(f.Site, 1)
	case LinkDown, LinkSlow:
		in.net.ClearLinkFault(f.From, f.To)
	case CtrlDown:
		in.ctrl.SetRegionPartition(f.Region, false)
	case TelemLoss:
		in.ctrl.SetLossRate(0)
	case CtrlDelay:
		in.ctrl.SetExtraDelay(0)
	}
}

// Parse reads a semicolon-separated fault script in the DSL documented at
// the top of the package. Beyond per-fault validation, the script as a
// whole must be coherent: faults whose active windows overlap on the same
// site or directed link are rejected with both positions named.
func Parse(s string) ([]Fault, error) {
	var out []Fault
	for i, tok := range strings.Split(s, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		f, err := parseOne(tok)
		if err != nil {
			return nil, fmt.Errorf("fault %d %q: %w", i+1, tok, err)
		}
		out = append(out, f)
	}
	if err := ValidateSchedule(out); err != nil {
		return nil, err
	}
	return out, nil
}

// parseOne reads one `kind@at[:key=val,...]` clause.
func parseOne(s string) (Fault, error) {
	head, params, _ := strings.Cut(s, ":")
	kindStr, atStr, ok := strings.Cut(head, "@")
	if !ok {
		return Fault{}, fmt.Errorf("missing @time (want kind@time:params)")
	}
	var f Fault
	switch strings.ToLower(strings.TrimSpace(kindStr)) {
	case "crash":
		f.Kind = SiteCrash
	case "slow", "straggle", "straggler":
		f.Kind = SiteSlow
	case "linkdown", "blackout":
		f.Kind = LinkDown
	case "linkslow":
		f.Kind = LinkSlow
	case "ctrldown":
		f.Kind = CtrlDown
	case "telemloss":
		f.Kind = TelemLoss
	case "ctrldelay":
		f.Kind = CtrlDelay
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q", kindStr)
	}
	at, err := time.ParseDuration(strings.TrimSpace(atStr))
	if err != nil {
		return Fault{}, fmt.Errorf("bad time %q: %v", atStr, err)
	}
	f.At = at

	seen := make(map[string]bool)
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Fault{}, fmt.Errorf("bad parameter %q (want key=value)", kv)
			}
			key, val = strings.TrimSpace(strings.ToLower(key)), strings.TrimSpace(val)
			if seen[key] {
				return Fault{}, fmt.Errorf("duplicate parameter %q", key)
			}
			seen[key] = true
			switch key {
			case "site":
				n, err := strconv.Atoi(val)
				if err != nil {
					return Fault{}, fmt.Errorf("bad site %q", val)
				}
				f.Site = topology.SiteID(n)
			case "from":
				n, err := strconv.Atoi(val)
				if err != nil {
					return Fault{}, fmt.Errorf("bad from %q", val)
				}
				f.From = topology.SiteID(n)
			case "to":
				n, err := strconv.Atoi(val)
				if err != nil {
					return Fault{}, fmt.Errorf("bad to %q", val)
				}
				f.To = topology.SiteID(n)
			case "factor":
				x, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Fault{}, fmt.Errorf("bad factor %q", val)
				}
				f.Factor = x
			case "for":
				d, err := time.ParseDuration(val)
				if err != nil {
					return Fault{}, fmt.Errorf("bad duration %q", val)
				}
				if d <= 0 {
					// A zero or negative window would either schedule
					// nothing or silently mean "permanent" — both are
					// script mistakes. Omit for= for a permanent fault.
					return Fault{}, fmt.Errorf("for=%s is not a fault window (must be positive; omit for= for a permanent fault)", val)
				}
				f.For = d
			case "region":
				n, err := strconv.Atoi(val)
				if err != nil {
					return Fault{}, fmt.Errorf("bad region %q", val)
				}
				f.Region = n
			case "rate":
				x, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Fault{}, fmt.Errorf("bad rate %q", val)
				}
				f.Rate = x
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil {
					return Fault{}, fmt.Errorf("bad delay %q", val)
				}
				f.Delay = d
			default:
				return Fault{}, fmt.Errorf("unknown parameter %q", key)
			}
		}
	}
	// Required parameters per kind.
	switch f.Kind {
	case SiteCrash, SiteSlow:
		if !seen["site"] {
			return Fault{}, fmt.Errorf("%s requires site=", f.Kind)
		}
	case LinkDown, LinkSlow:
		if !seen["from"] || !seen["to"] {
			return Fault{}, fmt.Errorf("%s requires from= and to=", f.Kind)
		}
	}
	if (f.Kind == SiteSlow || f.Kind == LinkSlow) && !seen["factor"] {
		return Fault{}, fmt.Errorf("%s requires factor=", f.Kind)
	}
	switch f.Kind {
	case CtrlDown:
		if !seen["region"] {
			return Fault{}, fmt.Errorf("ctrldown requires region=")
		}
	case TelemLoss:
		if !seen["rate"] {
			return Fault{}, fmt.Errorf("telemloss requires rate=")
		}
	case CtrlDelay:
		if !seen["delay"] {
			return Fault{}, fmt.Errorf("ctrldelay requires delay=")
		}
	}
	return f, f.Validate()
}
