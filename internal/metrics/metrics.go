// Package metrics implements WASP's runtime monitoring model (§3.2–3.3):
// per-operator execution metrics (processing rate λP, output rate λO,
// selectivity σ), health diagnosis (compute- vs network-constrained), and
// the recursive estimation of the *actual* workload λ̂ from source rates —
// which sees through backpressure-suppressed observed rates.
package metrics

import (
	"fmt"
	"math"

	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// OperatorSample is one monitoring-interval aggregate for one operator,
// summed over all of its tasks (the paper aggregates task metrics per
// operator).
type OperatorSample struct {
	Op plan.OpID
	// ProcessingRate λP: events/s actually processed.
	ProcessingRate float64
	// OutputRate λO: events/s emitted.
	OutputRate float64
	// ArrivalRate λI: events/s observed arriving (post-backpressure).
	ArrivalRate float64
	// SourceRate: for sources, the actual generation rate λO[src] —
	// the ground truth the estimator starts from.
	SourceRate float64
	// Backpressure reports whether any task throttled its upstreams
	// during the interval.
	Backpressure bool
	// QueueLen is the total events queued at the operator (input plus
	// send queues) at sample time.
	QueueLen float64
	// InputQueueLen is the events waiting in the operator's input
	// queues: large values indicate the operator itself cannot keep up
	// (compute-bound); small values with depressed arrivals indicate the
	// network upstream is the constraint.
	InputQueueLen float64
	// SendQueueLen is the events waiting in the operator's outbound
	// send queues (data stuck on constrained links to downstream).
	SendQueueLen float64
	// Tasks is the operator's current parallelism.
	Tasks int
}

// Selectivity returns measured σ = λO/λP, or fallback when no events were
// processed during the interval.
func (s OperatorSample) Selectivity(fallback float64) float64 {
	if s.ProcessingRate <= 0 {
		return fallback
	}
	return s.OutputRate / s.ProcessingRate
}

// Snapshot is one monitoring round across all operators of a job.
type Snapshot struct {
	At  vclock.Time
	Ops map[plan.OpID]OperatorSample
}

// Condition classifies an operator's execution health (§3.2).
type Condition int

// Operator health conditions.
const (
	// Healthy: λP = λI and λI ≈ Σ_u λO[u], no backpressure.
	Healthy Condition = iota + 1
	// ComputeConstrained: λP < λI — insufficient processing capacity.
	ComputeConstrained
	// NetworkConstrained: λI < Σ_u λO[u] — the links from upstream
	// cannot deliver the stream.
	NetworkConstrained
)

// String names the condition.
func (c Condition) String() string {
	switch c {
	case Healthy:
		return "healthy"
	case ComputeConstrained:
		return "compute-constrained"
	case NetworkConstrained:
		return "network-constrained"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Diagnose classifies one operator given its sample, the aggregate output
// rate of its upstream operators, and a relative tolerance (e.g. 0.05 for
// 5%). Compute constraints dominate network constraints when both hold
// (the compute fix also frees the input path).
func Diagnose(s OperatorSample, upstreamOut float64, tol float64) Condition {
	if s.ProcessingRate < s.ArrivalRate*(1-tol) {
		return ComputeConstrained
	}
	if s.ArrivalRate < upstreamOut*(1-tol) {
		return NetworkConstrained
	}
	if s.Backpressure {
		// Backpressure with matching local rates means the constraint is
		// upstream of the data we see: treat as compute-constrained at
		// this operator (it throttled its inputs).
		return ComputeConstrained
	}
	return Healthy
}

// EstimateActual computes the expected (actual-workload) rates λ̂I and λ̂O
// for every operator (§3.3):
//
//	λ̂P = λ̂I = Σ_u λ̂O[u]   (or λO[src] at sources)
//	λ̂O = σ·λ̂I
//
// using each operator's *measured* selectivity from the snapshot (falling
// back to the plan's modelled selectivity for idle operators) and the
// actual source generation rates. This is what adaptation decisions use
// instead of backpressure-distorted observed rates.
func EstimateActual(g *plan.Graph, snap *Snapshot) (inRate, outRate map[plan.OpID]float64, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	inRate = make(map[plan.OpID]float64, len(order))
	outRate = make(map[plan.OpID]float64, len(order))
	for _, id := range order {
		op := g.Operator(id)
		sample := snap.Ops[id]
		var in float64
		if op.Kind == plan.KindSource {
			in = sample.SourceRate
			inRate[id] = in
			outRate[id] = in // sources emit what they generate
			continue
		}
		for _, u := range g.Upstream(id) {
			in += outRate[u]
		}
		inRate[id] = in
		outRate[id] = sample.Selectivity(op.Selectivity) * in
	}
	return inRate, outRate, nil
}

// ScaleFactor computes the minimum parallelism p′ that resolves a compute
// bottleneck (§4.2, after DS2):
//
//	p′ = ⌈ λ̂I / λP · p ⌉
//
// λP is the operator's aggregate processing rate at parallelism p. The
// result is never below p, and extreme rate ratios clamp to
// maxParallelism rather than overflowing the int conversion.
func ScaleFactor(expectedIn, processingRate float64, p int) int {
	if processingRate <= 0 || p < 1 {
		return p + 1 // cannot estimate throughput: probe upward by one
	}
	q := math.Ceil(expectedIn * float64(p) / processingRate)
	if q >= maxParallelism {
		return maxParallelism
	}
	pPrime := int(q)
	if pPrime < p {
		return p
	}
	return pPrime
}

// maxParallelism bounds ScaleFactor's result: float64→int conversion is
// implementation-defined once the quotient exceeds the int range, and no
// real deployment approaches this anyway.
const maxParallelism = 1 << 30

// ProcessingRatio is the paper's quality metric (§8.3): processed rate
// over actual source rate across an interval; 1.0 means the query kept up.
func ProcessingRatio(processed, generated float64) float64 {
	if generated <= 0 {
		return 1
	}
	return processed / generated
}
