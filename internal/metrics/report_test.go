package metrics

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func secs(s int) vclock.Time { return vclock.Time(s) * vclock.Time(time.Second) }

// An empty first report (the idle-site heartbeat) must register the site
// as heard-from — resetting its age — while contributing nothing to the
// merged snapshot.
func TestMergerEmptyFirstReport(t *testing.T) {
	m := NewReportMerger()
	m.Absorb(SiteReport{Site: 3, At: secs(10)})

	if age, ok := m.Age(3, secs(25)); !ok || age != 15*time.Second {
		t.Fatalf("Age(3) = %v, %v; want 15s, true", age, ok)
	}
	snap := m.Snapshot(secs(25))
	if len(snap.Ops) != 0 {
		t.Fatalf("empty heartbeat produced operator samples: %+v", snap.Ops)
	}
	if got := m.Sites(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Sites() = %v; want [3]", got)
	}

	// A later real report computes rates over the full window since the
	// heartbeat (prev has no counters for the op, so deltas are absolute).
	m.Absorb(SiteReport{Site: 3, At: secs(30), Ops: []OpCounters{
		{Op: plan.OpID(1), Arrived: 400, Processed: 400, Tasks: 2},
	}})
	snap = m.Snapshot(secs(30))
	s, ok := snap.Ops[plan.OpID(1)]
	if !ok {
		t.Fatal("op 1 missing from snapshot after real report")
	}
	// 400 events over the 20s heartbeat→report window.
	if s.ArrivalRate != 20 {
		t.Errorf("ArrivalRate = %v; want 20", s.ArrivalRate)
	}
	if s.Tasks != 2 {
		t.Errorf("Tasks = %d; want 2", s.Tasks)
	}
}

// A cumulative counter that moves backwards means the site's tasks
// restarted from zero (crash + recovery): the current value is the whole
// delta, not a huge negative rate.
func TestMergerCounterReset(t *testing.T) {
	m := NewReportMerger()
	m.Absorb(SiteReport{Site: 0, At: secs(10), Ops: []OpCounters{
		{Op: plan.OpID(2), Arrived: 10000, Processed: 9000},
	}})
	m.Absorb(SiteReport{Site: 0, At: secs(20), Ops: []OpCounters{
		{Op: plan.OpID(2), Arrived: 300, Processed: 250}, // restarted from zero
	}})
	snap := m.Snapshot(secs(20))
	s := snap.Ops[plan.OpID(2)]
	if s.ArrivalRate != 30 {
		t.Errorf("ArrivalRate after reset = %v; want 30 (300 events / 10s)", s.ArrivalRate)
	}
	if s.ProcessingRate != 25 {
		t.Errorf("ProcessingRate after reset = %v; want 25", s.ProcessingRate)
	}
}

// A never-reporting site is invisible: infinitely stale by Age and absent
// from snapshots — callers must not mistake "no data" for "no load".
func TestMergerNeverReportingSite(t *testing.T) {
	m := NewReportMerger()
	m.Absorb(SiteReport{Site: 1, At: secs(10), Ops: []OpCounters{
		{Op: plan.OpID(4), Arrived: 100},
	}})

	if _, ok := m.Age(topology.SiteID(7), secs(100)); ok {
		t.Fatal("Age for a never-reporting site returned ok=true")
	}
	if got := m.Sites(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Sites() = %v; want just [1]", got)
	}
}

// Reports reordered in flight must not move rates backwards: a report
// older than the site's last absorbed one is discarded.
func TestMergerDiscardsStaleReport(t *testing.T) {
	m := NewReportMerger()
	m.Absorb(SiteReport{Site: 2, At: secs(30), Ops: []OpCounters{
		{Op: plan.OpID(1), Arrived: 900},
	}})
	m.Absorb(SiteReport{Site: 2, At: secs(20), Ops: []OpCounters{
		{Op: plan.OpID(1), Arrived: 600}, // late arrival of an older report
	}})

	if age, ok := m.Age(2, secs(40)); !ok || age != 10*time.Second {
		t.Fatalf("Age = %v, %v; want 10s, true (stale report must not regress the clock)", age, ok)
	}
	// Still a first report: rates span the clock origin, not the stale one.
	snap := m.Snapshot(secs(40))
	if s := snap.Ops[plan.OpID(1)]; s.ArrivalRate != 30 {
		t.Errorf("ArrivalRate = %v; want 30 (900 events / 30s first-report window)", s.ArrivalRate)
	}
}
