package metrics

import (
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// OpCounters is one operator's share of a site telemetry report. Event
// counters are *cumulative* since the operator's tasks started on the
// site — rates are computed controller-side from deltas between
// consecutive reports, so a lost report degrades resolution instead of
// losing events, and a counter that moves backwards betrays a task
// restart (the site crashed and came back with fresh groups).
type OpCounters struct {
	Op plan.OpID
	// Cumulative event counters.
	Arrived   float64
	Processed float64
	Emitted   float64
	Generated float64
	// Instantaneous gauges at report generation time.
	InputQueueLen float64
	SendQueueLen  float64
	Tasks         int
	Backpressure  bool
}

// SiteReport is one site's local metric report: what the Local Metric
// Monitor (§3.1) ships to the controller. At is the virtual-clock
// generation timestamp at the site — the controller receives the report
// later (or never) and judges staleness against this stamp, not against
// arrival time.
type SiteReport struct {
	Site topology.SiteID
	At   vclock.Time
	// Ops is ascending by Op; empty when the site hosts no tasks.
	Ops []OpCounters
}

// siteHistory keeps the two most recent reports from one site: rates come
// from the delta between them.
type siteHistory struct {
	last    SiteReport
	prev    SiteReport
	hasPrev bool
}

// ReportMerger folds per-site reports into controller-side snapshots. It
// keeps the last report per site (with its age) and computes per-operator
// rates from cumulative-counter deltas, detecting counter resets the same
// way the flight recorder does: a negative delta means the counter
// restarted from zero, so the current value *is* the delta.
type ReportMerger struct {
	sites map[topology.SiteID]*siteHistory
}

// NewReportMerger returns an empty merger: every site starts unheard-from.
func NewReportMerger() *ReportMerger {
	return &ReportMerger{sites: make(map[topology.SiteID]*siteHistory)}
}

// Absorb folds one received report into the merger. Reports that are not
// newer than the site's last absorbed report are discarded: delivery
// delays can reorder reports in flight, and rates must be computed over a
// forward interval.
func (m *ReportMerger) Absorb(rep SiteReport) {
	h, ok := m.sites[rep.Site]
	if !ok {
		m.sites[rep.Site] = &siteHistory{last: rep}
		return
	}
	if rep.At <= h.last.At {
		return
	}
	h.prev, h.hasPrev = h.last, true
	h.last = rep
}

// Age returns how old the site's freshest evidence is at time now.
// ok=false means the site has never reported — callers must treat it as
// infinitely stale, not fresh.
func (m *ReportMerger) Age(site topology.SiteID, now vclock.Time) (time.Duration, bool) {
	h, ok := m.sites[site]
	if !ok {
		return 0, false
	}
	return time.Duration(now - h.last.At), true
}

// Sites returns the sites heard from at least once, ascending.
func (m *ReportMerger) Sites() []topology.SiteID {
	return detutil.SortedKeys(m.sites)
}

// Snapshot merges the last report per site into one monitoring snapshot.
// Sites that never reported contribute nothing: their queues, tasks and
// rates are invisible to the controller, which is exactly the partial
// view a partitioned control plane has. Gauges come from each site's last
// report; rates are deltas between its last two reports (or since the
// run start for a site's first report).
func (m *ReportMerger) Snapshot(now vclock.Time) *Snapshot {
	snap := &Snapshot{At: now, Ops: make(map[plan.OpID]OperatorSample)}
	for _, site := range detutil.SortedKeys(m.sites) {
		h := m.sites[site]
		interval := intervalSeconds(h)
		prevOps := make(map[plan.OpID]OpCounters, len(h.prev.Ops))
		if h.hasPrev {
			for _, oc := range h.prev.Ops {
				prevOps[oc.Op] = oc
			}
		}
		for _, oc := range h.last.Ops {
			s := snap.Ops[oc.Op]
			s.Op = oc.Op
			prev := prevOps[oc.Op] // zero value when site first reported the op
			if interval > 0 {
				s.ArrivalRate += counterDelta(oc.Arrived, prev.Arrived) / interval
				s.ProcessingRate += counterDelta(oc.Processed, prev.Processed) / interval
				s.OutputRate += counterDelta(oc.Emitted, prev.Emitted) / interval
				s.SourceRate += counterDelta(oc.Generated, prev.Generated) / interval
			}
			s.InputQueueLen += oc.InputQueueLen
			s.SendQueueLen += oc.SendQueueLen
			s.QueueLen = s.InputQueueLen + s.SendQueueLen
			s.Tasks += oc.Tasks
			s.Backpressure = s.Backpressure || oc.Backpressure
			snap.Ops[oc.Op] = s
		}
	}
	return snap
}

// intervalSeconds is the rate window for one site: last-to-previous
// report spacing, or since the virtual-clock origin for a first report.
func intervalSeconds(h *siteHistory) float64 {
	if h.hasPrev {
		return (h.last.At - h.prev.At).Seconds()
	}
	return h.last.At.Seconds()
}

// counterDelta applies the flight recorder's reset-detection idiom: a
// cumulative counter that moved backwards restarted from zero (task
// restart after a crash), so the current value is the whole delta.
func counterDelta(cur, prev float64) float64 {
	d := cur - prev
	if d < 0 {
		d = cur
	}
	return d
}
