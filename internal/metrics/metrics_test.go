package metrics

import (
	"math"
	"testing"

	"github.com/wasp-stream/wasp/internal/plan"
)

func TestSelectivity(t *testing.T) {
	s := OperatorSample{ProcessingRate: 100, OutputRate: 25}
	if got := s.Selectivity(1); got != 0.25 {
		t.Fatalf("Selectivity = %v, want 0.25", got)
	}
	idle := OperatorSample{}
	if got := idle.Selectivity(0.7); got != 0.7 {
		t.Fatalf("idle Selectivity = %v, want fallback 0.7", got)
	}
}

func TestDiagnose(t *testing.T) {
	tests := []struct {
		name        string
		sample      OperatorSample
		upstreamOut float64
		want        Condition
	}{
		{
			name:        "healthy",
			sample:      OperatorSample{ProcessingRate: 100, ArrivalRate: 100},
			upstreamOut: 100,
			want:        Healthy,
		},
		{
			name:        "compute constrained",
			sample:      OperatorSample{ProcessingRate: 60, ArrivalRate: 100},
			upstreamOut: 100,
			want:        ComputeConstrained,
		},
		{
			name:        "network constrained",
			sample:      OperatorSample{ProcessingRate: 70, ArrivalRate: 70},
			upstreamOut: 100,
			want:        NetworkConstrained,
		},
		{
			name:        "compute dominates network",
			sample:      OperatorSample{ProcessingRate: 50, ArrivalRate: 70},
			upstreamOut: 100,
			want:        ComputeConstrained,
		},
		{
			name:        "within tolerance",
			sample:      OperatorSample{ProcessingRate: 97, ArrivalRate: 100},
			upstreamOut: 102,
			want:        Healthy,
		},
		{
			name:        "backpressured but rates match",
			sample:      OperatorSample{ProcessingRate: 100, ArrivalRate: 100, Backpressure: true},
			upstreamOut: 100,
			want:        ComputeConstrained,
		},
		{
			// Both constraints hold at once: the operator can neither
			// process what arrives nor receive what upstream emits. The
			// compute verdict must win (its fix also frees the input path).
			name:        "simultaneous compute and network constraint",
			sample:      OperatorSample{ProcessingRate: 40, ArrivalRate: 80},
			upstreamOut: 200,
			want:        ComputeConstrained,
		},
		{
			// Idle upstream: nothing is flowing, nothing is wrong.
			name:        "zero upstream output",
			sample:      OperatorSample{},
			upstreamOut: 0,
			want:        Healthy,
		},
		{
			// Idle upstream but the operator still throttles: residual
			// backlog from a burst; compute-constrained, not healthy.
			name:        "zero upstream output with backpressure",
			sample:      OperatorSample{Backpressure: true},
			upstreamOut: 0,
			want:        ComputeConstrained,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Diagnose(tt.sample, tt.upstreamOut, 0.05); got != tt.want {
				t.Fatalf("Diagnose = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConditionString(t *testing.T) {
	if Healthy.String() != "healthy" ||
		ComputeConstrained.String() != "compute-constrained" ||
		NetworkConstrained.String() != "network-constrained" {
		t.Fatal("Condition.String mismatch")
	}
	if got := Condition(42).String(); got != "Condition(42)" {
		t.Fatalf("unknown Condition String = %q", got)
	}
}

// chain builds src → filter(σ=0.5 model) → sink.
func chain(t *testing.T) (*plan.Graph, []plan.OpID) {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, SourceRate: 1000,
	})
	fil := g.AddOperator(plan.Operator{
		Name: "f", Kind: plan.KindFilter, Selectivity: 0.5,
	})
	snk := g.AddOperator(plan.Operator{Name: "k", Kind: plan.KindSink, Selectivity: 1})
	g.MustConnect(src, fil)
	g.MustConnect(fil, snk)
	return g, []plan.OpID{src, fil, snk}
}

func TestEstimateActualSeesThroughBackpressure(t *testing.T) {
	g, ids := chain(t)
	// Observed rates are suppressed by backpressure: the filter only
	// processed 400 ev/s with measured σ=0.3, but the source actually
	// generates 2000 ev/s.
	snap := &Snapshot{Ops: map[plan.OpID]OperatorSample{
		ids[0]: {Op: ids[0], SourceRate: 2000, OutputRate: 400},
		ids[1]: {Op: ids[1], ProcessingRate: 400, OutputRate: 120, ArrivalRate: 400},
	}}
	in, out, err := EstimateActual(g, snap)
	if err != nil {
		t.Fatal(err)
	}
	if in[ids[1]] != 2000 {
		t.Fatalf("λ̂I[filter] = %v, want 2000 (actual workload)", in[ids[1]])
	}
	// Measured σ = 120/400 = 0.3 applied to the actual workload.
	if math.Abs(out[ids[1]]-600) > 1e-9 {
		t.Fatalf("λ̂O[filter] = %v, want 600", out[ids[1]])
	}
	if in[ids[2]] != out[ids[1]] {
		t.Fatalf("sink λ̂I = %v, want %v", in[ids[2]], out[ids[1]])
	}
}

func TestEstimateActualFallsBackToModelSelectivity(t *testing.T) {
	g, ids := chain(t)
	snap := &Snapshot{Ops: map[plan.OpID]OperatorSample{
		ids[0]: {Op: ids[0], SourceRate: 1000},
		// filter has no sample (idle): model σ=0.5 applies.
	}}
	_, out, err := EstimateActual(g, snap)
	if err != nil {
		t.Fatal(err)
	}
	if out[ids[1]] != 500 {
		t.Fatalf("λ̂O[filter] = %v, want 500 via model σ", out[ids[1]])
	}
}

func TestScaleFactor(t *testing.T) {
	tests := []struct {
		expectedIn, procRate float64
		p, want              int
	}{
		{2000, 1000, 1, 2},               // double workload → p'=2
		{1500, 1000, 2, 3},               // λ̂I/λP=1.5 × p=2 → 3
		{1000, 1000, 2, 2},               // balanced → unchanged
		{500, 1000, 2, 2},                // underloaded → never shrinks below p
		{1001, 1000, 1, 2},               // slight overload rounds up
		{1000, 0, 3, 4},                  // no throughput signal → probe upward
		{3000, 1000, 3, 9},               // exact ratio: no spurious round-up
		{1e19, 1, 1, maxParallelism},     // huge ratio clamps, not overflows
		{1e300, 1e-3, 2, maxParallelism}, // quotient beyond int64 range
	}
	for _, tt := range tests {
		if got := ScaleFactor(tt.expectedIn, tt.procRate, tt.p); got != tt.want {
			t.Fatalf("ScaleFactor(%v,%v,%d) = %d, want %d",
				tt.expectedIn, tt.procRate, tt.p, got, tt.want)
		}
	}
	// The old int64 round-trip turned quotients past MaxInt64 into huge
	// negative parallelism on amd64; any non-positive result is a
	// regression regardless of platform.
	if got := ScaleFactor(1e19, 1, 1); got < 1 {
		t.Fatalf("ScaleFactor(1e19,1,1) = %d, want positive", got)
	}
}

func TestProcessingRatio(t *testing.T) {
	if got := ProcessingRatio(860, 1000); got != 0.86 {
		t.Fatalf("ProcessingRatio = %v", got)
	}
	if got := ProcessingRatio(0, 0); got != 1 {
		t.Fatalf("zero-workload ratio = %v, want 1", got)
	}
}
