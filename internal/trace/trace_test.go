package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestConstant(t *testing.T) {
	tr := Constant(42)
	for _, at := range []vclock.Time{0, time.Second, time.Hour} {
		if got := tr.At(at); got != 42 {
			t.Fatalf("Constant.At(%v) = %v, want 42", at, got)
		}
	}
}

func TestNewRejectsUnsorted(t *testing.T) {
	_, err := New(Point{T: time.Second, V: 1}, Point{T: time.Second, V: 2})
	if err == nil {
		t.Fatal("New with duplicate times did not error")
	}
	_, err = New(Point{T: 2 * time.Second, V: 1}, Point{T: time.Second, V: 2})
	if err == nil {
		t.Fatal("New with decreasing times did not error")
	}
}

func TestAtPiecewiseConstant(t *testing.T) {
	tr, err := New(
		Point{T: 10 * time.Second, V: 1},
		Point{T: 20 * time.Second, V: 2},
		Point{T: 30 * time.Second, V: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	tr.Default = -1
	tests := []struct {
		at   vclock.Time
		want float64
	}{
		{0, -1},
		{9 * time.Second, -1},
		{10 * time.Second, 1},
		{15 * time.Second, 1},
		{20 * time.Second, 2},
		{29 * time.Second, 2},
		{30 * time.Second, 3},
		{time.Hour, 3},
	}
	for _, tt := range tests {
		if got := tr.At(tt.at); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestSteps(t *testing.T) {
	tr := Steps(300*time.Second, 1, 2, 2, 1, 1)
	tests := []struct {
		at   vclock.Time
		want float64
	}{
		{0, 1},
		{299 * time.Second, 1},
		{300 * time.Second, 2},
		{600 * time.Second, 2},
		{900 * time.Second, 1},
		{1500 * time.Second, 1},
	}
	for _, tt := range tests {
		if got := tr.At(tt.at); got != tt.want {
			t.Errorf("Steps.At(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestScale(t *testing.T) {
	tr := Steps(time.Second, 1, 2).Scale(10)
	if got := tr.At(0); got != 10 {
		t.Fatalf("scaled At(0) = %v, want 10", got)
	}
	if got := tr.At(time.Second); got != 20 {
		t.Fatalf("scaled At(1s) = %v, want 20", got)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	cfg := WalkConfig{
		Seed: 7, Start: 1, Min: 0.5, Max: 2, MaxStep: 0.3,
		Interval: time.Minute, Duration: time.Hour,
	}
	a, b := RandomWalk(cfg), RandomWalk(cfg)
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatalf("lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("point %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
	c := RandomWalk(WalkConfig{
		Seed: 8, Start: 1, Min: 0.5, Max: 2, MaxStep: 0.3,
		Interval: time.Minute, Duration: time.Hour,
	})
	same := true
	for i, p := range c.Points() {
		if p != pa[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical walks")
	}
}

func TestRandomWalkBounds(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		tr := RandomWalk(WalkConfig{
			Seed: seed, Start: 1, Min: 0.51, Max: 2.36, MaxStep: 0.4,
			Interval: time.Minute, Duration: 2 * time.Hour,
		})
		for _, p := range tr.Points() {
			if p.V < 0.51-1e-9 || p.V > 2.36+1e-9 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkPointCount(t *testing.T) {
	tr := RandomWalk(WalkConfig{
		Seed: 1, Start: 1, Min: 0.5, Max: 2, MaxStep: 0.1,
		Interval: 5 * time.Minute, Duration: time.Hour,
	})
	if got, want := tr.Len(), 13; got != want { // t=0,5,...,60
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestDiurnalMeanAndRatio(t *testing.T) {
	tr := Diurnal(24*time.Hour, 10*time.Minute, 24*time.Hour, 2)
	st := tr.Summarize()
	if math.Abs(st.Mean-1) > 0.02 {
		t.Fatalf("Diurnal mean = %v, want ~1", st.Mean)
	}
	ratio := st.Max / st.Min
	if math.Abs(ratio-2) > 0.05 {
		t.Fatalf("Diurnal peak/trough = %v, want ~2", ratio)
	}
}

func TestSummarize(t *testing.T) {
	tr := Steps(time.Second, 1, 2, 3)
	st := tr.Summarize()
	if st.Mean != 2 || st.Min != 1 || st.Max != 3 {
		t.Fatalf("Summarize = %+v", st)
	}
	if math.Abs(st.MaxDeviation-0.5) > 1e-12 {
		t.Fatalf("MaxDeviation = %v, want 0.5", st.MaxDeviation)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var tr Trace
	if st := tr.Summarize(); st != (Stats{}) {
		t.Fatalf("empty Summarize = %+v, want zero", st)
	}
}

func TestFig2BandwidthMatchesPaperStatistics(t *testing.T) {
	tr := Fig2Bandwidth(42)
	st := tr.Summarize()
	// Paper: high variation, 25%-93% deviation from the mean; mean around
	// 110 Mbps (Figure 2 shows 0-200 Mbps range).
	if st.Mean < 60 || st.Mean > 180 {
		t.Fatalf("Fig2 mean = %v Mbps, want within [60,180]", st.Mean)
	}
	if st.MaxDeviation < 0.25 {
		t.Fatalf("Fig2 max deviation = %v, want >= 0.25", st.MaxDeviation)
	}
	if st.Min < 0 {
		t.Fatalf("Fig2 min = %v, want >= 0", st.Min)
	}
	// 1 day sampled at 5-minute intervals: 289 points.
	if got := tr.Len(); got != 289 {
		t.Fatalf("Fig2 Len = %d, want 289", got)
	}
}

func TestLiveFactorsWithinPaperRanges(t *testing.T) {
	bw := LiveBandwidthFactor(3, 30*time.Minute)
	for _, p := range bw.Points() {
		if p.V < 0.51 || p.V > 2.36 {
			t.Fatalf("live bandwidth factor %v outside [0.51, 2.36]", p.V)
		}
	}
	wl := LiveWorkloadFactor(3, 30*time.Minute)
	for _, p := range wl.Points() {
		if p.V < 0.8 || p.V > 2.4 {
			t.Fatalf("live workload factor %v outside [0.8, 2.4]", p.V)
		}
	}
}

func TestReflect(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{1.5, 1, 2, 1.5},
		{0.5, 1, 2, 1.5},
		{2.5, 1, 2, 1.5},
		{1, 1, 2, 1},
		{2, 1, 2, 2},
		{5, 1, 1, 1},
	}
	for _, tt := range tests {
		if got := reflect(tt.v, tt.lo, tt.hi); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("reflect(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestRandomWalkWithMatchesWrapper(t *testing.T) {
	cfg := WalkConfig{
		Seed: 5, Start: 1, Min: 0.5, Max: 2, MaxStep: 0.3,
		Interval: time.Minute, Duration: time.Hour,
	}
	a := RandomWalk(cfg)
	b := RandomWalkWith(rand.New(rand.NewSource(5)), cfg)
	if len(a.Points()) != len(b.Points()) {
		t.Fatalf("point count mismatch: %d vs %d", a.Len(), b.Len())
	}
	for i, p := range a.Points() {
		if q := b.Points()[i]; p != q {
			t.Fatalf("point %d differs: %+v vs %+v", i, p, q)
		}
	}
}
