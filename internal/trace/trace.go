// Package trace generates the deterministic, seeded time-series that drive
// WASP experiments: WAN bandwidth variation (paper Fig 2), live-environment
// bandwidth/workload variation factors (§8.6), scripted step dynamics
// (§8.4–8.5), and diurnal workload patterns (§2.2).
//
// A Trace is a piecewise-constant function of virtual time. All generators
// are pure functions of their seed, so experiments replay exactly.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// Point is one sample of a trace: the value holds from T (inclusive) until
// the next point's T (exclusive).
type Point struct {
	T vclock.Time
	V float64
}

// Trace is a piecewise-constant time series. The zero Trace evaluates to
// its Default (0 unless set).
type Trace struct {
	points  []Point // sorted by T ascending
	Default float64 // value before the first point / for an empty trace
}

// New builds a trace from points, which must be sorted by strictly
// increasing time.
func New(points ...Point) (*Trace, error) {
	for i := 1; i < len(points); i++ {
		if points[i].T <= points[i-1].T {
			return nil, fmt.Errorf("trace: points not strictly increasing at index %d (%v <= %v)",
				i, points[i].T, points[i-1].T)
		}
	}
	return &Trace{points: points}, nil
}

// Constant returns a trace that always evaluates to v.
func Constant(v float64) *Trace {
	return &Trace{Default: v}
}

// At returns the trace value at virtual time t.
//
//waspvet:hotpath
func (tr *Trace) At(t vclock.Time) float64 {
	// Binary search for the last point with T <= t.
	lo, hi := 0, len(tr.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.points[mid].T <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return tr.Default
	}
	return tr.points[lo-1].V
}

// Points returns a copy of the trace's sample points.
func (tr *Trace) Points() []Point {
	out := make([]Point, len(tr.points))
	copy(out, tr.points)
	return out
}

// Len returns the number of sample points.
func (tr *Trace) Len() int { return len(tr.points) }

// Scale returns a new trace with every value (and the default) multiplied
// by f.
func (tr *Trace) Scale(f float64) *Trace {
	pts := make([]Point, len(tr.points))
	for i, p := range tr.points {
		pts[i] = Point{T: p.T, V: p.V * f}
	}
	return &Trace{points: pts, Default: tr.Default * f}
}

// Stats summarises a trace over its sample points.
type Stats struct {
	Mean, Min, Max float64
	// MaxDeviation is max|v-mean|/mean, the paper's "deviation from the
	// mean" measure (Fig 2 reports 25%–93%).
	MaxDeviation float64
}

// Summarize computes Stats over the trace's sample points. An empty trace
// yields zero Stats.
func (tr *Trace) Summarize() Stats {
	if len(tr.points) == 0 {
		return Stats{}
	}
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, p := range tr.points {
		s.Mean += p.V
		s.Min = math.Min(s.Min, p.V)
		s.Max = math.Max(s.Max, p.V)
	}
	s.Mean /= float64(len(tr.points))
	if s.Mean != 0 {
		s.MaxDeviation = math.Max(s.Max-s.Mean, s.Mean-s.Min) / s.Mean
	}
	return s
}

// WalkConfig configures a bounded additive random walk used to model WAN
// bandwidth variation. Each Interval the factor moves by a uniform step in
// [-MaxStep, +MaxStep]·(Max-Min) and is reflected back into [Min, Max].
// The additive-with-reflection walk is drift-free, so the long-run mean
// stays near the middle of the range.
type WalkConfig struct {
	Seed     int64
	Start    float64       // initial factor (e.g. 1.0)
	Min, Max float64       // inclusive bounds for the factor
	MaxStep  float64       // max step per interval as a fraction of the range
	Interval time.Duration // sampling interval (paper: 5 minutes)
	Duration time.Duration // total trace length
}

// RandomWalk generates a bounded random-walk factor trace. It panics on an
// invalid configuration (zero interval, inverted bounds), since
// configurations are compile-time constants in experiments. The trace is
// a pure function of cfg (randomness comes from a fresh source seeded
// with cfg.Seed).
func RandomWalk(cfg WalkConfig) *Trace {
	return RandomWalkWith(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// RandomWalkWith is RandomWalk drawing from the caller's rng — for
// callers that thread one seeded source through several generators.
// cfg.Seed is ignored.
func RandomWalkWith(rng *rand.Rand, cfg WalkConfig) *Trace {
	if cfg.Interval <= 0 {
		panic("trace: RandomWalk requires a positive interval")
	}
	if cfg.Min > cfg.Max {
		panic("trace: RandomWalk bounds inverted")
	}
	v := clamp(cfg.Start, cfg.Min, cfg.Max)
	span := cfg.Max - cfg.Min
	var pts []Point
	for t := vclock.Time(0); t <= cfg.Duration; t += cfg.Interval {
		pts = append(pts, Point{T: t, V: v})
		step := (rng.Float64()*2 - 1) * cfg.MaxStep * span
		v = reflect(v+step, cfg.Min, cfg.Max)
	}
	return &Trace{points: pts, Default: cfg.Start}
}

// Steps builds a scripted step trace: factors[i] holds during
// [i*interval, (i+1)*interval). This models the paper's §8.4–8.5 dynamics,
// e.g. workload ×{1,2,2,1,1} with a 300 s interval.
func Steps(interval time.Duration, factors ...float64) *Trace {
	pts := make([]Point, len(factors))
	for i, f := range factors {
		pts[i] = Point{T: vclock.Time(i) * vclock.Time(interval), V: f}
	}
	def := 1.0
	if len(factors) > 0 {
		def = factors[0]
	}
	return &Trace{points: pts, Default: def}
}

// Diurnal builds a day/night workload pattern: a raised cosine with the
// given period whose peak/trough ratio is `ratio` (the paper cites Twitter
// day hours carrying 2× the night workload). Mean value is 1. The trace is
// sampled every `interval`.
func Diurnal(period, interval, duration time.Duration, ratio float64) *Trace {
	if ratio < 1 {
		panic("trace: Diurnal ratio must be >= 1")
	}
	// peak = 2r/(r+1), trough = 2/(r+1) so that peak/trough = r, mean = 1.
	amp := (ratio - 1) / (ratio + 1)
	var pts []Point
	for t := vclock.Time(0); t <= duration; t += interval {
		phase := 2 * math.Pi * float64(t) / float64(period)
		v := 1 - amp*math.Cos(phase) // trough at t=0 (night), peak mid-period
		pts = append(pts, Point{T: t, V: v})
	}
	return &Trace{points: pts, Default: 1}
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

// reflect folds v back into [lo, hi] by mirroring at the bounds.
func reflect(v, lo, hi float64) float64 {
	if lo == hi {
		return lo
	}
	for v < lo || v > hi {
		if v < lo {
			v = lo + (lo - v)
		}
		if v > hi {
			v = hi - (v - hi)
		}
	}
	return v
}
