package trace

import "time"

// Presets matching the measurements reported in the paper.

// Fig2Bandwidth models the one-day Oregon→Ohio WAN bandwidth measurement of
// Figure 2: mean around 110 Mbps, sampled every 5 minutes, with 25%–93%
// deviation from the mean. Values are in Mbps.
func Fig2Bandwidth(seed int64) *Trace {
	walk := RandomWalk(WalkConfig{
		Seed:     seed,
		Start:    1.0,
		Min:      0.07, // ~93% below mean
		Max:      1.75, // ~75% above mean
		MaxStep:  0.40,
		Interval: 5 * time.Minute,
		Duration: 24 * time.Hour,
	})
	const meanMbps = 110
	return walk.Scale(meanMbps)
}

// LiveBandwidthFactor models the §8.6 live-environment pair-wise bandwidth
// variation factor, which the paper reports ranging from 0.51 to 2.36.
func LiveBandwidthFactor(seed int64, duration time.Duration) *Trace {
	return RandomWalk(WalkConfig{
		Seed:     seed,
		Start:    1.0,
		Min:      0.51,
		Max:      2.36,
		MaxStep:  0.30,
		Interval: time.Minute,
		Duration: duration,
	})
}

// LiveWorkloadFactor models the §8.6 random per-source workload variation
// factor, which the paper reports ranging from 0.8 to 2.4.
func LiveWorkloadFactor(seed int64, duration time.Duration) *Trace {
	return RandomWalk(WalkConfig{
		Seed:     seed,
		Start:    1.0,
		Min:      0.8,
		Max:      2.4,
		MaxStep:  0.35,
		Interval: time.Minute,
		Duration: duration,
	})
}
