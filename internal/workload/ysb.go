// Package workload generates the evaluation workloads of §8.3: the Yahoo
// Streaming Benchmark (YSB) advertising events and a synthetic geo-tagged
// Twitter trace with realistic spatial skew, Zipfian topic popularity, and
// the 2× day/night temporal pattern reported for Twitter (§2.2). All
// generators are seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// AdEventType enumerates YSB ad event types.
type AdEventType int

// YSB event types.
const (
	AdView AdEventType = iota + 1
	AdClick
	AdPurchase
)

// String names the event type.
func (t AdEventType) String() string {
	switch t {
	case AdView:
		return "view"
	case AdClick:
		return "click"
	case AdPurchase:
		return "purchase"
	default:
		return fmt.Sprintf("AdEventType(%d)", int(t))
	}
}

// AdEvent is one YSB advertising event.
type AdEvent struct {
	UserID     int64
	PageID     int64
	AdID       int64
	AdType     string
	EventType  AdEventType
	CampaignID int64
	Time       vclock.Time
}

// YSBConfig parameterises the YSB generator.
type YSBConfig struct {
	Seed int64
	// Campaigns is the number of ad campaigns (default 100; the paper
	// notes YSB's key distribution is low).
	Campaigns int
	// AdsPerCampaign maps ads onto campaigns (default 10).
	AdsPerCampaign int
	// Rate is events/s (default 10000).
	Rate float64
	// Start and Duration bound the generated event times.
	Start    vclock.Time
	Duration time.Duration
}

func (c YSBConfig) withDefaults() YSBConfig {
	if c.Campaigns == 0 {
		c.Campaigns = 100
	}
	if c.AdsPerCampaign == 0 {
		c.AdsPerCampaign = 10
	}
	if c.Rate == 0 {
		c.Rate = 10000
	}
	return c
}

var adTypes = []string{"banner", "modal", "sponsored-search", "mail", "mobile"}

// GenerateYSB produces a time-ordered YSB event stream. Event types are
// drawn uniformly from {view, click, purchase} (so a view filter has
// selectivity 1/3, as in the benchmark). The stream is a pure function of
// cfg (randomness comes from a fresh source seeded with cfg.Seed).
func GenerateYSB(cfg YSBConfig) []AdEvent {
	return GenerateYSBWith(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// GenerateYSBWith is GenerateYSB drawing from the caller's rng — for
// callers that thread one seeded source through several generators.
// cfg.Seed is ignored.
func GenerateYSBWith(rng *rand.Rand, cfg YSBConfig) []AdEvent {
	c := cfg.withDefaults()
	n := int(c.Rate * c.Duration.Seconds())
	events := make([]AdEvent, 0, n)
	interval := vclock.Time(float64(time.Second) / c.Rate)
	at := c.Start
	for i := 0; i < n; i++ {
		adID := rng.Int63n(int64(c.Campaigns * c.AdsPerCampaign))
		events = append(events, AdEvent{
			UserID:     rng.Int63n(100000),
			PageID:     rng.Int63n(10000),
			AdID:       adID,
			AdType:     adTypes[rng.Intn(len(adTypes))],
			EventType:  AdEventType(rng.Intn(3) + 1),
			CampaignID: adID / int64(c.AdsPerCampaign),
			Time:       at,
		})
		at += interval
	}
	return events
}

// YSBStream converts YSB events into stream events keyed by campaign.
func YSBStream(events []AdEvent) []stream.Event {
	out := make([]stream.Event, len(events))
	for i, e := range events {
		out[i] = stream.Event{
			Time:  e.Time,
			Key:   fmt.Sprintf("c%d", e.CampaignID),
			Value: e,
		}
	}
	return out
}
