package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// Same seed, same stream — the property every experiment replay depends
// on. The *With variants must agree with the seeding wrappers, and two
// identically-seeded sources must produce identical traces.

func TestGenerateYSBSameSeed(t *testing.T) {
	cfg := YSBConfig{Seed: 42, Rate: 500, Duration: 2 * time.Second}
	a := GenerateYSB(cfg)
	b := GenerateYSB(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateYSB not reproducible for the same seed")
	}
	c := GenerateYSBWith(rand.New(rand.NewSource(42)), cfg)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("GenerateYSBWith(seeded rng) differs from GenerateYSB")
	}
}

func TestGenerateTweetsSameSeed(t *testing.T) {
	cfg := TwitterConfig{Seed: 7, Rate: 500, Duration: 2 * time.Second, Diurnal: true}
	a := GenerateTweets(cfg)
	b := GenerateTweets(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateTweets not reproducible for the same seed")
	}
	c := GenerateTweetsWith(rand.New(rand.NewSource(7)), cfg)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("GenerateTweetsWith(seeded rng) differs from GenerateTweets")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := GenerateYSB(YSBConfig{Seed: 1, Rate: 500, Duration: time.Second})
	b := GenerateYSB(YSBConfig{Seed: 2, Rate: 500, Duration: time.Second})
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical YSB streams")
	}
}

// Threading one rng through several generators must stay reproducible:
// the combined sequence is a pure function of the initial seed.
func TestSharedRNGSequenceReproducible(t *testing.T) {
	gen := func() ([]AdEvent, []Tweet) {
		rng := rand.New(rand.NewSource(99))
		ysb := GenerateYSBWith(rng, YSBConfig{Rate: 200, Duration: time.Second})
		tw := GenerateTweetsWith(rng, TwitterConfig{Rate: 200, Duration: time.Second})
		return ysb, tw
	}
	y1, t1 := gen()
	y2, t2 := gen()
	if !reflect.DeepEqual(y1, y2) || !reflect.DeepEqual(t1, t2) {
		t.Fatal("shared-rng generator sequence not reproducible")
	}
}
