package workload

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestGenerateYSBDeterministicAndOrdered(t *testing.T) {
	cfg := YSBConfig{Seed: 5, Rate: 1000, Duration: 2 * time.Second}
	a := GenerateYSB(cfg)
	b := GenerateYSB(cfg)
	if len(a) != 2000 {
		t.Fatalf("len = %d, want 2000", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across same-seed runs", i)
		}
		if i > 0 && a[i].Time < a[i-1].Time {
			t.Fatal("events not time-ordered")
		}
	}
}

func TestYSBCampaignMapping(t *testing.T) {
	events := GenerateYSB(YSBConfig{Seed: 1, Rate: 1000, Duration: time.Second})
	for _, e := range events {
		if e.CampaignID != e.AdID/10 {
			t.Fatalf("campaign %d != ad %d / 10", e.CampaignID, e.AdID)
		}
		if e.CampaignID < 0 || e.CampaignID >= 100 {
			t.Fatalf("campaign %d out of range", e.CampaignID)
		}
	}
}

func TestYSBEventTypeDistribution(t *testing.T) {
	events := GenerateYSB(YSBConfig{Seed: 2, Rate: 10000, Duration: 3 * time.Second})
	counts := make(map[AdEventType]int)
	for _, e := range events {
		counts[e.EventType]++
	}
	for _, et := range []AdEventType{AdView, AdClick, AdPurchase} {
		frac := float64(counts[et]) / float64(len(events))
		if math.Abs(frac-1.0/3) > 0.03 {
			t.Fatalf("%v fraction = %v, want ~1/3", et, frac)
		}
	}
}

func TestYSBStream(t *testing.T) {
	events := GenerateYSB(YSBConfig{Seed: 1, Rate: 100, Duration: time.Second})
	s := YSBStream(events)
	if len(s) != len(events) {
		t.Fatal("length mismatch")
	}
	if s[0].Key == "" || s[0].Value.(AdEvent) != events[0] {
		t.Fatalf("stream event = %+v", s[0])
	}
}

func TestAdEventTypeString(t *testing.T) {
	if AdView.String() != "view" || AdClick.String() != "click" || AdPurchase.String() != "purchase" {
		t.Fatal("String mismatch")
	}
}

func TestGenerateTweetsSpatialSkew(t *testing.T) {
	tweets := GenerateTweets(TwitterConfig{Seed: 7, Rate: 20000, Duration: 5 * time.Second})
	shares := CountryShares(tweets)
	if len(shares) != 8 {
		t.Fatalf("countries = %d, want 8", len(shares))
	}
	// US should dominate (weight 0.30).
	if shares["us"] < 0.25 || shares["us"] > 0.35 {
		t.Fatalf("us share = %v, want ~0.30", shares["us"])
	}
	if shares["fr"] > shares["us"] {
		t.Fatal("spatial skew inverted")
	}
}

func TestGenerateTweetsZipfTopics(t *testing.T) {
	tweets := GenerateTweets(TwitterConfig{Seed: 9, Rate: 20000, Duration: 5 * time.Second})
	counts := make(map[string]int)
	for _, tw := range tweets {
		counts[tw.Topic]++
	}
	// The most popular topic must dwarf the median: Zipf s=1.2.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if float64(maxCount) < 0.1*float64(len(tweets)) {
		t.Fatalf("top topic count %d of %d — not Zipf-skewed", maxCount, len(tweets))
	}
}

func TestDiurnalFactorShape(t *testing.T) {
	peak := diurnalFactor(vclock.Time(15*time.Hour), 0)
	trough := diurnalFactor(vclock.Time(3*time.Hour), 0)
	if math.Abs(peak/trough-2) > 0.01 {
		t.Fatalf("peak/trough = %v, want 2", peak/trough)
	}
	// Offset shifts the local peak.
	shifted := diurnalFactor(vclock.Time(6*time.Hour), 9*time.Hour) // local 15:00
	if math.Abs(shifted-peak) > 1e-9 {
		t.Fatalf("UTC offset not applied: %v vs %v", shifted, peak)
	}
}

func TestGenerateTweetsDiurnalChangesVolumeMix(t *testing.T) {
	// At 21:00 UTC the US (UTC-6) is at its local 15:00 peak while Japan
	// (UTC+9) is at its local 06:00 low; at 09:00 UTC the roles reverse.
	cfgDay := TwitterConfig{Seed: 3, Rate: 20000, Duration: 2 * time.Second, Diurnal: true,
		Start: vclock.Time(21 * time.Hour)}
	cfgNight := TwitterConfig{Seed: 3, Rate: 20000, Duration: 2 * time.Second, Diurnal: true,
		Start: vclock.Time(9 * time.Hour)}
	day := CountryShares(GenerateTweets(cfgDay))
	night := CountryShares(GenerateTweets(cfgNight))
	if !(day["us"] > night["us"]) {
		t.Fatalf("us day share %v <= night share %v", day["us"], night["us"])
	}
	if !(night["jp"] > day["jp"]) {
		t.Fatalf("jp night share %v <= day share %v", night["jp"], day["jp"])
	}
}

func TestTweetStreamKeying(t *testing.T) {
	tweets := GenerateTweets(TwitterConfig{Seed: 1, Rate: 100, Duration: time.Second})
	s := TweetStream(tweets)
	for i := range s {
		if s[i].Key != tweets[i].Country {
			t.Fatal("stream key is not the country")
		}
	}
}
