package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Tweet is one synthetic geo-tagged tweet.
type Tweet struct {
	ID      int64
	UserID  int64
	Country string
	Lang    string
	Topic   string
	Time    vclock.Time
}

// Country captures the spatial skew of the synthetic Twitter trace: a
// weight (share of global volume) and a UTC offset driving its local
// day/night cycle.
type Country struct {
	Code      string
	Weight    float64
	UTCOffset time.Duration
	Lang      string
}

// DefaultCountries approximates the global Twitter geography reported by
// Leetaru et al. (cited in §2.2): a few countries dominate volume, spread
// across time zones.
func DefaultCountries() []Country {
	return []Country{
		{Code: "us", Weight: 0.30, UTCOffset: -6 * time.Hour, Lang: "en"},
		{Code: "jp", Weight: 0.15, UTCOffset: 9 * time.Hour, Lang: "ja"},
		{Code: "gb", Weight: 0.10, UTCOffset: 0, Lang: "en"},
		{Code: "br", Weight: 0.10, UTCOffset: -3 * time.Hour, Lang: "pt"},
		{Code: "id", Weight: 0.10, UTCOffset: 7 * time.Hour, Lang: "id"},
		{Code: "in", Weight: 0.10, UTCOffset: 5*time.Hour + 30*time.Minute, Lang: "hi"},
		{Code: "de", Weight: 0.08, UTCOffset: time.Hour, Lang: "de"},
		{Code: "fr", Weight: 0.07, UTCOffset: time.Hour, Lang: "fr"},
	}
}

// TwitterConfig parameterises the tweet generator.
type TwitterConfig struct {
	Seed int64
	// Countries and their weights (default DefaultCountries).
	Countries []Country
	// Topics is the topic vocabulary size; popularity is Zipfian
	// (default 1000, s=1.2).
	Topics int
	ZipfS  float64
	// Rate is global tweets/s (default 10000).
	Rate float64
	// Diurnal applies the 2× day/night pattern per country's local time
	// when true.
	Diurnal bool
	// Start and Duration bound the generated event times.
	Start    vclock.Time
	Duration time.Duration
}

func (c TwitterConfig) withDefaults() TwitterConfig {
	if len(c.Countries) == 0 {
		c.Countries = DefaultCountries()
	}
	if c.Topics == 0 {
		c.Topics = 1000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.Rate == 0 {
		c.Rate = 10000
	}
	return c
}

// GenerateTweets produces a time-ordered synthetic tweet trace. The trace
// is a pure function of cfg (randomness comes from a fresh source seeded
// with cfg.Seed).
func GenerateTweets(cfg TwitterConfig) []Tweet {
	return GenerateTweetsWith(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// GenerateTweetsWith is GenerateTweets drawing from the caller's rng —
// for callers that thread one seeded source through several generators.
// cfg.Seed is ignored.
func GenerateTweetsWith(rng *rand.Rand, cfg TwitterConfig) []Tweet {
	c := cfg.withDefaults()
	zipf := rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Topics-1))

	var totalWeight float64
	for _, country := range c.Countries {
		totalWeight += country.Weight
	}

	n := int(c.Rate * c.Duration.Seconds())
	tweets := make([]Tweet, 0, n)
	interval := vclock.Time(float64(time.Second) / c.Rate)
	at := c.Start
	for i := 0; i < n; i++ {
		country := pickCountry(rng, c.Countries, totalWeight, at, c.Diurnal)
		tweets = append(tweets, Tweet{
			ID:      int64(i),
			UserID:  rng.Int63n(1 << 20),
			Country: country.Code,
			Lang:    country.Lang,
			Topic:   fmt.Sprintf("t%04d", zipf.Uint64()),
			Time:    at,
		})
		at += interval
	}
	return tweets
}

// pickCountry samples a country by weight, modulated by each country's
// local diurnal factor when enabled (day hours carry 2× the night volume).
func pickCountry(rng *rand.Rand, countries []Country, totalWeight float64, at vclock.Time, diurnal bool) Country {
	if !diurnal {
		x := rng.Float64() * totalWeight
		for _, c := range countries {
			x -= c.Weight
			if x <= 0 {
				return c
			}
		}
		return countries[len(countries)-1]
	}
	weights := make([]float64, len(countries))
	var sum float64
	for i, c := range countries {
		weights[i] = c.Weight * diurnalFactor(at, c.UTCOffset)
		sum += weights[i]
	}
	x := rng.Float64() * sum
	for i, c := range countries {
		x -= weights[i]
		if x <= 0 {
			return c
		}
	}
	return countries[len(countries)-1]
}

// diurnalFactor returns the 2×-day/1×-night raised-cosine factor for a
// country's local time-of-day (mean 1 over a day).
func diurnalFactor(at vclock.Time, utcOffset time.Duration) float64 {
	local := at + vclock.Time(utcOffset)
	day := vclock.Time(24 * time.Hour)
	phase := float64(((local%day)+day)%day) / float64(day)
	// Trough at local 03:00, peak at 15:00; amplitude 1/3 gives a 2:1
	// peak/trough ratio around mean 1.
	const amp = 1.0 / 3
	return 1 - amp*math.Cos(2*math.Pi*(phase-3.0/24))
}

// TweetStream converts tweets into stream events keyed by country.
func TweetStream(tweets []Tweet) []stream.Event {
	out := make([]stream.Event, len(tweets))
	for i, tw := range tweets {
		out[i] = stream.Event{Time: tw.Time, Key: tw.Country, Value: tw}
	}
	return out
}

// CountryShares returns the fraction of tweets per country.
func CountryShares(tweets []Tweet) map[string]float64 {
	counts := make(map[string]float64)
	for _, tw := range tweets {
		counts[tw.Country]++
	}
	for k := range counts {
		counts[k] /= float64(len(tweets))
	}
	return counts
}
