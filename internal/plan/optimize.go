package plan

// Logical, environment-independent optimizations (§4.3): these mirror
// classical RDBMS rewrites and are applied before plan/placement costing.

// PushDownFilters rewrites the graph in place, moving filters upstream to
// reduce data rates early:
//
//   - a filter consuming a union is replicated below the union (one copy
//     per union input), and
//   - a filter consuming a single stateless operator that commutes with
//     filtering (Operator.CommutesWithFilter) swaps with it.
//
// The rewrite repeats until it reaches a fixpoint. It returns the number of
// rewrites applied.
func PushDownFilters(g *Graph) int {
	total := 0
	for {
		n := pushDownOnce(g)
		if n == 0 {
			return total
		}
		total += n
	}
}

func pushDownOnce(g *Graph) int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0 // invalid graphs are left untouched; Validate reports them
	}
	for _, id := range order {
		op := g.Operator(id)
		if op == nil || op.Kind != KindFilter {
			continue
		}
		ups := g.Upstream(id)
		if len(ups) != 1 {
			continue
		}
		up := g.Operator(ups[0])
		switch {
		case up.Kind == KindUnion && len(g.Downstream(up.ID)) == 1:
			rewriteFilterBelowUnion(g, id, up.ID)
			return 1
		case up.Kind != KindSource && len(g.Downstream(up.ID)) == 1 &&
			len(g.Upstream(up.ID)) == 1 && up.CommutesWithFilter:
			swapFilterWithUpstream(g, id, up.ID)
			return 1
		}
	}
	return 0
}

// rewriteFilterBelowUnion replaces union→filter with per-input filters:
// each union input gets its own copy of the filter, and the union feeds
// the filter's former downstream directly.
func rewriteFilterBelowUnion(g *Graph, filterID, unionID OpID) {
	filter := *g.Operator(filterID)
	downs := g.Downstream(filterID)
	inputs := g.Upstream(unionID)

	// Detach the filter entirely.
	g.RemoveOperator(filterID)

	// Union now feeds the filter's former consumers.
	for _, d := range downs {
		g.MustConnect(unionID, d)
	}
	// Insert one filter copy on each union input.
	for _, in := range inputs {
		g.RemoveEdge(in, unionID)
		cp := filter
		cpID := g.AddOperator(cp)
		g.MustConnect(in, cpID)
		g.MustConnect(cpID, unionID)
	}
}

// swapFilterWithUpstream exchanges up→filter into filter→up when the
// upstream operator commutes with filtering.
func swapFilterWithUpstream(g *Graph, filterID, upID OpID) {
	grandUps := g.Upstream(upID) // exactly one, checked by caller
	downs := g.Downstream(filterID)

	g.RemoveEdge(grandUps[0], upID)
	g.RemoveEdge(upID, filterID)
	for _, d := range downs {
		g.RemoveEdge(filterID, d)
	}

	g.MustConnect(grandUps[0], filterID)
	g.MustConnect(filterID, upID)
	for _, d := range downs {
		g.MustConnect(upID, d)
	}
}
