package plan

import (
	"fmt"
	"math/bits"
	"strings"

	"github.com/wasp-stream/wasp/internal/detutil"
)

// LeafSet is a bitmask over the input indices of a CombineSpec. Each
// internal combine node of an expanded plan covers a LeafSet; two plans
// share a common sub-plan over a set of inputs exactly when both contain a
// node with that LeafSet (§4.3).
type LeafSet uint64

// Has reports whether leaf index i is in the set.
func (s LeafSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count returns the number of leaves in the set.
func (s LeafSet) Count() int { return bits.OnesCount64(uint64(s)) }

// String renders the set as e.g. "{0,2,3}".
func (s LeafSet) String() string {
	var parts []string
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			parts = append(parts, fmt.Sprintf("%d", i))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Tree is an unordered binary combine tree over leaf indices 0..k-1.
type Tree struct {
	Leaf int   // leaf index if L == nil
	L, R *Tree // children for internal nodes
	Set  LeafSet
}

// IsLeaf reports whether the node is a leaf.
func (t *Tree) IsLeaf() bool { return t.L == nil }

// String renders the tree, e.g. "((0+1)+(2+3))".
func (t *Tree) String() string {
	if t.IsLeaf() {
		return fmt.Sprintf("%d", t.Leaf)
	}
	return "(" + t.L.String() + "+" + t.R.String() + ")"
}

// internalSets appends the LeafSets of all internal (combine) nodes.
func (t *Tree) internalSets(out []LeafSet) []LeafSet {
	if t.IsLeaf() {
		return out
	}
	out = append(out, t.Set)
	out = t.L.internalSets(out)
	return t.R.internalSets(out)
}

// leaf returns a leaf node for index i.
func leaf(i int) *Tree { return &Tree{Leaf: i, Set: 1 << uint(i)} }

// combine returns an internal node joining l and r.
func combine(l, r *Tree) *Tree { return &Tree{Leaf: -1, L: l, R: r, Set: l.Set | r.Set} }

// EnumerateTrees returns all structurally distinct unordered binary trees
// over k labeled leaves — the alternative pairwise combine orders of a
// commutative, associative n-way join/aggregation. There are (2k-3)!! such
// trees; enumeration stops after max trees when max > 0. k must be within
// [1, 16].
func EnumerateTrees(k, max int) []*Tree {
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("plan: EnumerateTrees k=%d out of range [1,16]", k))
	}
	full := LeafSet(1<<uint(k)) - 1
	memo := make(map[LeafSet][]*Tree)
	var build func(s LeafSet) []*Tree
	build = func(s LeafSet) []*Tree {
		if ts, ok := memo[s]; ok {
			return ts
		}
		var ts []*Tree
		if s.Count() == 1 {
			ts = []*Tree{leaf(bits.TrailingZeros64(uint64(s)))}
		} else {
			// Canonical split: the left part always contains the lowest
			// leaf of s, so each unordered split is produced exactly once.
			low := LeafSet(1) << uint(bits.TrailingZeros64(uint64(s)))
			rest := s &^ low
			// Enumerate subsets of rest to join with low on the left.
			for sub := LeafSet(0); ; sub = (sub - rest) & rest {
				left := low | sub
				right := s &^ left
				if right != 0 {
					for _, lt := range build(left) {
						for _, rt := range build(right) {
							ts = append(ts, combine(lt, rt))
						}
					}
				}
				if sub == rest {
					break
				}
			}
		}
		memo[s] = ts
		return ts
	}
	trees := build(full)
	if max > 0 && len(trees) > max {
		trees = trees[:max]
	}
	return trees
}

// LeftDeepTree builds the left-deep tree combining leaves in the given
// order: ((order[0]+order[1])+order[2])+...
func LeftDeepTree(order []int) *Tree {
	if len(order) == 0 {
		panic("plan: LeftDeepTree needs at least one leaf")
	}
	t := leaf(order[0])
	for _, i := range order[1:] {
		t = combine(t, leaf(i))
	}
	return t
}

// BalancedTree builds a balanced tree over leaves 0..k-1.
func BalancedTree(k int) *Tree {
	if k < 1 {
		panic("plan: BalancedTree needs at least one leaf")
	}
	var build func(lo, hi int) *Tree
	build = func(lo, hi int) *Tree {
		if hi-lo == 1 {
			return leaf(lo)
		}
		mid := (lo + hi) / 2
		return combine(build(lo, mid), build(mid, hi))
	}
	return build(0, k)
}

// CombineSpec describes a commutative, associative n-way combine (e.g. a
// full hash join of streams at several sites, or a distributed windowed
// aggregation) whose pairwise order the Query Planner may choose and
// re-choose at runtime (§4.3, Fig 5).
type CombineSpec struct {
	// Inputs are the base-graph operators feeding the combine, in leaf-
	// index order.
	Inputs []OpID
	// Output is the base-graph operator that consumes the combined
	// stream.
	Output OpID
	// Template describes each generated binary combine node; its
	// Selectivity/sizes apply per node. ID and Name are overwritten.
	Template Operator
}

// Variant is one fully expanded logical plan, annotated with the LeafSet
// covered by each generated combine node so that common sub-plans between
// variants can be detected.
type Variant struct {
	Graph *Graph
	Tree  *Tree
	// CombineNodes maps each generated combine operator to its LeafSet.
	CombineNodes map[OpID]LeafSet
}

// Expand instantiates the combine tree into a copy of the base graph,
// wiring spec.Inputs through fresh binary combine operators into
// spec.Output. The base graph must contain no edge into spec.Output from
// the combine group (Expand adds it).
func (spec *CombineSpec) Expand(base *Graph, tree *Tree) (*Variant, error) {
	if len(spec.Inputs) < 2 {
		return nil, fmt.Errorf("plan: combine spec needs >= 2 inputs, got %d", len(spec.Inputs))
	}
	if tree.Set != LeafSet(1<<uint(len(spec.Inputs)))-1 {
		return nil, fmt.Errorf("plan: tree covers %v, want all %d inputs", tree.Set, len(spec.Inputs))
	}
	g := base.Clone()
	v := &Variant{Graph: g, Tree: tree, CombineNodes: make(map[OpID]LeafSet)}

	var build func(t *Tree) (OpID, error)
	build = func(t *Tree) (OpID, error) {
		if t.IsLeaf() {
			if t.Leaf < 0 || t.Leaf >= len(spec.Inputs) {
				return 0, fmt.Errorf("plan: leaf index %d out of range", t.Leaf)
			}
			return spec.Inputs[t.Leaf], nil
		}
		lid, err := build(t.L)
		if err != nil {
			return 0, err
		}
		rid, err := build(t.R)
		if err != nil {
			return 0, err
		}
		node := spec.Template
		node.Name = fmt.Sprintf("%s%s", spec.Template.Name, t.Set)
		// A combine node's state covers only its subtree's share of the
		// keyed aggregation state.
		node.StateBytes = spec.Template.StateBytes * float64(t.Set.Count()) / float64(len(spec.Inputs))
		id := g.AddOperator(node)
		v.CombineNodes[id] = t.Set
		if err := g.Connect(lid, id); err != nil {
			return 0, err
		}
		if err := g.Connect(rid, id); err != nil {
			return 0, err
		}
		return id, nil
	}

	root, err := build(tree)
	if err != nil {
		return nil, err
	}
	if err := g.Connect(root, spec.Output); err != nil {
		return nil, err
	}
	return v, nil
}

// StatefulLeafSets returns the LeafSets of the variant's stateful combine
// nodes — the sub-plans whose state must be preserved by any re-planning.
func (v *Variant) StatefulLeafSets() []LeafSet {
	var out []LeafSet
	for _, id := range detutil.SortedKeys(v.CombineNodes) {
		if v.Graph.Operator(id).Stateful {
			out = append(out, v.CombineNodes[id])
		}
	}
	return out
}

// AdmissibleFrom reports whether switching from the current variant to v
// preserves all stateful combine state: every stateful combine node of cur
// must appear, with the same LeafSet, in v (§4.3 — "only consider plans
// that comprise common sub-plans covering the stateful operators").
func (v *Variant) AdmissibleFrom(cur *Variant) bool {
	have := make(map[LeafSet]bool, len(v.CombineNodes))
	for _, set := range v.CombineNodes {
		have[set] = true
	}
	for _, need := range cur.StatefulLeafSets() {
		if !have[need] {
			return false
		}
	}
	return true
}
