package plan

import (
	"fmt"
	"math/bits"
	"strings"

	"github.com/wasp-stream/wasp/internal/detutil"
)

// LeafSet is a bitmask over the input indices of a CombineSpec. Each
// internal combine node of an expanded plan covers a LeafSet; two plans
// share a common sub-plan over a set of inputs exactly when both contain a
// node with that LeafSet (§4.3).
type LeafSet uint64

// Has reports whether leaf index i is in the set.
func (s LeafSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count returns the number of leaves in the set.
func (s LeafSet) Count() int { return bits.OnesCount64(uint64(s)) }

// String renders the set as e.g. "{0,2,3}".
func (s LeafSet) String() string {
	var parts []string
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			parts = append(parts, fmt.Sprintf("%d", i))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Tree is an unordered binary combine tree over leaf indices 0..k-1.
type Tree struct {
	Leaf int   // leaf index if L == nil
	L, R *Tree // children for internal nodes
	Set  LeafSet
}

// IsLeaf reports whether the node is a leaf.
func (t *Tree) IsLeaf() bool { return t.L == nil }

// String renders the tree, e.g. "((0+1)+(2+3))".
func (t *Tree) String() string {
	if t.IsLeaf() {
		return fmt.Sprintf("%d", t.Leaf)
	}
	return "(" + t.L.String() + "+" + t.R.String() + ")"
}

// internalSets appends the LeafSets of all internal (combine) nodes.
func (t *Tree) internalSets(out []LeafSet) []LeafSet {
	if t.IsLeaf() {
		return out
	}
	out = append(out, t.Set)
	out = t.L.internalSets(out)
	return t.R.internalSets(out)
}

// leaf returns a leaf node for index i.
func leaf(i int) *Tree { return &Tree{Leaf: i, Set: 1 << uint(i)} }

// combine returns an internal node joining l and r.
func combine(l, r *Tree) *Tree { return &Tree{Leaf: -1, L: l, R: r, Set: l.Set | r.Set} }

// EnumerateTrees returns structurally distinct unordered binary trees
// over k labeled leaves — the alternative pairwise combine orders of a
// commutative, associative n-way join/aggregation. There are (2k-3)!! such
// trees; when max > 0 only the first max trees of the canonical
// enumeration order are built (the generation itself stops early — it does
// not enumerate all (2k-3)!! trees and truncate, which for k=8 would build
// 135,135 trees to return 40). k must be within [1, 16].
func EnumerateTrees(k, max int) []*Tree {
	if k < 1 || k > 16 {
		panic(fmt.Sprintf("plan: EnumerateTrees k=%d out of range [1,16]", k))
	}
	full := LeafSet(1<<uint(k)) - 1
	want := treeCount(k)
	if max > 0 && int64(max) < want {
		want = int64(max)
	}
	e := &treeEnum{memo: make(map[LeafSet][]*Tree)}
	return e.build(full, want)
}

// treeCount returns (2m-3)!!, the number of unordered binary trees over m
// labeled leaves (1 for m <= 2). Fits int64 for m <= 16.
func treeCount(m int) int64 {
	n := int64(1)
	for i := int64(2*m - 3); i > 1; i -= 2 {
		n *= i
	}
	return n
}

// treeEnum builds canonical-order tree enumerations under a budget. The
// emission order is identical to the eager enumeration: splits in subset-
// iteration order (left part always contains the lowest leaf), left
// subtree major, right subtree minor.
type treeEnum struct {
	// memo holds, per LeafSet, the longest prefix built so far; complete
	// enumerations of small subsets are shared across splits.
	memo map[LeafSet][]*Tree
}

// build returns the first limit trees over s in canonical order. Because
// the per-subset tree count is the closed form (2m-3)!!, each split knows
// exactly how many left/right subtrees the remaining budget needs, so the
// recursion never builds a tree that is not emitted.
func (e *treeEnum) build(s LeafSet, limit int64) []*Tree {
	total := treeCount(s.Count())
	if limit > total {
		limit = total
	}
	if ts, ok := e.memo[s]; ok && int64(len(ts)) >= limit {
		return ts[:limit]
	}
	if s.Count() == 1 {
		ts := []*Tree{leaf(bits.TrailingZeros64(uint64(s)))}
		e.memo[s] = ts
		return ts
	}
	ts := make([]*Tree, 0, limit)
	// Canonical split: the left part always contains the lowest leaf of s,
	// so each unordered split is produced exactly once.
	low := LeafSet(1) << uint(bits.TrailingZeros64(uint64(s)))
	rest := s &^ low
	// Enumerate subsets of rest to join with low on the left.
	for sub := LeafSet(0); int64(len(ts)) < limit; sub = (sub - rest) & rest {
		left := low | sub
		right := s &^ left
		if right != 0 {
			remaining := limit - int64(len(ts))
			rc := treeCount(right.Count())
			rNeed := rc
			if remaining < rNeed {
				rNeed = remaining
			}
			rts := e.build(right, rNeed)
			lts := e.build(left, (remaining+rc-1)/rc)
		product:
			for _, lt := range lts {
				for _, rt := range rts {
					ts = append(ts, combine(lt, rt))
					if int64(len(ts)) == limit {
						break product
					}
				}
			}
		}
		if sub == rest {
			break
		}
	}
	if old, ok := e.memo[s]; !ok || len(ts) > len(old) {
		e.memo[s] = ts
	}
	return ts
}

// LeftDeepTree builds the left-deep tree combining leaves in the given
// order: ((order[0]+order[1])+order[2])+...
func LeftDeepTree(order []int) *Tree {
	if len(order) == 0 {
		panic("plan: LeftDeepTree needs at least one leaf")
	}
	t := leaf(order[0])
	for _, i := range order[1:] {
		t = combine(t, leaf(i))
	}
	return t
}

// BalancedTree builds a balanced tree over leaves 0..k-1.
func BalancedTree(k int) *Tree {
	if k < 1 {
		panic("plan: BalancedTree needs at least one leaf")
	}
	var build func(lo, hi int) *Tree
	build = func(lo, hi int) *Tree {
		if hi-lo == 1 {
			return leaf(lo)
		}
		mid := (lo + hi) / 2
		return combine(build(lo, mid), build(mid, hi))
	}
	return build(0, k)
}

// CombineSpec describes a commutative, associative n-way combine (e.g. a
// full hash join of streams at several sites, or a distributed windowed
// aggregation) whose pairwise order the Query Planner may choose and
// re-choose at runtime (§4.3, Fig 5).
type CombineSpec struct {
	// Inputs are the base-graph operators feeding the combine, in leaf-
	// index order.
	Inputs []OpID
	// Output is the base-graph operator that consumes the combined
	// stream.
	Output OpID
	// Template describes each generated binary combine node; its
	// Selectivity/sizes apply per node. ID and Name are overwritten.
	Template Operator
}

// Variant is one fully expanded logical plan, annotated with the LeafSet
// covered by each generated combine node so that common sub-plans between
// variants can be detected.
type Variant struct {
	Graph *Graph
	Tree  *Tree
	// CombineNodes maps each generated combine operator to its LeafSet.
	CombineNodes map[OpID]LeafSet
}

// Expand instantiates the combine tree into a copy of the base graph,
// wiring spec.Inputs through fresh binary combine operators into
// spec.Output. The base graph must contain no edge into spec.Output from
// the combine group (Expand adds it).
func (spec *CombineSpec) Expand(base *Graph, tree *Tree) (*Variant, error) {
	if len(spec.Inputs) < 2 {
		return nil, fmt.Errorf("plan: combine spec needs >= 2 inputs, got %d", len(spec.Inputs))
	}
	if tree.Set != LeafSet(1<<uint(len(spec.Inputs)))-1 {
		return nil, fmt.Errorf("plan: tree covers %v, want all %d inputs", tree.Set, len(spec.Inputs))
	}
	g := base.Clone()
	v := &Variant{Graph: g, Tree: tree, CombineNodes: make(map[OpID]LeafSet)}

	var build func(t *Tree) (OpID, error)
	build = func(t *Tree) (OpID, error) {
		if t.IsLeaf() {
			if t.Leaf < 0 || t.Leaf >= len(spec.Inputs) {
				return 0, fmt.Errorf("plan: leaf index %d out of range", t.Leaf)
			}
			return spec.Inputs[t.Leaf], nil
		}
		lid, err := build(t.L)
		if err != nil {
			return 0, err
		}
		rid, err := build(t.R)
		if err != nil {
			return 0, err
		}
		node := spec.Template
		node.Name = fmt.Sprintf("%s%s", spec.Template.Name, t.Set)
		// A combine node's state covers only its subtree's share of the
		// keyed aggregation state.
		node.StateBytes = spec.Template.StateBytes * float64(t.Set.Count()) / float64(len(spec.Inputs))
		id := g.AddOperator(node)
		v.CombineNodes[id] = t.Set
		if err := g.Connect(lid, id); err != nil {
			return 0, err
		}
		if err := g.Connect(rid, id); err != nil {
			return 0, err
		}
		return id, nil
	}

	root, err := build(tree)
	if err != nil {
		return nil, err
	}
	if err := g.Connect(root, spec.Output); err != nil {
		return nil, err
	}
	return v, nil
}

// StatefulLeafSets returns the LeafSets of the variant's stateful combine
// nodes — the sub-plans whose state must be preserved by any re-planning.
func (v *Variant) StatefulLeafSets() []LeafSet {
	var out []LeafSet
	for _, id := range detutil.SortedKeys(v.CombineNodes) {
		if v.Graph.Operator(id).Stateful {
			out = append(out, v.CombineNodes[id])
		}
	}
	return out
}

// AdmissibleFrom reports whether switching from the current variant to v
// preserves all stateful combine state: every stateful combine node of cur
// must appear, with the same LeafSet, in v (§4.3 — "only consider plans
// that comprise common sub-plans covering the stateful operators").
func (v *Variant) AdmissibleFrom(cur *Variant) bool {
	have := make(map[LeafSet]bool, len(v.CombineNodes))
	for _, set := range v.CombineNodes {
		have[set] = true
	}
	for _, need := range cur.StatefulLeafSets() {
		if !have[need] {
			return false
		}
	}
	return true
}
