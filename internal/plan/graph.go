// Package plan models logical query plans for WASP: directed acyclic
// graphs of stream operators, plus the logical optimizations the paper's
// Query Planner applies — environment-independent rewrites such as filter
// push-down (§2.1) and the enumeration of alternative aggregation/join
// orders used by query re-planning (§4.3).
package plan

import (
	"fmt"
	"slices"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/topology"
)

// OpID identifies an operator within a Graph.
type OpID int

// NoSite marks an operator as not pinned to any particular site.
const NoSite topology.SiteID = -1

// Kind enumerates the stream operator kinds the engine supports.
type Kind int

// Operator kinds.
const (
	KindSource Kind = iota + 1
	KindFilter
	KindMap
	KindFlatMap
	KindProject
	KindUnion
	KindWindow
	KindAggregate
	KindJoin
	KindTopK
	KindSink
)

var kindNames = map[Kind]string{
	KindSource:    "source",
	KindFilter:    "filter",
	KindMap:       "map",
	KindFlatMap:   "flatmap",
	KindProject:   "project",
	KindUnion:     "union",
	KindWindow:    "window",
	KindAggregate: "aggregate",
	KindJoin:      "join",
	KindTopK:      "topk",
	KindSink:      "sink",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Operator is a logical stream operator. The performance-model fields
// (Selectivity, OutEventBytes, CostPerEvent, StateBytes) drive both the
// flow-mode emulation and the planner's cost estimates.
type Operator struct {
	ID   OpID
	Name string
	Kind Kind

	// Stateful marks operators that maintain processing state which must
	// be preserved across adaptations (§4.3, §5).
	Stateful bool
	// Splittable reports whether the operator can run at parallelism > 1
	// without changing the query plan. Counters and sinks are not
	// splittable without adding a combiner (§6.2).
	Splittable bool
	// CommutesWithFilter marks stateless element-wise operators that a
	// downstream filter can be pushed above (e.g. a map that preserves
	// the filtered attributes).
	CommutesWithFilter bool

	// Selectivity σ is output events per input event (§3.2).
	Selectivity float64
	// OutEventBytes is the average serialized size of an output event.
	OutEventBytes float64
	// CostPerEvent is the relative compute cost to process one input
	// event (1.0 = one unit of slot throughput).
	CostPerEvent float64
	// StateBytes is the steady-state total state size of the operator
	// (summed across its tasks).
	StateBytes float64

	// Window is the window length for KindWindow/KindAggregate/KindTopK
	// operators with tumbling-window semantics; zero means no windowing.
	Window time.Duration

	// PinnedSite fixes the operator at one site. Only sources and sinks
	// may be pinned: sources run where their data is generated, and sinks
	// run where results are consumed (by default site 0, the Job Manager
	// site). Intermediate operators are always scheduler-placed; their
	// PinnedSite is forced to NoSite by AddOperator.
	PinnedSite topology.SiteID
	// SourceRate is the base event rate (events/s) for KindSource.
	SourceRate float64
}

// Graph is a logical plan: a DAG of operators. The zero value is empty and
// ready to use via AddOperator/Connect.
type Graph struct {
	ops    map[OpID]*Operator
	down   map[OpID][]OpID
	up     map[OpID][]OpID
	nextID OpID

	// Structure-derived caches, invalidated by every structural mutation
	// (AddOperator/Connect/RemoveEdge/RemoveOperator). The planner asks
	// for the topological order many times per plan evaluation — per
	// Validate, per Schedule, per cost estimate — on graphs that never
	// change between those calls. Cached slices are returned directly;
	// callers must treat them as read-only.
	topoValid bool
	topoCache []OpID
	topoErr   error
	idsValid  bool
	idsCache  []OpID
}

// mutated drops the structure-derived caches.
func (g *Graph) mutated() {
	g.topoValid = false
	g.idsValid = false
}

// NewGraph returns an empty logical plan.
func NewGraph() *Graph {
	return &Graph{
		ops:  make(map[OpID]*Operator),
		down: make(map[OpID][]OpID),
		up:   make(map[OpID][]OpID),
	}
}

// AddOperator inserts op into the graph, assigning and returning its ID.
// The operator struct is copied; the caller's value is not retained.
func (g *Graph) AddOperator(op Operator) OpID {
	id := g.nextID
	g.nextID++
	op.ID = id
	if op.Kind != KindSource && op.Kind != KindSink {
		op.PinnedSite = NoSite
	}
	g.ops[id] = &op
	g.mutated()
	return id
}

// Operator returns the operator with the given ID, or nil.
func (g *Graph) Operator(id OpID) *Operator { return g.ops[id] }

// Connect adds a dataflow edge from→to. Duplicate edges are rejected.
func (g *Graph) Connect(from, to OpID) error {
	if g.ops[from] == nil || g.ops[to] == nil {
		return fmt.Errorf("plan: connect %d->%d: unknown operator", from, to)
	}
	for _, d := range g.down[from] {
		if d == to {
			return fmt.Errorf("plan: duplicate edge %d->%d", from, to)
		}
	}
	g.down[from] = append(g.down[from], to)
	g.up[to] = append(g.up[to], from)
	g.mutated()
	return nil
}

// MustConnect is Connect that panics on error, for plan construction code
// where the topology is static.
func (g *Graph) MustConnect(from, to OpID) {
	if err := g.Connect(from, to); err != nil {
		panic(err)
	}
}

// Downstream returns the IDs of the operators consuming op's output.
//
//waspvet:ordered edge-insertion order; plan construction is deterministic
func (g *Graph) Downstream(id OpID) []OpID { return append([]OpID(nil), g.down[id]...) }

// Upstream returns the IDs of the operators feeding op.
//
//waspvet:ordered edge-insertion order; plan construction is deterministic
func (g *Graph) Upstream(id OpID) []OpID { return append([]OpID(nil), g.up[id]...) }

// DownstreamView is Downstream without the defensive copy. The returned
// slice aliases graph internals: read-only, valid until the next mutation.
//
//waspvet:ordered edge-insertion order; plan construction is deterministic
func (g *Graph) DownstreamView(id OpID) []OpID { return g.down[id] }

// UpstreamView is Upstream without the defensive copy. The returned slice
// aliases graph internals: read-only, valid until the next mutation.
//
//waspvet:ordered edge-insertion order; plan construction is deterministic
func (g *Graph) UpstreamView(id OpID) []OpID { return g.up[id] }

// Len returns the number of operators.
func (g *Graph) Len() int { return len(g.ops) }

// OperatorIDs returns all operator IDs in ascending order. The returned
// slice is cached; callers must not modify it.
//
//waspvet:ordered ascending operator ID (sorted keys)
func (g *Graph) OperatorIDs() []OpID {
	if !g.idsValid {
		g.idsCache = detutil.SortedKeys(g.ops)
		g.idsValid = true
	}
	return g.idsCache
}

// Sources returns the IDs of all KindSource operators, ascending.
//
//waspvet:ordered ascending operator ID
func (g *Graph) Sources() []OpID { return g.byKind(KindSource) }

// Sinks returns the IDs of all KindSink operators, ascending.
//
//waspvet:ordered ascending operator ID
func (g *Graph) Sinks() []OpID { return g.byKind(KindSink) }

func (g *Graph) byKind(k Kind) []OpID {
	var out []OpID
	for _, id := range g.OperatorIDs() {
		if g.ops[id].Kind == k {
			out = append(out, id)
		}
	}
	return out
}

// TopoOrder returns the operators in a deterministic topological order
// (ties broken by ascending ID). It returns an error if the graph has a
// cycle. The returned slice is cached; callers must not modify it.
func (g *Graph) TopoOrder() ([]OpID, error) {
	if !g.topoValid {
		g.topoCache, g.topoErr = g.computeTopo()
		g.topoValid = true
	}
	return g.topoCache, g.topoErr
}

func (g *Graph) computeTopo() ([]OpID, error) {
	indeg := make(map[OpID]int, len(g.ops))
	for id := range g.ops {
		indeg[id] = len(g.up[id])
	}
	var ready []OpID
	for _, id := range detutil.SortedKeys(indeg) {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}

	order := make([]OpID, 0, len(g.ops))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var unlocked []OpID
		for _, d := range g.down[id] {
			indeg[d]--
			if indeg[d] == 0 {
				unlocked = append(unlocked, d)
			}
		}
		ready = append(ready, unlocked...)
		slices.Sort(ready)
	}
	if len(order) != len(g.ops) {
		return nil, fmt.Errorf("plan: graph has a cycle (%d of %d ordered)", len(order), len(g.ops))
	}
	return order, nil
}

// Validate checks structural invariants: acyclic; sources have no inputs
// and at least one output; sinks have no outputs and at least one input;
// every other operator has at least one input and one output; sources are
// pinned to a site; selectivities and sizes are non-negative.
func (g *Graph) Validate() error {
	if len(g.ops) == 0 {
		return fmt.Errorf("plan: empty graph")
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, id := range g.OperatorIDs() {
		op := g.ops[id]
		nUp, nDown := len(g.up[id]), len(g.down[id])
		switch op.Kind {
		case KindSource:
			if nUp != 0 {
				return fmt.Errorf("plan: source %q has inputs", op.Name)
			}
			if nDown == 0 {
				return fmt.Errorf("plan: source %q has no outputs", op.Name)
			}
			if op.PinnedSite == NoSite {
				return fmt.Errorf("plan: source %q not pinned to a site", op.Name)
			}
			if op.SourceRate < 0 {
				return fmt.Errorf("plan: source %q has negative rate", op.Name)
			}
		case KindSink:
			if nDown != 0 {
				return fmt.Errorf("plan: sink %q has outputs", op.Name)
			}
			if nUp == 0 {
				return fmt.Errorf("plan: sink %q has no inputs", op.Name)
			}
		default:
			if nUp == 0 || nDown == 0 {
				return fmt.Errorf("plan: operator %q (%v) is dangling", op.Name, op.Kind)
			}
		}
		if op.Selectivity < 0 || op.OutEventBytes < 0 || op.CostPerEvent < 0 || op.StateBytes < 0 {
			return fmt.Errorf("plan: operator %q has negative model parameters", op.Name)
		}
	}
	return nil
}

// Clone returns a deep copy of the graph. Operator IDs are preserved.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.nextID = g.nextID
	for id, op := range g.ops {
		cp := *op
		c.ops[id] = &cp
	}
	for id, ds := range g.down {
		c.down[id] = append([]OpID(nil), ds...)
	}
	for id, us := range g.up {
		c.up[id] = append([]OpID(nil), us...)
	}
	return c
}

// RemoveEdge deletes the from→to edge if present.
func (g *Graph) RemoveEdge(from, to OpID) {
	g.down[from] = removeID(g.down[from], to)
	g.up[to] = removeID(g.up[to], from)
	g.mutated()
}

// RemoveOperator deletes an operator and all its edges.
func (g *Graph) RemoveOperator(id OpID) {
	for _, d := range append([]OpID(nil), g.down[id]...) {
		g.RemoveEdge(id, d)
	}
	for _, u := range append([]OpID(nil), g.up[id]...) {
		g.RemoveEdge(u, id)
	}
	delete(g.ops, id)
	delete(g.down, id)
	delete(g.up, id)
	g.mutated()
}

func removeID(ids []OpID, id OpID) []OpID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// StatefulOperators returns the IDs of all stateful operators, ascending.
func (g *Graph) StatefulOperators() []OpID {
	var out []OpID
	for _, id := range g.OperatorIDs() {
		if g.ops[id].Stateful {
			out = append(out, id)
		}
	}
	return out
}

// ExpectedRates computes the steady-state expected input/output event rate
// and output byte rate of every operator from the source rates and
// per-operator selectivities — the λ̂ model of §3.3 applied to the logical
// plan. rateFactor scales all source rates (workload dynamics).
func (g *Graph) ExpectedRates(rateFactor float64) (inRate, outRate, outBytes map[OpID]float64, err error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, nil, err
	}
	inRate = make(map[OpID]float64, len(order))
	outRate = make(map[OpID]float64, len(order))
	outBytes = make(map[OpID]float64, len(order))
	for _, id := range order {
		op := g.ops[id]
		var in float64
		if op.Kind == KindSource {
			in = op.SourceRate * rateFactor
		} else {
			for _, u := range g.up[id] {
				in += outRate[u]
			}
		}
		inRate[id] = in
		sigma := op.Selectivity
		if op.Kind == KindSource {
			sigma = 1
		}
		outRate[id] = in * sigma
		outBytes[id] = outRate[id] * op.OutEventBytes
	}
	return inRate, outRate, outBytes, nil
}

// RateBuf holds reusable output buffers for ExpectedRatesBuf. The slices
// are indexed by OpID (the graph's ID space is dense, so IDs of removed
// operators simply leave zero entries).
type RateBuf struct {
	In, Out, Bytes []float64
}

// ExpectedRatesBuf is ExpectedRates computing into caller-owned buffers,
// resized and zeroed as needed — the planner evaluates ~10^2 variants per
// re-planning round and the per-variant rate maps dominated its allocation
// profile. The accumulation order matches ExpectedRates exactly, so the
// computed values are bit-identical.
func (g *Graph) ExpectedRatesBuf(rateFactor float64, buf *RateBuf) error {
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	n := int(g.nextID)
	buf.In = growZero(buf.In, n)
	buf.Out = growZero(buf.Out, n)
	buf.Bytes = growZero(buf.Bytes, n)
	for _, id := range order {
		op := g.ops[id]
		var in float64
		if op.Kind == KindSource {
			in = op.SourceRate * rateFactor
		} else {
			for _, u := range g.up[id] {
				in += buf.Out[u]
			}
		}
		buf.In[id] = in
		sigma := op.Selectivity
		if op.Kind == KindSource {
			sigma = 1
		}
		buf.Out[id] = in * sigma
		buf.Bytes[id] = buf.Out[id] * op.OutEventBytes
	}
	return nil
}

// growZero returns s resized to length n with every element zeroed.
func growZero(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
