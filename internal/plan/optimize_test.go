package plan

import "testing"

func TestPushFilterBelowUnion(t *testing.T) {
	g := NewGraph()
	s1 := g.AddOperator(Operator{Name: "s1", Kind: KindSource, PinnedSite: 0, Selectivity: 1, SourceRate: 100})
	s2 := g.AddOperator(Operator{Name: "s2", Kind: KindSource, PinnedSite: 1, Selectivity: 1, SourceRate: 100})
	un := g.AddOperator(Operator{Name: "union", Kind: KindUnion, Selectivity: 1, Splittable: true})
	fil := g.AddOperator(Operator{Name: "filter", Kind: KindFilter, Selectivity: 0.2, Splittable: true})
	snk := g.AddOperator(Operator{Name: "sink", Kind: KindSink})
	g.MustConnect(s1, un)
	g.MustConnect(s2, un)
	g.MustConnect(un, fil)
	g.MustConnect(fil, snk)

	if n := PushDownFilters(g); n != 1 {
		t.Fatalf("rewrites = %d, want 1", n)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("rewritten graph invalid: %v", err)
	}
	// union now feeds the sink directly; each source feeds a filter copy.
	if ds := g.Downstream(un); len(ds) != 1 || ds[0] != snk {
		t.Fatalf("union downstream = %v, want [sink]", ds)
	}
	for _, s := range []OpID{s1, s2} {
		ds := g.Downstream(s)
		if len(ds) != 1 {
			t.Fatalf("source downstream = %v", ds)
		}
		f := g.Operator(ds[0])
		if f.Kind != KindFilter || f.Selectivity != 0.2 {
			t.Fatalf("source feeds %v (%v), want filter copy", f.Name, f.Kind)
		}
		if fd := g.Downstream(ds[0]); len(fd) != 1 || fd[0] != un {
			t.Fatalf("filter copy downstream = %v, want [union]", fd)
		}
	}
	// Total rates are preserved: 200 in, 40 out at the union.
	_, out, _, err := g.ExpectedRates(1)
	if err != nil {
		t.Fatal(err)
	}
	if out[un] != 40 {
		t.Fatalf("union out rate = %v, want 40", out[un])
	}
}

func TestPushFilterThroughCommutingMap(t *testing.T) {
	g := NewGraph()
	src := g.AddOperator(Operator{Name: "s", Kind: KindSource, PinnedSite: 0, Selectivity: 1, SourceRate: 100})
	mp := g.AddOperator(Operator{Name: "m", Kind: KindMap, Selectivity: 1, CommutesWithFilter: true, Splittable: true})
	fil := g.AddOperator(Operator{Name: "f", Kind: KindFilter, Selectivity: 0.5, Splittable: true})
	snk := g.AddOperator(Operator{Name: "k", Kind: KindSink})
	g.MustConnect(src, mp)
	g.MustConnect(mp, fil)
	g.MustConnect(fil, snk)

	if n := PushDownFilters(g); n != 1 {
		t.Fatalf("rewrites = %d, want 1", n)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("rewritten graph invalid: %v", err)
	}
	if ds := g.Downstream(src); len(ds) != 1 || ds[0] != fil {
		t.Fatalf("source downstream = %v, want [filter]", ds)
	}
	if ds := g.Downstream(fil); len(ds) != 1 || ds[0] != mp {
		t.Fatalf("filter downstream = %v, want [map]", ds)
	}
	if ds := g.Downstream(mp); len(ds) != 1 || ds[0] != snk {
		t.Fatalf("map downstream = %v, want [sink]", ds)
	}
}

func TestPushDownDoesNotCrossNonCommutingOps(t *testing.T) {
	g := NewGraph()
	src := g.AddOperator(Operator{Name: "s", Kind: KindSource, PinnedSite: 0, Selectivity: 1, SourceRate: 100})
	mp := g.AddOperator(Operator{Name: "m", Kind: KindMap, Selectivity: 1}) // does not commute
	fil := g.AddOperator(Operator{Name: "f", Kind: KindFilter, Selectivity: 0.5})
	snk := g.AddOperator(Operator{Name: "k", Kind: KindSink})
	g.MustConnect(src, mp)
	g.MustConnect(mp, fil)
	g.MustConnect(fil, snk)

	if n := PushDownFilters(g); n != 0 {
		t.Fatalf("rewrites = %d, want 0", n)
	}
}

func TestPushDownLeavesSharedUnionAlone(t *testing.T) {
	// union feeds both a filter and another sink: replicating the filter
	// below the union would change the other consumer's input.
	g := NewGraph()
	s1 := g.AddOperator(Operator{Name: "s1", Kind: KindSource, PinnedSite: 0, Selectivity: 1, SourceRate: 100})
	un := g.AddOperator(Operator{Name: "u", Kind: KindUnion, Selectivity: 1})
	fil := g.AddOperator(Operator{Name: "f", Kind: KindFilter, Selectivity: 0.5})
	k1 := g.AddOperator(Operator{Name: "k1", Kind: KindSink})
	k2 := g.AddOperator(Operator{Name: "k2", Kind: KindSink})
	g.MustConnect(s1, un)
	g.MustConnect(un, fil)
	g.MustConnect(un, k2)
	g.MustConnect(fil, k1)

	if n := PushDownFilters(g); n != 0 {
		t.Fatalf("rewrites = %d, want 0", n)
	}
}

func TestPushDownChainsToFixpoint(t *testing.T) {
	// source → map(commuting) → union? Build: two sources → union →
	// map(commuting) → filter → sink. The filter first swaps with the map,
	// then replicates below the union: 2 rewrites.
	g := NewGraph()
	s1 := g.AddOperator(Operator{Name: "s1", Kind: KindSource, PinnedSite: 0, Selectivity: 1, SourceRate: 100})
	s2 := g.AddOperator(Operator{Name: "s2", Kind: KindSource, PinnedSite: 1, Selectivity: 1, SourceRate: 100})
	un := g.AddOperator(Operator{Name: "u", Kind: KindUnion, Selectivity: 1})
	mp := g.AddOperator(Operator{Name: "m", Kind: KindMap, Selectivity: 1, CommutesWithFilter: true})
	fil := g.AddOperator(Operator{Name: "f", Kind: KindFilter, Selectivity: 0.5})
	snk := g.AddOperator(Operator{Name: "k", Kind: KindSink})
	g.MustConnect(s1, un)
	g.MustConnect(s2, un)
	g.MustConnect(un, mp)
	g.MustConnect(mp, fil)
	g.MustConnect(fil, snk)

	if n := PushDownFilters(g); n != 2 {
		t.Fatalf("rewrites = %d, want 2", n)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("rewritten graph invalid: %v", err)
	}
	// Each source must now feed a filter.
	for _, s := range []OpID{s1, s2} {
		ds := g.Downstream(s)
		if len(ds) != 1 || g.Operator(ds[0]).Kind != KindFilter {
			t.Fatalf("source %d downstream = %v, want filter", s, ds)
		}
	}
}
