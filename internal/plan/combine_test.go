package plan

import (
	"testing"
)

func TestLeafSet(t *testing.T) {
	s := LeafSet(0b1011)
	if !s.Has(0) || !s.Has(1) || s.Has(2) || !s.Has(3) {
		t.Fatalf("Has wrong for %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if got := s.String(); got != "{0,1,3}" {
		t.Fatalf("String = %q", got)
	}
}

func TestEnumerateTreesCounts(t *testing.T) {
	// (2k-3)!! distinct unordered binary trees over k labeled leaves.
	wants := map[int]int{1: 1, 2: 1, 3: 3, 4: 15, 5: 105}
	for k, want := range wants {
		if got := len(EnumerateTrees(k, 0)); got != want {
			t.Errorf("EnumerateTrees(%d) = %d trees, want %d", k, got, want)
		}
	}
}

func TestEnumerateTreesDistinctAndComplete(t *testing.T) {
	trees := EnumerateTrees(4, 0)
	seen := make(map[string]bool)
	full := LeafSet(0b1111)
	for _, tr := range trees {
		if tr.Set != full {
			t.Fatalf("tree %v covers %v, want %v", tr, tr.Set, full)
		}
		// Canonical string: sort children by min leaf for dedup.
		key := canonical(tr)
		if seen[key] {
			t.Fatalf("duplicate tree %v", tr)
		}
		seen[key] = true
	}
}

func canonical(t *Tree) string {
	if t.IsLeaf() {
		return t.String()
	}
	l, r := canonical(t.L), canonical(t.R)
	if t.L.Set > t.R.Set {
		l, r = r, l
	}
	return "(" + l + "+" + r + ")"
}

func TestEnumerateTreesCap(t *testing.T) {
	if got := len(EnumerateTrees(5, 10)); got != 10 {
		t.Fatalf("capped enumeration = %d, want 10", got)
	}
}

// eagerEnumerateTrees is the pre-lazy reference implementation: build every
// tree via memoized recursion, then truncate. The budgeted enumerator must
// reproduce its output order exactly for any cap.
func eagerEnumerateTrees(k, max int) []*Tree {
	full := LeafSet(1<<uint(k)) - 1
	memo := make(map[LeafSet][]*Tree)
	var build func(s LeafSet) []*Tree
	build = func(s LeafSet) []*Tree {
		if ts, ok := memo[s]; ok {
			return ts
		}
		var ts []*Tree
		if s.Count() == 1 {
			ts = []*Tree{leaf(trailingLeaf(s))}
		} else {
			low := LeafSet(1) << uint(trailingLeaf(s))
			rest := s &^ low
			for sub := LeafSet(0); ; sub = (sub - rest) & rest {
				left := low | sub
				right := s &^ left
				if right != 0 {
					for _, lt := range build(left) {
						for _, rt := range build(right) {
							ts = append(ts, combine(lt, rt))
						}
					}
				}
				if sub == rest {
					break
				}
			}
		}
		memo[s] = ts
		return ts
	}
	trees := build(full)
	if max > 0 && len(trees) > max {
		trees = trees[:max]
	}
	return trees
}

func trailingLeaf(s LeafSet) int {
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			return i
		}
	}
	return -1
}

// TestEnumerateTreesLazyMatchesEager pins the budgeted enumerator to the
// eager reference order: full enumerations for small k, capped prefixes for
// the planner-relevant shapes (k=8 with DefaultMaxVariants-style caps).
func TestEnumerateTreesLazyMatchesEager(t *testing.T) {
	cases := []struct{ k, max int }{
		{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0},
		{5, 1}, {5, 40}, {5, 104}, {5, 105}, {5, 1000},
		{6, 7}, {6, 105}, {6, 944}, {6, 945},
		{7, 40}, {7, 105}, {7, 0},
		{8, 1}, {8, 40}, {8, 105}, {8, 106}, {8, 10000},
	}
	for _, tc := range cases {
		want := eagerEnumerateTrees(tc.k, tc.max)
		got := EnumerateTrees(tc.k, tc.max)
		if len(got) != len(want) {
			t.Errorf("k=%d max=%d: %d trees, want %d", tc.k, tc.max, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i].String() != want[i].String() || got[i].Set != want[i].Set {
				t.Errorf("k=%d max=%d: tree %d = %v, want %v", tc.k, tc.max, i, got[i], want[i])
				break
			}
		}
	}
}

func TestTreeCount(t *testing.T) {
	wants := map[int]int64{1: 1, 2: 1, 3: 3, 4: 15, 5: 105, 6: 945, 7: 10395, 8: 135135}
	for m, want := range wants {
		if got := treeCount(m); got != want {
			t.Errorf("treeCount(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestEnumerateTreesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EnumerateTrees(0) did not panic")
		}
	}()
	EnumerateTrees(0, 0)
}

func TestLeftDeepAndBalancedTrees(t *testing.T) {
	ld := LeftDeepTree([]int{0, 1, 2, 3})
	if got := ld.String(); got != "(((0+1)+2)+3)" {
		t.Fatalf("LeftDeepTree = %q", got)
	}
	b := BalancedTree(4)
	if got := b.String(); got != "((0+1)+(2+3))" {
		t.Fatalf("BalancedTree = %q", got)
	}
	if b.Set != 0b1111 {
		t.Fatalf("BalancedTree Set = %v", b.Set)
	}
}

// fig5Base builds the base graph of the paper's Figure 5: four sources at
// sites A..D feeding a full hash join, result consumed by a sink.
func fig5Base(t *testing.T) (*Graph, *CombineSpec) {
	t.Helper()
	g := NewGraph()
	var inputs []OpID
	rates := []float64{400, 300, 200, 100} // events/s per source
	for _, r := range rates {
		id := g.AddOperator(Operator{
			Name: "src", Kind: KindSource, PinnedSite: 0,
			Selectivity: 1, OutEventBytes: 100, SourceRate: r,
		})
		inputs = append(inputs, id)
	}
	sink := g.AddOperator(Operator{Name: "sink", Kind: KindSink})
	spec := &CombineSpec{
		Inputs: inputs,
		Output: sink,
		Template: Operator{
			Name: "join", Kind: KindJoin, Stateful: true, Splittable: true,
			Selectivity: 0.5, OutEventBytes: 150, CostPerEvent: 2, StateBytes: 50e6,
		},
	}
	return g, spec
}

func TestExpandBuildsValidGraph(t *testing.T) {
	base, spec := fig5Base(t)
	v, err := spec.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Graph.Validate(); err != nil {
		t.Fatalf("expanded graph invalid: %v", err)
	}
	// 4 sources + 1 sink + 3 combine nodes.
	if got := v.Graph.Len(); got != 8 {
		t.Fatalf("expanded graph Len = %d, want 8", got)
	}
	if got := len(v.CombineNodes); got != 3 {
		t.Fatalf("combine nodes = %d, want 3", got)
	}
	// The sink consumes exactly the root combine.
	sinkUps := v.Graph.Upstream(spec.Output)
	if len(sinkUps) != 1 {
		t.Fatalf("sink upstreams = %v", sinkUps)
	}
	if v.CombineNodes[sinkUps[0]] != 0b1111 {
		t.Fatalf("root combine covers %v, want {0,1,2,3}", v.CombineNodes[sinkUps[0]])
	}
	// Base graph must be untouched.
	if base.Len() != 5 {
		t.Fatalf("base graph mutated: Len = %d", base.Len())
	}
}

func TestExpandRejectsBadInput(t *testing.T) {
	base, spec := fig5Base(t)
	if _, err := spec.Expand(base, BalancedTree(3)); err == nil {
		t.Fatal("Expand accepted tree over wrong leaf count")
	}
	bad := &CombineSpec{Inputs: spec.Inputs[:1], Output: spec.Output, Template: spec.Template}
	if _, err := bad.Expand(base, BalancedTree(1)); err == nil {
		t.Fatal("Expand accepted single-input spec")
	}
}

func TestAdmissibleFromStatefulSubplans(t *testing.T) {
	base, spec := fig5Base(t)
	// Plan 1 (Fig 5): ((A+B)+(C+D)) — stateful nodes {0,1}, {2,3}, {0,1,2,3}.
	p1, err := spec.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	// Plan 2: ((1+2)+(0+3)) does not contain {0,1} or {2,3}.
	tr := combine(combine(leaf(1), leaf(2)), combine(leaf(0), leaf(3)))
	p3, err := spec.Expand(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if p3.AdmissibleFrom(p1) {
		t.Fatal("plan without common stateful sub-plans judged admissible")
	}
	// ((C+D)+(A+B)) is the same set structure as plan 1: admissible.
	tr2 := combine(combine(leaf(2), leaf(3)), combine(leaf(0), leaf(1)))
	p4, err := spec.Expand(base, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !p4.AdmissibleFrom(p1) {
		t.Fatal("structurally identical plan judged inadmissible")
	}
	// With a stateless template every plan is admissible.
	stateless := *spec
	stateless.Template.Stateful = false
	q1, err := stateless.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := stateless.Expand(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.AdmissibleFrom(q1) {
		t.Fatal("stateless re-plan judged inadmissible")
	}
}

func TestStatefulLeafSets(t *testing.T) {
	base, spec := fig5Base(t)
	v, err := spec.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	sets := v.StatefulLeafSets()
	if len(sets) != 3 {
		t.Fatalf("stateful leaf sets = %v, want 3 sets", sets)
	}
	want := map[LeafSet]bool{0b0011: true, 0b1100: true, 0b1111: true}
	for _, s := range sets {
		if !want[s] {
			t.Fatalf("unexpected leaf set %v", s)
		}
	}
}
