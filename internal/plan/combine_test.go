package plan

import (
	"testing"
)

func TestLeafSet(t *testing.T) {
	s := LeafSet(0b1011)
	if !s.Has(0) || !s.Has(1) || s.Has(2) || !s.Has(3) {
		t.Fatalf("Has wrong for %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	if got := s.String(); got != "{0,1,3}" {
		t.Fatalf("String = %q", got)
	}
}

func TestEnumerateTreesCounts(t *testing.T) {
	// (2k-3)!! distinct unordered binary trees over k labeled leaves.
	wants := map[int]int{1: 1, 2: 1, 3: 3, 4: 15, 5: 105}
	for k, want := range wants {
		if got := len(EnumerateTrees(k, 0)); got != want {
			t.Errorf("EnumerateTrees(%d) = %d trees, want %d", k, got, want)
		}
	}
}

func TestEnumerateTreesDistinctAndComplete(t *testing.T) {
	trees := EnumerateTrees(4, 0)
	seen := make(map[string]bool)
	full := LeafSet(0b1111)
	for _, tr := range trees {
		if tr.Set != full {
			t.Fatalf("tree %v covers %v, want %v", tr, tr.Set, full)
		}
		// Canonical string: sort children by min leaf for dedup.
		key := canonical(tr)
		if seen[key] {
			t.Fatalf("duplicate tree %v", tr)
		}
		seen[key] = true
	}
}

func canonical(t *Tree) string {
	if t.IsLeaf() {
		return t.String()
	}
	l, r := canonical(t.L), canonical(t.R)
	if t.L.Set > t.R.Set {
		l, r = r, l
	}
	return "(" + l + "+" + r + ")"
}

func TestEnumerateTreesCap(t *testing.T) {
	if got := len(EnumerateTrees(5, 10)); got != 10 {
		t.Fatalf("capped enumeration = %d, want 10", got)
	}
}

func TestEnumerateTreesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EnumerateTrees(0) did not panic")
		}
	}()
	EnumerateTrees(0, 0)
}

func TestLeftDeepAndBalancedTrees(t *testing.T) {
	ld := LeftDeepTree([]int{0, 1, 2, 3})
	if got := ld.String(); got != "(((0+1)+2)+3)" {
		t.Fatalf("LeftDeepTree = %q", got)
	}
	b := BalancedTree(4)
	if got := b.String(); got != "((0+1)+(2+3))" {
		t.Fatalf("BalancedTree = %q", got)
	}
	if b.Set != 0b1111 {
		t.Fatalf("BalancedTree Set = %v", b.Set)
	}
}

// fig5Base builds the base graph of the paper's Figure 5: four sources at
// sites A..D feeding a full hash join, result consumed by a sink.
func fig5Base(t *testing.T) (*Graph, *CombineSpec) {
	t.Helper()
	g := NewGraph()
	var inputs []OpID
	rates := []float64{400, 300, 200, 100} // events/s per source
	for _, r := range rates {
		id := g.AddOperator(Operator{
			Name: "src", Kind: KindSource, PinnedSite: 0,
			Selectivity: 1, OutEventBytes: 100, SourceRate: r,
		})
		inputs = append(inputs, id)
	}
	sink := g.AddOperator(Operator{Name: "sink", Kind: KindSink})
	spec := &CombineSpec{
		Inputs: inputs,
		Output: sink,
		Template: Operator{
			Name: "join", Kind: KindJoin, Stateful: true, Splittable: true,
			Selectivity: 0.5, OutEventBytes: 150, CostPerEvent: 2, StateBytes: 50e6,
		},
	}
	return g, spec
}

func TestExpandBuildsValidGraph(t *testing.T) {
	base, spec := fig5Base(t)
	v, err := spec.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Graph.Validate(); err != nil {
		t.Fatalf("expanded graph invalid: %v", err)
	}
	// 4 sources + 1 sink + 3 combine nodes.
	if got := v.Graph.Len(); got != 8 {
		t.Fatalf("expanded graph Len = %d, want 8", got)
	}
	if got := len(v.CombineNodes); got != 3 {
		t.Fatalf("combine nodes = %d, want 3", got)
	}
	// The sink consumes exactly the root combine.
	sinkUps := v.Graph.Upstream(spec.Output)
	if len(sinkUps) != 1 {
		t.Fatalf("sink upstreams = %v", sinkUps)
	}
	if v.CombineNodes[sinkUps[0]] != 0b1111 {
		t.Fatalf("root combine covers %v, want {0,1,2,3}", v.CombineNodes[sinkUps[0]])
	}
	// Base graph must be untouched.
	if base.Len() != 5 {
		t.Fatalf("base graph mutated: Len = %d", base.Len())
	}
}

func TestExpandRejectsBadInput(t *testing.T) {
	base, spec := fig5Base(t)
	if _, err := spec.Expand(base, BalancedTree(3)); err == nil {
		t.Fatal("Expand accepted tree over wrong leaf count")
	}
	bad := &CombineSpec{Inputs: spec.Inputs[:1], Output: spec.Output, Template: spec.Template}
	if _, err := bad.Expand(base, BalancedTree(1)); err == nil {
		t.Fatal("Expand accepted single-input spec")
	}
}

func TestAdmissibleFromStatefulSubplans(t *testing.T) {
	base, spec := fig5Base(t)
	// Plan 1 (Fig 5): ((A+B)+(C+D)) — stateful nodes {0,1}, {2,3}, {0,1,2,3}.
	p1, err := spec.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	// Plan 2: ((1+2)+(0+3)) does not contain {0,1} or {2,3}.
	tr := combine(combine(leaf(1), leaf(2)), combine(leaf(0), leaf(3)))
	p3, err := spec.Expand(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if p3.AdmissibleFrom(p1) {
		t.Fatal("plan without common stateful sub-plans judged admissible")
	}
	// ((C+D)+(A+B)) is the same set structure as plan 1: admissible.
	tr2 := combine(combine(leaf(2), leaf(3)), combine(leaf(0), leaf(1)))
	p4, err := spec.Expand(base, tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !p4.AdmissibleFrom(p1) {
		t.Fatal("structurally identical plan judged inadmissible")
	}
	// With a stateless template every plan is admissible.
	stateless := *spec
	stateless.Template.Stateful = false
	q1, err := stateless.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := stateless.Expand(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.AdmissibleFrom(q1) {
		t.Fatal("stateless re-plan judged inadmissible")
	}
}

func TestStatefulLeafSets(t *testing.T) {
	base, spec := fig5Base(t)
	v, err := spec.Expand(base, BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	sets := v.StatefulLeafSets()
	if len(sets) != 3 {
		t.Fatalf("stateful leaf sets = %v, want 3 sets", sets)
	}
	want := map[LeafSet]bool{0b0011: true, 0b1100: true, 0b1111: true}
	for _, s := range sets {
		if !want[s] {
			t.Fatalf("unexpected leaf set %v", s)
		}
	}
}
