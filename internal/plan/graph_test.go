package plan

import (
	"strings"
	"testing"
	"time"
)

// linearGraph builds source → filter → map → sink with simple model
// parameters.
func linearGraph(t *testing.T) (*Graph, []OpID) {
	t.Helper()
	g := NewGraph()
	src := g.AddOperator(Operator{
		Name: "src", Kind: KindSource, Splittable: true,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 1000, PinnedSite: 0,
	})
	fil := g.AddOperator(Operator{
		Name: "filter", Kind: KindFilter, Splittable: true,
		Selectivity: 0.5, OutEventBytes: 100, CostPerEvent: 1,
	})
	mp := g.AddOperator(Operator{
		Name: "map", Kind: KindMap, Splittable: true,
		Selectivity: 1, OutEventBytes: 50, CostPerEvent: 1,
	})
	snk := g.AddOperator(Operator{
		Name: "sink", Kind: KindSink, Selectivity: 1, PinnedSite: 0,
	})
	g.MustConnect(src, fil)
	g.MustConnect(fil, mp)
	g.MustConnect(mp, snk)
	return g, []OpID{src, fil, mp, snk}
}

func TestAddOperatorAssignsIDs(t *testing.T) {
	g, ids := linearGraph(t)
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("operator %d has id %d", i, id)
		}
		if g.Operator(id) == nil {
			t.Fatalf("Operator(%d) = nil", id)
		}
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
}

func TestIntermediateOperatorsNeverPinned(t *testing.T) {
	g := NewGraph()
	id := g.AddOperator(Operator{Name: "f", Kind: KindFilter, PinnedSite: 3})
	if got := g.Operator(id).PinnedSite; got != NoSite {
		t.Fatalf("filter PinnedSite = %v, want NoSite", got)
	}
	src := g.AddOperator(Operator{Name: "s", Kind: KindSource, PinnedSite: 3})
	if got := g.Operator(src).PinnedSite; got != 3 {
		t.Fatalf("source PinnedSite = %v, want 3", got)
	}
}

func TestConnectErrors(t *testing.T) {
	g, ids := linearGraph(t)
	if err := g.Connect(ids[0], 99); err == nil {
		t.Fatal("Connect to unknown op did not error")
	}
	if err := g.Connect(ids[0], ids[1]); err == nil {
		t.Fatal("duplicate Connect did not error")
	}
}

func TestUpstreamDownstream(t *testing.T) {
	g, ids := linearGraph(t)
	if ds := g.Downstream(ids[0]); len(ds) != 1 || ds[0] != ids[1] {
		t.Fatalf("Downstream(src) = %v", ds)
	}
	if us := g.Upstream(ids[3]); len(us) != 1 || us[0] != ids[2] {
		t.Fatalf("Upstream(sink) = %v", us)
	}
	if us := g.Upstream(ids[0]); len(us) != 0 {
		t.Fatalf("Upstream(src) = %v, want empty", us)
	}
}

func TestTopoOrder(t *testing.T) {
	g, ids := linearGraph(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[OpID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := 0; i < len(ids)-1; i++ {
		if pos[ids[i]] >= pos[ids[i+1]] {
			t.Fatalf("topo order %v violates edge %d->%d", order, ids[i], ids[i+1])
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := NewGraph()
	a := g.AddOperator(Operator{Name: "a", Kind: KindMap})
	b := g.AddOperator(Operator{Name: "b", Kind: KindMap})
	g.MustConnect(a, b)
	g.MustConnect(b, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidate(t *testing.T) {
	g, _ := linearGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	tests := []struct {
		name  string
		build func() *Graph
		want  string
	}{
		{
			name:  "empty",
			build: func() *Graph { return NewGraph() },
			want:  "empty",
		},
		{
			name: "dangling operator",
			build: func() *Graph {
				g := NewGraph()
				g.AddOperator(Operator{Name: "m", Kind: KindMap})
				return g
			},
			want: "dangling",
		},
		{
			name: "unpinned source",
			build: func() *Graph {
				g := NewGraph()
				s := g.AddOperator(Operator{Name: "s", Kind: KindSource, PinnedSite: NoSite})
				k := g.AddOperator(Operator{Name: "k", Kind: KindSink})
				g.MustConnect(s, k)
				return g
			},
			want: "not pinned",
		},
		{
			name: "sink with outputs",
			build: func() *Graph {
				g := NewGraph()
				s := g.AddOperator(Operator{Name: "s", Kind: KindSource, PinnedSite: 0})
				k := g.AddOperator(Operator{Name: "k", Kind: KindSink})
				m := g.AddOperator(Operator{Name: "m", Kind: KindMap, Selectivity: 1})
				g.MustConnect(s, k)
				g.MustConnect(k, m)
				g.MustConnect(m, k)
				return g
			},
			want: "", // either cycle or sink-output error is acceptable
		},
		{
			name: "negative selectivity",
			build: func() *Graph {
				g := NewGraph()
				s := g.AddOperator(Operator{Name: "s", Kind: KindSource, PinnedSite: 0})
				m := g.AddOperator(Operator{Name: "m", Kind: KindMap, Selectivity: -1})
				k := g.AddOperator(Operator{Name: "k", Kind: KindSink})
				g.MustConnect(s, m)
				g.MustConnect(m, k)
				return g
			},
			want: "negative",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.build().Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid graph")
			}
			if tt.want != "" && !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, ids := linearGraph(t)
	c := g.Clone()
	c.Operator(ids[1]).Selectivity = 0.9
	if g.Operator(ids[1]).Selectivity != 0.5 {
		t.Fatal("Clone shares operator structs")
	}
	c.RemoveEdge(ids[0], ids[1])
	if len(g.Downstream(ids[0])) != 1 {
		t.Fatal("Clone shares adjacency slices")
	}
	// New operators in the clone must not collide with original IDs.
	nid := c.AddOperator(Operator{Name: "x", Kind: KindMap})
	if g.Operator(nid) != nil {
		t.Fatal("clone reused an original ID")
	}
}

func TestRemoveOperator(t *testing.T) {
	g, ids := linearGraph(t)
	g.RemoveOperator(ids[1]) // remove the filter
	if g.Operator(ids[1]) != nil {
		t.Fatal("operator still present after removal")
	}
	if len(g.Downstream(ids[0])) != 0 {
		t.Fatal("source still has downstream after removal")
	}
	if len(g.Upstream(ids[2])) != 0 {
		t.Fatal("map still has upstream after removal")
	}
}

func TestSourcesSinksStateful(t *testing.T) {
	g := NewGraph()
	s1 := g.AddOperator(Operator{Name: "s1", Kind: KindSource, PinnedSite: 1})
	s2 := g.AddOperator(Operator{Name: "s2", Kind: KindSource, PinnedSite: 2})
	agg := g.AddOperator(Operator{
		Name: "agg", Kind: KindAggregate, Stateful: true, Selectivity: 0.1,
		Window: 10 * time.Second,
	})
	snk := g.AddOperator(Operator{Name: "k", Kind: KindSink})
	g.MustConnect(s1, agg)
	g.MustConnect(s2, agg)
	g.MustConnect(agg, snk)

	if got := g.Sources(); len(got) != 2 || got[0] != s1 || got[1] != s2 {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != snk {
		t.Fatalf("Sinks = %v", got)
	}
	if got := g.StatefulOperators(); len(got) != 1 || got[0] != agg {
		t.Fatalf("StatefulOperators = %v", got)
	}
}

func TestExpectedRates(t *testing.T) {
	g, ids := linearGraph(t)
	in, out, bytes, err := g.ExpectedRates(1)
	if err != nil {
		t.Fatal(err)
	}
	if in[ids[0]] != 1000 || out[ids[0]] != 1000 {
		t.Fatalf("source rates in=%v out=%v, want 1000/1000", in[ids[0]], out[ids[0]])
	}
	if in[ids[1]] != 1000 || out[ids[1]] != 500 {
		t.Fatalf("filter rates in=%v out=%v, want 1000/500", in[ids[1]], out[ids[1]])
	}
	if in[ids[2]] != 500 || out[ids[2]] != 500 {
		t.Fatalf("map rates in=%v out=%v, want 500/500", in[ids[2]], out[ids[2]])
	}
	if bytes[ids[2]] != 500*50 {
		t.Fatalf("map out bytes = %v, want 25000", bytes[ids[2]])
	}

	in2, _, _, err := g.ExpectedRates(2)
	if err != nil {
		t.Fatal(err)
	}
	if in2[ids[1]] != 2000 {
		t.Fatalf("2x factor filter input = %v, want 2000", in2[ids[1]])
	}
}

func TestKindString(t *testing.T) {
	if KindSource.String() != "source" || KindJoin.String() != "join" {
		t.Fatal("Kind.String mismatch")
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown Kind String = %q", got)
	}
}
