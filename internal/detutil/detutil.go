// Package detutil provides deterministic iteration helpers.
//
// Go map iteration order is randomised per run; any map range whose body
// has an order-sensitive effect (appending to a slice, accumulating
// floats, writing a timeline or exporter) silently breaks the
// same-seed/byte-identical guarantee the simulator is built on. This
// package is the sanctioned way to walk a map: take the keys, sort them,
// iterate the sorted slice. The `waspvet` maprange check (see
// internal/analysis) flags raw order-sensitive map ranges and points
// here.
package detutil

import (
	"cmp"
	"slices"
	"sort"
)

// SortedKeys returns m's keys in ascending order.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //waspvet:unordered keys are sorted before return; this is the sanctioned helper
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns m's keys sorted by the given strict-weak less
// function — for struct keys with no natural order.
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //waspvet:unordered keys are sorted before return; this is the sanctioned helper
		keys = append(keys, k)
	}
	sort.SliceStable(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}

// SortedKeysInto appends m's keys to buf in ascending order and returns
// the extended slice. Pass a recycled buf[:0] to amortize the allocation
// SortedKeys pays on every call — this is the variant for per-tick hot
// paths (the engine and netsim call it every simulation step). Only the
// appended region is sorted; any existing prefix of buf is left intact.
func SortedKeysInto[M ~map[K]V, K cmp.Ordered, V any](m M, buf []K) []K {
	start := len(buf)
	for k := range m { //waspvet:unordered keys are sorted before return; this is the sanctioned helper
		buf = append(buf, k)
	}
	slices.Sort(buf[start:])
	return buf
}

// SortedKeysFuncInto is SortedKeysInto for struct keys with no natural
// order, sorting the appended region stably by the given strict-weak less
// function.
func SortedKeysFuncInto[M ~map[K]V, K comparable, V any](m M, buf []K, less func(a, b K) bool) []K {
	start := len(buf)
	for k := range m { //waspvet:unordered keys are sorted before return; this is the sanctioned helper
		buf = append(buf, k)
	}
	slices.SortStableFunc(buf[start:], func(a, b K) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
	return buf
}

// KV is one map entry.
type KV[K comparable, V any] struct {
	K K
	V V
}

// SortedItems returns m's entries ordered by ascending key.
func SortedItems[M ~map[K]V, K cmp.Ordered, V any](m M) []KV[K, V] {
	items := make([]KV[K, V], 0, len(m))
	for k, v := range m { //waspvet:unordered items are sorted before return; this is the sanctioned helper
		items = append(items, KV[K, V]{K: k, V: v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].K < items[j].K })
	return items
}
