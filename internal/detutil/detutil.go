// Package detutil provides deterministic iteration helpers.
//
// Go map iteration order is randomised per run; any map range whose body
// has an order-sensitive effect (appending to a slice, accumulating
// floats, writing a timeline or exporter) silently breaks the
// same-seed/byte-identical guarantee the simulator is built on. This
// package is the sanctioned way to walk a map: take the keys, sort them,
// iterate the sorted slice. The `waspvet` maprange check (see
// internal/analysis) flags raw order-sensitive map ranges and points
// here.
package detutil

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //waspvet:unordered keys are sorted before return; this is the sanctioned helper
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns m's keys sorted by the given strict-weak less
// function — for struct keys with no natural order.
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //waspvet:unordered keys are sorted before return; this is the sanctioned helper
		keys = append(keys, k)
	}
	sort.SliceStable(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}

// KV is one map entry.
type KV[K comparable, V any] struct {
	K K
	V V
}

// SortedItems returns m's entries ordered by ascending key.
func SortedItems[M ~map[K]V, K cmp.Ordered, V any](m M) []KV[K, V] {
	items := make([]KV[K, V], 0, len(m))
	for k, v := range m { //waspvet:unordered items are sorted before return; this is the sanctioned helper
		items = append(items, KV[K, V]{K: k, V: v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].K < items[j].K })
	return items
}
