package detutil

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 2, "a": 1, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	if ks := SortedKeys(map[int]bool{}); len(ks) != 0 {
		t.Fatalf("SortedKeys(empty) = %v, want empty", ks)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ a, b int }
	m := map[key]string{
		{2, 1}: "x",
		{1, 9}: "y",
		{1, 2}: "z",
	}
	got := SortedKeysFunc(m, func(p, q key) bool {
		if p.a != q.a {
			return p.a < q.a
		}
		return p.b < q.b
	})
	want := []key{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}

func TestSortedKeysInto(t *testing.T) {
	m := map[string]int{"b": 2, "a": 1, "c": 3}
	buf := make([]string, 0, 8)
	got := SortedKeysInto(m, buf)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysInto = %v, want %v", got, want)
	}
	// Reuse must not reallocate when capacity suffices, and must agree
	// with SortedKeys.
	again := SortedKeysInto(m, got[:0])
	if &again[0] != &got[0] {
		t.Fatal("SortedKeysInto reallocated despite sufficient capacity")
	}
	if !reflect.DeepEqual(again, SortedKeys(m)) {
		t.Fatalf("SortedKeysInto = %v, want %v", again, SortedKeys(m))
	}
	// An existing prefix is preserved, with only the appended region
	// sorted.
	prefixed := SortedKeysInto(m, []string{"zz"})
	if !reflect.DeepEqual(prefixed, []string{"zz", "a", "b", "c"}) {
		t.Fatalf("SortedKeysInto with prefix = %v", prefixed)
	}
	if out := SortedKeysInto(map[string]int{}, nil); len(out) != 0 {
		t.Fatalf("SortedKeysInto(empty) = %v, want empty", out)
	}
}

func TestSortedKeysFuncInto(t *testing.T) {
	type key struct{ a, b int }
	m := map[key]string{
		{2, 1}: "x",
		{1, 9}: "y",
		{1, 2}: "z",
	}
	less := func(p, q key) bool {
		if p.a != q.a {
			return p.a < q.a
		}
		return p.b < q.b
	}
	var buf []key
	buf = SortedKeysFuncInto(m, buf[:0], less)
	want := []key{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(buf, want) {
		t.Fatalf("SortedKeysFuncInto = %v, want %v", buf, want)
	}
	if again := SortedKeysFuncInto(m, buf[:0], less); !reflect.DeepEqual(again, SortedKeysFunc(m, less)) {
		t.Fatalf("SortedKeysFuncInto = %v, want %v", again, SortedKeysFunc(m, less))
	}
}

func TestSortedItems(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := SortedItems(m)
	want := []KV[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedItems = %v, want %v", got, want)
	}
}

// Two walks of the same map must observe identical order — the whole
// point of the helpers.
func TestIterationStable(t *testing.T) {
	m := map[string]int{}
	for _, k := range []string{"q", "w", "e", "r", "t", "y", "u", "i", "o", "p"} {
		m[k] = len(k)
	}
	first := SortedKeys(m)
	for i := 0; i < 32; i++ {
		if got := SortedKeys(m); !reflect.DeepEqual(got, first) {
			t.Fatalf("iteration %d differs: %v vs %v", i, got, first)
		}
	}
}
