package detutil

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 2, "a": 1, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	if ks := SortedKeys(map[int]bool{}); len(ks) != 0 {
		t.Fatalf("SortedKeys(empty) = %v, want empty", ks)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ a, b int }
	m := map[key]string{
		{2, 1}: "x",
		{1, 9}: "y",
		{1, 2}: "z",
	}
	got := SortedKeysFunc(m, func(p, q key) bool {
		if p.a != q.a {
			return p.a < q.a
		}
		return p.b < q.b
	})
	want := []key{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}

func TestSortedItems(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := SortedItems(m)
	want := []KV[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedItems = %v, want %v", got, want)
	}
}

// Two walks of the same map must observe identical order — the whole
// point of the helpers.
func TestIterationStable(t *testing.T) {
	m := map[string]int{}
	for _, k := range []string{"q", "w", "e", "r", "t", "y", "u", "i", "o", "p"} {
		m[k] = len(k)
	}
	first := SortedKeys(m)
	for i := 0; i < 32; i++ {
		if got := SortedKeys(m); !reflect.DeepEqual(got, first) {
			t.Fatalf("iteration %d differs: %v vs %v", i, got, first)
		}
	}
}
