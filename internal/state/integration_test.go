package state_test

import (
	"reflect"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/state"
	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Integration: the checkpoint coordinator snapshots a live record-mode
// windowed operator on the virtual clock; after a crash, a fresh operator
// restored from the latest local checkpoint resumes and produces exactly
// the results the original would have (events since the checkpoint are
// replayed — the paper's localized checkpoint/restore path, §5).
func TestCheckpointRestoreResumesWindowedAggregation(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := state.NewStore()

	counter := stream.Count(10 * time.Second)
	coord := state.NewCoordinator(sched, store, 30*time.Second, func(err error) { t.Fatal(err) })
	coord.Register(state.Target{
		Job: "q", Operator: "count", Task: 0, Site: 2,
		Snapshot: counter.SnapshotState,
	})

	// Feed events 0..59 s on a virtual-time schedule: one per second.
	noEmit := func(stream.Event) {}
	for i := 0; i < 60; i++ {
		at := vclock.Time(i) * vclock.Time(time.Second)
		sched.At(at, func(now vclock.Time) {
			counter.OnEvent(0, stream.Event{Time: now, Key: "k"}, noEmit)
		})
	}
	// Run to t=45: checkpoints at 30 (covering events 0..30).
	if err := sched.RunUntil(45 * time.Second); err != nil {
		t.Fatal(err)
	}
	if coord.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", coord.Epoch())
	}

	// Crash: recover a fresh operator from the latest checkpoint at the
	// task's own site (localized restore).
	ref, snap, ok := store.LatestAt("q", "count", 0, 2)
	if !ok {
		t.Fatal("no local checkpoint")
	}
	if ref.Epoch != 1 || ref.Site != 2 {
		t.Fatalf("checkpoint ref = %+v", ref)
	}
	restored := stream.Count(10 * time.Second)
	if err := restored.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	// Replay events after the checkpoint (the t=30 checkpoint fired
	// before the t=30 event, so replay starts at 30) and continue live.
	for i := 30; i <= 59; i++ {
		restored.OnEvent(0, stream.Event{
			Time: vclock.Time(i) * vclock.Time(time.Second), Key: "k",
		}, noEmit)
	}
	// Reference run without any crash.
	want := stream.Count(10 * time.Second)
	for i := 0; i < 60; i++ {
		want.OnEvent(0, stream.Event{
			Time: vclock.Time(i) * vclock.Time(time.Second), Key: "k",
		}, noEmit)
	}
	outRestored := flushAll(restored)
	outWant := flushAll(want)
	if !reflect.DeepEqual(outRestored, outWant) {
		t.Fatalf("restored run differs:\n%v\n%v", outRestored, outWant)
	}
	coord.Stop()
}

func flushAll(h stream.Handler) []stream.Event {
	var out []stream.Event
	h.OnWatermark(stream.MaxWatermark, func(e stream.Event) { out = append(out, e) })
	return out
}
