package state

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Target is one stateful task the coordinator checkpoints.
type Target struct {
	Job      string
	Operator string
	Task     int
	// Site is where the task currently runs; snapshots are stored there
	// (localized checkpointing, §5).
	Site topology.SiteID
	// Replicas lists additional sites the snapshot is copied to in the
	// same round. Localized checkpointing alone cannot survive the loss
	// of the task's own site — a replica on an independent site is what
	// lets recovery restore from a checkpoint not hosted on the failed
	// site. Empty means strictly local (§5 default).
	Replicas []topology.SiteID
	// Snapshot captures the task's current state.
	Snapshot func() ([]byte, error)
}

// Coordinator periodically snapshots registered targets into a Store on
// the virtual clock — WASP's Checkpoint Coordinator. Targets can be
// re-registered when tasks move between sites. The zero value is not
// usable; use NewCoordinator. Not safe for concurrent use (the simulation
// is single-threaded).
type Coordinator struct {
	store    *Store
	interval time.Duration
	targets  map[string]*Target
	epoch    int64
	ticker   *vclock.Event
	onError  func(error)
}

// NewCoordinator creates a coordinator checkpointing every interval on the
// given scheduler. onError observes snapshot failures (nil means they are
// silently skipped for that round).
func NewCoordinator(sched *vclock.Scheduler, store *Store, interval time.Duration, onError func(error)) *Coordinator {
	if interval <= 0 {
		panic("state: non-positive checkpoint interval")
	}
	c := &Coordinator{
		store:    store,
		interval: interval,
		targets:  make(map[string]*Target),
		onError:  onError,
	}
	c.ticker = sched.Every(interval, func(vclock.Time) { c.Checkpoint() })
	return c
}

// NewManualCoordinator creates a coordinator with no periodic ticker:
// checkpoint rounds run only when Checkpoint is called. The recovery
// manager uses this to own the checkpoint cadence itself.
func NewManualCoordinator(store *Store, onError func(error)) *Coordinator {
	return &Coordinator{
		store:   store,
		targets: make(map[string]*Target),
		onError: onError,
	}
}

// Register adds (or replaces, keyed by job/operator/task) a checkpoint
// target.
func (c *Coordinator) Register(t Target) {
	key := Ref{Job: t.Job, Operator: t.Operator, Task: t.Task}.taskKey()
	cp := t
	c.targets[key] = &cp
}

// Unregister removes a target; its existing checkpoints remain stored.
func (c *Coordinator) Unregister(job, operator string, task int) {
	delete(c.targets, Ref{Job: job, Operator: operator, Task: task}.taskKey())
}

// Targets returns the number of registered targets.
func (c *Coordinator) Targets() int { return len(c.targets) }

// Epoch returns the last completed checkpoint round.
func (c *Coordinator) Epoch() int64 { return c.epoch }

// Checkpoint runs one checkpoint round immediately, snapshotting every
// registered target into the store at its current site (plus any replica
// sites). Targets are visited in sorted key order: map iteration order
// must never leak into onError/Store.Put ordering, or same-seed runs
// stop being byte-identical.
func (c *Coordinator) Checkpoint() {
	c.epoch++
	for _, key := range detutil.SortedKeys(c.targets) {
		t := c.targets[key]
		data, err := t.Snapshot()
		if err != nil {
			if c.onError != nil {
				c.onError(fmt.Errorf("checkpoint %s epoch %d: %w", key, c.epoch, err))
			}
			continue
		}
		sites := []topology.SiteID{t.Site}
		for _, r := range t.Replicas {
			dup := false
			for _, s := range sites {
				dup = dup || s == r
			}
			if !dup {
				sites = append(sites, r)
			}
		}
		for _, site := range sites {
			ref := Ref{Job: t.Job, Operator: t.Operator, Task: t.Task, Epoch: c.epoch, Site: site}
			if err := c.store.Put(ref, data); err != nil && c.onError != nil {
				c.onError(err)
			}
		}
	}
}

// Stop cancels the periodic checkpointing (a no-op for manual
// coordinators).
func (c *Coordinator) Stop() {
	if c.ticker != nil {
		c.ticker.Cancel()
	}
}
