package state

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Target is one stateful task the coordinator checkpoints.
type Target struct {
	Job      string
	Operator string
	Task     int
	// Site is where the task currently runs; snapshots are stored there
	// (localized checkpointing, §5).
	Site topology.SiteID
	// Snapshot captures the task's current state.
	Snapshot func() ([]byte, error)
}

// Coordinator periodically snapshots registered targets into a Store on
// the virtual clock — WASP's Checkpoint Coordinator. Targets can be
// re-registered when tasks move between sites. The zero value is not
// usable; use NewCoordinator. Not safe for concurrent use (the simulation
// is single-threaded).
type Coordinator struct {
	store    *Store
	interval time.Duration
	targets  map[string]*Target
	epoch    int64
	ticker   *vclock.Event
	onError  func(error)
}

// NewCoordinator creates a coordinator checkpointing every interval on the
// given scheduler. onError observes snapshot failures (nil means they are
// silently skipped for that round).
func NewCoordinator(sched *vclock.Scheduler, store *Store, interval time.Duration, onError func(error)) *Coordinator {
	if interval <= 0 {
		panic("state: non-positive checkpoint interval")
	}
	c := &Coordinator{
		store:    store,
		interval: interval,
		targets:  make(map[string]*Target),
		onError:  onError,
	}
	c.ticker = sched.Every(interval, func(vclock.Time) { c.Checkpoint() })
	return c
}

// Register adds (or replaces, keyed by job/operator/task) a checkpoint
// target.
func (c *Coordinator) Register(t Target) {
	key := Ref{Job: t.Job, Operator: t.Operator, Task: t.Task}.taskKey()
	cp := t
	c.targets[key] = &cp
}

// Unregister removes a target; its existing checkpoints remain stored.
func (c *Coordinator) Unregister(job, operator string, task int) {
	delete(c.targets, Ref{Job: job, Operator: operator, Task: task}.taskKey())
}

// Targets returns the number of registered targets.
func (c *Coordinator) Targets() int { return len(c.targets) }

// Epoch returns the last completed checkpoint round.
func (c *Coordinator) Epoch() int64 { return c.epoch }

// Checkpoint runs one checkpoint round immediately, snapshotting every
// registered target into the store at its current site.
func (c *Coordinator) Checkpoint() {
	c.epoch++
	for key, t := range c.targets {
		data, err := t.Snapshot()
		if err != nil {
			if c.onError != nil {
				c.onError(fmt.Errorf("checkpoint %s epoch %d: %w", key, c.epoch, err))
			}
			continue
		}
		ref := Ref{Job: t.Job, Operator: t.Operator, Task: t.Task, Epoch: c.epoch, Site: t.Site}
		if err := c.store.Put(ref, data); err != nil && c.onError != nil {
			c.onError(err)
		}
	}
}

// Stop cancels the periodic checkpointing.
func (c *Coordinator) Stop() { c.ticker.Cancel() }
