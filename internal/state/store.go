// Package state implements WASP's local state management (§5): operator
// state snapshots, a site-local checkpoint store (states are checkpointed
// to the site where the task runs, never over the WAN), a checkpoint
// coordinator driving periodic snapshots on the virtual clock, and the
// key-hash partitioner used when state is split across scaled-out tasks.
package state

import (
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/topology"
)

// Ref identifies one checkpointed snapshot.
type Ref struct {
	// Job and Operator name the owning execution; Task is the task index
	// within the operator.
	Job      string
	Operator string
	Task     int
	// Epoch is the checkpoint round (monotonically increasing).
	Epoch int64
	// Site is where the snapshot is stored (the task's site — localized
	// checkpointing).
	Site topology.SiteID
	// Size is the snapshot payload size in bytes.
	Size int64
}

func (r Ref) taskKey() string {
	return fmt.Sprintf("%s/%s/%d", r.Job, r.Operator, r.Task)
}

// Store is an in-memory, site-aware checkpoint store. It retains every
// epoch until pruned. Store is safe for concurrent use.
type Store struct {
	mu sync.Mutex
	// snaps maps task key → epoch-ascending snapshots.
	snaps map[string][]entry
}

type entry struct {
	ref  Ref
	data []byte
}

// NewStore returns an empty checkpoint store.
func NewStore() *Store {
	return &Store{snaps: make(map[string][]entry)}
}

// Put stores a snapshot. Epochs for a task must be non-decreasing; a
// repeat of the current epoch is allowed only at a site that does not
// already hold it (checkpoint replication writes the same round to the
// task's own site and to replica sites).
func (s *Store) Put(ref Ref, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := ref.taskKey()
	es := s.snaps[key]
	if len(es) > 0 {
		last := es[len(es)-1].ref
		if ref.Epoch < last.Epoch {
			return fmt.Errorf("state: epoch %d not after %d for %s", ref.Epoch, last.Epoch, key)
		}
		if ref.Epoch == last.Epoch {
			for i := len(es) - 1; i >= 0 && es[i].ref.Epoch == ref.Epoch; i-- {
				if es[i].ref.Site == ref.Site {
					return fmt.Errorf("state: duplicate epoch %d at site %d for %s", ref.Epoch, ref.Site, key)
				}
			}
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	ref.Size = int64(len(data))
	s.snaps[key] = append(es, entry{ref: ref, data: cp})
	return nil
}

// Latest returns the most recent snapshot for a task, if any.
func (s *Store) Latest(job, operator string, task int) (Ref, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := Ref{Job: job, Operator: operator, Task: task}.taskKey()
	es := s.snaps[key]
	if len(es) == 0 {
		return Ref{}, nil, false
	}
	e := es[len(es)-1]
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return e.ref, out, true
}

// LatestAt returns the most recent snapshot for a task stored at the given
// site (a localized restore: a recovering task may only read local
// checkpoints without a WAN transfer).
func (s *Store) LatestAt(job, operator string, task int, site topology.SiteID) (Ref, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := Ref{Job: job, Operator: operator, Task: task}.taskKey()
	es := s.snaps[key]
	for i := len(es) - 1; i >= 0; i-- {
		if es[i].ref.Site == site {
			out := make([]byte, len(es[i].data))
			copy(out, es[i].data)
			return es[i].ref, out, true
		}
	}
	return Ref{}, nil, false
}

// LatestExcluding returns the most recent snapshot for a task that is
// NOT stored at any of the excluded sites. Recovery after a site crash
// must use this: Latest/LatestAt would happily return a ref hosted on
// the dead site, whose bytes are gone with it. ok=false means every
// surviving copy (if any) was on an excluded site — the task's state is
// lost and it must restart empty.
func (s *Store) LatestExcluding(job, operator string, task int, excluded ...topology.SiteID) (Ref, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := Ref{Job: job, Operator: operator, Task: task}.taskKey()
	es := s.snaps[key]
scan:
	for i := len(es) - 1; i >= 0; i-- {
		for _, x := range excluded {
			if es[i].ref.Site == x {
				continue scan
			}
		}
		out := make([]byte, len(es[i].data))
		copy(out, es[i].data)
		return es[i].ref, out, true
	}
	return Ref{}, nil, false
}

// Prune removes all snapshots for a task older than keepEpoch.
func (s *Store) Prune(job, operator string, task int, keepEpoch int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := Ref{Job: job, Operator: operator, Task: task}.taskKey()
	es := s.snaps[key]
	kept := es[:0]
	for _, e := range es {
		if e.ref.Epoch >= keepEpoch {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(s.snaps, key)
		return
	}
	s.snaps[key] = kept
}

// Refs returns the refs of all stored snapshots, ordered by task key then
// epoch — for inspection and tests.
func (s *Store) Refs() []Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Ref
	for _, k := range detutil.SortedKeys(s.snaps) {
		for _, e := range s.snaps[k] {
			out = append(out, e.ref)
		}
	}
	return out
}

// BytesAt reports the total checkpoint bytes stored at one site.
func (s *Store) BytesAt(site topology.SiteID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, es := range s.snaps {
		for _, e := range es {
			if e.ref.Site == site {
				total += e.ref.Size
			}
		}
	}
	return total
}

// PartitionKey deterministically assigns a key to one of n partitions
// (FNV-1a hash mod n). Stream operators balance their keyed state across
// tasks with this function, and scale-out re-partitions state with it.
func PartitionKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}
