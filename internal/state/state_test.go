package state

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestStorePutLatest(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Latest("j", "op", 0); ok {
		t.Fatal("empty store returned a snapshot")
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Task: 0, Epoch: 1, Site: 2}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Task: 0, Epoch: 2, Site: 2}, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	ref, data, ok := s.Latest("j", "op", 0)
	if !ok || string(data) != "v2" || ref.Epoch != 2 {
		t.Fatalf("Latest = (%+v, %q, %v)", ref, data, ok)
	}
	if ref.Size != 2 {
		t.Fatalf("Size = %d, want 2", ref.Size)
	}
}

func TestStoreEpochMonotonic(t *testing.T) {
	s := NewStore()
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 5, Site: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 5, Site: 1}, nil); err == nil {
		t.Fatal("duplicate epoch at same site accepted")
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 4, Site: 2}, nil); err == nil {
		t.Fatal("regressing epoch accepted")
	}
	// Replication: the same epoch at a different site is a replica copy.
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 5, Site: 2}, nil); err != nil {
		t.Fatalf("replica put rejected: %v", err)
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 5, Site: 1}, nil); err == nil {
		t.Fatal("re-put of replicated epoch at original site accepted")
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 6, Site: 1}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreLatestExcluding(t *testing.T) {
	s := NewStore()
	mustPut := func(epoch int64, site int, v string) {
		t.Helper()
		if err := s.Put(Ref{Job: "j", Operator: "op", Task: 2, Epoch: epoch, Site: topoSite(site)}, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(1, 0, "e1@0")
	mustPut(2, 0, "e2@0")
	mustPut(2, 4, "e2@4") // replica of epoch 2
	mustPut(3, 0, "e3@0")

	// Site 0 dies: the freshest surviving copy is epoch 2's replica at 4.
	ref, data, ok := s.LatestExcluding("j", "op", 2, 0)
	if !ok || string(data) != "e2@4" || ref.Epoch != 2 || ref.Site != 4 {
		t.Fatalf("LatestExcluding(0) = (%+v, %q, %v)", ref, data, ok)
	}
	// No exclusions behaves like Latest.
	ref, _, ok = s.LatestExcluding("j", "op", 2)
	if !ok || ref.Epoch != 3 || ref.Site != 0 {
		t.Fatalf("LatestExcluding() = (%+v, %v)", ref, ok)
	}
	// Multiple exclusions.
	if _, _, ok := s.LatestExcluding("j", "op", 2, 0, 4); ok {
		t.Fatal("LatestExcluding(0,4) found a copy at an excluded site")
	}
}

// The critical recovery case: every copy of the task's state lived on the
// site that died. Restoring from it would be restoring from nothing —
// LatestExcluding must say so rather than hand back a dead ref the way
// Latest does.
func TestStoreLatestExcludingOnlyCopyOnDeadSite(t *testing.T) {
	s := NewStore()
	for e := int64(1); e <= 3; e++ {
		if err := s.Put(Ref{Job: "j", Operator: "agg", Task: 0, Epoch: e, Site: 5}, []byte{byte(e)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := s.Latest("j", "agg", 0); !ok {
		t.Fatal("Latest lost the snapshots")
	}
	if ref, _, ok := s.LatestExcluding("j", "agg", 0, 5); ok {
		t.Fatalf("LatestExcluding(5) returned %+v although the only copies were at site 5", ref)
	}
	// An unrelated exclusion still finds the copies.
	if _, _, ok := s.LatestExcluding("j", "agg", 0, 7); !ok {
		t.Fatal("LatestExcluding(7) missed the site-5 copies")
	}
}

func TestStoreLatestAtSite(t *testing.T) {
	s := NewStore()
	mustPut := func(epoch int64, site int, v string) {
		t.Helper()
		if err := s.Put(Ref{Job: "j", Operator: "op", Task: 1, Epoch: epoch, Site: topoSite(site)}, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(1, 0, "at0")
	mustPut(2, 1, "at1")
	mustPut(3, 1, "at1b")

	ref, data, ok := s.LatestAt("j", "op", 1, 0)
	if !ok || string(data) != "at0" || ref.Epoch != 1 {
		t.Fatalf("LatestAt(0) = (%+v, %q, %v)", ref, data, ok)
	}
	ref, data, ok = s.LatestAt("j", "op", 1, 1)
	if !ok || string(data) != "at1b" || ref.Epoch != 3 {
		t.Fatalf("LatestAt(1) = (%+v, %q, %v)", ref, data, ok)
	}
	if _, _, ok := s.LatestAt("j", "op", 1, 7); ok {
		t.Fatal("LatestAt for unused site returned data")
	}
}

func TestStorePrune(t *testing.T) {
	s := NewStore()
	for e := int64(1); e <= 5; e++ {
		if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: e}, []byte{byte(e)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Prune("j", "op", 0, 4)
	refs := s.Refs()
	if len(refs) != 2 || refs[0].Epoch != 4 || refs[1].Epoch != 5 {
		t.Fatalf("after prune refs = %v", refs)
	}
	s.Prune("j", "op", 0, 100)
	if len(s.Refs()) != 0 {
		t.Fatal("prune-all left snapshots")
	}
}

func TestStoreBytesAt(t *testing.T) {
	s := NewStore()
	_ = s.Put(Ref{Job: "j", Operator: "a", Epoch: 1, Site: 0}, make([]byte, 10))
	_ = s.Put(Ref{Job: "j", Operator: "b", Epoch: 1, Site: 0}, make([]byte, 5))
	_ = s.Put(Ref{Job: "j", Operator: "c", Epoch: 1, Site: 1}, make([]byte, 7))
	if got := s.BytesAt(0); got != 15 {
		t.Fatalf("BytesAt(0) = %d, want 15", got)
	}
	if got := s.BytesAt(1); got != 7 {
		t.Fatalf("BytesAt(1) = %d, want 7", got)
	}
}

func TestStoreCopiesData(t *testing.T) {
	s := NewStore()
	data := []byte("orig")
	_ = s.Put(Ref{Job: "j", Operator: "op", Epoch: 1}, data)
	data[0] = 'X'
	_, got, _ := s.Latest("j", "op", 0)
	if string(got) != "orig" {
		t.Fatal("store aliased caller data")
	}
	got[0] = 'Y'
	_, got2, _ := s.Latest("j", "op", 0)
	if string(got2) != "orig" {
		t.Fatal("store leaked internal data")
	}
}

func TestCoordinatorPeriodicCheckpoints(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := NewStore()
	c := NewCoordinator(sched, store, 30*time.Second, nil)
	val := []byte("s0")
	c.Register(Target{
		Job: "q", Operator: "agg", Task: 0, Site: 3,
		Snapshot: func() ([]byte, error) { return val, nil },
	})
	if err := sched.RunUntil(65 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("Epoch = %d, want 2", got)
	}
	ref, data, ok := store.Latest("q", "agg", 0)
	if !ok || string(data) != "s0" || ref.Site != 3 {
		t.Fatalf("Latest = (%+v, %q, %v)", ref, data, ok)
	}
	c.Stop()
	if err := sched.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("checkpoints continued after Stop: epoch %d", got)
	}
}

func TestCoordinatorErrorHandling(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := NewStore()
	var errs []error
	c := NewCoordinator(sched, store, time.Second, func(err error) { errs = append(errs, err) })
	c.Register(Target{
		Job: "q", Operator: "bad", Task: 0,
		Snapshot: func() ([]byte, error) { return nil, errors.New("boom") },
	})
	c.Checkpoint()
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if _, _, ok := store.Latest("q", "bad", 0); ok {
		t.Fatal("failed snapshot was stored")
	}
	c.Stop()
}

func TestCoordinatorReRegisterMovesSite(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := NewStore()
	c := NewCoordinator(sched, store, time.Second, nil)
	mk := func(site int) Target {
		return Target{
			Job: "q", Operator: "op", Task: 0, Site: topoSite(site),
			Snapshot: func() ([]byte, error) { return []byte("x"), nil },
		}
	}
	c.Register(mk(0))
	c.Checkpoint()
	c.Register(mk(5)) // task migrated
	c.Checkpoint()
	if c.Targets() != 1 {
		t.Fatalf("Targets = %d, want 1 (re-register replaces)", c.Targets())
	}
	ref, _, _ := store.Latest("q", "op", 0)
	if ref.Site != 5 {
		t.Fatalf("latest site = %v, want 5", ref.Site)
	}
	c.Stop()
}

// Regression: Checkpoint used to iterate the targets map directly, so
// Go's randomized map order leaked into the onError sequence and the
// Store.Put order — a determinism hole in a repo whose same-seed JSONL
// is byte-identical by contract. With a failing target in the mix, the
// error position varied run to run. Rounds must now visit targets in
// sorted key order every time.
func TestCoordinatorCheckpointDeterministicOrder(t *testing.T) {
	run := func() (errs []string, refs []Ref) {
		store := NewStore()
		c := NewManualCoordinator(store, func(err error) { errs = append(errs, err.Error()) })
		for i := 0; i < 8; i++ {
			i := i
			tgt := Target{
				Job: "q", Operator: "op", Task: i, Site: topoSite(i),
				Snapshot: func() ([]byte, error) { return []byte{byte(i)}, nil },
			}
			if i == 2 || i == 6 {
				tgt.Snapshot = func() ([]byte, error) { return nil, errors.New("disk gone") }
			}
			c.Register(tgt)
		}
		c.Checkpoint()
		return errs, store.Refs()
	}

	wantErrs := []string{
		"checkpoint q/op/2 epoch 1: disk gone",
		"checkpoint q/op/6 epoch 1: disk gone",
	}
	for trial := 0; trial < 20; trial++ {
		errs, refs := run()
		if len(errs) != len(wantErrs) || errs[0] != wantErrs[0] || errs[1] != wantErrs[1] {
			t.Fatalf("trial %d: error order %v, want %v", trial, errs, wantErrs)
		}
		if len(refs) != 6 {
			t.Fatalf("trial %d: %d refs stored, want 6", trial, len(refs))
		}
	}
}

func TestCoordinatorReplicatesCheckpoints(t *testing.T) {
	store := NewStore()
	c := NewManualCoordinator(store, func(err error) { t.Fatal(err) })
	c.Register(Target{
		Job: "q", Operator: "agg", Task: 0, Site: 3,
		Replicas: []topology.SiteID{1, 3}, // the duplicate of site 3 must be skipped
		Snapshot: func() ([]byte, error) { return []byte("s"), nil },
	})
	c.Checkpoint()
	refs := store.Refs()
	if len(refs) != 2 {
		t.Fatalf("refs = %v, want primary + one replica", refs)
	}
	if refs[0].Site != 3 || refs[1].Site != 1 || refs[0].Epoch != 1 || refs[1].Epoch != 1 {
		t.Fatalf("refs = %v", refs)
	}
	// The replica is what survives the primary site's death.
	ref, data, ok := store.LatestExcluding("q", "agg", 0, 3)
	if !ok || ref.Site != 1 || string(data) != "s" {
		t.Fatalf("LatestExcluding(3) = (%+v, %q, %v)", ref, data, ok)
	}
}

func TestCoordinatorUnregister(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	c := NewCoordinator(sched, NewStore(), time.Second, nil)
	c.Register(Target{Job: "q", Operator: "op", Task: 0, Snapshot: func() ([]byte, error) { return nil, nil }})
	c.Unregister("q", "op", 0)
	if c.Targets() != 0 {
		t.Fatalf("Targets = %d after Unregister", c.Targets())
	}
	c.Stop()
}

func TestPartitionKeyProperties(t *testing.T) {
	if PartitionKey("anything", 1) != 0 {
		t.Fatal("single-partition key not 0")
	}
	if PartitionKey("anything", 0) != 0 {
		t.Fatal("degenerate partition count not 0")
	}
	err := quick.Check(func(key string, n uint8) bool {
		parts := int(n%16) + 2
		p := PartitionKey(key, parts)
		if p < 0 || p >= parts {
			return false
		}
		// Deterministic.
		return PartitionKey(key, parts) == p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionKeySpreads(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		counts[PartitionKey(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)), 4)]++
	}
	for p, c := range counts {
		if c < 100 {
			t.Fatalf("partition %d got %d of 1000 keys — badly skewed", p, c)
		}
	}
}

// topoSite converts an int to a topology.SiteID for test brevity.
func topoSite(i int) topology.SiteID { return topology.SiteID(i) }
