package state

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestStorePutLatest(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Latest("j", "op", 0); ok {
		t.Fatal("empty store returned a snapshot")
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Task: 0, Epoch: 1, Site: 2}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Task: 0, Epoch: 2, Site: 2}, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	ref, data, ok := s.Latest("j", "op", 0)
	if !ok || string(data) != "v2" || ref.Epoch != 2 {
		t.Fatalf("Latest = (%+v, %q, %v)", ref, data, ok)
	}
	if ref.Size != 2 {
		t.Fatalf("Size = %d, want 2", ref.Size)
	}
}

func TestStoreEpochMonotonic(t *testing.T) {
	s := NewStore()
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 5}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 5}, nil); err == nil {
		t.Fatal("duplicate epoch accepted")
	}
	if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: 4}, nil); err == nil {
		t.Fatal("regressing epoch accepted")
	}
}

func TestStoreLatestAtSite(t *testing.T) {
	s := NewStore()
	mustPut := func(epoch int64, site int, v string) {
		t.Helper()
		if err := s.Put(Ref{Job: "j", Operator: "op", Task: 1, Epoch: epoch, Site: topoSite(site)}, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(1, 0, "at0")
	mustPut(2, 1, "at1")
	mustPut(3, 1, "at1b")

	ref, data, ok := s.LatestAt("j", "op", 1, 0)
	if !ok || string(data) != "at0" || ref.Epoch != 1 {
		t.Fatalf("LatestAt(0) = (%+v, %q, %v)", ref, data, ok)
	}
	ref, data, ok = s.LatestAt("j", "op", 1, 1)
	if !ok || string(data) != "at1b" || ref.Epoch != 3 {
		t.Fatalf("LatestAt(1) = (%+v, %q, %v)", ref, data, ok)
	}
	if _, _, ok := s.LatestAt("j", "op", 1, 7); ok {
		t.Fatal("LatestAt for unused site returned data")
	}
}

func TestStorePrune(t *testing.T) {
	s := NewStore()
	for e := int64(1); e <= 5; e++ {
		if err := s.Put(Ref{Job: "j", Operator: "op", Epoch: e}, []byte{byte(e)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Prune("j", "op", 0, 4)
	refs := s.Refs()
	if len(refs) != 2 || refs[0].Epoch != 4 || refs[1].Epoch != 5 {
		t.Fatalf("after prune refs = %v", refs)
	}
	s.Prune("j", "op", 0, 100)
	if len(s.Refs()) != 0 {
		t.Fatal("prune-all left snapshots")
	}
}

func TestStoreBytesAt(t *testing.T) {
	s := NewStore()
	_ = s.Put(Ref{Job: "j", Operator: "a", Epoch: 1, Site: 0}, make([]byte, 10))
	_ = s.Put(Ref{Job: "j", Operator: "b", Epoch: 1, Site: 0}, make([]byte, 5))
	_ = s.Put(Ref{Job: "j", Operator: "c", Epoch: 1, Site: 1}, make([]byte, 7))
	if got := s.BytesAt(0); got != 15 {
		t.Fatalf("BytesAt(0) = %d, want 15", got)
	}
	if got := s.BytesAt(1); got != 7 {
		t.Fatalf("BytesAt(1) = %d, want 7", got)
	}
}

func TestStoreCopiesData(t *testing.T) {
	s := NewStore()
	data := []byte("orig")
	_ = s.Put(Ref{Job: "j", Operator: "op", Epoch: 1}, data)
	data[0] = 'X'
	_, got, _ := s.Latest("j", "op", 0)
	if string(got) != "orig" {
		t.Fatal("store aliased caller data")
	}
	got[0] = 'Y'
	_, got2, _ := s.Latest("j", "op", 0)
	if string(got2) != "orig" {
		t.Fatal("store leaked internal data")
	}
}

func TestCoordinatorPeriodicCheckpoints(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := NewStore()
	c := NewCoordinator(sched, store, 30*time.Second, nil)
	val := []byte("s0")
	c.Register(Target{
		Job: "q", Operator: "agg", Task: 0, Site: 3,
		Snapshot: func() ([]byte, error) { return val, nil },
	})
	if err := sched.RunUntil(65 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("Epoch = %d, want 2", got)
	}
	ref, data, ok := store.Latest("q", "agg", 0)
	if !ok || string(data) != "s0" || ref.Site != 3 {
		t.Fatalf("Latest = (%+v, %q, %v)", ref, data, ok)
	}
	c.Stop()
	if err := sched.RunUntil(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("checkpoints continued after Stop: epoch %d", got)
	}
}

func TestCoordinatorErrorHandling(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := NewStore()
	var errs []error
	c := NewCoordinator(sched, store, time.Second, func(err error) { errs = append(errs, err) })
	c.Register(Target{
		Job: "q", Operator: "bad", Task: 0,
		Snapshot: func() ([]byte, error) { return nil, errors.New("boom") },
	})
	c.Checkpoint()
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if _, _, ok := store.Latest("q", "bad", 0); ok {
		t.Fatal("failed snapshot was stored")
	}
	c.Stop()
}

func TestCoordinatorReRegisterMovesSite(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	store := NewStore()
	c := NewCoordinator(sched, store, time.Second, nil)
	mk := func(site int) Target {
		return Target{
			Job: "q", Operator: "op", Task: 0, Site: topoSite(site),
			Snapshot: func() ([]byte, error) { return []byte("x"), nil },
		}
	}
	c.Register(mk(0))
	c.Checkpoint()
	c.Register(mk(5)) // task migrated
	c.Checkpoint()
	if c.Targets() != 1 {
		t.Fatalf("Targets = %d, want 1 (re-register replaces)", c.Targets())
	}
	ref, _, _ := store.Latest("q", "op", 0)
	if ref.Site != 5 {
		t.Fatalf("latest site = %v, want 5", ref.Site)
	}
	c.Stop()
}

func TestCoordinatorUnregister(t *testing.T) {
	sched := vclock.NewScheduler(nil)
	c := NewCoordinator(sched, NewStore(), time.Second, nil)
	c.Register(Target{Job: "q", Operator: "op", Task: 0, Snapshot: func() ([]byte, error) { return nil, nil }})
	c.Unregister("q", "op", 0)
	if c.Targets() != 0 {
		t.Fatalf("Targets = %d after Unregister", c.Targets())
	}
	c.Stop()
}

func TestPartitionKeyProperties(t *testing.T) {
	if PartitionKey("anything", 1) != 0 {
		t.Fatal("single-partition key not 0")
	}
	if PartitionKey("anything", 0) != 0 {
		t.Fatal("degenerate partition count not 0")
	}
	err := quick.Check(func(key string, n uint8) bool {
		parts := int(n%16) + 2
		p := PartitionKey(key, parts)
		if p < 0 || p >= parts {
			return false
		}
		// Deterministic.
		return PartitionKey(key, parts) == p
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionKeySpreads(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		counts[PartitionKey(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)), 4)]++
	}
	for p, c := range counts {
		if c < 100 {
			t.Fatalf("partition %d got %d of 1000 keys — badly skewed", p, c)
		}
	}
}

// topoSite converts an int to a topology.SiteID for test brevity.
func topoSite(i int) topology.SiteID { return topology.SiteID(i) }
