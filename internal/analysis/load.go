package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded (parsed + best-effort type-checked) package
// directory, ready to run analyzers over.
type Package struct {
	Dir     string
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checking problems. Analysis proceeds on
	// partial information; callers may surface these as warnings.
	TypeErrors []error
}

// Pass converts the loaded package into an analyzer pass.
func (p *Package) Pass() *Pass {
	return &Pass{Fset: p.Fset, Files: p.Files, PkgPath: p.PkgPath, Pkg: p.Types, Info: p.Info}
}

// A Loader parses and type-checks packages of a single module without
// invoking the go tool: module-internal imports resolve straight to
// directories under the module root, everything else (stdlib) resolves
// through go/importer's source importer. That keeps waspvet fully
// offline and deterministic.
type Loader struct {
	Fset    *token.FileSet
	Root    string // module root directory (holds go.mod)
	ModPath string // module path from go.mod

	std     types.Importer
	typed   map[string]*types.Package // import path -> checked package
	pkgs    map[string]*Package       // import path -> loaded package (AST + Info)
	loading map[string]bool           // cycle guard
}

// NewLoader builds a loader for the module rooted at root, reading the
// module path from go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Root:    abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		typed:   map[string]*types.Package{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModuleRoot walks up from dir looking for go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths type-check
// from source under the module root; all other paths go to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.typed[path]; ok {
		return pkg, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.load(filepath.Join(l.Root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir. The import path is
// derived from the directory's position under the module root; for
// out-of-module dirs (fixtures) a synthetic path is used.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, l.pathFor(abs))
}

func (l *Loader) pathFor(absDir string) string {
	if rel, err := filepath.Rel(l.Root, absDir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModPath
		}
		return l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return "fixture/" + filepath.Base(absDir)
}

func (l *Loader) load(dir, pkgPath string) (*Package, error) {
	// Serve repeat loads from cache: a package pulled in earlier as an
	// import of another package MUST reuse the same type objects when its
	// own directory is analyzed, or the interprocedural call graph cannot
	// match its declarations against its callers' references.
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg := &Package{Dir: dir, PkgPath: pkgPath, Fset: l.Fset, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil && tpkg == nil {
		// Catastrophic failure: run checks without type info.
		return pkg, nil
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.typed[pkgPath] = tpkg
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// LoadModule loads every package directory under the module root,
// skipping testdata, vendor and hidden directories. Directories are
// visited in sorted path order so diagnostics print deterministically.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != l.Root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		p, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
