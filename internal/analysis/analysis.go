// Package analysis implements waspvet, a stdlib-only static-analysis
// suite that enforces the simulator's determinism and concurrency
// invariants at build time.
//
// The reproduction's core guarantee — same-seed runs are byte-identical
// (CI double-runs waspd and byte-compares the JSONL) — is easy to break
// silently: a `time.Now` in a hot path, a map range feeding the
// timeline, a reach for the global `math/rand`. Each invariant is
// encoded as an Analyzer; `cmd/waspvet` runs the suite over the module
// and fails on any non-waived diagnostic.
//
// # Waivers
//
// A site that violates a check on purpose carries a waiver comment on
// the flagged line or the line directly above it:
//
//	//waspvet:wallclock progress logging only; never feeds the timeline
//
// The tag after `waspvet:` is the check's waiver name (usually the
// check name; the maprange check uses `unordered`). The reason string is
// mandatory — a bare waiver is itself a diagnostic — so every exemption
// documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the check in diagnostics and -check filters.
	Name string
	// Waiver is the tag accepted in //waspvet:<tag> comments to
	// suppress this check (defaults to Name when empty).
	Waiver string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and returns raw diagnostics; waiver
	// filtering happens in Apply.
	Run func(*Pass) []Diagnostic
}

// WaiverName returns the tag that waives this analyzer's diagnostics.
func (a *Analyzer) WaiverName() string {
	if a.Waiver != "" {
		return a.Waiver
	}
	return a.Name
}

// A Pass carries one parsed (and, when the loader succeeded,
// type-checked) package through the analyzer suite.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// PkgPath is the package's import path (used for per-package
	// allowlists, e.g. wallclock exempts internal/vclock).
	PkgPath string
	// Pkg and Info are nil when type-checking failed entirely; checks
	// must degrade gracefully (skip type-dependent logic).
	Pkg  *types.Package
	Info *types.Info
	// Graph is the interprocedural call graph over every package of the
	// run (set by cmd/waspvet and the fixture harness after loading).
	// Nil disables the interprocedural layers: wallclock/globalrand fall
	// back to direct-call detection, genbump and hotalloc report
	// nothing.
	Graph *CallGraph
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// Position resolves a diagnostic's file position against a fileset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// registry of self-registered analyzers (each check file registers
// itself from init).
var registry = map[string]*Analyzer{}

// Register adds an analyzer to the suite. It panics on a duplicate
// name — registration happens only from init functions.
func Register(a *Analyzer) {
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("analysis: duplicate analyzer %q", a.Name))
	}
	registry[a.Name] = a
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	names := make([]string, 0, len(registry))
	for n := range registry { //waspvet:unordered names are sorted on the next line
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Analyzer, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Lookup returns the analyzer with the given name, if registered.
func Lookup(name string) (*Analyzer, bool) {
	a, ok := registry[name]
	return a, ok
}

// waiver is one parsed //waspvet:<tag> <reason> comment.
type waiver struct {
	tag    string
	reason string
	pos    token.Pos
	line   int
	file   string
}

// WaiverPrefix introduces a waiver comment.
const WaiverPrefix = "//waspvet:"

// parseWaivers extracts every waiver comment in the pass, returning the
// waivers plus diagnostics for malformed ones (missing reason, unknown
// tag). Known tags are the waiver names of the analyzers being applied.
func parseWaivers(pass *Pass, analyzers []*Analyzer) ([]waiver, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.WaiverName()] = true
	}
	var ws []waiver
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, WaiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, WaiverPrefix)
				tag, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				p := pass.Fset.Position(c.Pos())
				if annotationTags[tag] {
					// Contract annotations (hotpath, guardedby, ordered)
					// share the //waspvet: prefix but are not waivers; the
					// argument-bearing ones must carry their argument.
					if tag != "hotpath" && reason == "" {
						diags = append(diags, Diagnostic{Pos: c.Pos(), Check: "waiver",
							Message: fmt.Sprintf("waspvet:%s annotation requires an argument", tag)})
					}
					continue
				}
				switch {
				case tag == "":
					diags = append(diags, Diagnostic{Pos: c.Pos(), Check: "waiver",
						Message: "waspvet waiver missing check tag: want //waspvet:<check> <reason>"})
				case !known[tag]:
					diags = append(diags, Diagnostic{Pos: c.Pos(), Check: "waiver",
						Message: fmt.Sprintf("waspvet waiver for unknown check %q", tag)})
				case reason == "":
					diags = append(diags, Diagnostic{Pos: c.Pos(), Check: "waiver",
						Message: fmt.Sprintf("waspvet:%s waiver requires a reason string", tag)})
				default:
					ws = append(ws, waiver{tag: tag, reason: reason, pos: c.Pos(), line: p.Line, file: p.Filename})
				}
			}
		}
	}
	return ws, diags
}

// Apply runs the analyzers over one package and returns the surviving
// diagnostics: raw findings minus waived ones, plus waiver-syntax
// errors, sorted by position.
func Apply(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	waivers, diags := parseWaivers(pass, analyzers)
	// Index: file:line -> set of waived tags. A waiver covers its own
	// line (trailing comment) and the line below it (comment above the
	// flagged statement).
	type key struct {
		file string
		line int
	}
	waived := map[key]map[string]bool{}
	add := func(k key, tag string) {
		if waived[k] == nil {
			waived[k] = map[string]bool{}
		}
		waived[k][tag] = true
	}
	for _, w := range waivers {
		add(key{w.file, w.line}, w.tag)
		add(key{w.file, w.line + 1}, w.tag)
	}
	byWaiver := map[string]string{}
	for _, a := range analyzers {
		byWaiver[a.Name] = a.WaiverName()
	}
	for _, a := range analyzers {
		for _, d := range a.Run(pass) {
			p := pass.Fset.Position(d.Pos)
			if tags := waived[key{p.Filename, p.Line}]; tags != nil && tags[byWaiver[d.Check]] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pass.Fset.Position(diags[i].Pos), pass.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}

// importedPkg reports whether ident resolves to the named import path
// (e.g. "time", "math/rand"). With type info it resolves precisely via
// PkgName objects; without, it falls back to matching the file's import
// spec names.
func importedPkg(pass *Pass, file *ast.File, ident *ast.Ident, path ...string) bool {
	want := map[string]bool{}
	for _, p := range path {
		want[p] = true
	}
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[ident]; ok {
			pn, ok := obj.(*types.PkgName)
			return ok && want[pn.Imported().Path()]
		}
	}
	for _, imp := range file.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if !want[p] {
			continue
		}
		name := p[strings.LastIndex(p, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return true
		}
	}
	return false
}

// fileOf returns the *ast.File containing pos.
func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
