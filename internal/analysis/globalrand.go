package analysis

import (
	"fmt"
	"go/ast"
)

// globalrandAllowed are the math/rand (and v2) package-level functions
// that do NOT draw from the process-global source: constructors taking
// an explicit seed/source. Everything else (rand.Intn, rand.Float64,
// rand.Shuffle, rand.Seed, ...) consumes global state whose sequence
// depends on what other code ran before — a determinism hazard.
var globalrandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func init() {
	Register(&Analyzer{
		Name: "globalrand",
		Doc: "flags package-level math/rand calls (rand.Intn, rand.Float64, " +
			"rand.Seed, ...) and calls to module functions that transitively " +
			"reach one (call-graph closure): randomness must flow through an " +
			"injected, seeded *rand.Rand so streams replay per-seed",
		Run: runGlobalrand,
	})
}

func runGlobalrand(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if d, ok := transitiveHazard(pass, call, hazardGlobalrand, "the global rand source"); ok {
				diags = append(diags, d)
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || globalrandAllowed[sel.Sel.Name] {
				return true
			}
			if !importedPkg(pass, file, ident, "math/rand", "math/rand/v2") {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   call.Pos(),
				Check: "globalrand",
				Message: fmt.Sprintf("rand.%s draws from the global source; plumb a seeded *rand.Rand "+
					"(rand.New(rand.NewSource(seed))) instead, or waive with //waspvet:globalrand <reason>",
					sel.Sel.Name),
			})
			return true
		})
	}
	return diags
}
