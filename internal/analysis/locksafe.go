package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "locksafe",
		Doc: "flags sync.Mutex/RWMutex/WaitGroup/Once/Cond copied by value " +
			"(parameters, receivers, results, plain copies, range values) and " +
			"Lock/RLock calls with no matching Unlock/RUnlock in the same " +
			"function body",
		Run: runLocksafe,
	})
}

func runLocksafe(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		diags = append(diags, lockCopies(pass, file)...)
		diags = append(diags, lockPairs(pass, file)...)
	}
	return diags
}

// containsLock reports whether a value of type t embeds sync lock state
// that must not be copied.
func containsLock(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return false
}

// lockCopies flags by-value lock transfer: parameters, receivers and
// results of lock-containing type, plain variable-to-variable copies,
// and range value variables.
func lockCopies(pass *Pass, file *ast.File) []Diagnostic {
	if pass.Info == nil {
		return nil
	}
	var diags []Diagnostic
	flag := func(pos ast.Node, what string, t types.Type) {
		diags = append(diags, Diagnostic{
			Pos:   pos.Pos(),
			Check: "locksafe",
			Message: fmt.Sprintf("%s copies %s by value (locks must be shared by pointer); "+
				"waive with //waspvet:locksafe <reason>", what, t.String()),
		})
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t, 0) {
				flag(f, what, t)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				switch rhs.(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					t := pass.Info.TypeOf(rhs)
					if t != nil && containsLock(t, 0) {
						flag(n, "assignment", t)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				t := pass.Info.TypeOf(n.Value)
				if t != nil && containsLock(t, 0) {
					flag(n.Value, "range value", t)
				}
			}
		}
		return true
	})
	return diags
}

// lockPairs flags Lock/RLock calls whose receiver has no textual
// Unlock/RUnlock (deferred or direct) anywhere in the same function
// body — the classic leaked-lock bug.
func lockPairs(pass *Pass, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		type lockCall struct {
			pos  ast.Node
			recv string
			name string
		}
		var locks []lockCall
		unlocked := map[string]bool{} // recv text -> has Unlock / RUnlock
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			recv := types.ExprString(sel.X)
			switch sel.Sel.Name {
			case "Lock", "RLock":
				locks = append(locks, lockCall{pos: call, recv: recv, name: sel.Sel.Name})
			case "Unlock", "RUnlock":
				unlocked[recv] = true
			}
			return true
		})
		for _, lc := range locks {
			if !unlocked[lc.recv] {
				diags = append(diags, Diagnostic{
					Pos:   lc.pos.Pos(),
					Check: "locksafe",
					Message: fmt.Sprintf("%s.%s() has no matching unlock in %s (leaked lock); "+
						"defer %s.Unlock() or waive with //waspvet:locksafe <reason>",
						lc.recv, lc.name, fn.Name.Name, lc.recv),
				})
			}
		}
		return true
	})
	return diags
}
