package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "hotalloc",
		Doc: "audits functions annotated //waspvet:hotpath for allocation-" +
			"inducing constructs: make/new, heap composite literals, appends to " +
			"non-reused slices, closures, interface boxing, string concat, fmt " +
			"calls, variadic argument packing, dynamic calls, and calls into " +
			"non-hotpath module functions — source-level provenance for the " +
			"runtime allocs-per-tick ceilings; waive an amortized or cold-branch " +
			"site with //waspvet:hotalloc <reason>",
		Run: runHotalloc,
	})
}

func runHotalloc(pass *Pass) []Diagnostic {
	g := pass.Graph
	if g == nil || pass.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := g.Node(fn)
			if node == nil || !node.Hot {
				continue
			}
			h := &hotallocScan{pass: pass, graph: g, decl: fd}
			h.collectDefs()
			h.scan(fd.Body)
			diags = append(diags, h.diags...)
		}
	}
	return diags
}

// hotallocScan audits one hot-path function body.
type hotallocScan struct {
	pass  *Pass
	graph *CallGraph
	decl  *ast.FuncDecl
	// defs maps simple local variables to their single defining
	// expression (`v := expr` / `v = expr` with one LHS and one RHS),
	// used to prove an append destination derives from retained storage.
	defs  map[*types.Var]ast.Expr
	diags []Diagnostic
}

func (h *hotallocScan) flag(pos token.Pos, format string, args ...any) {
	h.diags = append(h.diags, Diagnostic{
		Pos:     pos,
		Check:   "hotalloc",
		Message: fmt.Sprintf(format, args...) + "; fix, or waive with //waspvet:hotalloc <reason>",
	})
}

// collectDefs indexes the function's simple single-assignment forms so
// appendReuses can chase an append destination back to a field-backed
// scratch buffer.
func (h *hotallocScan) collectDefs() {
	h.defs = map[*types.Var]ast.Expr{}
	ast.Inspect(h.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := h.pass.Info.ObjectOf(id).(*types.Var); ok {
			// First writer wins: the initial definition is the one that
			// establishes provenance (`buf := s.scratch[:0]`); later
			// self-appends (`buf = append(buf, x)`) must not clobber it.
			if _, seen := h.defs[v]; !seen {
				h.defs[v] = as.Rhs[0]
			}
		}
		return true
	})
}

func (h *hotallocScan) scan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			h.checkCall(n)
		case *ast.FuncLit:
			h.flag(n.Pos(), "closure in hot path (the func value and its captures may heap-allocate)")
		case *ast.GoStmt:
			h.flag(n.Pos(), "go statement in hot path (new goroutine + stack allocation)")
		case *ast.DeferStmt:
			h.flag(n.Pos(), "defer in hot path (defer record may allocate)")
		case *ast.CompositeLit:
			h.checkComposite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					h.flag(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(h.pass.Info.TypeOf(n)) {
				h.flag(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			h.checkAssign(n)
		}
		return true
	})
}

// checkComposite flags composite literals whose construction allocates:
// slice, map and (via the enclosing &) pointer literals. Plain value
// struct/array literals live on the stack and pass.
func (h *hotallocScan) checkComposite(lit *ast.CompositeLit) {
	t := h.pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		h.flag(lit.Pos(), "slice literal allocates")
	case *types.Map:
		h.flag(lit.Pos(), "map literal allocates")
	}
}

// checkAssign flags compound string concatenation and interface boxing
// through assignment.
func (h *hotallocScan) checkAssign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(h.pass.Info.TypeOf(as.Lhs[0])) {
		h.flag(as.Pos(), "string += allocates")
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		lt := h.pass.Info.TypeOf(lhs)
		rt := h.pass.Info.TypeOf(as.Rhs[i])
		if boxes(lt, rt) {
			h.flag(as.Rhs[i].Pos(), "assignment boxes a concrete value into an interface")
		}
	}
}

func (h *hotallocScan) checkCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := h.pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				h.flag(call.Pos(), "make allocates")
			case "new":
				h.flag(call.Pos(), "new allocates")
			case "append":
				h.checkAppend(call)
			}
			return
		}
	}

	// Conversions: string <-> byte/rune slices copy, conversions to an
	// interface type box.
	if tv, ok := h.pass.Info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		var from types.Type
		if len(call.Args) == 1 {
			from = h.pass.Info.TypeOf(call.Args[0])
		}
		switch {
		case isString(to) && isByteOrRuneSlice(from), isByteOrRuneSlice(to) && isString(from):
			h.flag(call.Pos(), "string/byte-slice conversion copies and allocates")
		case boxes(to, from):
			h.flag(call.Pos(), "conversion boxes a concrete value into an interface")
		}
		return
	}

	callee := calleeOf(h.pass.Info, call)
	if callee == nil {
		// Dynamic call: func value or interface method. The call graph
		// cannot see through it, so the audit ends here.
		h.flag(call.Pos(), "dynamic call (func value or interface method) leaves the audited hot path")
		return
	}

	// Variadic packing: passing ≥1 variadic argument without a spread
	// allocates the argument slice.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Variadic() && call.Ellipsis == token.NoPos &&
		len(call.Args) >= sig.Params().Len() {
		h.flag(call.Pos(), "variadic call packs its arguments into a fresh slice")
	}

	// Interface boxing at the call boundary.
	h.checkArgBoxing(call, callee)

	if pkg := callee.Pkg(); pkg != nil {
		switch {
		case pkg.Path() == "fmt":
			h.flag(call.Pos(), "fmt.%s formats through reflection and allocates", callee.Name())
		case h.graph.Node(callee) != nil:
			// Module-internal call: the callee must itself be an audited
			// hot path, or the call site carries a waiver explaining why
			// leaving the audited region is safe (cold branch, amortized
			// rebuild).
			if !h.graph.Node(callee).Hot {
				h.flag(call.Pos(), "call to %s leaves the audited hot path (not //waspvet:hotpath)", callee.Name())
			}
		}
	}
}

// checkArgBoxing flags concrete values passed to interface parameters of
// a statically resolved callee.
func (h *hotallocScan) checkArgBoxing(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if boxes(pt, h.pass.Info.TypeOf(arg)) {
			h.flag(arg.Pos(), "argument boxes a concrete value into interface parameter %d of %s", i, callee.Name())
		}
	}
}

// checkAppend flags appends whose destination cannot be proven to reuse
// retained storage. Reuse is recognized when the destination (chasing
// one level of simple local definitions) roots in a struct field (a
// retained scratch buffer, e.g. `n.sc.claimants[:0]`) or a function
// parameter (a caller-supplied buffer) — the suite's amortized-growth
// idiom. Anything else is treated as a fresh slice.
func (h *hotallocScan) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if h.reusesRetained(call.Args[0], 0) {
		return
	}
	h.flag(call.Pos(), "append to a slice not derived from retained scratch (field or parameter) may allocate")
}

func (h *hotallocScan) reusesRetained(e ast.Expr, depth int) bool {
	if depth > 4 {
		return false
	}
	for {
		switch x := unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := h.pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return true // rooted in a retained struct field
			}
			return false
		case *ast.Ident:
			v, ok := h.pass.Info.ObjectOf(x).(*types.Var)
			if !ok {
				return false
			}
			if h.isParam(v) {
				return true // caller-supplied buffer
			}
			if def, ok := h.defs[v]; ok {
				return h.reusesRetained(def, depth+1)
			}
			return false
		case *ast.CallExpr:
			// buf = append(buf2, ...) keeps buf2's provenance.
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				if _, isBuiltin := h.pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
					return h.reusesRetained(x.Args[0], depth+1)
				}
			}
			return false
		default:
			return false
		}
	}
}

// isParam reports whether v is a parameter (or receiver) of the audited
// function.
func (h *hotallocScan) isParam(v *types.Var) bool {
	ft := h.decl.Type
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if h.pass.Info.ObjectOf(name) == v {
					return true
				}
			}
		}
		return false
	}
	return check(ft.Params) || check(h.decl.Recv)
}

// boxes reports whether assigning a value of type from to a location of
// type to converts a concrete value into an interface (a potential heap
// allocation). Pointer-shaped values box without allocating, so pointers
// pass.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	// A type parameter's underlying type is an interface, but a generic
	// call instantiates it with the concrete argument type — no boxing.
	if _, ok := to.(*types.TypeParam); ok {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if from.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
