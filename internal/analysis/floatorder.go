package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "floatorder",
		Doc: "generalizes maprange's float-accumulation rule beyond maps: " +
			"flags floating-point reductions (+=, -=, *=, /=, ++/--) into " +
			"outer variables when ranging over a channel or over the results " +
			"of a producer not marked //waspvet:ordered (e.g. worker-pool " +
			"output), and float accumulation into shared variables from `go` " +
			"closures — rounding then depends on arrival order; sort first, " +
			"mark the producer //waspvet:ordered <how>, or waive with " +
			"//waspvet:floatorder <reason>",
		Run: runFloatorder,
	})
}

// floatorderOrderedPkgs are non-module producer packages whose returned
// collections are canonically ordered by construction.
var floatorderOrderedPkgs = []string{"sort", "slices", "internal/detutil"}

func runFloatorder(pass *Pass) []Diagnostic {
	if pass.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			defs := collectSimpleDefs(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if d, ok := rangeFloatHazard(pass, n, defs); ok {
						diags = append(diags, d)
					}
				case *ast.GoStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						diags = append(diags, goFloatHazards(pass, lit)...)
					}
				}
				return true
			})
		}
	}
	return diags
}

// collectSimpleDefs indexes `v := expr` / `v = expr` single assignments
// so a range source can be chased one hop back to its producer call.
func collectSimpleDefs(pass *Pass, body *ast.BlockStmt) map[*types.Var]ast.Expr {
	defs := map[*types.Var]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok {
			defs[v] = as.Rhs[0]
		}
		return true
	})
	return defs
}

// rangeFloatHazard reports a diagnostic when rng iterates a
// non-canonically-ordered source AND its body accumulates floats into
// state declared outside the loop. Maps are maprange's jurisdiction and
// are skipped here.
func rangeFloatHazard(pass *Pass, rng *ast.RangeStmt, defs map[*types.Var]ast.Expr) (Diagnostic, bool) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return Diagnostic{}, false
	}
	var source string
	switch t.Underlying().(type) {
	case *types.Map:
		return Diagnostic{}, false // maprange owns map iteration
	case *types.Chan:
		source = "a channel (fill order follows goroutine scheduling)"
	default:
		source = unorderedProducer(pass, rng.X, defs, 0)
		if source == "" {
			return Diagnostic{}, false
		}
	}
	target := floatAccumTarget(pass, rng.Body, rng.Pos(), rng.End())
	if target == "" {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:   rng.For,
		Check: "floatorder",
		Message: fmt.Sprintf("floating-point reduction into %s over %s: rounding depends on "+
			"arrival order; sort the collection first, mark the producer //waspvet:ordered <how>, "+
			"or waive with //waspvet:floatorder <reason>", target, source),
	}, true
}

// unorderedProducer describes why the ranged expression's ordering is
// suspect ("" = canonically ordered or unknowable). A plain slice
// variable or field is ordered by construction; a call result is ordered
// only when the producer is marked //waspvet:ordered or lives in a
// sorted-by-construction package. Dynamic calls and non-module calls are
// allowed (the call graph cannot judge them) — a documented
// under-approximation.
func unorderedProducer(pass *Pass, e ast.Expr, defs map[*types.Var]ast.Expr, depth int) string {
	if depth > 4 {
		return ""
	}
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.Info.ObjectOf(x).(*types.Var); ok {
			if def, ok := defs[v]; ok {
				return unorderedProducer(pass, def, defs, depth+1)
			}
		}
		return ""
	case *ast.CallExpr:
		callee := calleeOf(pass.Info, x)
		if callee == nil || callee.Pkg() == nil {
			return ""
		}
		path := callee.Pkg().Path()
		for _, p := range floatorderOrderedPkgs {
			if path == p || strings.HasSuffix(path, p) {
				return ""
			}
		}
		if pass.Graph == nil {
			return ""
		}
		node := pass.Graph.Node(callee)
		if node == nil || node.Ordered {
			return ""
		}
		return fmt.Sprintf("the results of %s, which is not marked //waspvet:ordered", callee.Name())
	}
	return ""
}

// floatAccumTarget returns the first outer variable the body accumulates
// floats into ("" = none): compound float assignment or ++/-- on a
// target declared outside [pos, end].
func floatAccumTarget(pass *Pass, body *ast.BlockStmt, pos, end token.Pos) string {
	target := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if target != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass.Info.TypeOf(lhs)) && !declaredWithin(pass, rootIdent(lhs), pos, end) {
						target = types.ExprString(lhs)
						return false
					}
				}
			}
		case *ast.IncDecStmt:
			if isFloat(pass.Info.TypeOf(n.X)) && !declaredWithin(pass, rootIdent(n.X), pos, end) {
				target = types.ExprString(n.X)
			}
		}
		return target == ""
	})
	return target
}

// goFloatHazards flags float accumulation from inside a `go` closure
// into variables captured from the enclosing scope: goroutine completion
// order is scheduler-dependent, so the rounding (and, without locking,
// the value itself) is non-deterministic.
func goFloatHazards(pass *Pass, lit *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	hit := func(pos token.Pos, e ast.Expr) {
		diags = append(diags, Diagnostic{
			Pos:   pos,
			Check: "floatorder",
			Message: fmt.Sprintf("goroutine accumulates floating-point into captured variable %s: "+
				"completion order is scheduler-dependent; collect per-worker results and reduce in a "+
				"canonical order, or waive with //waspvet:floatorder <reason>", types.ExprString(e)),
		})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pass.Info.TypeOf(lhs)) && !declaredWithin(pass, rootIdent(lhs), lit.Pos(), lit.End()) {
						hit(n.Pos(), lhs)
					}
				}
			}
		case *ast.IncDecStmt:
			if isFloat(pass.Info.TypeOf(n.X)) && !declaredWithin(pass, rootIdent(n.X), lit.Pos(), lit.End()) {
				hit(n.Pos(), n.X)
			}
		}
		return true
	})
	return diags
}
