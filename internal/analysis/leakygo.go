package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "leakygo",
		Doc: "flags `go` statements with no visible stop path: the simulator " +
			"core is single-threaded by design, and any goroutine must select " +
			"on a stop/done/quit channel or ctx.Done() so Close() can reap it " +
			"deterministically",
		Run: runLeakygo,
	})
}

func runLeakygo(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, isLit := g.Call.Fun.(*ast.FuncLit)
			msg := ""
			switch {
			case !isLit:
				msg = "goroutine launches an opaque function; inline a func literal with a " +
					"stop-channel select, or waive with //waspvet:leakygo <reason>"
			case !hasStopPath(lit.Body):
				msg = "goroutine has no visible stop path (no receive from a stop/done/quit " +
					"channel or ctx.Done()); it cannot be reaped by Close — " +
					"waive with //waspvet:leakygo <reason> if it provably terminates"
			}
			if msg != "" {
				diags = append(diags, Diagnostic{Pos: g.Pos(), Check: "leakygo", Message: msg})
			}
			return true
		})
	}
	return diags
}

// stopNames are identifier fragments that mark a shutdown signal.
var stopNames = []string{"stop", "done", "quit", "close", "ctx", "cancel"}

// hasStopPath reports whether a goroutine body visibly consumes a
// shutdown signal: a receive (plain, select-case, or range) from a
// channel whose expression mentions a stop-ish name.
func hasStopPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && stopish(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if stopish(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func stopish(e ast.Expr) bool {
	s := strings.ToLower(types.ExprString(e))
	for _, name := range stopNames {
		if strings.Contains(s, name) {
			return true
		}
	}
	return false
}
