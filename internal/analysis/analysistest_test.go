package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each check has a package under testdata/src/<check>
// whose files carry `// want "regexp"` comments on the lines where a
// diagnostic must appear. The harness runs that single analyzer (plus
// waiver parsing, via Apply) over the fixture package and requires an
// exact match: every want is hit, every diagnostic is wanted. Waived
// false positives therefore simply carry no want comment — if the waiver
// stopped working, the stray diagnostic fails the test.

// wantRE finds the want clause; quotedRE then pulls each quoted pattern
// out of it, so one comment can expect several diagnostics on its line:
// `// want "first" "second"`.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
	quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var exps []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, q[1], err)
					}
					exps = append(exps, &expectation{file: path, line: line, re: pat})
				}
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
		f.Close()
	}
	return exps
}

func runFixture(t *testing.T, check string) {
	t.Helper()
	a, ok := Lookup(check)
	if !ok {
		t.Fatalf("no analyzer registered as %q", check)
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", check)
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	exps := parseExpectations(t, dir)
	if len(exps) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	pass := pkg.Pass()
	pass.Graph = BuildCallGraph([]*Pass{pass})
	diags := Apply(pass, []*Analyzer{a})
	matchExpectations(t, pkg, diags, exps)
}

// matchExpectations enforces the two-way exact match: every diagnostic is
// wanted, every want is hit.
func matchExpectations(t *testing.T, pkg *Package, diags []Diagnostic, exps []*expectation) {
	t.Helper()
	for _, d := range diags {
		p := d.Position(pkg.Fset)
		matched := false
		for _, exp := range exps {
			if sameFile(exp.file, p.Filename) && exp.line == p.Line && exp.re.MatchString(d.Message) {
				exp.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", p.Filename, p.Line, d.Check, d.Message)
		}
	}
	for _, exp := range exps {
		if !exp.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", exp.file, exp.line, exp.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Base(a) == filepath.Base(b)
	}
	return aa == bb
}

func TestWallclockFixture(t *testing.T)  { runFixture(t, "wallclock") }
func TestGlobalrandFixture(t *testing.T) { runFixture(t, "globalrand") }
func TestMaprangeFixture(t *testing.T)   { runFixture(t, "maprange") }
func TestLocksafeFixture(t *testing.T)   { runFixture(t, "locksafe") }
func TestLeakygoFixture(t *testing.T)    { runFixture(t, "leakygo") }
func TestGenbumpFixture(t *testing.T)    { runFixture(t, "genbump") }
func TestHotallocFixture(t *testing.T)   { runFixture(t, "hotalloc") }
func TestFloatorderFixture(t *testing.T) { runFixture(t, "floatorder") }

// The interproc fixture seeds the laundering pattern v1 misses: time.Now
// and rand.Intn reached through helper layers, never called at the
// reporting site. Both call-graph-upgraded checks run over it.
func TestInterprocFixture(t *testing.T) {
	runFixtureDir(t, "interproc", []string{"wallclock", "globalrand"})
}

// Generic functions and instantiated types must flow through the loader
// and the call graph — the wallclock hazard inside a generic function is
// found through both implicit and explicit instantiations.
func TestGenericsFixture(t *testing.T) {
	runFixtureDir(t, "generics", []string{"wallclock"})
}

// The call graph must hold nodes for generic declarations (origin-
// normalized) rather than panicking on or silently skipping them.
func TestCallGraphGenerics(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", "generics"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Info == nil {
		t.Fatal("generics fixture type-checking failed entirely")
	}
	pass := pkg.Pass()
	g := BuildCallGraph([]*Pass{pass})
	fns := map[string]*types.Func{}
	for _, obj := range pass.Info.Defs {
		if fn, ok := obj.(*types.Func); ok {
			fns[fn.Name()] = fn
		}
	}
	for _, name := range []string{"mapOver", "stamped", "first", "useInstantiations"} {
		fn, ok := fns[name]
		if !ok {
			t.Fatalf("no *types.Func def for %s", name)
		}
		if g.Node(fn) == nil {
			t.Errorf("call graph has no node for generic function %s", name)
		}
	}
	if chain, ok := g.Reaches(fns["stamped"], "wallclock"); !ok {
		t.Error("Reaches(stamped, wallclock) = false, want true")
	} else if !strings.Contains(chain, "time.Now") {
		t.Errorf("chain %q does not name time.Now", chain)
	}
	if _, ok := g.Reaches(fns["mapOver"], "wallclock"); ok {
		t.Error("Reaches(mapOver, wallclock) = true, want false")
	}
	if chain, ok := g.Reaches(fns["useInstantiations"], "wallclock"); !ok {
		t.Error("Reaches(useInstantiations, wallclock) = false, want true (through an instantiation)")
	} else if !strings.Contains(chain, "stamped") {
		t.Errorf("chain %q does not pass through stamped", chain)
	}
}

// runFixtureDir is runFixture for a named testdata dir checked by
// several analyzers at once.
func runFixtureDir(t *testing.T, name string, checks []string) {
	t.Helper()
	var as []*Analyzer
	for _, c := range checks {
		a, ok := Lookup(c)
		if !ok {
			t.Fatalf("no analyzer registered as %q", c)
		}
		as = append(as, a)
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	exps := parseExpectations(t, dir)
	if len(exps) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	pass := pkg.Pass()
	pass.Graph = BuildCallGraph([]*Pass{pass})
	diags := Apply(pass, as)
	matchExpectations(t, pkg, diags, exps)
}

// Waiver syntax errors are diagnostics in their own right: a bare tag, an
// unknown tag, and a reason-less waiver must all be reported.
func TestWaiverSyntax(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", "waiversyntax"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Apply(pkg.Pass(), All())
	var got []string
	for _, d := range diags {
		if d.Check != "waiver" {
			t.Errorf("unexpected non-waiver diagnostic: %s", d.Message)
			continue
		}
		got = append(got, d.Message)
	}
	wants := []string{"unknown check", "requires a reason"}
	if len(got) != len(wants) {
		t.Fatalf("got %d waiver diagnostics %v, want %d", len(got), got, len(wants))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, got[i], w)
		}
	}
}

// A waiver with no tag at all is reported too. gofmt rewrites the bare
// `//waspvet:` form in checked-in files, so this case parses from a
// string.
func TestWaiverMissingTag(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\n//waspvet:\nvar x = 1\n"
	f, err := parser.ParseFile(fset, "bare.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}, PkgPath: "fixture/bare"}
	diags := Apply(pass, All())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing check tag") {
		t.Fatalf("got %v, want one missing-check-tag diagnostic", diags)
	}
}

// The suite registry must hold exactly the documented eight checks.
func TestRegisteredAnalyzers(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	want := []string{"floatorder", "genbump", "globalrand", "hotalloc", "leakygo", "locksafe", "maprange", "wallclock"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("registered analyzers = %v, want %v", names, want)
	}
}
