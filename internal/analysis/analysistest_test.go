package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each check has a package under testdata/src/<check>
// whose files carry `// want "regexp"` comments on the lines where a
// diagnostic must appear. The harness runs that single analyzer (plus
// waiver parsing, via Apply) over the fixture package and requires an
// exact match: every want is hit, every diagnostic is wanted. Waived
// false positives therefore simply carry no want comment — if the waiver
// stopped working, the stray diagnostic fails the test.

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var exps []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				pat, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
				}
				exps = append(exps, &expectation{file: path, line: line, re: pat})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning fixture: %v", err)
		}
		f.Close()
	}
	return exps
}

func runFixture(t *testing.T, check string) {
	t.Helper()
	a, ok := Lookup(check)
	if !ok {
		t.Fatalf("no analyzer registered as %q", check)
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", check)
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture package: %v", err)
	}
	exps := parseExpectations(t, dir)
	if len(exps) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	diags := Apply(pkg.Pass(), []*Analyzer{a})
	for _, d := range diags {
		p := d.Position(pkg.Fset)
		matched := false
		for _, exp := range exps {
			if sameFile(exp.file, p.Filename) && exp.line == p.Line && exp.re.MatchString(d.Message) {
				exp.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", p.Filename, p.Line, d.Check, d.Message)
		}
	}
	for _, exp := range exps {
		if !exp.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", exp.file, exp.line, exp.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Base(a) == filepath.Base(b)
	}
	return aa == bb
}

func TestWallclockFixture(t *testing.T)  { runFixture(t, "wallclock") }
func TestGlobalrandFixture(t *testing.T) { runFixture(t, "globalrand") }
func TestMaprangeFixture(t *testing.T)   { runFixture(t, "maprange") }
func TestLocksafeFixture(t *testing.T)   { runFixture(t, "locksafe") }
func TestLeakygoFixture(t *testing.T)    { runFixture(t, "leakygo") }

// Waiver syntax errors are diagnostics in their own right: a bare tag, an
// unknown tag, and a reason-less waiver must all be reported.
func TestWaiverSyntax(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "src", "waiversyntax"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Apply(pkg.Pass(), All())
	var got []string
	for _, d := range diags {
		if d.Check != "waiver" {
			t.Errorf("unexpected non-waiver diagnostic: %s", d.Message)
			continue
		}
		got = append(got, d.Message)
	}
	wants := []string{"unknown check", "requires a reason"}
	if len(got) != len(wants) {
		t.Fatalf("got %d waiver diagnostics %v, want %d", len(got), got, len(wants))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, got[i], w)
		}
	}
}

// A waiver with no tag at all is reported too. gofmt rewrites the bare
// `//waspvet:` form in checked-in files, so this case parses from a
// string.
func TestWaiverMissingTag(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\n//waspvet:\nvar x = 1\n"
	f, err := parser.ParseFile(fset, "bare.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}, PkgPath: "fixture/bare"}
	diags := Apply(pass, All())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing check tag") {
		t.Fatalf("got %v, want one missing-check-tag diagnostic", diags)
	}
}

// The suite registry must hold exactly the documented five checks.
func TestRegisteredAnalyzers(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	want := []string{"globalrand", "leakygo", "locksafe", "maprange", "wallclock"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("registered analyzers = %v, want %v", names, want)
	}
}
