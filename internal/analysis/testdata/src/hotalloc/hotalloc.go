// Fixture for the hotalloc check: allocation-inducing constructs inside
// //waspvet:hotpath functions are flagged; reuse idioms, waived sites and
// unannotated functions are not.
package hotalloc

import "fmt"

type ring struct {
	scratch []int
	n       int
	s       string
}

//waspvet:hotpath
func hotHelper(r *ring) int { return r.n }

func cold(r *ring) { r.scratch = nil }

//waspvet:hotpath
func vf(xs ...int) int { return len(xs) }

//waspvet:hotpath
func hotBad(r *ring, cb func() int, s2 string) {
	s := make([]int, 4) // want "make allocates"
	_ = s
	p := new(ring) // want "new allocates"
	_ = p
	m := map[string]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2} // want "slice literal allocates"
	_ = sl
	rp := &ring{} // want "composite literal escapes to the heap"
	_ = rp
	f := func() int { return 1 } // want "closure in hot path"
	_ = f
	r.s = r.s + s2  // want "string concatenation allocates"
	r.s += s2       // want "string \+= allocates"
	b := []byte(s2) // want "string/byte-slice conversion copies"
	_ = b
	_ = any(r.n) // want "conversion boxes a concrete value"
	var dst any
	dst = r.n // want "assignment boxes a concrete value"
	_ = dst
	go hotHelper(r)    // want "go statement in hot path"
	defer hotHelper(r) // want "defer in hot path"
	_ = cb()           // want "dynamic call"
	_ = vf(1, 2)       // want "variadic call packs its arguments"
	fmt.Println(s2)    // want "variadic call packs" "fmt.Println formats through reflection" "argument boxes a concrete value"
	cold(r)            // want "call to cold leaves the audited hot path"
}

//waspvet:hotpath
func hotGood(r *ring, out []int) []int {
	buf := r.scratch[:0]
	buf = append(buf, r.n) // reuse: rooted in a retained field
	r.scratch = buf
	out = append(out, r.n) // reuse: caller-supplied buffer
	_ = hotHelper(r)       // hot callee: audit continues
	//waspvet:hotalloc fixture: cold branch, runs once per topology change
	cold(r)
	return out
}

// notHot allocates freely — only annotated functions are audited.
func notHot() []int {
	return append([]int{}, make([]int, 8)...)
}
