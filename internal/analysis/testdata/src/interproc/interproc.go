// Fixture for the interprocedural (call-graph) layer: wall-clock and
// global-rand hazards laundered through helpers are reported at the
// laundering call sites with the offending chain — the pattern the v1
// direct-call checks miss. Waived hazard sites must not propagate.
package interproc

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func launder() int64 {
	return stamp() // want "call to stamp transitively reaches the wall clock"
}

func top() int64 {
	return launder() // want "call to launder transitively reaches the wall clock"
}

func waivedStamp() int64 {
	//waspvet:wallclock fixture: wall time logged only, never feeds the timeline
	return time.Now().UnixNano()
}

// usesWaived must stay silent: a waived hazard does not propagate.
func usesWaived() int64 { return waivedStamp() }

func roll() int {
	return rand.Intn(6) // want "rand.Intn draws from the global source"
}

func launderRoll() int {
	return roll() // want "call to roll transitively reaches the global rand source"
}

// seeded randomness resolves through an injected *rand.Rand — no hazard
// at any depth.
func seeded(r *rand.Rand) int { return r.Intn(6) }

func usesSeeded(r *rand.Rand) int { return seeded(r) }

// mutual recursion must terminate, and the hazard inside the cycle is
// still found from outside it.
func pingpongA(n int) int64 {
	if n <= 0 {
		return stamp() // want "call to stamp transitively reaches the wall clock"
	}
	return pingpongB(n - 1) // want "call to pingpongB transitively reaches the wall clock"
}

func pingpongB(n int) int64 {
	return pingpongA(n) // want "call to pingpongA transitively reaches the wall clock"
}
