// Fixture for the floatorder check: float reductions over channels,
// unordered producer results, and `go`-closure accumulation are flagged;
// ordered producers, int reductions, plain slices and waived sites pass.
package floatorder

//waspvet:ordered fixture: results sorted ascending by construction
func ordered() []float64 { return []float64{1, 2} }

func unordered() []float64 { return []float64{1, 2} }

func sumOrdered() float64 {
	var t float64
	for _, v := range ordered() {
		t += v
	}
	return t
}

func sumUnordered() float64 {
	var t float64
	for _, v := range unordered() { // want "results of unordered, which is not marked"
		t += v
	}
	return t
}

func sumChased() float64 {
	vs := unordered()
	var t float64
	for _, v := range vs { // want "results of unordered, which is not marked"
		t += v
	}
	return t
}

func sumChan(ch chan float64) float64 {
	var t float64
	for v := range ch { // want "floating-point reduction into t over a channel"
		t += v
	}
	return t
}

func sumWaived() float64 {
	var t float64
	//waspvet:floatorder fixture: summands are exact powers of two
	for _, v := range unordered() {
		t += v
	}
	return t
}

// countUnordered reduces ints: exact in any order, no diagnostic.
func countUnordered() int {
	n := 0
	for range unordered() {
		n++
	}
	return n
}

// localSlice ranges a literal-backed local: canonically ordered.
func localSlice() float64 {
	xs := []float64{1, 2}
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

// localAccum accumulates into a loop-local: per-iteration state.
func localAccum(ch chan float64) float64 {
	last := 0.0
	for v := range ch {
		x := 0.0
		x += v
		last = x
	}
	return last
}

func goAccum(done chan struct{}) float64 {
	var t float64
	go func() {
		t += 1 // want "goroutine accumulates floating-point into captured variable t"
		done <- struct{}{}
	}()
	<-done
	return t
}
