// Fixture for call-graph generics coverage: generic functions, methods on
// instantiated types, and explicitly/implicitly instantiated calls must
// build graph nodes and edges (normalized to the origin declaration) —
// not panic, and not silently drop the hazard.
package generics

import "time"

type pair[T any] struct{ a, b T }

func (p pair[T]) first() T { return p.a }

func mapOver[T any](xs []T, f func(T) T) []T {
	out := make([]T, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

func stamped[T any](x T) T {
	_ = time.Now() // want "time.Now reads the wall clock"
	return x
}

func useInstantiations() {
	p := pair[int]{a: 1, b: 2}
	_ = p.first()
	_ = mapOver([]int{1, 2}, func(x int) int { return x })
	_ = stamped(3)           // want "call to stamped transitively reaches the wall clock"
	_ = stamped[string]("x") // want "call to stamped transitively reaches the wall clock"
}
