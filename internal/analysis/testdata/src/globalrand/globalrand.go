// Fixture for the globalrand check: package-level math/rand calls are
// flagged; seeded constructors and calls through an injected *rand.Rand
// are not.
package globalrand

import "math/rand"

func badInt() int {
	return rand.Intn(10) // want "rand.Intn draws from the global source"
}

func badFloat() float64 {
	return rand.Float64() // want "rand.Float64 draws from the global source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the global source"
}

// A deliberate global draw carries a waiver; the check must stay silent.
func waived() int {
	//waspvet:globalrand fixture: non-replayed jitter, never observable in output
	return rand.Intn(10)
}

// The sanctioned pattern: a seeded source threaded explicitly.
func fine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
