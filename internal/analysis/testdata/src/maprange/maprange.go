// Fixture for the maprange check: order-sensitive map-range bodies are
// flagged; per-key writes, loop-local state, and waived ranges are not.
package maprange

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to keys declared outside the loop"
		keys = append(keys, k)
	}
	return keys
}

func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates floating-point into sum"
		sum += v
	}
	return sum
}

func badSend(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

type holder struct{ last string }

func badFieldWrite(m map[string]int, h *holder) {
	for k := range m { // want "writes field h.last of a value declared outside the loop"
		h.last = k
	}
}

// Integer accumulation is exactly commutative: no diagnostic.
func fineIntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Per-key map writes touch each entry once: no diagnostic.
func fineNormalize(m map[string]float64, n float64) {
	for k := range m {
		m[k] /= n
	}
}

// Loop-local state is per-iteration: no diagnostic.
func fineLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var widened []int
		widened = append(widened, vs...)
		total += len(widened)
	}
	return total
}

// A sanctioned helper collects keys for sorting under a waiver.
func waivedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//waspvet:unordered fixture: keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
