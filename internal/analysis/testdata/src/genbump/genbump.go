// Fixture for the genbump check: writes of //waspvet:guardedby fields
// must bump every named guard in the same function or a transitive
// callee; waived writes and malformed annotations are covered too.
package genbump

type cache struct {
	gen   int
	epoch int
	//waspvet:guardedby gen
	items map[string]int
	//waspvet:guardedby gen,epoch
	list []int
	//waspvet:guardedby missing
	bad int // want "names unknown guard field \"missing\""
}

// other demonstrates the Type.field guard form: its payload is guarded
// by cache's generation counter.
type other struct {
	//waspvet:guardedby cache.gen
	payload int
}

// good pairs the write with a direct bump.
func good(c *cache) {
	c.items = map[string]int{"a": 1}
	c.gen++
}

// goodViaCallee bumps through a helper: the pairing is interprocedural.
func goodViaCallee(c *cache) {
	c.items["k"] = 1
	bump(c)
}

func bump(c *cache) { c.gen++ }

// stale forgets the bump entirely — the motivating bug class.
func stale(c *cache) {
	c.items["k"] = 2 // want "write to guarded field items without bumping gen"
}

// partial bumps one guard of two.
func partial(c *cache) {
	c.list = append(c.list, 1) // want "write to guarded field list without bumping epoch"
	c.gen++
}

// deletes mutate the field in place just like assignments.
func deletes(c *cache) {
	delete(c.items, "k") // want "write to guarded field items without bumping gen"
}

// crossType writes other.payload, whose guard lives on cache.
func crossType(o *other) {
	o.payload = 7 // want "write to guarded field payload without bumping cache.gen"
}

func crossTypeGood(o *other, c *cache) {
	o.payload = 8
	c.gen++
}

// waived documents a deliberately unguarded write.
func waived(c *cache) {
	//waspvet:genbump fixture: cache rebuilt wholesale immediately after
	c.items = nil
}
