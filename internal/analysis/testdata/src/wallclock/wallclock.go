// Fixture for the wallclock check: wall-clock reads are flagged, waived
// sites and pure duration arithmetic are not.
package wallclock

import "time"

func readsClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func sleeps() {
	time.Sleep(time.Second) // want "time.Sleep reads the wall clock"
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

// A deliberate wall-clock site carries a waiver with a reason; the check
// must stay silent here.
func waived() time.Time {
	//waspvet:wallclock fixture: progress logging only, never feeds the timeline
	return time.Now()
}

func waivedTrailing() time.Time {
	return time.Now() //waspvet:wallclock fixture: trailing-comment form
}

// Pure duration arithmetic never touches the clock.
func fine() time.Duration {
	return 3 * time.Second
}
