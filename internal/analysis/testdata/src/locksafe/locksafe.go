// Fixture for the locksafe check: by-value lock copies and unmatched
// Lock calls are flagged; pointer sharing and defer-paired locks are not.
package locksafe

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func badParam(mu sync.Mutex) { // want "parameter copies sync.Mutex by value"
	mu.Lock()
	defer mu.Unlock()
}

func badCopy(g *guarded) int {
	snapshot := *g // want "assignment copies .*guarded by value"
	return snapshot.n
}

func badRange(gs map[string]guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies .*guarded by value"
		total += g.n
	}
	return total
}

func badLeakedLock(g *guarded) int {
	g.mu.Lock() // want "g.mu.Lock\(\) has no matching unlock in badLeakedLock"
	return g.n
}

// Copying before the lock is ever used is legal Go but still a latent
// bug; a reviewed site carries a waiver and must stay silent.
func waivedCopy(g *guarded) int {
	//waspvet:locksafe fixture: value is a pre-use snapshot, lock never shared
	c := *g
	return c.n
}

// The sanctioned patterns: pointers and defer-paired locking.
func fine(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}
