// Fixture for the leakygo check: goroutines without a visible stop path
// are flagged; stop-channel consumers and waived launches are not.
package leakygo

func badForever(work chan int, out chan int) {
	go func() { // want "goroutine has no visible stop path"
		for w := range work {
			out <- w * 2
		}
	}()
}

func badOpaque(f func()) {
	go f() // want "goroutine launches an opaque function"
}

// A goroutine that provably terminates carries a waiver.
func waivedOneShot(out chan int) {
	//waspvet:leakygo fixture: sends once into a buffered channel and returns
	go func() {
		out <- 1
	}()
}

// The sanctioned pattern: select on a stop channel.
func fine(work chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-work:
			case <-stop:
				return
			}
		}
	}()
}

// Ranging over a done-ish channel also counts as a stop path.
func fineRange(done chan struct{}) {
	go func() {
		for range done {
		}
	}()
}
