// Fixture for waiver syntax validation: an unknown tag and a reason-less
// waiver each produce a "waiver" diagnostic, while a well-formed waiver
// does not. (The tag-less form `//waspvet:` is gofmt-unstable, so it is
// exercised from an in-memory source string in the test instead.)
package waiversyntax

//waspvet:nosuchcheck because reasons
var b = 2

//waspvet:wallclock
var c = 3

//waspvet:wallclock a well-formed waiver with a reason is accepted silently
var d = 4
