package analysis

import (
	"encoding/json"
	"testing"
)

// The SARIF log must survive a marshal/unmarshal round trip with the
// fields the minimal profile requires intact: schema/version, one rule
// per registered analyzer, and each result's rule id, message and
// physical location.
func TestSARIFRoundTrip(t *testing.T) {
	diags := []SARIFDiag{
		{File: "internal/engine/engine.go", Line: 42, Col: 7, Check: "hotalloc", Message: "make allocates"},
		{File: "internal/netsim/netsim.go", Line: 9, Col: 1, Check: "genbump", Message: "write to guarded field flows without bumping dirty"},
	}
	raw, err := json.MarshalIndent(SARIFReport(All(), diags), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var got SARIFLog
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if got.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", got.Version)
	}
	if got.Schema == "" {
		t.Error("$schema dropped in round trip")
	}
	if len(got.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(got.Runs))
	}
	run := got.Runs[0]
	if run.Tool.Driver.Name != "waspvet" {
		t.Errorf("driver name = %q, want waspvet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Fatalf("rule table has %d entries, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(All()))
	}
	for i, a := range All() {
		r := run.Tool.Driver.Rules[i]
		if r.ID != a.Name {
			t.Errorf("rule %d id = %q, want %q", i, r.ID, a.Name)
		}
		if r.ShortDescription.Text != a.Doc {
			t.Errorf("rule %q description = %q, want the analyzer doc", r.ID, r.ShortDescription.Text)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for i, d := range diags {
		res := run.Results[i]
		if res.RuleID != d.Check || res.Level != "error" || res.Message.Text != d.Message {
			t.Errorf("result %d = %+v, want rule %q level error message %q", i, res, d.Check, d.Message)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != d.File || loc.Region.StartLine != d.Line || loc.Region.StartColumn != d.Col {
			t.Errorf("result %d location = %+v, want %s:%d:%d", i, loc, d.File, d.Line, d.Col)
		}
	}
}

// An empty diagnostic set still emits a well-formed log with `results`
// present as an empty array — CI uploads it unconditionally.
func TestSARIFEmpty(t *testing.T) {
	raw, err := json.Marshal(SARIFReport(All(), nil))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	runs := m["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"]
	if !ok || results == nil {
		t.Fatalf("results key missing or null in %s", raw)
	}
}
