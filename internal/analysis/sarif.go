package analysis

// SARIF 2.1.0 minimal-profile output, so CI can upload waspvet findings
// as a code-scanning artifact. Only the fields the minimal profile
// requires (plus rule metadata) are emitted; everything marshals with
// encoding/json — no external SARIF dependency.

// SARIFDiag is one resolved diagnostic ready for SARIF encoding (file
// already relativized by the caller).
type SARIFDiag struct {
	File    string
	Line    int
	Col     int
	Check   string
	Message string
}

// SARIFLog is the document root.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SARIFMessage    `json:"message"`
	Locations []SARIFLocation `json:"locations"`
}

type SARIFMessage struct {
	Text string `json:"text"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFReport assembles a one-run SARIF log: one rule per analyzer (so
// the rule table is stable regardless of which checks fired) and one
// error-level result per diagnostic. Diagnostics from non-analyzer
// sources (waiver syntax, annotation errors) reuse their Check name as
// the rule id; ids absent from the rule table are permitted by the
// minimal profile.
func SARIFReport(analyzers []*Analyzer, diags []SARIFDiag) *SARIFLog {
	rules := make([]SARIFRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, SARIFRule{
			ID:               a.Name,
			ShortDescription: SARIFMessage{Text: a.Doc},
		})
	}
	results := make([]SARIFResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, SARIFResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: SARIFMessage{Text: d.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: d.File},
					Region:           SARIFRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	return &SARIFLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "waspvet", Rules: rules}},
			Results: results,
		}},
	}
}
