package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "genbump",
		Doc: "enforces cache-invalidation contracts: every write of a struct " +
			"field annotated //waspvet:guardedby <genField> must be paired, in " +
			"the same function or a transitive callee, with a write of each " +
			"guard field (generation counter, epoch, or dirty flag) — so a " +
			"mutator can never leave a derived columnar cache stale; waive a " +
			"deliberately unguarded write with //waspvet:genbump <reason>",
		Run: runGenbump,
	})
}

// runGenbump reports guarded-field writes whose containing function does
// not (transitively) bump every guard, plus malformed guardedby
// annotations. It is flow-insensitive in both directions: the bump may
// precede or follow the write, and a bump on any instance of the struct
// satisfies the pairing (receiver identity is not tracked) — the check
// catches the "forgot to invalidate at all" class, not reordering bugs.
func runGenbump(pass *Pass) []Diagnostic {
	g := pass.Graph
	if g == nil || pass.Info == nil {
		return nil
	}
	diags := append([]Diagnostic(nil), g.annotErrs[pass.PkgPath]...)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := g.Node(fn)
			if node == nil {
				continue
			}
			for _, w := range node.writes {
				spec := g.guarded[w.obj]
				if spec == nil {
					continue
				}
				var missing []string
				for i, guard := range spec.guards {
					if guard == w.obj {
						continue // self-guarding annotation; nothing to pair
					}
					if !g.WritesTransitively(fn, guard) {
						missing = append(missing, spec.names[i])
					}
				}
				if len(missing) == 0 {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:   w.pos,
					Check: "genbump",
					Message: fmt.Sprintf("write to guarded field %s without bumping %s "+
						"(//waspvet:guardedby contract): a derived cache would go stale; bump the "+
						"guard here or in a callee, or waive with //waspvet:genbump <reason>",
						w.obj.Name(), strings.Join(missing, ", ")),
				})
			}
		}
	}
	return diags
}
