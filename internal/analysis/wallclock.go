package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// wallclockFuncs are the package time functions that read or depend on
// the wall clock. Pure value constructors (time.Duration arithmetic,
// time.Unix on explicit inputs) are fine — the hazard is clock *reads*
// and wall-clock *scheduling*, which make two same-seed runs diverge.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "NewTicker": true,
	"NewTimer": true, "After": true, "AfterFunc": true,
}

// wallclockExemptSuffixes are package paths allowed to touch the wall
// clock without a waiver: the virtual clock itself.
var wallclockExemptSuffixes = []string{"internal/vclock"}

func init() {
	Register(&Analyzer{
		Name: "wallclock",
		Doc: "flags wall-clock reads (time.Now/Since/Sleep/Ticker/...) outside " +
			"internal/vclock, both direct calls and calls to module functions " +
			"that transitively reach one (call-graph closure); simulator code " +
			"must use the virtual clock, and deliberate wall-clock sites " +
			"(progress logging) carry a //waspvet:wallclock <reason> waiver",
		Run: runWallclock,
	})
}

func runWallclock(pass *Pass) []Diagnostic {
	for _, suffix := range wallclockExemptSuffixes {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			return nil
		}
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if d, ok := transitiveHazard(pass, call, hazardWallclock, "the wall clock"); ok {
				diags = append(diags, d)
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			if !importedPkg(pass, file, ident, "time") {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:   call.Pos(),
				Check: "wallclock",
				Message: fmt.Sprintf("time.%s reads the wall clock; use the virtual clock (internal/vclock) "+
					"or waive with //waspvet:wallclock <reason>", sel.Sel.Name),
			})
			return true
		})
	}
	return diags
}

// transitiveHazard upgrades a direct-call check to "transitively
// reaches": a call to a module function whose static call-graph closure
// contains a non-waived hazard of the given tag is itself a diagnostic,
// reported at the laundering call site with the offending chain.
func transitiveHazard(pass *Pass, call *ast.CallExpr, tag, what string) (Diagnostic, bool) {
	if pass.Graph == nil || pass.Info == nil {
		return Diagnostic{}, false
	}
	callee := calleeOf(pass.Info, call)
	if callee == nil || pass.Graph.Node(callee) == nil {
		return Diagnostic{}, false
	}
	chain, ok := pass.Graph.Reaches(callee, tag)
	if !ok {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:   call.Pos(),
		Check: tag,
		Message: fmt.Sprintf("call to %s transitively reaches %s (%s); plumb the determinism-safe "+
			"substitute through, or waive with //waspvet:%s <reason>", callee.Name(), what, chain, tag),
	}, true
}
