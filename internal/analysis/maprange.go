package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name:   "maprange",
		Waiver: "unordered",
		Doc: "flags `for range` over a map whose body has an order-sensitive " +
			"effect (appends to an outer slice, accumulates floats, writes " +
			"fields/slice elements of outer values, sends on a channel, or " +
			"calls statement-level mutators on engine/adapt/state/obs/netsim " +
			"values); iterate detutil.SortedKeys instead, or waive a genuinely " +
			"order-insensitive body with //waspvet:unordered <reason>",
		Run: runMaprange,
	})
}

// maprangeMutatorPkgs are package-path fragments whose types hold
// simulator state or write the timeline/exporters: a statement-level
// method call on one of their values inside a map range is treated as
// order-sensitive.
var maprangeMutatorPkgs = []string{
	"internal/engine", "internal/adapt", "internal/state",
	"internal/obs", "internal/netsim",
}

func runMaprange(pass *Pass) []Diagnostic {
	if pass.Info == nil {
		return nil // cannot tell maps from slices without types
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if hazard := mapRangeHazard(pass, rng); hazard != "" {
				diags = append(diags, Diagnostic{
					Pos:   rng.For,
					Check: "maprange",
					Message: fmt.Sprintf("map iteration order is non-deterministic and the body %s; "+
						"range over detutil.SortedKeys(%s) or waive with //waspvet:unordered <reason>",
						hazard, types.ExprString(rng.X)),
				})
			}
			return true
		})
	}
	return diags
}

// mapRangeHazard scans a map-range body for the first order-sensitive
// effect and describes it ("" = benign). Effects on variables declared
// inside the loop are local per-iteration state and don't count.
func mapRangeHazard(pass *Pass, rng *ast.RangeStmt) string {
	local := func(e ast.Expr) bool { return declaredWithin(pass, rootIdent(e), rng.Pos(), rng.End()) }
	hazard := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// append to a variable declared outside the loop; a fresh
			// slice expression (append([]T(nil), ...)) is per-iteration
			// state and safe.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 &&
				rootIdent(n.Args[0]) != nil && !local(n.Args[0]) {
				hazard = fmt.Sprintf("appends to %s declared outside the loop", types.ExprString(n.Args[0]))
			}
		case *ast.AssignStmt:
			hazard = assignHazard(pass, rng, n, local)
		case *ast.IncDecStmt:
			// x++ / x-- on floats accumulates rounding in visit order.
			if isFloat(pass.Info.TypeOf(n.X)) && !local(n.X) {
				hazard = fmt.Sprintf("accumulates floating-point into %s", types.ExprString(n.X))
			}
		case *ast.SendStmt:
			hazard = "sends on a channel (receiver observes map order)"
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				hazard = mutatorCallHazard(pass, call, local)
			}
		}
		return hazard == ""
	})
	return hazard
}

// assignHazard classifies one assignment inside a map-range body.
func assignHazard(pass *Pass, rng *ast.RangeStmt, n *ast.AssignStmt, local func(ast.Expr) bool) string {
	for _, lhs := range n.Lhs {
		if local(lhs) {
			continue
		}
		// m[k] op= v, with k the range key over m's entries, touches each
		// entry exactly once — order-independent even for floats.
		perKey := isPerKeyWrite(pass, rng, lhs)
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Compound accumulation: commutative (exact) for ints, but
			// float rounding depends on visit order.
			if isFloat(pass.Info.TypeOf(lhs)) && !perKey {
				return fmt.Sprintf("accumulates floating-point into %s", types.ExprString(lhs))
			}
		}
		if perKey {
			continue
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			// Field write on an outer value: last-write-wins depends on
			// iteration order.
			return fmt.Sprintf("writes field %s of a value declared outside the loop", types.ExprString(l))
		case *ast.IndexExpr:
			// Plain map index writes settle to the same final state in
			// any visit order; slice/array element writes race on
			// position. (Float accumulation into a colliding map key is
			// caught by the compound-assign branch above.)
			bt := pass.Info.TypeOf(l.X)
			if bt != nil {
				if _, isMap := bt.Underlying().(*types.Map); !isMap {
					return fmt.Sprintf("writes element %s of a value declared outside the loop", types.ExprString(l))
				}
			}
		}
	}
	return ""
}

// isPerKeyWrite reports whether lhs is an index write into a map using
// the loop's own range-key variable — each iteration touches a distinct
// entry, so visit order cannot matter.
func isPerKeyWrite(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	bt := pass.Info.TypeOf(idx.X)
	if bt == nil {
		return false
	}
	if _, isMap := bt.Underlying().(*types.Map); !isMap {
		return false
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return false
	}
	idxIdent, ok := idx.Index.(*ast.Ident)
	if !ok {
		return false
	}
	ko, io := pass.Info.ObjectOf(keyIdent), pass.Info.ObjectOf(idxIdent)
	return ko != nil && ko == io
}

// mutatorCallHazard flags statement-level method calls (result
// discarded, so called for effect) on values of simulator-state
// packages declared outside the loop.
func mutatorCallHazard(pass *Pass, call *ast.CallExpr, local func(ast.Expr) bool) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || local(sel.X) {
		return ""
	}
	rt := pass.Info.TypeOf(sel.X)
	if rt == nil {
		return ""
	}
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	path := named.Obj().Pkg().Path()
	for _, frag := range maprangeMutatorPkgs {
		if strings.Contains(path, frag) {
			return fmt.Sprintf("calls %s.%s on %s state (order-sensitive effect)",
				types.ExprString(sel.X), sel.Sel.Name, frag[strings.LastIndex(frag, "/")+1:])
		}
	}
	return ""
}

// rootIdent unwraps an lvalue/expression to its base identifier
// (s.a[i].b -> s); nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id's declaration lies inside [pos, end]
// — i.e. it is loop-local state. A nil or unresolved identifier counts
// as outer (conservative: flag it).
func declaredWithin(pass *Pass, id *ast.Ident, pos, end token.Pos) bool {
	if id == nil {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= pos && obj.Pos() <= end
}

// isFloat reports whether t's underlying type is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
