package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The interprocedural layer: a conservative static call graph over the
// offline-loaded packages, built from go/types alone (no x/tools). It is
// what upgrades wallclock and globalrand from "direct call" checks to
// "transitively reaches" checks, and what gives genbump and hotalloc
// their "in this function or a transitive callee" semantics.
//
// Soundness stance (see DESIGN.md §14): the graph resolves static calls
// only — named functions, methods with a statically known receiver type,
// and generic instantiations (normalized to their origin declaration).
// Dynamic dispatch (interface methods, stored func values) produces no
// edge; hotalloc compensates by flagging dynamic calls inside hot paths,
// and the reachability checks are therefore under-approximate across
// such calls, never wrong about the edges they do report. Function
// literals are attributed to their enclosing declaration: a call made
// inside a closure defined in F counts as a call from F, which
// over-approximates (the closure may never run) — the conservative
// direction for every check built on the graph.

// Annotation tags understood by the suite. Unlike waivers they do not
// suppress diagnostics; they declare contracts the v2 checks enforce:
//
//	//waspvet:hotpath
//	    on a function declaration: the function is an audited allocation-
//	    free hot path; hotalloc flags allocation-inducing constructs and
//	    escapes into unaudited code inside it.
//	//waspvet:guardedby <field>[,<field>...]
//	    on a struct field: every write of the field must be paired, in
//	    the same function or a transitive callee, with a write of each
//	    named guard field (a generation counter, epoch, or dirty flag).
//	    Guards name a sibling field, or Type.field for a field of
//	    another struct in the same package.
//	//waspvet:ordered <reason>
//	    on a function declaration: the function's returned collection is
//	    in canonical (deterministic, seed-stable) order; floatorder
//	    accepts reductions over its results.
var annotationTags = map[string]bool{
	"hotpath":   true,
	"guardedby": true,
	"ordered":   true,
}

// hazardTags are the reachability families the graph tracks: direct call
// sites recorded per function, minus waived ones, closed transitively by
// Reaches.
const (
	hazardWallclock  = "wallclock"
	hazardGlobalrand = "globalrand"
)

// A hazard is one direct hazardous call site inside a function.
type hazard struct {
	pos  token.Pos
	desc string // e.g. "time.Now"
}

// fieldWrite is one write of a struct field inside a function body:
// assignment, IncDec, or a delete/clear builtin on the field.
type fieldWrite struct {
	obj *types.Var
	pos token.Pos
}

// CGNode is one function in the call graph.
type CGNode struct {
	Obj     *types.Func
	PkgPath string
	// Hot and Ordered mirror //waspvet:hotpath and //waspvet:ordered
	// annotations on the declaration.
	Hot     bool
	Ordered bool

	callees []*types.Func
	hazards map[string][]hazard
	writes  []fieldWrite
}

// guardSpec records one //waspvet:guardedby annotation: the guarded
// field and its resolved guard fields.
type guardSpec struct {
	field  *types.Var
	guards []*types.Var
	names  []string // guard names as written, for diagnostics
}

// CallGraph is the module-wide (or fixture-wide) interprocedural index.
type CallGraph struct {
	nodes   map[*types.Func]*CGNode
	guarded map[*types.Var]*guardSpec
	// annotErrs collects malformed annotations (unresolvable guard
	// fields), keyed by package path; genbump surfaces them.
	annotErrs map[string][]Diagnostic

	reachMemo  map[*types.Func]map[string]string
	writesMemo map[*types.Func]map[*types.Var]bool
}

// BuildCallGraph constructs the interprocedural index over the given
// passes. Packages without type information contribute nothing (their
// functions simply have no node — every graph consumer degrades to the
// intraprocedural behaviour there).
func BuildCallGraph(passes []*Pass) *CallGraph {
	g := &CallGraph{
		nodes:      map[*types.Func]*CGNode{},
		guarded:    map[*types.Var]*guardSpec{},
		annotErrs:  map[string][]Diagnostic{},
		reachMemo:  map[*types.Func]map[string]string{},
		writesMemo: map[*types.Func]map[*types.Var]bool{},
	}
	for _, pass := range passes {
		if pass.Info == nil {
			continue
		}
		g.addPackage(pass)
	}
	return g
}

// Node returns the graph node for a function (normalized to its generic
// origin), or nil when the function is outside the loaded set.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[origin(fn)]
}

// addPackage indexes one package: declared functions, their static call
// edges, direct hazards (minus waived sites), field writes, function
// annotations, and guardedby field annotations.
func (g *CallGraph) addPackage(pass *Pass) {
	waived := waivedLines(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CGNode{
				Obj:     fn,
				PkgPath: pass.PkgPath,
				Hot:     hasAnnotation(fd.Doc, "hotpath"),
				Ordered: hasAnnotation(fd.Doc, "ordered"),
				hazards: map[string][]hazard{},
			}
			g.nodes[fn] = node
			g.scanBody(pass, file, node, fd.Body, waived)
		}
	}
	g.collectGuarded(pass)
}

// scanBody walks one function body recording call edges, direct hazards
// and field writes. Function literals are attributed to the enclosing
// declaration (conservative: the closure may run on any path).
func (g *CallGraph) scanBody(pass *Pass, file *ast.File, node *CGNode, body *ast.BlockStmt, waived map[lineKey]map[string]bool) {
	exemptWallclock := false
	for _, suffix := range wallclockExemptSuffixes {
		if strings.HasSuffix(pass.PkgPath, suffix) {
			exemptWallclock = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(pass.Info, n); callee != nil {
				node.callees = append(node.callees, callee)
				g.recordHazard(pass, node, n, callee, waived, exemptWallclock)
			}
			// delete(x.f, k) / clear(x.f) mutate the field in place.
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") && len(n.Args) > 0 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if v, pos := writtenField(pass.Info, n.Args[0]); v != nil {
						node.writes = append(node.writes, fieldWrite{obj: v, pos: pos})
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v, pos := writtenField(pass.Info, lhs); v != nil {
					node.writes = append(node.writes, fieldWrite{obj: v, pos: pos})
				}
			}
		case *ast.IncDecStmt:
			if v, pos := writtenField(pass.Info, n.X); v != nil {
				node.writes = append(node.writes, fieldWrite{obj: v, pos: pos})
			}
		}
		return true
	})
}

// recordHazard checks whether a resolved call is a direct determinism
// hazard (wall-clock read, global rand draw) and records it on the node
// unless the site carries the matching waiver.
func (g *CallGraph) recordHazard(pass *Pass, node *CGNode, call *ast.CallExpr, callee *types.Func, waived map[lineKey]map[string]bool, exemptWallclock bool) {
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	var tag string
	switch pkg.Path() {
	case "time":
		if !exemptWallclock && wallclockFuncs[callee.Name()] && callee.Type().(*types.Signature).Recv() == nil {
			tag = hazardWallclock
		}
	case "math/rand", "math/rand/v2":
		if !globalrandAllowed[callee.Name()] && callee.Type().(*types.Signature).Recv() == nil {
			tag = hazardGlobalrand
		}
	}
	if tag == "" {
		return
	}
	p := pass.Fset.Position(call.Pos())
	if tags := waived[lineKey{p.Filename, p.Line}]; tags != nil && tags[tag] {
		return
	}
	node.hazards[tag] = append(node.hazards[tag], hazard{
		pos:  call.Pos(),
		desc: pkg.Name() + "." + callee.Name(),
	})
}

// Reaches reports whether fn (or any transitive static callee) contains
// a non-waived direct hazard of the given tag, returning a call chain
// description ("a → b → time.Now") for the diagnostic. Cycles are
// handled by treating in-progress nodes as non-reaching.
func (g *CallGraph) Reaches(fn *types.Func, tag string) (string, bool) {
	fn = origin(fn)
	visiting := map[*types.Func]bool{}
	chain := g.reach(fn, tag, visiting)
	return chain, chain != ""
}

func (g *CallGraph) reach(fn *types.Func, tag string, visiting map[*types.Func]bool) string {
	if memo, ok := g.reachMemo[fn]; ok {
		if chain, ok := memo[tag]; ok {
			return chain
		}
	}
	if visiting[fn] {
		return ""
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	chain := ""
	if node := g.nodes[fn]; node != nil {
		if hz := node.hazards[tag]; len(hz) > 0 {
			chain = fn.Name() + " → " + hz[0].desc
		} else {
			for _, callee := range node.callees {
				if sub := g.reach(callee, tag, visiting); sub != "" {
					chain = fn.Name() + " → " + sub
					break
				}
			}
		}
	}
	// Memoize only settled results: a "" computed while part of a cycle
	// is provisional, but hazards discovered are final.
	if chain != "" || len(visiting) == 1 {
		memo := g.reachMemo[fn]
		if memo == nil {
			memo = map[string]string{}
			g.reachMemo[fn] = memo
		}
		memo[tag] = chain
	}
	return chain
}

// WritesTransitively reports whether fn or any transitive static callee
// writes the given struct field.
func (g *CallGraph) WritesTransitively(fn *types.Func, field *types.Var) bool {
	return g.transitiveWrites(origin(fn), map[*types.Func]bool{})[field]
}

func (g *CallGraph) transitiveWrites(fn *types.Func, visiting map[*types.Func]bool) map[*types.Var]bool {
	if memo, ok := g.writesMemo[fn]; ok {
		return memo
	}
	if visiting[fn] {
		return nil
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	out := map[*types.Var]bool{}
	node := g.nodes[fn]
	if node == nil {
		return out
	}
	for _, w := range node.writes {
		out[w.obj] = true
	}
	for _, callee := range node.callees {
		for v := range g.transitiveWrites(callee, visiting) {
			out[v] = true
		}
	}
	// Cache only cycle-free results (len(visiting) == 1 means we are the
	// outermost frame and the union below us is complete).
	if len(visiting) == 1 {
		g.writesMemo[fn] = out
	}
	return out
}

// collectGuarded parses //waspvet:guardedby annotations on the struct
// fields of one package and resolves the named guard fields.
func (g *CallGraph) collectGuarded(pass *Pass) {
	// First index every struct's fields by (type name, field name).
	type structInfo struct {
		fields map[string]*types.Var
	}
	structs := map[string]*structInfo{}
	forEachStructField(pass, func(typeName string, f *ast.Field) {
		si := structs[typeName]
		if si == nil {
			si = &structInfo{fields: map[string]*types.Var{}}
			structs[typeName] = si
		}
		for _, name := range f.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				si.fields[name.Name] = v
			}
		}
	})

	resolve := func(owner string, name string) *types.Var {
		if typ, field, ok := strings.Cut(name, "."); ok {
			if si := structs[typ]; si != nil {
				return si.fields[field]
			}
			return nil
		}
		if si := structs[owner]; si != nil {
			return si.fields[name]
		}
		return nil
	}

	forEachStructField(pass, func(typeName string, f *ast.Field) {
		spec := fieldAnnotation(f, "guardedby")
		if spec == "" {
			return
		}
		for _, name := range f.Names {
			v, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			gs := &guardSpec{field: v}
			for _, guardName := range strings.Split(spec, ",") {
				guardName = strings.TrimSpace(guardName)
				if guardName == "" {
					continue
				}
				guard := resolve(typeName, guardName)
				if guard == nil {
					g.annotErrs[pass.PkgPath] = append(g.annotErrs[pass.PkgPath], Diagnostic{
						Pos:   f.Pos(),
						Check: "genbump",
						Message: fmt.Sprintf("waspvet:guardedby on %s names unknown guard field %q "+
							"(want a sibling field or Type.field in the same package)", name.Name, guardName),
					})
					continue
				}
				gs.guards = append(gs.guards, guard)
				gs.names = append(gs.names, guardName)
			}
			if len(gs.guards) > 0 {
				g.guarded[v] = gs
			}
		}
	})
}

// forEachStructField visits every named struct type's fields in a pass.
func forEachStructField(pass *Pass, fn func(typeName string, f *ast.Field)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					fn(ts.Name.Name, f)
				}
			}
		}
	}
}

// fieldAnnotation extracts the argument of a //waspvet:<tag> annotation
// attached to a struct field (trailing comment or doc line above).
func fieldAnnotation(f *ast.Field, tag string) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, WaiverPrefix+tag); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// hasAnnotation reports whether a declaration's doc comment carries the
// given //waspvet:<tag> annotation.
func hasAnnotation(doc *ast.CommentGroup, tag string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == WaiverPrefix+tag || strings.HasPrefix(c.Text, WaiverPrefix+tag+" ") {
			return true
		}
	}
	return false
}

// lineKey addresses one source line for waiver lookups.
type lineKey struct {
	file string
	line int
}

// waivedLines indexes the pass's waiver comments by covered line (the
// waiver's own line and the one below), mirroring Apply's semantics, so
// the graph builder can exclude waived hazard sites from propagation.
func waivedLines(pass *Pass) map[lineKey]map[string]bool {
	ws, _ := parseWaivers(pass, All())
	out := map[lineKey]map[string]bool{}
	add := func(k lineKey, tag string) {
		if out[k] == nil {
			out[k] = map[string]bool{}
		}
		out[k][tag] = true
	}
	for _, w := range ws {
		add(lineKey{w.file, w.line}, w.tag)
		add(lineKey{w.file, w.line + 1}, w.tag)
	}
	return out
}

// calleeOf resolves a call expression to the statically-known callee
// function, normalized to its generic origin. Returns nil for dynamic
// calls (func values, interface methods), builtins and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return origin(fn)
			}
			return nil
		}
		// Package-qualified function or method expression.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.IndexExpr:
		// Explicitly instantiated generic function: f[T](args).
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return origin(fn)
			}
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return origin(fn)
			}
		}
	}
	return nil
}

// origin normalizes an instantiated generic function or method to its
// declaration object, so graph nodes unify across instantiations.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// writtenField resolves an lvalue (or delete/clear argument) to the
// struct field it mutates: the outermost field selector after stripping
// indexing, dereference and parens. `e.flows[k] = f` writes field
// `flows`; `g.windows[i].count++` writes field `count` (the map/slice
// membership of `windows` is untouched). Returns nil for non-field
// lvalues (locals, globals, map values via locals).
func writtenField(info *types.Info, e ast.Expr) (*types.Var, token.Pos) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v, x.Pos()
				}
			}
			return nil, token.NoPos
		default:
			return nil, token.NoPos
		}
	}
}
