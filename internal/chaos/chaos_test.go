package chaos

import (
	"reflect"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := Config{Sites: 8, Duration: 900 * time.Second}
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(seed, cfg)
		b := Generate(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%v\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(Generate(1, cfg), Generate(2, cfg)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateSchedulesAreCoherent(t *testing.T) {
	d := 900 * time.Second
	cfg := Config{Sites: 8, Duration: d}
	for seed := int64(1); seed <= 50; seed++ {
		fs := Generate(seed, cfg)
		if len(fs) < 1 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if err := faults.ValidateSchedule(fs); err != nil {
			t.Fatalf("seed %d: generated schedule incoherent: %v", seed, err)
		}
		for i, f := range fs {
			if err := f.Validate(); err != nil {
				t.Fatalf("seed %d fault %d: %v", seed, i, err)
			}
			if f.At < d/10 || f.At > d/2 {
				t.Fatalf("seed %d fault %d strikes at %v, want within [%v, %v]", seed, i, f.At, d/10, d/2)
			}
			if f.For <= 0 {
				t.Fatalf("seed %d fault %d is permanent; every chaos fault must heal", seed, i)
			}
			if heal := f.At + f.For; heal > 3*d/4 {
				t.Fatalf("seed %d fault %d heals at %v, after the %v deadline", seed, i, heal, 3*d/4)
			}
			if f.Kind == faults.SiteCrash || f.Kind == faults.SiteSlow {
				if int(f.Site) < 0 || int(f.Site) >= cfg.Sites {
					t.Fatalf("seed %d fault %d victim site %d outside topology", seed, i, f.Site)
				}
			} else if f.From == f.To {
				t.Fatalf("seed %d fault %d is a self-link", seed, i)
			}
		}
	}
}

func TestGenerateRespectsSizeBounds(t *testing.T) {
	fs := Generate(7, Config{Sites: 8, Duration: 900 * time.Second, MinFaults: 5, MaxFaults: 5})
	if len(fs) != 5 {
		t.Fatalf("got %d faults, want exactly 5", len(fs))
	}
	// A 2-site topology offers few distinct targets; the attempt budget
	// must still terminate, possibly short of MinFaults.
	small := Generate(7, Config{Sites: 2, Duration: 900 * time.Second, MinFaults: 6, MaxFaults: 6})
	if err := faults.ValidateSchedule(small); err != nil {
		t.Fatalf("dense config produced incoherent schedule: %v", err)
	}
}

// cleanStats is a run-end state with every invariant satisfied.
func cleanStats() RunStats {
	return RunStats{
		Conservation: engine.Conservation{
			Generated: 1e6, Delivered: 9e5, Dropped: 1e5,
		},
		MaxRecovery: 30 * time.Second,
	}
}

func TestCheckPassesCleanRun(t *testing.T) {
	if vs := Check(cleanStats(), 600*time.Second); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
}

func TestCheckCatchesEachViolation(t *testing.T) {
	cases := []struct {
		invariant string
		mutate    func(*RunStats)
	}{
		{"conservation", func(s *RunStats) { s.Conservation.Delivered -= 1000 }},
		{"no-suspended-stages", func(s *RunStats) { s.SuspendedOps = []plan.OpID{1} }},
		{"no-pending-adaptation", func(s *RunStats) { s.PendingReconfigs = 1 }},
		{"no-pending-adaptation", func(s *RunStats) { s.Replanning = true }},
		{"no-orphan-transfers", func(s *RunStats) { s.ActiveTransfers = 2 }},
		{"all-sites-healed", func(s *RunStats) { s.DownSites = []topology.SiteID{3} }},
		{"recovery-bound", func(s *RunStats) { s.MaxRecovery = 700 * time.Second }},
	}
	for _, tc := range cases {
		s := cleanStats()
		tc.mutate(&s)
		vs := Check(s, 600*time.Second)
		if len(vs) != 1 {
			t.Errorf("%s: got %d violations (%v), want 1", tc.invariant, len(vs), vs)
			continue
		}
		if vs[0].Invariant != tc.invariant {
			t.Errorf("got invariant %q, want %q", vs[0].Invariant, tc.invariant)
		}
		if vs[0].Detail == "" || vs[0].String() == "" {
			t.Errorf("%s: violation carries no detail", tc.invariant)
		}
	}
	// Bound 0 disables the recovery check.
	s := cleanStats()
	s.MaxRecovery = time.Hour
	if vs := Check(s, 0); len(vs) != 0 {
		t.Fatalf("recovery-bound enforced with bound 0: %v", vs)
	}
}

func TestCheckReportsViolationsInFixedOrder(t *testing.T) {
	s := cleanStats()
	s.SuspendedOps = []plan.OpID{2}
	s.ActiveTransfers = 1
	s.DownSites = []topology.SiteID{0}
	vs := Check(s, 600*time.Second)
	want := []string{"no-suspended-stages", "no-orphan-transfers", "all-sites-healed"}
	if len(vs) != len(want) {
		t.Fatalf("got %d violations (%v), want %d", len(vs), vs, len(want))
	}
	for i, w := range want {
		if vs[i].Invariant != w {
			t.Fatalf("violation %d = %q, want %q (order must be stable for byte-identical output)", i, vs[i].Invariant, w)
		}
	}
}
