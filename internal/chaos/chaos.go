// Package chaos generates randomized fault schedules and checks run-end
// invariants — the harness that proves the adaptation runtime tolerates
// faults landing at arbitrary points, including mid-reconfiguration. A
// seed fully determines the schedule (explicit rand.Source, never the
// global generator), so every chaos scenario is replayable byte-for-byte.
package chaos

import (
	"math/rand"
	"time"

	"github.com/wasp-stream/wasp/internal/faults"
	"github.com/wasp-stream/wasp/internal/topology"
)

// Config bounds the generated schedule.
type Config struct {
	// Sites is the topology size; victims are drawn from [0, Sites).
	Sites int
	// Duration is the run length. Faults strike in [D/10, D/2] and heal by
	// 3D/4, leaving the final quarter for recovery to settle — chaos tests
	// that the system *recovers*, which needs a post-fault window.
	Duration time.Duration
	// MinFaults/MaxFaults bound the schedule size (defaults 3 and 6).
	MinFaults, MaxFaults int
	// CtrlRegions, when positive, widens the kind draw with the three
	// control-plane faults (ctrldown over [0, CtrlRegions), telemloss,
	// ctrldelay). Zero keeps the draw sequence — and therefore every
	// existing schedule — byte-identical to before the control plane
	// existed.
	CtrlRegions int
}

func (c Config) withDefaults() Config {
	if c.MinFaults == 0 {
		c.MinFaults = 3
	}
	if c.MaxFaults == 0 {
		c.MaxFaults = 6
	}
	if c.MaxFaults < c.MinFaults {
		c.MaxFaults = c.MinFaults
	}
	return c
}

// Generate builds a randomized, validated fault schedule from the seed.
// Candidates violating schedule coherence (overlapping faults on one
// site/link, see faults.ValidateSchedule) are redrawn; the attempt budget
// makes termination unconditional, so dense configs may come up short of
// MinFaults. Every generated fault heals, so a correct runtime ends the
// run fully recovered.
func Generate(seed int64, cfg Config) []faults.Fault {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	want := cfg.MinFaults + rng.Intn(cfg.MaxFaults-cfg.MinFaults+1)
	var out []faults.Fault
	for attempts := 0; len(out) < want && attempts < 10*want; attempts++ {
		f := randomFault(rng, cfg)
		if faults.ValidateSchedule(append(append([]faults.Fault(nil), out...), f)) != nil {
			continue
		}
		out = append(out, f)
	}
	return out
}

// randomFault draws one candidate fault. Times are truncated to whole
// seconds and factors to two decimals so rendered schedules stay short
// and byte-stable.
func randomFault(rng *rand.Rand, cfg Config) faults.Fault {
	d := cfg.Duration
	at := d/10 + time.Duration(rng.Int63n(int64(d/2-d/10)+1))
	at = at.Truncate(time.Second)
	forMin, forMax := d/20, d/4
	if healBy := 3*d/4 - at; forMax > healBy {
		forMax = healBy
	}
	if forMin > forMax {
		forMin = forMax
	}
	dur := forMin
	if forMax > forMin {
		dur += time.Duration(rng.Int63n(int64(forMax - forMin)))
	}
	dur = dur.Truncate(time.Second)
	if dur <= 0 {
		dur = time.Second
	}

	f := faults.Fault{At: at, For: dur}
	kinds := 4
	if cfg.CtrlRegions > 0 {
		kinds = 7
	}
	switch rng.Intn(kinds) {
	case 0:
		f.Kind = faults.SiteCrash
		f.Site = topology.SiteID(rng.Intn(cfg.Sites))
	case 1:
		f.Kind = faults.SiteSlow
		f.Site = topology.SiteID(rng.Intn(cfg.Sites))
		f.Factor = randomFactor(rng)
	case 2:
		f.Kind = faults.LinkDown
		f.From, f.To = randomLink(rng, cfg.Sites)
	case 3:
		f.Kind = faults.LinkSlow
		f.From, f.To = randomLink(rng, cfg.Sites)
		f.Factor = randomFactor(rng)
	case 4:
		f.Kind = faults.CtrlDown
		f.Region = rng.Intn(cfg.CtrlRegions)
	case 5:
		f.Kind = faults.TelemLoss
		f.Rate = randomFactor(rng)
	case 6:
		f.Kind = faults.CtrlDelay
		f.Delay = time.Duration(1+rng.Intn(5)) * time.Second
	}
	return f
}

// randomFactor draws a degradation factor in [0.2, 0.8], two decimals.
func randomFactor(rng *rand.Rand) float64 {
	return float64(20+rng.Intn(61)) / 100
}

// randomLink draws a directed link between two distinct sites.
func randomLink(rng *rand.Rand, sites int) (topology.SiteID, topology.SiteID) {
	from := rng.Intn(sites)
	to := rng.Intn(sites - 1)
	if to >= from {
		to++
	}
	return topology.SiteID(from), topology.SiteID(to)
}
