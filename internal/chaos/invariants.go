package chaos

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/engine"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// RunStats is the end-of-run state the invariant checker judges. The
// experiment layer fills it from the engine and network after the
// scheduler stops.
type RunStats struct {
	// Conservation is the engine's source-equivalent balance.
	Conservation engine.Conservation
	// SuspendedOps lists operators with suspended groups at end of run.
	SuspendedOps []plan.OpID
	// PendingReconfigs counts reconfigurations still in flight.
	PendingReconfigs int
	// Replanning reports an unfinished plan switch.
	Replanning bool
	// ActiveTransfers counts bulk transfers still in the network.
	ActiveTransfers int
	// DownSites lists sites still crashed at end of run.
	DownSites []topology.SiteID
	// MaxRecovery is the slowest completed site-failure recovery.
	MaxRecovery time.Duration
	// QuarantinedRegions lists control-plane regions still quarantined at
	// end of run (every generated ctrl fault heals, so reports resume and
	// re-admission must have happened).
	QuarantinedRegions []int
	// UnackedCommands counts controller commands still awaiting an ack
	// (aborted commands are resolved and do not count).
	UnackedCommands int
	// WrongActions counts commands issued at sites whose region had an
	// active control partition — decisions taken on evidence the
	// controller should have recognized as unusable. Reported by the
	// ctrlchaos sweep; not itself an invariant.
	WrongActions int
}

// Violation is one broken invariant.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
}

// Check judges the run against the chaos invariants, in a fixed order:
//
//  1. conservation — generated = delivered + dropped + net-lost + in-flight,
//     discounting the at-least-once replay surplus of checkpoint restores;
//  2. no-suspended-stages — every fault and adaptation released its holds;
//  3. no-pending-adaptation — no reconfiguration or re-plan left in flight;
//  4. no-orphan-transfers — netsim carries no abandoned bulk transfer;
//  5. all-sites-healed — every generated fault heals, so no site may
//     still be down;
//  6. recovery-bound — the slowest recovery finished within recoveryBound
//     (0 skips the check);
//  7. no-quarantine-after-heal — once control faults heal and reports
//     resume, no region may still be quarantined;
//  8. no-unacked-commands — every command was acked or aborted by the
//     supervisor before the run ended.
//
// An empty result means the run was clean.
func Check(s RunStats, recoveryBound time.Duration) []Violation {
	var out []Violation
	if !s.Conservation.Holds() {
		out = append(out, Violation{"conservation",
			fmt.Sprintf("residual %.3f exceeds eps %.3f (generated %.0f delivered %.0f dropped %.0f lost %.0f reinjected %.0f in-flight %.0f)",
				s.Conservation.Residual(), s.Conservation.Eps(),
				s.Conservation.Generated, s.Conservation.Delivered, s.Conservation.Dropped,
				s.Conservation.Lost, s.Conservation.Reinjected, s.Conservation.InFlight)})
	}
	if len(s.SuspendedOps) > 0 {
		out = append(out, Violation{"no-suspended-stages",
			fmt.Sprintf("operators %v still suspended at end of run", s.SuspendedOps)})
	}
	if s.PendingReconfigs > 0 || s.Replanning {
		out = append(out, Violation{"no-pending-adaptation",
			fmt.Sprintf("%d reconfiguration(s) pending, replanning=%v", s.PendingReconfigs, s.Replanning)})
	}
	if s.ActiveTransfers > 0 {
		out = append(out, Violation{"no-orphan-transfers",
			fmt.Sprintf("%d transfer(s) still active in the network", s.ActiveTransfers)})
	}
	if len(s.DownSites) > 0 {
		out = append(out, Violation{"all-sites-healed",
			fmt.Sprintf("sites %v still down at end of run", s.DownSites)})
	}
	if recoveryBound > 0 && s.MaxRecovery > recoveryBound {
		out = append(out, Violation{"recovery-bound",
			fmt.Sprintf("slowest recovery %v exceeds bound %v", s.MaxRecovery, recoveryBound)})
	}
	if len(s.QuarantinedRegions) > 0 {
		out = append(out, Violation{"no-quarantine-after-heal",
			fmt.Sprintf("regions %v still quarantined at end of run", s.QuarantinedRegions)})
	}
	if s.UnackedCommands > 0 {
		out = append(out, Violation{"no-unacked-commands",
			fmt.Sprintf("%d command(s) still awaiting an ack at end of run", s.UnackedCommands)})
	}
	return out
}

// Report emits each violation as a chaos.violation event on the run's
// observer, so the broken invariants appear in the JSONL timeline beside
// the actions and faults that caused them (wasptrace renders them in its
// gantt). Nil observer or empty violation list is a no-op.
func Report(o *obs.Observer, vs []Violation) {
	if o == nil {
		return
	}
	for _, v := range vs {
		o.Emit("chaos.violation",
			obs.String("invariant", v.Invariant),
			obs.String("detail", v.Detail))
	}
}
