package physical

import (
	"errors"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// testTopology builds 4 sites with 4 slots each, uniform 100 Mbps links
// and 50 ms latency, except where overridden by tests.
func testTopology(t *testing.T, slots int) *topology.Topology {
	t.Helper()
	const n = 4
	sites := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sites[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: slots}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 10000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 100
			lat[i][j] = 50 * time.Millisecond
		}
	}
	top, err := topology.New(sites, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// pipelineGraph builds src(site0) → map → sink(site1).
func pipelineGraph(t *testing.T) *plan.Graph {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 10000,
	})
	mp := g.AddOperator(plan.Operator{
		Name: "map", Kind: plan.KindMap, Splittable: true,
		Selectivity: 1, OutEventBytes: 100, CostPerEvent: 1,
	})
	snk := g.AddOperator(plan.Operator{
		Name: "sink", Kind: plan.KindSink, PinnedSite: 1,
	})
	g.MustConnect(src, mp)
	g.MustConnect(mp, snk)
	return g
}

func TestFromLogicalAndValidate(t *testing.T) {
	top := testTopology(t, 4)
	g := pipelineGraph(t)
	p, err := FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(top); err == nil {
		t.Fatal("unplaced plan validated")
	}
	if err := Schedule(p, top, ScheduleConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(top); err != nil {
		t.Fatalf("scheduled plan invalid: %v", err)
	}
	if p.TotalTasks() != 3 {
		t.Fatalf("TotalTasks = %d, want 3", p.TotalTasks())
	}
}

func TestSchedulePinsEndpoints(t *testing.T) {
	top := testTopology(t, 4)
	g := pipelineGraph(t)
	p, err := FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Schedule(p, top, ScheduleConfig{}); err != nil {
		t.Fatal(err)
	}
	srcStage := p.Stages[0]
	if len(srcStage.Sites) != 1 || srcStage.Sites[0] != 0 {
		t.Fatalf("source placed at %v, want [0]", srcStage.Sites)
	}
	sinkStage := p.Stages[2]
	if len(sinkStage.Sites) != 1 || sinkStage.Sites[0] != 1 {
		t.Fatalf("sink placed at %v, want [1]", sinkStage.Sites)
	}
	// The map co-locates with its upstream source (only the upstream is
	// known during initial scheduling).
	mapStage := p.Stages[1]
	if len(mapStage.Sites) != 1 || mapStage.Sites[0] != 0 {
		t.Fatalf("map placed at %v, want [0]", mapStage.Sites)
	}
}

func TestScheduleParallelismAndSlots(t *testing.T) {
	top := testTopology(t, 2)
	g := pipelineGraph(t)
	p, err := FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScheduleConfig{Parallelism: map[plan.OpID]int{1: 5}}
	if err := Schedule(p, top, cfg); err != nil {
		t.Fatal(err)
	}
	if got := p.Stages[1].Parallelism(); got != 5 {
		t.Fatalf("map parallelism = %d, want 5", got)
	}
	used := p.SlotsUsed(top.N())
	for s, n := range used {
		if n > top.Slots(topology.SiteID(s)) {
			t.Fatalf("site %d over capacity (%d)", s, n)
		}
	}
}

func TestScheduleInfeasible(t *testing.T) {
	top := testTopology(t, 1)
	g := pipelineGraph(t)
	p, err := FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	// 4 sites × 1 slot = 4 slots total, but 3 stages need 1+9+1.
	cfg := ScheduleConfig{Parallelism: map[plan.OpID]int{1: 9}}
	err = Schedule(p, top, cfg)
	if !errors.Is(err, placement.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestStageHelpers(t *testing.T) {
	st := &Stage{Op: &plan.Operator{Name: "x"}, Sites: []topology.SiteID{2, 0, 2}}
	if st.Parallelism() != 3 {
		t.Fatalf("Parallelism = %d", st.Parallelism())
	}
	tps := st.TasksPerSite(4)
	if tps[0] != 1 || tps[2] != 2 {
		t.Fatalf("TasksPerSite = %v", tps)
	}
	ds := st.DistinctSites()
	if len(ds) != 2 || ds[0] != 0 || ds[1] != 2 {
		t.Fatalf("DistinctSites = %v", ds)
	}
	eps := st.Endpoints()
	if len(eps) != 2 || eps[0].Weight != 1.0/3 || eps[1].Weight != 2.0/3 {
		t.Fatalf("Endpoints = %v", eps)
	}
}

func TestPlanClone(t *testing.T) {
	top := testTopology(t, 4)
	g := pipelineGraph(t)
	p, _ := FromLogical(g)
	if err := Schedule(p, top, ScheduleConfig{}); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c.Stages[1].Sites[0] = 3
	if p.Stages[1].Sites[0] == 3 {
		t.Fatal("Clone shares site slices")
	}
	c.Graph.Operator(1).Selectivity = 0.123
	if p.Graph.Operator(1).Selectivity == 0.123 {
		t.Fatal("Clone shares graph")
	}
	// Cloned stages point at the cloned graph's operators.
	if c.Stages[1].Op != c.Graph.Operator(1) {
		t.Fatal("cloned stage not rebound to cloned graph")
	}
}

func TestReassignStageUsesDownstream(t *testing.T) {
	top := testTopology(t, 4)
	g := pipelineGraph(t)
	p, _ := FromLogical(g)
	if err := Schedule(p, top, ScheduleConfig{}); err != nil {
		t.Fatal(err)
	}
	free := make([]int, top.N())
	for s := range free {
		free[s] = top.Slots(topology.SiteID(s))
	}
	used := p.SlotsUsed(top.N())
	for s := range free {
		free[s] -= used[s]
	}
	// The stage's own slot becomes available during re-assignment.
	free[p.Stages[1].Sites[0]]++

	pl, err := ReassignStage(p, 1, top, ScheduleConfig{}, free)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Total() != 1 {
		t.Fatalf("reassigned placement %v, want 1 task", pl)
	}
	// With uniform latencies, sites 0 and 1 are both optimal (0.05 s);
	// anything else would cost 0.1 s.
	best := pl.Sites()[0]
	if best != 0 && best != 1 {
		t.Fatalf("reassigned to %d, want 0 or 1", best)
	}
}

func TestTaskIDString(t *testing.T) {
	id := TaskID{Op: 3, Index: 1}
	if got := id.String(); got != "op3#1" {
		t.Fatalf("String = %q", got)
	}
}
