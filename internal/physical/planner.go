package physical

import (
	"errors"
	"fmt"
	"sort"

	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// ErrNoCandidate is returned when no plan variant can be scheduled under
// the current constraints.
var ErrNoCandidate = errors.New("physical: no schedulable plan variant")

// PlannerConfig parameterises the joint logical/physical planner.
type PlannerConfig struct {
	ScheduleConfig
	// MaxVariants caps how many combine orders are evaluated (the paper
	// restricts enumeration to aggregation/join orders to stay
	// tractable, §8.1). Zero means DefaultMaxVariants.
	MaxVariants int
	// WANWeight converts WAN consumption (bytes/s) into cost units when
	// ranking candidates, trading delay against bandwidth use. Zero
	// means DefaultWANWeight.
	WANWeight float64
}

// DefaultMaxVariants bounds the combine-order enumeration: 105 covers all
// orders for up to 5 inputs; beyond that the planner evaluates a capped
// prefix plus the left-deep and balanced heuristics.
const DefaultMaxVariants = 105

// DefaultWANWeight prices one byte/s of WAN traffic at 10 ns of delay
// cost, making WAN consumption the decisive tie-break between plans with
// comparable latency (the Fig 5 behaviour).
const DefaultWANWeight = 10e-9

// Candidate is one evaluated (logical variant, placement) pair.
type Candidate struct {
	Variant *plan.Variant
	Plan    *Plan
	// DelayVolume is Σ over cross-site flows of bytes/s × latency — the
	// estimated aggregate in-flight delay (seconds·bytes/s).
	DelayVolume float64
	// WANBytesPerSec is the total cross-site traffic.
	WANBytesPerSec float64
	// Cost is the combined objective the planner minimizes.
	Cost float64
}

// PlanQuery jointly optimizes the combine order and task placement for a
// query whose base graph and re-orderable combine group are given. It
// returns the best candidate and all evaluated (feasible) candidates
// sorted by cost. The base graph should already be logically optimized
// (plan.PushDownFilters).
func PlanQuery(base *plan.Graph, spec *plan.CombineSpec, top *topology.Topology, cfg PlannerConfig) (*Candidate, []Candidate, error) {
	return planQuery(base, spec, top, cfg, nil)
}

// ReplanQuery is PlanQuery restricted to variants that can take over the
// current variant's state: every stateful combine sub-plan of `current`
// must appear in the candidate (§4.3). Pass requireAdmissible=false for
// stateless executions (or tumbling-window boundary switches), where any
// variant is acceptable.
func ReplanQuery(base *plan.Graph, spec *plan.CombineSpec, current *plan.Variant, requireAdmissible bool, top *topology.Topology, cfg PlannerConfig) (*Candidate, []Candidate, error) {
	var filter func(v *plan.Variant) bool
	if requireAdmissible && current != nil {
		filter = func(v *plan.Variant) bool { return v.AdmissibleFrom(current) }
	}
	return planQuery(base, spec, top, cfg, filter)
}

func planQuery(base *plan.Graph, spec *plan.CombineSpec, top *topology.Topology, cfg PlannerConfig, admit func(*plan.Variant) bool) (*Candidate, []Candidate, error) {
	maxVariants := cfg.MaxVariants
	if maxVariants == 0 {
		maxVariants = DefaultMaxVariants
	}
	wanWeight := cfg.WANWeight
	if wanWeight == 0 {
		wanWeight = DefaultWANWeight
	}

	k := len(spec.Inputs)
	trees := plan.EnumerateTrees(k, maxVariants)

	var candidates []Candidate
	for _, tree := range trees {
		v, err := spec.Expand(base, tree)
		if err != nil {
			return nil, nil, fmt.Errorf("expand %v: %w", tree, err)
		}
		if admit != nil && !admit(v) {
			continue
		}
		p, err := FromLogical(v.Graph)
		if err != nil {
			return nil, nil, fmt.Errorf("variant %v: %w", tree, err)
		}
		if err := Schedule(p, top, cfg.ScheduleConfig); err != nil {
			if errors.Is(err, placement.ErrInfeasible) {
				continue // variant not schedulable under current bandwidth
			}
			return nil, nil, err
		}
		delayVol, wan, err := EstimateCost(p, top, cfg.RateFactor)
		if err != nil {
			return nil, nil, err
		}
		candidates = append(candidates, Candidate{
			Variant:        v,
			Plan:           p,
			DelayVolume:    delayVol,
			WANBytesPerSec: wan,
			Cost:           delayVol + wanWeight*wan,
		})
	}
	if len(candidates) == 0 {
		return nil, nil, ErrNoCandidate
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Cost < candidates[j].Cost })
	best := candidates[0]
	return &best, candidates, nil
}

// EstimateCost computes the plan's estimated delay-volume (Σ cross-site
// flow × link latency, in seconds·bytes/s) and total WAN consumption
// (bytes/s) under even event partitioning.
func EstimateCost(p *Plan, top *topology.Topology, rateFactor float64) (delayVolume, wanBytesPerSec float64, err error) {
	if rateFactor == 0 {
		rateFactor = 1
	}
	_, _, outBytes, err := p.Graph.ExpectedRates(rateFactor)
	if err != nil {
		return 0, 0, err
	}
	for _, from := range p.Graph.OperatorIDs() {
		fromEPs := p.Stages[from].Endpoints()
		for _, to := range p.Graph.Downstream(from) {
			toEPs := p.Stages[to].Endpoints()
			for _, fe := range fromEPs {
				for _, te := range toEPs {
					flow := outBytes[from] * fe.Weight * te.Weight
					if fe.Site == te.Site || flow == 0 {
						continue
					}
					wanBytesPerSec += flow
					delayVolume += flow * top.Latency(fe.Site, te.Site).Seconds()
				}
			}
		}
	}
	return delayVolume, wanBytesPerSec, nil
}
