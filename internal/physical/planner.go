package physical

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// ErrNoCandidate is returned when no plan variant can be scheduled under
// the current constraints.
var ErrNoCandidate = errors.New("physical: no schedulable plan variant")

// PlannerConfig parameterises the joint logical/physical planner.
type PlannerConfig struct {
	ScheduleConfig
	// MaxVariants caps how many combine orders are evaluated (the paper
	// restricts enumeration to aggregation/join orders to stay
	// tractable, §8.1). Zero means DefaultMaxVariants.
	MaxVariants int
	// WANWeight converts WAN consumption (bytes/s) into cost units when
	// ranking candidates, trading delay against bandwidth use. Zero
	// means DefaultWANWeight.
	WANWeight float64
}

// DefaultMaxVariants bounds the combine-order enumeration: 105 covers all
// orders for up to 5 inputs; beyond that the planner evaluates a capped
// prefix plus the left-deep and balanced heuristics.
const DefaultMaxVariants = 105

// DefaultWANWeight prices one byte/s of WAN traffic at 10 ns of delay
// cost, making WAN consumption the decisive tie-break between plans with
// comparable latency (the Fig 5 behaviour).
const DefaultWANWeight = 10e-9

// Candidate is one evaluated (logical variant, placement) pair.
type Candidate struct {
	Variant *plan.Variant
	Plan    *Plan
	// DelayVolume is Σ over cross-site flows of bytes/s × latency — the
	// estimated aggregate in-flight delay (seconds·bytes/s).
	DelayVolume float64
	// WANBytesPerSec is the total cross-site traffic.
	WANBytesPerSec float64
	// Cost is the combined objective the planner minimizes.
	Cost float64
}

// PlanQuery jointly optimizes the combine order and task placement for a
// query whose base graph and re-orderable combine group are given. It
// returns the best candidate and all evaluated (feasible) candidates
// sorted by cost. The base graph should already be logically optimized
// (plan.PushDownFilters).
func PlanQuery(base *plan.Graph, spec *plan.CombineSpec, top *topology.Topology, cfg PlannerConfig) (*Candidate, []Candidate, error) {
	return planQuery(base, spec, top, cfg, nil)
}

// ReplanQuery is PlanQuery restricted to variants that can take over the
// current variant's state: every stateful combine sub-plan of `current`
// must appear in the candidate (§4.3). Pass requireAdmissible=false for
// stateless executions (or tumbling-window boundary switches), where any
// variant is acceptable.
func ReplanQuery(base *plan.Graph, spec *plan.CombineSpec, current *plan.Variant, requireAdmissible bool, top *topology.Topology, cfg PlannerConfig) (*Candidate, []Candidate, error) {
	var filter func(v *plan.Variant) bool
	if requireAdmissible && current != nil {
		filter = func(v *plan.Variant) bool { return v.AdmissibleFrom(current) }
	}
	return planQuery(base, spec, top, cfg, filter)
}

func planQuery(base *plan.Graph, spec *plan.CombineSpec, top *topology.Topology, cfg PlannerConfig, admit func(*plan.Variant) bool) (*Candidate, []Candidate, error) {
	s, err := NewSession(base, spec, cfg.MaxVariants)
	if err != nil {
		return nil, nil, err
	}
	return s.Plan(top, cfg, admit)
}

// Session caches everything about one query's plan search space that does
// not change between planning rounds: the enumerated combine trees, each
// tree's expanded logical variant, and each variant's physical plan
// skeleton (built and validated once). Per round only the placements and
// cost estimates are recomputed — the controller re-plans against live
// bandwidth and workload dozens of times per run, and re-expanding ~10^2
// variant graphs each round dominated its allocation profile.
//
// The cached plans are REUSED across Plan calls: Schedule overwrites
// their stage placements in place each round. A caller that adopts a
// candidate's Plan beyond the current round (e.g. deploying it to the
// engine) must Clone it first, or the next round's Schedule will mutate
// the adopted plan under the engine's feet.
type Session struct {
	entries []sessionEntry
	cands   []Candidate // reused result buffer, re-sliced per Plan call
	ws      Workspace   // scratch shared by every Plan call's scheduling
}

// sessionEntry is one cached (variant, plan skeleton) pair.
type sessionEntry struct {
	variant *plan.Variant
	plan    *Plan
}

// NewSession expands the query's combine-order search space once. The
// base graph should already be logically optimized (PushDownFilters).
// maxVariants of 0 means DefaultMaxVariants.
func NewSession(base *plan.Graph, spec *plan.CombineSpec, maxVariants int) (*Session, error) {
	if maxVariants == 0 {
		maxVariants = DefaultMaxVariants
	}
	trees := plan.EnumerateTrees(len(spec.Inputs), maxVariants)
	s := &Session{entries: make([]sessionEntry, 0, len(trees))}
	for _, tree := range trees {
		v, err := spec.Expand(base, tree)
		if err != nil {
			return nil, fmt.Errorf("expand %v: %w", tree, err)
		}
		p, err := FromLogical(v.Graph)
		if err != nil {
			return nil, fmt.Errorf("variant %v: %w", tree, err)
		}
		s.entries = append(s.entries, sessionEntry{variant: v, plan: p})
	}
	return s, nil
}

// Plan runs one planning round over the cached variants: schedule each
// admissible variant against the current topology/bandwidth, estimate its
// cost, and rank. The returned candidates (and their Plans) are owned by
// the session and valid until the next Plan call; Clone any plan that
// outlives the round.
func (s *Session) Plan(top *topology.Topology, cfg PlannerConfig, admit func(*plan.Variant) bool) (*Candidate, []Candidate, error) {
	wanWeight := cfg.WANWeight
	if wanWeight == 0 {
		wanWeight = DefaultWANWeight
	}
	sc := cfg.ScheduleConfig
	if sc.Workspace == nil {
		sc.Workspace = &s.ws
	}
	candidates := s.cands[:0]
	for _, e := range s.entries {
		if admit != nil && !admit(e.variant) {
			continue
		}
		if err := Schedule(e.plan, top, sc); err != nil {
			if errors.Is(err, placement.ErrInfeasible) {
				continue // variant not schedulable under current bandwidth
			}
			return nil, nil, err
		}
		delayVol, wan, err := estimateCost(e.plan, top, cfg.RateFactor, sc.Workspace)
		if err != nil {
			return nil, nil, err
		}
		candidates = append(candidates, Candidate{
			Variant:        e.variant,
			Plan:           e.plan,
			DelayVolume:    delayVol,
			WANBytesPerSec: wan,
			Cost:           delayVol + wanWeight*wan,
		})
	}
	s.cands = candidates
	if len(candidates) == 0 {
		return nil, nil, ErrNoCandidate
	}
	slices.SortStableFunc(candidates, func(a, b Candidate) int { return cmp.Compare(a.Cost, b.Cost) })
	best := candidates[0]
	return &best, candidates, nil
}

// EstimateCost computes the plan's estimated delay-volume (Σ cross-site
// flow × link latency, in seconds·bytes/s) and total WAN consumption
// (bytes/s) under even event partitioning.
func EstimateCost(p *Plan, top *topology.Topology, rateFactor float64) (delayVolume, wanBytesPerSec float64, err error) {
	return estimateCost(p, top, rateFactor, &Workspace{})
}

// estimateCost is EstimateCost with caller-owned scratch.
func estimateCost(p *Plan, top *topology.Topology, rateFactor float64, ws *Workspace) (delayVolume, wanBytesPerSec float64, err error) {
	if rateFactor == 0 {
		rateFactor = 1
	}
	if err := p.Graph.ExpectedRatesBuf(rateFactor, &ws.rates); err != nil {
		return 0, 0, err
	}
	outBytes := ws.rates.Bytes
	for _, from := range p.Graph.OperatorIDs() {
		ws.fromEPs, ws.tmp = p.Stages[from].AppendEndpoints(ws.fromEPs[:0], ws.tmp)
		fromEPs := ws.fromEPs
		for _, to := range p.Graph.DownstreamView(from) {
			ws.toEPs, ws.tmp = p.Stages[to].AppendEndpoints(ws.toEPs[:0], ws.tmp)
			for _, fe := range fromEPs {
				for _, te := range ws.toEPs {
					flow := outBytes[from] * fe.Weight * te.Weight
					if fe.Site == te.Site || flow == 0 {
						continue
					}
					wanBytesPerSec += flow
					delayVolume += flow * top.Latency(fe.Site, te.Site).Seconds()
				}
			}
		}
	}
	return delayVolume, wanBytesPerSec, nil
}
