package physical

import (
	"reflect"
	"testing"

	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// TestScheduleHierarchicalMatchesExact schedules the same plan over a
// 100-site region-structured topology through both placement paths: the
// exact solver (HierarchicalSites < 0) and the hierarchical two-level
// planner (on by default above placement.DefaultHierarchicalThreshold).
// The hierarchical path reproduces the exact fill order, so every stage
// placement must be identical.
func TestScheduleHierarchicalMatchesExact(t *testing.T) {
	top, err := topology.GenerateScale(topology.DefaultScaleConfig(11, 10, 9))
	if err != nil {
		t.Fatal(err)
	}
	if top.N() != 100 {
		t.Fatalf("fixture has %d sites, want 100", top.N())
	}

	build := func() *Plan {
		g := plan.NewGraph()
		src := g.AddOperator(plan.Operator{
			Name: "src", Kind: plan.KindSource, PinnedSite: 1,
			Selectivity: 1, OutEventBytes: 200, SourceRate: 5000,
		})
		mp := g.AddOperator(plan.Operator{
			Name: "map", Kind: plan.KindMap, Splittable: true,
			Selectivity: 1, OutEventBytes: 200, CostPerEvent: 1,
		})
		// Sink pinned at r4's hub: hubs lead each 10-site region.
		snk := g.AddOperator(plan.Operator{
			Name: "sink", Kind: plan.KindSink, PinnedSite: 40,
		})
		g.MustConnect(src, mp)
		g.MustConnect(mp, snk)
		p, err := FromLogical(g)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	for _, par := range []int{1, 4, 16} {
		exact := build()
		cfgExact := ScheduleConfig{Parallelism: map[plan.OpID]int{1: par}, HierarchicalSites: -1}
		if err := Schedule(exact, top, cfgExact); err != nil {
			t.Fatalf("p=%d exact: %v", par, err)
		}
		hier := build()
		cfgHier := ScheduleConfig{Parallelism: map[plan.OpID]int{1: par}}
		if err := Schedule(hier, top, cfgHier); err != nil {
			t.Fatalf("p=%d hierarchical: %v", par, err)
		}
		for id := range exact.Stages {
			if !reflect.DeepEqual(exact.Stages[id].Sites, hier.Stages[id].Sites) {
				t.Fatalf("p=%d stage %d diverges: exact %v, hierarchical %v",
					par, id, exact.Stages[id].Sites, hier.Stages[id].Sites)
			}
		}
		if err := hier.Validate(top); err != nil {
			t.Fatalf("p=%d hierarchical plan invalid: %v", par, err)
		}
	}
}

// TestSolvePlacementClusteredFallback exercises the unregioned dispatch
// path: a testbed topology has no region structure, so the workspace
// clusters it on demand — and the result must still match the exact
// solver (forced via a 1-site threshold so the small instance takes the
// hierarchical path).
func TestSolvePlacementClusteredFallback(t *testing.T) {
	top := topology.Generate(topology.DefaultGenConfig(2))
	g := pipelineGraph(t)

	exact, err := FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Schedule(exact, top, ScheduleConfig{HierarchicalSites: -1}); err != nil {
		t.Fatal(err)
	}
	hier, err := FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Schedule(hier, top, ScheduleConfig{HierarchicalSites: 1}); err != nil {
		t.Fatal(err)
	}
	for id := range exact.Stages {
		if !reflect.DeepEqual(exact.Stages[id].Sites, hier.Stages[id].Sites) {
			t.Fatalf("stage %d diverges: exact %v, clustered hierarchical %v",
				id, exact.Stages[id].Sites, hier.Stages[id].Sites)
		}
	}
}
