package physical

import (
	"time"

	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// Workspace holds reusable scratch buffers for repeated Schedule,
// ReassignStage and cost-estimation calls. The controller schedules ~10^2
// plan variants per re-planning round, every round of the run; without
// buffer reuse the per-stage endpoint lists, rate buffers and placement
// programs dominated the steady-state allocation profile.
//
// The zero value is ready to use. A Workspace is NOT safe for concurrent
// use; parallel experiment jobs must each use their own (or leave
// ScheduleConfig.Workspace nil for allocate-per-call behaviour).
type Workspace struct {
	avail   []int
	ups     []placement.Endpoint
	eps     []placement.Endpoint
	fromEPs []placement.Endpoint
	toEPs   []placement.Endpoint
	tmp     []topology.SiteID
	rates   plan.RateBuf
	pr      placement.Problem
	sol     placement.Scratch

	// lat caches the topology's Latency method value so solveStage does
	// not allocate a fresh closure per placement program.
	//waspvet:guardedby latTop
	lat    func(from, to topology.SiteID) time.Duration
	latTop *topology.Topology
}

// latencyFn returns a cached top.Latency method value.
func (ws *Workspace) latencyFn(top *topology.Topology) func(from, to topology.SiteID) time.Duration {
	if ws.latTop != top {
		ws.latTop = top
		ws.lat = top.Latency
	}
	return ws.lat
}
