package physical

import (
	"math"
	"time"

	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// Workspace holds reusable scratch buffers for repeated Schedule,
// ReassignStage and cost-estimation calls. The controller schedules ~10^2
// plan variants per re-planning round, every round of the run; without
// buffer reuse the per-stage endpoint lists, rate buffers and placement
// programs dominated the steady-state allocation profile.
//
// The zero value is ready to use. A Workspace is NOT safe for concurrent
// use; parallel experiment jobs must each use their own (or leave
// ScheduleConfig.Workspace nil for allocate-per-call behaviour).
type Workspace struct {
	avail   []int
	ups     []placement.Endpoint
	eps     []placement.Endpoint
	fromEPs []placement.Endpoint
	toEPs   []placement.Endpoint
	tmp     []topology.SiteID
	rates   plan.RateBuf
	pr      placement.Problem
	sol     placement.Scratch

	// lat caches the topology's Latency method value so solveStage does
	// not allocate a fresh closure per placement program.
	//waspvet:guardedby latTop
	lat    func(from, to topology.SiteID) time.Duration
	latTop *topology.Topology

	// hier and the cached region partition serve SolvePlacement's
	// hierarchical path on planet-scale topologies.
	hier placement.HierScratch
	//waspvet:guardedby regionsTop
	regions    [][]topology.SiteID
	regionsTop *topology.Topology
}

// latencyFn returns a cached top.Latency method value.
func (ws *Workspace) latencyFn(top *topology.Topology) func(from, to topology.SiteID) time.Duration {
	if ws.latTop != top {
		ws.latTop = top
		ws.lat = top.Latency
	}
	return ws.lat
}

// regionsFor returns the cached region partition for the topology: its
// own region structure when it has one (GenerateScale topologies), else
// a deterministic ~√N-way latency clustering.
func (ws *Workspace) regionsFor(top *topology.Topology) [][]topology.SiteID {
	if ws.regionsTop != top {
		ws.regionsTop = top
		if top.NumRegions() > 0 {
			ws.regions = top.RegionSites()
		} else {
			k := int(math.Ceil(math.Sqrt(float64(top.N()))))
			ws.regions = topology.ClusterRegions(top, k)
		}
	}
	return ws.regions
}

// SolvePlacement solves one placement program through the workspace's
// scratch, dispatching to the hierarchical two-level planner when the
// instance spans at least hierSites sites (0 selects
// placement.DefaultHierarchicalThreshold, negative forces the exact
// solver). The returned Placement aliases workspace buffers and is valid
// only until the next solve through the same workspace.
func (ws *Workspace) SolvePlacement(pr *placement.Problem, top *topology.Topology, hierSites int) (*placement.Placement, error) {
	threshold := hierSites
	if threshold == 0 {
		threshold = placement.DefaultHierarchicalThreshold
	}
	if threshold < 0 || top == nil || pr.Sites < threshold || pr.Sites != top.N() {
		return pr.SolveInto(&ws.sol)
	}
	return pr.SolveHierarchicalInto(ws.regionsFor(top), &ws.hier)
}
