package physical

import (
	"fmt"

	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// ScheduleConfig parameterises the WAN-aware topological scheduler.
type ScheduleConfig struct {
	// Alpha is the bandwidth utilization threshold α (paper default 0.8).
	Alpha float64
	// DefaultParallelism applies to every unpinned stage unless
	// overridden (paper §8.3 initializes all operators with p=1).
	DefaultParallelism int
	// Parallelism overrides per operator.
	Parallelism map[plan.OpID]int
	// RateFactor scales source rates when estimating stream rates.
	RateFactor float64
	// Bandwidth returns the currently available from→to link capacity in
	// bytes/s. If nil, the topology's base bandwidth is used.
	Bandwidth func(from, to topology.SiteID) float64
	// Conservative selects the literal reading of the paper's bandwidth
	// constraints (each link must fit a site's whole stream share); see
	// placement.Problem.Conservative.
	Conservative bool
	// Workspace, when non-nil, supplies reusable scratch buffers for the
	// scheduler's per-stage placement programs. Nil means
	// allocate-per-call.
	Workspace *Workspace
	// HierarchicalSites is the topology size at which per-stage placement
	// switches from the exact solver to the hierarchical two-level
	// planner (placement.SolveHierarchical). 0 selects
	// placement.DefaultHierarchicalThreshold; negative forces the exact
	// solver at every size.
	HierarchicalSites int
}

func (cfg *ScheduleConfig) withDefaults(top *topology.Topology) ScheduleConfig {
	out := *cfg
	if out.Alpha == 0 {
		out.Alpha = 0.8
	}
	if out.DefaultParallelism == 0 {
		out.DefaultParallelism = 1
	}
	if out.RateFactor == 0 {
		out.RateFactor = 1
	}
	if out.Bandwidth == nil {
		out.Bandwidth = func(from, to topology.SiteID) float64 {
			return top.BaseBandwidth(from, to).BytesPerSec()
		}
	}
	return out
}

func (cfg *ScheduleConfig) parallelismFor(op *plan.Operator) int {
	if op.PinnedSite != plan.NoSite {
		return 1 // pinned endpoints run a single task at their site
	}
	if p, ok := cfg.Parallelism[op.ID]; ok {
		return p
	}
	return cfg.DefaultParallelism
}

// Schedule places every stage of the plan, one stage at a time in
// topological order using the upstream deployments (the initial-placement
// strategy of prior WAN-aware schedulers that §4.1 builds on), solving the
// placement program per stage. It mutates p's stages and returns an error
// (wrapping placement.ErrInfeasible) if any stage cannot be placed.
func Schedule(p *Plan, top *topology.Topology, cfg ScheduleConfig) error {
	c := cfg.withDefaults(top)
	ws := c.Workspace
	if ws == nil {
		ws = &Workspace{}
		c.Workspace = ws
	}
	order, err := p.StageIDs()
	if err != nil {
		return err
	}
	if err := p.Graph.ExpectedRatesBuf(c.RateFactor, &ws.rates); err != nil {
		return err
	}
	outBytes := ws.rates.Bytes

	avail := ws.avail[:0]
	for s := 0; s < top.N(); s++ {
		avail = append(avail, top.Slots(topology.SiteID(s)))
	}
	ws.avail = avail
	// Reserve the slots pinned stages will need, so that free stages
	// scheduled earlier in topological order cannot exhaust them.
	for _, id := range order {
		op := p.Stages[id].Op
		if op.PinnedSite != plan.NoSite {
			avail[op.PinnedSite] -= c.parallelismFor(op)
		}
	}

	for _, id := range order {
		st := p.Stages[id]
		par := c.parallelismFor(st.Op)
		if par < 1 {
			return fmt.Errorf("physical: stage %q parallelism %d < 1", st.Op.Name, par)
		}
		if st.Op.PinnedSite != plan.NoSite {
			avail[st.Op.PinnedSite] += par // release this stage's own reservation
		}
		pl, err := solveStage(p, id, par, avail, top, c, outBytes, outBytes[id], nil)
		if err != nil {
			return fmt.Errorf("schedule stage %q: %w", st.Op.Name, err)
		}
		st.Sites = appendPlacement(st.Sites[:0], pl)
		for s, n := range pl.TasksPerSite {
			avail[s] -= n
		}
	}
	return nil
}

// solveStage builds and solves the placement problem for one stage given
// the current deployments of its neighbours. downstreamOverride, when
// non-nil, supplies downstream endpoints (used by re-assignment, which
// considers both sides); during initial scheduling downstream stages are
// not yet placed and the side is empty.
func solveStage(
	p *Plan,
	id plan.OpID,
	parallelism int,
	avail []int,
	top *topology.Topology,
	cfg ScheduleConfig,
	outBytes []float64,
	outputBytes float64,
	downstreamOverride []placement.Endpoint,
) (*placement.Placement, error) {
	st := p.Stages[id]
	ws := cfg.Workspace

	ups := ws.ups[:0]
	var inBytes float64
	for _, u := range p.Graph.UpstreamView(id) {
		uStage := p.Stages[u]
		share := outBytes[u]
		inBytes += share
		ws.eps, ws.tmp = uStage.AppendEndpoints(ws.eps[:0], ws.tmp)
		for _, ep := range ws.eps {
			ups = append(ups, placement.Endpoint{Site: ep.Site, Weight: ep.Weight * share})
		}
	}
	ws.ups = ups
	// Normalize upstream weights to fractions of the stage input.
	if inBytes > 0 {
		for i := range ups {
			ups[i].Weight /= inBytes
		}
	}

	downs := downstreamOverride

	pinned := plan.NoSite
	if st.Op.PinnedSite != plan.NoSite {
		pinned = st.Op.PinnedSite
	}

	ws.pr = placement.Problem{
		Sites:             top.N(),
		Parallelism:       parallelism,
		AvailableSlots:    avail,
		Upstream:          ups,
		Downstream:        downs,
		InputBytesPerSec:  inBytes,
		OutputBytesPerSec: outputBytes,
		Alpha:             cfg.Alpha,
		Latency:           ws.latencyFn(top),
		Bandwidth:         cfg.Bandwidth,
		Conservative:      cfg.Conservative,
		Pinned:            pinned,
	}
	return ws.SolvePlacement(&ws.pr, top, cfg.HierarchicalSites)
}

// appendPlacement converts p[s] counts into a site list appended to dst,
// ascending by site, deterministic.
func appendPlacement(dst []topology.SiteID, pl *placement.Placement) []topology.SiteID {
	for s, n := range pl.TasksPerSite {
		for i := 0; i < n; i++ {
			dst = append(dst, topology.SiteID(s))
		}
	}
	return dst
}

// ReassignStage re-solves the placement of a single already-running stage
// considering BOTH its upstream and downstream deployments (§4.1) at the
// stage's current parallelism. freeSlots must count the stage's own slots
// as available. It returns the new placement without mutating the plan.
func ReassignStage(
	p *Plan,
	id plan.OpID,
	top *topology.Topology,
	cfg ScheduleConfig,
	freeSlots []int,
) (*placement.Placement, error) {
	c := cfg.withDefaults(top)
	ws := c.Workspace
	if ws == nil {
		ws = &Workspace{}
		c.Workspace = ws
	}
	if err := p.Graph.ExpectedRatesBuf(c.RateFactor, &ws.rates); err != nil {
		return nil, err
	}
	outBytes := ws.rates.Bytes
	st := p.Stages[id]

	// Downstream endpoints weighted by each consumer's share of this
	// stage's total outbound traffic. Every consumer receives the full
	// output stream, so the stage's total outbound rate is
	// outBytes × #consumers and each consumer endpoint carries its task
	// distribution's fraction of one stream.
	downs := ws.toEPs[:0]
	consumers := p.Graph.DownstreamView(id)
	for _, d := range consumers {
		ws.eps, ws.tmp = p.Stages[d].AppendEndpoints(ws.eps[:0], ws.tmp)
		for _, ep := range ws.eps {
			downs = append(downs, placement.Endpoint{
				Site:   ep.Site,
				Weight: ep.Weight / float64(len(consumers)),
			})
		}
	}
	ws.toEPs = downs
	outputBytes := outBytes[id] * float64(len(consumers))

	return solveStage(p, id, st.Parallelism(), freeSlots, top, c, outBytes, outputBytes, downs)
}
