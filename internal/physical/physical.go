// Package physical models physical query plans: each logical operator
// becomes an execution stage running `parallelism` tasks, each task bound
// to one computing slot at one site. The package also provides WASP's
// WAN-aware initial scheduler (one stage at a time in topological order,
// §4.1) and the joint logical/physical planner used by query re-planning
// (§4.3).
package physical

import (
	"fmt"
	"slices"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/placement"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// TaskID identifies one task: the Index-th parallel instance of the stage
// executing logical operator Op.
type TaskID struct {
	Op    plan.OpID
	Index int
}

// String renders e.g. "op3#1".
func (t TaskID) String() string { return fmt.Sprintf("op%d#%d", t.Op, t.Index) }

// Stage is the physical execution of one logical operator.
type Stage struct {
	// Op points at the operator in the plan's logical graph.
	Op *plan.Operator
	// Sites lists each task's site; len(Sites) is the stage parallelism.
	Sites []topology.SiteID
}

// Parallelism returns the stage's task count.
func (s *Stage) Parallelism() int { return len(s.Sites) }

// TasksPerSite aggregates the stage's placement as p[s].
func (s *Stage) TasksPerSite(numSites int) []int {
	out := make([]int, numSites)
	for _, site := range s.Sites {
		out[site]++
	}
	return out
}

// DistinctSites returns the sites hosting at least one task, ascending.
func (s *Stage) DistinctSites() []topology.SiteID {
	seen := make(map[topology.SiteID]bool)
	for _, site := range s.Sites {
		seen[site] = true
	}
	return detutil.SortedKeys(seen)
}

// Plan is a physical plan over a logical graph.
type Plan struct {
	Graph  *plan.Graph
	Stages map[plan.OpID]*Stage
}

// FromLogical creates an unplaced physical plan: one stage per logical
// operator, all with empty placements. Use Schedule to place tasks.
func FromLogical(g *plan.Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Graph: g, Stages: make(map[plan.OpID]*Stage, g.Len())}
	for _, id := range g.OperatorIDs() {
		p.Stages[id] = &Stage{Op: g.Operator(id)}
	}
	return p, nil
}

// StageIDs returns the plan's operator IDs in topological order.
func (p *Plan) StageIDs() ([]plan.OpID, error) { return p.Graph.TopoOrder() }

// SlotsUsed returns the number of slots occupied per site across all
// stages.
func (p *Plan) SlotsUsed(numSites int) []int {
	used := make([]int, numSites)
	for _, st := range p.Stages {
		for _, site := range st.Sites {
			used[site]++
		}
	}
	return used
}

// TotalTasks returns the number of tasks across all stages.
func (p *Plan) TotalTasks() int {
	total := 0
	for _, st := range p.Stages {
		total += len(st.Sites)
	}
	return total
}

// Validate checks the plan against a topology: every stage placed, every
// site within slot capacity, pinned stages at their pinned site.
func (p *Plan) Validate(top *topology.Topology) error {
	for id, st := range p.Stages {
		if len(st.Sites) == 0 {
			return fmt.Errorf("physical: stage %q (op %d) not placed", st.Op.Name, id)
		}
		if st.Op.PinnedSite != plan.NoSite {
			for _, site := range st.Sites {
				if site != st.Op.PinnedSite {
					return fmt.Errorf("physical: pinned stage %q has task at site %d", st.Op.Name, site)
				}
			}
		}
		for _, site := range st.Sites {
			if int(site) < 0 || int(site) >= top.N() {
				return fmt.Errorf("physical: stage %q task at unknown site %d", st.Op.Name, site)
			}
		}
	}
	used := p.SlotsUsed(top.N())
	for s, n := range used {
		if n > top.Slots(topology.SiteID(s)) {
			return fmt.Errorf("physical: site %d over capacity: %d > %d slots", s, n, top.Slots(topology.SiteID(s)))
		}
	}
	return nil
}

// Clone deep-copies the plan (sharing the logical graph's operator structs
// via a cloned graph).
func (p *Plan) Clone() *Plan {
	g := p.Graph.Clone()
	c := &Plan{Graph: g, Stages: make(map[plan.OpID]*Stage, len(p.Stages))}
	for id, st := range p.Stages {
		c.Stages[id] = &Stage{
			Op:    g.Operator(id),
			Sites: append([]topology.SiteID(nil), st.Sites...),
		}
	}
	return c
}

// Endpoints summarises a stage's placement as weighted per-site endpoints,
// weighting each site by its share of the stage's tasks (even event
// partitioning, §7).
func (s *Stage) Endpoints() []placement.Endpoint {
	out, _ := s.AppendEndpoints(nil, nil)
	return out
}

// AppendEndpoints is Endpoints with caller-provided scratch: endpoints are
// appended to dst and the site-sorting buffer is grown from tmp. Both are
// returned for reuse. The planner calls this per stage pair per variant
// per round; the scratch keeps it allocation-free at steady state.
func (s *Stage) AppendEndpoints(dst []placement.Endpoint, tmp []topology.SiteID) ([]placement.Endpoint, []topology.SiteID) {
	if len(s.Sites) == 0 {
		return dst, tmp
	}
	tmp = append(tmp[:0], s.Sites...)
	slices.Sort(tmp)
	total := float64(len(tmp))
	for i := 0; i < len(tmp); {
		j := i
		for j < len(tmp) && tmp[j] == tmp[i] {
			j++
		}
		dst = append(dst, placement.Endpoint{Site: tmp[i], Weight: float64(j-i) / total})
		i = j
	}
	return dst, tmp
}
