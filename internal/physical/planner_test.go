package physical

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// fig5Topology builds 4 sites (A=0, B=1, C=2, D=3) with asymmetric rates
// echoing the paper's Figure 5 example.
func fig5Topology(t *testing.T) *topology.Topology {
	t.Helper()
	const n = 4
	sites := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sites[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: 8}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 10000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 800 // plenty by default
			lat[i][j] = 50 * time.Millisecond
		}
	}
	top, err := topology.New(sites, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// fig5Query: 4 sources with rates (in MB/s of output) 40, 30, 20, 10 at
// sites A..D, full hash join (commutative), sink at A.
func fig5Query(t *testing.T) (*plan.Graph, *plan.CombineSpec) {
	t.Helper()
	g := plan.NewGraph()
	var inputs []plan.OpID
	rates := []float64{40e3, 30e3, 20e3, 10e3} // events/s, 1000-byte events
	for i, r := range rates {
		id := g.AddOperator(plan.Operator{
			Name: "src", Kind: plan.KindSource, PinnedSite: topology.SiteID(i),
			Selectivity: 1, OutEventBytes: 1000, SourceRate: r,
		})
		inputs = append(inputs, id)
	}
	sink := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 0})
	spec := &plan.CombineSpec{
		Inputs: inputs,
		Output: sink,
		Template: plan.Operator{
			Name: "join", Kind: plan.KindJoin, Stateful: true, Splittable: true,
			Selectivity: 0.1, OutEventBytes: 1000, CostPerEvent: 2, StateBytes: 60e6,
		},
	}
	return g, spec
}

func TestPlanQueryFindsFeasibleBest(t *testing.T) {
	top := fig5Topology(t)
	g, spec := fig5Query(t)
	best, all, err := PlanQuery(g, spec, top, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || best == nil {
		t.Fatal("no candidates")
	}
	// All 15 orders over 4 inputs should be schedulable here.
	if len(all) != 15 {
		t.Fatalf("candidates = %d, want 15", len(all))
	}
	if err := best.Plan.Validate(top); err != nil {
		t.Fatalf("best plan invalid: %v", err)
	}
	// Candidates are sorted by cost.
	for i := 1; i < len(all); i++ {
		if all[i].Cost < all[i-1].Cost {
			t.Fatal("candidates not sorted by cost")
		}
	}
	// The optimal order joins small streams first: the best plan should
	// not ship the largest source (site 0, 40 MB/s) across more hops than
	// necessary — its WAN consumption must be within the candidate range
	// and strictly the minimum cost.
	if best.Cost > all[len(all)-1].Cost {
		t.Fatal("best is not minimal")
	}
}

func TestPlanQueryAvoidsConstrainedLink(t *testing.T) {
	top := fig5Topology(t)
	g, spec := fig5Query(t)
	bestBefore, _, err := PlanQuery(g, spec, top, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Now rebuild a topology where every link out of site 2 (C) is
	// heavily constrained; plans shipping C's stream over the WAN early
	// become infeasible or costly, so the chosen tree must change or at
	// least remain feasible (Fig 5 narrative).
	const n = 4
	sites := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sites[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: 8}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 10000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = 800
			if i == 2 {
				// C's outbound links fit only reduced (post-combine)
				// streams: 40 Mbps = 5 MB/s, α·5 = 4 MB/s. C's raw
				// 20 MB/s stream cannot leave, its combined 3 MB/s can.
				bw[i][j] = 40
			}
			lat[i][j] = 50 * time.Millisecond
		}
	}
	constrained, err := topology.New(sites, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	best, all, err := PlanQuery(g, spec, constrained, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The joint planner compensates for the constrained link: in every
	// schedulable candidate, the combine consuming C's raw stream runs
	// at site 2, so only the reduced (post-combine) stream crosses C's
	// constrained outbound links.
	for _, c := range all {
		joinWithC := findCombineConsuming(c.Variant, 2)
		st := c.Plan.Stages[joinWithC]
		for _, site := range st.Sites {
			if site != 2 {
				t.Fatalf("combine over C's stream placed at %v; C's outbound is constrained", st.Sites)
			}
		}
	}
	// And the overall best remains feasible and WAN-aware: its WAN use
	// cannot exceed what the unconstrained optimum used by more than
	// C's raw stream rate (sanity bound).
	if best.WANBytesPerSec > bestBefore.WANBytesPerSec+20e6 {
		t.Fatalf("constrained best WAN %v wildly above unconstrained %v",
			best.WANBytesPerSec, bestBefore.WANBytesPerSec)
	}
}

// findCombineConsuming returns the smallest combine node whose LeafSet
// includes the given leaf.
func findCombineConsuming(v *plan.Variant, leaf int) plan.OpID {
	bestID := plan.OpID(-1)
	bestCount := 1 << 30
	for id, set := range v.CombineNodes {
		if set.Has(leaf) && set.Count() < bestCount {
			bestID = id
			bestCount = set.Count()
		}
	}
	return bestID
}

func TestReplanQueryAdmissibility(t *testing.T) {
	top := fig5Topology(t)
	g, spec := fig5Query(t)
	// Current plan: balanced ((0+1)+(2+3)).
	current, err := spec.Expand(g, plan.BalancedTree(4))
	if err != nil {
		t.Fatal(err)
	}
	best, all, err := ReplanQuery(g, spec, current, true, top, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Admissible = contains nodes {0,1} and {2,3}: only the balanced
	// structure (up to sibling order, which dedups to one tree shape in
	// our canonical enumeration... both child orders count once) — the
	// enumeration yields exactly the trees containing both sub-plans.
	for _, c := range all {
		if !c.Variant.AdmissibleFrom(current) {
			t.Fatal("inadmissible candidate returned")
		}
	}
	if best == nil {
		t.Fatal("no admissible candidate")
	}
	// Non-admissible mode returns strictly more candidates.
	_, allFree, err := ReplanQuery(g, spec, current, false, top, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(allFree) <= len(all) {
		t.Fatalf("unrestricted re-plan found %d <= restricted %d", len(allFree), len(all))
	}
}

func TestEstimateCostCountsOnlyCrossSite(t *testing.T) {
	top := testTopology(t, 4)
	g := pipelineGraph(t)
	p, _ := FromLogical(g)
	if err := Schedule(p, top, ScheduleConfig{}); err != nil {
		t.Fatal(err)
	}
	delayVol, wan, err := EstimateCost(p, top, 1)
	if err != nil {
		t.Fatal(err)
	}
	// src(0)→map(0) is intra-site; map(0)→sink(1) crosses: 10000 ev/s ×
	// 100 B = 1e6 B/s over a 50 ms link.
	if wan != 1e6 {
		t.Fatalf("wan = %v, want 1e6", wan)
	}
	want := 1e6 * 0.05
	if delayVol < want*0.999 || delayVol > want*1.001 {
		t.Fatalf("delayVolume = %v, want ~%v", delayVol, want)
	}
}
