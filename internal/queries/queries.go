// Package queries defines the paper's three evaluation queries (Table 3):
//
//   - Advertising Campaign (YSB): stateful windowed campaign counting
//     with all I/O replaced by in-memory operations (as in §8.3);
//   - Top-K Popular Topics: stateful 30 s windowed top-10 topic detection
//     per country over a geo-tagged tweet stream;
//   - Events of Interest: a stateless multi-attribute tweet filter.
//
// Each query is available in two forms sharing one model: a logical plan
// (plan.Graph + re-orderable combine group) for flow-mode wide-area
// experiments, and a record-mode stream.Pipeline for exact-semantics
// execution, examples, and quality measurements.
package queries

import (
	"time"

	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// Query is one evaluation query in logical-plan form.
type Query struct {
	Name string
	// Graph is the logically optimized base graph (filters already
	// pushed to the sources).
	Graph *plan.Graph
	// Spec is the re-orderable combine group for query re-planning;
	// nil when the query has no such group.
	Spec *plan.CombineSpec
	// SourceOps lists the source operator IDs, in site order.
	SourceOps []plan.OpID
	// SinkOp is the query sink.
	SinkOp plan.OpID
	// Stateful reports whether the query maintains operator state.
	Stateful bool

	// Table 3 metadata.
	StateDesc    string
	OperatorDesc string
	DatasetDesc  string
}

// Config parameterises query construction.
type Config struct {
	// SourceSites hosts one source each (the paper uses the 8 edge
	// sites).
	SourceSites []topology.SiteID
	// SinkSite hosts the sink (typically a data center near the Job
	// Manager).
	SinkSite topology.SiteID
	// RatePerSource is the initial per-source event rate (paper: 10000
	// events/s, §8.4).
	RatePerSource float64
	// RateForSite, when non-nil, supplies each source site's initial
	// rate instead of the flat RatePerSource — planet-scale topologies
	// derive it from the site's simulated user population.
	RateForSite func(topology.SiteID) float64
}

func (c Config) withDefaults() Config {
	if c.RatePerSource == 0 {
		c.RatePerSource = 10000
	}
	return c
}

// rateFor returns the initial source rate for one site.
func (c Config) rateFor(site topology.SiteID) float64 {
	if c.RateForSite != nil {
		return c.RateForSite(site)
	}
	return c.RatePerSource
}

// YSBCampaign builds the YSB Advertising Campaign query: per-site
// source → filter(view, σ=1/3) → project → join with the in-memory
// campaign table, then a distributed 10 s windowed count per campaign
// (the re-orderable combine group), feeding the sink.
//
// State: the windowed campaign counters (<10 MB, Table 3).
func YSBCampaign(cfg Config) *Query {
	c := cfg.withDefaults()
	g := plan.NewGraph()
	var inputs []plan.OpID
	var sources []plan.OpID
	for _, site := range c.SourceSites {
		src := g.AddOperator(plan.Operator{
			Name: "ysb-src", Kind: plan.KindSource, PinnedSite: site,
			Selectivity: 1, OutEventBytes: 180, SourceRate: c.rateFor(site),
		})
		// filter(view) → project → join(campaign) chained into one task
		// (stateless operator chaining, as Flink does): σ = 1/3 views,
		// compact 64 B projected+joined tuples.
		chain := g.AddOperator(plan.Operator{
			Name: "filter-project-join", Kind: plan.KindMap, Splittable: true,
			Selectivity: 1.0 / 3, OutEventBytes: 96, CostPerEvent: 3,
		})
		g.MustConnect(src, chain)
		sources = append(sources, src)
		inputs = append(inputs, chain)
	}
	sink := g.AddOperator(plan.Operator{Name: "ysb-sink", Kind: plan.KindSink, PinnedSite: c.SinkSite})
	spec := &plan.CombineSpec{
		Inputs: inputs,
		Output: sink,
		Template: plan.Operator{
			Name: "count10s", Kind: plan.KindAggregate, Stateful: true, Splittable: true,
			// 100 campaigns per 10 s window against the (combined)
			// incoming view stream: tiny output rate.
			Selectivity: 0.004, OutEventBytes: 40, CostPerEvent: 2,
			StateBytes: 8e6, Window: 10 * time.Second,
		},
	}
	return &Query{
		Name:         "ysb-campaign",
		Graph:        g,
		Spec:         spec,
		SourceOps:    sources,
		SinkOp:       sink,
		Stateful:     true,
		StateDesc:    "<10 MB",
		OperatorDesc: "filter, map, window, join",
		DatasetDesc:  "YSB synthetic data",
	}
}

// TopKTopics builds the Top-K Popular Topics query: per-site
// source → filter(geo-tagged, σ=0.9) → map(extract topic), then a
// distributed 30 s windowed per-country topic count (the combine group,
// ~100 MB of state), a final top-10 selection, and the sink.
func TopKTopics(cfg Config) *Query {
	c := cfg.withDefaults()
	g := plan.NewGraph()
	var inputs []plan.OpID
	var sources []plan.OpID
	for _, site := range c.SourceSites {
		src := g.AddOperator(plan.Operator{
			Name: "tweet-src", Kind: plan.KindSource, PinnedSite: site,
			Selectivity: 1, OutEventBytes: 240, SourceRate: c.rateFor(site),
		})
		// filter(geo-tagged) → map(extract topic) chained into one task:
		// σ = 0.9, compact 24 B (country, topic) tuples.
		chain := g.AddOperator(plan.Operator{
			Name: "filter-extract", Kind: plan.KindMap, Splittable: true,
			Selectivity: 0.9, OutEventBytes: 32, CostPerEvent: 3,
		})
		g.MustConnect(src, chain)
		sources = append(sources, src)
		inputs = append(inputs, chain)
	}
	topk := g.AddOperator(plan.Operator{
		Name: "topk-finalize", Kind: plan.KindTopK, Stateful: true, Splittable: false,
		// The finalizer selects the top-10 from already-windowed partial
		// counts; it adds processing cost but no further window hold.
		Selectivity: 1, OutEventBytes: 400, CostPerEvent: 1,
		StateBytes: 4e6,
	})
	sink := g.AddOperator(plan.Operator{Name: "topk-sink", Kind: plan.KindSink, PinnedSite: c.SinkSite})
	g.MustConnect(topk, sink)
	spec := &plan.CombineSpec{
		Inputs: inputs,
		Output: topk,
		Template: plan.Operator{
			Name: "count-topics", Kind: plan.KindAggregate, Stateful: true, Splittable: true,
			// Per 30 s window: ~8 countries × topic counts; partial
			// aggregation strongly reduces the stream.
			Selectivity: 0.02, OutEventBytes: 56, CostPerEvent: 2,
			StateBytes: 100e6, Window: 30 * time.Second,
		},
	}
	return &Query{
		Name:         "topk-topics",
		Graph:        g,
		Spec:         spec,
		SourceOps:    sources,
		SinkOp:       topk, // the finalizer consumes the combine output
		Stateful:     true,
		StateDesc:    "~100 MB",
		OperatorDesc: "filter, map, union, window, reduce",
		DatasetDesc:  "Twitter trace (scaled)",
	}
}

// EventsOfInterest builds the stateless Events of Interest query:
// per-site source → filter(attributes, σ=0.1) → project, unioned (the
// stateless combine group) into the sink.
func EventsOfInterest(cfg Config) *Query {
	c := cfg.withDefaults()
	g := plan.NewGraph()
	var inputs []plan.OpID
	var sources []plan.OpID
	for _, site := range c.SourceSites {
		src := g.AddOperator(plan.Operator{
			Name: "tweet-src", Kind: plan.KindSource, PinnedSite: site,
			Selectivity: 1, OutEventBytes: 240, SourceRate: c.rateFor(site),
		})
		// filter(attributes) → project chained into one task: σ = 0.1,
		// 96 B projected tuples.
		chain := g.AddOperator(plan.Operator{
			Name: "filter-project", Kind: plan.KindFilter, Splittable: true,
			Selectivity: 0.12, OutEventBytes: 240, CostPerEvent: 2,
		})
		g.MustConnect(src, chain)
		sources = append(sources, src)
		inputs = append(inputs, chain)
	}
	sink := g.AddOperator(plan.Operator{Name: "eoi-sink", Kind: plan.KindSink, PinnedSite: c.SinkSite})
	spec := &plan.CombineSpec{
		Inputs: inputs,
		Output: sink,
		Template: plan.Operator{
			Name: "union", Kind: plan.KindUnion, Stateful: false, Splittable: true,
			Selectivity: 1, OutEventBytes: 240, CostPerEvent: 0.5,
		},
	}
	return &Query{
		Name:         "events-of-interest",
		Graph:        g,
		Spec:         spec,
		SourceOps:    sources,
		SinkOp:       sink,
		Stateful:     false,
		StateDesc:    "0 MB",
		OperatorDesc: "filter, union, project",
		DatasetDesc:  "Twitter trace (scaled)",
	}
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Application string
	State       string
	Operators   string
	Dataset     string
}

// Table3 returns the query-details table (Table 3) for the three
// evaluation queries.
func Table3() []Table3Row {
	return []Table3Row{
		{Application: "Advertising Campaign", State: "<10 MB", Operators: "filter, map, window, join", Dataset: "YSB synthetic data"},
		{Application: "Top-K Topics", State: "~100 MB", Operators: "filter, map, union, window, reduce", Dataset: "Twitter trace (scaled)"},
		{Application: "Events of Interest", State: "0 MB", Operators: "filter, union, project", Dataset: "Twitter trace (scaled)"},
	}
}
