package queries

import (
	"time"

	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/workload"
)

// Record-mode (exact-semantics) pipelines for the three queries, built on
// the internal/stream engine. These are what the examples run and what the
// quality/accuracy comparisons execute.

// RecordPipeline bundles a record-mode pipeline with its source and sink
// node handles.
type RecordPipeline struct {
	Pipeline *stream.Pipeline
	Sources  []stream.NodeID
	Sink     stream.NodeID
}

// BuildYSBRecord builds the record-mode Advertising Campaign pipeline:
// filter(view) → project → join(campaign table, in-memory) → 10 s windowed
// count per campaign. Inputs are workload.AdEvent streams keyed by
// campaign.
func BuildYSBRecord(nSources int, window time.Duration) *RecordPipeline {
	if window <= 0 {
		window = 10 * time.Second
	}
	p := stream.NewPipeline()
	var srcs []stream.NodeID
	union := p.AddNode("union", &stream.Union{})
	for i := 0; i < nSources; i++ {
		src := p.AddSource("ysb-src")
		fil := p.AddNode("filter-views", &stream.Filter{
			Pred: func(e stream.Event) bool {
				return e.Value.(workload.AdEvent).EventType == workload.AdView
			},
		})
		// The "join" with the static campaign table resolves ad → campaign
		// in memory (the generator embeds the mapping; a real table lookup
		// would be equivalent).
		join := p.AddNode("join-campaign", &stream.Map{
			Fn: func(e stream.Event) stream.Event {
				ad := e.Value.(workload.AdEvent)
				return stream.Event{Time: e.Time, Key: e.Key, Value: ad.CampaignID}
			},
		})
		p.MustConnect(src, fil, 0)
		p.MustConnect(fil, join, 0)
		p.MustConnect(join, union, 0)
		srcs = append(srcs, src)
	}
	cnt := p.AddNode("count10s", stream.Count(window))
	sink := p.AddSink("ysb-sink")
	p.MustConnect(union, cnt, 0)
	p.MustConnect(cnt, sink, 0)
	return &RecordPipeline{Pipeline: p, Sources: srcs, Sink: sink}
}

// BuildTopKRecord builds the record-mode Top-K Popular Topics pipeline:
// filter(geo-tagged) → 30 s windowed top-k topics per country. Inputs are
// workload.Tweet streams keyed by country.
func BuildTopKRecord(nSources, k int, window time.Duration) *RecordPipeline {
	if window <= 0 {
		window = 30 * time.Second
	}
	if k <= 0 {
		k = 10
	}
	p := stream.NewPipeline()
	var srcs []stream.NodeID
	union := p.AddNode("union", &stream.Union{})
	for i := 0; i < nSources; i++ {
		src := p.AddSource("tweet-src")
		fil := p.AddNode("filter-geo", &stream.Filter{
			Pred: func(e stream.Event) bool {
				return e.Value.(workload.Tweet).Country != ""
			},
		})
		p.MustConnect(src, fil, 0)
		p.MustConnect(fil, union, 0)
		srcs = append(srcs, src)
	}
	topk := p.AddNode("topk", &stream.WindowTopK{
		Size: window,
		K:    k,
		TopicFn: func(e stream.Event) string {
			return e.Value.(workload.Tweet).Topic
		},
	})
	sink := p.AddSink("topk-sink")
	p.MustConnect(union, topk, 0)
	p.MustConnect(topk, sink, 0)
	return &RecordPipeline{Pipeline: p, Sources: srcs, Sink: sink}
}

// BuildEOIRecord builds the record-mode Events of Interest pipeline:
// filter tweets by language and topic prefix, project to a compact tuple.
func BuildEOIRecord(nSources int, lang string, topicPrefix string) *RecordPipeline {
	p := stream.NewPipeline()
	var srcs []stream.NodeID
	union := p.AddNode("union", &stream.Union{})
	for i := 0; i < nSources; i++ {
		src := p.AddSource("tweet-src")
		fil := p.AddNode("filter-interest", &stream.Filter{
			Pred: func(e stream.Event) bool {
				tw := e.Value.(workload.Tweet)
				if lang != "" && tw.Lang != lang {
					return false
				}
				return topicPrefix == "" || hasPrefix(tw.Topic, topicPrefix)
			},
		})
		p.MustConnect(src, fil, 0)
		p.MustConnect(fil, union, 0)
		srcs = append(srcs, src)
	}
	proj := p.AddNode("project", &stream.Map{
		Fn: func(e stream.Event) stream.Event {
			tw := e.Value.(workload.Tweet)
			return stream.Event{Time: e.Time, Key: tw.Country, Value: tw.Topic}
		},
	})
	sink := p.AddSink("eoi-sink")
	p.MustConnect(union, proj, 0)
	p.MustConnect(proj, sink, 0)
	return &RecordPipeline{Pipeline: p, Sources: srcs, Sink: sink}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
