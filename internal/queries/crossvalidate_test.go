package queries

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/workload"
)

// Cross-validation between the two execution modes: the flow-mode
// experiments trust the logical plans' selectivity model; here we measure
// the *actual* record-mode reduction of each query on real workloads and
// check the model is calibrated.

func TestYSBModelSelectivityMatchesRecordMode(t *testing.T) {
	events := workload.GenerateYSB(workload.YSBConfig{
		Seed: 17, Rate: 4000, Duration: 30 * time.Second,
	})
	rp := BuildYSBRecord(4, 10*time.Second)
	inputs := stream.Inputs{}
	for i, e := range workload.YSBStream(events) {
		src := rp.Sources[i%4]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	// The flow-mode chain models σ = 1/3 (view filter); measure it.
	var views int
	for _, e := range events {
		if e.EventType == workload.AdView {
			views++
		}
	}
	measured := float64(views) / float64(len(events))
	q := YSBCampaign(testConfig())
	modeled := q.Graph.Operator(q.Graph.Downstream(q.SourceOps[0])[0]).Selectivity
	if math.Abs(measured-modeled) > 0.02 {
		t.Fatalf("YSB chain selectivity: record-mode %.3f vs flow model %.3f", measured, modeled)
	}
}

func TestTopKModelOutputRateMatchesRecordMode(t *testing.T) {
	const (
		rate     = 8000.0
		duration = 120 * time.Second
		window   = 30 * time.Second
	)
	tweets := workload.GenerateTweets(workload.TwitterConfig{
		Seed: 19, Rate: rate, Duration: duration,
	})
	rp := BuildTopKRecord(4, 10, window)
	inputs := stream.Inputs{}
	for i, e := range workload.TweetStream(tweets) {
		src := rp.Sources[i%4]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	out := rp.Pipeline.SinkEvents(rp.Sink)
	// Record mode: one result per (window, country). Flow mode models the
	// aggregation as a strong reduction (combine σ=0.02 cascaded); the
	// record-mode ratio should be of the same order or stronger — the
	// fluid model must not *underestimate* the traffic it sends on.
	recordRatio := float64(len(out)) / float64(len(tweets))
	if recordRatio > 0.02 {
		t.Fatalf("record-mode reduction %.5f weaker than the flow model's 0.02", recordRatio)
	}
	// Sanity: every 30 s window yields at most 8 (countries) results.
	windows := int(duration / window)
	if len(out) > windows*8 {
		t.Fatalf("outputs %d exceed windows(%d)×countries(8)", len(out), windows)
	}
}

func TestEOIModelSelectivityMatchesRecordMode(t *testing.T) {
	tweets := workload.GenerateTweets(workload.TwitterConfig{
		Seed: 23, Rate: 5000, Duration: 30 * time.Second, Topics: 100,
	})
	// The flow model's filter-project chain uses σ = 0.12; pick a
	// record-mode predicate with a comparable pass rate: English tweets
	// carry weight ~0.40 (us+gb), topic prefix "t0" matches topics
	// t00..t09 of the Zipf vocabulary — measure and compare orders.
	rp := BuildEOIRecord(4, "en", "t0")
	inputs := stream.Inputs{}
	for i, e := range workload.TweetStream(tweets) {
		src := rp.Sources[i%4]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	measured := float64(len(rp.Pipeline.SinkEvents(rp.Sink))) / float64(len(tweets))
	// Zipf concentration puts most mass on t00xx topics; the English
	// share is ~40%: measured pass rate lands in the same regime the
	// model's 0.12 represents (well under 1, well over 0.01).
	if measured < 0.01 || measured > 0.6 {
		t.Fatalf("EOI record-mode selectivity %.4f out of the modelled regime", measured)
	}
}
