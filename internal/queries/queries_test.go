package queries

import (
	"reflect"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/stream"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
	"github.com/wasp-stream/wasp/internal/workload"
)

func testConfig() Config {
	return Config{
		SourceSites:   []topology.SiteID{8, 9, 10, 11, 12, 13, 14, 15},
		SinkSite:      0,
		RatePerSource: 10000,
	}
}

func TestQueriesValidateAndSchedule(t *testing.T) {
	top := topology.Generate(topology.DefaultGenConfig(1))
	builders := map[string]func(Config) *Query{
		"ysb":  YSBCampaign,
		"topk": TopKTopics,
		"eoi":  EventsOfInterest,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			q := build(testConfig())
			// The base graph is completed by combine expansion; validity
			// of expanded variants is checked through PlanQuery below.
			if len(q.SourceOps) != 8 {
				t.Fatalf("sources = %d, want 8", len(q.SourceOps))
			}
			if q.Spec == nil {
				t.Fatal("query has no combine spec")
			}
			best, all, err := physical.PlanQuery(q.Graph, q.Spec, top, physical.PlannerConfig{
				ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8},
				MaxVariants:    40,
			})
			if err != nil {
				t.Fatalf("PlanQuery: %v", err)
			}
			if len(all) == 0 {
				t.Fatal("no candidates")
			}
			if err := best.Plan.Validate(top); err != nil {
				t.Fatalf("best plan invalid: %v", err)
			}
		})
	}
}

func TestQueryStatefulness(t *testing.T) {
	cfg := testConfig()
	if !YSBCampaign(cfg).Stateful || !TopKTopics(cfg).Stateful {
		t.Fatal("stateful queries misreported")
	}
	if EventsOfInterest(cfg).Stateful {
		t.Fatal("events-of-interest reported stateful")
	}
	if EventsOfInterest(cfg).Spec.Template.Stateful {
		t.Fatal("EOI combine template stateful")
	}
}

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].State != "<10 MB" || rows[1].State != "~100 MB" || rows[2].State != "0 MB" {
		t.Fatalf("state column mismatch: %+v", rows)
	}
}

func TestYSBRecordCountsViewsPerCampaign(t *testing.T) {
	events := workload.GenerateYSB(workload.YSBConfig{
		Seed: 3, Rate: 2000, Duration: 20 * time.Second, Campaigns: 10,
	})
	rp := BuildYSBRecord(2, 10*time.Second)
	// Split events across the two sources round-robin (keeping order).
	inputs := stream.Inputs{}
	for i, e := range workload.YSBStream(events) {
		src := rp.Sources[i%2]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	out := rp.Pipeline.SinkEvents(rp.Sink)

	// Oracle: count views per (window, campaign).
	type wc struct {
		win      vclock.Time
		campaign string
	}
	oracle := make(map[wc]int64)
	for _, e := range events {
		if e.EventType != workload.AdView {
			continue
		}
		oracle[wc{win: (e.Time / vclock.Time(10*time.Second)), campaign: "c" + itoa(e.CampaignID)}]++
	}
	var oracleTotal, gotTotal int64
	for _, v := range oracle {
		oracleTotal += v
	}
	for _, e := range out {
		gotTotal += e.Value.(int64)
	}
	if oracleTotal != gotTotal {
		t.Fatalf("total view count %d != oracle %d", gotTotal, oracleTotal)
	}
	if len(out) != len(oracle) {
		t.Fatalf("result groups %d != oracle groups %d", len(out), len(oracle))
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestTopKRecordMatchesOracle(t *testing.T) {
	tweets := workload.GenerateTweets(workload.TwitterConfig{
		Seed: 11, Rate: 3000, Duration: 30 * time.Second, Topics: 50,
	})
	rp := BuildTopKRecord(2, 5, 30*time.Second)
	inputs := stream.Inputs{}
	for i, e := range workload.TweetStream(tweets) {
		src := rp.Sources[i%2]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	out := rp.Pipeline.SinkEvents(rp.Sink)

	// Oracle: per country, top-5 topics over the single 30 s window.
	byCountry := make(map[string]map[string]int64)
	for _, tw := range tweets {
		if byCountry[tw.Country] == nil {
			byCountry[tw.Country] = make(map[string]int64)
		}
		byCountry[tw.Country][tw.Topic]++
	}
	got := make(map[string][]stream.TopicCount)
	for _, e := range out {
		got[e.Key] = e.Value.([]stream.TopicCount)
	}
	if len(got) != len(byCountry) {
		t.Fatalf("countries %d != oracle %d", len(got), len(byCountry))
	}
	for country, counts := range byCountry {
		want := stream.TopK(counts, 5)
		if !reflect.DeepEqual(got[country], want) {
			t.Fatalf("country %s: got %v, want %v", country, got[country], want)
		}
	}
}

func TestEOIRecordFilters(t *testing.T) {
	tweets := workload.GenerateTweets(workload.TwitterConfig{
		Seed: 13, Rate: 2000, Duration: 10 * time.Second,
	})
	rp := BuildEOIRecord(2, "en", "t0")
	inputs := stream.Inputs{}
	for i, e := range workload.TweetStream(tweets) {
		src := rp.Sources[i%2]
		inputs[src] = append(inputs[src], e)
	}
	if err := rp.Pipeline.Run(inputs, stream.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	out := rp.Pipeline.SinkEvents(rp.Sink)

	want := 0
	for _, tw := range tweets {
		if tw.Lang == "en" && len(tw.Topic) >= 2 && tw.Topic[:2] == "t0" {
			want++
		}
	}
	if len(out) != want {
		t.Fatalf("filtered %d, oracle %d", len(out), want)
	}
	if want == 0 {
		t.Fatal("oracle empty — filter too strict for a meaningful test")
	}
}
