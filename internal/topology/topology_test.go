package topology

import (
	"math/rand"
	"testing"
	"time"
)

func testTopology(t *testing.T) *Topology {
	t.Helper()
	return Generate(DefaultGenConfig(1))
}

func TestGenerateDefaultShape(t *testing.T) {
	top := testTopology(t)
	if got, want := top.N(), 16; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	edges := top.SitesOfKind(Edge)
	dcs := top.SitesOfKind(DataCenter)
	if len(edges) != 8 || len(dcs) != 8 {
		t.Fatalf("kinds = %d edge / %d dc, want 8/8", len(edges), len(dcs))
	}
	for _, id := range dcs {
		if top.Slots(id) != 8 {
			t.Errorf("dc site %d slots = %d, want 8", id, top.Slots(id))
		}
	}
	for _, id := range edges {
		if s := top.Slots(id); s < 2 || s > 4 {
			t.Errorf("edge site %d slots = %d, want 2..4", id, s)
		}
	}
	if total := top.TotalSlots(); total < 80 || total > 96 {
		t.Fatalf("TotalSlots = %d, want within [80,96]", total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig(7))
	b := Generate(DefaultGenConfig(7))
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.BaseBandwidth(SiteID(i), SiteID(j)) != b.BaseBandwidth(SiteID(i), SiteID(j)) {
				t.Fatalf("bandwidth %d->%d differs across same-seed generations", i, j)
			}
			if a.Latency(SiteID(i), SiteID(j)) != b.Latency(SiteID(i), SiteID(j)) {
				t.Fatalf("latency %d->%d differs across same-seed generations", i, j)
			}
		}
	}
}

func TestGenerateLinkRanges(t *testing.T) {
	cfg := DefaultGenConfig(3)
	top := Generate(cfg)
	for i := 0; i < top.N(); i++ {
		for j := 0; j < top.N(); j++ {
			from, to := SiteID(i), SiteID(j)
			bw := top.BaseBandwidth(from, to)
			lat := top.Latency(from, to)
			if i == j {
				if bw != cfg.IntraSiteBW || lat != cfg.IntraSiteLat {
					t.Fatalf("intra-site link %d has bw=%v lat=%v", i, bw, lat)
				}
				continue
			}
			if bw <= 0 {
				t.Fatalf("link %d->%d bandwidth %v <= 0", i, j, bw)
			}
			if lat <= 0 {
				t.Fatalf("link %d->%d latency %v <= 0", i, j, lat)
			}
			dcPair := top.Site(from).Kind == DataCenter && top.Site(to).Kind == DataCenter
			if dcPair {
				// Forward direction sampled from [DCBWMin, DCBWMax]; the
				// reverse may be scaled by the asymmetry factor.
				maxBW := Mbps(float64(cfg.DCBWMax) * (1 + cfg.AsymmetryMax))
				if bw > maxBW {
					t.Fatalf("dc link %d->%d bandwidth %v > %v", i, j, bw, maxBW)
				}
			} else {
				maxBW := Mbps(float64(cfg.EdgeBWMax) * (1 + cfg.AsymmetryMax))
				if bw > maxBW {
					t.Fatalf("edge link %d->%d bandwidth %v > %v", i, j, bw, maxBW)
				}
			}
		}
	}
}

func TestEdgeLinksSlowerThanDCLinks(t *testing.T) {
	top := testTopology(t)
	edgeBW, _ := top.LinkValues(EdgePair)
	dcBW, _ := top.LinkValues(DataCenterPair)
	mean := func(xs []Mbps) float64 {
		var s float64
		for _, x := range xs {
			s += float64(x)
		}
		return s / float64(len(xs))
	}
	if mean(edgeBW) >= mean(dcBW) {
		t.Fatalf("edge mean bw %.1f >= dc mean bw %.1f; Fig 7 shape violated",
			mean(edgeBW), mean(dcBW))
	}
}

func TestLinkValuesSortedAndCounted(t *testing.T) {
	top := testTopology(t)
	dcBW, dcLat := top.LinkValues(DataCenterPair)
	// 8 DCs → 8*7 = 56 directional pairs.
	if len(dcBW) != 56 || len(dcLat) != 56 {
		t.Fatalf("dc pair samples = %d/%d, want 56/56", len(dcBW), len(dcLat))
	}
	edgeBW, edgeLat := top.LinkValues(EdgePair)
	// Total directional pairs 16*15=240; edge-touching = 240-56 = 184.
	if len(edgeBW) != 184 || len(edgeLat) != 184 {
		t.Fatalf("edge pair samples = %d/%d, want 184/184", len(edgeBW), len(edgeLat))
	}
	for i := 1; i < len(dcBW); i++ {
		if dcBW[i] < dcBW[i-1] {
			t.Fatal("dc bandwidth values not sorted")
		}
	}
	for i := 1; i < len(edgeLat); i++ {
		if edgeLat[i] < edgeLat[i-1] {
			t.Fatal("edge latency values not sorted")
		}
	}
}

func TestNewValidation(t *testing.T) {
	sites := []Site{{ID: 0, Name: "a", Kind: Edge, Slots: 1}}
	okLat := [][]time.Duration{{0}}
	okBW := [][]Mbps{{1}}

	if _, err := New(sites, okLat, okBW); err != nil {
		t.Fatalf("valid New errored: %v", err)
	}
	if _, err := New(sites, [][]time.Duration{}, okBW); err == nil {
		t.Fatal("New accepted mismatched latency matrix")
	}
	if _, err := New(sites, okLat, [][]Mbps{{-1}}); err == nil {
		t.Fatal("New accepted negative bandwidth")
	}
	bad := []Site{{ID: 5, Name: "a", Kind: Edge, Slots: 1}}
	if _, err := New(bad, okLat, okBW); err == nil {
		t.Fatal("New accepted non-dense site IDs")
	}
	neg := []Site{{ID: 0, Name: "a", Kind: Edge, Slots: -1}}
	if _, err := New(neg, okLat, okBW); err == nil {
		t.Fatal("New accepted negative slots")
	}
}

func TestMbpsConversions(t *testing.T) {
	b := Mbps(80)
	if got := b.MBPerSec(); got != 10 {
		t.Fatalf("MBPerSec = %v, want 10", got)
	}
	if got := b.BytesPerSec(); got != 10e6 {
		t.Fatalf("BytesPerSec = %v, want 1e7", got)
	}
}

func TestSiteKindString(t *testing.T) {
	if Edge.String() != "edge" || DataCenter.String() != "datacenter" {
		t.Fatal("SiteKind.String mismatch")
	}
	if got := SiteKind(9).String(); got != "SiteKind(9)" {
		t.Fatalf("unknown kind String = %q", got)
	}
}

func TestSitesReturnsCopy(t *testing.T) {
	top := testTopology(t)
	sites := top.Sites()
	sites[0].Slots = 999
	if top.Slots(0) == 999 {
		t.Fatal("Sites() exposed internal state")
	}
}

func TestGenerateWithMatchesWrapper(t *testing.T) {
	cfg := DefaultGenConfig(9)
	a := Generate(cfg)
	b := GenerateWith(rand.New(rand.NewSource(9)), cfg)
	if a.N() != b.N() {
		t.Fatalf("site count mismatch: %d vs %d", a.N(), b.N())
	}
	for i := 0; i < a.N(); i++ {
		if a.Site(SiteID(i)) != b.Site(SiteID(i)) {
			t.Fatalf("site %d differs", i)
		}
		for j := 0; j < a.N(); j++ {
			from, to := SiteID(i), SiteID(j)
			if a.BaseBandwidth(from, to) != b.BaseBandwidth(from, to) ||
				a.Latency(from, to) != b.Latency(from, to) {
				t.Fatalf("link %d->%d differs", i, j)
			}
		}
	}
}
