package topology

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func scaleShape(t *testing.T, seed int64, regions, edges int) *Topology {
	t.Helper()
	top, err := GenerateScale(DefaultScaleConfig(seed, regions, edges))
	if err != nil {
		t.Fatalf("GenerateScale(%d regions × %d edges): %v", regions, edges, err)
	}
	return top
}

func TestGenerateScaleDeterministic(t *testing.T) {
	// Same seed → byte-identical topology at 100 sites (10×9+hub) and
	// 1000 sites (50×19+hub).
	for _, shape := range []struct{ regions, edges, sites int }{
		{10, 9, 100},
		{50, 19, 1000},
	} {
		a := scaleShape(t, 42, shape.regions, shape.edges)
		b := scaleShape(t, 42, shape.regions, shape.edges)
		if a.N() != shape.sites {
			t.Fatalf("N = %d, want %d", a.N(), shape.sites)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("same-seed %d-site topologies differ", shape.sites)
		}
		c := scaleShape(t, 43, shape.regions, shape.edges)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("different-seed %d-site topologies identical", shape.sites)
		}
	}
}

func TestGenerateScaleRegionStructure(t *testing.T) {
	cfg := DefaultScaleConfig(7, 12, 7)
	cfg.CoreDCs = 3
	top, err := GenerateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := top.N(), 12*8+3; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	if got, want := top.NumRegions(), 13; got != want {
		t.Fatalf("NumRegions = %d, want %d (12 + core)", got, want)
	}
	regions := top.RegionSites()
	for r, members := range regions {
		for _, s := range members {
			if top.RegionOf(s) != RegionID(r) {
				t.Fatalf("site %d listed in region %d but RegionOf = %d", s, r, top.RegionOf(s))
			}
		}
	}
	// Each geographic region leads with its hub (lowest ID, a DC); the
	// last region is the core.
	for r := 0; r < 12; r++ {
		hub := top.Site(regions[r][0])
		if hub.Kind != DataCenter || !strings.HasSuffix(hub.Name, "-hub") {
			t.Fatalf("region %d representative = %+v, want hub DC", r, hub)
		}
		if len(regions[r]) != 8 {
			t.Fatalf("region %d has %d sites, want 8", r, len(regions[r]))
		}
	}
	if len(regions[12]) != 3 {
		t.Fatalf("core region has %d sites, want 3", len(regions[12]))
	}
	for _, s := range regions[12] {
		if top.Site(s).Kind != DataCenter || top.Site(s).Users != 0 {
			t.Fatalf("core site %+v, want user-free DC", top.Site(s))
		}
	}
	// Edge sites carry user populations within the configured bounds.
	users := 0
	for _, s := range top.Sites() {
		if s.Kind == Edge {
			if s.Users < cfg.UsersPerEdgeMin || s.Users > cfg.UsersPerEdgeMax {
				t.Fatalf("edge site %s has %d users, want [%d,%d]", s.Name, s.Users, cfg.UsersPerEdgeMin, cfg.UsersPerEdgeMax)
			}
			users += s.Users
		}
	}
	if top.TotalUsers() != users {
		t.Fatalf("TotalUsers = %d, want %d", top.TotalUsers(), users)
	}
}

func TestGenerateScaleMillionsOfUsers(t *testing.T) {
	// The 1000-site default shape must simulate millions of users.
	top := scaleShape(t, 1, 50, 19)
	if top.TotalUsers() < 2_000_000 {
		t.Fatalf("TotalUsers = %d, want >= 2M", top.TotalUsers())
	}
}

func TestGenerateScaleLatencyTiers(t *testing.T) {
	cfg := DefaultScaleConfig(3, 8, 4)
	top, err := GenerateScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := top.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := SiteID(i), SiteID(j)
			l := top.Latency(a, b)
			if top.Latency(b, a) != l {
				t.Fatalf("latency asymmetric between %d and %d", i, j)
			}
			if bw := top.BaseBandwidth(a, b); bw <= 0 {
				t.Fatalf("non-positive bandwidth %v on %d->%d", bw, i, j)
			}
			switch {
			case i == j:
				if l != cfg.IntraSiteLat {
					t.Fatalf("intra-site latency %v, want %v", l, cfg.IntraSiteLat)
				}
			case top.RegionOf(a) == top.RegionOf(b):
				if l < cfg.RegionLatMin || l > cfg.RegionLatMax {
					t.Fatalf("intra-region latency %v outside [%v,%v]", l, cfg.RegionLatMin, cfg.RegionLatMax)
				}
			default:
				// Inter-region: ring-distance interpolation with ±10% jitter.
				lo := time.Duration(float64(cfg.InterLatMin) * 0.9)
				hi := time.Duration(float64(cfg.InterLatMax) * 1.1)
				if l < lo || l > hi {
					t.Fatalf("inter-region latency %v outside [%v,%v]", l, lo, hi)
				}
			}
		}
	}
}

func TestGenerateScaleDegenerateShapes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ScaleConfig)
	}{
		{"zero regions", func(c *ScaleConfig) { c.Regions = 0 }},
		{"negative edges", func(c *ScaleConfig) { c.EdgePerRegion = -1 }},
		{"negative cores", func(c *ScaleConfig) { c.CoreDCs = -2 }},
		{"single site", func(c *ScaleConfig) { c.Regions, c.EdgePerRegion = 1, 0 }},
		{"inverted slot bounds", func(c *ScaleConfig) { c.EdgeSlotsMin, c.EdgeSlotsMax = 4, 2 }},
		{"negative hub slots", func(c *ScaleConfig) { c.HubSlots = -1 }},
		{"inverted user bounds", func(c *ScaleConfig) { c.UsersPerEdgeMin, c.UsersPerEdgeMax = 5000, 2000 }},
		{"zero bandwidth tier", func(c *ScaleConfig) { c.EdgeBWMin, c.EdgeBWMax = 0, 0 }},
		{"inverted bandwidth tier", func(c *ScaleConfig) { c.HubBWMin, c.HubBWMax = 400, 100 }},
		{"negative latency", func(c *ScaleConfig) { c.InterLatMin = -time.Millisecond }},
		{"inverted latency tier", func(c *ScaleConfig) { c.RegionLatMin, c.RegionLatMax = 20*time.Millisecond, 2*time.Millisecond }},
		{"asymmetry >= 1", func(c *ScaleConfig) { c.AsymmetryMax = 1 }},
	}
	for _, tc := range cases {
		cfg := DefaultScaleConfig(1, 4, 3)
		tc.mutate(&cfg)
		if _, err := GenerateScale(cfg); err == nil {
			t.Errorf("%s: want validation error, got nil", tc.name)
		}
	}
}

func TestNewRegionedValidation(t *testing.T) {
	base := Generate(DefaultGenConfig(1))
	sites := base.Sites()
	n := len(sites)
	lat := make([][]time.Duration, n)
	bw := make([][]Mbps, n)
	for i := 0; i < n; i++ {
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]Mbps, n)
		for j := 0; j < n; j++ {
			lat[i][j] = base.Latency(SiteID(i), SiteID(j))
			bw[i][j] = base.BaseBandwidth(SiteID(i), SiteID(j))
		}
	}
	mk := func(regionOf []RegionID) error {
		_, err := NewRegioned(sites, lat, bw, regionOf)
		return err
	}
	if err := mk(make([]RegionID, n-1)); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := make([]RegionID, n)
	bad[3] = -1
	if err := mk(bad); err == nil {
		t.Error("negative region ID accepted")
	}
	sparse := make([]RegionID, n)
	sparse[0] = 2 // region 1 never used -> not dense
	for i := 1; i < n; i++ {
		sparse[i] = 0
	}
	if err := mk(sparse); err == nil {
		t.Error("sparse region IDs accepted")
	}
	ok := make([]RegionID, n)
	for i := range ok {
		ok[i] = RegionID(i % 4)
	}
	top, err := NewRegioned(sites, lat, bw, ok)
	if err != nil {
		t.Fatalf("valid regioned topology rejected: %v", err)
	}
	if top.NumRegions() != 4 {
		t.Fatalf("NumRegions = %d, want 4", top.NumRegions())
	}
}

func TestClusterRegions(t *testing.T) {
	top := scaleShape(t, 5, 8, 5)
	k := 8
	regions := ClusterRegions(top, k)
	if len(regions) != k {
		t.Fatalf("got %d clusters, want %d", len(regions), k)
	}
	seen := make(map[SiteID]bool)
	for r, members := range regions {
		if len(members) == 0 {
			t.Fatalf("cluster %d empty", r)
		}
		for i, s := range members {
			if seen[s] {
				t.Fatalf("site %d in two clusters", s)
			}
			seen[s] = true
			if i > 0 && members[i-1] >= s {
				t.Fatalf("cluster %d members not ascending: %v", r, members)
			}
		}
	}
	if len(seen) != top.N() {
		t.Fatalf("clusters cover %d sites, want %d", len(seen), top.N())
	}
	again := ClusterRegions(top, k)
	if !reflect.DeepEqual(regions, again) {
		t.Fatal("ClusterRegions not deterministic")
	}
	// Degenerate k values clamp.
	if got := ClusterRegions(top, 0); len(got) != 1 {
		t.Fatalf("k=0: got %d clusters, want 1", len(got))
	}
	if got := ClusterRegions(top, top.N()+5); len(got) != top.N() {
		t.Fatalf("k>n: got %d clusters, want %d", len(got), top.N())
	}
}
