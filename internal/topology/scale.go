package topology

import (
	"fmt"
	"math/rand"
	"time"
)

// ScaleConfig parameterises GenerateScale, the planet-scale topology
// generator: R regions laid out on a ring, each with one hub data center
// and S edge sites, plus an optional set of core data centers grouped as
// one extra region. Link properties come in tiers — an intra-site fabric,
// fat short intra-region links, a hub↔hub backbone whose latency grows
// with ring distance, thin long-haul edge links, and fat core links. Edge
// sites carry simulated user populations; scale scenarios derive per-site
// source rates from them. The zero value is not valid; start from
// DefaultScaleConfig.
type ScaleConfig struct {
	Seed int64

	// Regions (R) and EdgePerRegion (S) shape the fabric: R·(S+1) sites
	// plus CoreDCs. CoreDCs > 0 adds one extra "core" region of global
	// data centers.
	Regions       int
	EdgePerRegion int
	CoreDCs       int

	EdgeSlotsMin, EdgeSlotsMax int
	HubSlots                   int
	CoreSlots                  int

	// UsersPerEdge bounds the simulated user population behind each edge
	// site (uniform).
	UsersPerEdgeMin, UsersPerEdgeMax int

	IntraSiteBW  Mbps
	IntraSiteLat time.Duration

	// Intra-region links (edge↔edge and edge↔hub within one region).
	RegionBWMin, RegionBWMax   Mbps
	RegionLatMin, RegionLatMax time.Duration

	// Inter-region links: latency interpolates between InterLatMin and
	// InterLatMax with the ring distance between the two regions (±10%
	// jitter); hub↔hub links use the backbone bandwidth tier, links
	// touching an edge site the thin long-haul tier.
	EdgeBWMin, EdgeBWMax     Mbps
	HubBWMin, HubBWMax       Mbps
	InterLatMin, InterLatMax time.Duration

	// Core links (anything ↔ a core data center).
	CoreBWMin, CoreBWMax   Mbps
	CoreLatMin, CoreLatMax time.Duration

	// AsymmetryMax scales reverse-direction bandwidth by U[1-a, 1+a].
	AsymmetryMax float64
}

// DefaultScaleConfig returns a realistic planet-scale profile for the
// given shape: 2–4 slot edge clusters with 2000–5000 users each behind
// 16-slot regional hubs, ~10–50 Mbps long-haul edge links, a 100–400 Mbps
// hub backbone, and ring-distance inter-region latency up to ~280 ms.
func DefaultScaleConfig(seed int64, regions, edgePerRegion int) ScaleConfig {
	return ScaleConfig{
		Seed:            seed,
		Regions:         regions,
		EdgePerRegion:   edgePerRegion,
		CoreDCs:         0,
		EdgeSlotsMin:    2,
		EdgeSlotsMax:    4,
		HubSlots:        16,
		CoreSlots:       32,
		UsersPerEdgeMin: 2000,
		UsersPerEdgeMax: 5000,
		IntraSiteBW:     10000,
		IntraSiteLat:    500 * time.Microsecond,
		RegionBWMin:     50,
		RegionBWMax:     200,
		RegionLatMin:    2 * time.Millisecond,
		RegionLatMax:    20 * time.Millisecond,
		EdgeBWMin:       10,
		EdgeBWMax:       50,
		HubBWMin:        100,
		HubBWMax:        400,
		InterLatMin:     40 * time.Millisecond,
		InterLatMax:     280 * time.Millisecond,
		CoreBWMin:       500,
		CoreBWMax:       2000,
		CoreLatMin:      15 * time.Millisecond,
		CoreLatMax:      120 * time.Millisecond,
		AsymmetryMax:    0.3,
	}
}

// validate rejects degenerate shapes. Unlike the constant-configured §8.2
// generator, scale configs are often computed (sweeps, CLI flags), so
// GenerateScale returns errors instead of panicking.
func (cfg *ScaleConfig) validate() error {
	if cfg.Regions < 1 {
		return fmt.Errorf("topology: scale config needs >= 1 region, have %d", cfg.Regions)
	}
	if cfg.EdgePerRegion < 0 {
		return fmt.Errorf("topology: negative edge sites per region (%d)", cfg.EdgePerRegion)
	}
	if cfg.CoreDCs < 0 {
		return fmt.Errorf("topology: negative core DC count (%d)", cfg.CoreDCs)
	}
	if n := cfg.Regions*(cfg.EdgePerRegion+1) + cfg.CoreDCs; n < 2 {
		return fmt.Errorf("topology: scale config yields %d site(s), need >= 2", n)
	}
	if cfg.EdgeSlotsMin < 0 || cfg.EdgeSlotsMax < cfg.EdgeSlotsMin {
		return fmt.Errorf("topology: edge slot bounds [%d,%d] invalid", cfg.EdgeSlotsMin, cfg.EdgeSlotsMax)
	}
	if cfg.HubSlots < 0 || cfg.CoreSlots < 0 {
		return fmt.Errorf("topology: negative hub/core slots (%d/%d)", cfg.HubSlots, cfg.CoreSlots)
	}
	if cfg.UsersPerEdgeMin < 0 || cfg.UsersPerEdgeMax < cfg.UsersPerEdgeMin {
		return fmt.Errorf("topology: users-per-edge bounds [%d,%d] invalid", cfg.UsersPerEdgeMin, cfg.UsersPerEdgeMax)
	}
	for _, b := range [][2]Mbps{
		{cfg.IntraSiteBW, cfg.IntraSiteBW},
		{cfg.RegionBWMin, cfg.RegionBWMax},
		{cfg.EdgeBWMin, cfg.EdgeBWMax},
		{cfg.HubBWMin, cfg.HubBWMax},
		{cfg.CoreBWMin, cfg.CoreBWMax},
	} {
		if b[0] <= 0 || b[1] < b[0] {
			return fmt.Errorf("topology: bandwidth tier [%v,%v] invalid", b[0], b[1])
		}
	}
	for _, l := range [][2]time.Duration{
		{cfg.IntraSiteLat, cfg.IntraSiteLat},
		{cfg.RegionLatMin, cfg.RegionLatMax},
		{cfg.InterLatMin, cfg.InterLatMax},
		{cfg.CoreLatMin, cfg.CoreLatMax},
	} {
		if l[0] < 0 || l[1] < l[0] {
			return fmt.Errorf("topology: latency tier [%v,%v] invalid", l[0], l[1])
		}
	}
	if cfg.AsymmetryMax < 0 || cfg.AsymmetryMax >= 1 {
		return fmt.Errorf("topology: asymmetry %v outside [0,1)", cfg.AsymmetryMax)
	}
	return nil
}

// GenerateScale builds a seeded region-structured planet-scale topology:
// a pure function of cfg, byte-identical for the same config. Site order
// is hub-first per region (so each region's lowest ID — its hierarchical
// representative — is the hub), regions in ring order, core DCs last as
// their own region.
func GenerateScale(cfg ScaleConfig) (*Topology, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	R, S := cfg.Regions, cfg.EdgePerRegion
	n := R*(S+1) + cfg.CoreDCs

	sites := make([]Site, 0, n)
	regionOf := make([]RegionID, 0, n)
	intn := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	for r := 0; r < R; r++ {
		sites = append(sites, Site{
			ID:    SiteID(len(sites)),
			Name:  fmt.Sprintf("r%d-hub", r),
			Kind:  DataCenter,
			Slots: cfg.HubSlots,
		})
		regionOf = append(regionOf, RegionID(r))
		for i := 0; i < S; i++ {
			sites = append(sites, Site{
				ID:    SiteID(len(sites)),
				Name:  fmt.Sprintf("r%d-edge-%d", r, i+1),
				Kind:  Edge,
				Slots: intn(cfg.EdgeSlotsMin, cfg.EdgeSlotsMax),
				Users: intn(cfg.UsersPerEdgeMin, cfg.UsersPerEdgeMax),
			})
			regionOf = append(regionOf, RegionID(r))
		}
	}
	for i := 0; i < cfg.CoreDCs; i++ {
		sites = append(sites, Site{
			ID:    SiteID(len(sites)),
			Name:  fmt.Sprintf("core-%d", i+1),
			Kind:  DataCenter,
			Slots: cfg.CoreSlots,
		})
		regionOf = append(regionOf, RegionID(R))
	}

	lat := make([][]time.Duration, n)
	bw := make([][]Mbps, n)
	for i := range lat {
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]Mbps, n)
	}
	uniformDur := func(lo, hi time.Duration) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
	uniformBW := func(lo, hi Mbps) Mbps {
		if hi <= lo {
			return lo
		}
		return lo + Mbps(rng.Float64())*(hi-lo)
	}
	coreRegion := RegionID(-1)
	if cfg.CoreDCs > 0 {
		coreRegion = RegionID(R)
	}
	maxHop := R / 2
	if maxHop < 1 {
		maxHop = 1
	}
	for i := 0; i < n; i++ {
		lat[i][i] = cfg.IntraSiteLat
		bw[i][i] = cfg.IntraSiteBW
		for j := i + 1; j < n; j++ {
			ri, rj := regionOf[i], regionOf[j]
			anyEdge := sites[i].Kind == Edge || sites[j].Kind == Edge
			var b Mbps
			var l time.Duration
			switch {
			case ri == rj:
				b = uniformBW(cfg.RegionBWMin, cfg.RegionBWMax)
				l = uniformDur(cfg.RegionLatMin, cfg.RegionLatMax)
			case ri == coreRegion || rj == coreRegion:
				if anyEdge {
					b = uniformBW(cfg.EdgeBWMin, cfg.EdgeBWMax)
				} else {
					b = uniformBW(cfg.CoreBWMin, cfg.CoreBWMax)
				}
				l = uniformDur(cfg.CoreLatMin, cfg.CoreLatMax)
			default:
				if anyEdge {
					b = uniformBW(cfg.EdgeBWMin, cfg.EdgeBWMax)
				} else {
					b = uniformBW(cfg.HubBWMin, cfg.HubBWMax)
				}
				hop := int(ri) - int(rj)
				if hop < 0 {
					hop = -hop
				}
				if wrap := R - hop; wrap < hop {
					hop = wrap
				}
				base := cfg.InterLatMin +
					time.Duration(float64(cfg.InterLatMax-cfg.InterLatMin)*float64(hop)/float64(maxHop))
				jitter := 0.9 + 0.2*rng.Float64()
				l = time.Duration(float64(base) * jitter)
			}
			bw[i][j] = b
			lat[i][j] = l
			// Reverse direction: correlated but asymmetric bandwidth;
			// propagation delay is symmetric.
			rb := Mbps(float64(b) * (1 + (rng.Float64()*2-1)*cfg.AsymmetryMax))
			if rb < 0.1 {
				rb = 0.1
			}
			bw[j][i] = rb
			lat[j][i] = l
		}
	}
	return NewRegioned(sites, lat, bw, regionOf)
}

// ClusterRegions partitions an arbitrary topology into k latency
// clusters — the region structure the hierarchical planner needs when the
// topology does not carry its own (e.g. the §8.2 testbed in oracle
// cross-validation). Deterministic farthest-point seeding: seed 0 is site
// 0, each further seed maximizes the minimum symmetrized latency to the
// chosen seeds (ties to the lowest site ID); every site then joins its
// nearest seed. Regions are ordered by seed, members ascending.
func ClusterRegions(t *Topology, k int) [][]SiteID {
	n := t.N()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dist := func(a, b SiteID) float64 {
		d1, d2 := t.Latency(a, b).Seconds(), t.Latency(b, a).Seconds()
		if d2 > d1 {
			return d2
		}
		return d1
	}
	seeds := make([]SiteID, 1, k)
	seeds[0] = 0
	minD := make([]float64, n)
	assign := make([]int, n)
	for s := 0; s < n; s++ {
		minD[s] = dist(0, SiteID(s))
	}
	for len(seeds) < k {
		far, farD := SiteID(-1), -1.0
		for s := 0; s < n; s++ {
			if minD[s] > farD {
				far, farD = SiteID(s), minD[s]
			}
		}
		idx := len(seeds)
		seeds = append(seeds, far)
		for s := 0; s < n; s++ {
			if d := dist(far, SiteID(s)); d < minD[s] {
				minD[s] = d
				assign[s] = idx
			}
		}
	}
	// Re-assign from scratch so ties resolve to the lowest seed index
	// regardless of seeding order.
	for s := 0; s < n; s++ {
		best, bestD := 0, dist(seeds[0], SiteID(s))
		for i := 1; i < len(seeds); i++ {
			if d := dist(seeds[i], SiteID(s)); d < bestD {
				best, bestD = i, d
			}
		}
		assign[s] = best
	}
	regions := make([][]SiteID, len(seeds))
	for s := 0; s < n; s++ {
		regions[assign[s]] = append(regions[assign[s]], SiteID(s))
	}
	// Farthest-point seeding guarantees every seed is its own nearest
	// seed (distance 0), so no region is empty.
	return regions
}
