// Package topology models the wide-area deployment substrate: geo-
// distributed sites (edge clusters and data centers), their computing
// slots, and the pair-wise WAN link properties (bandwidth and latency)
// between them.
//
// The default generator reproduces the paper's testbed (§8.2): 16 nodes —
// 8 edge nodes with 2–4 slots each and 8 data-center nodes with 8 slots
// each — whose inter-site bandwidth/latency distributions follow Figure 7
// (data-center links derived from EC2 measurements, edge links from the
// public-Internet statistics reported by Akamai).
package topology

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Mbps is a network bandwidth in megabits per second.
type Mbps float64

// BytesPerSec converts a bandwidth to bytes per second.
//
//waspvet:hotpath
func (b Mbps) BytesPerSec() float64 { return float64(b) * 1e6 / 8 }

// MBPerSec converts a bandwidth to megabytes per second.
func (b Mbps) MBPerSec() float64 { return float64(b) / 8 }

// SiteID identifies a site within a Topology (dense, 0-based).
type SiteID int

// SiteKind distinguishes edge clusters from data centers.
type SiteKind int

const (
	// Edge is a small edge cluster connected over the public Internet.
	Edge SiteKind = iota + 1
	// DataCenter is a large cloud data center.
	DataCenter
)

// String returns a human-readable kind name.
func (k SiteKind) String() string {
	switch k {
	case Edge:
		return "edge"
	case DataCenter:
		return "datacenter"
	default:
		return fmt.Sprintf("SiteKind(%d)", int(k))
	}
}

// Site is one geo-distributed location offering computing slots.
type Site struct {
	ID    SiteID
	Name  string
	Kind  SiteKind
	Slots int // computing slots provided by the site's Task Manager
	// Users is the simulated user population behind the site (edge sites
	// of planet-scale topologies; zero for the §8.2 testbed). Source
	// rates of scale scenarios derive from it.
	Users int
}

// RegionID identifies a site cluster within a regioned topology (dense,
// 0-based). The hierarchical placement planner solves a region-level
// program before refining within each chosen region.
type RegionID int

// Topology is an immutable description of sites and base (unloaded) WAN
// link properties. Directional: bandwidth/latency from s1 to s2 may differ
// from s2 to s1 (the paper notes diverse inbound/outbound bandwidth).
type Topology struct {
	sites []Site
	lat   [][]time.Duration // lat[from][to]
	bw    [][]Mbps          // bw[from][to], base capacity

	// Region partition (planet-scale topologies only; nil when the
	// topology is unregioned, e.g. the §8.2 testbed).
	regionOf []RegionID
	regions  [][]SiteID // region -> member sites, ascending
}

// New assembles a topology from explicit matrices. Both matrices must be
// n×n where n = len(sites). Diagonal entries describe intra-site links.
func New(sites []Site, lat [][]time.Duration, bw [][]Mbps) (*Topology, error) {
	n := len(sites)
	if len(lat) != n || len(bw) != n {
		return nil, fmt.Errorf("topology: matrix size mismatch (n=%d, lat=%d, bw=%d)", n, len(lat), len(bw))
	}
	for i := 0; i < n; i++ {
		if len(lat[i]) != n || len(bw[i]) != n {
			return nil, fmt.Errorf("topology: row %d size mismatch", i)
		}
		if sites[i].ID != SiteID(i) {
			return nil, fmt.Errorf("topology: site %d has ID %d, want dense IDs", i, sites[i].ID)
		}
		if sites[i].Slots < 0 {
			return nil, fmt.Errorf("topology: site %d has negative slots", i)
		}
		for j := 0; j < n; j++ {
			if bw[i][j] < 0 || lat[i][j] < 0 {
				return nil, fmt.Errorf("topology: negative link property %d->%d", i, j)
			}
		}
	}
	return &Topology{sites: sites, lat: lat, bw: bw}, nil
}

// NewRegioned is New for topologies carrying a region partition: regionOf
// assigns every site to a dense region ID and every region must be
// non-empty. The hierarchical placement planner consumes the partition via
// RegionSites.
func NewRegioned(sites []Site, lat [][]time.Duration, bw [][]Mbps, regionOf []RegionID) (*Topology, error) {
	t, err := New(sites, lat, bw)
	if err != nil {
		return nil, err
	}
	if len(regionOf) != len(sites) {
		return nil, fmt.Errorf("topology: %d region assignments for %d sites", len(regionOf), len(sites))
	}
	nRegions := 0
	for i, r := range regionOf {
		if r < 0 {
			return nil, fmt.Errorf("topology: site %d has negative region %d", i, r)
		}
		if int(r)+1 > nRegions {
			nRegions = int(r) + 1
		}
	}
	regions := make([][]SiteID, nRegions)
	for i, r := range regionOf {
		regions[r] = append(regions[r], SiteID(i))
	}
	for r, members := range regions {
		if len(members) == 0 {
			return nil, fmt.Errorf("topology: region %d is empty (IDs must be dense)", r)
		}
	}
	t.regionOf = append([]RegionID(nil), regionOf...)
	t.regions = regions
	return t, nil
}

// N returns the number of sites.
func (t *Topology) N() int { return len(t.sites) }

// NumRegions returns the number of regions of the partition, or 0 when
// the topology is unregioned.
func (t *Topology) NumRegions() int { return len(t.regions) }

// RegionOf returns the region hosting site id, or -1 when the topology is
// unregioned.
func (t *Topology) RegionOf(id SiteID) RegionID {
	if t.regionOf == nil {
		return -1
	}
	return t.regionOf[id]
}

// RegionSites returns the region partition as per-region member lists
// (ascending site IDs; the first member of a generated region is its hub),
// or nil when the topology is unregioned. The returned slices are shared
// and must not be mutated.
//
//waspvet:ordered regions ascend by region index, members by site ID
func (t *Topology) RegionSites() [][]SiteID { return t.regions }

// TotalUsers returns the total simulated user population across sites.
func (t *Topology) TotalUsers() int {
	total := 0
	for _, s := range t.sites {
		total += s.Users
	}
	return total
}

// Sites returns a copy of the site list.
func (t *Topology) Sites() []Site {
	out := make([]Site, len(t.sites))
	copy(out, t.sites)
	return out
}

// Site returns the site with the given ID.
func (t *Topology) Site(id SiteID) Site { return t.sites[id] }

// Slots returns the number of computing slots at site id.
func (t *Topology) Slots(id SiteID) int { return t.sites[id].Slots }

// TotalSlots returns the total number of slots across all sites.
func (t *Topology) TotalSlots() int {
	total := 0
	for _, s := range t.sites {
		total += s.Slots
	}
	return total
}

// Latency returns the one-way base latency from one site to another.
//
//waspvet:hotpath
func (t *Topology) Latency(from, to SiteID) time.Duration { return t.lat[from][to] }

// BaseBandwidth returns the unloaded capacity of the from→to link.
//
//waspvet:hotpath
func (t *Topology) BaseBandwidth(from, to SiteID) Mbps { return t.bw[from][to] }

// SitesOfKind returns the IDs of all sites of the given kind, ascending.
func (t *Topology) SitesOfKind(k SiteKind) []SiteID {
	var out []SiteID
	for _, s := range t.sites {
		if s.Kind == k {
			out = append(out, s.ID)
		}
	}
	return out
}

// PairClass classifies an inter-site link for Figure 7 style reporting.
type PairClass int

const (
	// DataCenterPair is a link between two data centers.
	DataCenterPair PairClass = iota + 1
	// EdgePair is a link with at least one edge endpoint.
	EdgePair
)

// LinkValues collects the directional inter-site (from≠to) bandwidth and
// latency samples for a pair class, each sorted ascending — the raw series
// behind the Figure 7 CDFs.
func (t *Topology) LinkValues(class PairClass) (bws []Mbps, lats []time.Duration) {
	for i := range t.sites {
		for j := range t.sites {
			if i == j {
				continue
			}
			isDC := t.sites[i].Kind == DataCenter && t.sites[j].Kind == DataCenter
			if (class == DataCenterPair) != isDC {
				continue
			}
			bws = append(bws, t.bw[i][j])
			lats = append(lats, t.lat[i][j])
		}
	}
	sort.Slice(bws, func(a, b int) bool { return bws[a] < bws[b] })
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return bws, lats
}

// GenConfig parameterises the testbed generator. The zero value is not
// valid; use DefaultGenConfig.
type GenConfig struct {
	Seed int64

	EdgeSites     int
	EdgeSlotsMin  int
	EdgeSlotsMax  int
	DCSites       int
	DCSlots       int
	IntraSiteBW   Mbps          // effectively-unconstrained in-site fabric
	IntraSiteLat  time.Duration //
	DCBWMin       Mbps          // data-center↔data-center link range
	DCBWMax       Mbps
	DCLatMin      time.Duration
	DCLatMax      time.Duration
	EdgeBWMin     Mbps // any link touching an edge site
	EdgeBWMax     Mbps
	EdgeLatMin    time.Duration
	EdgeLatMax    time.Duration
	AsymmetryMax  float64 // reverse direction scaled by U[1-a, 1+a]
	dcNamesSource []string
}

// DefaultGenConfig returns the paper's §8.2 testbed parameters: 8 edge
// nodes (2–4 slots), 8 data-center nodes (8 slots); DC links follow the
// EC2-derived Figure 7 distribution (tens to ~250 Mbps, up to ~300 ms);
// edge links follow the public-Internet profile (average <10 Mbps per
// Akamai, lower same-region latency).
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:         seed,
		EdgeSites:    8,
		EdgeSlotsMin: 2,
		EdgeSlotsMax: 4,
		DCSites:      8,
		DCSlots:      8,
		IntraSiteBW:  10000,
		IntraSiteLat: 500 * time.Microsecond,
		DCBWMin:      40,
		DCBWMax:      250,
		DCLatMin:     20 * time.Millisecond,
		DCLatMax:     300 * time.Millisecond,
		EdgeBWMin:    2.5,
		EdgeBWMax:    6,
		EdgeLatMin:   5 * time.Millisecond,
		EdgeLatMax:   60 * time.Millisecond,
		AsymmetryMax: 0.3,
		dcNamesSource: []string{
			"oregon", "ohio", "ireland", "frankfurt",
			"seoul", "singapore", "mumbai", "sao-paulo",
		},
	}
}

// Generate builds a seeded random topology per cfg. It panics on a
// structurally invalid configuration (experiment configs are constants).
// The topology is a pure function of cfg (randomness comes from a fresh
// source seeded with cfg.Seed).
func Generate(cfg GenConfig) *Topology {
	return GenerateWith(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// GenerateWith is Generate drawing from the caller's rng — for callers
// that thread one seeded source through several generators. cfg.Seed is
// ignored.
func GenerateWith(rng *rand.Rand, cfg GenConfig) *Topology {
	if cfg.EdgeSites < 0 || cfg.DCSites < 0 || cfg.EdgeSites+cfg.DCSites == 0 {
		panic("topology: generator needs at least one site")
	}
	if cfg.EdgeSlotsMax < cfg.EdgeSlotsMin {
		panic("topology: edge slot bounds inverted")
	}
	n := cfg.EdgeSites + cfg.DCSites

	sites := make([]Site, 0, n)
	for i := 0; i < cfg.DCSites; i++ {
		name := fmt.Sprintf("dc-%d", i+1)
		if i < len(cfg.dcNamesSource) {
			name = cfg.dcNamesSource[i]
		}
		sites = append(sites, Site{
			ID:    SiteID(len(sites)),
			Name:  name,
			Kind:  DataCenter,
			Slots: cfg.DCSlots,
		})
	}
	for i := 0; i < cfg.EdgeSites; i++ {
		slots := cfg.EdgeSlotsMin
		if cfg.EdgeSlotsMax > cfg.EdgeSlotsMin {
			slots += rng.Intn(cfg.EdgeSlotsMax - cfg.EdgeSlotsMin + 1)
		}
		sites = append(sites, Site{
			ID:    SiteID(len(sites)),
			Name:  fmt.Sprintf("edge-%d", i+1),
			Kind:  Edge,
			Slots: slots,
		})
	}

	lat := make([][]time.Duration, n)
	bw := make([][]Mbps, n)
	for i := range lat {
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]Mbps, n)
	}
	uniformDur := func(lo, hi time.Duration) time.Duration {
		if hi <= lo {
			return lo
		}
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
	uniformBW := func(lo, hi Mbps) Mbps {
		if hi <= lo {
			return lo
		}
		return lo + Mbps(rng.Float64())*(hi-lo)
	}
	asym := func() float64 {
		return 1 + (rng.Float64()*2-1)*cfg.AsymmetryMax
	}
	for i := 0; i < n; i++ {
		lat[i][i] = cfg.IntraSiteLat
		bw[i][i] = cfg.IntraSiteBW
		for j := i + 1; j < n; j++ {
			dcPair := sites[i].Kind == DataCenter && sites[j].Kind == DataCenter
			var b Mbps
			var l time.Duration
			if dcPair {
				b = uniformBW(cfg.DCBWMin, cfg.DCBWMax)
				l = uniformDur(cfg.DCLatMin, cfg.DCLatMax)
			} else {
				b = uniformBW(cfg.EdgeBWMin, cfg.EdgeBWMax)
				l = uniformDur(cfg.EdgeLatMin, cfg.EdgeLatMax)
			}
			bw[i][j] = b
			lat[i][j] = l
			// Reverse direction: correlated but asymmetric.
			rb := Mbps(float64(b) * asym())
			if rb < 0.1 {
				rb = 0.1
			}
			bw[j][i] = rb
			lat[j][i] = l // propagation delay is symmetric
		}
	}

	t, err := New(sites, lat, bw)
	if err != nil {
		panic(fmt.Sprintf("topology: generator produced invalid topology: %v", err))
	}
	return t
}
