// Package stream is WASP's record-at-a-time streaming engine: typed
// events flowing through a DAG of operators with event-time semantics,
// watermarks, keyed windows, joins, and snapshot/restore support for
// stateful operators.
//
// This is the record-mode execution layer (see DESIGN.md): it provides the
// exact operator semantics that the flow-mode wide-area emulation models
// at the rate level, and it is what the examples and the quality/accuracy
// measurements run on.
package stream

import (
	"fmt"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// Event is one stream record.
type Event struct {
	// Time is the event time (when the event happened at its source).
	Time vclock.Time
	// Key is the partitioning key (may be empty for unkeyed streams).
	Key string
	// Value is the payload. Stateful operators that snapshot their state
	// with gob require concrete Value types to be gob-registered.
	Value any
}

// String renders the event compactly for debugging.
func (e Event) String() string {
	return fmt.Sprintf("@%v %q=%v", e.Time, e.Key, e.Value)
}

// Emit passes an event downstream.
type Emit func(Event)

// Handler is a stream operator's event-processing interface. Operators
// with one input always observe port 0; two-input operators (joins)
// observe ports 0 and 1.
type Handler interface {
	// OnEvent processes one input event, emitting zero or more outputs.
	OnEvent(port int, e Event, emit Emit)
	// OnWatermark observes the event-time watermark advancing to wm:
	// all future events have Time >= wm. Windowed operators flush
	// completed windows here.
	OnWatermark(wm vclock.Time, emit Emit)
}

// Snapshotter is implemented by stateful operators that support
// checkpointing and state migration.
type Snapshotter interface {
	// SnapshotState serializes the operator's current state.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the operator's state with a prior snapshot.
	RestoreState(data []byte) error
}
