package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// WindowJoin is a keyed tumbling-window symmetric hash join over two
// inputs (ports 0 and 1). Each arriving event immediately joins against
// the buffered opposite side of the same (window, key) and is then
// buffered itself; buffers are evicted when the watermark passes the
// window end.
//
// Emitted events carry Time = max of the two joined events' times.
// WindowJoin is stateful and implements Snapshotter; event Values must be
// gob-registered.
type WindowJoin struct {
	// Size is the tumbling window length (must be > 0).
	Size time.Duration
	// Merge combines a left (port 0) and right (port 1) event into the
	// output value. If nil, the output value is the pair [2]any{l, r}.
	Merge func(l, r Event) any

	windows map[vclock.Time]*joinWindow
}

var (
	_ Handler     = (*WindowJoin)(nil)
	_ Snapshotter = (*WindowJoin)(nil)
)

type joinWindow struct {
	// Sides buffers events per key per side.
	Sides [2]map[string][]Event
}

func newJoinWindow() *joinWindow {
	return &joinWindow{Sides: [2]map[string][]Event{
		make(map[string][]Event),
		make(map[string][]Event),
	}}
}

// OnEvent implements Handler.
func (j *WindowJoin) OnEvent(port int, e Event, emit Emit) {
	if port != 0 && port != 1 {
		panic(fmt.Sprintf("stream: WindowJoin received port %d", port))
	}
	if j.windows == nil {
		j.windows = make(map[vclock.Time]*joinWindow)
	}
	start := windowStart(e.Time, j.Size)
	w := j.windows[start]
	if w == nil {
		w = newJoinWindow()
		j.windows[start] = w
	}
	other := 1 - port
	for _, o := range w.Sides[other][e.Key] {
		l, r := e, o
		if port == 1 {
			l, r = o, e
		}
		t := l.Time
		if r.Time > t {
			t = r.Time
		}
		var v any
		if j.Merge != nil {
			v = j.Merge(l, r)
		} else {
			v = [2]any{l.Value, r.Value}
		}
		emit(Event{Time: t, Key: e.Key, Value: v})
	}
	w.Sides[port][e.Key] = append(w.Sides[port][e.Key], e)
}

// OnWatermark implements Handler: expired window buffers are dropped.
func (j *WindowJoin) OnWatermark(wm vclock.Time, _ Emit) {
	for _, start := range detutil.SortedKeys(j.windows) {
		if start+vclock.Time(j.Size) <= wm {
			delete(j.windows, start)
		}
	}
}

// StateSize returns the number of buffered events across live windows.
func (j *WindowJoin) StateSize() int {
	total := 0
	for _, w := range j.windows {
		for side := range w.Sides {
			for _, evs := range w.Sides[side] {
				total += len(evs)
			}
		}
	}
	return total
}

// SnapshotState implements Snapshotter.
func (j *WindowJoin) SnapshotState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(j.windows); err != nil {
		return nil, fmt.Errorf("join snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements Snapshotter.
func (j *WindowJoin) RestoreState(data []byte) error {
	var windows map[vclock.Time]*joinWindow
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&windows); err != nil {
		return fmt.Errorf("join restore: %w", err)
	}
	if windows == nil {
		windows = make(map[vclock.Time]*joinWindow)
	}
	j.windows = windows
	return nil
}
