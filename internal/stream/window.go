package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// WindowAggregate is a keyed tumbling-window incremental aggregation: for
// each (window, key) it folds events into an accumulator and emits one
// result event when the watermark passes the window end.
//
// Emitted events carry the window's maximum observed event time as their
// Time — the paper's convention for measuring windowed-aggregation delay
// ("the event generation time is set to the maximum event time of all
// events within a particular window", §8.3).
//
// WindowAggregate is stateful: it implements Snapshotter. Accumulator
// values must be gob-registered concrete types.
type WindowAggregate struct {
	// Size is the tumbling window length (must be > 0).
	Size time.Duration
	// Init produces a fresh accumulator for a new (window, key).
	Init func() any
	// Add folds an event into the accumulator, returning the new value.
	Add func(acc any, e Event) any
	// Result converts the final accumulator into the emitted value. If
	// nil, the accumulator itself is emitted.
	Result func(key string, acc any) any

	windows map[vclock.Time]*windowState
}

var (
	_ Handler     = (*WindowAggregate)(nil)
	_ Snapshotter = (*WindowAggregate)(nil)
)

type windowState struct {
	MaxTime vclock.Time
	Accs    map[string]any
}

// windowStart returns the start of the tumbling window containing t.
func windowStart(t vclock.Time, size time.Duration) vclock.Time {
	if t < 0 {
		// Floor division for negative times.
		return ((t - vclock.Time(size) + 1) / vclock.Time(size)) * vclock.Time(size)
	}
	return (t / vclock.Time(size)) * vclock.Time(size)
}

// OnEvent implements Handler.
func (w *WindowAggregate) OnEvent(_ int, e Event, emit Emit) {
	if w.windows == nil {
		w.windows = make(map[vclock.Time]*windowState)
	}
	start := windowStart(e.Time, w.Size)
	ws := w.windows[start]
	if ws == nil {
		ws = &windowState{Accs: make(map[string]any)}
		w.windows[start] = ws
	}
	if e.Time > ws.MaxTime {
		ws.MaxTime = e.Time
	}
	acc, ok := ws.Accs[e.Key]
	if !ok {
		acc = w.Init()
	}
	ws.Accs[e.Key] = w.Add(acc, e)
}

// OnWatermark implements Handler: windows ending at or before wm are
// flushed in ascending window order with keys sorted, so output order is
// deterministic.
func (w *WindowAggregate) OnWatermark(wm vclock.Time, emit Emit) {
	for _, start := range detutil.SortedKeys(w.windows) {
		if start+vclock.Time(w.Size) > wm {
			continue
		}
		ws := w.windows[start]
		for _, k := range detutil.SortedKeys(ws.Accs) {
			v := ws.Accs[k]
			if w.Result != nil {
				v = w.Result(k, v)
			}
			emit(Event{Time: ws.MaxTime, Key: k, Value: v})
		}
		delete(w.windows, start)
	}
}

// StateSize returns the number of live (window, key) accumulators.
func (w *WindowAggregate) StateSize() int {
	total := 0
	for _, ws := range w.windows {
		total += len(ws.Accs)
	}
	return total
}

// SnapshotState implements Snapshotter.
func (w *WindowAggregate) SnapshotState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w.windows); err != nil {
		return nil, fmt.Errorf("window snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements Snapshotter.
func (w *WindowAggregate) RestoreState(data []byte) error {
	var windows map[vclock.Time]*windowState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&windows); err != nil {
		return fmt.Errorf("window restore: %w", err)
	}
	if windows == nil {
		windows = make(map[vclock.Time]*windowState)
	}
	w.windows = windows
	return nil
}

// Count returns a WindowAggregate counting events per key per window.
func Count(size time.Duration) *WindowAggregate {
	return &WindowAggregate{
		Size: size,
		Init: func() any { return int64(0) },
		Add:  func(acc any, _ Event) any { return acc.(int64) + 1 },
	}
}

// SumBy returns a WindowAggregate summing fn(event) per key per window.
func SumBy(size time.Duration, fn func(Event) float64) *WindowAggregate {
	return &WindowAggregate{
		Size: size,
		Init: func() any { return float64(0) },
		Add:  func(acc any, e Event) any { return acc.(float64) + fn(e) },
	}
}
