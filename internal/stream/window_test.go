package stream

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestWindowStart(t *testing.T) {
	size := 10 * time.Second
	tests := []struct {
		at   time.Duration
		want time.Duration
	}{
		{0, 0},
		{9 * time.Second, 0},
		{10 * time.Second, 10 * time.Second},
		{25 * time.Second, 20 * time.Second},
	}
	for _, tt := range tests {
		if got := windowStart(vclock.Time(tt.at), size); got != vclock.Time(tt.want) {
			t.Errorf("windowStart(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestCountAggregates(t *testing.T) {
	c := Count(10 * time.Second)
	collect(c, 0,
		ev(1*time.Second, "a", nil),
		ev(2*time.Second, "a", nil),
		ev(3*time.Second, "b", nil),
		ev(11*time.Second, "a", nil), // next window
	)
	// Nothing until watermark passes the window end.
	if got := flush(c, vclock.Time(9*time.Second)); len(got) != 0 {
		t.Fatalf("early flush emitted %v", got)
	}
	out := flush(c, vclock.Time(10*time.Second))
	if len(out) != 2 {
		t.Fatalf("window flush = %v, want 2 results", out)
	}
	// Sorted keys: a then b.
	if out[0].Key != "a" || out[0].Value.(int64) != 2 {
		t.Fatalf("out[0] = %v", out[0])
	}
	if out[1].Key != "b" || out[1].Value.(int64) != 1 {
		t.Fatalf("out[1] = %v", out[1])
	}
	// Emitted time is the window's max event time (paper §8.3).
	if out[0].Time != vclock.Time(3*time.Second) {
		t.Fatalf("out time = %v, want 3s", out[0].Time)
	}
	// Second window still pending.
	out2 := flush(c, MaxWatermark)
	if len(out2) != 1 || out2[0].Value.(int64) != 1 {
		t.Fatalf("final flush = %v", out2)
	}
	if c.StateSize() != 0 {
		t.Fatalf("state size = %d after full flush", c.StateSize())
	}
}

func TestSumBy(t *testing.T) {
	s := SumBy(10*time.Second, func(e Event) float64 { return float64(e.Value.(int)) })
	collect(s, 0, ev(1*time.Second, "x", 2), ev(2*time.Second, "x", 3))
	out := flush(s, MaxWatermark)
	if len(out) != 1 || out[0].Value.(float64) != 5 {
		t.Fatalf("sum = %v", out)
	}
}

func TestWindowAggregateResultFn(t *testing.T) {
	w := &WindowAggregate{
		Size:   time.Second,
		Init:   func() any { return int64(0) },
		Add:    func(acc any, _ Event) any { return acc.(int64) + 1 },
		Result: func(key string, acc any) any { return key + "!" },
	}
	collect(w, 0, ev(0, "a", nil))
	out := flush(w, MaxWatermark)
	if len(out) != 1 || out[0].Value != "a!" {
		t.Fatalf("result fn out = %v", out)
	}
}

func TestWindowAggregateSnapshotRestore(t *testing.T) {
	mk := func() *WindowAggregate { return Count(10 * time.Second) }
	a := mk()
	collect(a, 0,
		ev(1*time.Second, "a", nil),
		ev(2*time.Second, "b", nil),
		ev(3*time.Second, "a", nil),
	)
	snap, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh operator; flushing both must agree.
	b := mk()
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if a.StateSize() != b.StateSize() {
		t.Fatalf("state sizes differ: %d vs %d", a.StateSize(), b.StateSize())
	}
	outA := flush(a, MaxWatermark)
	outB := flush(b, MaxWatermark)
	if !reflect.DeepEqual(outA, outB) {
		t.Fatalf("restored operator output %v != original %v", outB, outA)
	}
}

func TestWindowAggregateRestoreEmpty(t *testing.T) {
	a := Count(time.Second)
	snap, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	b := Count(time.Second)
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	collect(b, 0, ev(0, "k", nil)) // must not panic on nil maps
	if b.StateSize() != 1 {
		t.Fatalf("StateSize = %d, want 1", b.StateSize())
	}
}

func TestWindowAggregateRestoreGarbage(t *testing.T) {
	b := Count(time.Second)
	if err := b.RestoreState([]byte("not gob")); err == nil {
		t.Fatal("garbage restore did not error")
	}
}

// Property: total counted events across all emitted results equals the
// number of injected events, for any event times (conservation).
func TestWindowCountConservation(t *testing.T) {
	err := quick.Check(func(times []uint32, keys []uint8) bool {
		c := Count(10 * time.Second)
		n := len(times)
		if len(keys) < n {
			n = len(keys)
		}
		for i := 0; i < n; i++ {
			key := string(rune('a' + keys[i]%5))
			c.OnEvent(0, Event{
				Time: vclock.Time(times[i]) * vclock.Time(time.Millisecond),
				Key:  key,
			}, func(Event) {})
		}
		out := flush(c, MaxWatermark)
		var total int64
		for _, e := range out {
			total += e.Value.(int64)
		}
		return total == int64(n) && c.StateSize() == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowFlushOrderDeterministic(t *testing.T) {
	c := Count(time.Second)
	collect(c, 0,
		ev(2500*time.Millisecond, "z", nil),
		ev(500*time.Millisecond, "b", nil),
		ev(700*time.Millisecond, "a", nil),
		ev(1500*time.Millisecond, "m", nil),
	)
	out := flush(c, MaxWatermark)
	wantKeys := []string{"a", "b", "m", "z"} // windows ascending, keys sorted
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
	for i, k := range wantKeys {
		if out[i].Key != k {
			t.Fatalf("flush order = %v, want keys %v", out, wantKeys)
		}
	}
}
