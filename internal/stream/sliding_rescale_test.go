package stream

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestSlidingWindowStarts(t *testing.T) {
	w := SlidingCount(30*time.Second, 10*time.Second)
	starts := w.windowStarts(vclock.Time(25 * time.Second))
	// t=25 belongs to windows starting at 20, 10, and 0.
	want := []vclock.Time{
		vclock.Time(20 * time.Second),
		vclock.Time(10 * time.Second),
		vclock.Time(0),
	}
	if !reflect.DeepEqual(starts, want) {
		t.Fatalf("windowStarts = %v, want %v", starts, want)
	}
	// t=5 only fits the window starting at 0 (earlier ones are negative
	// but valid: [-20,10) and [-10,20) contain 5 as well).
	starts = w.windowStarts(vclock.Time(5 * time.Second))
	if len(starts) != 3 {
		t.Fatalf("windowStarts(5s) = %v, want 3 windows", starts)
	}
}

func TestSlidingCountOverlap(t *testing.T) {
	w := SlidingCount(20*time.Second, 10*time.Second)
	collect(w, 0, ev(15*time.Second, "k", nil)) // windows [0,20) and [10,30)
	out := flush(w, vclock.Time(30*time.Second))
	if len(out) != 2 {
		t.Fatalf("out = %v, want the event in 2 windows", out)
	}
	for _, e := range out {
		if e.Value.(int64) != 1 {
			t.Fatalf("count = %v", e.Value)
		}
	}
}

func TestSlidingWindowMatchesTumblingWhenSlideEqualsSize(t *testing.T) {
	sl := SlidingCount(10*time.Second, 10*time.Second)
	tu := Count(10 * time.Second)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		e := Event{
			Time: vclock.Time(rng.Intn(60000)) * vclock.Time(time.Millisecond),
			Key:  string(rune('a' + rng.Intn(4))),
		}
		sl.OnEvent(0, e, func(Event) {})
		tu.OnEvent(0, e, func(Event) {})
	}
	outSl := flush(sl, MaxWatermark)
	outTu := flush(tu, MaxWatermark)
	if !reflect.DeepEqual(outSl, outTu) {
		t.Fatalf("slide==size output differs from tumbling:\n%v\n%v", outSl, outTu)
	}
}

func TestSlidingWindowSnapshotRestore(t *testing.T) {
	mk := func() *SlidingWindowAggregate { return SlidingCount(20*time.Second, 10*time.Second) }
	a := mk()
	collect(a, 0, ev(5*time.Second, "x", nil), ev(15*time.Second, "y", nil))
	snap, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(flush(a, MaxWatermark), flush(b, MaxWatermark)) {
		t.Fatal("restored sliding window differs")
	}
}

func TestSlidingWindowInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid slide did not panic")
		}
	}()
	w := SlidingCount(25*time.Second, 10*time.Second)
	w.OnEvent(0, ev(0, "k", nil), func(Event) {})
}

// Property: every event lands in exactly size/slide windows.
func TestSlidingWindowCoverageProperty(t *testing.T) {
	err := quick.Check(func(at uint32) bool {
		w := SlidingCount(40*time.Second, 10*time.Second)
		starts := w.windowStarts(vclock.Time(at) * vclock.Time(time.Millisecond))
		if len(starts) != 4 {
			return false
		}
		tm := vclock.Time(at) * vclock.Time(time.Millisecond)
		for _, s := range starts {
			if tm < s || tm >= s+vclock.Time(40*time.Second) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowAggregateSplitMergeRoundTrip(t *testing.T) {
	build := func() *WindowAggregate { return Count(10 * time.Second) }
	orig := build()
	rng := rand.New(rand.NewSource(9))
	var events []Event
	for i := 0; i < 400; i++ {
		events = append(events, Event{
			Time: vclock.Time(rng.Intn(30000)) * vclock.Time(time.Millisecond),
			Key:  string(rune('a' + rng.Intn(12))),
		})
	}
	collect(orig, 0, events...)
	wantOut := flushSorted(orig.SplitByKeyClone(t, build, events))

	// Split into 3 partitions and merge back: output must be identical.
	ref := build()
	collect(ref, 0, events...)
	parts := ref.SplitByKey(3)
	if ref.StateSize() != 0 {
		t.Fatal("split left state behind")
	}
	total := 0
	for _, p := range parts {
		total += p.StateSize()
	}
	merged := build()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.StateSize() != total {
		t.Fatalf("merged state size %d != sum of parts %d", merged.StateSize(), total)
	}
	gotOut := flushSorted(flush(merged, MaxWatermark))
	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatalf("split+merge changed results:\n%v\n%v", gotOut, wantOut)
	}
}

// SplitByKeyClone builds a fresh copy's flushed output for comparison.
func (w *WindowAggregate) SplitByKeyClone(t *testing.T, build func() *WindowAggregate, events []Event) []Event {
	t.Helper()
	c := build()
	collect(c, 0, events...)
	return flush(c, MaxWatermark)
}

func flushSorted(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func TestWindowAggregateMergeCollision(t *testing.T) {
	a := Count(10 * time.Second)
	b := Count(10 * time.Second)
	collect(a, 0, ev(time.Second, "k", nil))
	collect(b, 0, ev(2*time.Second, "k", nil))
	if err := a.Merge(b); err == nil {
		t.Fatal("overlapping keys merged silently")
	}
}

func TestWindowTopKSplitMerge(t *testing.T) {
	build := func() *WindowTopK {
		return &WindowTopK{Size: 30 * time.Second, K: 3,
			TopicFn: func(e Event) string { return e.Value.(string) }}
	}
	rng := rand.New(rand.NewSource(21))
	var events []Event
	groups := []string{"us", "jp", "gb", "fr", "de"}
	for i := 0; i < 600; i++ {
		events = append(events, Event{
			Time:  vclock.Time(rng.Intn(60000)) * vclock.Time(time.Millisecond),
			Key:   groups[rng.Intn(len(groups))],
			Value: string(rune('a' + rng.Intn(9))),
		})
	}
	ref := build()
	collect(ref, 0, events...)
	want := flushSorted(flush(ref, MaxWatermark))

	split := build()
	collect(split, 0, events...)
	parts := split.SplitByKey(2)
	merged := build()
	for _, p := range parts {
		merged.Merge(p)
	}
	got := flushSorted(flush(merged, MaxWatermark))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("topk split+merge changed results:\n%v\n%v", got, want)
	}
}

func TestWindowTopKMergeAddsPartialCounts(t *testing.T) {
	build := func() *WindowTopK {
		return &WindowTopK{Size: 10 * time.Second, K: 2,
			TopicFn: func(e Event) string { return e.Value.(string) }}
	}
	a, b := build(), build()
	collect(a, 0, ev(time.Second, "us", "go"), ev(2*time.Second, "us", "go"))
	collect(b, 0, ev(3*time.Second, "us", "go"), ev(4*time.Second, "us", "zig"))
	a.Merge(b)
	out := flush(a, MaxWatermark)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	tc := out[0].Value.([]TopicCount)
	if tc[0].Topic != "go" || tc[0].Count != 3 {
		t.Fatalf("partial counts not summed: %v", tc)
	}
}
