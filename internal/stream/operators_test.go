package stream

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// collect runs a handler over events and returns everything it emits.
func collect(h Handler, port int, events ...Event) []Event {
	var out []Event
	for _, e := range events {
		h.OnEvent(port, e, func(o Event) { out = append(out, o) })
	}
	return out
}

func flush(h Handler, wm vclock.Time) []Event {
	var out []Event
	h.OnWatermark(wm, func(o Event) { out = append(out, o) })
	return out
}

func ev(t time.Duration, key string, v any) Event {
	return Event{Time: vclock.Time(t), Key: key, Value: v}
}

func TestFilter(t *testing.T) {
	f := &Filter{Pred: func(e Event) bool { return e.Value.(int) > 10 }}
	out := collect(f, 0, ev(0, "a", 5), ev(1, "a", 15), ev(2, "b", 20))
	if len(out) != 2 || out[0].Value != 15 || out[1].Value != 20 {
		t.Fatalf("filter out = %v", out)
	}
	if got := flush(f, MaxWatermark); len(got) != 0 {
		t.Fatalf("stateless filter emitted on watermark: %v", got)
	}
}

func TestMap(t *testing.T) {
	m := &Map{Fn: func(e Event) Event {
		e.Value = e.Value.(int) * 2
		return e
	}}
	out := collect(m, 0, ev(0, "a", 3))
	if len(out) != 1 || out[0].Value != 6 {
		t.Fatalf("map out = %v", out)
	}
}

func TestFlatMap(t *testing.T) {
	f := &FlatMap{Fn: func(e Event, emit Emit) {
		for i := 0; i < e.Value.(int); i++ {
			emit(Event{Time: e.Time, Key: e.Key, Value: i})
		}
	}}
	out := collect(f, 0, ev(0, "a", 3))
	if len(out) != 3 {
		t.Fatalf("flatmap out = %v", out)
	}
}

func TestKeyBy(t *testing.T) {
	k := &KeyBy{KeyFn: func(e Event) string { return e.Value.(string) }}
	out := collect(k, 0, ev(0, "", "france"))
	if len(out) != 1 || out[0].Key != "france" {
		t.Fatalf("keyby out = %v", out)
	}
}

func TestUnion(t *testing.T) {
	u := &Union{}
	out := collect(u, 0, ev(0, "a", 1))
	out = append(out, collect(u, 1, ev(1, "b", 2))...)
	if len(out) != 2 {
		t.Fatalf("union out = %v", out)
	}
}

func TestEventString(t *testing.T) {
	e := ev(time.Second, "k", 7)
	if got := e.String(); got != `@1s "k"=7` {
		t.Fatalf("String = %q", got)
	}
}
