package stream

import (
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Filter drops events failing the predicate. Stateless.
type Filter struct {
	Pred func(Event) bool
}

var _ Handler = (*Filter)(nil)

// OnEvent implements Handler.
func (f *Filter) OnEvent(_ int, e Event, emit Emit) {
	if f.Pred(e) {
		emit(e)
	}
}

// OnWatermark implements Handler.
func (f *Filter) OnWatermark(vclock.Time, Emit) {}

// Map transforms each event 1:1. Stateless.
type Map struct {
	Fn func(Event) Event
}

var _ Handler = (*Map)(nil)

// OnEvent implements Handler.
func (m *Map) OnEvent(_ int, e Event, emit Emit) { emit(m.Fn(e)) }

// OnWatermark implements Handler.
func (m *Map) OnWatermark(vclock.Time, Emit) {}

// FlatMap transforms each event into zero or more events. Stateless.
type FlatMap struct {
	Fn func(Event, Emit)
}

var _ Handler = (*FlatMap)(nil)

// OnEvent implements Handler.
func (f *FlatMap) OnEvent(_ int, e Event, emit Emit) { f.Fn(e, emit) }

// OnWatermark implements Handler.
func (f *FlatMap) OnWatermark(vclock.Time, Emit) {}

// KeyBy re-keys the stream. Stateless.
type KeyBy struct {
	KeyFn func(Event) string
}

var _ Handler = (*KeyBy)(nil)

// OnEvent implements Handler.
func (k *KeyBy) OnEvent(_ int, e Event, emit Emit) {
	e.Key = k.KeyFn(e)
	emit(e)
}

// OnWatermark implements Handler.
func (k *KeyBy) OnWatermark(vclock.Time, Emit) {}

// Union forwards all inputs unchanged. Stateless; any number of inputs.
type Union struct{}

var _ Handler = (*Union)(nil)

// OnEvent implements Handler.
func (u *Union) OnEvent(_ int, e Event, emit Emit) { emit(e) }

// OnWatermark implements Handler.
func (u *Union) OnWatermark(vclock.Time, Emit) {}
