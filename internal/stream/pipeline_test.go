package stream

import (
	"reflect"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestPipelineLinear(t *testing.T) {
	p := NewPipeline()
	src := p.AddSource("src")
	f := p.AddNode("filter", &Filter{Pred: func(e Event) bool { return e.Value.(int)%2 == 0 }})
	m := p.AddNode("double", &Map{Fn: func(e Event) Event { e.Value = e.Value.(int) * 2; return e }})
	snk := p.AddSink("out")
	p.MustConnect(src, f, 0)
	p.MustConnect(f, m, 0)
	p.MustConnect(m, snk, 0)

	var in []Event
	for i := 0; i < 6; i++ {
		in = append(in, Event{Time: vclock.Time(i) * vclock.Time(time.Second), Key: "k", Value: i})
	}
	if err := p.Run(Inputs{src: in}, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	out := p.SinkEvents(snk)
	want := []int{0, 4, 8}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i, w := range want {
		if out[i].Value != w {
			t.Fatalf("out[%d] = %v, want %d", i, out[i].Value, w)
		}
	}
}

func TestPipelineWindowedCountEndToEnd(t *testing.T) {
	p := NewPipeline()
	src := p.AddSource("src")
	cnt := p.AddNode("count", Count(10*time.Second))
	snk := p.AddSink("out")
	p.MustConnect(src, cnt, 0)
	p.MustConnect(cnt, snk, 0)

	var in []Event
	for i := 0; i < 25; i++ {
		in = append(in, Event{Time: vclock.Time(i) * vclock.Time(time.Second), Key: "k"})
	}
	if err := p.Run(Inputs{src: in}, RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	out := p.SinkEvents(snk)
	// Windows [0,10) [10,20) [20,30): counts 10, 10, 5.
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	wantCounts := []int64{10, 10, 5}
	for i, w := range wantCounts {
		if out[i].Value.(int64) != w {
			t.Fatalf("window %d count = %v, want %d", i, out[i].Value, w)
		}
	}
}

func TestPipelineTwoSourcesMergeOrder(t *testing.T) {
	p := NewPipeline()
	s1 := p.AddSource("s1")
	s2 := p.AddSource("s2")
	u := p.AddNode("union", &Union{})
	snk := p.AddSink("out")
	p.MustConnect(s1, u, 0)
	p.MustConnect(s2, u, 0)
	p.MustConnect(u, snk, 0)

	in1 := []Event{ev(1*time.Second, "a", 1), ev(3*time.Second, "a", 3)}
	in2 := []Event{ev(2*time.Second, "b", 2), ev(4*time.Second, "b", 4)}
	if err := p.Run(Inputs{s1: in1, s2: in2}, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	out := p.SinkEvents(snk)
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatalf("merged output out of order: %v", out)
		}
	}
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestPipelineJoin(t *testing.T) {
	p := NewPipeline()
	l := p.AddSource("left")
	r := p.AddSource("right")
	j := p.AddNode("join", &WindowJoin{Size: 10 * time.Second})
	snk := p.AddSink("out")
	p.MustConnect(l, j, 0)
	p.MustConnect(r, j, 1)
	p.MustConnect(j, snk, 0)

	inL := []Event{ev(1*time.Second, "k", "L")}
	inR := []Event{ev(2*time.Second, "k", "R")}
	if err := p.Run(Inputs{l: inL, r: inR}, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	out := p.SinkEvents(snk)
	if len(out) != 1 {
		t.Fatalf("join out = %v", out)
	}
}

func TestPipelineConnectValidation(t *testing.T) {
	p := NewPipeline()
	src := p.AddSource("s")
	snk := p.AddSink("k")
	if err := p.Connect(snk, src, 0); err == nil {
		t.Fatal("sink->source edge accepted")
	}
	if err := p.Connect(src, 99, 0); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	op := p.AddNode("f", &Union{})
	if err := p.Connect(op, src, 0); err == nil {
		t.Fatal("edge into source accepted")
	}
}

func TestPipelineRejectsUnorderedInput(t *testing.T) {
	p := NewPipeline()
	src := p.AddSource("s")
	snk := p.AddSink("k")
	p.MustConnect(src, snk, 0)
	in := []Event{ev(2*time.Second, "a", 1), ev(1*time.Second, "a", 2)}
	if err := p.Run(Inputs{src: in}, RunConfig{}); err == nil {
		t.Fatal("unordered input accepted")
	}
}

func TestPipelineWatermarkRegression(t *testing.T) {
	p := NewPipeline()
	if err := p.Watermark(5 * vclock.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := p.Watermark(1 * vclock.Time(time.Second)); err == nil {
		t.Fatal("watermark regression accepted")
	}
}

func TestPipelineCycleDetected(t *testing.T) {
	p := NewPipeline()
	a := p.AddNode("a", &Union{})
	b := p.AddNode("b", &Union{})
	p.MustConnect(a, b, 0)
	p.MustConnect(b, a, 0)
	if err := p.Run(Inputs{}, RunConfig{}); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestPipelineDeterministicReplay(t *testing.T) {
	build := func() (*Pipeline, NodeID, NodeID) {
		p := NewPipeline()
		src := p.AddSource("s")
		tk := p.AddNode("topk", &WindowTopK{
			Size: 10 * time.Second, K: 2,
			TopicFn: func(e Event) string { return e.Value.(string) },
		})
		snk := p.AddSink("out")
		p.MustConnect(src, tk, 0)
		p.MustConnect(tk, snk, 0)
		return p, src, snk
	}
	in := []Event{
		ev(1*time.Second, "us", "go"),
		ev(2*time.Second, "fr", "go"),
		ev(3*time.Second, "us", "rust"),
		ev(4*time.Second, "us", "go"),
		ev(15*time.Second, "us", "zig"),
	}
	p1, s1, k1 := build()
	p2, s2, k2 := build()
	if err := p1.Run(Inputs{s1: in}, RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Run(Inputs{s2: in}, RunConfig{WatermarkEvery: time.Second}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.SinkEvents(k1), p2.SinkEvents(k2)) {
		t.Fatal("replays differ")
	}
}

func TestHandlerAccessor(t *testing.T) {
	p := NewPipeline()
	src := p.AddSource("s")
	f := &Filter{Pred: func(Event) bool { return true }}
	op := p.AddNode("f", f)
	if p.Handler(src) != nil {
		t.Fatal("source has a handler")
	}
	if p.Handler(op) != Handler(f) {
		t.Fatal("Handler did not return the operator")
	}
}
