package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// TopicCount is one entry of a top-k result: a topic and its event count
// within the window.
type TopicCount struct {
	Topic string
	Count int64
}

// WindowTopK computes, per tumbling window and per group (the event key —
// e.g. a country), the K most frequent topics. This is the paper's Top-K
// Popular Topics query core (Table 3).
//
// Ties are broken by lexicographically smaller topic, so results are
// deterministic. Emitted events have Key = group, Value = []TopicCount,
// and Time = the window's maximum observed event time (see
// WindowAggregate). WindowTopK is stateful and implements Snapshotter.
type WindowTopK struct {
	// Size is the tumbling window length (must be > 0).
	Size time.Duration
	// K is how many topics to report per group.
	K int
	// TopicFn extracts the counted topic from an event. If nil, the
	// event's Value is formatted as the topic.
	TopicFn func(Event) string

	windows map[vclock.Time]*topkWindow
}

var (
	_ Handler     = (*WindowTopK)(nil)
	_ Snapshotter = (*WindowTopK)(nil)
)

type topkWindow struct {
	MaxTime vclock.Time
	// Counts maps group → topic → count.
	Counts map[string]map[string]int64
}

// OnEvent implements Handler.
func (t *WindowTopK) OnEvent(_ int, e Event, emit Emit) {
	if t.windows == nil {
		t.windows = make(map[vclock.Time]*topkWindow)
	}
	start := windowStart(e.Time, t.Size)
	w := t.windows[start]
	if w == nil {
		w = &topkWindow{Counts: make(map[string]map[string]int64)}
		t.windows[start] = w
	}
	if e.Time > w.MaxTime {
		w.MaxTime = e.Time
	}
	topic := t.topic(e)
	group := w.Counts[e.Key]
	if group == nil {
		group = make(map[string]int64)
		w.Counts[e.Key] = group
	}
	group[topic]++
}

func (t *WindowTopK) topic(e Event) string {
	if t.TopicFn != nil {
		return t.TopicFn(e)
	}
	return fmt.Sprint(e.Value)
}

// OnWatermark implements Handler: completed windows emit one event per
// group carrying its top-K topics.
func (t *WindowTopK) OnWatermark(wm vclock.Time, emit Emit) {
	for _, start := range detutil.SortedKeys(t.windows) {
		if start+vclock.Time(t.Size) > wm {
			continue
		}
		w := t.windows[start]
		for _, g := range detutil.SortedKeys(w.Counts) {
			emit(Event{Time: w.MaxTime, Key: g, Value: TopK(w.Counts[g], t.K)})
		}
		delete(t.windows, start)
	}
}

// TopK returns the k highest-count topics from counts, ties broken by
// topic name ascending.
func TopK(counts map[string]int64, k int) []TopicCount {
	all := make([]TopicCount, 0, len(counts))
	for _, topic := range detutil.SortedKeys(counts) {
		all = append(all, TopicCount{Topic: topic, Count: counts[topic]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Topic < all[j].Topic
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// StateSize returns the number of live (window, group, topic) counters.
func (t *WindowTopK) StateSize() int {
	total := 0
	for _, w := range t.windows {
		for _, g := range w.Counts {
			total += len(g)
		}
	}
	return total
}

// SnapshotState implements Snapshotter.
func (t *WindowTopK) SnapshotState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t.windows); err != nil {
		return nil, fmt.Errorf("topk snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements Snapshotter.
func (t *WindowTopK) RestoreState(data []byte) error {
	var windows map[vclock.Time]*topkWindow
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&windows); err != nil {
		return fmt.Errorf("topk restore: %w", err)
	}
	if windows == nil {
		windows = make(map[vclock.Time]*topkWindow)
	}
	t.windows = windows
	return nil
}
