package stream

import (
	"fmt"

	"github.com/wasp-stream/wasp/internal/state"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Record-mode state rescaling: when WASP scales a stateful operator from p
// to p′ tasks, each task's keyed state is re-partitioned by key hash
// (§4.2, §8.7.2). These helpers implement the split and merge halves of
// that re-partitioning for the engine's stateful operators, so that a
// scaled operator group produces byte-identical results to the original.

// SplitByKey partitions the aggregate's live state across n fresh
// operators (sharing this operator's configuration): every (window, key)
// accumulator moves to partition state.PartitionKey(key, n). The receiver
// is left empty.
func (w *WindowAggregate) SplitByKey(n int) []*WindowAggregate {
	if n < 1 {
		panic(fmt.Sprintf("stream: SplitByKey(%d)", n))
	}
	parts := make([]*WindowAggregate, n)
	for i := range parts {
		parts[i] = &WindowAggregate{
			Size: w.Size, Init: w.Init, Add: w.Add, Result: w.Result,
			windows: make(map[vclock.Time]*windowState),
		}
	}
	for start, ws := range w.windows {
		for key, acc := range ws.Accs {
			p := parts[state.PartitionKey(key, n)]
			pws := p.windows[start]
			if pws == nil {
				pws = &windowState{Accs: make(map[string]any), MaxTime: ws.MaxTime}
				p.windows[start] = pws
			}
			if ws.MaxTime > pws.MaxTime {
				pws.MaxTime = ws.MaxTime
			}
			pws.Accs[key] = acc
		}
	}
	w.windows = make(map[vclock.Time]*windowState)
	return parts
}

// Merge absorbs another aggregate's state (e.g. when scaling down). The
// two must hold disjoint keys per window — the invariant hash
// partitioning guarantees; a collision returns an error and leaves the
// receiver partially merged.
func (w *WindowAggregate) Merge(other *WindowAggregate) error {
	if w.windows == nil {
		w.windows = make(map[vclock.Time]*windowState)
	}
	for start, ows := range other.windows {
		ws := w.windows[start]
		if ws == nil {
			ws = &windowState{Accs: make(map[string]any)}
			w.windows[start] = ws
		}
		if ows.MaxTime > ws.MaxTime {
			ws.MaxTime = ows.MaxTime
		}
		for key, acc := range ows.Accs {
			if _, exists := ws.Accs[key]; exists {
				return fmt.Errorf("stream: merge collision on key %q in window %v", key, start)
			}
			ws.Accs[key] = acc
		}
	}
	other.windows = make(map[vclock.Time]*windowState)
	return nil
}

// SplitByKey partitions the top-k operator's live per-group counters
// across n fresh operators by group key hash. The receiver is left empty.
func (t *WindowTopK) SplitByKey(n int) []*WindowTopK {
	if n < 1 {
		panic(fmt.Sprintf("stream: SplitByKey(%d)", n))
	}
	parts := make([]*WindowTopK, n)
	for i := range parts {
		parts[i] = &WindowTopK{
			Size: t.Size, K: t.K, TopicFn: t.TopicFn,
			windows: make(map[vclock.Time]*topkWindow),
		}
	}
	for start, w := range t.windows {
		for group, counts := range w.Counts {
			p := parts[state.PartitionKey(group, n)]
			pw := p.windows[start]
			if pw == nil {
				pw = &topkWindow{Counts: make(map[string]map[string]int64), MaxTime: w.MaxTime}
				p.windows[start] = pw
			}
			if w.MaxTime > pw.MaxTime {
				pw.MaxTime = w.MaxTime
			}
			pw.Counts[group] = counts
		}
	}
	t.windows = make(map[vclock.Time]*topkWindow)
	return parts
}

// Merge absorbs another top-k operator's counters. Unlike keyed
// accumulators, topic counts are additive, so overlapping groups merge by
// summation (partial counts from different tasks combine correctly).
func (t *WindowTopK) Merge(other *WindowTopK) {
	if t.windows == nil {
		t.windows = make(map[vclock.Time]*topkWindow)
	}
	for start, ow := range other.windows {
		w := t.windows[start]
		if w == nil {
			w = &topkWindow{Counts: make(map[string]map[string]int64)}
			t.windows[start] = w
		}
		if ow.MaxTime > w.MaxTime {
			w.MaxTime = ow.MaxTime
		}
		for group, counts := range ow.Counts {
			dst := w.Counts[group]
			if dst == nil {
				dst = make(map[string]int64, len(counts))
				w.Counts[group] = dst
			}
			for topic, c := range counts {
				dst[topic] += c
			}
		}
	}
	other.windows = make(map[vclock.Time]*topkWindow)
}
